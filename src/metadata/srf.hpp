// Shadow register file (SRF): 32 entries of 128-bit compressed metadata,
// one per GPR (paper §3.2, SHORE heritage). Each 64-bit half has its own
// valid bit because the ISA moves halves independently (sbdl/sbdu,
// lbdls/lbdus) and bndrs/bndrt bind the spatial and temporal halves by
// separate instructions.
#pragma once

#include <array>

#include "common/bitops.hpp"
#include "metadata/compress.hpp"
#include "riscv/reg.hpp"

namespace hwst::metadata {

using riscv::Reg;

class ShadowRegFile {
public:
    struct Entry {
        Compressed value{};
        bool valid_lo = false;
        bool valid_hi = false;

        bool valid() const { return valid_lo && valid_hi; }
        void clear() { *this = Entry{}; }
    };

    const Entry& entry(Reg r) const { return entries_[riscv::reg_index(r)]; }

    void bind_spatial(Reg r, u64 lo)
    {
        Entry& e = mut(r);
        e.value.lo = lo;
        e.valid_lo = true;
    }

    void bind_temporal(Reg r, u64 hi)
    {
        Entry& e = mut(r);
        e.value.hi = hi;
        e.valid_hi = true;
    }

    void set_lo(Reg r, u64 lo, bool valid)
    {
        Entry& e = mut(r);
        e.value.lo = lo;
        e.valid_lo = valid;
    }

    void set_hi(Reg r, u64 hi, bool valid)
    {
        Entry& e = mut(r);
        e.value.hi = hi;
        e.valid_hi = valid;
    }

    /// In-pipeline propagation (paper Fig. 1-b): the destination shadow
    /// register inherits the source's metadata on register-to-register
    /// pointer movement; no instruction overhead.
    void propagate(Reg dst, Reg src)
    {
        if (dst == Reg::zero) return;
        mut(dst) = entry(src);
    }

    void clear(Reg r) { mut(r).clear(); }

    /// Flip bits of a stored half in place (SEU injection — fault
    /// tooling). Valid bits are untouched: a particle strike perturbs
    /// the stored word, it does not invent or erase presence.
    void xor_lo(Reg r, u64 flip) { mut(r).value.lo ^= flip; }
    void xor_hi(Reg r, u64 flip) { mut(r).value.hi ^= flip; }

    void clear_all()
    {
        for (auto& e : entries_) e.clear();
    }

    /// Base of the entry array for emitted code (the JIT tier bakes
    /// per-register entry addresses into ALU templates so clear() and
    /// propagate() become plain stores). The array is an in-object
    /// member, so the pointer is stable for the file's lifetime.
    /// Callers own the discipline the mutators enforce here — never
    /// write through entry 0 unless replicating an interpreter path
    /// that does (the dispatcher's Add/Sub corner).
    Entry* entries_view() { return entries_.data(); }

private:
    Entry& mut(Reg r) { return entries_[riscv::reg_index(r)]; }

    std::array<Entry, riscv::kNumRegs> entries_{};
};

} // namespace hwst::metadata
