// Pointer metadata record (paper §3.1): base/bound for spatial safety,
// key/lock for temporal safety (SoftBound+CETS model).
#pragma once

#include "common/bitops.hpp"

namespace hwst::metadata {

using common::u64;

struct Metadata {
    u64 base = 0;  ///< first valid byte
    u64 bound = 0; ///< one past the last valid byte
    u64 key = 0;   ///< unique allocation key (0 = erased)
    u64 lock = 0;  ///< address of the lock_location holding the key

    friend bool operator==(const Metadata&, const Metadata&) = default;

    /// Spatial check: is [addr, addr+width) inside [base, bound)?
    bool in_bounds(u64 addr, unsigned width) const
    {
        return addr >= base && width <= bound - base &&
               addr - base <= (bound - base) - width;
    }
};

} // namespace hwst::metadata
