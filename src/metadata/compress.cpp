#include "metadata/compress.hpp"

#include "common/error.hpp"

namespace hwst::metadata {

using common::align_up;
using common::bits;
using common::clog2;
using common::ConfigError;
using common::mask64;
using common::place;

CompressionConfig CompressionConfig::for_system(u64 memory_size,
                                                u64 max_object,
                                                u64 lock_entries,
                                                u64 lock_base)
{
    CompressionConfig cfg;
    cfg.base_bits = clog2(memory_size) - 3;   // Eq. 3
    cfg.range_bits = clog2(max_object) - 3;   // Eq. 4
    cfg.lock_bits = clog2(lock_entries);      // Eq. 5
    cfg.lock_base = lock_base;
    cfg.validate(); // key width (Eq. 6) is implied by the packing
    return cfg;
}

u32 CompressionConfig::to_csr() const
{
    return static_cast<u32>(place(base_bits, 0, 6) | place(range_bits, 6, 6) |
                            place(lock_bits, 12, 6));
}

CompressionConfig CompressionConfig::from_csr(u32 bitw, u64 lock_base)
{
    CompressionConfig cfg;
    cfg.base_bits = static_cast<unsigned>(bits(bitw, 0, 6));
    cfg.range_bits = static_cast<unsigned>(bits(bitw, 6, 6));
    cfg.lock_bits = static_cast<unsigned>(bits(bitw, 12, 6));
    cfg.lock_base = lock_base;
    return cfg;
}

void CompressionConfig::validate() const
{
    if (base_bits == 0 || base_bits > 61)
        throw ConfigError{"compression: base width out of 1..61"};
    if (range_bits == 0 || base_bits + range_bits > 64)
        throw ConfigError{"compression: spatial half exceeds 64 bits"};
    if (lock_bits == 0 || lock_bits >= 64)
        throw ConfigError{"compression: lock width out of 1..63"};
    if (lock_base % 8 != 0)
        throw ConfigError{"compression: lock base must be 8-byte aligned"};
}

bool representable(const Metadata& md, const CompressionConfig& cfg)
{
    if (md.bound < md.base) return false;
    if (md.base % 8 != 0) return false;                // Eq. 3 alignment
    if ((md.base >> 3) > mask64(cfg.base_bits)) return false;
    const u64 range_granules = align_up(md.bound - md.base, 8) >> 3;
    if (range_granules > mask64(cfg.range_bits)) return false;
    if (md.lock < cfg.lock_base) return false;
    if (((md.lock - cfg.lock_base) >> 3) > mask64(cfg.lock_bits)) return false;
    if (md.key > mask64(cfg.key_bits())) return false;
    const Compressed c = compress(md, cfg);
    return c.lo != saturated_spatial(cfg) && c.hi != saturated_temporal(cfg);
}

Compressed compress(const Metadata& md, const CompressionConfig& cfg)
{
    return Compressed{compress_spatial(md.base, md.bound, cfg),
                      compress_temporal(md.key, md.lock, cfg)};
}

Metadata decompress(const Compressed& c, const CompressionConfig& cfg)
{
    Metadata md;
    decompress_spatial(c.lo, cfg, md.base, md.bound);
    decompress_temporal(c.hi, cfg, md.key, md.lock);
    return md;
}

} // namespace hwst::metadata
