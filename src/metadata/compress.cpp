#include "metadata/compress.hpp"

#include "common/error.hpp"

namespace hwst::metadata {

using common::align_up;
using common::bits;
using common::clog2;
using common::ConfigError;
using common::mask64;
using common::place;

CompressionConfig CompressionConfig::for_system(u64 memory_size,
                                                u64 max_object,
                                                u64 lock_entries,
                                                u64 lock_base)
{
    CompressionConfig cfg;
    cfg.base_bits = clog2(memory_size) - 3;   // Eq. 3
    cfg.range_bits = clog2(max_object) - 3;   // Eq. 4
    cfg.lock_bits = clog2(lock_entries);      // Eq. 5
    cfg.lock_base = lock_base;
    cfg.validate(); // key width (Eq. 6) is implied by the packing
    return cfg;
}

u32 CompressionConfig::to_csr() const
{
    return static_cast<u32>(place(base_bits, 0, 6) | place(range_bits, 6, 6) |
                            place(lock_bits, 12, 6));
}

CompressionConfig CompressionConfig::from_csr(u32 bitw, u64 lock_base)
{
    CompressionConfig cfg;
    cfg.base_bits = static_cast<unsigned>(bits(bitw, 0, 6));
    cfg.range_bits = static_cast<unsigned>(bits(bitw, 6, 6));
    cfg.lock_bits = static_cast<unsigned>(bits(bitw, 12, 6));
    cfg.lock_base = lock_base;
    return cfg;
}

void CompressionConfig::validate() const
{
    if (base_bits == 0 || base_bits > 61)
        throw ConfigError{"compression: base width out of 1..61"};
    if (range_bits == 0 || base_bits + range_bits > 64)
        throw ConfigError{"compression: spatial half exceeds 64 bits"};
    if (lock_bits == 0 || lock_bits >= 64)
        throw ConfigError{"compression: lock width out of 1..63"};
    if (lock_base % 8 != 0)
        throw ConfigError{"compression: lock base must be 8-byte aligned"};
}

bool representable(const Metadata& md, const CompressionConfig& cfg)
{
    if (md.bound < md.base) return false;
    if (md.base % 8 != 0) return false;                // Eq. 3 alignment
    if ((md.base >> 3) > mask64(cfg.base_bits)) return false;
    const u64 range_granules = align_up(md.bound - md.base, 8) >> 3;
    if (range_granules > mask64(cfg.range_bits)) return false;
    if (md.lock < cfg.lock_base) return false;
    if (((md.lock - cfg.lock_base) >> 3) > mask64(cfg.lock_bits)) return false;
    if (md.key > mask64(cfg.key_bits())) return false;
    const Compressed c = compress(md, cfg);
    return c.lo != saturated_spatial(cfg) && c.hi != saturated_temporal(cfg);
}

u64 saturated_spatial(const CompressionConfig& cfg)
{
    return mask64(cfg.base_bits + cfg.range_bits);
}

u64 saturated_temporal(const CompressionConfig& cfg)
{
    return mask64(cfg.key_bits() + cfg.lock_bits);
}

bool is_saturated_spatial(u64 lo, const CompressionConfig& cfg)
{
    return lo == saturated_spatial(cfg);
}

bool is_saturated_temporal(u64 hi, const CompressionConfig& cfg)
{
    return hi == saturated_temporal(cfg);
}

u64 compress_spatial(u64 base, u64 bound, const CompressionConfig& cfg)
{
    const u64 base_g = base >> 3;
    const u64 range = bound >= base ? bound - base : 0; // Eq. 2
    // align_up would wrap past 2^64 for a range in the last 7 bytes of
    // the address space; that is an overflow like any other.
    if (base_g > mask64(cfg.base_bits) || range > ~u64{0} - 7 ||
        (align_up(range, 8) >> 3) > mask64(cfg.range_bits)) {
        return saturated_spatial(cfg);
    }
    return base_g | ((align_up(range, 8) >> 3) << cfg.base_bits);
}

u64 compress_temporal(u64 key, u64 lock, const CompressionConfig& cfg)
{
    const unsigned kb = cfg.key_bits();
    if (key > mask64(kb)) return saturated_temporal(cfg);
    // lock 0 = "no temporal metadata" (index 0); any other lock below
    // the region base is garbage and must not silently drop to index 0.
    if (lock == 0) return key;
    if (lock < cfg.lock_base) return saturated_temporal(cfg);
    const u64 lock_index = (lock - cfg.lock_base) >> 3;
    if (lock_index > mask64(cfg.lock_bits)) return saturated_temporal(cfg);
    return key | (lock_index << kb);
}

Compressed compress(const Metadata& md, const CompressionConfig& cfg)
{
    return Compressed{compress_spatial(md.base, md.bound, cfg),
                      compress_temporal(md.key, md.lock, cfg)};
}

void decompress_spatial(u64 lo, const CompressionConfig& cfg, u64& base,
                        u64& bound)
{
    base = bits(lo, 0, cfg.base_bits) << 3;
    const u64 range = bits(lo, cfg.base_bits, cfg.range_bits) << 3;
    bound = base + range;
}

void decompress_temporal(u64 hi, const CompressionConfig& cfg, u64& key,
                         u64& lock)
{
    const unsigned kb = cfg.key_bits();
    key = bits(hi, 0, kb);
    // Lock index 0 is reserved ("no temporal metadata"): DECOMP emits a
    // null lock so software sequences can test it with a single beqz.
    const u64 index = bits(hi, kb, cfg.lock_bits);
    lock = index == 0 ? 0 : cfg.lock_base + (index << 3);
}

Metadata decompress(const Compressed& c, const CompressionConfig& cfg)
{
    Metadata md;
    decompress_spatial(c.lo, cfg, md.base, md.bound);
    decompress_temporal(c.hi, cfg, md.key, md.lock);
    return md;
}

} // namespace hwst::metadata
