// Keybuffer (paper §3.5): a small TLB-like, fully-associative cache of
// the most recently loaded lock_location -> key pairs. When tchk
// executes and the pointer's lock hits the keybuffer, the buffered key
// is compared instead of loading the lock_location from the D-cache —
// removing the extra memory access that makes temporal checks expensive.
//
// Coherence: "the keybuffer will be cleared whenever a pointer has been
// freed" — the free wrapper's store of key 0 to the lock_location (or
// the explicit kbflush instruction) clears the whole buffer, so the
// buffer always holds live temporal metadata.
#pragma once

#include <optional>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace hwst::metadata {

using common::u64;

struct KeybufferStats {
    u64 lookups = 0;
    u64 hits = 0;
    u64 flushes = 0;

    double hit_rate() const
    {
        return lookups ? static_cast<double>(hits) /
                             static_cast<double>(lookups)
                       : 0.0;
    }
};

class Keybuffer {
public:
    explicit Keybuffer(unsigned entries = 8) : capacity_{entries}
    {
        if (entries == 0)
            throw common::ConfigError{"Keybuffer: need at least one entry"};
        slots_.reserve(entries);
    }

    /// Look up the key cached for `lock`. Hit refreshes LRU order.
    std::optional<u64> lookup(u64 lock)
    {
        ++stats_.lookups;
        for (Slot& s : slots_) {
            if (s.lock == lock) {
                ++stats_.hits;
                s.lru = ++tick_;
                return s.key;
            }
        }
        return std::nullopt;
    }

    /// Record a key just loaded from its lock_location (fills on miss).
    void insert(u64 lock, u64 key)
    {
        for (Slot& s : slots_) {
            if (s.lock == lock) {
                s.key = key;
                s.lru = ++tick_;
                return;
            }
        }
        if (slots_.size() < capacity_) {
            slots_.push_back(Slot{lock, key, ++tick_});
            return;
        }
        Slot* victim = &slots_.front();
        for (Slot& s : slots_) {
            if (s.lru < victim->lru) victim = &s;
        }
        *victim = Slot{lock, key, ++tick_};
    }

    /// Clear everything (free wrapper / kbflush instruction / snooped
    /// store into the lock region).
    void flush()
    {
        slots_.clear();
        ++stats_.flushes;
    }

    /// Flip bits of the key cached in occupied slot `i` (SEU injection —
    /// fault tooling). Returns false if the slot is empty.
    bool corrupt_slot(std::size_t i, u64 key_flip)
    {
        if (i >= slots_.size()) return false;
        slots_[i].key ^= key_flip;
        return true;
    }

    unsigned capacity() const { return capacity_; }
    std::size_t size() const { return slots_.size(); }
    const KeybufferStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    struct Slot {
        u64 lock;
        u64 key;
        u64 lru;
    };

    unsigned capacity_;
    std::vector<Slot> slots_;
    KeybufferStats stats_;
    u64 tick_ = 0;
};

} // namespace hwst::metadata
