// Metadata compression (paper §3.3, Fig. 2, Eq. 2-6).
//
// Uncompressed metadata is 4×64 = 256 bits. The compressed form packs
// into 128 bits so it fits one SRF entry and two 64-bit shadow-memory
// slots:
//
//   lower 64 bits : | range (64-B) ... | base (B) ... |   (spatial)
//   upper 64 bits : | lock  (64-K) ... | key  (K) ... |   (temporal)
//
// base and range drop their low 3 bits (RV64 8-byte alignment, Eq. 3/4):
// base is stored >>3 (allocators align to >=8), and range is stored
// rounded *up* to the next 8-byte multiple. The round-up means the
// decompressed bound can exceed the true bound by up to 7 bytes —
// HWST128 therefore misses sub-word heap overflows that byte-exact
// SBCETS catches. That slack is exactly the paper's CWE122 coverage gap
// (Fig. 6, −0.86 %).
//
// lock is stored as an index relative to the lock region base (Eq. 5:
// 20 bits address one million lock_locations); key takes the remaining
// width (Eq. 6).
//
// A field that exceeds its configured width does NOT wrap: COMP emits
// the reserved all-ones saturating encoding and the pipeline traps on
// the first checked use (graceful degradation — a too-large object or
// key can cause a false violation, never a missed one).
#pragma once

#include "common/bitops.hpp"
#include "metadata/metadata.hpp"

namespace hwst::metadata {

using common::u32;
using common::u64;

/// Field widths of the compressed format. Encodable in the 24-bit
/// csr.bitw CSR (paper: "The bit width for each metadata is set within a
/// 24-bit CSR at the beginning of the program").
struct CompressionConfig {
    unsigned base_bits = 35;
    unsigned range_bits = 29;
    unsigned lock_bits = 20;
    u64 lock_base = 0; ///< lock region base (csr.lock.base), for lock<->index

    unsigned key_bits() const { return 64 - lock_bits; }

    /// Eq. 3-6: derive widths from system parameters.
    ///   base  = ceil(log2(memory_size)) - 3
    ///   range = ceil(log2(max_object))  - 3
    ///   lock  = ceil(log2(lock_entries))
    ///   key   = 128 - base - range - lock
    static CompressionConfig for_system(u64 memory_size, u64 max_object,
                                        u64 lock_entries, u64 lock_base);

    /// Pack into / unpack from the 24-bit csr.bitw encoding:
    /// bits [5:0] base, [11:6] range, [17:12] lock.
    u32 to_csr() const;
    static CompressionConfig from_csr(u32 bitw, u64 lock_base);

    /// Validate invariants (spatial half <= 64 bits, etc.). Throws
    /// common::ConfigError on violation.
    void validate() const;

    friend bool operator==(const CompressionConfig&,
                           const CompressionConfig&) = default;
};

/// 128-bit compressed metadata as it sits in an SRF entry or a shadow
/// memory slot pair.
struct Compressed {
    u64 lo = 0; ///< spatial half (base | range)
    u64 hi = 0; ///< temporal half (key | lock)

    friend bool operator==(const Compressed&, const Compressed&) = default;
};

/// True if every field of `md` fits the configured widths exactly
/// (no truncation, no range slack beyond the 8-byte round-up) and the
/// encoding does not collide with the reserved saturating pattern.
bool representable(const Metadata& md, const CompressionConfig& cfg);

/// Saturating ("poison") encodings: every field all-ones. COMP emits
/// these whenever a field exceeds its configured width, instead of
/// silently wrapping; the Machine treats them as metadata that fails
/// every check, so overflow degrades to a conservative trap on first
/// use. The all-ones pattern is reserved: representable() rejects
/// metadata that would legitimately encode to it.
/// (Defined inline: these sit on the per-checked-access hot path of the
/// simulator — SCU/TCU checks run them once per instrumented memory op.)
inline u64 saturated_spatial(const CompressionConfig& cfg)
{
    return common::mask64(cfg.base_bits + cfg.range_bits);
}

inline u64 saturated_temporal(const CompressionConfig& cfg)
{
    return common::mask64(cfg.key_bits() + cfg.lock_bits);
}

inline bool is_saturated_spatial(u64 lo, const CompressionConfig& cfg)
{
    return lo == saturated_spatial(cfg);
}

inline bool is_saturated_temporal(u64 hi, const CompressionConfig& cfg)
{
    return hi == saturated_temporal(cfg);
}

/// COMP unit: compress. Out-of-width fields saturate (see above);
/// callers use representable() to predict that. Inline for the same
/// reason as the saturation helpers: BNDRS/BNDRT run once per
/// instrumented pointer creation.
inline u64 compress_spatial(u64 base, u64 bound, const CompressionConfig& cfg)
{
    const u64 base_g = base >> 3;
    const u64 range = bound >= base ? bound - base : 0; // Eq. 2
    // align_up would wrap past 2^64 for a range in the last 7 bytes of
    // the address space; that is an overflow like any other.
    if (base_g > common::mask64(cfg.base_bits) || range > ~u64{0} - 7 ||
        (common::align_up(range, 8) >> 3) > common::mask64(cfg.range_bits)) {
        return saturated_spatial(cfg);
    }
    return base_g | ((common::align_up(range, 8) >> 3) << cfg.base_bits);
}

inline u64 compress_temporal(u64 key, u64 lock, const CompressionConfig& cfg)
{
    const unsigned kb = cfg.key_bits();
    if (key > common::mask64(kb)) return saturated_temporal(cfg);
    // lock 0 = "no temporal metadata" (index 0); any other lock below
    // the region base is garbage and must not silently drop to index 0.
    if (lock == 0) return key;
    if (lock < cfg.lock_base) return saturated_temporal(cfg);
    const u64 lock_index = (lock - cfg.lock_base) >> 3;
    if (lock_index > common::mask64(cfg.lock_bits))
        return saturated_temporal(cfg);
    return key | (lock_index << kb);
}

Compressed compress(const Metadata& md, const CompressionConfig& cfg);

/// DECOMP unit: decompress. The spatial half reconstructs base and
/// bound = base + range (8-byte granules); the temporal half
/// reconstructs key and lock = lock_base + 8*index.
Metadata decompress(const Compressed& c, const CompressionConfig& cfg);

inline void decompress_spatial(u64 lo, const CompressionConfig& cfg,
                               u64& base, u64& bound)
{
    base = common::bits(lo, 0, cfg.base_bits) << 3;
    const u64 range = common::bits(lo, cfg.base_bits, cfg.range_bits) << 3;
    bound = base + range;
}

inline void decompress_temporal(u64 hi, const CompressionConfig& cfg,
                                u64& key, u64& lock)
{
    const unsigned kb = cfg.key_bits();
    key = common::bits(hi, 0, kb);
    // Lock index 0 is reserved ("no temporal metadata"): DECOMP emits a
    // null lock so software sequences can test it with a single beqz.
    const u64 index = common::bits(hi, kb, cfg.lock_bits);
    lock = index == 0 ? 0 : cfg.lock_base + (index << 3);
}

} // namespace hwst::metadata
