// Disassembler: renders instructions in conventional RISC-V assembly
// syntax (HWST128 extension ops use their paper mnemonics).
#pragma once

#include <string>

#include "riscv/instr.hpp"

namespace hwst::riscv {

std::string disassemble(const Instruction& in);

} // namespace hwst::riscv
