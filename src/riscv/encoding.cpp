#include "riscv/encoding.hpp"

#include "common/error.hpp"

namespace hwst::riscv {

using common::bit;
using common::bits;
using common::fits_signed;
using common::mask64;
using common::place;
using common::sign_extend;
using common::ToolchainError;
using common::u8;

namespace {

[[noreturn]] void bad_imm(const Instruction& in, const char* why)
{
    throw ToolchainError{std::string{"encode "} + std::string{op_name(in.op)} +
                         ": " + why};
}

u32 fields_r(const OpInfo& info, Reg rd, Reg rs1, Reg rs2)
{
    return static_cast<u32>(
        place(info.funct7, 25, 7) | place(reg_index(rs2), 20, 5) |
        place(reg_index(rs1), 15, 5) | place(info.funct3, 12, 3) |
        place(reg_index(rd), 7, 5) | place(info.major, 0, 7));
}

} // namespace

u32 encode(const Instruction& in)
{
    const OpInfo info = op_info(in.op);
    const auto rd = reg_index(in.rd);
    const auto rs1 = reg_index(in.rs1);
    const auto rs2 = reg_index(in.rs2);
    const u64 imm = static_cast<u64>(in.imm);

    switch (info.format) {
    case Format::R:
        return fields_r(info, in.rd, in.rs1, in.rs2);

    case Format::I:
        if (!fits_signed(in.imm, 12)) bad_imm(in, "imm does not fit 12 bits");
        return static_cast<u32>(place(imm, 20, 12) | place(rs1, 15, 5) |
                                place(info.funct3, 12, 3) | place(rd, 7, 5) |
                                place(info.major, 0, 7));

    case Format::ShiftI:
        if (in.imm < 0 || in.imm > 63) bad_imm(in, "shamt out of 0..63");
        return static_cast<u32>(place(info.funct7 >> 1, 26, 6) |
                                place(imm, 20, 6) | place(rs1, 15, 5) |
                                place(info.funct3, 12, 3) | place(rd, 7, 5) |
                                place(info.major, 0, 7));

    case Format::ShiftIW:
        if (in.imm < 0 || in.imm > 31) bad_imm(in, "shamt out of 0..31");
        return static_cast<u32>(place(info.funct7, 25, 7) | place(imm, 20, 5) |
                                place(rs1, 15, 5) | place(info.funct3, 12, 3) |
                                place(rd, 7, 5) | place(info.major, 0, 7));

    case Format::S:
        if (!fits_signed(in.imm, 12)) bad_imm(in, "imm does not fit 12 bits");
        return static_cast<u32>(place(bits(imm, 5, 7), 25, 7) |
                                place(rs2, 20, 5) | place(rs1, 15, 5) |
                                place(info.funct3, 12, 3) |
                                place(bits(imm, 0, 5), 7, 5) |
                                place(info.major, 0, 7));

    case Format::B:
        if (!fits_signed(in.imm, 13)) bad_imm(in, "offset does not fit 13 bits");
        if (in.imm & 1) bad_imm(in, "branch offset must be even");
        return static_cast<u32>(
            place(bit(imm, 12), 31, 1) | place(bits(imm, 5, 6), 25, 6) |
            place(rs2, 20, 5) | place(rs1, 15, 5) | place(info.funct3, 12, 3) |
            place(bits(imm, 1, 4), 8, 4) | place(bit(imm, 11), 7, 1) |
            place(info.major, 0, 7));

    case Format::U:
        if ((in.imm & 0xFFF) != 0) bad_imm(in, "U imm must be 4096-aligned");
        if (!fits_signed(in.imm, 32)) bad_imm(in, "U imm does not fit 32 bits");
        return static_cast<u32>(place(bits(imm, 12, 20), 12, 20) |
                                place(rd, 7, 5) | place(info.major, 0, 7));

    case Format::J:
        if (!fits_signed(in.imm, 21)) bad_imm(in, "offset does not fit 21 bits");
        if (in.imm & 1) bad_imm(in, "jump offset must be even");
        return static_cast<u32>(
            place(bit(imm, 20), 31, 1) | place(bits(imm, 1, 10), 21, 10) |
            place(bit(imm, 11), 20, 1) | place(bits(imm, 12, 8), 12, 8) |
            place(rd, 7, 5) | place(info.major, 0, 7));

    case Format::Csr:
        return static_cast<u32>(place(in.csr, 20, 12) | place(rs1, 15, 5) |
                                place(info.funct3, 12, 3) | place(rd, 7, 5) |
                                place(info.major, 0, 7));

    case Format::CsrI:
        return static_cast<u32>(place(in.csr, 20, 12) |
                                place(imm & 0x1F, 15, 5) |
                                place(info.funct3, 12, 3) | place(rd, 7, 5) |
                                place(info.major, 0, 7));

    case Format::Sys:
        if (in.op == Opcode::FENCE) return 0x0000000Fu;
        if (in.op == Opcode::ECALL) return 0x00000073u;
        return 0x00100073u; // EBREAK
    }
    throw ToolchainError{"encode: unreachable format"};
}

std::optional<Instruction> decode(u32 word)
{
    const auto major = static_cast<u8>(bits(word, 0, 7));
    const auto funct3 = static_cast<u8>(bits(word, 12, 3));
    const auto funct7 = static_cast<u8>(bits(word, 25, 7));
    const auto rd = reg_from_index(static_cast<unsigned>(bits(word, 7, 5)));
    const auto rs1 = reg_from_index(static_cast<unsigned>(bits(word, 15, 5)));
    const auto rs2 = reg_from_index(static_cast<unsigned>(bits(word, 20, 5)));

    for (unsigned idx = 0; idx < kNumOpcodes; ++idx) {
        const auto op = static_cast<Opcode>(idx);
        const OpInfo info = op_info(op);
        if (info.major != major) continue;

        switch (info.format) {
        case Format::R:
            if (info.funct3 != funct3 || info.funct7 != funct7) break;
            return rtype(op, rd, rs1, rs2);

        case Format::I:
            if (info.funct3 != funct3) break;
            return itype(op, rd, rs1, sign_extend(bits(word, 20, 12), 12));

        case Format::ShiftI:
            if (info.funct3 != funct3) break;
            if ((info.funct7 >> 1) != bits(word, 26, 6)) break;
            return itype(op, rd, rs1, static_cast<i64>(bits(word, 20, 6)));

        case Format::ShiftIW:
            if (info.funct3 != funct3 || info.funct7 != funct7) break;
            return itype(op, rd, rs1, static_cast<i64>(bits(word, 20, 5)));

        case Format::S:
            if (info.funct3 != funct3) break;
            return stype(op, rs1, rs2,
                         sign_extend((bits(word, 25, 7) << 5) |
                                         bits(word, 7, 5),
                                     12));

        case Format::B: {
            if (info.funct3 != funct3) break;
            const u64 imm = (bit(word, 31) << 12) | (bit(word, 7) << 11) |
                            (bits(word, 25, 6) << 5) | (bits(word, 8, 4) << 1);
            return btype(op, rs1, rs2, sign_extend(imm, 13));
        }

        case Format::U:
            return utype(op, rd, sign_extend(bits(word, 12, 20) << 12, 32));

        case Format::J: {
            const u64 imm = (bit(word, 31) << 20) | (bits(word, 12, 8) << 12) |
                            (bit(word, 20) << 11) | (bits(word, 21, 10) << 1);
            Instruction in = jal(rd, sign_extend(imm, 21));
            return in;
        }

        case Format::Csr:
            if (info.funct3 != funct3) break;
            return csr_op(op, rd, rs1, static_cast<u32>(bits(word, 20, 12)));

        case Format::CsrI:
            if (info.funct3 != funct3) break;
            return csri_op(op, rd, static_cast<u32>(bits(word, 15, 5)),
                           static_cast<u32>(bits(word, 20, 12)));

        case Format::Sys:
            if (op == Opcode::FENCE) return Instruction{Opcode::FENCE};
            if (funct3 != 0) break;
            if (op == Opcode::ECALL && bits(word, 20, 12) == 0)
                return Instruction{Opcode::ECALL};
            if (op == Opcode::EBREAK && bits(word, 20, 12) == 1)
                return Instruction{Opcode::EBREAK};
            break;
        }
    }
    return std::nullopt;
}

} // namespace hwst::riscv
