// Program: an assembled unit of RV64+HWST code with label resolution and
// a data segment. This is the object the compiler's codegen emits into
// and the Machine loads. It plays the role of the ELF the paper's LLVM
// toolchain produces.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "riscv/instr.hpp"

namespace hwst::riscv {

/// Default memory map of the simulated process (see DESIGN.md §3).
/// .text at 64 KiB; globals/heap/stack in the low 2^38 user region so
/// compressed 35-bit bases cover every pointer (paper Fig. 2 sizing).
struct MemoryLayout {
    u64 text_base = 0x0000'0000'0001'0000;
    u64 data_base = 0x0000'0000'0010'0000;
    u64 heap_base = 0x0000'0000'0100'0000;
    u64 heap_size = 0x0000'0000'0800'0000; // 128 MiB of simulated heap
    u64 stack_top = 0x0000'0000'3000'0000; // grows down
    u64 stack_size = 0x0000'0000'0040'0000; // 4 MiB
    /// Shadow memory offset loaded into csr.sm.offset (Eq. 1). The `<<2`
    /// linear map of the sub-2^30 user region lands below this offset's
    /// 2^38 + slack ceiling, keeping S.Mem disjoint from user memory.
    u64 shadow_offset = 0x0000'0040'0000'0000;
    /// lock_location region (paper §3.4: pre-allocated; embedded
    /// workloads may map it over the shadow of .text instead).
    u64 lock_base = 0x0000'0000'4000'0000;
    u64 lock_entries = 1u << 20; // one million locks (paper §3.3)
    /// SBCETS shadow argument stack (metadata of pointer args/returns
    /// across calls; tp points at its top and grows down).
    u64 sw_arg_base = 0x0000'0000'3800'0000;
    u64 sw_arg_size = 0x0000'0000'0010'0000; // 1 MiB
    /// Software (SBCETS) metadata space. The software scheme uses a
    /// two-level trie (paper §2: the software baseline's disjoint
    /// shadow is a trie; only the hardware gets the LMSM):
    /// L1[addr >> 22] -> L2 table; L2 holds one 32-byte record per
    /// 8-byte container. The runtime (proxy kernel) pre-populates L1.
    /// The BOGO model instead uses a linear `<<2` map from this same
    /// offset (MPX's bound-table walk is hardware).
    u64 sw_meta_offset = 0x0000'0080'0000'0000; ///< L1 base / linear base
    u64 sw_l2_offset = 0x0000'00A0'0000'0000;   ///< L2 tables, 16 MiB each
    u64 sw_l1_entries() const { return stack_top >> 22; }
    u64 sw_l2_bytes_per_entry() const { return u64{1} << 24; }
    /// ASAN-model shadow bytes (1 byte per 8 user bytes).
    u64 asan_shadow_offset = 0x0000'0100'0000'0000;
};

class Program {
public:
    /// Emit one instruction; returns its index in the code stream.
    std::size_t emit(const Instruction& in);

    /// Define `name` at the current emission point.
    void label(const std::string& name);

    /// True if `name` has been defined (used by lazy runtime emission).
    bool has_label(const std::string& name) const
    {
        return labels_.contains(name);
    }

    // ---- label-relative emission (patched in finalize()) ------------
    void emit_branch(Opcode op, Reg rs1, Reg rs2, const std::string& target);
    void emit_jal(Reg rd, const std::string& target);
    void emit_call(const std::string& target) { emit_jal(Reg::ra, target); }
    void emit_ret() { emit(itype(Opcode::JALR, Reg::zero, Reg::ra, 0)); }

    /// Load-address of a label (text address), via auipc-free absolute
    /// materialisation (text addresses fit 32 bits in our layout).
    void emit_la_text(Reg rd, const std::string& target);

    /// Materialise an arbitrary 64-bit constant.
    void emit_li(Reg rd, i64 value);

    // ---- data segment ------------------------------------------------
    /// Append `bytes` (aligned) to the data segment; returns its address.
    u64 add_data(std::span<const u8> bytes, unsigned align = 8);

    /// Reserve `size` zeroed bytes; returns the address.
    u64 add_bss(u64 size, unsigned align = 8);

    /// Resolve all fixups. Throws on undefined labels. Idempotent.
    void finalize();

    // ---- accessors ----------------------------------------------------
    std::span<const Instruction> code() const { return code_; }
    std::span<const u8> data() const { return data_; }
    const MemoryLayout& layout() const { return layout_; }
    MemoryLayout& layout() { return layout_; }

    u64 text_addr(std::size_t index) const
    {
        return layout_.text_base + 4 * index;
    }

    std::size_t label_index(const std::string& name) const;
    u64 label_addr(const std::string& name) const
    {
        return text_addr(label_index(name));
    }

    /// Entry point: label "main" if defined, else instruction 0.
    u64 entry_addr() const;

    /// Full listing with labels, for debugging and the examples.
    std::string listing() const;

private:
    enum class FixupKind { Branch, Jal, LaText };

    struct Fixup {
        std::size_t index;
        std::string label;
        FixupKind kind;
    };

    std::vector<Instruction> code_;
    std::vector<u8> data_;
    std::unordered_map<std::string, std::size_t> labels_;
    std::vector<Fixup> fixups_;
    MemoryLayout layout_{};
    bool finalized_ = false;
};

} // namespace hwst::riscv
