// 32-bit RISC-V wire-format encoder/decoder for the RV64IM + Zicsr +
// HWST128 instruction set. Round-trip property: decode(encode(i)) == i
// for every encodable instruction (tested in tests/riscv_encoding_test).
#pragma once

#include <optional>

#include "riscv/instr.hpp"

namespace hwst::riscv {

/// Encode to the 32-bit wire format. Throws common::ToolchainError if an
/// immediate does not fit its field.
u32 encode(const Instruction& in);

/// Decode a 32-bit word. Returns std::nullopt for unknown encodings
/// (the simulator raises an illegal-instruction trap on those).
std::optional<Instruction> decode(u32 word);

} // namespace hwst::riscv
