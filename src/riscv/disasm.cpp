#include "riscv/disasm.hpp"

#include <sstream>

namespace hwst::riscv {

namespace {

std::string lower(std::string_view s)
{
    std::string out{s};
    for (char& c : out) c = static_cast<char>(std::tolower(c));
    return out;
}

} // namespace

std::string disassemble(const Instruction& in)
{
    const OpInfo info = op_info(in.op);
    std::ostringstream os;
    os << lower(info.name) << ' ';

    switch (info.format) {
    case Format::R:
        // HWST custom-0 ops have asymmetric operand usage; keep the
        // uniform rd, rs1, rs2 rendering — the mnemonic disambiguates.
        os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", "
           << reg_name(in.rs2);
        break;
    case Format::I:
        if (is_load(in.op)) {
            os << reg_name(in.rd) << ", " << in.imm << '(' << reg_name(in.rs1)
               << ')';
        } else {
            os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", "
               << in.imm;
        }
        break;
    case Format::ShiftI:
    case Format::ShiftIW:
        os << reg_name(in.rd) << ", " << reg_name(in.rs1) << ", " << in.imm;
        break;
    case Format::S:
        os << reg_name(in.rs2) << ", " << in.imm << '(' << reg_name(in.rs1)
           << ')';
        break;
    case Format::B:
        os << reg_name(in.rs1) << ", " << reg_name(in.rs2) << ", " << in.imm;
        break;
    case Format::U:
        os << reg_name(in.rd) << ", " << (in.imm >> 12);
        break;
    case Format::J:
        os << reg_name(in.rd) << ", " << in.imm;
        break;
    case Format::Csr:
        os << reg_name(in.rd) << ", 0x" << std::hex << in.csr << std::dec
           << ", " << reg_name(in.rs1);
        break;
    case Format::CsrI:
        os << reg_name(in.rd) << ", 0x" << std::hex << in.csr << std::dec
           << ", " << in.imm;
        break;
    case Format::Sys:
        return lower(info.name);
    }
    return os.str();
}

} // namespace hwst::riscv
