#include "riscv/image.hpp"
#include <cstring>

#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "riscv/disasm.hpp"
#include "riscv/encoding.hpp"

namespace hwst::riscv {

using common::ToolchainError;

namespace {

constexpr char kMagic[8] = {'H', 'W', 'S', 'T', '1', '2', '8', '\0'};

void put_u64(std::ostream& os, u64 v)
{
    for (int i = 0; i < 8; ++i)
        os.put(static_cast<char>((v >> (8 * i)) & 0xFF));
}

u64 get_u64(std::istream& is)
{
    u64 v = 0;
    for (int i = 0; i < 8; ++i) {
        const int c = is.get();
        if (c == EOF) throw ToolchainError{"image: truncated container"};
        v |= static_cast<u64>(static_cast<u8>(c)) << (8 * i);
    }
    return v;
}

} // namespace

const Segment* ProgramImage::find(const std::string& name) const
{
    for (const Segment& s : segments)
        if (s.name == name) return &s;
    return nullptr;
}

ProgramImage build_image(const Program& program)
{
    ProgramImage image;
    image.entry = program.entry_addr();

    Segment text;
    text.name = "text";
    text.base = program.layout().text_base;
    text.bytes.reserve(program.code().size() * 4);
    for (const Instruction& in : program.code()) {
        const u32 word = encode(in);
        for (int i = 0; i < 4; ++i)
            text.bytes.push_back(static_cast<u8>((word >> (8 * i)) & 0xFF));
    }
    image.segments.push_back(std::move(text));

    if (!program.data().empty()) {
        Segment data;
        data.name = "data";
        data.base = program.layout().data_base;
        data.bytes.assign(program.data().begin(), program.data().end());
        image.segments.push_back(std::move(data));
    }
    return image;
}

void write_hex(const ProgramImage& image, std::ostream& os)
{
    os << std::hex << std::setfill('0');
    for (const Segment& seg : image.segments) {
        os << "// segment " << seg.name << " @0x" << seg.base << '\n';
        os << '@' << (seg.base / 4) << '\n';
        for (std::size_t i = 0; i < seg.bytes.size(); i += 4) {
            u32 word = 0;
            for (std::size_t k = 0; k < 4 && i + k < seg.bytes.size(); ++k)
                word |= static_cast<u32>(seg.bytes[i + k]) << (8 * k);
            os << std::setw(8) << word << '\n';
        }
    }
    os << std::dec << std::setfill(' ');
}

void write_image(const ProgramImage& image, std::ostream& os)
{
    os.write(kMagic, sizeof kMagic);
    put_u64(os, image.entry);
    put_u64(os, image.segments.size());
    for (const Segment& seg : image.segments) {
        put_u64(os, seg.name.size());
        os.write(seg.name.data(),
                 static_cast<std::streamsize>(seg.name.size()));
        put_u64(os, seg.base);
        put_u64(os, seg.bytes.size());
        os.write(reinterpret_cast<const char*>(seg.bytes.data()),
                 static_cast<std::streamsize>(seg.bytes.size()));
    }
}

ProgramImage read_image(std::istream& is)
{
    char magic[8];
    is.read(magic, sizeof magic);
    if (is.gcount() != sizeof magic ||
        std::memcmp(magic, kMagic, sizeof magic) != 0) {
        throw ToolchainError{"image: bad magic"};
    }
    ProgramImage image;
    image.entry = get_u64(is);
    const u64 nseg = get_u64(is);
    if (nseg > 16) throw ToolchainError{"image: implausible segment count"};
    for (u64 s = 0; s < nseg; ++s) {
        Segment seg;
        const u64 name_len = get_u64(is);
        if (name_len > 64) throw ToolchainError{"image: bad name length"};
        seg.name.resize(name_len);
        is.read(seg.name.data(), static_cast<std::streamsize>(name_len));
        seg.base = get_u64(is);
        const u64 size = get_u64(is);
        if (size > (u64{1} << 32))
            throw ToolchainError{"image: implausible segment size"};
        seg.bytes.resize(size);
        is.read(reinterpret_cast<char*>(seg.bytes.data()),
                static_cast<std::streamsize>(size));
        if (static_cast<u64>(is.gcount()) != size)
            throw ToolchainError{"image: truncated segment"};
        image.segments.push_back(std::move(seg));
    }
    return image;
}

std::string disassemble_text(const ProgramImage& image)
{
    const Segment* text = image.find("text");
    if (!text) throw ToolchainError{"image: no text segment"};
    std::ostringstream os;
    for (std::size_t i = 0; i + 4 <= text->bytes.size(); i += 4) {
        u32 word = 0;
        for (std::size_t k = 0; k < 4; ++k)
            word |= static_cast<u32>(text->bytes[i + k]) << (8 * k);
        os << std::hex << std::setw(10) << (text->base + i) << std::dec
           << ":  ";
        if (const auto in = decode(word)) {
            os << disassemble(*in);
        } else {
            os << ".word 0x" << std::hex << word << std::dec;
        }
        os << '\n';
    }
    return os.str();
}

} // namespace hwst::riscv
