// Decoded instruction representation. The simulator executes these
// directly (pre-decoded); the encoder/decoder round-trips them through
// the 32-bit wire format for fidelity tests and memory images.
#pragma once

#include "common/bitops.hpp"
#include "riscv/opcode.hpp"
#include "riscv/reg.hpp"

namespace hwst::riscv {

using common::i64;
using common::u32;
using common::u64;
using common::u8;

struct Instruction {
    Opcode op{Opcode::ADDI};
    Reg rd{Reg::zero};
    Reg rs1{Reg::zero};
    Reg rs2{Reg::zero};
    i64 imm{0};   ///< sign-extended immediate (branch/jump: byte offset)
    u32 csr{0};   ///< CSR address for Zicsr ops; zimm in rs1 for CsrI

    friend bool operator==(const Instruction&, const Instruction&) = default;
};

// ---- factory helpers (used heavily by codegen and tests) --------------

inline Instruction rtype(Opcode op, Reg rd, Reg rs1, Reg rs2)
{
    return Instruction{op, rd, rs1, rs2, 0, 0};
}

inline Instruction itype(Opcode op, Reg rd, Reg rs1, i64 imm)
{
    return Instruction{op, rd, rs1, Reg::zero, imm, 0};
}

inline Instruction stype(Opcode op, Reg rs1, Reg rs2, i64 imm)
{
    return Instruction{op, Reg::zero, rs1, rs2, imm, 0};
}

inline Instruction btype(Opcode op, Reg rs1, Reg rs2, i64 offset)
{
    return Instruction{op, Reg::zero, rs1, rs2, offset, 0};
}

inline Instruction utype(Opcode op, Reg rd, i64 imm)
{
    return Instruction{op, rd, Reg::zero, Reg::zero, imm, 0};
}

inline Instruction jal(Reg rd, i64 offset)
{
    return Instruction{Opcode::JAL, rd, Reg::zero, Reg::zero, offset, 0};
}

inline Instruction csr_op(Opcode op, Reg rd, Reg rs1, u32 csr)
{
    return Instruction{op, rd, rs1, Reg::zero, 0, csr};
}

inline Instruction csri_op(Opcode op, Reg rd, u32 zimm5, u32 csr)
{
    Instruction in{op, rd, Reg::zero, Reg::zero, 0, csr};
    in.imm = zimm5 & 0x1F;
    return in;
}

// Common pseudo-instructions.
inline Instruction nop() { return itype(Opcode::ADDI, Reg::zero, Reg::zero, 0); }
inline Instruction mv(Reg rd, Reg rs) { return itype(Opcode::ADDI, rd, rs, 0); }
inline Instruction li_small(Reg rd, i64 imm)
{
    // Caller must guarantee imm fits 12 bits; materialising larger
    // constants is the assembler's job (Program::emit_li).
    return itype(Opcode::ADDI, rd, Reg::zero, imm);
}

} // namespace hwst::riscv
