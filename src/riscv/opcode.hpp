// Opcode catalogue: RV64IM + Zicsr subset plus the HWST128 memory-safety
// extension. The X-macro table keeps the encoder, decoder, disassembler
// and executor in sync from a single definition.
//
// HWST128 extension (paper §3.2-3.3, Fig. 1/3):
//   custom-0 (0x0B) R-type  : metadata bind / shadow move / checks
//   custom-1 (0x2B) I-type  : checked loads (spatial check fused, SCU)
//   custom-2 (0x5B) S-type  : checked stores (spatial check fused, SCU)
#pragma once

#include <cstdint>
#include <string_view>

namespace hwst::riscv {

/// Instruction encoding format.
enum class Format : std::uint8_t {
    R,      ///< rd, rs1, rs2; funct3+funct7
    I,      ///< rd, rs1, imm12
    ShiftI, ///< rd, rs1, shamt (6-bit, RV64)
    ShiftIW,///< rd, rs1, shamt (5-bit, *W shifts)
    S,      ///< rs1, rs2, imm12 (split)
    B,      ///< rs1, rs2, imm13 (branch)
    U,      ///< rd, imm20<<12
    J,      ///< rd, imm21 (jal)
    Csr,    ///< rd, rs1, csr
    CsrI,   ///< rd, zimm5, csr
    Sys,    ///< ecall/ebreak/fence
};

// Name, Format, major opcode, funct3, funct7.
// clang-format off
#define HWST_OPCODE_LIST(X) \
    /* ---- RV64I ---- */ \
    X(LUI,    U,       0x37, 0, 0)  \
    X(AUIPC,  U,       0x17, 0, 0)  \
    X(JAL,    J,       0x6F, 0, 0)  \
    X(JALR,   I,       0x67, 0, 0)  \
    X(BEQ,    B,       0x63, 0, 0)  \
    X(BNE,    B,       0x63, 1, 0)  \
    X(BLT,    B,       0x63, 4, 0)  \
    X(BGE,    B,       0x63, 5, 0)  \
    X(BLTU,   B,       0x63, 6, 0)  \
    X(BGEU,   B,       0x63, 7, 0)  \
    X(LB,     I,       0x03, 0, 0)  \
    X(LH,     I,       0x03, 1, 0)  \
    X(LW,     I,       0x03, 2, 0)  \
    X(LD,     I,       0x03, 3, 0)  \
    X(LBU,    I,       0x03, 4, 0)  \
    X(LHU,    I,       0x03, 5, 0)  \
    X(LWU,    I,       0x03, 6, 0)  \
    X(SB,     S,       0x23, 0, 0)  \
    X(SH,     S,       0x23, 1, 0)  \
    X(SW,     S,       0x23, 2, 0)  \
    X(SD,     S,       0x23, 3, 0)  \
    X(ADDI,   I,       0x13, 0, 0)  \
    X(SLTI,   I,       0x13, 2, 0)  \
    X(SLTIU,  I,       0x13, 3, 0)  \
    X(XORI,   I,       0x13, 4, 0)  \
    X(ORI,    I,       0x13, 6, 0)  \
    X(ANDI,   I,       0x13, 7, 0)  \
    X(SLLI,   ShiftI,  0x13, 1, 0x00) \
    X(SRLI,   ShiftI,  0x13, 5, 0x00) \
    X(SRAI,   ShiftI,  0x13, 5, 0x20) \
    X(ADD,    R,       0x33, 0, 0x00) \
    X(SUB,    R,       0x33, 0, 0x20) \
    X(SLL,    R,       0x33, 1, 0x00) \
    X(SLT,    R,       0x33, 2, 0x00) \
    X(SLTU,   R,       0x33, 3, 0x00) \
    X(XOR,    R,       0x33, 4, 0x00) \
    X(SRL,    R,       0x33, 5, 0x00) \
    X(SRA,    R,       0x33, 5, 0x20) \
    X(OR,     R,       0x33, 6, 0x00) \
    X(AND,    R,       0x33, 7, 0x00) \
    X(ADDIW,  I,       0x1B, 0, 0)    \
    X(SLLIW,  ShiftIW, 0x1B, 1, 0x00) \
    X(SRLIW,  ShiftIW, 0x1B, 5, 0x00) \
    X(SRAIW,  ShiftIW, 0x1B, 5, 0x20) \
    X(ADDW,   R,       0x3B, 0, 0x00) \
    X(SUBW,   R,       0x3B, 0, 0x20) \
    X(SLLW,   R,       0x3B, 1, 0x00) \
    X(SRLW,   R,       0x3B, 5, 0x00) \
    X(SRAW,   R,       0x3B, 5, 0x20) \
    X(FENCE,  Sys,     0x0F, 0, 0)    \
    X(ECALL,  Sys,     0x73, 0, 0x00) \
    X(EBREAK, Sys,     0x73, 0, 0x01) \
    /* ---- RV64M ---- */ \
    X(MUL,    R,       0x33, 0, 0x01) \
    X(MULH,   R,       0x33, 1, 0x01) \
    X(MULHSU, R,       0x33, 2, 0x01) \
    X(MULHU,  R,       0x33, 3, 0x01) \
    X(DIV,    R,       0x33, 4, 0x01) \
    X(DIVU,   R,       0x33, 5, 0x01) \
    X(REM,    R,       0x33, 6, 0x01) \
    X(REMU,   R,       0x33, 7, 0x01) \
    X(MULW,   R,       0x3B, 0, 0x01) \
    X(DIVW,   R,       0x3B, 4, 0x01) \
    X(DIVUW,  R,       0x3B, 5, 0x01) \
    X(REMW,   R,       0x3B, 6, 0x01) \
    X(REMUW,  R,       0x3B, 7, 0x01) \
    /* ---- Zicsr ---- */ \
    X(CSRRW,  Csr,     0x73, 1, 0)  \
    X(CSRRS,  Csr,     0x73, 2, 0)  \
    X(CSRRC,  Csr,     0x73, 3, 0)  \
    X(CSRRWI, CsrI,    0x73, 5, 0)  \
    X(CSRRSI, CsrI,    0x73, 6, 0)  \
    X(CSRRCI, CsrI,    0x73, 7, 0)  \
    /* ---- HWST128 custom-0: metadata bind/move/check ---- */ \
    X(BNDRS,  R,       0x0B, 0, 0x00) /* SRF[rd].spatial  = comp(rs1=base, rs2=bound) */ \
    X(BNDRT,  R,       0x0B, 0, 0x01) /* SRF[rd].temporal = comp(rs1=key,  rs2=lock)  */ \
    X(SBDL,   S,       0x5B, 4, 0x00) /* S.Mem[smac(rs1+imm)].lo = SRF[rs2].lo        */ \
    X(SBDU,   S,       0x5B, 5, 0x00) /* S.Mem[smac(rs1+imm)].hi = SRF[rs2].hi        */ \
    X(LBDLS,  I,       0x7B, 0, 0x00) /* SRF[rd].lo = S.Mem[smac(rs1+imm)].lo         */ \
    X(LBDUS,  I,       0x7B, 1, 0x00) /* SRF[rd].hi = S.Mem[smac(rs1+imm)].hi         */ \
    X(LBAS,   R,       0x0B, 3, 0x00) /* rd = decompressed base  of S.Mem[smac(rs1)]  */ \
    X(LBND,   R,       0x0B, 3, 0x01) /* rd = decompressed bound of S.Mem[smac(rs1)]  */ \
    X(LKEY,   R,       0x0B, 3, 0x02) /* rd = decompressed key   of S.Mem[smac(rs1)]  */ \
    X(LLOC,   R,       0x0B, 3, 0x03) /* rd = decompressed lock  of S.Mem[smac(rs1)]  */ \
    X(TCHK,   R,       0x0B, 4, 0x00) /* temporal check of SRF[rs1] via keybuffer/TCU */ \
    X(KBFLUSH,R,       0x0B, 4, 0x01) /* flush keybuffer (issued by free wrapper)     */ \
    X(SRFMV,  R,       0x0B, 5, 0x00) /* SRF[rd] = SRF[rs1] (explicit, for wrappers)  */ \
    X(SRFCLR, R,       0x0B, 5, 0x01) /* invalidate SRF[rd]                           */ \
    /* ---- HWST128 custom-1: checked loads (SCU fused) ---- */ \
    X(CLB,    I,       0x2B, 0, 0)  \
    X(CLH,    I,       0x2B, 1, 0)  \
    X(CLW,    I,       0x2B, 2, 0)  \
    X(CLD,    I,       0x2B, 3, 0)  \
    X(CLBU,   I,       0x2B, 4, 0)  \
    X(CLHU,   I,       0x2B, 5, 0)  \
    X(CLWU,   I,       0x2B, 6, 0)  \
    /* ---- HWST128 custom-2: checked stores (SCU fused) ---- */ \
    X(CSB,    S,       0x5B, 0, 0)  \
    X(CSH,    S,       0x5B, 1, 0)  \
    X(CSW,    S,       0x5B, 2, 0)  \
    X(CSD,    S,       0x5B, 3, 0)
// clang-format on

enum class Opcode : std::uint8_t {
#define HWST_ENUM(name, fmt, major, f3, f7) name,
    HWST_OPCODE_LIST(HWST_ENUM)
#undef HWST_ENUM
};

inline constexpr unsigned kNumOpcodes = 0
#define HWST_COUNT(name, fmt, major, f3, f7) +1
    HWST_OPCODE_LIST(HWST_COUNT)
#undef HWST_COUNT
    ;

struct OpInfo {
    std::string_view name;
    Format format;
    std::uint8_t major;
    std::uint8_t funct3;
    std::uint8_t funct7;
};

constexpr OpInfo op_info(Opcode op)
{
    constexpr OpInfo table[] = {
#define HWST_INFO(name, fmt, major, f3, f7) \
    OpInfo{#name, Format::fmt, major, f3, f7},
        HWST_OPCODE_LIST(HWST_INFO)
#undef HWST_INFO
    };
    return table[static_cast<unsigned>(op)];
}

constexpr std::string_view op_name(Opcode op) { return op_info(op).name; }
constexpr Format op_format(Opcode op) { return op_info(op).format; }

/// True for every instruction that reads user memory (timing: D-cache).
constexpr bool is_load(Opcode op)
{
    switch (op) {
    case Opcode::LB: case Opcode::LH: case Opcode::LW: case Opcode::LD:
    case Opcode::LBU: case Opcode::LHU: case Opcode::LWU:
    case Opcode::CLB: case Opcode::CLH: case Opcode::CLW: case Opcode::CLD:
    case Opcode::CLBU: case Opcode::CLHU: case Opcode::CLWU:
        return true;
    default:
        return false;
    }
}

/// True for every instruction that writes user memory.
constexpr bool is_store(Opcode op)
{
    switch (op) {
    case Opcode::SB: case Opcode::SH: case Opcode::SW: case Opcode::SD:
    case Opcode::CSB: case Opcode::CSH: case Opcode::CSW: case Opcode::CSD:
        return true;
    default:
        return false;
    }
}

/// True for the checked (SCU-fused) memory ops of the HWST128 extension.
constexpr bool is_checked_mem(Opcode op)
{
    switch (op) {
    case Opcode::CLB: case Opcode::CLH: case Opcode::CLW: case Opcode::CLD:
    case Opcode::CLBU: case Opcode::CLHU: case Opcode::CLWU:
    case Opcode::CSB: case Opcode::CSH: case Opcode::CSW: case Opcode::CSD:
        return true;
    default:
        return false;
    }
}

/// Access width in bytes for loads/stores (checked or not).
constexpr unsigned mem_width(Opcode op)
{
    switch (op) {
    case Opcode::LB: case Opcode::LBU: case Opcode::SB:
    case Opcode::CLB: case Opcode::CLBU: case Opcode::CSB:
        return 1;
    case Opcode::LH: case Opcode::LHU: case Opcode::SH:
    case Opcode::CLH: case Opcode::CLHU: case Opcode::CSH:
        return 2;
    case Opcode::LW: case Opcode::LWU: case Opcode::SW:
    case Opcode::CLW: case Opcode::CLWU: case Opcode::CSW:
        return 4;
    case Opcode::LD: case Opcode::SD: case Opcode::CLD: case Opcode::CSD:
        return 8;
    default:
        return 0;
    }
}

/// True for branch/jump instructions (control transfer).
constexpr bool is_branch(Opcode op)
{
    switch (op) {
    case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT: case Opcode::BGE:
    case Opcode::BLTU: case Opcode::BGEU:
        return true;
    default:
        return false;
    }
}

/// True for instructions in the HWST128 custom extension.
constexpr bool is_hwst(Opcode op)
{
    const auto major = op_info(op).major;
    return major == 0x0B || major == 0x2B || major == 0x5B ||
           major == 0x7B;
}

} // namespace hwst::riscv
