// Memory-image writer/reader: turns an assembled Program into the flat
// artifacts an FPGA flow consumes — a Verilog $readmemh hex file for
// the text and data segments, and a compact binary container that can
// be reloaded into a Program-shaped image. This is the "FPGA-ready"
// edge of the toolchain (paper contribution 4: open-source tool-chain
// for the FPGA-ready RISC-V platform).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "riscv/program.hpp"

namespace hwst::riscv {

/// One loadable segment of a program image.
struct Segment {
    std::string name; ///< "text" or "data"
    u64 base = 0;
    std::vector<u8> bytes;
};

struct ProgramImage {
    std::vector<Segment> segments;
    u64 entry = 0;

    const Segment* find(const std::string& name) const;
};

/// Build the image of a finalized program (text encoded to 32-bit
/// little-endian words, data verbatim).
ProgramImage build_image(const Program& program);

/// Verilog $readmemh format: `@ADDRESS` (word address) directives and
/// one 8-hex-digit word per line. Suitable for an FPGA block-RAM init.
void write_hex(const ProgramImage& image, std::ostream& os);

/// Compact binary container: magic, entry, per-segment (name, base,
/// size, bytes). Round-trips through read_image.
void write_image(const ProgramImage& image, std::ostream& os);
ProgramImage read_image(std::istream& is);

/// Disassemble the text segment of an image (sanity tooling: proves
/// the hex the FPGA sees decodes back to the program).
std::string disassemble_text(const ProgramImage& image);

} // namespace hwst::riscv
