#include "riscv/program.hpp"

#include <sstream>

#include "common/error.hpp"
#include "riscv/disasm.hpp"

namespace hwst::riscv {

using common::align_up;
using common::fits_signed;
using common::ToolchainError;

std::size_t Program::emit(const Instruction& in)
{
    if (finalized_) throw ToolchainError{"Program: emit after finalize"};
    code_.push_back(in);
    return code_.size() - 1;
}

void Program::label(const std::string& name)
{
    if (finalized_) throw ToolchainError{"Program: label after finalize"};
    const auto [it, inserted] = labels_.emplace(name, code_.size());
    if (!inserted) throw ToolchainError{"Program: duplicate label " + name};
}

void Program::emit_branch(Opcode op, Reg rs1, Reg rs2,
                          const std::string& target)
{
    const auto idx = emit(btype(op, rs1, rs2, 0));
    fixups_.push_back(Fixup{idx, target, FixupKind::Branch});
}

void Program::emit_jal(Reg rd, const std::string& target)
{
    const auto idx = emit(jal(rd, 0));
    fixups_.push_back(Fixup{idx, target, FixupKind::Jal});
}

void Program::emit_la_text(Reg rd, const std::string& target)
{
    // Two-instruction absolute materialisation (text addresses < 2^31).
    const auto idx = emit(utype(Opcode::LUI, rd, 0));
    emit(itype(Opcode::ADDIW, rd, rd, 0));
    fixups_.push_back(Fixup{idx, target, FixupKind::LaText});
}

void Program::emit_li(Reg rd, i64 value)
{
    if (fits_signed(value, 12)) {
        emit(itype(Opcode::ADDI, rd, Reg::zero, value));
        return;
    }
    const i64 lo = common::sign_extend(static_cast<u64>(value) & 0xFFF, 12);
    const i64 hi = value - lo; // multiple of 4096
    if (fits_signed(hi, 32)) {
        emit(utype(Opcode::LUI, rd, hi));
        if (lo != 0) emit(itype(Opcode::ADDIW, rd, rd, lo));
        return;
    }
    // 64-bit path: materialise the upper bits (compensating for the
    // sign-extended low part), shift, add the low 12.
    emit_li(rd, (value - lo) >> 12);
    emit(itype(Opcode::SLLI, rd, rd, 12));
    if (lo != 0) emit(itype(Opcode::ADDI, rd, rd, lo));
}

u64 Program::add_data(std::span<const u8> bytes, unsigned align)
{
    const u64 off = align_up(data_.size(), align);
    data_.resize(off, 0);
    data_.insert(data_.end(), bytes.begin(), bytes.end());
    return layout_.data_base + off;
}

u64 Program::add_bss(u64 size, unsigned align)
{
    const u64 off = align_up(data_.size(), align);
    data_.resize(off + size, 0);
    return layout_.data_base + off;
}

std::size_t Program::label_index(const std::string& name) const
{
    const auto it = labels_.find(name);
    if (it == labels_.end())
        throw ToolchainError{"Program: undefined label " + name};
    return it->second;
}

u64 Program::entry_addr() const
{
    if (labels_.contains("main")) return label_addr("main");
    return layout_.text_base;
}

void Program::finalize()
{
    if (finalized_) return;
    for (const Fixup& fx : fixups_) {
        const auto target = label_index(fx.label);
        const i64 offset =
            (static_cast<i64>(target) - static_cast<i64>(fx.index)) * 4;
        Instruction& in = code_[fx.index];
        switch (fx.kind) {
        case FixupKind::Branch:
            if (!fits_signed(offset, 13))
                throw ToolchainError{"branch to " + fx.label + " out of range"};
            in.imm = offset;
            break;
        case FixupKind::Jal:
            if (!fits_signed(offset, 21))
                throw ToolchainError{"jal to " + fx.label + " out of range"};
            in.imm = offset;
            break;
        case FixupKind::LaText: {
            const i64 addr = static_cast<i64>(text_addr(target));
            const i64 lo =
                common::sign_extend(static_cast<u64>(addr) & 0xFFF, 12);
            const i64 hi = addr - lo;
            if (!fits_signed(hi, 32))
                throw ToolchainError{"la: text address beyond 2^31"};
            in.imm = hi;                 // the LUI
            code_[fx.index + 1].imm = lo; // the ADDIW
            break;
        }
        }
    }
    fixups_.clear();
    finalized_ = true;
}

std::string Program::listing() const
{
    // Invert the label map for printing.
    std::unordered_map<std::size_t, std::vector<std::string>> at;
    for (const auto& [name, idx] : labels_) at[idx].push_back(name);

    std::ostringstream os;
    for (std::size_t i = 0; i < code_.size(); ++i) {
        if (const auto it = at.find(i); it != at.end()) {
            for (const auto& name : it->second) os << name << ":\n";
        }
        os << "  " << std::hex << text_addr(i) << std::dec << ":  "
           << disassemble(code_[i]) << '\n';
    }
    return os.str();
}

} // namespace hwst::riscv
