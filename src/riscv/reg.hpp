// RV64 integer register file names. The shadow register file (SRF) is
// indexed by the same register numbers (one shadow register per GPR).
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "common/error.hpp"

namespace hwst::riscv {

/// Architectural integer register. Values are the 5-bit encodings.
enum class Reg : std::uint8_t {
    zero = 0,
    ra = 1,
    sp = 2,
    gp = 3,
    tp = 4,
    t0 = 5,
    t1 = 6,
    t2 = 7,
    s0 = 8,
    s1 = 9,
    a0 = 10,
    a1 = 11,
    a2 = 12,
    a3 = 13,
    a4 = 14,
    a5 = 15,
    a6 = 16,
    a7 = 17,
    s2 = 18,
    s3 = 19,
    s4 = 20,
    s5 = 21,
    s6 = 22,
    s7 = 23,
    s8 = 24,
    s9 = 25,
    s10 = 26,
    s11 = 27,
    t3 = 28,
    t4 = 29,
    t5 = 30,
    t6 = 31,
};

inline constexpr unsigned kNumRegs = 32;

constexpr unsigned reg_index(Reg r) { return static_cast<unsigned>(r); }

constexpr Reg reg_from_index(unsigned i)
{
    if (i >= kNumRegs) throw common::ToolchainError{"register index out of range"};
    return static_cast<Reg>(i);
}

constexpr std::string_view reg_name(Reg r)
{
    constexpr std::array<std::string_view, kNumRegs> names{
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
        "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
        "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
        "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
    return names[reg_index(r)];
}

} // namespace hwst::riscv
