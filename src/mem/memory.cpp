#include "mem/memory.hpp"

#include "common/error.hpp"

namespace hwst::mem {

using common::sign_extend;

void Memory::map_region(std::string name, u64 base, u64 size)
{
    if (size == 0) throw common::ConfigError{"map_region: empty region"};
    regions_.push_back(Region{std::move(name), base, size});
}

bool Memory::is_mapped(u64 addr, unsigned width) const
{
    if (addr < kPageSize) return false; // null guard page
    const u64 end = addr + width;
    if (end < addr) return false; // wrap
    // Hot path: most accesses hit the same region as the previous one.
    if (last_region_ < regions_.size()) {
        const Region& r = regions_[last_region_];
        if (addr >= r.base && end <= r.base + r.size) return true;
    }
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        const Region& r = regions_[i];
        if (addr >= r.base && end <= r.base + r.size) {
            last_region_ = i;
            return true;
        }
    }
    return false;
}

void Memory::check_mapped(u64 addr, unsigned width, Access kind) const
{
    if (!is_mapped(addr, width)) throw MemFault{addr, kind};
}

u8* Memory::page_for(u64 addr, bool create) const
{
    const u64 key = addr / kPageSize;
    const auto it = pages_.find(key);
    if (it != pages_.end()) return it->second.get();
    if (!create) return nullptr;
    auto page = std::make_unique<u8[]>(kPageSize);
    u8* raw = page.get();
    pages_.emplace(key, std::move(page));
    return raw;
}

u64 Memory::load(u64 addr, unsigned width, bool do_sign_extend) const
{
    check_mapped(addr, width, Access::Read);
    u64 value = 0;
    for (unsigned i = 0; i < width; ++i) {
        const u64 a = addr + i;
        const u8* page = page_for(a, false);
        const u64 byte = page ? page[a % kPageSize] : 0;
        value |= byte << (8 * i);
    }
    return do_sign_extend ? static_cast<u64>(sign_extend(value, 8 * width))
                          : value;
}

void Memory::store(u64 addr, unsigned width, u64 value)
{
    check_mapped(addr, width, Access::Write);
    for (unsigned i = 0; i < width; ++i) {
        const u64 a = addr + i;
        u8* page = page_for(a, true);
        page[a % kPageSize] = static_cast<u8>(value >> (8 * i));
    }
}

void Memory::write_bytes(u64 addr, std::span<const u8> bytes)
{
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        u8* page = page_for(addr + i, true);
        page[(addr + i) % kPageSize] = bytes[i];
    }
}

std::vector<u8> Memory::read_bytes(u64 addr, u64 len) const
{
    std::vector<u8> out(len, 0);
    for (u64 i = 0; i < len; ++i) {
        const u8* page = page_for(addr + i, false);
        if (page) out[i] = page[(addr + i) % kPageSize];
    }
    return out;
}

} // namespace hwst::mem
