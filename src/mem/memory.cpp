#include "mem/memory.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace hwst::mem {

void Memory::map_region(std::string name, u64 base, u64 size)
{
    if (size == 0) throw common::ConfigError{"map_region: empty region"};
    regions_.push_back(Region{std::move(name), base, size});
    // The region set changed: cached full-page validity claims may be
    // stale relative to the new layout. Refill on demand.
    tlb_invalidate();
    if (invalidation_hook_) invalidation_hook_();
}

bool Memory::is_mapped(u64 addr, unsigned width) const
{
    if (addr < kPageSize) return false; // null guard page
    const u64 end = addr + width;
    if (end < addr) return false; // wrap
    // Hot path: most accesses hit the same region as the previous one.
    if (last_region_ < regions_.size()) {
        const Region& r = regions_[last_region_];
        if (addr >= r.base && end <= r.base + r.size) return true;
    }
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        const Region& r = regions_[i];
        if (addr >= r.base && end <= r.base + r.size) {
            last_region_ = i;
            return true;
        }
    }
    return false;
}

void Memory::check_mapped(u64 addr, unsigned width, Access kind) const
{
    if (!is_mapped(addr, width)) throw MemFault{addr, kind};
}

bool Memory::page_fully_mapped(u64 page_base) const
{
    if (page_base < kPageSize) return false; // null guard page
    for (const Region& r : regions_) {
        if (page_base >= r.base &&
            page_base + kPageSize <= r.base + r.size)
            return true;
    }
    return false;
}

void Memory::tlb_fill(u64 addr) const
{
    const u64 page_base = addr & ~(kPageSize - 1);
    if (!page_fully_mapped(page_base)) return;
    TlbSet& s = tlb_[tlb_slot(addr)];
    u8* host = page_for(page_base, false);
    // Refresh an existing way in place (a straddling access may have
    // taken the slow path for a page that is already cached; minting a
    // duplicate entry would let the two copies disagree about `host`).
    for (TlbEntry& w : s.way) {
        if (w.page_base == page_base) {
            w.host = host;
            return;
        }
    }
    s.way[s.victim] = TlbEntry{page_base, host};
    s.victim ^= 1;
}

u8* Memory::page_for(u64 addr, bool create) const
{
    const u64 key = addr / kPageSize;
    const auto it = pages_.find(key);
    if (it != pages_.end()) return it->second.get();
    if (!create) return nullptr;
    auto page = std::make_unique<u8[]>(kPageSize);
    u8* raw = page.get();
    pages_.emplace(key, std::move(page));
    // First touch: a cached entry for this page (if any) still claims
    // host == null; drop it so the next access picks up the backing
    // store. Only the matching way — its set neighbour is a different
    // page and stays valid.
    const u64 page_base = addr & ~(kPageSize - 1);
    for (TlbEntry& w : tlb_[tlb_slot(addr)].way) {
        if (w.page_base == page_base) w = TlbEntry{};
    }
    return raw;
}

u64 Memory::load_slow(u64 addr, unsigned width, bool do_sign_extend) const
{
    // A single-page access reaching the slow path is a translation-cache
    // miss (straddles are never cacheable and count as neither).
    if ((addr & (kPageSize - 1)) + width <= kPageSize) ++tlb_stats_.misses;
    check_mapped(addr, width, Access::Read);
    u64 value = 0;
    for (unsigned i = 0; i < width; ++i) {
        const u64 a = addr + i;
        const u8* page = page_for(a, false);
        const u64 byte = page ? page[a % kPageSize] : 0;
        value |= byte << (8 * i);
    }
    if ((addr & (kPageSize - 1)) + width <= kPageSize) tlb_fill(addr);
    return do_sign_extend
               ? static_cast<u64>(common::sign_extend(value, 8 * width))
               : value;
}

void Memory::store_slow(u64 addr, unsigned width, u64 value)
{
    if ((addr & (kPageSize - 1)) + width <= kPageSize) ++tlb_stats_.misses;
    check_mapped(addr, width, Access::Write);
    for (unsigned i = 0; i < width; ++i) {
        const u64 a = addr + i;
        u8* page = page_for(a, true);
        page[a % kPageSize] = static_cast<u8>(value >> (8 * i));
    }
    if ((addr & (kPageSize - 1)) + width <= kPageSize) tlb_fill(addr);
}

void Memory::write_bytes(u64 addr, std::span<const u8> bytes)
{
    // One page lookup per touched page, not per byte.
    std::size_t i = 0;
    while (i < bytes.size()) {
        const u64 a = addr + i;
        const u64 off = a & (kPageSize - 1);
        const u64 chunk =
            std::min<u64>(kPageSize - off, bytes.size() - i);
        u8* page = page_for(a, true);
        std::memcpy(page + off, bytes.data() + i, chunk);
        i += chunk;
    }
}

std::vector<u8> Memory::read_bytes(u64 addr, u64 len) const
{
    std::vector<u8> out(len, 0);
    u64 i = 0;
    while (i < len) {
        const u64 a = addr + i;
        const u64 off = a & (kPageSize - 1);
        const u64 chunk = std::min<u64>(kPageSize - off, len - i);
        if (const u8* page = page_for(a, false))
            std::memcpy(out.data() + i, page + off, chunk);
        i += chunk;
    }
    return out;
}

} // namespace hwst::mem
