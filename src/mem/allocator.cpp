#include "mem/allocator.hpp"

#include "common/error.hpp"

namespace hwst::mem {

using common::align_up;

HeapAllocator::HeapAllocator(u64 base, u64 size, u64 align)
    : base_{base}, size_{size}, align_{align}
{
    if (!common::is_pow2(align_))
        throw common::ConfigError{"HeapAllocator: align must be power of two"};
    free_.emplace(base_, size_);
}

u64 HeapAllocator::malloc(u64 size)
{
    if (size == 0) size = 1;
    const u64 need = align_up(size, align_);

    for (auto it = free_.begin(); it != free_.end(); ++it) {
        const u64 addr = it->first;
        const u64 avail = it->second;
        if (avail < need) continue;
        free_.erase(it);
        if (avail > need) free_.emplace(addr + need, avail - need);
        live_.emplace(addr, size);
        live_ordered_.emplace(addr, size);
        live_bytes_ += size;
        return addr;
    }
    return 0; // out of simulated heap
}

std::optional<u64> HeapAllocator::free(u64 addr)
{
    const auto it = live_.find(addr);
    if (it == live_.end()) return std::nullopt;
    const u64 size = it->second;
    live_.erase(it);
    live_ordered_.erase(addr);
    live_bytes_ -= size;

    // Reinsert and coalesce with neighbours.
    u64 blk_addr = addr;
    u64 blk_size = align_up(size, align_);
    auto next = free_.lower_bound(blk_addr);
    if (next != free_.end() && blk_addr + blk_size == next->first) {
        blk_size += next->second;
        next = free_.erase(next);
    }
    if (next != free_.begin()) {
        auto prev = std::prev(next);
        if (prev->first + prev->second == blk_addr) {
            blk_addr = prev->first;
            blk_size += prev->second;
            free_.erase(prev);
        }
    }
    free_.emplace(blk_addr, blk_size);
    return size;
}

std::optional<u64> HeapAllocator::block_size(u64 addr) const
{
    const auto it = live_.find(addr);
    if (it == live_.end()) return std::nullopt;
    return it->second;
}

std::optional<std::pair<u64, u64>> HeapAllocator::containing_block(
    u64 addr) const
{
    auto it = live_ordered_.upper_bound(addr);
    if (it == live_ordered_.begin()) return std::nullopt;
    --it;
    if (addr >= it->first && addr < it->first + it->second)
        return std::pair{it->first, it->second};
    return std::nullopt;
}

LockAllocator::LockAllocator(u64 base, u64 entries)
    : base_{base}, entries_{entries}
{
    if (entries_ < 8)
        throw common::ConfigError{"LockAllocator: need at least 8 entries"};
}

LockGrant LockAllocator::allocate()
{
    u64 index;
    if (!recycled_.empty()) {
        index = recycled_.back();
        recycled_.pop_back();
    } else {
        if (next_index_ >= entries_)
            throw common::SimError{"LockAllocator: out of lock_locations"};
        index = next_index_++;
    }
    ++live_;
    live_indices_.insert(index);
    return LockGrant{base_ + 8 * index, next_key_++};
}

bool LockAllocator::release(u64 lock_addr)
{
    if (lock_addr < base_ || (lock_addr - base_) % 8 != 0) return false;
    const u64 index = (lock_addr - base_) / 8;
    if (index >= entries_) return false;
    if (live_indices_.erase(index) == 0) return false; // not a live grant
    recycled_.push_back(index);
    --live_;
    return true;
}

} // namespace hwst::mem
