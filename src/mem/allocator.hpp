// Heap and lock_location allocators backing the simulated runtime.
//
// HeapAllocator is a first-fit free-list allocator over the simulated
// heap region (the libc malloc the paper's wrappers intercept).
// Bookkeeping lives host-side; the simulated program only sees
// addresses, so allocator state is immune to simulated corruption —
// matching the paper's threat model ("the adversary cannot corrupt the
// metadata").
//
// LockAllocator implements §3.4: every allocation gets a fresh
// lock_location (an 8-byte slot in the lock region) holding a unique,
// never-reused key. Freeing recycles the slot but never the key, so a
// stale pointer's key can never match a later allocation's key.
#pragma once

#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitops.hpp"

namespace hwst::mem {

using common::u64;

class HeapAllocator {
public:
    HeapAllocator(u64 base, u64 size, u64 align = 16);

    /// Allocate `size` bytes (>=1); returns 0 on exhaustion.
    u64 malloc(u64 size);

    /// Free a block previously returned by malloc. Returns its size, or
    /// std::nullopt if `addr` is not a live allocation (double free /
    /// free of a non-start address — the CWE415/CWE761 signals).
    std::optional<u64> free(u64 addr);

    /// Size of the live block starting at `addr`, if any.
    std::optional<u64> block_size(u64 addr) const;

    /// The live block *containing* `addr`, if any (ASAN-model probing).
    std::optional<std::pair<u64, u64>> containing_block(u64 addr) const;

    u64 live_bytes() const { return live_bytes_; }
    u64 live_blocks() const { return live_.size(); }
    u64 base() const { return base_; }
    u64 size() const { return size_; }

private:
    struct FreeBlock {
        u64 size;
    };

    u64 base_;
    u64 size_;
    u64 align_;
    u64 live_bytes_ = 0;
    std::map<u64, u64> free_;            // addr -> size, address-ordered
    std::unordered_map<u64, u64> live_;  // addr -> size
    std::map<u64, u64> live_ordered_;    // addr -> size (containing_block)
};

/// Result of a lock allocation: where the key lives and the key value.
struct LockGrant {
    u64 lock_addr;
    u64 key;
};

class LockAllocator {
public:
    /// `base`: first lock_location address; `entries`: capacity
    /// (paper: 2^20 entries, so locks fit the 20-bit compressed field).
    LockAllocator(u64 base, u64 entries);

    /// Grab a lock_location and mint a fresh key (keys start at 2;
    /// key 0 = erased, key 1 = the "global" key for objects that are
    /// never deallocated, per CETS; stack keys live in a disjoint
    /// space with bit 43 set).
    LockGrant allocate();

    /// Recycle a lock_location. The caller (free wrapper) is
    /// responsible for erasing the key in simulated memory. Returns
    /// false (and changes nothing) if `lock_addr` is not a live grant —
    /// a double release or a corrupted address from the simulated
    /// program; the Machine turns that into a trap, never a host crash.
    [[nodiscard]] bool release(u64 lock_addr);

    u64 base() const { return base_; }
    u64 entries() const { return entries_; }
    u64 live() const { return live_; }
    u64 keys_minted() const { return next_key_ - 2; }

    /// The CETS global lock_location, holding kGlobalKey. Index 1:
    /// index 0 is reserved because a compressed temporal half of zero
    /// means "no metadata" (see metadata/compress.hpp).
    u64 global_lock_addr() const { return base_ + 8; }
    static constexpr u64 kGlobalKey = 1;

private:
    u64 base_;
    u64 entries_;
    // 0 = "no metadata", 1 = global lock, 2 = stack-lock cursor,
    // 3 = stack-key counter (see sim::Machine and the CETS stack-lock
    // protocol in compiler/emitters.cpp).
    u64 next_index_ = 4;
    u64 next_key_ = 2;
    u64 live_ = 0;
    std::vector<u64> recycled_;
    std::unordered_set<u64> live_indices_;
};

} // namespace hwst::mem
