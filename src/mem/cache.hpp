// Set-associative D-cache *timing* model (data lives in Memory; the
// cache tracks tags only). Rocket's default L1D is 16 KiB, 4-way,
// 64-byte lines; those are the defaults here. The model feeds the
// 5-stage pipeline timing: hit = kHitCycles, miss adds a refill penalty.
#pragma once

#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace hwst::mem {

using common::u64;

struct CacheConfig {
    unsigned line_bytes = 64;
    unsigned ways = 4;
    unsigned sets = 64; // 16 KiB total with the defaults
    unsigned hit_cycles = 1;
    unsigned miss_penalty = 30; // refill from the simulated DRAM
};

struct CacheStats {
    u64 accesses = 0;
    u64 misses = 0;
    double miss_rate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

class Cache {
public:
    explicit Cache(const CacheConfig& cfg = {});

    /// Touch `addr`; returns the access latency in cycles and updates
    /// LRU/stats. Accesses never straddle lines in our ISA (max width 8,
    /// line 64, all accesses naturally aligned by codegen).
    ///
    /// Fast path: consecutive accesses to the same line (sequential
    /// fetch, stack traffic) skip the way scan. `last_line_` always
    /// points at the line touched by the most recent access, so a match
    /// on `last_line_addr_` cannot be stale — any eviction of that line
    /// would itself have gone through access_slow and repointed it.
    /// Stats/LRU updates are identical to the slow-path hit.
    unsigned access(u64 addr)
    {
        const u64 line_addr = addr / cfg_.line_bytes;
        if (last_line_ && last_line_addr_ == line_addr) {
            ++stats_.accesses;
            last_line_->lru = ++tick_;
            last_miss_ = false;
            return cfg_.hit_cycles;
        }
        return access_slow(addr);
    }

    /// Probe without updating state (diagnostics).
    bool would_hit(u64 addr) const;

    /// Whether the most recent access() missed (i.e. triggered a refill
    /// from the simulated DRAM). Lets the Machine tell fill data from
    /// hit data for the DcacheFillData fault-injection point.
    bool last_access_missed() const { return last_miss_; }

    void flush();

    const CacheConfig& config() const { return cfg_; }
    const CacheStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    struct Line {
        u64 tag = 0;
        bool valid = false;
        u64 lru = 0; // larger = more recent
    };

    u64 set_of(u64 addr) const { return (addr / cfg_.line_bytes) % cfg_.sets; }
    u64 tag_of(u64 addr) const { return addr / cfg_.line_bytes / cfg_.sets; }

    unsigned access_slow(u64 addr);

    CacheConfig cfg_;
    std::vector<Line> lines_; // sets * ways
    CacheStats stats_;
    u64 tick_ = 0;
    bool last_miss_ = false;
    // Most recently touched line (fast path). Never dangles: lines_ is
    // sized once in the constructor and flush() resets the pointer.
    Line* last_line_ = nullptr;
    u64 last_line_addr_ = 0; ///< addr / line_bytes of last_line_
};

} // namespace hwst::mem
