// Set-associative D-cache *timing* model (data lives in Memory; the
// cache tracks tags only). Rocket's default L1D is 16 KiB, 4-way,
// 64-byte lines; those are the defaults here. The model feeds the
// 5-stage pipeline timing: hit = kHitCycles, miss adds a refill penalty.
#pragma once

#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace hwst::mem {

using common::u64;

struct CacheConfig {
    unsigned line_bytes = 64;
    unsigned ways = 4;
    unsigned sets = 64; // 16 KiB total with the defaults
    unsigned hit_cycles = 1;
    unsigned miss_penalty = 30; // refill from the simulated DRAM
};

struct CacheStats {
    u64 accesses = 0;
    u64 misses = 0;
    double miss_rate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

class Cache {
public:
    explicit Cache(const CacheConfig& cfg = {});

    /// Touch `addr`; returns the access latency in cycles and updates
    /// LRU/stats. Accesses never straddle lines in our ISA (max width 8,
    /// line 64, all accesses naturally aligned by codegen).
    unsigned access(u64 addr);

    /// Probe without updating state (diagnostics).
    bool would_hit(u64 addr) const;

    /// Whether the most recent access() missed (i.e. triggered a refill
    /// from the simulated DRAM). Lets the Machine tell fill data from
    /// hit data for the DcacheFillData fault-injection point.
    bool last_access_missed() const { return last_miss_; }

    void flush();

    const CacheConfig& config() const { return cfg_; }
    const CacheStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    struct Line {
        u64 tag = 0;
        bool valid = false;
        u64 lru = 0; // larger = more recent
    };

    u64 set_of(u64 addr) const { return (addr / cfg_.line_bytes) % cfg_.sets; }
    u64 tag_of(u64 addr) const { return addr / cfg_.line_bytes / cfg_.sets; }

    CacheConfig cfg_;
    std::vector<Line> lines_; // sets * ways
    CacheStats stats_;
    u64 tick_ = 0;
    bool last_miss_ = false;
};

} // namespace hwst::mem
