// Set-associative D-cache *timing* model (data lives in Memory; the
// cache tracks tags only). Rocket's default L1D is 16 KiB, 4-way,
// 64-byte lines; those are the defaults here. The model feeds the
// 5-stage pipeline timing: hit = kHitCycles, miss adds a refill penalty.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace hwst::mem {

using common::u64;

struct CacheConfig {
    unsigned line_bytes = 64;
    unsigned ways = 4;
    unsigned sets = 64; // 16 KiB total with the defaults
    unsigned hit_cycles = 1;
    unsigned miss_penalty = 30; // refill from the simulated DRAM
};

struct CacheStats {
    u64 accesses = 0;
    u64 misses = 0;
    double miss_rate() const
    {
        return accesses ? static_cast<double>(misses) /
                              static_cast<double>(accesses)
                        : 0.0;
    }
};

class Cache {
public:
    explicit Cache(const CacheConfig& cfg = {});

    /// Touch `addr`; returns the access latency in cycles and updates
    /// LRU/stats. Accesses never straddle lines in our ISA (max width 8,
    /// line 64, all accesses naturally aligned by codegen).
    ///
    /// Fast path: accesses to either of the two most recently touched
    /// lines (sequential fetch, ping-ponging load/store streams) skip
    /// the way scan. `last_line_` always points at the line touched by
    /// the most recent access, so a match on `last_line_addr_` cannot
    /// be stale — any eviction of that line would itself have gone
    /// through access_slow and repointed it. The second entry CAN be
    /// chosen as an eviction victim, so access_slow nulls it whenever
    /// its line is replaced. Stats/LRU updates are identical to the
    /// slow-path hit.
    unsigned access(u64 addr)
    {
        const u64 line_addr = addr >> line_shift_;
        if (last_line_ && last_line_addr_ == line_addr) {
            ++stats_.accesses;
            last_line_->lru = ++tick_;
            last_miss_ = false;
            return cfg_.hit_cycles;
        }
        if (last2_line_ && last2_line_addr_ == line_addr) {
            ++stats_.accesses;
            last2_line_->lru = ++tick_;
            last_miss_ = false;
            std::swap(last_line_, last2_line_);
            std::swap(last_line_addr_, last2_line_addr_);
            return cfg_.hit_cycles;
        }
        return access_slow(addr);
    }

    /// Record a hit on the line of the most recent access() without
    /// re-touching it. Only valid when the caller has proved the access
    /// lands on that same line (e.g. sequential instruction fetch inside
    /// one superblock): the line is present — access() would hit — and
    /// it is already the most recent line in its set, so skipping the
    /// LRU bump preserves the set's recency *order* and therefore every
    /// future eviction decision. Stats match a real hit.
    void count_repeat_hit()
    {
        ++stats_.accesses;
        last_miss_ = false;
    }

    /// Batched count_repeat_hit: `n` proven repeat hits at once (one
    /// superblock's worth of sequential fetches). Deliberately leaves
    /// last_miss_ alone — the only consumer of last_access_missed() is
    /// the d-cache's DcacheFillData probe, and this entry point is used
    /// by the i-cache only.
    void count_repeat_hits(u64 n) { stats_.accesses += n; }

    /// Probe without updating state (diagnostics).
    bool would_hit(u64 addr) const;

    /// Whether the most recent access() missed (i.e. triggered a refill
    /// from the simulated DRAM). Lets the Machine tell fill data from
    /// hit data for the DcacheFillData fault-injection point.
    bool last_access_missed() const { return last_miss_; }

    void flush();

    /// Hot-field addresses for emitted code (the JIT tier's inline
    /// recent-line probe; docs/performance.md "Tier-2 JIT"). Emitted
    /// code may replicate the first recent-line branch of access()
    /// exactly: compare `*last_line_addr` (while `*last_line` is
    /// non-null), and on a match bump `*accesses`, store `++*tick` to
    /// the u64 at `(char*)*last_line + line_lru_offset`, clear
    /// `*last_miss` and charge `hit_cycles`. Anything else must call
    /// back into access() — the two-entry swap, way scan, eviction and
    /// miss accounting stay the library's job. All pointers are stable
    /// for the Cache's lifetime (lines_ is sized once in the ctor).
    struct JitView {
        void** last_line;       ///< &last_line_ (null = no recent line)
        u64* last_line_addr;    ///< &last_line_addr_ (addr >> line_shift)
        u64* accesses;          ///< &stats_.accesses
        u64* tick;              ///< &tick_
        bool* last_miss;        ///< &last_miss_
        unsigned line_lru_offset; ///< byte offset of Line::lru
        unsigned line_shift;    ///< log2(line_bytes)
        unsigned hit_cycles;
    };
    JitView jit_view()
    {
        return {reinterpret_cast<void**>(&last_line_),
                &last_line_addr_,
                &stats_.accesses,
                &tick_,
                &last_miss_,
                static_cast<unsigned>(offsetof(Line, lru)),
                line_shift_,
                cfg_.hit_cycles};
    }

    const CacheConfig& config() const { return cfg_; }
    const CacheStats& stats() const { return stats_; }
    void reset_stats() { stats_ = {}; }

private:
    struct Line {
        u64 tag = 0;
        bool valid = false;
        u64 lru = 0; // larger = more recent
    };

    // line_bytes and sets are enforced powers of two, so the index
    // arithmetic is shifts and masks (these run on every access; a
    // 64-bit divide per lookup is measurable across a campaign).
    u64 set_of(u64 addr) const { return (addr >> line_shift_) & set_mask_; }
    u64 tag_of(u64 addr) const { return addr >> line_shift_ >> set_shift_; }

    unsigned access_slow(u64 addr);

    CacheConfig cfg_;
    unsigned line_shift_ = 6; ///< log2(line_bytes), set in the ctor
    unsigned set_shift_ = 6;  ///< log2(sets)
    u64 set_mask_ = 63;       ///< sets - 1
    std::vector<Line> lines_; // sets * ways
    CacheStats stats_;
    u64 tick_ = 0;
    bool last_miss_ = false;
    // Two most recently touched lines (fast path). Never dangle: lines_
    // is sized once in the constructor, flush() resets both pointers
    // and access_slow nulls last2_line_ when it evicts that line.
    Line* last_line_ = nullptr;
    u64 last_line_addr_ = 0; ///< addr / line_bytes of last_line_
    Line* last2_line_ = nullptr;
    u64 last2_line_addr_ = 0;
};

} // namespace hwst::mem
