// Sparse 64-bit byte-addressable memory with region mapping.
//
// Regions model the process address-space map (text/data/heap/stack,
// shadow memory, lock_locations). An access outside every mapped region
// — or to the guard page at address 0 — raises a MemFault, which the
// Machine converts into an architectural AccessFault trap. This is what
// lets the uninstrumented "GCC" baseline of Fig. 6 detect null derefs
// while missing in-bounds-of-some-region corruption, exactly like a
// processor with an MMU.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitops.hpp"

namespace hwst::mem {

using common::u16;
using common::u32;
using common::u64;
using common::u8;

/// Access kind, reported in faults and used by the cache model.
enum class Access : u8 { Read, Write, Fetch };

/// Simulated memory fault. Thrown by Memory and caught by the Machine,
/// which converts it to a Trap value (never escapes the simulator API).
struct MemFault {
    u64 addr;
    Access kind;
};

class Memory {
public:
    static constexpr u64 kPageSize = 4096;

    /// Map [base, base+size) as accessible. Overlaps are allowed (the
    /// region list is a pure validity check, not an ownership model).
    void map_region(std::string name, u64 base, u64 size);

    /// True if [addr, addr+width) lies inside some mapped region and
    /// does not touch the null guard page.
    bool is_mapped(u64 addr, unsigned width) const;

    // ---- typed access (little-endian). Throws MemFault when unmapped.
    u64 load(u64 addr, unsigned width, bool sign_extend) const;
    void store(u64 addr, unsigned width, u64 value);

    u8 load_u8(u64 addr) const { return static_cast<u8>(load(addr, 1, false)); }
    u64 load_u64(u64 addr) const { return load(addr, 8, false); }
    void store_u8(u64 addr, u8 v) { store(addr, 1, v); }
    void store_u64(u64 addr, u64 v) { store(addr, 8, v); }

    /// Bulk copy-in (used by the loader); maps nothing by itself.
    void write_bytes(u64 addr, std::span<const u8> bytes);

    /// Bulk copy-out for tests and the Juliet oracle.
    std::vector<u8> read_bytes(u64 addr, u64 len) const;

    /// Total bytes of backing store actually allocated (diagnostics).
    u64 resident_bytes() const { return pages_.size() * kPageSize; }

    /// Base addresses of materialised pages inside [base, base+size)
    /// (used by the BOGO bound-table scan model).
    std::vector<u64> resident_pages_in(u64 base, u64 size) const
    {
        std::vector<u64> out;
        for (const auto& [key, page] : pages_) {
            const u64 addr = key * kPageSize;
            if (addr >= base && addr < base + size) out.push_back(addr);
        }
        return out;
    }

private:
    struct Region {
        std::string name;
        u64 base;
        u64 size;
    };

    u8* page_for(u64 addr, bool create) const;
    void check_mapped(u64 addr, unsigned width, Access kind) const;

    // Sparse page store. mutable: loads of never-written pages observe
    // zero without materialising them.
    mutable std::unordered_map<u64, std::unique_ptr<u8[]>> pages_;
    std::vector<Region> regions_;
    mutable std::size_t last_region_ = 0;
};

} // namespace hwst::mem
