// Sparse 64-bit byte-addressable memory with region mapping.
//
// Regions model the process address-space map (text/data/heap/stack,
// shadow memory, lock_locations). An access outside every mapped region
// — or to the guard page at address 0 — raises a MemFault, which the
// Machine converts into an architectural AccessFault trap. This is what
// lets the uninstrumented "GCC" baseline of Fig. 6 detect null derefs
// while missing in-bounds-of-some-region corruption, exactly like a
// processor with an MMU.
//
// Hot path (docs/performance.md): a small 2-way set-associative
// translation cache short-circuits both the region scan and the
// page-table hash for accesses that stay on recently touched pages. An
// entry asserts that its whole page lies inside one mapped region, so
// any access contained in the page needs no further validity check;
// `host` is the page's backing store (null until the page materialises
// — loads of untouched pages observe zero). Two ways with a per-set
// round-robin victim bit fix the pathological aliasing a direct-mapped
// cache has when text and shadow pages collide on the same index (the
// shadow of a page is 4 pages away linearly, but distinct *spaces* sit
// 2^38 apart and landed on identical slots). The cache is a pure
// accelerator: it is invalidated on map_region and on page creation,
// and every miss falls back to the original region-scan + hash path,
// so behaviour is bit-identical with the cache disabled.
#pragma once

#include <array>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitops.hpp"

namespace hwst::mem {

using common::u16;
using common::u32;
using common::u64;
using common::u8;

/// Access kind, reported in faults and used by the cache model.
enum class Access : u8 { Read, Write, Fetch };

/// Simulated memory fault. Thrown by Memory and caught by the Machine,
/// which converts it to a Trap value (never escapes the simulator API).
struct MemFault {
    u64 addr;
    Access kind;
};

class Memory {
public:
    static constexpr u64 kPageSize = 4096;

    /// Map [base, base+size) as accessible. Overlaps are allowed (the
    /// region list is a pure validity check, not an ownership model).
    /// Invalidates the translation cache.
    void map_region(std::string name, u64 base, u64 size);

    /// True if [addr, addr+width) lies inside some mapped region and
    /// does not touch the null guard page.
    bool is_mapped(u64 addr, unsigned width) const;

    // ---- typed access (little-endian). Throws MemFault when unmapped.
    u64 load(u64 addr, unsigned width, bool sign_extend) const
    {
        const u64 off = addr & (kPageSize - 1);
        if (off + width <= kPageSize) {
            const u64 page_base = addr & ~(kPageSize - 1);
            const TlbSet& s = tlb_[tlb_slot(addr)];
            const TlbEntry* e = s.way[0].page_base == page_base
                                    ? &s.way[0]
                                    : s.way[1].page_base == page_base
                                          ? &s.way[1]
                                          : nullptr;
            if (e) {
                ++tlb_stats_.hits;
                u64 value = 0;
                if (e->host) std::memcpy(&value, e->host + off, width);
                return sign_extend
                           ? static_cast<u64>(
                                 common::sign_extend(value, 8 * width))
                           : value;
            }
        }
        return load_slow(addr, width, sign_extend);
    }

    void store(u64 addr, unsigned width, u64 value)
    {
        const u64 off = addr & (kPageSize - 1);
        if (off + width <= kPageSize) {
            const u64 page_base = addr & ~(kPageSize - 1);
            const TlbSet& s = tlb_[tlb_slot(addr)];
            const TlbEntry* e = s.way[0].page_base == page_base
                                    ? &s.way[0]
                                    : s.way[1].page_base == page_base
                                          ? &s.way[1]
                                          : nullptr;
            if (e && e->host) {
                ++tlb_stats_.hits;
                std::memcpy(e->host + off, &value, width);
                return;
            }
        }
        store_slow(addr, width, value);
    }

    u8 load_u8(u64 addr) const { return static_cast<u8>(load(addr, 1, false)); }
    u64 load_u64(u64 addr) const { return load(addr, 8, false); }
    void store_u8(u64 addr, u8 v) { store(addr, 1, v); }
    void store_u64(u64 addr, u64 v) { store(addr, 8, v); }

    /// Bulk copy-in (used by the loader); maps nothing by itself.
    void write_bytes(u64 addr, std::span<const u8> bytes);

    /// Bulk copy-out for tests and the Juliet oracle.
    std::vector<u8> read_bytes(u64 addr, u64 len) const;

    /// Total bytes of backing store actually allocated (diagnostics).
    u64 resident_bytes() const { return pages_.size() * kPageSize; }

    /// Base addresses of materialised pages inside [base, base+size)
    /// (used by the BOGO bound-table scan model).
    std::vector<u64> resident_pages_in(u64 base, u64 size) const
    {
        std::vector<u64> out;
        for (const auto& [key, page] : pages_) {
            const u64 addr = key * kPageSize;
            if (addr >= base && addr < base + size) out.push_back(addr);
        }
        return out;
    }

    // ---- translation-cache introspection (tests, diagnostics) --------
    /// Sets in the translation cache (kTlbWays entries each).
    static constexpr unsigned kTlbEntries = 64;
    static constexpr unsigned kTlbWays = 2;

    /// One translation-cache entry: `page_base` is the page's base
    /// address (~0 = empty — never a valid page base since it is not
    /// page-aligned) and `host` its backing store, null while the page
    /// is unmaterialised. A present entry guarantees the whole page lies
    /// inside one mapped region. Public (with TlbSet and tlb_slot)
    /// because the JIT tier emits the probe below directly into its
    /// load/store templates — the layout is part of the host-pointer
    /// fill contract (docs/performance.md "Tier-2 JIT").
    struct TlbEntry {
        u64 page_base = ~u64{0};
        u8* host = nullptr;
    };

    /// One set: kTlbWays entries plus the round-robin victim bit
    /// (alternates on every fill that did not refresh an existing way).
    struct TlbSet {
        TlbEntry way[kTlbWays]{};
        u8 victim = 0;
    };

    static constexpr unsigned tlb_slot(u64 addr)
    {
        return static_cast<unsigned>((addr / kPageSize) %
                                     kTlbEntries);
    }

    /// Host-pointer fill contract for emitted code (the JIT's inline
    /// TLB probe). The returned pointers are stable for this Memory's
    /// lifetime: `sets` is the in-object set array and `hits` the
    /// fast-path hit counter. Emitted code may replicate the load()/
    /// store() fast path exactly — probe both ways of
    /// `sets[tlb_slot(addr)]` for a single-page access, bump `*hits`
    /// on a match, and read/write through `host + offset`. It must
    /// fall out to the public load()/store() when the access straddles
    /// a page, misses both ways, or (stores only) hits an entry with a
    /// null `host`: slow-path fills, page materialisation and miss
    /// accounting stay the library's job. Backing pages are never
    /// freed, so a cached `host` can go stale only via
    /// tlb_invalidate(), which rewrites the entries themselves.
    struct TlbView {
        const TlbSet* sets;
        u64* hits;
    };
    TlbView tlb_view() const { return {tlb_.data(), &tlb_stats_.hits}; }

    /// Translation-cache hit for addr's page without touching state?
    bool tlb_holds(u64 addr) const
    {
        const u64 page_base = addr & ~(kPageSize - 1);
        const TlbSet& s = tlb_[tlb_slot(addr)];
        return s.way[0].page_base == page_base ||
               s.way[1].page_base == page_base;
    }
    /// Drop every translation-cache entry (misses refill on demand).
    /// Victim bits reset too: invalidation restarts the round-robin.
    void tlb_invalidate() const { tlb_.fill(TlbSet{}); }

    /// Fast-path hits vs. slow-path fills for single-page accesses
    /// (multi-page straddles always bypass the cache and count as
    /// neither). Host-side observability only — never fed back into
    /// simulated state.
    struct TlbStats {
        u64 hits = 0;
        u64 misses = 0;
    };
    const TlbStats& tlb_stats() const { return tlb_stats_; }

    /// Invoked after every map_region (the region set changed, so any
    /// derived structure — e.g. the Machine's superblock cache — must
    /// revalidate). The translation cache itself is already dropped
    /// before the hook runs.
    void set_invalidation_hook(std::function<void()> hook)
    {
        invalidation_hook_ = std::move(hook);
    }

private:
    struct Region {
        std::string name;
        u64 base;
        u64 size;
    };

    u8* page_for(u64 addr, bool create) const;
    void check_mapped(u64 addr, unsigned width, Access kind) const;

    /// Whole page inside one mapped region (and not the null guard)?
    bool page_fully_mapped(u64 page_base) const;

    /// Install a translation-cache entry for addr's page if the page is
    /// fully mapped; called from the slow paths after they validated
    /// the access the old way.
    void tlb_fill(u64 addr) const;

    u64 load_slow(u64 addr, unsigned width, bool sign_extend) const;
    void store_slow(u64 addr, unsigned width, u64 value);

    // Sparse page store. mutable: loads of never-written pages observe
    // zero without materialising them.
    mutable std::unordered_map<u64, std::unique_ptr<u8[]>> pages_;
    std::vector<Region> regions_;
    mutable std::size_t last_region_ = 0;
    // mutable: loads warm the translation cache too.
    mutable std::array<TlbSet, kTlbEntries> tlb_{};
    mutable TlbStats tlb_stats_{};
    std::function<void()> invalidation_hook_;
};

} // namespace hwst::mem
