#include "mem/cache.hpp"

namespace hwst::mem {

Cache::Cache(const CacheConfig& cfg) : cfg_{cfg}
{
    if (!common::is_pow2(cfg_.line_bytes) || !common::is_pow2(cfg_.sets) ||
        cfg_.ways == 0) {
        throw common::ConfigError{"Cache: line/sets must be powers of two, "
                                  "ways nonzero"};
    }
    line_shift_ = common::clog2(cfg_.line_bytes);
    set_shift_ = common::clog2(cfg_.sets);
    set_mask_ = cfg_.sets - 1;
    lines_.resize(static_cast<std::size_t>(cfg_.sets) * cfg_.ways);
}

unsigned Cache::access_slow(u64 addr)
{
    ++stats_.accesses;
    ++tick_;
    const u64 set = set_of(addr);
    const u64 tag = tag_of(addr);
    Line* base = &lines_[set * cfg_.ways];

    Line* victim = base;
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            line.lru = tick_;
            last_miss_ = false;
            last2_line_ = last_line_;
            last2_line_addr_ = last_line_addr_;
            last_line_ = &line;
            last_line_addr_ = addr >> line_shift_;
            return cfg_.hit_cycles;
        }
        if (!line.valid) {
            victim = &line; // prefer an invalid way
        } else if (victim->valid && line.lru < victim->lru) {
            victim = &line;
        }
    }

    ++stats_.misses;
    last_miss_ = true;
    victim->valid = true;
    victim->tag = tag;
    victim->lru = tick_;
    last2_line_ = last_line_;
    last2_line_addr_ = last_line_addr_;
    last_line_ = victim;
    last_line_addr_ = addr >> line_shift_;
    // The evicted line may be the one the second fast-path entry points
    // at (with 1 way it can even be the previous MRU just shifted in);
    // its tag changed, so the cached mapping would be a false hit.
    if (last2_line_ == victim) last2_line_ = nullptr;
    return cfg_.hit_cycles + cfg_.miss_penalty;
}

bool Cache::would_hit(u64 addr) const
{
    const u64 set = set_of(addr);
    const u64 tag = tag_of(addr);
    const Line* base = &lines_[set * cfg_.ways];
    for (unsigned w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) return true;
    }
    return false;
}

void Cache::flush()
{
    for (Line& line : lines_) line = Line{};
    last_line_ = nullptr;
    last2_line_ = nullptr;
}

} // namespace hwst::mem
