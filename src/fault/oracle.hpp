// Trap-or-survive oracle: classifies a faulted run against the golden
// (fault-free) run of the same program. The paper's completeness claim,
// restated for metadata integrity: a corrupted check can fire spuriously
// (detected — a false positive is the safe failure) or change nothing
// observable (masked), but it must never let the program finish with
// different output and no trap (silent corruption).
#pragma once

#include "fault/injector.hpp"
#include "sim/machine.hpp"

namespace hwst::fault {

enum class Verdict : common::u8 {
    Masked,           ///< clean exit, output identical to golden
    Detected,         ///< ended in an architectural trap
    SilentCorruption, ///< clean exit but diverged output, or livelock
};

constexpr std::string_view verdict_name(Verdict v)
{
    switch (v) {
    case Verdict::Masked: return "masked";
    case Verdict::Detected: return "detected";
    case Verdict::SilentCorruption: return "silent-corruption";
    }
    return "unknown";
}

struct Outcome {
    Verdict verdict = Verdict::Masked;
    hwst::Trap trap{};    ///< the faulted run's trap (kind None if exited)
    bool fired = false;   ///< did any scheduled fault actually perturb a value
    u64 injected_at = 0;  ///< instret of the first perturbation
    u64 ended_at = 0;     ///< instret the faulted run stopped at

    /// Instructions between injection and the trap (Detected runs).
    u64 detection_latency() const
    {
        return ended_at >= injected_at ? ended_at - injected_at : 0;
    }
};

/// Classify `faulted` against `golden`. `golden` must be a clean run
/// (no trap) of the same program — anything else is a harness bug and
/// throws common::ToolchainError.
Outcome classify(const sim::RunResult& golden, const sim::RunResult& faulted,
                 const Injector& injector);

} // namespace hwst::fault
