#include "fault/oracle.hpp"

#include "common/error.hpp"

namespace hwst::fault {

using hwst::TrapKind;

Outcome classify(const sim::RunResult& golden, const sim::RunResult& faulted,
                 const Injector& injector)
{
    if (!golden.ok()) {
        throw common::ToolchainError{
            "fault oracle: golden run trapped; campaigns need a clean "
            "reference"};
    }

    Outcome out;
    out.trap = faulted.trap;
    out.fired = injector.fired();
    out.injected_at = injector.first_fire_instret();
    out.ended_at = faulted.instret;

    if (faulted.trap.kind == TrapKind::None) {
        out.verdict = faulted.output == golden.output &&
                              faulted.exit_code == golden.exit_code
                          ? Verdict::Masked
                          : Verdict::SilentCorruption;
    } else if (faulted.trap.kind == TrapKind::FuelExhausted) {
        // The fault sent the program into a livelock the architecture
        // never flagged: that is a hang, not a detection — score it
        // conservatively as silent corruption.
        out.verdict = Verdict::SilentCorruption;
    } else {
        out.verdict = Verdict::Detected;
    }
    return out;
}

} // namespace hwst::fault
