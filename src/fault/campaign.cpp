#include "fault/campaign.hpp"

#include <memory>

#include "common/error.hpp"
#include "common/table.hpp"
#include "compiler/driver.hpp"
#include "exec/engine.hpp"
#include "exec/journal.hpp"
#include "exec/shutdown.hpp"
#include "exec/simrun.hpp"
#include "workloads/workload.hpp"

namespace hwst::fault {

std::vector<Probe> all_probes()
{
    std::vector<Probe> ps;
    ps.reserve(sim::kNumProbes);
    for (unsigned i = 0; i < sim::kNumProbes; ++i)
        ps.push_back(static_cast<Probe>(i));
    return ps;
}

u64 CampaignReport::total_runs() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.runs;
    return n;
}

u64 CampaignReport::total_silent() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.silent;
    return n;
}

u64 CampaignReport::total_timeouts() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.timeouts;
    return n;
}

u64 CampaignReport::total_quarantined() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.quarantined;
    return n;
}

u64 CampaignReport::total_skipped() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.skipped;
    return n;
}

u64 CampaignReport::protected_silent() const
{
    u64 n = 0;
    for (const PointStats& p : points)
        if (metadata_protected(p.point)) n += p.silent;
    return n;
}

namespace {

/// Deterministic per-run seed: a SplitMix64-style mix of the campaign
/// seed with the (workload, point, seed) coordinates, so adding a
/// workload or point never shifts another run's fault draw, and thread
/// count never matters.
u64 run_seed(u64 base, u64 workload_i, Probe point, u64 seed_i)
{
    return exec::derive_seed(base, workload_i, static_cast<u64>(point),
                             seed_i);
}

/// Per-workload golden state shared read-only by every faulted run of
/// that workload. The module outlives the program: Codegen may keep
/// references into it.
struct Golden {
    mir::Module module;
    compiler::CompiledProgram cp;
    sim::RunResult run;
    sim::MachineConfig faulted_cfg;
};

/// One faulted run's contribution, merged into PointStats in grid
/// order.
struct RunRecord {
    bool timed_out = false;
    bool fired = false;
    Verdict verdict = Verdict::Masked;
    bool has_latency = false;
    double latency = 0.0;
};

/// Journal round trip for a RunRecord, so --resume replays classified
/// runs instead of re-simulating them.
exec::json::Value record_to_json(const RunRecord& r)
{
    exec::json::Value v = exec::json::Value::object();
    v["t"] = r.timed_out;
    v["f"] = r.fired;
    v["v"] = static_cast<common::i64>(r.verdict);
    v["hl"] = r.has_latency;
    v["l"] = r.latency;
    return v;
}

RunRecord record_from_json(const exec::json::Value& v)
{
    RunRecord r;
    r.timed_out = v.at("t").as_bool();
    r.fired = v.at("f").as_bool();
    const common::i64 verdict = v.at("v").as_int();
    if (verdict < 0 ||
        verdict > static_cast<common::i64>(Verdict::SilentCorruption))
        throw exec::json::JsonError{"bad verdict"};
    r.verdict = static_cast<Verdict>(verdict);
    r.has_latency = v.at("hl").as_bool();
    r.latency = v.at("l").as_double();
    return r;
}

/// Everything that shapes the run grid or its outcomes, hashed into the
/// journal fingerprint so --resume refuses a journal from a different
/// campaign.
std::string campaign_desc(const CampaignConfig& cfg)
{
    std::string d = "fault_campaign scheme=";
    d += compiler::scheme_name(cfg.scheme);
    d += " mode=";
    d += fault_mode_name(cfg.mode);
    d += " seeds=" + std::to_string(cfg.seeds_per_point);
    d += " seed=" + std::to_string(cfg.base_seed);
    d += " timeout=" + std::to_string(cfg.timeout_ms);
    d += " workloads=";
    for (const auto& w : cfg.workloads) { d += w; d += ','; }
    d += " points=";
    for (const Probe p : cfg.points) {
        d += sim::probe_name(p);
        d += ',';
    }
    return d;
}

} // namespace

u64 campaign_fingerprint(const CampaignConfig& cfg)
{
    return exec::grid_fingerprint(campaign_desc(cfg));
}

CampaignReport run_campaign(const CampaignConfig& cfg)
{
    CampaignReport report;
    report.config = cfg;
    report.points.resize(cfg.points.size());
    for (std::size_t i = 0; i < cfg.points.size(); ++i)
        report.points[i].point = cfg.points[i];

    // The journal holds classified faulted runs only. Goldens are
    // deliberately keyless (cheap, and a compiled program does not
    // round-trip through JSON), so they re-run on every resume.
    std::unique_ptr<exec::Journal> journal;
    if (cfg.journal || cfg.resume) {
        const std::string path = cfg.journal_path.empty()
                                     ? exec::journal_path("fault_campaign")
                                     : cfg.journal_path;
        journal = std::make_unique<exec::Journal>(
            path, "fault_campaign", campaign_fingerprint(cfg),
            cfg.resume);
    }

    const exec::Engine engine{exec::EngineOptions{
        .jobs = cfg.jobs,
        .timeout = std::chrono::milliseconds{cfg.timeout_ms},
        .retries = cfg.retries,
        .backoff = std::chrono::milliseconds{cfg.backoff_ms},
        .journal = journal.get(),
        .cache = cfg.cache,
        .isolate = cfg.isolate,
        .rlimit_mb = cfg.rlimit_mb,
        .rlimit_cpu_s = cfg.rlimit_cpu_s,
        .sentinel = cfg.sentinel,
    }};

    // Phase 1: compile + golden run, one job per workload. Goldens are
    // never allowed to time out — a campaign without its reference runs
    // is meaningless — so a timeout here is an error.
    std::vector<std::shared_ptr<Golden>> goldens;
    {
        const auto outcomes = engine.map<std::shared_ptr<Golden>>(
            cfg.workloads.size(),
            [&](std::size_t wi, const exec::JobContext&) {
                auto g = std::make_shared<Golden>();
                const auto& wl = workloads::workload(cfg.workloads[wi]);
                g->module = wl.build();
                g->cp = compiler::compile(g->module, cfg.scheme);
                sim::Machine machine{g->cp.program, g->cp.machine_config};
                g->run = machine.run();
                if (g->run.trap.kind != hwst::TrapKind::None)
                    throw common::ToolchainError{
                        "golden run of " + cfg.workloads[wi] +
                        " trapped: " +
                        std::string{trap_name(g->run.trap.kind)}};
                // Stuck-at faults can turn a loop bound into a
                // near-infinite trip count; bound faulted runs well past
                // the golden length so a genuine hang classifies as such
                // without burning the default 400M-instruction fuel.
                g->faulted_cfg = g->cp.machine_config;
                g->faulted_cfg.fuel = g->run.instret * 4 + 100'000;
                return g;
            },
            goldens);
        for (std::size_t wi = 0; wi < outcomes.size(); ++wi) {
            if (outcomes[wi].status != exec::JobStatus::Ok)
                throw common::ToolchainError{
                    "golden run of " + cfg.workloads[wi] + " failed: " +
                    outcomes[wi].error};
        }
    }

    // Phase 2: the (workload × point × seed) grid, one faulted run per
    // job, records merged below in the same nesting order the serial
    // runner used — so the report is byte-identical at any thread count.
    const std::size_t n_points = cfg.points.size();
    const std::size_t n_seeds = cfg.seeds_per_point;
    const std::size_t n_runs = cfg.workloads.size() * n_points * n_seeds;
    const exec::MapCodec<RunRecord> codec{
        .label = "run",
        .encode = record_to_json,
        .decode = record_from_json,
    };
    std::vector<RunRecord> records;
    const auto outcomes = engine.map<RunRecord>(
        n_runs,
        [&](std::size_t i, const exec::JobContext& ctx) {
            const std::size_t wi = i / (n_points * n_seeds);
            const std::size_t pi = (i / n_seeds) % n_points;
            const std::size_t si = i % n_seeds;
            const Golden& g = *goldens[wi];
            const Probe point = cfg.points[pi];

            common::Xoshiro256 rng{
                run_seed(cfg.base_seed, wi, point, si)};
            Injector injector{FaultPlan{{FaultPlan::random_spec(
                point, g.run.instret, rng, cfg.mode)}}};

            sim::Machine machine{g.cp.program, g.faulted_cfg};
            injector.attach(machine);

            RunRecord rec;
            std::optional<sim::RunResult> faulted;
            try {
                faulted = exec::run_machine(machine, ctx.token);
            } catch (const exec::JobTimeout&) {
                // A shutdown expires the same token as a wall-clock
                // timeout. Only the latter is a classification; a
                // cancelled run must rethrow so the engine skips it
                // (unjournaled) and --resume re-runs it.
                if (exec::shutdown_requested()) throw;
                rec.timed_out = true;
                return rec;
            }
            const Outcome outcome = classify(g.run, *faulted, injector);
            rec.fired = outcome.fired;
            rec.verdict = outcome.verdict;
            if (outcome.verdict == Verdict::Detected && outcome.fired) {
                rec.has_latency = true;
                rec.latency =
                    static_cast<double>(outcome.detection_latency());
            }
            return rec;
        },
        records, codec);

    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (outcomes[i].status == exec::JobStatus::Error)
            throw common::ToolchainError{"campaign run #" +
                                         std::to_string(i) +
                                         " failed: " + outcomes[i].error};
    }

    // Merge in (workload, point, seed) order — the serial loop order.
    for (std::size_t wi = 0; wi < cfg.workloads.size(); ++wi) {
        for (std::size_t pi = 0; pi < n_points; ++pi) {
            PointStats& stats = report.points[pi];
            for (std::size_t si = 0; si < n_seeds; ++si) {
                const std::size_t i = (wi * n_points + pi) * n_seeds + si;
                const RunRecord& rec = records[i];
                ++stats.runs;
                if (outcomes[i].status == exec::JobStatus::Skipped) {
                    ++stats.skipped;
                    continue;
                }
                // A worker crash with retries=0 lands as Crashed; with
                // a retry budget, exhaustion lands as Quarantined.
                // Either way the run is contained, counted, and never
                // classified — crash containment is the whole point of
                // --isolate.
                if (outcomes[i].status == exec::JobStatus::Quarantined ||
                    outcomes[i].status == exec::JobStatus::Crashed) {
                    ++stats.quarantined;
                    continue;
                }
                if (rec.timed_out ||
                    outcomes[i].status == exec::JobStatus::Timeout) {
                    ++stats.timeouts;
                    continue;
                }
                if (rec.fired) ++stats.fired;
                switch (rec.verdict) {
                case Verdict::Detected:
                    ++stats.detected;
                    if (rec.has_latency)
                        stats.latencies.push_back(rec.latency);
                    break;
                case Verdict::Masked: ++stats.masked; break;
                case Verdict::SilentCorruption: ++stats.silent; break;
                }
            }
        }
    }
    return report;
}

void CampaignReport::print(std::ostream& os) const
{
    os << "fault campaign: scheme=" << compiler::scheme_name(config.scheme)
       << " mode=" << fault_mode_name(config.mode)
       << " seeds/point=" << config.seeds_per_point
       << " seed=" << config.base_seed << "\nworkloads:";
    for (const auto& w : config.workloads) os << ' ' << w;
    os << "\n\n";

    common::TextTable table{{"point", "runs", "fired", "detected", "masked",
                             "silent", "det-rate", "mean-latency"}};
    for (const PointStats& p : points) {
        table.add_row({std::string{sim::probe_name(p.point)},
                       std::to_string(p.runs), std::to_string(p.fired),
                       std::to_string(p.detected), std::to_string(p.masked),
                       std::to_string(p.silent),
                       common::fmt(100.0 * p.detection_rate(), 1) + "%",
                       common::fmt(p.mean_latency(), 1)});
    }
    table.print(os);
    os << "\ntotal runs " << total_runs() << ", silent corruptions "
       << total_silent() << " (" << protected_silent()
       << " at metadata-protected points)\n";
    if (total_timeouts())
        os << "warning: " << total_timeouts()
           << " runs hit the wall-clock budget and were not classified\n";
    if (total_quarantined())
        os << "warning: " << total_quarantined()
           << " runs exhausted the retry budget (quarantined, not "
              "classified)\n";
    if (total_skipped())
        os << "warning: " << total_skipped()
           << " runs were skipped by a graceful shutdown — the report is "
              "partial, finish it with --resume\n";
}

exec::json::Value CampaignReport::to_json() const
{
    using exec::json::Value;
    Value root = Value::object();
    Value jcfg = Value::object();
    jcfg["scheme"] = compiler::scheme_name(config.scheme);
    jcfg["mode"] = fault_mode_name(config.mode);
    jcfg["seeds_per_point"] = config.seeds_per_point;
    jcfg["base_seed"] = config.base_seed;
    Value jwl = Value::array();
    for (const auto& w : config.workloads) jwl.push_back(w);
    jcfg["workloads"] = jwl;
    jcfg["timeout_ms"] = config.timeout_ms;
    root["config"] = jcfg;

    Value jpoints = Value::array();
    for (const PointStats& p : points) {
        Value jp = Value::object();
        jp["point"] = sim::probe_name(p.point);
        jp["metadata_protected"] = metadata_protected(p.point);
        jp["runs"] = p.runs;
        jp["fired"] = p.fired;
        jp["detected"] = p.detected;
        jp["masked"] = p.masked;
        jp["silent"] = p.silent;
        jp["timeouts"] = p.timeouts;
        jp["quarantined"] = p.quarantined;
        jp["skipped"] = p.skipped;
        jp["detection_rate"] = p.detection_rate();
        jp["mean_latency"] = p.mean_latency();
        jpoints.push_back(jp);
    }
    root["points"] = jpoints;
    root["total_runs"] = total_runs();
    root["total_silent"] = total_silent();
    root["protected_silent"] = protected_silent();
    root["total_timeouts"] = total_timeouts();
    root["total_quarantined"] = total_quarantined();
    root["total_skipped"] = total_skipped();
    root["partial"] = total_skipped() != 0;
    return root;
}

} // namespace hwst::fault
