#include "fault/campaign.hpp"

#include "common/table.hpp"
#include "compiler/driver.hpp"
#include "workloads/workload.hpp"

namespace hwst::fault {

std::vector<Probe> all_probes()
{
    std::vector<Probe> ps;
    ps.reserve(sim::kNumProbes);
    for (unsigned i = 0; i < sim::kNumProbes; ++i)
        ps.push_back(static_cast<Probe>(i));
    return ps;
}

u64 CampaignReport::total_runs() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.runs;
    return n;
}

u64 CampaignReport::total_silent() const
{
    u64 n = 0;
    for (const PointStats& p : points) n += p.silent;
    return n;
}

u64 CampaignReport::protected_silent() const
{
    u64 n = 0;
    for (const PointStats& p : points)
        if (metadata_protected(p.point)) n += p.silent;
    return n;
}

namespace {

/// Deterministic per-run seed: a SplitMix64-style mix of the campaign
/// seed with the (workload, point, seed) coordinates, so adding a
/// workload or point never shifts another run's fault draw.
u64 run_seed(u64 base, u64 workload_i, Probe point, u64 seed_i)
{
    u64 z = base;
    for (const u64 salt :
         {workload_i, static_cast<u64>(point), seed_i}) {
        z += 0x9E3779B97F4A7C15ULL + salt;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z ^= z >> 31;
    }
    return z;
}

} // namespace

CampaignReport run_campaign(const CampaignConfig& cfg)
{
    CampaignReport report;
    report.config = cfg;
    report.points.resize(cfg.points.size());
    for (std::size_t i = 0; i < cfg.points.size(); ++i)
        report.points[i].point = cfg.points[i];

    for (std::size_t wi = 0; wi < cfg.workloads.size(); ++wi) {
        const auto& wl = workloads::workload(cfg.workloads[wi]);
        const mir::Module module = wl.build();
        const compiler::CompiledProgram cp =
            compiler::compile(module, cfg.scheme);

        sim::Machine golden_machine{cp.program, cp.machine_config};
        const sim::RunResult golden = golden_machine.run();

        // Stuck-at faults can turn a loop bound into a near-infinite
        // trip count; bound faulted runs well past the golden length so
        // a genuine hang classifies as such without burning the default
        // 400M-instruction fuel per run.
        sim::MachineConfig faulted_cfg = cp.machine_config;
        faulted_cfg.fuel = golden.instret * 4 + 100'000;

        for (std::size_t pi = 0; pi < cfg.points.size(); ++pi) {
            PointStats& stats = report.points[pi];
            for (unsigned si = 0; si < cfg.seeds_per_point; ++si) {
                common::Xoshiro256 rng{
                    run_seed(cfg.base_seed, wi, cfg.points[pi], si)};
                Injector injector{FaultPlan{{FaultPlan::random_spec(
                    cfg.points[pi], golden.instret, rng, cfg.mode)}}};

                sim::Machine machine{cp.program, faulted_cfg};
                injector.attach(machine);
                const sim::RunResult faulted = machine.run();
                const Outcome outcome = classify(golden, faulted, injector);

                ++stats.runs;
                if (outcome.fired) ++stats.fired;
                switch (outcome.verdict) {
                case Verdict::Detected:
                    ++stats.detected;
                    if (outcome.fired) {
                        stats.latencies.push_back(static_cast<double>(
                            outcome.detection_latency()));
                    }
                    break;
                case Verdict::Masked: ++stats.masked; break;
                case Verdict::SilentCorruption: ++stats.silent; break;
                }
            }
        }
    }
    return report;
}

void CampaignReport::print(std::ostream& os) const
{
    os << "fault campaign: scheme=" << compiler::scheme_name(config.scheme)
       << " mode=" << fault_mode_name(config.mode)
       << " seeds/point=" << config.seeds_per_point
       << " seed=" << config.base_seed << "\nworkloads:";
    for (const auto& w : config.workloads) os << ' ' << w;
    os << "\n\n";

    common::TextTable table{{"point", "runs", "fired", "detected", "masked",
                             "silent", "det-rate", "mean-latency"}};
    for (const PointStats& p : points) {
        table.add_row({std::string{sim::probe_name(p.point)},
                       std::to_string(p.runs), std::to_string(p.fired),
                       std::to_string(p.detected), std::to_string(p.masked),
                       std::to_string(p.silent),
                       common::fmt(100.0 * p.detection_rate(), 1) + "%",
                       common::fmt(p.mean_latency(), 1)});
    }
    table.print(os);
    os << "\ntotal runs " << total_runs() << ", silent corruptions "
       << total_silent() << " (" << protected_silent()
       << " at metadata-protected points)\n";
}

} // namespace hwst::fault
