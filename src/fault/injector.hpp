// Injector: executes a FaultPlan against a running Machine through the
// Probe hook. Keeps a capped event log so the oracle can report where
// the fault actually landed (the trigger names an instruction count,
// but the perturbation only happens the next time the datapath is
// exercised).
#pragma once

#include <vector>

#include "fault/plan.hpp"

namespace hwst::fault {

/// One perturbation that actually happened.
struct FireRecord {
    Probe point;
    u64 instret;
    u64 before;
    u64 after;
};

class Injector {
public:
    explicit Injector(FaultPlan plan);

    /// The Machine::ProbeHook entry point.
    u64 perturb(Probe point, u64 instret, u64 value);

    /// Install this injector on `m`. The injector must outlive the run.
    void attach(sim::Machine& m);

    bool fired() const { return fires_ != 0; }
    u64 fires() const { return fires_; }
    u64 first_fire_instret() const { return first_fire_; }

    /// First kMaxLog perturbations (stuck-at faults can fire millions of
    /// times; the interesting ones are the first).
    const std::vector<FireRecord>& log() const { return log_; }
    static constexpr std::size_t kMaxLog = 64;

private:
    struct Armed {
        FaultSpec spec;
        bool done = false; ///< one-shot faults disarm after firing
    };

    std::vector<Armed> armed_;
    std::vector<FireRecord> log_;
    u64 fires_ = 0;
    u64 first_fire_ = 0;
};

} // namespace hwst::fault
