// Campaign runner: sweeps N seeded faults per injection point over one
// or more workloads, classifies every run with the oracle and
// aggregates per-point detection statistics. Everything is derived
// deterministically from (base_seed, point, workload index, seed
// index), so the same command line reproduces a byte-identical report.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "compiler/scheme.hpp"
#include "exec/engine.hpp"
#include "fault/oracle.hpp"

namespace hwst::fault {

/// Every Probe point, in declaration order.
std::vector<Probe> all_probes();

/// True for points inside HWST128's metadata protection domain, where
/// a fault must never be silent (it only feeds checks, so it can trap
/// spuriously or be masked). D-cache fill data is the exception: the
/// paper leaves program-data integrity to ECC, so faults there are
/// *expected* to corrupt output silently — the campaign reports them as
/// the unprotected contrast.
constexpr bool metadata_protected(Probe p)
{
    return p != Probe::DcacheFillData;
}

struct CampaignConfig {
    compiler::Scheme scheme = compiler::Scheme::Hwst128Tchk;
    std::vector<std::string> workloads{"crc32", "treeadd"};
    std::vector<Probe> points = all_probes();
    unsigned seeds_per_point = 20;
    u64 base_seed = 0xC0FFEE;
    FaultMode mode = FaultMode::OneShot;
    /// Engine worker threads (0 = HWST_JOBS / hardware_concurrency).
    /// The report is bit-identical at every value (docs/execution.md).
    unsigned jobs = 0;
    /// Per-run wall-clock budget in ms (0 = none). Timed-out runs are
    /// counted separately, never classified.
    u64 timeout_ms = 0;
    /// Retry budget for timeout/error runs (exhaustion -> quarantined,
    /// counted but never classified). 0 = classic fail-once behavior.
    unsigned retries = 0;
    /// Base retry backoff in ms; doubles per attempt.
    u64 backoff_ms = 100;
    /// Checkpoint each finished run to an fsync'd journal.
    bool journal = false;
    std::string journal_path; ///< "" = BENCH_fault_campaign.journal
    /// Replay finished runs from the journal before running the rest.
    bool resume = false;
    /// Run each faulted run in a forked, caged worker subprocess:
    /// a run that crashes the simulator is quarantined with forensics
    /// instead of taking the campaign down. Goldens always stay
    /// in-process (their compiled programs cannot cross a fork).
    bool isolate = false;
    u64 rlimit_mb = 0;     ///< worker RLIMIT_AS cap in MiB (0 = off)
    u64 rlimit_cpu_s = 0;  ///< worker RLIMIT_CPU cap in s (0 = off)
    /// 1-in-N DBT divergence sentinel on faulted runs (0 = off;
    /// implies isolate).
    unsigned sentinel = 0;
    /// Optional content-addressed result cache binding (--cache,
    /// docs/serving.md): classified faulted runs are served from and
    /// published to it like any other campaign cell. Not owned.
    exec::CellStore* cache = nullptr;
};

/// The campaign's grid fingerprint: everything that shapes the run grid
/// or its outcomes, hashed so --resume refuses a journal from a
/// different campaign and the result cache can never alias configs.
u64 campaign_fingerprint(const CampaignConfig& cfg);

struct PointStats {
    Probe point = Probe::SrfSpatialWrite;
    u64 runs = 0;
    u64 fired = 0; ///< runs where the fault actually perturbed a value
    u64 detected = 0;
    u64 masked = 0;
    u64 silent = 0;
    u64 timeouts = 0;    ///< runs killed by the wall-clock budget
    u64 quarantined = 0; ///< runs that exhausted the retry budget
    u64 skipped = 0;     ///< runs not started (graceful shutdown)
    /// Detection latencies (instructions) over detected-and-fired runs.
    std::vector<double> latencies;

    double detection_rate() const
    {
        return fired ? static_cast<double>(detected) /
                           static_cast<double>(fired)
                     : 0.0;
    }
    /// 0 when no detected-and-fired run recorded a latency (mean of an
    /// empty series throws by design; "no latency" prints as 0.0).
    double mean_latency() const
    {
        return latencies.empty() ? 0.0 : common::mean(latencies);
    }
};

struct CampaignReport {
    CampaignConfig config;
    std::vector<PointStats> points; ///< one entry per config.points entry

    u64 total_runs() const;
    u64 total_silent() const;
    u64 total_timeouts() const;
    u64 total_quarantined() const;
    u64 total_skipped() const;

    /// Silent corruptions at metadata_protected() points only — the
    /// quantity that must be zero for the completeness claim to hold.
    u64 protected_silent() const;

    /// Aggregate table (deterministic: same config -> same bytes).
    void print(std::ostream& os) const;

    /// Machine-readable form (the payload of BENCH_fault_campaign.json).
    exec::json::Value to_json() const;
};

CampaignReport run_campaign(const CampaignConfig& cfg);

} // namespace hwst::fault
