#include "fault/injector.hpp"

namespace hwst::fault {

Injector::Injector(FaultPlan plan)
{
    armed_.reserve(plan.faults.size());
    for (const FaultSpec& spec : plan.faults) armed_.push_back(Armed{spec});
}

u64 Injector::perturb(Probe point, u64 instret, u64 value)
{
    for (Armed& a : armed_) {
        if (a.spec.point != point || a.done) continue;
        if (instret < a.spec.trigger_instret) continue;
        value ^= a.spec.xor_mask;
        if (a.spec.mode == FaultMode::OneShot) a.done = true;
        if (fires_ == 0) first_fire_ = instret;
        ++fires_;
        if (log_.size() < kMaxLog) {
            log_.push_back(FireRecord{point, instret,
                                      value ^ a.spec.xor_mask, value});
        }
    }
    return value;
}

void Injector::attach(sim::Machine& m)
{
    m.set_probe_hook([this](Probe point, u64 instret, u64 value) {
        return perturb(point, instret, value);
    });
}

} // namespace hwst::fault
