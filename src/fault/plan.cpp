#include "fault/plan.hpp"

#include <cstdio>

#include "common/error.hpp"

namespace hwst::fault {

FaultMode fault_mode_from_name(std::string_view name)
{
    if (name == fault_mode_name(FaultMode::OneShot)) return FaultMode::OneShot;
    if (name == fault_mode_name(FaultMode::StuckAt)) return FaultMode::StuckAt;
    throw common::ToolchainError{"unknown fault mode: " + std::string{name} +
                                 " (try: one-shot stuck-at)"};
}

std::string FaultSpec::describe() const
{
    std::string s{sim::probe_name(point)};
    s += ' ';
    s += fault_mode_name(mode);
    s += " @" + std::to_string(trigger_instret);
    char hex[32];
    std::snprintf(hex, sizeof hex, " xor=0x%llx",
                  static_cast<unsigned long long>(xor_mask));
    return s + hex;
}

FaultPlan FaultPlan::single(Probe point, FaultMode mode, u64 trigger,
                            u64 xor_mask)
{
    return FaultPlan{{FaultSpec{point, mode, trigger, xor_mask}}};
}

FaultSpec FaultPlan::random_spec(Probe point, u64 window,
                                 common::Xoshiro256& rng, FaultMode mode)
{
    FaultSpec spec;
    spec.point = point;
    spec.mode = mode;
    spec.trigger_instret = rng.range(1, window ? window : 1);
    spec.xor_mask = u64{1} << rng.below(64);
    if (rng.chance(1, 2)) spec.xor_mask |= u64{1} << rng.below(64);
    return spec;
}

} // namespace hwst::fault
