// FaultPlan: the schedule of metadata faults one simulated run is
// subjected to. Plans are plain data, built either explicitly (tests,
// the fault_tool CLI) or drawn deterministically from a seeded
// Xoshiro256 (campaigns), so a report always reproduces from
// (seed, point, mode) alone.
#pragma once

#include <string>
#include <vector>

#include "common/prng.hpp"
#include "sim/machine.hpp"

namespace hwst::fault {

using common::u64;
using sim::Probe;

/// How a fault behaves once its trigger is reached.
enum class FaultMode : common::u8 {
    OneShot, ///< flip bits in the first matching value, then disarm
    StuckAt, ///< flip the same bits in every matching value from then on
};

constexpr std::string_view fault_mode_name(FaultMode m)
{
    switch (m) {
    case FaultMode::OneShot: return "one-shot";
    case FaultMode::StuckAt: return "stuck-at";
    }
    return "unknown";
}

FaultMode fault_mode_from_name(std::string_view name);

/// One scheduled fault: at retire count `trigger_instret` (or later,
/// the first time the datapath is actually exercised), xor `xor_mask`
/// into the value flowing through `point`.
struct FaultSpec {
    Probe point = Probe::SrfSpatialWrite;
    FaultMode mode = FaultMode::OneShot;
    u64 trigger_instret = 1;
    u64 xor_mask = 1;

    std::string describe() const;
};

struct FaultPlan {
    std::vector<FaultSpec> faults;

    static FaultPlan single(Probe point, FaultMode mode, u64 trigger,
                            u64 xor_mask);

    /// Deterministically draw a 1-or-2-bit SEU with a trigger uniform in
    /// [1, window] (window = the golden run's instruction count, so the
    /// fault lands somewhere inside the program's lifetime).
    static FaultSpec random_spec(Probe point, u64 window,
                                 common::Xoshiro256& rng,
                                 FaultMode mode = FaultMode::OneShot);
};

} // namespace hwst::fault
