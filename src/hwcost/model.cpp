#include "hwcost/model.hpp"

#include <cmath>

namespace hwst::hwcost {

namespace prim {

// UltraScale+-class coefficients: one LUT+carry per adder bit, LUT6
// reduction trees for equality, two 2:1-mux bits per LUT6, RAM32M-style
// distributed RAM for small register files.

Resource adder(unsigned bits)
{
    return Resource{bits, 0, 0.40 + 0.02 * bits / 8.0};
}

Resource subtractor(unsigned bits) { return adder(bits); }

Resource comparator_eq(unsigned bits)
{
    return Resource{(bits + 2) / 3, 0, 0.35};
}

Resource comparator_mag(unsigned bits)
{
    return Resource{bits, 0, 0.40 + 0.02 * bits / 8.0};
}

Resource mux2(unsigned bits) { return Resource{(bits + 1) / 2, 0, 0.15}; }

Resource muxn(unsigned bits, unsigned ways)
{
    if (ways <= 1) return Resource{};
    const unsigned levels = common::clog2(ways);
    return Resource{bits * (ways - 1) / 2, 0, 0.15 * levels};
}

Resource lutram(unsigned depth, unsigned width)
{
    // RAM32M-style packing: ~16 bits of storage per LUT, 1.5x for the
    // second read port of a 2R1W file.
    const unsigned bits = depth * width;
    return Resource{static_cast<u32>(bits * 3 / 2 / 16), 0, 0.45};
}

Resource regs(unsigned bits) { return Resource{0, bits, 0.10}; }

Resource priority_encoder(unsigned ways)
{
    return Resource{ways * 2, 0, 0.25};
}

} // namespace prim

namespace {

ModuleCost make(const std::string& name, const std::string& comp,
                std::initializer_list<Resource> parts)
{
    ModuleCost m{name, comp, {}};
    for (const auto& r : parts) {
        m.res.luts += r.luts;
        m.res.ffs += r.ffs;
        m.res.delay_ns += r.delay_ns; // elements compose in series
    }
    return m;
}

} // namespace

CostReport estimate(const metadata::CompressionConfig& cfg,
                    unsigned keybuffer_entries)
{
    CostReport rep;
    const unsigned kb = cfg.key_bits();

    // SRF: 32 x 128-bit shadow register file, 2R1W, in distributed RAM
    // (FF implementation would cost 4096 flops — the paper's +112 FFs
    // rules it out).
    rep.modules.push_back(make(
        "SRF (32x128 LUT-RAM)", "2R1W distributed RAM + write decode",
        {prim::lutram(32, 128), prim::muxn(5, 2), prim::regs(4)}));

    // COMP: range subtract (Eq. 2) + 8-byte round-up + lock index
    // subtract + field packing (Fig. 2).
    rep.modules.push_back(make(
        "COMP", "bound-base, align round-up, lock-base, pack muxes",
        {prim::subtractor(64), prim::adder(cfg.range_bits + 3),
         prim::subtractor(64), prim::mux2(128), prim::regs(4)}));

    // DECOMP: bound = base + (range << 3), lock = lock_base + (idx << 3),
    // field extraction.
    rep.modules.push_back(make(
        "DECOMP", "base+range adder, lock adder, unpack muxes",
        {prim::adder(cfg.base_bits + 3), prim::adder(cfg.lock_bits + 3),
         prim::mux2(128)}));

    // SMAC: (addr << 2) + csr.sm.offset (Eq. 1).
    rep.modules.push_back(make("SMAC", "shift (wiring) + 64-bit adder",
                               {prim::adder(64), prim::regs(4)}));

    // SCU: addr >= base and addr + width <= bound at EX (Fig. 3).
    rep.modules.push_back(make(
        "SCU", "two 64-bit magnitude comparators + width adder",
        {prim::comparator_mag(64), prim::comparator_mag(64),
         prim::adder(4), prim::regs(4)}));

    // TCU: key equality.
    rep.modules.push_back(make("TCU", "key comparator",
                               {prim::comparator_eq(kb), prim::regs(4)}));

    // Keybuffer: fully associative lock -> key cache with LRU.
    rep.modules.push_back(make(
        "keybuffer",
        std::to_string(keybuffer_entries) + "-entry CAM + LRU",
        {prim::lutram(keybuffer_entries, kb),
         Resource{keybuffer_entries * ((cfg.lock_bits + 2) / 3), 0, 0.35},
         prim::priority_encoder(keybuffer_entries),
         prim::muxn(kb, keybuffer_entries),
         prim::regs(keybuffer_entries * 2)}));

    // Metadata bypass network: SRF forwarding from EX/MEM/WB into the
    // check units — the paper's critical-path culprit.
    rep.modules.push_back(make(
        "bypass network", "128-bit 3:1 forwarding muxes x2 + match logic",
        {prim::muxn(128, 3), prim::muxn(128, 3), prim::comparator_eq(10),
         prim::comparator_eq(10), prim::regs(8)}));

    // HWST CSRs: sm.offset(64) + bitw(24) + lock.base kept in LUT-RAM
    // page, status(2) + violation cause staging.
    rep.modules.push_back(make("CSRs", "sm.offset, bitw, status, cause",
                               {prim::regs(64), prim::regs(4)}));

    // Decode & trap plumbing for the 25 custom opcodes: decoder terms
    // and the violation-cause mux into the trap unit.
    rep.modules.push_back(make("decode+trap", "custom opcode decode, cause mux",
                               {Resource{45, 0, 0.2}, Resource{22, 0, 0.15},
                                prim::regs(4)}));

    for (const auto& m : rep.modules) {
        rep.added_luts += m.res.luts;
        rep.added_ffs += m.res.ffs;
    }

    // Critical path: the baseline EX stage plus the forwarding mux
    // levels and routing the metadata bypass inserts before the SCU.
    const double bypass_ns = 0.15 * 2     // two forwarding mux levels
                             + 0.54       // congestion routing detour
                             + 0.35;      // SCU tag select
    rep.critical_path_ns = rep.baseline.critical_path_ns + bypass_ns;
    return rep;
}

} // namespace hwst::hwcost
