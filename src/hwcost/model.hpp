// Structural FPGA-cost model for the HWST128 additions (paper §5.3).
//
// The paper reports Vivado synthesis results on a ZCU102 (UltraScale+):
// +1536 LUTs (+4.11 %), +112 FFs (+0.66 %) over the Rocket baseline,
// critical path 5.26 ns -> 6.45 ns through the metadata bypass network.
//
// This model rebuilds that estimate structurally: every added unit
// (COMP, DECOMP, SMAC, SCU, TCU, keybuffer, SRF bypass) is described as
// a composition of primitive datapath elements (adders, comparators,
// muxes, LUT-RAM), and the primitives carry UltraScale+-calibrated
// LUT/FF/delay coefficients. The *inventory* is exact per the paper's
// microarchitecture; the coefficients are calibrated to Vivado-class
// results (DESIGN.md §2 substitution table).
#pragma once

#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "metadata/compress.hpp"

namespace hwst::hwcost {

using common::u32;
using common::u64;

/// LUT/FF/delay of one datapath element or module.
struct Resource {
    u32 luts = 0;
    u32 ffs = 0;
    double delay_ns = 0.0; ///< combinational depth through the element

    Resource& operator+=(const Resource& o)
    {
        luts += o.luts;
        ffs += o.ffs;
        delay_ns = std::max(delay_ns, o.delay_ns);
        return *this;
    }
};

/// UltraScale+-class primitive estimators.
namespace prim {
Resource adder(unsigned bits);          ///< ripple/carry8 chain
Resource subtractor(unsigned bits);
Resource comparator_eq(unsigned bits);  ///< reduction tree
Resource comparator_mag(unsigned bits); ///< subtract + sign
Resource mux2(unsigned bits);           ///< 2:1 mux
Resource muxn(unsigned bits, unsigned ways);
Resource lutram(unsigned depth, unsigned width); ///< distributed RAM
Resource regs(unsigned bits);           ///< pipeline flops
Resource priority_encoder(unsigned ways);
} // namespace prim

/// One named module with its resource total and composition notes.
struct ModuleCost {
    std::string name;
    std::string composition;
    Resource res;
};

/// Synthesis-level facts about the baseline Rocket chip on ZCU102,
/// back-derived from the paper's percentages (1536 / 0.0411, 112 /
/// 0.0066).
struct Baseline {
    u32 luts = 37372;
    u32 ffs = 16970;
    double critical_path_ns = 5.26;
};

struct CostReport {
    std::vector<ModuleCost> modules;
    Baseline baseline;
    u32 added_luts = 0;
    u32 added_ffs = 0;
    double critical_path_ns = 0.0;

    double lut_pct() const
    {
        return 100.0 * added_luts / baseline.luts;
    }
    double ff_pct() const { return 100.0 * added_ffs / baseline.ffs; }
};

/// Estimate the HWST128 additions for a given compression configuration
/// and keybuffer size (defaults = the paper's design point).
CostReport estimate(const metadata::CompressionConfig& cfg = {},
                    unsigned keybuffer_entries = 8);

} // namespace hwst::hwcost
