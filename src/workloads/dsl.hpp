// Structured-control helpers over the block-local-SSA builder: counted
// loops and conditionals that re-materialise loop state through locals,
// exactly like clang -O0 lowers C control flow.
#pragma once

#include <functional>

#include "mir/builder.hpp"

namespace hwst::workloads {

using mir::FunctionBuilder;
using mir::Value;
using common::i64;
using mir::u32;

/// for (i = lo; i < hi; i += step) body(). The body reads the counter
/// via b.load_local(ivar).
inline void for_range(FunctionBuilder& b, u32 ivar, i64 lo, i64 hi,
                      const std::function<void()>& body, i64 step = 1)
{
    const auto head = b.block("for_head");
    const auto loop = b.block("for_body");
    const auto exit = b.block("for_exit");
    b.store_local(ivar, b.const_i64(lo));
    b.jmp(head);
    b.set_insert(head);
    b.br(b.lt(b.load_local(ivar), b.const_i64(hi)), loop, exit);
    b.set_insert(loop);
    body();
    b.store_local(ivar, b.add(b.load_local(ivar), b.const_i64(step)));
    b.jmp(head);
    b.set_insert(exit);
}

/// for (i = lo; i < *hi_local; ++i) body() — dynamic upper bound.
inline void for_range_local(FunctionBuilder& b, u32 ivar, i64 lo,
                            u32 hi_local, const std::function<void()>& body,
                            i64 step = 1)
{
    const auto head = b.block("for_head");
    const auto loop = b.block("for_body");
    const auto exit = b.block("for_exit");
    b.store_local(ivar, b.const_i64(lo));
    b.jmp(head);
    b.set_insert(head);
    b.br(b.lt(b.load_local(ivar), b.load_local(hi_local)), loop, exit);
    b.set_insert(loop);
    body();
    b.store_local(ivar, b.add(b.load_local(ivar), b.const_i64(step)));
    b.jmp(head);
    b.set_insert(exit);
}

/// while (cond()) body(). cond is evaluated in its own block.
inline void while_loop(FunctionBuilder& b,
                       const std::function<Value()>& cond,
                       const std::function<void()>& body)
{
    const auto head = b.block("while_head");
    const auto loop = b.block("while_body");
    const auto exit = b.block("while_exit");
    b.jmp(head);
    b.set_insert(head);
    b.br(cond(), loop, exit);
    b.set_insert(loop);
    body();
    b.jmp(head);
    b.set_insert(exit);
}

/// if (cond) then(). cond must be defined in the current block.
inline void if_then(FunctionBuilder& b, Value cond,
                    const std::function<void()>& then)
{
    const auto t = b.block("if_then");
    const auto merge = b.block("if_merge");
    b.br(cond, t, merge);
    b.set_insert(t);
    then();
    b.jmp(merge);
    b.set_insert(merge);
}

/// if (cond) then() else otherwise().
inline void if_else(FunctionBuilder& b, Value cond,
                    const std::function<void()>& then,
                    const std::function<void()>& otherwise)
{
    const auto t = b.block("if_then");
    const auto f = b.block("if_else");
    const auto merge = b.block("if_merge");
    b.br(cond, t, f);
    b.set_insert(t);
    then();
    b.jmp(merge);
    b.set_insert(f);
    otherwise();
    b.jmp(merge);
    b.set_insert(merge);
}

/// x % 2^k via AND (cheap, avoids div).
inline Value mod_pow2(FunctionBuilder& b, Value x, i64 pow2_minus1)
{
    return b.and_(x, b.const_i64(pow2_minus1));
}

/// A deterministic xorshift step on a local PRNG state.
inline Value xorshift_step(FunctionBuilder& b, u32 state_local)
{
    Value x = b.load_local(state_local);
    x = b.xor_(x, b.shl(x, b.const_i64(13)));
    x = b.xor_(x, b.shr(x, b.const_i64(7)));
    x = b.xor_(x, b.shl(x, b.const_i64(17)));
    b.store_local(state_local, x);
    return x;
}

} // namespace hwst::workloads
