// Olden-like kernels (paper Fig. 4 middle group): heap-allocated
// pointer structures — trees, lists, graphs — where metadata follows
// pointers through memory constantly. These stress exactly the
// through-memory propagation path HWST128 accelerates.
#include "workloads/kernels.hpp"

#include "common/prng.hpp"
#include "workloads/dsl.hpp"

namespace hwst::workloads {

using common::u32;
using common::u64;
using mir::Ty;

namespace {

mir::Value is_null(mir::FunctionBuilder& b, mir::Value p)
{
    return b.eq(b.ptr_to_int(p), b.const_i64(0));
}

} // namespace

// ---- treeadd -------------------------------------------------------------
// node: { value @0, left @8, right @16 }, 24 bytes.

mir::Module build_treeadd()
{
    constexpr i64 kDepth = 8;
    mir::Module m;

    {
        auto& fn = m.add_function("ta_build", {Ty::I64}, Ty::Ptr);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto d = b.local("d");
        const auto n = b.local("n", Ty::Ptr);
        b.store_local(d, b.param(0));
        b.store_local(n, b.malloc_(b.const_i64(24)));
        b.store(b.load_local(d), b.load_local(n));
        if_else(
            b, b.lt(b.const_i64(1), b.load_local(d)),
            [&] {
                Value child = b.call(
                    "ta_build",
                    {b.sub(b.load_local(d), b.const_i64(1))}, Ty::Ptr);
                b.store(child, b.gep_const(b.load_local(n), 8));
                Value child2 = b.call(
                    "ta_build",
                    {b.sub(b.load_local(d), b.const_i64(1))}, Ty::Ptr);
                b.store(child2, b.gep_const(b.load_local(n), 16));
            },
            [&] {
                b.store(b.null_ptr(), b.gep_const(b.load_local(n), 8));
                b.store(b.null_ptr(), b.gep_const(b.load_local(n), 16));
            });
        b.ret(b.load_local(n));
    }

    {
        auto& fn = m.add_function("ta_sum", {Ty::Ptr}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto n = b.local("n", Ty::Ptr);
        const auto s = b.local("s");
        b.store_local(n, b.param(0));
        b.store_local(s, b.load(b.load_local(n)));
        const auto l = b.local("l", Ty::Ptr);
        b.store_local(l, b.load_ptr(b.gep_const(b.load_local(n), 8)));
        if_then(b, b.eq(is_null(b, b.load_local(l)), b.const_i64(0)), [&] {
            Value sub = b.call("ta_sum", {b.load_local(l)}, Ty::I64);
            b.store_local(s, b.add(b.load_local(s), sub));
        });
        const auto r = b.local("r", Ty::Ptr);
        b.store_local(r, b.load_ptr(b.gep_const(b.load_local(n), 16)));
        if_then(b, b.eq(is_null(b, b.load_local(r)), b.const_i64(0)), [&] {
            Value sub = b.call("ta_sum", {b.load_local(r)}, Ty::I64);
            b.store_local(s, b.add(b.load_local(s), sub));
        });
        b.ret(b.load_local(s));
    }

    {
        auto& fn = m.add_function("main", {}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto root = b.local("root", Ty::Ptr);
        b.store_local(root,
                      b.call("ta_build", {b.const_i64(kDepth)}, Ty::Ptr));
        const auto total = b.local("total");
        b.store_local(total, b.const_i64(0));
        const auto pass = b.local("pass");
        for_range(b, pass, 0, 4, [&] {
            Value s = b.call("ta_sum", {b.load_local(root)}, Ty::I64);
            b.store_local(total, b.add(b.load_local(total), s));
        });
        b.ret(b.load_local(total));
    }
    return m;
}

// ---- bisort ---------------------------------------------------------------
// node: { value @0, left @8, right @16 }. Build a tree of pseudo-random
// values, then recursively order children by subtree minimum (pointer
// swaps), twice; checksum = weighted in-order reduction.

mir::Module build_bisort()
{
    constexpr i64 kDepth = 7;
    mir::Module m;

    {
        auto& fn = m.add_function("bs_build", {Ty::I64, Ty::I64}, Ty::Ptr);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto d = b.local("d");
        const auto seed = b.local("seed");
        const auto n = b.local("n", Ty::Ptr);
        b.store_local(d, b.param(0));
        b.store_local(seed, b.param(1));
        b.store_local(n, b.malloc_(b.const_i64(24)));
        Value v = xorshift_step(b, seed);
        b.store(b.and_(v, b.const_i64(0xFFFF)), b.load_local(n));
        if_else(
            b, b.lt(b.const_i64(1), b.load_local(d)),
            [&] {
                Value l = b.call("bs_build",
                                 {b.sub(b.load_local(d), b.const_i64(1)),
                                  b.xor_(b.load_local(seed),
                                         b.const_i64(0x9E37))},
                                 Ty::Ptr);
                b.store(l, b.gep_const(b.load_local(n), 8));
                Value r = b.call("bs_build",
                                 {b.sub(b.load_local(d), b.const_i64(1)),
                                  b.xor_(b.load_local(seed),
                                         b.const_i64(0x79B9))},
                                 Ty::Ptr);
                b.store(r, b.gep_const(b.load_local(n), 16));
            },
            [&] {
                b.store(b.null_ptr(), b.gep_const(b.load_local(n), 8));
                b.store(b.null_ptr(), b.gep_const(b.load_local(n), 16));
            });
        b.ret(b.load_local(n));
    }

    {
        // Returns the subtree minimum; swaps children so the smaller
        // minimum is on the left (the pointer-rewiring the benchmark is
        // famous for).
        auto& fn = m.add_function("bs_fix", {Ty::Ptr}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto n = b.local("n", Ty::Ptr);
        const auto mn = b.local("mn");
        const auto lv = b.local("lv");
        const auto rv = b.local("rv");
        const auto l = b.local("l", Ty::Ptr);
        const auto r = b.local("r", Ty::Ptr);
        b.store_local(n, b.param(0));
        b.store_local(mn, b.load(b.load_local(n)));
        b.store_local(l, b.load_ptr(b.gep_const(b.load_local(n), 8)));
        if_then(b, b.eq(is_null(b, b.load_local(l)), b.const_i64(0)), [&] {
            b.store_local(lv, b.call("bs_fix", {b.load_local(l)}, Ty::I64));
            b.store_local(r,
                          b.load_ptr(b.gep_const(b.load_local(n), 16)));
            b.store_local(rv, b.call("bs_fix", {b.load_local(r)}, Ty::I64));
            if_then(b, b.lt(b.load_local(rv), b.load_local(lv)), [&] {
                // swap child pointers
                Value left =
                    b.load_ptr(b.gep_const(b.load_local(n), 8));
                Value right =
                    b.load_ptr(b.gep_const(b.load_local(n), 16));
                b.store(right, b.gep_const(b.load_local(n), 8));
                b.store(left, b.gep_const(b.load_local(n), 16));
                Value t = b.load_local(lv);
                b.store_local(lv, b.load_local(rv));
                b.store_local(rv, t);
            });
            if_then(b, b.lt(b.load_local(lv), b.load_local(mn)),
                    [&] { b.store_local(mn, b.load_local(lv)); });
        });
        b.ret(b.load_local(mn));
    }

    {
        auto& fn = m.add_function("bs_sum", {Ty::Ptr, Ty::I64}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto n = b.local("n", Ty::Ptr);
        const auto w = b.local("w");
        const auto s = b.local("s");
        b.store_local(n, b.param(0));
        b.store_local(w, b.param(1));
        b.store_local(s, b.mul(b.load(b.load_local(n)), b.load_local(w)));
        const auto l = b.local("l", Ty::Ptr);
        b.store_local(l, b.load_ptr(b.gep_const(b.load_local(n), 8)));
        if_then(b, b.eq(is_null(b, b.load_local(l)), b.const_i64(0)), [&] {
            Value sub = b.call("bs_sum",
                               {b.load_local(l),
                                b.mul(b.load_local(w), b.const_i64(2))},
                               Ty::I64);
            b.store_local(s, b.add(b.load_local(s), sub));
            Value r = b.load_ptr(b.gep_const(b.load_local(n), 16));
            Value sub2 =
                b.call("bs_sum",
                       {r, b.add(b.mul(b.load_local(w), b.const_i64(2)),
                                 b.const_i64(1))},
                       Ty::I64);
            b.store_local(s, b.add(b.load_local(s), sub2));
        });
        b.ret(b.and_(b.load_local(s), b.const_i64(0xFFFFFFFFFFll)));
    }

    {
        auto& fn = m.add_function("main", {}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto root = b.local("root", Ty::Ptr);
        b.store_local(root, b.call("bs_build",
                                   {b.const_i64(kDepth), b.const_i64(42)},
                                   Ty::Ptr));
        const auto pass = b.local("pass");
        for_range(b, pass, 0, 2, [&] {
            Value mn = b.call("bs_fix", {b.load_local(root)}, Ty::I64);
            (void)mn;
        });
        Value chk = b.call("bs_sum",
                           {b.load_local(root), b.const_i64(1)}, Ty::I64);
        b.ret(chk);
    }
    return m;
}

// ---- mst ------------------------------------------------------------------
// vertices: heap array of pointers to { key @0, in_tree @8 }; weights
// from a deterministic hash. Prim O(V^2) through the pointer table.

mir::Module build_mst()
{
    constexpr i64 kV = 48;
    mir::Module m;

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto verts = b.local("verts", Ty::Ptr);
    const auto i = b.local("i");
    const auto it = b.local("it");
    const auto best = b.local("best");
    const auto bestv = b.local("bestv");
    const auto total = b.local("total");
    const auto u = b.local("u");

    b.store_local(verts, b.malloc_(b.const_i64(kV * 8)));
    for_range(b, i, 0, kV, [&] {
        Value v = b.malloc_(b.const_i64(16));
        b.store(b.const_i64(1 << 28), v); // key
        b.store(b.const_i64(0), b.gep_const(v, 8));
        b.store(v, b.gep(b.load_local(verts), b.load_local(i), 8));
    });
    // vertex 0 is the root
    {
        Value v0 = b.load_ptr(b.load_local(verts));
        b.store(b.const_i64(0), v0);
    }

    // weight(u, i) = ((u * 31 + i * 17) % 61) + 1  (symmetric enough)
    const auto weight = [&](Value a, Value c) {
        Value h = b.add(b.mul(a, b.const_i64(31)),
                        b.mul(c, b.const_i64(17)));
        return b.add(b.rems(h, b.const_i64(61)), b.const_i64(1));
    };

    b.store_local(total, b.const_i64(0));
    for_range(b, it, 0, kV, [&] {
        b.store_local(best, b.const_i64(-1));
        b.store_local(bestv, b.const_i64((1 << 28) + 1));
        for_range(b, i, 0, kV, [&] {
            Value vp =
                b.load_ptr(b.gep(b.load_local(verts), b.load_local(i), 8));
            Value in_tree = b.load(b.gep_const(vp, 8));
            if_then(b, b.eq(in_tree, b.const_i64(0)), [&] {
                Value vp2 = b.load_ptr(
                    b.gep(b.load_local(verts), b.load_local(i), 8));
                Value key = b.load(vp2);
                if_then(b, b.lt(key, b.load_local(bestv)), [&] {
                    Value vp3 = b.load_ptr(b.gep(b.load_local(verts),
                                                 b.load_local(i), 8));
                    b.store_local(bestv, b.load(vp3));
                    b.store_local(best, b.load_local(i));
                });
            });
        });
        b.store_local(u, b.load_local(best));
        if_then(b, b.ne(b.load_local(u), b.const_i64(-1)), [&] {
            Value up =
                b.load_ptr(b.gep(b.load_local(verts), b.load_local(u), 8));
            b.store(b.const_i64(1), b.gep_const(up, 8)); // in_tree
            Value key = b.load(up);
            if_then(b, b.lt(key, b.const_i64(1 << 28)), [&] {
                Value up2 = b.load_ptr(
                    b.gep(b.load_local(verts), b.load_local(u), 8));
                b.store_local(total,
                              b.add(b.load_local(total), b.load(up2)));
            });
            for_range(b, i, 0, kV, [&] {
                Value vp = b.load_ptr(
                    b.gep(b.load_local(verts), b.load_local(i), 8));
                Value in_tree = b.load(b.gep_const(vp, 8));
                if_then(b, b.eq(in_tree, b.const_i64(0)), [&] {
                    Value w =
                        weight(b.load_local(u), b.load_local(i));
                    Value vp2 = b.load_ptr(b.gep(b.load_local(verts),
                                                 b.load_local(i), 8));
                    Value key2 = b.load(vp2);
                    if_then(b, b.lt(w, key2), [&] {
                        Value w2 = weight(b.load_local(u),
                                          b.load_local(i));
                        Value vp3 =
                            b.load_ptr(b.gep(b.load_local(verts),
                                             b.load_local(i), 8));
                        b.store(w2, vp3);
                    });
                });
            });
        });
    });
    b.ret(b.load_local(total));
    return m;
}

// ---- perimeter -------------------------------------------------------------
// Quadtree { color @0, children @8/@16/@24/@32 }; perimeter of the black
// region, counted on leaves.

mir::Module build_perimeter()
{
    constexpr i64 kDepth = 5;
    mir::Module m;

    {
        // pm_build(depth, x, y) — colour from a deterministic pattern.
        auto& fn =
            m.add_function("pm_build", {Ty::I64, Ty::I64, Ty::I64}, Ty::Ptr);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto d = b.local("d");
        const auto x = b.local("x");
        const auto y = b.local("y");
        const auto n = b.local("n", Ty::Ptr);
        b.store_local(d, b.param(0));
        b.store_local(x, b.param(1));
        b.store_local(y, b.param(2));
        b.store_local(n, b.malloc_(b.const_i64(40)));
        if_else(
            b, b.eq(b.load_local(d), b.const_i64(0)),
            [&] {
                // leaf colour: black iff (x*x + y*y) mod 7 < 3
                Value xx = b.load_local(x);
                Value yy = b.load_local(y);
                Value h = b.add(b.mul(xx, xx), b.mul(yy, yy));
                Value black = b.lt(b.rems(h, b.const_i64(7)),
                                   b.const_i64(3));
                b.store(black, b.load_local(n));
                const auto ci = b.local("ci");
                for_range(b, ci, 0, 4, [&] {
                    Value slot = b.gep(b.load_local(n), b.load_local(ci),
                                       8, 8);
                    b.store(b.null_ptr(), slot);
                });
            },
            [&] {
                b.store(b.const_i64(2), b.load_local(n)); // grey
                const auto ci = b.local("ci2");
                for_range(b, ci, 0, 4, [&] {
                    Value civ = b.load_local(ci);
                    Value nx = b.add(b.mul(b.load_local(x), b.const_i64(2)),
                                     b.and_(civ, b.const_i64(1)));
                    Value ny = b.add(b.mul(b.load_local(y), b.const_i64(2)),
                                     b.shr(civ, b.const_i64(1)));
                    Value child =
                        b.call("pm_build",
                               {b.sub(b.load_local(d), b.const_i64(1)), nx,
                                ny},
                               Ty::Ptr);
                    Value slot = b.gep(b.load_local(n), b.load_local(ci),
                                       8, 8);
                    b.store(child, slot);
                });
            });
        b.ret(b.load_local(n));
    }

    {
        // pm_count(node, depth): black leaves contribute 4 >> depth-ish
        // edge weight (simplified perimeter accounting).
        auto& fn = m.add_function("pm_count", {Ty::Ptr, Ty::I64}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto n = b.local("n", Ty::Ptr);
        const auto d = b.local("d");
        const auto s = b.local("s");
        b.store_local(n, b.param(0));
        b.store_local(d, b.param(1));
        b.store_local(s, b.const_i64(0));
        Value color = b.load(b.load_local(n));
        if_else(
            b, b.eq(color, b.const_i64(2)),
            [&] {
                const auto ci = b.local("ci");
                for_range(b, ci, 0, 4, [&] {
                    Value slot = b.gep(b.load_local(n), b.load_local(ci),
                                       8, 8);
                    Value child = b.load_ptr(slot);
                    Value sub =
                        b.call("pm_count",
                               {child, b.add(b.load_local(d),
                                             b.const_i64(1))},
                               Ty::I64);
                    b.store_local(s, b.add(b.load_local(s), sub));
                });
            },
            [&] {
                Value c2 = b.load(b.load_local(n));
                if_then(b, b.eq(c2, b.const_i64(1)), [&] {
                    Value w = b.shl(b.const_i64(4), b.load_local(d));
                    b.store_local(s, w);
                });
            });
        b.ret(b.load_local(s));
    }

    {
        auto& fn = m.add_function("main", {}, Ty::I64);
        mir::FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        Value root = b.call("pm_build",
                            {b.const_i64(kDepth), b.const_i64(0),
                             b.const_i64(0)},
                            Ty::Ptr);
        Value total = b.call("pm_count", {root, b.const_i64(0)}, Ty::I64);
        b.ret(total);
    }
    return m;
}

// ---- health ----------------------------------------------------------------
// Linked patient lists per "village": traversal, aging, and transfers
// between lists (pointer removal/insertion).

mir::Module build_health()
{
    constexpr i64 kLists = 16;
    constexpr i64 kInitPerList = 12;
    constexpr i64 kSteps = 24;
    mir::Module m;

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    // heads: heap array of list-head pointers. node { age @0, next @8 }.
    const auto heads = b.local("heads", Ty::Ptr);
    const auto li = b.local("li");
    const auto k = b.local("k");
    const auto step = b.local("step");
    const auto chk = b.local("chk");

    b.store_local(heads, b.malloc_(b.const_i64(kLists * 8)));
    for_range(b, li, 0, kLists, [&] {
        Value slot = b.gep(b.load_local(heads), b.load_local(li), 8);
        b.store(b.null_ptr(), slot);
        for_range(b, k, 0, kInitPerList, [&] {
            Value node = b.malloc_(b.const_i64(16));
            b.store(b.add(b.mul(b.load_local(li), b.const_i64(3)),
                          b.load_local(k)),
                    node);
            Value slot2 =
                b.gep(b.load_local(heads), b.load_local(li), 8);
            Value old = b.load_ptr(slot2);
            b.store(old, b.gep_const(node, 8));
            b.store(node, slot2);
        });
    });

    for_range(b, step, 0, kSteps, [&] {
        for_range(b, li, 0, kLists, [&] {
            // age every patient in list li
            const auto cur = b.local("cur", Ty::Ptr);
            b.store_local(cur,
                          b.load_ptr(b.gep(b.load_local(heads),
                                           b.load_local(li), 8)));
            while_loop(
                b,
                [&] {
                    return b.eq(is_null(b, b.load_local(cur)),
                                b.const_i64(0));
                },
                [&] {
                    Value node = b.load_local(cur);
                    Value age = b.load(node);
                    b.store(b.add(age, b.const_i64(1)), node);
                    b.store_local(cur,
                                  b.load_ptr(b.gep_const(node, 8)));
                });
            // transfer the head patient to list (li + step) % kLists if
            // old enough
            Value slot = b.gep(b.load_local(heads), b.load_local(li), 8);
            const auto head = b.local("head", Ty::Ptr);
            b.store_local(head, b.load_ptr(slot));
            if_then(
                b, b.eq(is_null(b, b.load_local(head)), b.const_i64(0)),
                [&] {
                    Value age = b.load(b.load_local(head));
                    if_then(b, b.lt(b.const_i64(20), age), [&] {
                        Value slot2 = b.gep(b.load_local(heads),
                                            b.load_local(li), 8);
                        Value h = b.load_ptr(slot2);
                        Value next = b.load_ptr(b.gep_const(h, 8));
                        b.store(next, slot2);
                        Value dst = b.rems(
                            b.add(b.load_local(li), b.load_local(step)),
                            b.const_i64(kLists));
                        Value dslot =
                            b.gep(b.load_local(heads), dst, 8);
                        Value dhead = b.load_ptr(dslot);
                        b.store(dhead, b.gep_const(h, 8));
                        b.store(b.const_i64(0), h); // reset age
                        b.store(h, dslot);
                    });
                });
        });
    });

    b.store_local(chk, b.const_i64(0));
    for_range(b, li, 0, kLists, [&] {
        const auto cur = b.local("cur2", Ty::Ptr);
        b.store_local(cur, b.load_ptr(b.gep(b.load_local(heads),
                                            b.load_local(li), 8)));
        while_loop(
            b,
            [&] {
                return b.eq(is_null(b, b.load_local(cur)), b.const_i64(0));
            },
            [&] {
                Value node = b.load_local(cur);
                b.store_local(
                    chk, b.add(b.load_local(chk),
                               b.add(b.load(node),
                                     b.add(b.load_local(li),
                                           b.const_i64(1)))));
                b.store_local(cur, b.load_ptr(b.gep_const(node, 8)));
            });
    });
    b.ret(b.load_local(chk));
    return m;
}

// ---- em3d ------------------------------------------------------------------
// Bipartite relaxation: node { value @0, deps(ptr->ptr array) @8 },
// dependency arrays are heap arrays of node pointers.

mir::Module build_em3d()
{
    constexpr i64 kNodes = 48;  // per side
    constexpr i64 kDeps = 4;
    constexpr i64 kIters = 10;
    mir::Module m;

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto enodes = b.local("enodes", Ty::Ptr);
    const auto hnodes = b.local("hnodes", Ty::Ptr);
    const auto i = b.local("i");
    const auto d = b.local("d");
    const auto it = b.local("it");
    const auto chk = b.local("chk");

    const auto build_side = [&](u32 table, i64 seed_mul) {
        b.store_local(table, b.malloc_(b.const_i64(kNodes * 8)));
        for_range(b, i, 0, kNodes, [&] {
            Value node = b.malloc_(b.const_i64(16)); // value + deps ptr
            Value iv = b.load_local(i);
            b.store(b.add(b.mul(iv, b.const_i64(seed_mul)),
                          b.const_i64(7)),
                    node);
            Value deps = b.malloc_(b.const_i64(kDeps * 8));
            b.store(deps, b.gep_const(node, 8));
            b.store(node, b.gep(b.load_local(table), b.load_local(i), 8));
        });
    };
    build_side(enodes, 3);
    build_side(hnodes, 5);

    // wire deps: e[i] depends on h[(i*7+d*13)%kNodes] and vice versa
    const auto wire = [&](u32 from, u32 to) {
        for_range(b, i, 0, kNodes, [&] {
            for_range(b, d, 0, kDeps, [&] {
                Value iv = b.load_local(i);
                Value dv = b.load_local(d);
                Value idx = b.rems(
                    b.add(b.mul(iv, b.const_i64(7)),
                          b.mul(dv, b.const_i64(13))),
                    b.const_i64(kNodes));
                Value target =
                    b.load_ptr(b.gep(b.load_local(to), idx, 8));
                Value node =
                    b.load_ptr(b.gep(b.load_local(from),
                                     b.load_local(i), 8));
                Value deps = b.load_ptr(b.gep_const(node, 8));
                b.store(target, b.gep(deps, b.load_local(d), 8));
            });
        });
    };
    wire(enodes, hnodes);
    wire(hnodes, enodes);

    const auto relax = [&](u32 table) {
        for_range(b, i, 0, kNodes, [&] {
            Value node = b.load_ptr(
                b.gep(b.load_local(table), b.load_local(i), 8));
            Value deps = b.load_ptr(b.gep_const(node, 8));
            const auto acc = b.local("acc");
            b.store_local(acc, b.const_i64(0));
            for_range(b, d, 0, kDeps, [&] {
                Value node2 = b.load_ptr(
                    b.gep(b.load_local(table), b.load_local(i), 8));
                Value deps2 = b.load_ptr(b.gep_const(node2, 8));
                Value dep =
                    b.load_ptr(b.gep(deps2, b.load_local(d), 8));
                b.store_local(acc,
                              b.add(b.load_local(acc), b.load(dep)));
                (void)deps;
            });
            Value node3 = b.load_ptr(
                b.gep(b.load_local(table), b.load_local(i), 8));
            Value old = b.load(node3);
            b.store(b.sub(old, b.sra(b.load_local(acc), b.const_i64(1))),
                    node3);
        });
    };
    for_range(b, it, 0, kIters, [&] {
        relax(enodes);
        relax(hnodes);
    });

    b.store_local(chk, b.const_i64(0));
    const auto sum_side = [&](u32 table) {
        for_range(b, i, 0, kNodes, [&] {
            Value node = b.load_ptr(
                b.gep(b.load_local(table), b.load_local(i), 8));
            b.store_local(chk, b.add(b.load_local(chk), b.load(node)));
        });
    };
    sum_side(enodes);
    sum_side(hnodes);
    b.ret(b.and_(b.load_local(chk), b.const_i64(0xFFFFFFFFll)));
    return m;
}

// ---- tsp -------------------------------------------------------------------
// Nearest-neighbour tour over heap point structs { x @0, y @8, used @16 }.

mir::Module build_tsp()
{
    constexpr i64 kPts = 56;
    mir::Module m;

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto pts = b.local("pts", Ty::Ptr);
    const auto i = b.local("i");
    const auto cur = b.local("cur");
    const auto total = b.local("total");
    const auto seed = b.local("seed");
    const auto step = b.local("step");
    const auto best = b.local("best");
    const auto bestd = b.local("bestd");

    b.store_local(pts, b.malloc_(b.const_i64(kPts * 8)));
    b.store_local(seed, b.const_i64(0x7357));
    for_range(b, i, 0, kPts, [&] {
        Value p = b.malloc_(b.const_i64(24));
        Value r1 = xorshift_step(b, seed);
        b.store(b.and_(r1, b.const_i64(1023)), p);
        Value r2 = xorshift_step(b, seed);
        b.store(b.and_(r2, b.const_i64(1023)), b.gep_const(p, 8));
        b.store(b.const_i64(0), b.gep_const(p, 16));
        b.store(p, b.gep(b.load_local(pts), b.load_local(i), 8));
    });

    b.store_local(cur, b.const_i64(0));
    b.store_local(total, b.const_i64(0));
    {
        Value p0 = b.load_ptr(b.load_local(pts));
        b.store(b.const_i64(1), b.gep_const(p0, 16));
    }
    for_range(b, step, 1, kPts, [&] {
        b.store_local(best, b.const_i64(-1));
        b.store_local(bestd, b.const_i64(1ll << 40));
        for_range(b, i, 0, kPts, [&] {
            Value cand = b.load_ptr(
                b.gep(b.load_local(pts), b.load_local(i), 8));
            Value used = b.load(b.gep_const(cand, 16));
            if_then(b, b.eq(used, b.const_i64(0)), [&] {
                Value cp = b.load_ptr(
                    b.gep(b.load_local(pts), b.load_local(cur), 8));
                Value np = b.load_ptr(
                    b.gep(b.load_local(pts), b.load_local(i), 8));
                Value dx = b.sub(b.load(cp), b.load(np));
                Value dy = b.sub(b.load(b.gep_const(cp, 8)),
                                 b.load(b.gep_const(np, 8)));
                Value dist = b.add(b.mul(dx, dx), b.mul(dy, dy));
                if_then(b, b.lt(dist, b.load_local(bestd)), [&] {
                    Value cp2 = b.load_ptr(b.gep(b.load_local(pts),
                                                 b.load_local(cur), 8));
                    Value np2 = b.load_ptr(b.gep(b.load_local(pts),
                                                 b.load_local(i), 8));
                    Value dx2 = b.sub(b.load(cp2), b.load(np2));
                    Value dy2 = b.sub(b.load(b.gep_const(cp2, 8)),
                                      b.load(b.gep_const(np2, 8)));
                    b.store_local(bestd, b.add(b.mul(dx2, dx2),
                                               b.mul(dy2, dy2)));
                    b.store_local(best, b.load_local(i));
                });
            });
        });
        Value bp = b.load_ptr(
            b.gep(b.load_local(pts), b.load_local(best), 8));
        b.store(b.const_i64(1), b.gep_const(bp, 16));
        b.store_local(cur, b.load_local(best));
        b.store_local(total, b.add(b.load_local(total),
                                   b.load_local(bestd)));
    });
    b.ret(b.and_(b.load_local(total), b.const_i64(0xFFFFFFFFll)));
    return m;
}

} // namespace hwst::workloads
