// Kernel builders, one per benchmark program (see workload.hpp for the
// registry with suites and expected checksums).
#pragma once

#include <cmath>

#include "mir/builder.hpp"
#include "mir/ir.hpp"

namespace hwst::workloads {

// MiBench-like (paper Fig. 4 left group).
mir::Module build_stringsearch();
mir::Module build_crc32();
mir::Module build_bitcount();
mir::Module build_dijkstra();
mir::Module build_sha();
mir::Module build_math();
mir::Module build_fft();
mir::Module build_adpcm();
mir::Module build_susan();

// Olden-like (pointer-intensive heap structures).
mir::Module build_tsp();
mir::Module build_em3d();
mir::Module build_health();
mir::Module build_mst();
mir::Module build_perimeter();
mir::Module build_bisort();
mir::Module build_treeadd();

// SPEC2006-like.
mir::Module build_milc();
mir::Module build_lbm();
mir::Module build_sphinx3();
mir::Module build_sjeng();
mir::Module build_gobmk();
mir::Module build_bzip2();
mir::Module build_hmmer();

} // namespace hwst::workloads
