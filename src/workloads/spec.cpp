// SPEC2006-like kernels (paper Fig. 4 right group / Fig. 5). bzip2 and
// hmmer are deliberately pointer-load dense (linked MTF list, row-
// pointer DP tables): the paper saw 7.98x / 7.78x speedups there
// because the software temporal checks dominate — the keybuffer removes
// them.
#include "workloads/kernels.hpp"

#include "common/prng.hpp"
#include "workloads/dsl.hpp"

namespace hwst::workloads {

using common::u8;
using common::u32;
using common::u64;
using mir::Global;
using mir::Ty;

namespace {

std::vector<u8> random_bytes(u64 n, u64 seed, u8 lo = 0, u8 hi = 255)
{
    common::Xoshiro256 rng{seed};
    std::vector<u8> out(n);
    for (auto& x : out) x = static_cast<u8>(rng.range(lo, hi));
    return out;
}

} // namespace

// ---- milc (su3-like fixed-point 3x3 complex matrix products) -------------

mir::Module build_milc()
{
    constexpr i64 kSites = 48;
    mir::Module m;
    const u32 gdata = m.add_global(Global{
        "lattice", kSites * 18 * 2 * 2, 8,
        random_bytes(kSites * 18 * 2 * 2, 0x311C)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto amat = b.local("amat", Ty::Ptr);
    const auto bmat = b.local("bmat", Ty::Ptr);
    const auto cmat = b.local("cmat", Ty::Ptr);
    const auto site = b.local("site");
    const auto r = b.local("r");
    const auto c = b.local("c");
    const auto k = b.local("k");
    const auto chk = b.local("chk");

    b.store_local(amat, b.malloc_(b.const_i64(18 * 8)));
    b.store_local(bmat, b.malloc_(b.const_i64(18 * 8)));
    b.store_local(cmat, b.malloc_(b.const_i64(18 * 8)));
    b.store_local(chk, b.const_i64(0));

    for_range(b, site, 0, kSites, [&] {
        // load A and B (Q8 fixed point) from the lattice data
        const auto e = b.local("e");
        for_range(b, e, 0, 18, [&] {
            Value sv = b.load_local(site);
            Value ev = b.load_local(e);
            Value off = b.add(b.mul(sv, b.const_i64(72)),
                              b.mul(ev, b.const_i64(2)));
            Value raw =
                b.load(b.gep(b.global_addr(gdata), off, 1), 2, false);
            b.store(b.sub(raw, b.const_i64(128)),
                    b.gep(b.load_local(amat), b.load_local(e), 8));
            Value raw2 = b.load(
                b.gep(b.global_addr(gdata),
                      b.add(b.mul(b.load_local(site), b.const_i64(72)),
                            b.add(b.mul(b.load_local(e), b.const_i64(2)),
                                  b.const_i64(36))),
                      1),
                2, false);
            b.store(b.sub(raw2, b.const_i64(128)),
                    b.gep(b.load_local(bmat), b.load_local(e), 8));
        });
        // C = A * B (3x3 complex: entries (re,im) at idx (r*3+c)*2)
        for_range(b, r, 0, 3, [&] {
            for_range(b, c, 0, 3, [&] {
                const auto accr = b.local("accr");
                const auto acci = b.local("acci");
                b.store_local(accr, b.const_i64(0));
                b.store_local(acci, b.const_i64(0));
                for_range(b, k, 0, 3, [&] {
                    Value rv = b.load_local(r);
                    Value cv = b.load_local(c);
                    Value kv = b.load_local(k);
                    Value ai = b.mul(
                        b.add(b.mul(rv, b.const_i64(3)), kv),
                        b.const_i64(2));
                    Value bi = b.mul(
                        b.add(b.mul(kv, b.const_i64(3)), cv),
                        b.const_i64(2));
                    Value ar =
                        b.load(b.gep(b.load_local(amat), ai, 8));
                    Value aiim = b.load(b.gep(b.load_local(amat), ai, 8, 8));
                    Value br =
                        b.load(b.gep(b.load_local(bmat), bi, 8));
                    Value bim = b.load(b.gep(b.load_local(bmat), bi, 8, 8));
                    b.store_local(
                        accr,
                        b.add(b.load_local(accr),
                              b.sub(b.mul(ar, br), b.mul(aiim, bim))));
                    b.store_local(
                        acci,
                        b.add(b.load_local(acci),
                              b.add(b.mul(ar, bim), b.mul(aiim, br))));
                });
                Value ci = b.mul(
                    b.add(b.mul(b.load_local(r), b.const_i64(3)),
                          b.load_local(c)),
                    b.const_i64(2));
                b.store(b.sra(b.load_local(accr), b.const_i64(8)),
                        b.gep(b.load_local(cmat), ci, 8));
                b.store(b.sra(b.load_local(acci), b.const_i64(8)),
                        b.gep(b.load_local(cmat), ci, 8, 8));
            });
        });
        const auto e2 = b.local("e2");
        for_range(b, e2, 0, 18, [&] {
            b.store_local(chk,
                          b.add(b.load_local(chk),
                                b.load(b.gep(b.load_local(cmat),
                                             b.load_local(e2), 8))));
        });
    });
    b.ret(b.and_(b.load_local(chk), b.const_i64(0xFFFFFFFFll)));
    return m;
}

// ---- lbm (D2Q5 stream + collide, fixed point) -----------------------------

mir::Module build_lbm()
{
    constexpr i64 kW = 20, kH = 20, kQ = 5, kSteps = 6;
    constexpr i64 kCells = kW * kH;
    mir::Module m;

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto src = b.local("src", Ty::Ptr);
    const auto dst = b.local("dst", Ty::Ptr);
    const auto x = b.local("x");
    const auto y = b.local("y");
    const auto q = b.local("q");
    const auto t = b.local("t");
    const auto chk = b.local("chk");

    b.store_local(src, b.malloc_(b.const_i64(kCells * kQ * 8)));
    b.store_local(dst, b.malloc_(b.const_i64(kCells * kQ * 8)));

    // init: density 256 + deterministic ripple
    for_range(b, y, 0, kH, [&] {
        for_range(b, x, 0, kW, [&] {
            for_range(b, q, 0, kQ, [&] {
                Value yv = b.load_local(y);
                Value xv = b.load_local(x);
                Value qv = b.load_local(q);
                Value cell = b.add(b.mul(yv, b.const_i64(kW)), xv);
                Value idx =
                    b.add(b.mul(cell, b.const_i64(kQ)), qv);
                Value init = b.add(
                    b.const_i64(256),
                    b.rems(b.add(b.mul(xv, b.const_i64(5)),
                                 b.mul(yv, b.const_i64(3))),
                           b.const_i64(17)));
                b.store(init, b.gep(b.load_local(src), idx, 8));
            });
        });
    });

    // directions: rest, +x, -x, +y, -y
    static constexpr i64 kDx[kQ] = {0, 1, -1, 0, 0};
    static constexpr i64 kDy[kQ] = {0, 0, 0, 1, -1};

    for_range(b, t, 0, kSteps, [&] {
        for_range(b, y, 1, kH - 1, [&] {
            for_range(b, x, 1, kW - 1, [&] {
                // collide: relax toward the mean of the 5 populations
                const auto rho = b.local("rho");
                b.store_local(rho, b.const_i64(0));
                for_range(b, q, 0, kQ, [&] {
                    Value cell =
                        b.add(b.mul(b.load_local(y), b.const_i64(kW)),
                              b.load_local(x));
                    Value idx = b.add(b.mul(cell, b.const_i64(kQ)),
                                      b.load_local(q));
                    b.store_local(
                        rho, b.add(b.load_local(rho),
                                   b.load(b.gep(b.load_local(src), idx,
                                                8))));
                });
                for (i64 dir = 0; dir < kQ; ++dir) {
                    Value cell =
                        b.add(b.mul(b.load_local(y), b.const_i64(kW)),
                              b.load_local(x));
                    Value idx = b.add(b.mul(cell, b.const_i64(kQ)),
                                      b.const_i64(dir));
                    Value f = b.load(b.gep(b.load_local(src), idx, 8));
                    Value eq = b.divs(b.load_local(rho), b.const_i64(kQ));
                    // f' = f + (eq - f)/2
                    Value relaxed =
                        b.add(f, b.sra(b.sub(eq, f), b.const_i64(1)));
                    // stream to (x+dx, y+dy)
                    Value nx = b.add(b.load_local(x), b.const_i64(kDx[dir]));
                    Value ny = b.add(b.load_local(y), b.const_i64(kDy[dir]));
                    Value ncell =
                        b.add(b.mul(ny, b.const_i64(kW)), nx);
                    Value nidx = b.add(b.mul(ncell, b.const_i64(kQ)),
                                       b.const_i64(dir));
                    b.store(relaxed, b.gep(b.load_local(dst), nidx, 8));
                }
            });
        });
        // swap src/dst
        const auto tmp = b.local("tmp", Ty::Ptr);
        b.store_local(tmp, b.load_local(src));
        b.store_local(src, b.load_local(dst));
        b.store_local(dst, b.load_local(tmp));
    });

    b.store_local(chk, b.const_i64(0));
    const auto i = b.local("i");
    for_range(b, i, 0, kCells * kQ, [&] {
        b.store_local(chk, b.add(b.load_local(chk),
                                 b.load(b.gep(b.load_local(src),
                                              b.load_local(i), 8))));
    });
    b.ret(b.and_(b.load_local(chk), b.const_i64(0xFFFFFFFFll)));
    return m;
}

// ---- sphinx3 (GMM scoring, fixed point) -----------------------------------

mir::Module build_sphinx3()
{
    constexpr i64 kFrames = 24, kDims = 12, kDens = 24;
    mir::Module m;
    const u32 gfeat = m.add_global(
        Global{"features", kFrames * kDims, 8,
               random_bytes(kFrames * kDims, 0x5F1)});
    const u32 gmean = m.add_global(Global{
        "means", kDens * kDims, 8, random_bytes(kDens * kDims, 0x3EA)});
    const u32 gvar = m.add_global(Global{
        "vars", kDens * kDims, 8, random_bytes(kDens * kDims, 0x7A2, 1)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto f = b.local("f");
    const auto dnr = b.local("dnr");
    const auto dim = b.local("dim");
    const auto best = b.local("best");
    const auto score = b.local("score");
    const auto total = b.local("total");

    b.store_local(total, b.const_i64(0));
    for_range(b, f, 0, kFrames, [&] {
        b.store_local(best, b.const_i64(1ll << 40));
        for_range(b, dnr, 0, kDens, [&] {
            b.store_local(score, b.const_i64(0));
            for_range(b, dim, 0, kDims, [&] {
                Value fv = b.load_local(f);
                Value dv = b.load_local(dnr);
                Value mv = b.load_local(dim);
                Value xi = b.load(
                    b.gep(b.global_addr(gfeat),
                          b.add(b.mul(fv, b.const_i64(kDims)), mv), 1),
                    1, false);
                Value mu = b.load(
                    b.gep(b.global_addr(gmean),
                          b.add(b.mul(dv, b.const_i64(kDims)), mv), 1),
                    1, false);
                Value var = b.load(
                    b.gep(b.global_addr(gvar),
                          b.add(b.mul(dv, b.const_i64(kDims)), mv), 1),
                    1, false);
                Value diff = b.sub(xi, mu);
                b.store_local(
                    score,
                    b.add(b.load_local(score),
                          b.divs(b.mul(diff, diff),
                                 b.add(var, b.const_i64(1)))));
            });
            if_then(b, b.lt(b.load_local(score), b.load_local(best)),
                    [&] { b.store_local(best, b.load_local(score)); });
        });
        b.store_local(total, b.add(b.load_local(total),
                                   b.load_local(best)));
    });
    b.ret(b.load_local(total));
    return m;
}

// ---- sjeng (mailbox move generation + evaluation) --------------------------

mir::Module build_sjeng()
{
    constexpr i64 kIters = 48;
    mir::Module m;
    // 10x12 mailbox board: 0 empty, 1..6 white, 7..12 black, 99 border.
    common::Xoshiro256 rng{0x53E6};
    std::vector<u8> board(120, 99);
    for (int r = 0; r < 8; ++r) {
        for (int c = 0; c < 8; ++c) {
            const auto v = rng.below(14);
            board[(r + 2) * 10 + c + 1] =
                static_cast<u8>(v <= 12 ? v : 0);
        }
    }
    const u32 gboard = m.add_global(Global{"board", 120, 8, board});
    // Knight move offsets.
    std::vector<u8> koff;
    static constexpr int kKnight[8] = {-21, -19, -12, -8, 8, 12, 19, 21};
    for (const int o : kKnight)
        for (int i = 0; i < 4; ++i)
            koff.push_back(static_cast<u8>((o >> (8 * i)) & 0xFF));
    const u32 gkoff = m.add_global(Global{"knight_off", 32, 8, koff});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto it = b.local("it");
    const auto sq = b.local("sq");
    const auto mv = b.local("mv");
    const auto score = b.local("score");

    b.store_local(score, b.const_i64(0));
    for_range(b, it, 0, kIters, [&] {
        for_range(b, sq, 21, 99, [&] {
            Value piece = b.load(
                b.gep(b.global_addr(gboard), b.load_local(sq), 1), 1,
                false);
            // knights (2 and 8): generate moves
            Value isn = b.or_(b.eq(piece, b.const_i64(2)),
                              b.eq(piece, b.const_i64(8)));
            if_then(b, isn, [&] {
                for_range(b, mv, 0, 8, [&] {
                    Value off = b.load(
                        b.gep(b.global_addr(gkoff), b.load_local(mv), 4),
                        4, true);
                    Value tgt = b.add(b.load_local(sq), off);
                    Value tp = b.load(
                        b.gep(b.global_addr(gboard), tgt, 1), 1, false);
                    if_then(b, b.ne(tp, b.const_i64(99)), [&] {
                        Value tp2 = b.load(
                            b.gep(b.global_addr(gboard),
                                  b.add(b.load_local(sq),
                                        b.load(b.gep(b.global_addr(gkoff),
                                                     b.load_local(mv), 4),
                                               4, true)),
                                  1),
                            1, false);
                        b.store_local(
                            score,
                            b.add(b.load_local(score),
                                  b.add(tp2, b.const_i64(1))));
                    });
                });
            });
            // material evaluation
            Value piece2 = b.load(
                b.gep(b.global_addr(gboard), b.load_local(sq), 1), 1,
                false);
            if_then(b, b.and_(b.lt(b.const_i64(0), piece2),
                              b.lt(piece2, b.const_i64(13))),
                    [&] {
                        Value p2 = b.load(b.gep(b.global_addr(gboard),
                                                b.load_local(sq), 1),
                                          1, false);
                        b.store_local(score,
                                      b.add(b.load_local(score),
                                            b.mul(p2, p2)));
                    });
        });
    });
    b.ret(b.load_local(score));
    return m;
}

// ---- gobmk (flood-fill liberty counting) -----------------------------------

mir::Module build_gobmk()
{
    constexpr i64 kN = 13; // board size
    mir::Module m;
    common::Xoshiro256 rng{0x60B0};
    std::vector<u8> board(kN * kN);
    for (auto& c : board) c = static_cast<u8>(rng.below(3)); // 0/1/2
    const u32 gboard = m.add_global(Global{"goboard", kN * kN, 8, board});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto mark = b.array("mark", kN * kN * 8);
    const auto stack = b.array("stack", kN * kN * 8);
    const auto start = b.local("start");
    const auto sp = b.local("sp");
    const auto libs = b.local("libs");
    const auto total = b.local("total");
    const auto i = b.local("i");

    b.store_local(total, b.const_i64(0));
    for_range(b, start, 0, kN * kN, [&] {
        Value colour = b.load(
            b.gep(b.global_addr(gboard), b.load_local(start), 1), 1,
            false);
        if_then(b, b.ne(colour, b.const_i64(0)), [&] {
            // clear marks
            for_range(b, i, 0, kN * kN, [&] {
                b.store(b.const_i64(0),
                        b.gep(b.alloca_addr(mark), b.load_local(i), 8));
            });
            b.store_local(libs, b.const_i64(0));
            b.store(b.load_local(start), b.alloca_addr(stack));
            b.store_local(sp, b.const_i64(1));
            b.store(b.const_i64(1),
                    b.gep(b.alloca_addr(mark), b.load_local(start), 8));
            while_loop(
                b,
                [&] {
                    return b.lt(b.const_i64(0), b.load_local(sp));
                },
                [&] {
                    b.store_local(sp, b.sub(b.load_local(sp),
                                            b.const_i64(1)));
                    const auto cell = b.local("cell");
                    b.store_local(
                        cell, b.load(b.gep(b.alloca_addr(stack),
                                           b.load_local(sp), 8)));
                    // 4 neighbours
                    static constexpr i64 kD[4] = {-1, 1, -kN, kN};
                    for (const i64 d : kD) {
                        Value cv = b.load_local(cell);
                        Value nb = b.add(cv, b.const_i64(d));
                        Value in_range = b.and_(
                            b.le(b.const_i64(0), nb),
                            b.lt(nb, b.const_i64(kN * kN)));
                        // avoid row wrap for +-1
                        Value row_ok =
                            d == -1 || d == 1
                                ? b.eq(b.divs(nb, b.const_i64(kN)),
                                       b.divs(cv, b.const_i64(kN)))
                                : b.const_i64(1);
                        if_then(b, b.and_(in_range, row_ok), [&] {
                            Value cv2 = b.load_local(cell);
                            Value nb2 = b.add(cv2, b.const_i64(d));
                            Value nc = b.load(
                                b.gep(b.global_addr(gboard), nb2, 1), 1,
                                false);
                            Value seen = b.load(
                                b.gep(b.alloca_addr(mark), nb2, 8));
                            if_then(b,
                                    b.and_(b.eq(seen, b.const_i64(0)),
                                           b.eq(nc, b.const_i64(0))),
                                    [&] {
                                        b.store_local(
                                            libs,
                                            b.add(b.load_local(libs),
                                                  b.const_i64(1)));
                                    });
                            // Recompute in this block (block-local SSA).
                            Value cvr = b.load_local(cell);
                            Value nbr = b.add(cvr, b.const_i64(d));
                            Value ncr = b.load(
                                b.gep(b.global_addr(gboard), nbr, 1), 1,
                                false);
                            Value seenr = b.load(
                                b.gep(b.alloca_addr(mark), nbr, 8));
                            Value startr = b.load(
                                b.gep(b.global_addr(gboard),
                                      b.load_local(start), 1),
                                1, false);
                            if_then(
                                b,
                                b.and_(b.eq(seenr, b.const_i64(0)),
                                       b.eq(ncr, startr)),
                                [&] {
                                    Value cv3 = b.load_local(cell);
                                    Value nb3 =
                                        b.add(cv3, b.const_i64(d));
                                    b.store(
                                        b.const_i64(1),
                                        b.gep(b.alloca_addr(mark), nb3,
                                              8));
                                    b.store(nb3,
                                            b.gep(b.alloca_addr(stack),
                                                  b.load_local(sp), 8));
                                    b.store_local(
                                        sp, b.add(b.load_local(sp),
                                                  b.const_i64(1)));
                                });
                        });
                    }
                });
            b.store_local(total,
                          b.add(b.load_local(total), b.load_local(libs)));
        });
    });
    b.ret(b.load_local(total));
    return m;
}

// ---- bzip2 (MTF over a linked symbol list + RLE) ----------------------------
// The MTF list is 256 heap nodes chained by pointers; every input byte
// chases the chain (pointer loads), then rewires the front (pointer
// stores). Pointer-load density is what made the paper's bzip2 7.98x.

mir::Module build_bzip2()
{
    constexpr i64 kLen = 3072;
    mir::Module m;
    const u32 gdata = m.add_global(
        Global{"bzdata", kLen, 8, random_bytes(kLen, 0xB21, 0, 23)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    // node { sym @0, next @8 }
    const auto head = b.local("head", Ty::Ptr);
    const auto i = b.local("i");
    const auto chk = b.local("chk");
    const auto run = b.local("run");
    const auto last = b.local("last");

    // Build the MTF chain 0..23 (only small symbols occur in the data).
    b.store_local(head, b.null_ptr());
    for_range(b, i, 0, 24, [&] {
        Value node = b.malloc_(b.const_i64(16));
        b.store(b.sub(b.const_i64(23), b.load_local(i)), node);
        Value old = b.load_local(head);
        b.store(old, b.gep_const(node, 8));
        b.store_local(head, node);
    });

    b.store_local(chk, b.const_i64(0));
    b.store_local(run, b.const_i64(0));
    b.store_local(last, b.const_i64(-1));
    for_range(b, i, 0, kLen, [&] {
        Value byte = b.load(
            b.gep(b.global_addr(gdata), b.load_local(i), 1), 1, false);
        // find position of byte in the chain
        const auto pos = b.local("pos");
        const auto cur = b.local("cur", Ty::Ptr);
        const auto prev = b.local("prev", Ty::Ptr);
        const auto target = b.local("target");
        b.store_local(target, byte);
        b.store_local(pos, b.const_i64(0));
        b.store_local(cur, b.load_local(head));
        b.store_local(prev, b.null_ptr());
        while_loop(
            b,
            [&] {
                Value sym = b.load(b.load_local(cur));
                return b.ne(sym, b.load_local(target));
            },
            [&] {
                b.store_local(prev, b.load_local(cur));
                b.store_local(cur,
                              b.load_ptr(b.gep_const(b.load_local(cur),
                                                     8)));
                b.store_local(pos, b.add(b.load_local(pos),
                                         b.const_i64(1)));
            });
        // move to front (if not already there)
        if_then(
            b,
            b.eq(b.eq(b.ptr_to_int(b.load_local(prev)), b.const_i64(0)),
                 b.const_i64(0)),
            [&] {
                Value nxt =
                    b.load_ptr(b.gep_const(b.load_local(cur), 8));
                b.store(nxt, b.gep_const(b.load_local(prev), 8));
                Value oldh = b.load_local(head);
                b.store(oldh, b.gep_const(b.load_local(cur), 8));
                b.store_local(head, b.load_local(cur));
            });
        // RLE of the MTF positions
        if_else(
            b, b.eq(b.load_local(pos), b.load_local(last)),
            [&] {
                b.store_local(run, b.add(b.load_local(run),
                                         b.const_i64(1)));
            },
            [&] {
                b.store_local(
                    chk, b.add(b.load_local(chk),
                               b.mul(b.load_local(run),
                                     b.load_local(run))));
                b.store_local(run, b.const_i64(1));
                b.store_local(last, b.load_local(pos));
            });
        b.store_local(chk,
                      b.add(b.load_local(chk),
                            b.mul(b.load_local(pos), b.const_i64(3))));
    });
    b.ret(b.and_(b.load_local(chk), b.const_i64(0xFFFFFFFFll)));
    return m;
}

// ---- hmmer (Viterbi DP over row-pointer tables) -----------------------------

mir::Module build_hmmer()
{
    constexpr i64 kStates = 20, kSeq = 40;
    mir::Module m;
    const u32 gseq = m.add_global(
        Global{"sequence", kSeq, 8, random_bytes(kSeq, 0x4E4, 0, 3)});
    const u32 gemit = m.add_global(Global{
        "emissions", kStates * 4, 8, random_bytes(kStates * 4, 0xE51, 1)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    // rows: heap array of row pointers; row = heap array of i64 scores.
    const auto rows = b.local("rows", Ty::Ptr);
    const auto t = b.local("t");
    const auto s = b.local("s");
    const auto chk = b.local("chk");

    b.store_local(rows, b.malloc_(b.const_i64((kSeq + 1) * 8)));
    for_range(b, t, 0, kSeq + 1, [&] {
        Value row = b.malloc_(b.const_i64(kStates * 8));
        b.store(row, b.gep(b.load_local(rows), b.load_local(t), 8));
    });
    // init row 0
    for_range(b, s, 0, kStates, [&] {
        Value row0 = b.load_ptr(b.load_local(rows));
        b.store(b.mul(b.load_local(s), b.const_i64(2)),
                b.gep(row0, b.load_local(s), 8));
    });

    for_range(b, t, 1, kSeq + 1, [&] {
        for_range(b, s, 0, kStates, [&] {
            Value tv = b.load_local(t);
            Value sv = b.load_local(s);
            // prev row pointer (loaded from the table each time — the
            // pointer-dense pattern)
            Value prow = b.load_ptr(
                b.gep(b.load_local(rows), b.sub(tv, b.const_i64(1)), 8));
            // match: stay, from s-1, from s-2 (clamped)
            Value stay = b.load(b.gep(prow, sv, 8));
            const auto bestv = b.local("bestv");
            b.store_local(bestv, stay);
            if_then(b, b.lt(b.const_i64(0), b.load_local(s)), [&] {
                Value tv2 = b.load_local(t);
                Value prow2 = b.load_ptr(
                    b.gep(b.load_local(rows),
                          b.sub(tv2, b.const_i64(1)), 8));
                Value from1 = b.add(
                    b.load(b.gep(prow2,
                                 b.sub(b.load_local(s), b.const_i64(1)),
                                 8)),
                    b.const_i64(1));
                if_then(b, b.lt(b.load_local(bestv), from1), [&] {
                    Value tv3 = b.load_local(t);
                    Value prow3 = b.load_ptr(
                        b.gep(b.load_local(rows),
                              b.sub(tv3, b.const_i64(1)), 8));
                    b.store_local(
                        bestv,
                        b.add(b.load(b.gep(prow3,
                                           b.sub(b.load_local(s),
                                                 b.const_i64(1)),
                                           8)),
                              b.const_i64(1)));
                });
            });
            Value sym = b.load(
                b.gep(b.global_addr(gseq),
                      b.sub(b.load_local(t), b.const_i64(1)), 1),
                1, false);
            Value emit = b.load(
                b.gep(b.global_addr(gemit),
                      b.add(b.mul(b.load_local(s), b.const_i64(4)), sym),
                      1),
                1, false);
            Value row = b.load_ptr(
                b.gep(b.load_local(rows), b.load_local(t), 8));
            b.store(b.add(b.load_local(bestv), emit),
                    b.gep(row, b.load_local(s), 8));
        });
    });

    b.store_local(chk, b.const_i64(0));
    for_range(b, s, 0, kStates, [&] {
        Value lastrow = b.load_ptr(
            b.gep(b.load_local(rows), b.const_i64(kSeq), 8));
        b.store_local(chk, b.add(b.load_local(chk),
                                 b.load(b.gep(lastrow,
                                              b.load_local(s), 8))));
    });
    b.ret(b.load_local(chk));
    return m;
}

} // namespace hwst::workloads
