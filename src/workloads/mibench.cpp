// MiBench-like embedded kernels (paper Fig. 4, left group). Integer /
// fixed-point reimplementations with the same memory-access character
// as the originals (DESIGN.md §2): byte-table scans, CRC tables,
// bit-twiddling, graph relaxation, hash rounds, fixed-point transforms,
// sample quantisation and image smoothing.
#include "workloads/kernels.hpp"

#include "common/prng.hpp"
#include "workloads/dsl.hpp"

namespace hwst::workloads {

using common::u8;
using common::u32;
using common::u64;
using mir::Global;
using mir::Ty;

namespace {

std::vector<u8> random_bytes(u64 n, u64 seed, u8 lo = 0, u8 hi = 255)
{
    common::Xoshiro256 rng{seed};
    std::vector<u8> out(n);
    for (auto& x : out) x = static_cast<u8>(rng.range(lo, hi));
    return out;
}

void append_u32(std::vector<u8>& v, u32 x)
{
    for (int i = 0; i < 4; ++i) v.push_back(static_cast<u8>(x >> (8 * i)));
}

void append_u64(std::vector<u8>& v, u64 x)
{
    for (int i = 0; i < 8; ++i) v.push_back(static_cast<u8>(x >> (8 * i)));
}

} // namespace

// ---- stringsearch ------------------------------------------------------

mir::Module build_stringsearch()
{
    constexpr u64 kTextLen = 1024;
    constexpr u64 kPatLen = 6;
    constexpr u64 kPatterns = 8;

    mir::Module m;
    std::vector<u8> text = random_bytes(kTextLen, 0x5741, 'a', 'f');
    // Patterns copied out of the text so matches exist.
    std::vector<u8> pats;
    for (u64 p = 0; p < kPatterns; ++p) {
        const u64 pos = (p * 131) % (kTextLen - kPatLen);
        for (u64 k = 0; k < kPatLen; ++k) pats.push_back(text[pos + k]);
    }
    const u32 gtext = m.add_global(Global{"text", kTextLen, 8, text});
    const u32 gpats =
        m.add_global(Global{"patterns", pats.size(), 8, pats});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p");
    const auto i = b.local("i");
    const auto k = b.local("k");
    const auto ok = b.local("ok");
    const auto hits = b.local("hits");

    b.store_local(hits, b.const_i64(0));
    for_range(b, p, 0, kPatterns, [&] {
        for_range(b, i, 0, kTextLen - kPatLen, [&] {
            b.store_local(ok, b.const_i64(1));
            for_range(b, k, 0, kPatLen, [&] {
                Value tv = b.load(
                    b.gep(b.global_addr(gtext),
                          b.add(b.load_local(i), b.load_local(k)), 1),
                    1, false);
                Value pv = b.load(
                    b.gep(b.global_addr(gpats),
                          b.add(b.mul(b.load_local(p), b.const_i64(kPatLen)),
                                b.load_local(k)),
                          1),
                    1, false);
                if_then(b, b.ne(tv, pv),
                        [&] { b.store_local(ok, b.const_i64(0)); });
            });
            if_then(b, b.ne(b.load_local(ok), b.const_i64(0)), [&] {
                b.store_local(
                    hits, b.add(b.load_local(hits),
                                b.add(b.load_local(i), b.const_i64(1))));
            });
        });
    });
    b.ret(b.load_local(hits));
    return m;
}

// ---- CRC32 -------------------------------------------------------------

mir::Module build_crc32()
{
    constexpr u64 kLen = 4096;
    mir::Module m;
    std::vector<u8> table;
    for (u32 n = 0; n < 256; ++n) {
        u32 c = n;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        append_u32(table, c);
    }
    const u32 gtab = m.add_global(Global{"crc_table", 1024, 8, table});
    const u32 gdata =
        m.add_global(Global{"data", kLen, 8, random_bytes(kLen, 0xC12C)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    const auto crc = b.local("crc");
    b.store_local(crc, b.const_i64(0xFFFFFFFFll));
    for_range(b, i, 0, kLen, [&] {
        Value byte = b.load(
            b.gep(b.global_addr(gdata), b.load_local(i), 1), 1, false);
        Value c = b.load_local(crc);
        Value idx = b.and_(b.xor_(c, byte), b.const_i64(0xFF));
        Value t =
            b.load(b.gep(b.global_addr(gtab), idx, 4), 4, false);
        b.store_local(crc, b.xor_(t, b.shr(c, b.const_i64(8))));
    });
    b.ret(b.and_(b.load_local(crc), b.const_i64(0xFFFFFFFFll)));
    return m;
}

// ---- bitcount ----------------------------------------------------------

mir::Module build_bitcount()
{
    constexpr u64 kIters = 4096;
    mir::Module m;
    std::vector<u8> nibble{0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4};
    const u32 gnib = m.add_global(Global{"nibble_table", 16, 8, nibble});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    const auto state = b.local("state");
    const auto total = b.local("total");
    const auto x = b.local("x");
    const auto n = b.local("n");

    const auto v64 = b.local("v64");
    b.store_local(state, b.const_i64(0x243F6A8885A308D3ll));
    b.store_local(total, b.const_i64(0));
    for_range(b, i, 0, kIters, [&] {
        Value v = xorshift_step(b, state);
        b.store_local(v64, v);
        // Method 1: nibble-table popcount of the low 32 bits.
        b.store_local(x, b.and_(v, b.const_i64(0xFFFFFFFFll)));
        b.store_local(n, b.const_i64(0));
        const auto j = b.local("j");
        for_range(b, j, 0, 8, [&] {
            Value xv = b.load_local(x);
            Value nib = b.and_(xv, b.const_i64(15));
            Value cnt = b.load(b.gep(b.global_addr(gnib), nib, 1), 1, false);
            b.store_local(n, b.add(b.load_local(n), cnt));
            b.store_local(x, b.shr(xv, b.const_i64(4)));
        });
        // Method 2: Kernighan on the high bits.
        b.store_local(x, b.shr(b.load_local(v64), b.const_i64(32)));
        while_loop(
            b, [&] { return b.ne(b.load_local(x), b.const_i64(0)); },
            [&] {
                Value xv = b.load_local(x);
                b.store_local(x, b.and_(xv, b.sub(xv, b.const_i64(1))));
                b.store_local(n, b.add(b.load_local(n), b.const_i64(1)));
            });
        b.store_local(total, b.add(b.load_local(total), b.load_local(n)));
    });
    b.ret(b.load_local(total));
    return m;
}

// ---- dijkstra ----------------------------------------------------------

mir::Module build_dijkstra()
{
    constexpr u64 kN = 24;
    constexpr i64 kInf = 1 << 28;
    mir::Module m;
    common::Xoshiro256 rng{0xD1115};
    std::vector<u8> weights;
    for (u64 r = 0; r < kN; ++r)
        for (u64 c = 0; c < kN; ++c)
            append_u32(weights,
                       r == c ? 0 : static_cast<u32>(1 + rng.below(9)));
    const u32 gw = m.add_global(Global{"weights", kN * kN * 4, 8, weights});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto dist = b.array("dist", kN * 8);
    const auto seen = b.array("seen", kN * 8);
    const auto i = b.local("i");
    const auto it = b.local("it");
    const auto best = b.local("best");
    const auto bestv = b.local("bestv");
    const auto u = b.local("u");
    const auto sum = b.local("sum");

    for_range(b, i, 0, kN, [&] {
        b.store(b.const_i64(kInf),
                b.gep(b.alloca_addr(dist), b.load_local(i), 8));
        b.store(b.const_i64(0),
                b.gep(b.alloca_addr(seen), b.load_local(i), 8));
    });
    b.store(b.const_i64(0), b.alloca_addr(dist));

    for_range(b, it, 0, kN, [&] {
        // pick unvisited min
        b.store_local(best, b.const_i64(-1));
        b.store_local(bestv, b.const_i64(kInf + 1));
        for_range(b, i, 0, kN, [&] {
            Value iv = b.load_local(i);
            Value s = b.load(b.gep(b.alloca_addr(seen), iv, 8));
            if_then(b, b.eq(s, b.const_i64(0)), [&] {
                Value d =
                    b.load(b.gep(b.alloca_addr(dist), b.load_local(i), 8));
                if_then(b, b.lt(d, b.load_local(bestv)), [&] {
                    b.store_local(bestv,
                                  b.load(b.gep(b.alloca_addr(dist),
                                               b.load_local(i), 8)));
                    b.store_local(best, b.load_local(i));
                });
            });
        });
        if_then(b, b.ne(b.load_local(best), b.const_i64(-1)), [&] {
            b.store_local(u, b.load_local(best));
            b.store(b.const_i64(1),
                    b.gep(b.alloca_addr(seen), b.load_local(u), 8));
            for_range(b, i, 0, kN, [&] {
                Value iv = b.load_local(i);
                Value uv = b.load_local(u);
                Value w = b.load(
                    b.gep(b.global_addr(gw),
                          b.add(b.mul(uv, b.const_i64(kN)), iv), 4),
                    4, false);
                Value du = b.load(b.gep(b.alloca_addr(dist), uv, 8));
                Value cand = b.add(du, w);
                Value di =
                    b.load(b.gep(b.alloca_addr(dist), b.load_local(i), 8));
                if_then(b, b.lt(cand, di), [&] {
                    Value uv2 = b.load_local(u);
                    Value w2 = b.load(
                        b.gep(b.global_addr(gw),
                              b.add(b.mul(uv2, b.const_i64(kN)),
                                    b.load_local(i)),
                              4),
                        4, false);
                    Value du2 =
                        b.load(b.gep(b.alloca_addr(dist), uv2, 8));
                    b.store(b.add(du2, w2),
                            b.gep(b.alloca_addr(dist), b.load_local(i), 8));
                });
            });
        });
    });

    b.store_local(sum, b.const_i64(0));
    for_range(b, i, 0, kN, [&] {
        b.store_local(sum,
                      b.add(b.load_local(sum),
                            b.load(b.gep(b.alloca_addr(dist),
                                         b.load_local(i), 8))));
    });
    b.ret(b.load_local(sum));
    return m;
}

// ---- sha (SHA-256-style compression rounds) ----------------------------

mir::Module build_sha()
{
    constexpr u64 kBlocks = 8;
    mir::Module m;
    // Round constants (first 16 of SHA-256 K) and message blocks.
    static constexpr u32 kK[16] = {
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b,
        0x59f111f1, 0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01,
        0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7,
        0xc19bf174};
    std::vector<u8> kbytes;
    for (const u32 k : kK) append_u32(kbytes, k);
    const u32 gk = m.add_global(Global{"sha_k", 64, 8, kbytes});
    const u32 gmsg = m.add_global(
        Global{"msg", kBlocks * 64, 8, random_bytes(kBlocks * 64, 0x5AA5)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto state = b.array("state", 8 * 8);
    const auto w = b.array("w", 16 * 8);
    const auto blk = b.local("blk");
    const auto t = b.local("t");
    const auto i = b.local("i");
    const auto mask = b.local("mask");

    b.store_local(mask, b.const_i64(0xFFFFFFFFll));
    static constexpr u64 kInit[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                     0xa54ff53a, 0x510e527f, 0x9b05688c,
                                     0x1f83d9ab, 0x5be0cd19};
    for (u64 s = 0; s < 8; ++s) {
        b.store(b.const_i64(static_cast<i64>(kInit[s])),
                b.gep_const(b.alloca_addr(state), static_cast<i64>(8 * s)));
    }

    const auto rotr = [&](Value x, i64 r) {
        Value lo = b.shr(x, b.const_i64(r));
        Value hi = b.and_(b.shl(x, b.const_i64(32 - r)), b.load_local(mask));
        return b.or_(lo, hi);
    };

    for_range(b, blk, 0, kBlocks, [&] {
        // Load the 16 message words.
        for_range(b, i, 0, 16, [&] {
            Value iv = b.load_local(i);
            Value off = b.add(b.mul(b.load_local(blk), b.const_i64(64)),
                              b.mul(iv, b.const_i64(4)));
            Value word =
                b.load(b.gep(b.global_addr(gmsg), off, 1), 4, false);
            b.store(word, b.gep(b.alloca_addr(w), b.load_local(i), 8));
        });
        // 32 rounds over the schedule (wrapping the 16-entry window).
        for_range(b, t, 0, 32, [&] {
            Value tv = b.load_local(t);
            Value wi = b.load(
                b.gep(b.alloca_addr(w), b.and_(tv, b.const_i64(15)), 8));
            Value ki = b.load(
                b.gep(b.global_addr(gk), b.and_(tv, b.const_i64(15)), 4), 4,
                false);
            Value e = b.load(b.gep_const(b.alloca_addr(state), 32));
            Value f = b.load(b.gep_const(b.alloca_addr(state), 40));
            Value g = b.load(b.gep_const(b.alloca_addr(state), 48));
            Value h = b.load(b.gep_const(b.alloca_addr(state), 56));
            Value s1 = b.xor_(rotr(e, 6), b.xor_(rotr(e, 11), rotr(e, 25)));
            Value ch = b.xor_(b.and_(e, f),
                              b.and_(b.xor_(e, b.load_local(mask)), g));
            Value t1 = b.and_(
                b.add(b.add(b.add(h, s1), b.add(ch, ki)), wi),
                b.load_local(mask));
            Value a = b.load(b.alloca_addr(state));
            Value bb = b.load(b.gep_const(b.alloca_addr(state), 8));
            Value c = b.load(b.gep_const(b.alloca_addr(state), 16));
            Value s0 = b.xor_(rotr(a, 2), b.xor_(rotr(a, 13), rotr(a, 22)));
            Value maj = b.xor_(b.and_(a, bb),
                               b.xor_(b.and_(a, c), b.and_(bb, c)));
            Value t2 = b.and_(b.add(s0, maj), b.load_local(mask));
            // Shift the working state down.
            b.store(g, b.gep_const(b.alloca_addr(state), 56));
            b.store(f, b.gep_const(b.alloca_addr(state), 48));
            b.store(e, b.gep_const(b.alloca_addr(state), 40));
            Value d = b.load(b.gep_const(b.alloca_addr(state), 24));
            b.store(b.and_(b.add(d, t1), b.load_local(mask)),
                    b.gep_const(b.alloca_addr(state), 32));
            b.store(c, b.gep_const(b.alloca_addr(state), 24));
            b.store(bb, b.gep_const(b.alloca_addr(state), 16));
            b.store(a, b.gep_const(b.alloca_addr(state), 8));
            b.store(b.and_(b.add(t1, t2), b.load_local(mask)),
                    b.alloca_addr(state));
            // Schedule update (simplified sigma mix).
            Value wnext = b.and_(
                b.add(wi, b.xor_(rotr(wi, 7), b.shr(wi, b.const_i64(3)))),
                b.load_local(mask));
            b.store(wnext, b.gep(b.alloca_addr(w),
                                 b.and_(b.load_local(t), b.const_i64(15)),
                                 8));
        });
    });

    const auto digest = b.local("digest");
    b.store_local(digest, b.const_i64(0));
    for_range(b, i, 0, 8, [&] {
        Value s =
            b.load(b.gep(b.alloca_addr(state), b.load_local(i), 8));
        Value d = b.load_local(digest);
        b.store_local(digest,
                      b.and_(b.add(b.mul(d, b.const_i64(31)), s),
                             b.const_i64(0x7FFFFFFFFFFFll)));
    });
    b.ret(b.load_local(digest));
    return m;
}

// ---- basicmath ("math") -------------------------------------------------

mir::Module build_math()
{
    constexpr u64 kIters = 1200;
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    const auto sum = b.local("sum");
    const auto x = b.local("x");
    const auto r = b.local("r");
    const auto aa = b.local("aa");
    const auto bb = b.local("bb");

    b.store_local(sum, b.const_i64(0));
    for_range(b, i, 1, kIters, [&] {
        // Integer square root by Newton iteration.
        Value iv = b.load_local(i);
        b.store_local(x, b.mul(iv, b.add(iv, b.const_i64(17))));
        b.store_local(r, b.load_local(x));
        const auto it = b.local("it");
        for_range(b, it, 0, 12, [&] {
            Value rv = b.load_local(r);
            if_then(b, b.ne(rv, b.const_i64(0)), [&] {
                Value rv2 = b.load_local(r);
                Value q = b.divs(b.load_local(x), rv2);
                b.store_local(r, b.shr(b.add(rv2, q), b.const_i64(1)));
            });
        });
        b.store_local(sum, b.add(b.load_local(sum), b.load_local(r)));
        // gcd(i, i*7+3)
        b.store_local(aa, b.load_local(i));
        b.store_local(bb, b.add(b.mul(b.load_local(i), b.const_i64(7)),
                                b.const_i64(3)));
        while_loop(
            b, [&] { return b.ne(b.load_local(bb), b.const_i64(0)); },
            [&] {
                Value av = b.load_local(aa);
                Value bv = b.load_local(bb);
                b.store_local(aa, bv);
                b.store_local(bb, b.rems(av, bv));
            });
        b.store_local(sum, b.add(b.load_local(sum), b.load_local(aa)));
    });
    b.ret(b.load_local(sum));
    return m;
}

// ---- FFT (fixed-point radix-2, N = 64) ----------------------------------

mir::Module build_fft()
{
    constexpr u64 kN = 64;
    constexpr u64 kRounds = 6; // log2(kN)
    mir::Module m;
    // Q14 twiddle tables, host-precomputed.
    std::vector<u8> cos_t, sin_t;
    for (u64 k = 0; k < kN / 2; ++k) {
        const double ang = -2.0 * 3.14159265358979323846 *
                           static_cast<double>(k) / static_cast<double>(kN);
        append_u64(cos_t, static_cast<u64>(
                              static_cast<i64>(16384.0 * std::cos(ang))));
        append_u64(sin_t, static_cast<u64>(
                              static_cast<i64>(16384.0 * std::sin(ang))));
    }
    const u32 gcos = m.add_global(Global{"cos_t", kN / 2 * 8, 8, cos_t});
    const u32 gsin = m.add_global(Global{"sin_t", kN / 2 * 8, 8, sin_t});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto re = b.array("re", kN * 8);
    const auto im = b.array("im", kN * 8);
    const auto i = b.local("i");
    const auto s = b.local("s");
    const auto half = b.local("half");
    const auto step = b.local("step");
    const auto seed = b.local("seed");

    // Input: deterministic pseudo-signal.
    b.store_local(seed, b.const_i64(0x9E3779B97F4AULL & 0x7FFFFFFF));
    for_range(b, i, 0, kN, [&] {
        Value v = xorshift_step(b, seed);
        b.store(b.sub(b.and_(v, b.const_i64(2047)), b.const_i64(1024)),
                b.gep(b.alloca_addr(re), b.load_local(i), 8));
        b.store(b.const_i64(0),
                b.gep(b.alloca_addr(im), b.load_local(i), 8));
    });

    // Bit-reversal permutation (precomputed on host into a table).
    std::vector<u8> rev_t;
    for (u64 n = 0; n < kN; ++n) {
        u64 r = 0;
        for (u64 bit = 0; bit < kRounds; ++bit)
            if (n & (1ull << bit)) r |= 1ull << (kRounds - 1 - bit);
        append_u64(rev_t, r);
    }
    const u32 grev = m.add_global(Global{"rev_t", kN * 8, 8, rev_t});
    for_range(b, i, 0, kN, [&] {
        Value iv = b.load_local(i);
        Value r = b.load(b.gep(b.global_addr(grev), iv, 8));
        if_then(b, b.lt(iv, r), [&] {
            Value iv2 = b.load_local(i);
            Value r2 = b.load(b.gep(b.global_addr(grev), iv2, 8));
            Value pa = b.gep(b.alloca_addr(re), iv2, 8);
            Value pb = b.gep(b.alloca_addr(re), r2, 8);
            Value tmp = b.load(pa);
            b.store(b.load(pb), pa);
            b.store(tmp, pb);
        });
    });

    // Butterflies.
    for_range(b, s, 1, kRounds + 1, [&] {
        b.store_local(half,
                      b.shl(b.const_i64(1),
                            b.sub(b.load_local(s), b.const_i64(1))));
        b.store_local(step, b.shl(b.const_i64(1), b.load_local(s)));
        const auto base = b.local("base");
        b.store_local(base, b.const_i64(0));
        while_loop(
            b,
            [&] {
                return b.lt(b.load_local(base), b.const_i64(kN));
            },
            [&] {
                const auto jj = b.local("jj");
                b.store_local(jj, b.const_i64(0));
                while_loop(
                    b,
                    [&] {
                        return b.lt(b.load_local(jj), b.load_local(half));
                    },
                    [&] {
                        Value jv = b.load_local(jj);
                        Value tw = b.mul(
                            jv, b.divs(b.const_i64(kN / 2),
                                       b.load_local(half)));
                        Value wr =
                            b.load(b.gep(b.global_addr(gcos), tw, 8));
                        Value wi =
                            b.load(b.gep(b.global_addr(gsin), tw, 8));
                        Value lo =
                            b.add(b.load_local(base), jv);
                        Value hi = b.add(lo, b.load_local(half));
                        Value xr = b.load(b.gep(b.alloca_addr(re), hi, 8));
                        Value xi = b.load(b.gep(b.alloca_addr(im), hi, 8));
                        Value tr = b.sra(
                            b.sub(b.mul(xr, wr), b.mul(xi, wi)),
                            b.const_i64(14));
                        Value ti = b.sra(
                            b.add(b.mul(xr, wi), b.mul(xi, wr)),
                            b.const_i64(14));
                        Value yr = b.load(b.gep(b.alloca_addr(re), lo, 8));
                        Value yi = b.load(b.gep(b.alloca_addr(im), lo, 8));
                        b.store(b.add(yr, tr),
                                b.gep(b.alloca_addr(re), lo, 8));
                        b.store(b.add(yi, ti),
                                b.gep(b.alloca_addr(im), lo, 8));
                        b.store(b.sub(yr, tr),
                                b.gep(b.alloca_addr(re), hi, 8));
                        b.store(b.sub(yi, ti),
                                b.gep(b.alloca_addr(im), hi, 8));
                        b.store_local(jj,
                                      b.add(b.load_local(jj),
                                            b.const_i64(1)));
                    });
                b.store_local(base, b.add(b.load_local(base),
                                          b.load_local(step)));
            });
    });

    const auto sum = b.local("sum");
    b.store_local(sum, b.const_i64(0));
    for_range(b, i, 0, kN, [&] {
        Value r = b.load(b.gep(b.alloca_addr(re), b.load_local(i), 8));
        Value v = b.load(b.gep(b.alloca_addr(im), b.load_local(i), 8));
        Value rabs = b.xor_(r, b.sra(r, b.const_i64(63)));
        Value vabs = b.xor_(v, b.sra(v, b.const_i64(63)));
        b.store_local(sum, b.add(b.load_local(sum), b.add(rabs, vabs)));
    });
    b.ret(b.and_(b.load_local(sum), b.const_i64(0xFFFFFFFFll)));
    return m;
}

// ---- adpcm --------------------------------------------------------------

mir::Module build_adpcm()
{
    constexpr u64 kSamples = 2048;
    mir::Module m;
    static constexpr int kStep[16] = {7,  8,  9,  10, 11, 12,  13,  14,
                                      16, 17, 19, 21, 23, 25,  28,  31};
    std::vector<u8> steps;
    for (const int s : kStep) append_u32(steps, static_cast<u32>(s));
    const u32 gstep = m.add_global(Global{"step_table", 64, 8, steps});

    // Pseudo speech samples (16-bit).
    common::Xoshiro256 rng{0xADCC};
    std::vector<u8> samples;
    int acc = 0;
    for (u64 s = 0; s < kSamples; ++s) {
        acc += static_cast<int>(rng.below(257)) - 128;
        const auto v = static_cast<std::int16_t>(acc);
        samples.push_back(static_cast<u8>(v & 0xFF));
        samples.push_back(static_cast<u8>((v >> 8) & 0xFF));
    }
    const u32 gsamp =
        m.add_global(Global{"samples", kSamples * 2, 8, samples});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    const auto pred = b.local("pred");
    const auto index = b.local("index");
    const auto out = b.local("out");

    b.store_local(pred, b.const_i64(0));
    b.store_local(index, b.const_i64(0));
    b.store_local(out, b.const_i64(0));
    for_range(b, i, 0, kSamples, [&] {
        Value sample = b.load(
            b.gep(b.global_addr(gsamp), b.load_local(i), 2), 2, true);
        Value diff = b.sub(sample, b.load_local(pred));
        Value sign = b.lt(diff, b.const_i64(0));
        Value mag = b.xor_(diff, b.sra(diff, b.const_i64(63)));
        Value step = b.load(
            b.gep(b.global_addr(gstep), b.load_local(index), 4), 4, true);
        Value code = b.divs(b.mul(mag, b.const_i64(4)), step);
        // clamp code to 0..7
        Value code3 = b.add(b.mul(b.lt(code, b.const_i64(7)), code),
                            b.mul(b.le(b.const_i64(7), code),
                                  b.const_i64(7)));
        Value delta = b.divs(
            b.mul(b.add(b.mul(code3, b.const_i64(2)), b.const_i64(1)),
                  step),
            b.const_i64(8));
        // pred += sign ? -delta : delta (branchless).
        Value sgnmask = b.sub(b.const_i64(0), sign);
        Value sdelta = b.sub(b.xor_(delta, sgnmask), sgnmask);
        b.store_local(pred, b.add(b.load_local(pred), sdelta));
        b.store_local(out,
                      b.add(b.load_local(out),
                            b.add(code3, b.mul(sign, b.const_i64(8)))));
        // index += code > 3 ? 2 : -1, clamped to [0, 15].
        Value up = b.lt(b.const_i64(3), code3);
        Value bump = b.sub(b.mul(up, b.const_i64(3)), b.const_i64(1));
        const auto nidx = b.local("nidx");
        b.store_local(nidx, b.add(b.load_local(index), bump));
        if_else(
            b, b.lt(b.load_local(nidx), b.const_i64(0)),
            [&] { b.store_local(index, b.const_i64(0)); },
            [&] {
                if_else(
                    b,
                    b.lt(b.const_i64(15), b.load_local(nidx)),
                    [&] { b.store_local(index, b.const_i64(15)); },
                    [&] { b.store_local(index, b.load_local(nidx)); });
            });
    });
    b.ret(b.load_local(out));
    return m;
}

// ---- susan (image smoothing) ---------------------------------------------

mir::Module build_susan()
{
    constexpr u64 kW = 32, kH = 32;
    mir::Module m;
    const u32 gimg = m.add_global(
        Global{"image", kW * kH, 8, random_bytes(kW * kH, 0x5005)});

    auto& fn = m.add_function("main", {}, Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto out = b.array("out", kW * kH * 8);
    const auto y = b.local("y");
    const auto x = b.local("x");
    const auto dy = b.local("dy");
    const auto dx = b.local("dx");
    const auto acc = b.local("acc");
    const auto cnt = b.local("cnt");
    const auto sum = b.local("sum");

    for_range(b, y, 1, kH - 1, [&] {
        for_range(b, x, 1, kW - 1, [&] {
            b.store_local(acc, b.const_i64(0));
            b.store_local(cnt, b.const_i64(0));
            Value centre = b.load(
                b.gep(b.global_addr(gimg),
                      b.add(b.mul(b.load_local(y), b.const_i64(kW)),
                            b.load_local(x)),
                      1),
                1, false);
            const auto c = b.local("c");
            b.store_local(c, centre);
            for_range(b, dy, -1, 2, [&] {
                for_range(b, dx, -1, 2, [&] {
                    Value yy = b.add(b.load_local(y), b.load_local(dy));
                    Value xx = b.add(b.load_local(x), b.load_local(dx));
                    Value pix = b.load(
                        b.gep(b.global_addr(gimg),
                              b.add(b.mul(yy, b.const_i64(kW)), xx), 1),
                        1, false);
                    Value d = b.sub(pix, b.load_local(c));
                    Value ad = b.xor_(d, b.sra(d, b.const_i64(63)));
                    if_then(b, b.lt(ad, b.const_i64(20)), [&] {
                        Value yy2 =
                            b.add(b.load_local(y), b.load_local(dy));
                        Value xx2 =
                            b.add(b.load_local(x), b.load_local(dx));
                        Value pix2 = b.load(
                            b.gep(b.global_addr(gimg),
                                  b.add(b.mul(yy2, b.const_i64(kW)), xx2),
                                  1),
                            1, false);
                        b.store_local(acc,
                                      b.add(b.load_local(acc), pix2));
                        b.store_local(cnt, b.add(b.load_local(cnt),
                                                 b.const_i64(1)));
                    });
                });
            });
            Value idx = b.add(b.mul(b.load_local(y), b.const_i64(kW)),
                              b.load_local(x));
            b.store(b.divs(b.load_local(acc), b.load_local(cnt)),
                    b.gep(b.alloca_addr(out), idx, 8));
        });
    });

    b.store_local(sum, b.const_i64(0));
    const auto i = b.local("i");
    for_range(b, i, 0, kW * kH, [&] {
        b.store_local(sum,
                      b.add(b.load_local(sum),
                            b.load(b.gep(b.alloca_addr(out),
                                         b.load_local(i), 8))));
    });
    b.ret(b.load_local(sum));
    return m;
}

} // namespace hwst::workloads
