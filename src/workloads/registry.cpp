#include "workloads/workload.hpp"

#include "common/error.hpp"
#include "workloads/kernels.hpp"

namespace hwst::workloads {

// Expected checksums are pinned from the uninstrumented baseline run
// (tests assert that every instrumentation scheme reproduces them).
const std::vector<Workload>& all_workloads()
{
    static const std::vector<Workload> table = {
        // MiBench (paper Fig. 4 order)
        {"stringsearch", Suite::MiBench, build_stringsearch, 3676ll},
        {"crc32", Suite::MiBench, build_crc32, 2170106659ll},
        {"bitcounts", Suite::MiBench, build_bitcount, 130716ll},
        {"dijkstra", Suite::MiBench, build_dijkstra, 96ll},
        {"sha", Suite::MiBench, build_sha, 9633830651011ll},
        {"math", Suite::MiBench, build_math, 731202ll},
        {"fft", Suite::MiBench, build_fft, 327452ll},
        {"adpcm", Suite::MiBench, build_adpcm, 18863ll},
        {"susan", Suite::MiBench, build_susan, 111894ll},
        // Olden
        {"tsp", Suite::Olden, build_tsp, 2245379ll},
        {"em3d", Suite::Olden, build_em3d, 1533875785ll},
        {"health", Suite::Olden, build_health, 10583ll},
        {"mst", Suite::Olden, build_mst, 112ll},
        {"perimeter", Suite::Olden, build_perimeter, 46976ll},
        {"bisort", Suite::Olden, build_bisort, 267542673ll},
        {"treeadd", Suite::Olden, build_treeadd, 2008ll},
        // SPEC
        {"milc", Suite::Spec, build_milc, 2676313667ll},
        {"lbm", Suite::Spec, build_lbm, 475803ll},
        {"sphinx3", Suite::Spec, build_sphinx3, 13868ll},
        {"sjeng", Suite::Spec, build_sjeng, 139680ll},
        {"gobmk", Suite::Spec, build_gobmk, 517ll},
        {"bzip2", Suite::Spec, build_bzip2, 109327ll},
        {"hmmer", Suite::Spec, build_hmmer, 153032ll},
    };
    return table;
}

const Workload& workload(const std::string& name)
{
    for (const Workload& w : all_workloads())
        if (w.name == name) return w;
    throw common::ToolchainError{"unknown workload: " + name};
}

std::vector<const Workload*> spec_workloads()
{
    std::vector<const Workload*> out;
    for (const Workload& w : all_workloads())
        if (w.suite == Suite::Spec) out.push_back(&w);
    return out;
}

} // namespace hwst::workloads
