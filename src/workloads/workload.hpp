// Workload registry: the benchmark programs of the paper's evaluation
// (MiBench / Olden / SPEC2006 stand-ins, DESIGN.md §2). Every workload
// builds a self-contained mir::Module whose main() returns a checksum;
// `expected` lets the tests assert that instrumentation never changes
// program semantics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mir/ir.hpp"

namespace hwst::workloads {

using common::i64;

enum class Suite { MiBench, Olden, Spec };

constexpr std::string_view suite_name(Suite s)
{
    switch (s) {
    case Suite::MiBench: return "MiBench";
    case Suite::Olden: return "Olden";
    case Suite::Spec: return "SPEC";
    }
    return "?";
}

struct Workload {
    std::string name;
    Suite suite;
    std::function<mir::Module()> build;
    i64 expected; ///< main()'s return value (semantic checksum)
};

/// All workloads in paper order (MiBench 9, Olden 7, SPEC 7).
const std::vector<Workload>& all_workloads();

/// Lookup by name; throws common::ToolchainError if unknown.
const Workload& workload(const std::string& name);

/// The SPEC subset used by Fig. 5.
std::vector<const Workload*> spec_workloads();

} // namespace hwst::workloads
