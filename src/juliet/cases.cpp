#include "juliet/cases.hpp"

#include "common/error.hpp"
#include "mir/builder.hpp"
#include "workloads/dsl.hpp"

namespace hwst::juliet {

using mir::FunctionBuilder;
using mir::Global;
using mir::Ty;
using mir::Value;
using workloads::for_range;
using workloads::if_then;

const std::vector<CweCount>& cwe_counts()
{
    // Spatial 7074 + temporal 1292 = 8366 (paper §4).
    static const std::vector<CweCount> counts = {
        {Cwe::C121, 2508}, {Cwe::C122, 1556}, {Cwe::C124, 1034},
        {Cwe::C126, 930},  {Cwe::C127, 1046}, {Cwe::C415, 190},
        {Cwe::C416, 140},  {Cwe::C476, 398},  {Cwe::C690, 416},
        {Cwe::C761, 148},
    };
    return counts;
}

std::string CaseSpec::id() const
{
    std::string s{cwe_name(cwe)};
    s += "_" + std::to_string(index);
    s += bad ? "_bad" : "_good";
    return s;
}

namespace {

/// Deterministic per-index hash for dimension assignment.
u32 mix(u32 index) { return index * 2654435761u; }

bool far_contiguous(u32 index) { return (index / 2) % 5 < 3; } // 60 %

} // namespace

CaseSpec make_spec(Cwe cwe, u32 index, bool bad)
{
    CaseSpec s;
    s.cwe = cwe;
    s.index = index;
    s.bad = bad;

    const u32 h = mix(index);
    const u32 d = h % 100;
    s.distance = d < 28 ? Distance::Near
                        : (d < 38 ? Distance::Mid : Distance::Far);
    s.access = index % 2 == 0 ? AccessKind::Direct : AccessKind::Loop;

    // Provenance: 41 % of spatial cases and 30 % of use-after-free
    // cases reach the sink through an int<->ptr laundered pointer.
    const u32 p = (h / 100) % 100;
    if (is_spatial(cwe)) {
        s.provenance = p < 41 ? Provenance::Laundered : Provenance::Tracked;
    } else if (cwe == Cwe::C416) {
        s.provenance = p < 30 ? Provenance::Laundered : Provenance::Tracked;
    } else {
        s.provenance = Provenance::Tracked;
    }

    // Container.
    switch (cwe) {
    case Cwe::C121: s.container = Container::Stack; break;
    case Cwe::C122: s.container = Container::Heap; break;
    case Cwe::C124: case Cwe::C126: case Cwe::C127:
        s.container = index % 3 == 0 ? Container::Heap
                      : (index % 3 == 1 ? Container::Stack
                                        : Container::Global);
        break;
    default: s.container = Container::Heap; break;
    }

    // Sizes: stack/global sizes are 8-byte multiples; heap overflow
    // cases mix odd sizes so bound-compression slack exists (§5 item 1).
    s.buf_size = cwe == Cwe::C122 ? 25 + (index % 6) * 9
                                  : 24 + (index % 6) * 8;

    // Overflow distance in bytes.
    switch (s.distance) {
    case Distance::Near: s.over_bytes = 1 + index % 7; break;
    case Distance::Mid: s.over_bytes = 9 + index % 8; break;
    case Distance::Far: s.over_bytes = 65 + (index % 8) * 13; break;
    }

    // CWE122 sub-granule subset: a quarter of the near+tracked heap
    // overflow cases stay inside the 8-byte compression granule — the
    // HWST128-miss / SBCETS-catch population behind the paper's −0.86 %.
    if (cwe == Cwe::C122 && s.distance == Distance::Near &&
        s.provenance == Provenance::Tracked && index % 4 == 0) {
        s.buf_size = 25 + (index % 3) * 16; // size % 8 == 1 -> slack 7
        s.over_bytes = 1 + index % 6;       // <= 7: inside the granule
    } else if (cwe == Cwe::C122 && s.distance == Distance::Near) {
        // Otherwise guarantee the overflow escapes the granule.
        const u64 slack = (8 - s.buf_size % 8) % 8;
        if (s.over_bytes <= slack) s.over_bytes = slack + 1;
    }
    return s;
}

std::vector<CaseSpec> all_bad_cases()
{
    std::vector<CaseSpec> out;
    for (const auto& [cwe, count] : cwe_counts())
        for (u32 i = 0; i < count; ++i) out.push_back(make_spec(cwe, i, true));
    return out;
}

std::vector<CaseSpec> good_cases(u32 stride)
{
    std::vector<CaseSpec> out;
    for (const auto& [cwe, count] : cwe_counts())
        for (u32 i = 0; i < count; i += stride)
            out.push_back(make_spec(cwe, i, false));
    return out;
}

namespace {

/// Emit: p (ptr local) = address of a fresh buffer per the container.
/// Returns the local index holding the (possibly laundered) pointer.
u32 emit_buffer(mir::Module& m, FunctionBuilder& b, const CaseSpec& spec)
{
    const auto p = b.local("p", Ty::Ptr);
    Value addr{};
    switch (spec.container) {
    case Container::Stack: {
        const u32 buf = b.array("buf", spec.buf_size);
        addr = b.alloca_addr(buf);
        break;
    }
    case Container::Heap:
        addr = b.malloc_(b.const_i64(static_cast<i64>(spec.buf_size)));
        break;
    case Container::Global: {
        // A padding global below the target absorbs far underflows
        // silently (mapped memory), like neighbouring .data objects.
        m.add_global(Global{"pad_below", 256, 8, {}});
        const u32 g = m.add_global(Global{"gbuf", spec.buf_size, 8, {}});
        m.add_global(Global{"pad_above", 256, 8, {}});
        addr = b.global_addr(g);
        break;
    }
    }
    b.store_local(p, addr);

    if (spec.provenance == Provenance::Laundered) {
        // The Juliet data-flow variants that defeat pointer tracking.
        const auto pi = b.local("pi");
        b.store_local(pi, b.ptr_to_int(b.load_local(p)));
        b.store_local(p, b.int_to_ptr(b.load_local(pi)));
    }
    return p;
}

/// In-bounds warm-up work so every case executes genuine accesses.
void emit_warmup(FunctionBuilder& b, u32 p, const CaseSpec& spec, u32 acc,
                 u32 i)
{
    for_range(b, i, 0, static_cast<i64>(spec.buf_size / 8), [&] {
        Value slot = b.gep(b.load_local(p), b.load_local(i), 8);
        b.store(b.add(b.load_local(i), b.const_i64(3)), slot);
    });
    for_range(b, i, 0, static_cast<i64>(spec.buf_size / 8), [&] {
        Value slot = b.gep(b.load_local(p), b.load_local(i), 8);
        b.store_local(acc, b.add(b.load_local(acc), b.load(slot)));
    });
}

mir::Module build_spatial(const CaseSpec& spec)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto acc = b.local("acc");
    b.store_local(acc, b.const_i64(0));
    // Loop counters are allocated *below* the buffer so a contiguous
    // overflow sweeps toward the canary / caller frame, not into its
    // own induction variable (which would livelock like a self-
    // corrupting Juliet case under a harness without timeouts).
    const u32 k = b.local("k");
    const u32 wi = b.local("wi");
    const u32 p = emit_buffer(m, b, spec);
    emit_warmup(b, p, spec, acc, wi);

    const bool is_write = spec.cwe == Cwe::C121 || spec.cwe == Cwe::C122 ||
                          spec.cwe == Cwe::C124;
    const bool is_under = spec.cwe == Cwe::C124 || spec.cwe == Cwe::C127;
    const i64 size = static_cast<i64>(spec.buf_size);
    const i64 over = static_cast<i64>(spec.over_bytes);

    const auto access_at = [&](Value off) {
        Value addr = b.gep(b.load_local(p), off, 1);
        if (is_write) {
            b.store(b.const_i64(0x41), addr, 1);
        } else {
            Value v = b.load(addr, 1, false);
            b.store_local(acc, b.add(b.load_local(acc), v));
        }
    };

    if (spec.access == AccessKind::Direct) {
        // One access at the first (or deepest) out-of-bounds byte.
        i64 off;
        if (spec.bad) {
            off = is_under ? -over : size + over - 1;
        } else {
            off = is_under ? 0 : size - 1;
        }
        access_at(b.const_i64(off));
    } else if (is_under) {
        // Sweep below the buffer start.
        const i64 lo = spec.bad ? -over : 0;
        for_range(b, k, lo, 4, [&] { access_at(b.load_local(k)); });
    } else if (spec.distance == Distance::Far && !far_contiguous(spec.index)) {
        // Index-miscomputation sweep: jumps past redzones and canaries.
        const i64 start = spec.bad ? size + over - 1 : 0;
        for_range(b, k, 0, 3, [&] {
            Value off = b.add(b.mul(b.load_local(k), b.const_i64(8)),
                              b.const_i64(start));
            access_at(off);
        });
    } else {
        // Contiguous sweep from inside the buffer past its end.
        const i64 hi = spec.bad ? size + over : size;
        for_range(b, k, 0, hi, [&] { access_at(b.load_local(k)); });
    }

    if (spec.container == Container::Heap) b.free_(b.load_local(p));
    b.ret(b.load_local(acc));
    return m;
}

mir::Module build_temporal(const CaseSpec& spec)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto acc = b.local("acc");
    b.store_local(acc, b.const_i64(0));
    const i64 size = static_cast<i64>(spec.buf_size);

    switch (spec.cwe) {
    case Cwe::C415: { // double free
        const auto p = b.local("p", Ty::Ptr);
        b.store_local(p, b.malloc_(b.const_i64(size)));
        b.store(b.const_i64(7), b.load_local(p));
        b.store_local(acc, b.load(b.load_local(p)));
        b.free_(b.load_local(p));
        if (spec.bad) b.free_(b.load_local(p));
        break;
    }
    case Cwe::C416: { // use after free
        const auto p = b.local("p", Ty::Ptr);
        b.store_local(p, b.malloc_(b.const_i64(size)));
        if (spec.provenance == Provenance::Laundered) {
            const auto pi = b.local("pi");
            b.store_local(pi, b.ptr_to_int(b.load_local(p)));
            b.store_local(p, b.int_to_ptr(b.load_local(pi)));
        }
        b.store(b.const_i64(11), b.load_local(p));
        if (spec.bad) {
            b.free_(b.load_local(p));
            b.store_local(acc, b.load(b.load_local(p))); // dangling read
        } else {
            b.store_local(acc, b.load(b.load_local(p)));
            b.free_(b.load_local(p));
        }
        break;
    }
    case Cwe::C476: { // direct null dereference
        const auto p = b.local("p", Ty::Ptr);
        if (spec.bad) {
            b.store_local(p, b.null_ptr());
        } else {
            b.store_local(p, b.malloc_(b.const_i64(size)));
        }
        Value addr = b.gep_const(b.load_local(p),
                                 static_cast<i64>(spec.index % 2) * 8);
        b.store(b.const_i64(13), addr);
        b.store_local(acc, b.load(addr));
        if (!spec.bad) b.free_(b.load_local(p));
        break;
    }
    case Cwe::C690: { // unchecked allocation result
        const auto p = b.local("p", Ty::Ptr);
        const i64 request =
            spec.bad ? (i64{1} << 40) + static_cast<i64>(spec.index) : size;
        b.store_local(p, b.malloc_(b.const_i64(request)));
        // The dereference lands in mapped memory (the data segment) so
        // a null base produces no fault — only key-0 temporal metadata
        // flags it (DESIGN.md §5; the paper's ASAN-misses-CWE690 row).
        const i64 off = 0x100000 + static_cast<i64>(spec.index % 64) * 8;
        Value addr = spec.bad
                         ? b.gep_const(b.load_local(p), off)
                         : b.gep_const(b.load_local(p), 0);
        b.store_local(acc, b.load(addr, 8, true));
        if (!spec.bad) b.free_(b.load_local(p));
        break;
    }
    case Cwe::C761: { // free of pointer not at start
        const auto p = b.local("p", Ty::Ptr);
        b.store_local(p, b.malloc_(b.const_i64(size)));
        b.store(b.const_i64(17), b.load_local(p));
        b.store_local(acc, b.load(b.load_local(p)));
        const i64 off = spec.bad ? 8 * (1 + static_cast<i64>(spec.index % 3))
                                 : 0;
        b.free_(b.gep_const(b.load_local(p), off));
        break;
    }
    default:
        throw common::ToolchainError{"build_temporal: spatial CWE"};
    }

    b.ret(b.load_local(acc));
    return m;
}

} // namespace

mir::Module build_case(const CaseSpec& spec)
{
    return is_spatial(spec.cwe) ? build_spatial(spec) : build_temporal(spec);
}

mir::Module build_interproc_case(bool bad)
{
    mir::Module m;
    {
        // sink(p, idx): p[idx] = 0x41 — the callee has no idea where p
        // came from; its metadata arrives via the call protocol.
        auto& fn = m.add_function("sink", {Ty::Ptr, Ty::I64}, Ty::Void);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        Value addr = b.gep(b.param(0), b.param(1), 1);
        b.store(b.const_i64(0x41), addr, 1);
        b.ret();
    }
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(48)));
    b.call("sink", {b.load_local(p), b.const_i64(bad ? 48 : 47)},
           Ty::Void);
    b.free_(b.load_local(p));
    b.ret(b.const_i64(0));
    return m;
}

mir::Module build_intra_object_case(bool bad)
{
    // struct { char name[24]; i64 balance; } — the overrun stays inside
    // the 32-byte allocation and corrupts the sibling field.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(32)));
    Value balance = b.gep_const(b.load_local(p), 24);
    b.store(b.const_i64(9999), balance);
    // "strcpy" into name, one byte too far when bad.
    const auto i = b.local("i");
    workloads::for_range(b, i, 0, bad ? 25 : 24, [&] {
        Value c = b.gep(b.load_local(p), b.load_local(i), 1);
        b.store(b.const_i64(0x42), c, 1);
    });
    Value out = b.load(b.gep_const(b.load_local(p), 24));
    b.free_(b.load_local(p));
    b.ret(out);
    return m;
}

} // namespace hwst::juliet
