#include "juliet/runner.hpp"

#include "compiler/driver.hpp"

namespace hwst::juliet {

using compiler::Scheme;
using hwst::TrapKind;

bool counts_as_detection(Scheme scheme, TrapKind trap)
{
    // Diagnostics every scheme's output parser sees.
    if (trap == TrapKind::LibcAbort) return true;

    switch (scheme) {
    case Scheme::None:
        return false;
    case Scheme::Gcc:
        return trap == TrapKind::StackGuardViolation;
    case Scheme::Asan:
        // AsanReport, plus the SEGV interceptor's printed report.
        return trap == TrapKind::AsanReport || trap == TrapKind::AccessFault;
    case Scheme::Sbcets:
    case Scheme::Bogo:
        return trap == TrapKind::SoftSpatialViolation ||
               trap == TrapKind::SoftTemporalViolation;
    case Scheme::Hwst128:
    case Scheme::Hwst128Tchk:
    case Scheme::WdlNarrow:
    case Scheme::WdlWide:
        return trap == TrapKind::SpatialViolation ||
               trap == TrapKind::TemporalViolation ||
               trap == TrapKind::SoftSpatialViolation ||
               trap == TrapKind::SoftTemporalViolation;
    }
    return false;
}

TrapKind run_case(Scheme scheme, const CaseSpec& spec)
{
    // Bounded fuel plays the role of the Juliet harness timeout: a
    // self-corrupted case that livelocks counts as not-detected.
    auto result = compiler::run_with_config(
        build_case(spec), scheme,
        [](sim::MachineConfig& cfg) { cfg.fuel = 2'000'000; });
    return result.trap.kind;
}

Coverage run_suite(Scheme scheme, std::span<const CaseSpec> cases,
                   const RunOptions& opts)
{
    Coverage cov;
    const u32 stride = opts.stride == 0 ? 1 : opts.stride;
    for (std::size_t i = 0; i < cases.size(); i += stride) {
        const CaseSpec& spec = cases[i];
        const TrapKind trap = run_case(scheme, spec);
        auto& cwe = cov.per_cwe[spec.cwe];
        ++cwe.total;
        ++cov.total;
        if (counts_as_detection(scheme, trap)) {
            ++cwe.detected;
            ++cov.detected;
        }
        if (opts.check_good) {
            CaseSpec good = spec;
            good.bad = false;
            const TrapKind gtrap = run_case(scheme, good);
            if (counts_as_detection(scheme, gtrap)) ++cov.false_positives;
        }
    }
    return cov;
}

} // namespace hwst::juliet
