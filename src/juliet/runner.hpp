// Juliet suite runner + per-scheme detection scoring (paper §5.2).
//
// Scoring follows the paper's methodology: "the memory violation
// detection is done by parsing the output of the test case". A run is
// detected only when the protection produced a *printed diagnostic*:
// its own violation report, an ASAN report, a stack-smashing message or
// a libc "free(): invalid pointer" abort. A silent SEGV counts for the
// ASAN model only (its interceptor prints a report); for the plain GCC
// binary it is not a greppable diagnostic.
#pragma once

#include <map>
#include <span>

#include "compiler/scheme.hpp"
#include "hwst/trap.hpp"
#include "juliet/cases.hpp"

namespace hwst::juliet {

/// Does a run that ended with `trap` count as detected under `scheme`?
bool counts_as_detection(compiler::Scheme scheme, hwst::TrapKind trap);

struct CweCoverage {
    u32 total = 0;
    u32 detected = 0;
    double pct() const
    {
        return total ? 100.0 * detected / total : 0.0;
    }
};

struct Coverage {
    std::map<Cwe, CweCoverage> per_cwe;
    u32 total = 0;
    u32 detected = 0;
    u32 false_positives = 0; ///< good twins flagged (should stay 0)
    double pct() const
    {
        return total ? 100.0 * detected / total : 0.0;
    }
};

struct RunOptions {
    /// Run every `stride`-th case (1 = full suite). The detected/total
    /// ratio is unbiased for any stride because specs are deterministic.
    u32 stride = 1;
    /// Also run good twins to count false positives.
    bool check_good = false;
};

/// Execute the given cases under `scheme` and score coverage.
Coverage run_suite(compiler::Scheme scheme, std::span<const CaseSpec> cases,
                   const RunOptions& opts = {});

/// One case: returns the final trap kind.
hwst::TrapKind run_case(compiler::Scheme scheme, const CaseSpec& spec);

} // namespace hwst::juliet
