// Juliet-style memory-safety test-case generator (paper §4, Fig. 6).
//
// The NIST Juliet suite's relevant subcategories are reproduced as
// parameterized templates: 7074 spatial cases (CWE121/122/124/126/127)
// and 1292 temporal cases (CWE415/416/476/690/761) — 8366 bad cases
// total, matching the paper's denominators. Each case is a small
// mir::Module whose main() performs the defect; "good" twins perform
// the same computation in bounds (false-positive checks).
//
// Variant dimensions reproduce the mechanisms that give each protection
// scheme its characteristic coverage:
//   * distance    — near (<8 B), mid (8..16 B), far (>64 B) out of
//                   bounds: redzone-based ASAN catches near/mid only.
//   * provenance  — tracked vs laundered through int<->ptr casts:
//                   pointer-based schemes (SBCETS/HWST128) lose
//                   laundered pointers; ASAN does not care.
//   * container   — stack / heap / global.
//   * access      — single direct access vs loop sweep: the loop sweep
//                   is what can trip the GCC stack canary.
//   * odd heap sizes — HWST128's 8-byte-granule bound compression
//                   rounds the bound up; sub-granule heap overflows
//                   pass the SCU but fail SBCETS's exact bound — the
//                   paper's CWE122 coverage gap (Fig. 6, −0.86 %).
#pragma once

#include <string>
#include <vector>

#include "mir/ir.hpp"

namespace hwst::juliet {

using common::i64;
using common::u32;
using common::u64;

enum class Cwe {
    C121, ///< stack-based buffer overflow (write)
    C122, ///< heap-based buffer overflow (write)
    C124, ///< buffer underwrite
    C126, ///< buffer overread
    C127, ///< buffer underread
    C415, ///< double free
    C416, ///< use after free
    C476, ///< NULL pointer dereference
    C690, ///< unchecked NULL from allocation, dereferenced
    C761, ///< free of pointer not at start of buffer
};

constexpr std::string_view cwe_name(Cwe c)
{
    switch (c) {
    case Cwe::C121: return "CWE121";
    case Cwe::C122: return "CWE122";
    case Cwe::C124: return "CWE124";
    case Cwe::C126: return "CWE126";
    case Cwe::C127: return "CWE127";
    case Cwe::C415: return "CWE415";
    case Cwe::C416: return "CWE416";
    case Cwe::C476: return "CWE476";
    case Cwe::C690: return "CWE690";
    case Cwe::C761: return "CWE761";
    }
    return "?";
}

constexpr bool is_spatial(Cwe c)
{
    switch (c) {
    case Cwe::C121: case Cwe::C122: case Cwe::C124: case Cwe::C126:
    case Cwe::C127:
        return true;
    default:
        return false;
    }
}

/// Case counts per subcategory (sum: 7074 spatial + 1292 temporal =
/// 8366, the paper's totals).
struct CweCount {
    Cwe cwe;
    u32 count;
};
const std::vector<CweCount>& cwe_counts();

enum class Distance { Near, Mid, Far };
enum class Provenance { Tracked, Laundered };
enum class Container { Stack, Heap, Global };
enum class AccessKind { Direct, Loop };

struct CaseSpec {
    Cwe cwe{};
    u32 index = 0; ///< variant index within the CWE
    bool bad = true;

    Distance distance = Distance::Near;
    Provenance provenance = Provenance::Tracked;
    Container container = Container::Stack;
    AccessKind access = AccessKind::Direct;
    u64 buf_size = 32;  ///< object size in bytes
    u64 over_bytes = 1; ///< how far out of bounds

    std::string id() const;
};

/// Derive the deterministic spec for case `index` of `cwe`.
CaseSpec make_spec(Cwe cwe, u32 index, bool bad);

/// All bad cases (8366), in CWE order.
std::vector<CaseSpec> all_bad_cases();

/// Good twins, sampled every `stride` cases (false-positive checks).
std::vector<CaseSpec> good_cases(u32 stride = 10);

/// Build the program for a case.
mir::Module build_case(const CaseSpec& spec);

// ---- extended idioms (outside the calibrated 8366-case suite) --------

/// Inter-procedural sink: the out-of-bounds index is computed in main
/// but the write happens in a callee — exercising metadata transfer
/// across the call (shadow arg stack / SRF propagation).
mir::Module build_interproc_case(bool bad);

/// Intra-object overflow: a field overrun *inside* one allocation.
/// Object-granularity schemes (SoftBound-style and HWST128) miss this
/// by design, as does redzone-based ASAN — a documented limitation of
/// the whole pointer-based family.
mir::Module build_intra_object_case(bool bad);

} // namespace hwst::juliet
