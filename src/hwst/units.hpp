// The HWST128 pipeline units of Fig. 3: SMAC (shadow memory address
// calculator), SCU (spatial check unit) and TCU (temporal check unit).
// Pure combinational functions wrapped in small stat-keeping classes so
// the hardware-cost model and the ablation benches can introspect them.
#pragma once

#include "common/bitops.hpp"
#include "metadata/compress.hpp"

namespace hwst::hwst {

using common::u64;

/// SMAC — Eq. 1: Addr_LMSM = (Addr_ptr_container << 2) + CSR_offset.
/// The shift is kept verbatim from the paper: each 8-byte pointer
/// container strides 32 shadow bytes; the lower metadata half lives at
/// the mapped address and the upper half 8 bytes above.
class Smac {
public:
    u64 map(u64 container_addr, u64 csr_offset)
    {
        ++translations_;
        return (container_addr << 2) + csr_offset;
    }

    static constexpr u64 upper_slot_offset() { return 8; }

    u64 translations() const { return translations_; }

private:
    u64 translations_ = 0;
};

/// SCU — spatial check at the execute stage: the decompressed base /
/// bound are compared against the access address (paper Fig. 3: "if the
/// target address is out-of-bound, a spatial violation trap will be
/// evoked").
class Scu {
public:
    struct Result {
        bool pass;
    };

    Result check(u64 addr, unsigned width, u64 base, u64 bound)
    {
        ++checks_;
        const bool pass = addr >= base && addr + width <= bound &&
                          addr + width >= addr;
        if (!pass) ++violations_;
        return Result{pass};
    }

    /// A check that short-circuited on the saturating poison encoding
    /// (compression-width overflow): counts as a failed check.
    void note_saturated()
    {
        ++checks_;
        ++violations_;
        ++saturated_;
    }

    u64 checks() const { return checks_; }
    u64 violations() const { return violations_; }
    u64 saturated() const { return saturated_; }

private:
    u64 checks_ = 0;
    u64 violations_ = 0;
    u64 saturated_ = 0;
};

/// TCU — temporal check: key held by the pointer vs key stored at the
/// lock_location (possibly served by the keybuffer).
class Tcu {
public:
    struct Result {
        bool pass;
    };

    Result check(u64 pointer_key, u64 lock_key)
    {
        ++checks_;
        const bool pass = pointer_key == lock_key && pointer_key != 0;
        if (!pass) ++violations_;
        return Result{pass};
    }

    /// A check that short-circuited on the saturating poison encoding
    /// (compression-width overflow): counts as a failed check.
    void note_saturated()
    {
        ++checks_;
        ++violations_;
        ++saturated_;
    }

    u64 checks() const { return checks_; }
    u64 violations() const { return violations_; }
    u64 saturated() const { return saturated_; }

private:
    u64 checks_ = 0;
    u64 violations_ = 0;
    u64 saturated_ = 0;
};

} // namespace hwst::hwst
