// HWST128 control/status registers (paper §3.3/3.5: "the bit width for
// each metadata field is set within a 24-bit CSR at the beginning of the
// program"; "the target shadow address ... using a preset offset in a
// control status register").
#pragma once

#include <optional>

#include "common/bitops.hpp"
#include "metadata/compress.hpp"

namespace hwst::hwst {

using common::u32;
using common::u64;

// CSR address map (unprivileged custom read/write space).
inline constexpr u32 kCsrSmOffset = 0x800;  ///< Eq. 1 shadow offset
inline constexpr u32 kCsrBitw = 0x801;      ///< 24-bit packed field widths
inline constexpr u32 kCsrLockBase = 0x802;  ///< lock_location region base
inline constexpr u32 kCsrLockSize = 0x803;  ///< lock_location entry count
inline constexpr u32 kCsrStatus = 0x804;    ///< bit0 spatial, bit1 temporal
inline constexpr u32 kCsrViolation = 0x805; ///< last violation cause
inline constexpr u32 kCsrVaddr = 0x806;     ///< last violating address
// Standard counters.
inline constexpr u32 kCsrCycle = 0xC00;
inline constexpr u32 kCsrInstret = 0xC02;

inline constexpr u64 kStatusSpatialEnable = 1u << 0;
inline constexpr u64 kStatusTemporalEnable = 1u << 1;

class HwstCsrFile {
public:
    /// Read a HWST CSR; std::nullopt if the address is not ours (the
    /// Machine handles cycle/instret itself).
    std::optional<u64> read(u32 addr) const
    {
        switch (addr) {
        case kCsrSmOffset: return sm_offset_;
        case kCsrBitw: return bitw_;
        case kCsrLockBase: return lock_base_;
        case kCsrLockSize: return lock_size_;
        case kCsrStatus: return status_;
        case kCsrViolation: return violation_;
        case kCsrVaddr: return vaddr_;
        default: return std::nullopt;
        }
    }

    /// Write a HWST CSR; returns false if the address is not ours.
    bool write(u32 addr, u64 value)
    {
        ++version_;
        switch (addr) {
        case kCsrSmOffset: sm_offset_ = value; return true;
        case kCsrBitw: bitw_ = static_cast<u32>(value) & 0xFFFFFF; return true;
        case kCsrLockBase: lock_base_ = value; return true;
        case kCsrLockSize: lock_size_ = value; return true;
        case kCsrStatus: status_ = value & 3; return true;
        case kCsrViolation: violation_ = value; return true;
        case kCsrVaddr: vaddr_ = value; return true;
        default: return false;
        }
    }

    /// Bumped on every write (any address, even rejected ones — over-
    /// invalidation is safe). Lets the Machine memoize values derived
    /// from CSR state (the decoded compression config) and recompute
    /// only when the file may have changed.
    u64 version() const { return version_; }

    u64 sm_offset() const { return sm_offset_; }
    bool spatial_enabled() const { return status_ & kStatusSpatialEnable; }
    bool temporal_enabled() const { return status_ & kStatusTemporalEnable; }
    /// Emitted-code contract (sim/jit): stable address of the status
    /// CSR, so the checked-op templates can test the spatial/temporal
    /// enable bits inline (kStatus*Enable live in the low byte).
    const u64* status_view() const { return &status_; }

    /// Current compression configuration, decoded from csr.bitw +
    /// csr.lock.base (what COMP/DECOMP see).
    metadata::CompressionConfig compression() const
    {
        return metadata::CompressionConfig::from_csr(bitw_, lock_base_);
    }

    void record_violation(u64 cause, u64 addr)
    {
        ++version_;
        violation_ = cause;
        vaddr_ = addr;
    }

private:
    u64 sm_offset_ = 0;
    u32 bitw_ = metadata::CompressionConfig{}.to_csr();
    u64 lock_base_ = 0;
    u64 lock_size_ = 0;
    u64 status_ = 0;
    u64 violation_ = 0;
    u64 vaddr_ = 0;
    u64 version_ = 0;
};

} // namespace hwst::hwst
