// Architectural traps. These are ordinary values returned from the
// Machine (never C++ exceptions at the API boundary): the Juliet
// coverage harness classifies runs by the trap they ended with.
#pragma once

#include <string_view>

#include "common/bitops.hpp"

namespace hwst::hwst {

using common::u64;

enum class TrapKind : common::u8 {
    None = 0,
    /// SCU detected an out-of-bounds checked access (hardware, Fig. 3).
    SpatialViolation,
    /// TCU key mismatch on tchk (hardware, Fig. 3).
    TemporalViolation,
    /// Access outside every mapped region / null page (MMU-level; the
    /// only protection the uninstrumented baseline has).
    AccessFault,
    /// Software instrumentation detected a violation and aborted
    /// (SBCETS / ASAN runtime abort — ecall-based in this model).
    SoftSpatialViolation,
    SoftTemporalViolation,
    /// Stack canary / FORTIFY-style abort (the "GCC" baseline of Fig. 6).
    StackGuardViolation,
    /// libc heap-consistency abort ("free(): invalid pointer") — a
    /// printed diagnostic every scheme's output parser can see.
    LibcAbort,
    /// ASAN shadow-byte report.
    AsanReport,
    IllegalInstruction,
    Breakpoint,
    /// Simulator fuel exhausted (runaway program).
    FuelExhausted,
};

struct Trap {
    TrapKind kind = TrapKind::None;
    u64 addr = 0; ///< faulting address if applicable
    u64 pc = 0;   ///< pc of the trapping instruction

    bool is_violation() const
    {
        switch (kind) {
        case TrapKind::SpatialViolation:
        case TrapKind::TemporalViolation:
        case TrapKind::AccessFault:
        case TrapKind::SoftSpatialViolation:
        case TrapKind::SoftTemporalViolation:
        case TrapKind::StackGuardViolation:
        case TrapKind::LibcAbort:
        case TrapKind::AsanReport:
            return true;
        default:
            return false;
        }
    }
};

constexpr std::string_view trap_name(TrapKind k)
{
    switch (k) {
    case TrapKind::None: return "none";
    case TrapKind::SpatialViolation: return "spatial-violation";
    case TrapKind::TemporalViolation: return "temporal-violation";
    case TrapKind::AccessFault: return "access-fault";
    case TrapKind::SoftSpatialViolation: return "soft-spatial-violation";
    case TrapKind::SoftTemporalViolation: return "soft-temporal-violation";
    case TrapKind::StackGuardViolation: return "stack-guard-violation";
    case TrapKind::LibcAbort: return "libc-abort";
    case TrapKind::AsanReport: return "asan-report";
    case TrapKind::IllegalInstruction: return "illegal-instruction";
    case TrapKind::Breakpoint: return "breakpoint";
    case TrapKind::FuelExhausted: return "fuel-exhausted";
    }
    return "unknown";
}

} // namespace hwst::hwst
