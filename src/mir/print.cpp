#include "mir/print.hpp"

#include <sstream>

namespace hwst::mir {

namespace {

const char* ty_name(Ty t)
{
    switch (t) {
    case Ty::I64: return "i64";
    case Ty::Ptr: return "ptr";
    case Ty::Void: return "void";
    }
    return "?";
}

const char* bin_name(BinKind k)
{
    switch (k) {
    case BinKind::Add: return "add";
    case BinKind::Sub: return "sub";
    case BinKind::Mul: return "mul";
    case BinKind::DivS: return "sdiv";
    case BinKind::DivU: return "udiv";
    case BinKind::RemS: return "srem";
    case BinKind::RemU: return "urem";
    case BinKind::And: return "and";
    case BinKind::Or: return "or";
    case BinKind::Xor: return "xor";
    case BinKind::Shl: return "shl";
    case BinKind::ShrL: return "lshr";
    case BinKind::ShrA: return "ashr";
    }
    return "?";
}

const char* cmp_name(CmpKind k)
{
    switch (k) {
    case CmpKind::Eq: return "eq";
    case CmpKind::Ne: return "ne";
    case CmpKind::LtS: return "slt";
    case CmpKind::LeS: return "sle";
    case CmpKind::GtS: return "sgt";
    case CmpKind::GeS: return "sge";
    case CmpKind::LtU: return "ult";
    case CmpKind::GeU: return "uge";
    }
    return "?";
}

std::string v(Value x)
{
    if (!x.valid()) return "%-";
    return "%" + std::to_string(x.id);
}

} // namespace

std::string to_string(const Function& fn)
{
    std::ostringstream os;
    os << "func " << fn.name() << '(';
    for (std::size_t i = 0; i < fn.params().size(); ++i) {
        if (i) os << ", ";
        os << ty_name(fn.params()[i]);
    }
    os << ") -> " << ty_name(fn.return_type()) << " {\n";
    for (std::size_t a = 0; a < fn.allocas().size(); ++a) {
        const auto& al = fn.allocas()[a];
        os << "  alloca #" << a << ' ' << al.name << " [" << al.size
           << " x i8] align " << al.align << '\n';
    }
    for (std::size_t b = 0; b < fn.blocks().size(); ++b) {
        const Block& bb = fn.blocks()[b];
        os << bb.name() << ":  ; bb" << b << '\n';
        for (const Instr& in : bb.instrs()) {
            os << "  ";
            if (in.ty != Ty::Void)
                os << v(in.result) << ": " << ty_name(in.ty) << " = ";
            switch (in.op) {
            case Op::ConstI64:
                os << (in.ty == Ty::Ptr ? "nullptr" : "const ") << in.imm;
                break;
            case Op::Bin:
                os << bin_name(static_cast<BinKind>(in.imm)) << ' ' << v(in.a)
                   << ", " << v(in.b);
                break;
            case Op::Cmp:
                os << "icmp " << cmp_name(static_cast<CmpKind>(in.imm)) << ' '
                   << v(in.a) << ", " << v(in.b);
                break;
            case Op::AllocaAddr: os << "alloca_addr #" << in.index; break;
            case Op::GlobalAddr: os << "global_addr #" << in.index; break;
            case Op::ParamRef: os << "param #" << in.index; break;
            case Op::Load:
                os << "load i" << 8 * in.width << (in.sign ? "s" : "u") << ' '
                   << v(in.a);
                break;
            case Op::Store:
                os << "store i" << 8 * in.width << ' ' << v(in.a) << " -> "
                   << v(in.b);
                break;
            case Op::Gep:
                os << "gep " << v(in.a) << " + " << v(in.b) << "*" << in.imm
                   << " + " << in.imm2;
                break;
            case Op::PtrToInt: os << "ptrtoint " << v(in.a); break;
            case Op::IntToPtr: os << "inttoptr " << v(in.a); break;
            case Op::Call: {
                os << "call " << in.callee << '(';
                for (std::size_t k = 0; k < in.args.size(); ++k) {
                    if (k) os << ", ";
                    os << v(in.args[k]);
                }
                os << ')';
                break;
            }
            case Op::Malloc: os << "malloc " << v(in.a); break;
            case Op::Free: os << "free " << v(in.a); break;
            case Op::Memcpy:
                os << "memcpy " << v(in.a) << ", " << v(in.b) << ", "
                   << v(in.c);
                break;
            case Op::Memset:
                os << "memset " << v(in.a) << ", " << v(in.b) << ", "
                   << v(in.c);
                break;
            case Op::Print: os << "print " << v(in.a); break;
            case Op::Ret: os << "ret " << v(in.a); break;
            case Op::Br:
                os << "br " << v(in.a) << ", bb" << in.bb_true << ", bb"
                   << in.bb_false;
                break;
            case Op::Jmp: os << "jmp bb" << in.bb_true; break;
            }
            os << '\n';
        }
    }
    os << "}\n";
    return os.str();
}

std::string to_string(const Module& module)
{
    std::ostringstream os;
    for (std::size_t g = 0; g < module.globals().size(); ++g) {
        const Global& gl = module.globals()[g];
        os << "global #" << g << ' ' << gl.name << " [" << gl.size
           << " x i8]\n";
    }
    for (const Function& fn : module.functions()) os << to_string(fn) << '\n';
    return os.str();
}

} // namespace hwst::mir
