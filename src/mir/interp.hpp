// Reference interpreter for mir modules: an independent semantic oracle
// used to cross-validate the whole codegen+simulator stack (a workload's
// checksum must agree between (a) this interpreter, (b) the
// uninstrumented machine run, and (c) every instrumented machine run).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "mir/ir.hpp"

namespace hwst::mir {

struct InterpResult {
    i64 exit_code = 0;
    std::vector<i64> output;
    /// Set when the program performed an access the interpreter's own
    /// memory map rejects (the oracle equivalent of an AccessFault).
    std::optional<std::string> fault;

    bool ok() const { return !fault.has_value(); }
};

struct InterpOptions {
    u64 max_steps = 100'000'000; ///< instruction budget (runaway guard)
};

/// Execute `module` (must verify) starting at main() -> i64.
InterpResult interpret(const Module& module, InterpOptions opts = {});

} // namespace hwst::mir
