#include "mir/verify.hpp"

#include <unordered_set>

#include "common/error.hpp"

namespace hwst::mir {

using common::ToolchainError;

namespace {

[[noreturn]] void fail(const Function& fn, const Block& bb,
                       const std::string& what)
{
    throw ToolchainError{"mir verify: " + fn.name() + "/" + bb.name() + ": " +
                         what};
}

bool is_terminator(Op op)
{
    return op == Op::Ret || op == Op::Br || op == Op::Jmp;
}

} // namespace

void verify(const Module& module, const Function& fn)
{
    if (fn.blocks().empty())
        throw ToolchainError{"mir verify: " + fn.name() + ": no blocks"};

    for (const Block& bb : fn.blocks()) {
        if (bb.instrs().empty()) fail(fn, bb, "empty block");

        std::unordered_set<u32> defined;
        const auto check_operand = [&](Value v, Ty want,
                                       const char* what) {
            if (!v.valid()) fail(fn, bb, std::string{what} + " missing");
            if (!defined.contains(v.id))
                fail(fn, bb, std::string{what} +
                                 " not defined earlier in this block "
                                 "(block-local SSA)");
            if (want != Ty::Void && fn.value_type(v) != want)
                fail(fn, bb, std::string{what} + " has wrong type");
        };

        for (std::size_t i = 0; i < bb.instrs().size(); ++i) {
            const Instr& in = bb.instrs()[i];
            const bool last = i + 1 == bb.instrs().size();
            if (is_terminator(in.op) != last)
                fail(fn, bb, last ? "block does not end in a terminator"
                                  : "terminator in the middle of a block");

            switch (in.op) {
            case Op::ConstI64:
                break;
            case Op::Bin:
            case Op::Cmp:
                check_operand(in.a, Ty::I64, "lhs");
                check_operand(in.b, Ty::I64, "rhs");
                break;
            case Op::AllocaAddr:
                if (in.index >= fn.allocas().size())
                    fail(fn, bb, "alloca index out of range");
                break;
            case Op::GlobalAddr:
                if (in.index >= module.globals().size())
                    fail(fn, bb, "global index out of range");
                break;
            case Op::ParamRef:
                if (in.index >= fn.params().size())
                    fail(fn, bb, "param index out of range");
                break;
            case Op::Load:
                check_operand(in.a, Ty::Ptr, "load address");
                if (in.width != 1 && in.width != 2 && in.width != 4 &&
                    in.width != 8)
                    fail(fn, bb, "load width must be 1/2/4/8");
                if (in.ty == Ty::Ptr && in.width != 8)
                    fail(fn, bb, "pointer load must be 8 bytes");
                break;
            case Op::Store:
                check_operand(in.a, Ty::Void, "store value");
                check_operand(in.b, Ty::Ptr, "store address");
                if (in.width != 1 && in.width != 2 && in.width != 4 &&
                    in.width != 8)
                    fail(fn, bb, "store width must be 1/2/4/8");
                if (fn.value_type(in.a) == Ty::Ptr && in.width != 8)
                    fail(fn, bb, "pointer store must be 8 bytes");
                break;
            case Op::Gep:
                check_operand(in.a, Ty::Ptr, "gep base");
                if (in.b.valid()) check_operand(in.b, Ty::I64, "gep index");
                break;
            case Op::PtrToInt:
                check_operand(in.a, Ty::Ptr, "ptrtoint operand");
                break;
            case Op::IntToPtr:
                check_operand(in.a, Ty::I64, "inttoptr operand");
                break;
            case Op::Call: {
                const Function* callee = module.find_function(in.callee);
                if (!callee) fail(fn, bb, "call to unknown " + in.callee);
                if (callee->params().size() != in.args.size())
                    fail(fn, bb, "call arg count mismatch for " + in.callee);
                for (std::size_t k = 0; k < in.args.size(); ++k)
                    check_operand(in.args[k], callee->params()[k], "call arg");
                if (in.ty != callee->return_type() &&
                    !(in.ty == Ty::Void))
                    fail(fn, bb, "call result type mismatch for " + in.callee);
                break;
            }
            case Op::Malloc:
                check_operand(in.a, Ty::I64, "malloc size");
                break;
            case Op::Free:
                check_operand(in.a, Ty::Ptr, "free pointer");
                break;
            case Op::Memcpy:
                check_operand(in.a, Ty::Ptr, "memcpy dst");
                check_operand(in.b, Ty::Ptr, "memcpy src");
                check_operand(in.c, Ty::I64, "memcpy len");
                break;
            case Op::Memset:
                check_operand(in.a, Ty::Ptr, "memset dst");
                check_operand(in.b, Ty::I64, "memset byte");
                check_operand(in.c, Ty::I64, "memset len");
                break;
            case Op::Print:
                check_operand(in.a, Ty::Void, "print operand");
                break;
            case Op::Ret:
                if (fn.return_type() == Ty::Void) {
                    if (in.a.valid()) fail(fn, bb, "ret value in void function");
                } else {
                    check_operand(in.a, fn.return_type(), "ret value");
                }
                break;
            case Op::Br:
                check_operand(in.a, Ty::I64, "branch condition");
                if (in.bb_true >= fn.blocks().size() ||
                    in.bb_false >= fn.blocks().size())
                    fail(fn, bb, "branch target out of range");
                break;
            case Op::Jmp:
                if (in.bb_true >= fn.blocks().size())
                    fail(fn, bb, "jump target out of range");
                break;
            }

            if (in.ty != Ty::Void) {
                if (!in.result.valid())
                    fail(fn, bb, "instruction with result type has no result");
                defined.insert(in.result.id);
            }
        }
    }
}

void verify(const Module& module)
{
    for (const Function& fn : module.functions()) verify(module, fn);
}

} // namespace hwst::mir
