// IR verifier: structural and type checks run before instrumentation /
// codegen. Throws common::ToolchainError with a diagnostic on the first
// violation.
#pragma once

#include "mir/ir.hpp"

namespace hwst::mir {

/// Verify one function (block-local SSA, terminator discipline, operand
/// types, target validity, call signatures against `module`).
void verify(const Module& module, const Function& fn);

/// Verify every function in the module.
void verify(const Module& module);

} // namespace hwst::mir
