// mir — a minimal SSA-ish IR standing in for the paper's LLVM layer
// (DESIGN.md §2). Workloads and Juliet cases are built against this IR;
// the pointer-provenance analysis and the per-scheme safety
// instrumentation run over it; codegen lowers it to RV64+HWST.
//
// Deliberate restriction: SSA values are *block-local* (verified) —
// anything live across blocks goes through an alloca, exactly like
// clang -O0 output. This matches the paper's -O0 evaluation and keeps
// codegen honest about the pointer traffic the instrumentation must
// shadow.
#pragma once

#include <string>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace hwst::mir {

using common::i64;
using common::u32;
using common::u64;
using common::u8;

enum class Ty : u8 { I64, Ptr, Void };

/// SSA value id (index into Function::values()).
struct Value {
    u32 id = kInvalid;
    static constexpr u32 kInvalid = 0xFFFFFFFF;
    bool valid() const { return id != kInvalid; }
    friend bool operator==(const Value&, const Value&) = default;
};

using BlockId = u32;

enum class BinKind : u8 {
    Add, Sub, Mul, DivS, DivU, RemS, RemU,
    And, Or, Xor, Shl, ShrL, ShrA,
};

enum class CmpKind : u8 { Eq, Ne, LtS, LeS, GtS, GeS, LtU, GeU };

enum class Op : u8 {
    ConstI64,   ///< imm
    Bin,        ///< bin(a, b)
    Cmp,        ///< cmp(a, b) -> 0/1
    AllocaAddr, ///< address of function alloca `index`
    GlobalAddr, ///< address of module global `index`
    ParamRef,   ///< value of parameter `index`
    Load,       ///< load width/sign from ptr a
    Store,      ///< store a (value) to ptr b, width
    Gep,        ///< a (ptr) + b (index) * imm (scale) + imm2 (offset)
    PtrToInt,   ///< a -> i64 (launders provenance)
    IntToPtr,   ///< a -> ptr (metadata-less pointer)
    Call,       ///< call `callee`(args); result ty = callee's return
    Malloc,     ///< heap allocate a bytes -> ptr (wrapped per scheme)
    Free,       ///< free ptr a (wrapped per scheme)
    Memcpy,     ///< memcpy(dst=a, src=b, len=c) via runtime
    Memset,     ///< memset(dst=a, byte=b, len=c) via runtime
    Print,      ///< emit a to the run's output vector
    Ret,        ///< return a (or void)
    Br,         ///< if a != 0 goto bb_true else bb_false
    Jmp,        ///< goto bb_true
};

struct Instr {
    Op op{};
    Ty ty = Ty::Void;      ///< result type (Void = no result)
    Value result{};        ///< assigned by the builder when ty != Void
    Value a{}, b{}, c{};   ///< operands
    i64 imm = 0;           ///< ConstI64 value / Gep scale
    i64 imm2 = 0;          ///< Gep constant offset
    unsigned width = 8;    ///< Load/Store access width
    bool sign = true;      ///< Load sign extension
    u32 index = 0;         ///< alloca/global/param index
    std::string callee;    ///< Call target
    std::vector<Value> args;
    BlockId bb_true = 0, bb_false = 0;
};

struct AllocaInfo {
    std::string name;
    u64 size = 8;
    unsigned align = 8;
};

struct ValueInfo {
    Ty ty = Ty::Void;
    BlockId block = 0; ///< defining block (block-local SSA)
};

class Block {
public:
    explicit Block(std::string name) : name_{std::move(name)} {}

    const std::string& name() const { return name_; }
    const std::vector<Instr>& instrs() const { return instrs_; }
    std::vector<Instr>& instrs() { return instrs_; }

private:
    std::string name_;
    std::vector<Instr> instrs_;
};

class Function {
public:
    Function(std::string name, std::vector<Ty> params, Ty ret)
        : name_{std::move(name)}, params_{std::move(params)}, ret_{ret}
    {
    }

    const std::string& name() const { return name_; }
    const std::vector<Ty>& params() const { return params_; }
    Ty return_type() const { return ret_; }

    BlockId add_block(std::string name)
    {
        blocks_.emplace_back(std::move(name));
        return static_cast<BlockId>(blocks_.size() - 1);
    }

    u32 add_alloca(AllocaInfo info)
    {
        allocas_.push_back(std::move(info));
        return static_cast<u32>(allocas_.size() - 1);
    }

    Value new_value(Ty ty, BlockId block)
    {
        values_.push_back(ValueInfo{ty, block});
        return Value{static_cast<u32>(values_.size() - 1)};
    }

    const std::vector<Block>& blocks() const { return blocks_; }
    std::vector<Block>& blocks() { return blocks_; }
    const std::vector<AllocaInfo>& allocas() const { return allocas_; }
    const std::vector<ValueInfo>& values() const { return values_; }

    Ty value_type(Value v) const
    {
        if (!v.valid() || v.id >= values_.size())
            throw common::ToolchainError{"value id out of range"};
        return values_[v.id].ty;
    }

private:
    std::string name_;
    std::vector<Ty> params_;
    Ty ret_;
    std::vector<Block> blocks_;
    std::vector<AllocaInfo> allocas_;
    std::vector<ValueInfo> values_;
};

struct Global {
    std::string name;
    u64 size = 0;
    unsigned align = 8;
    std::vector<u8> init; ///< may be shorter than size (rest zero)
};

class Module {
public:
    Function& add_function(std::string name, std::vector<Ty> params, Ty ret)
    {
        functions_.emplace_back(std::move(name), std::move(params), ret);
        return functions_.back();
    }

    u32 add_global(Global g)
    {
        globals_.push_back(std::move(g));
        return static_cast<u32>(globals_.size() - 1);
    }

    const std::vector<Function>& functions() const { return functions_; }
    std::vector<Function>& functions() { return functions_; }
    const std::vector<Global>& globals() const { return globals_; }

    const Function* find_function(const std::string& name) const
    {
        for (const auto& f : functions_)
            if (f.name() == name) return &f;
        return nullptr;
    }

private:
    std::vector<Function> functions_;
    std::vector<Global> globals_;
};

} // namespace hwst::mir
