// Human-readable IR dump (debugging, examples, golden tests).
#pragma once

#include <string>

#include "mir/ir.hpp"

namespace hwst::mir {

std::string to_string(const Function& fn);
std::string to_string(const Module& module);

} // namespace hwst::mir
