// FunctionBuilder: the fluent construction API the workloads and the
// Juliet generator use. Enforces the block-local-SSA discipline by
// construction: cross-block state goes through locals (allocas).
#pragma once

#include <algorithm>

#include "mir/ir.hpp"

namespace hwst::mir {

class FunctionBuilder {
public:
    FunctionBuilder(Module& module, Function& fn)
        : module_{module}, fn_{fn}
    {
    }

    Function& function() { return fn_; }
    Module& module() { return module_; }

    BlockId block(std::string name) { return fn_.add_block(std::move(name)); }

    void set_insert(BlockId bb) { insert_ = bb; }
    BlockId insert_point() const { return insert_; }

    // ---- locals: 8-byte stack slots for cross-block values ----------
    u32 local(std::string name, Ty ty = Ty::I64)
    {
        const u32 idx = fn_.add_alloca(AllocaInfo{std::move(name), 8, 8});
        local_types_.resize(std::max<std::size_t>(local_types_.size(), idx + 1),
                            Ty::I64);
        local_types_[idx] = ty;
        return idx;
    }

    u32 array(std::string name, u64 bytes, unsigned align = 8)
    {
        return fn_.add_alloca(AllocaInfo{std::move(name), bytes, align});
    }

    Value load_local(u32 idx)
    {
        const Ty ty = idx < local_types_.size() ? local_types_[idx] : Ty::I64;
        Value addr = alloca_addr(idx);
        return load(addr, 8, true, ty);
    }

    void store_local(u32 idx, Value v)
    {
        Value addr = alloca_addr(idx);
        store(v, addr, 8);
    }

    // ---- instructions -------------------------------------------------
    Value const_i64(i64 v)
    {
        Instr in;
        in.op = Op::ConstI64;
        in.ty = Ty::I64;
        in.imm = v;
        return push_valued(in);
    }

    /// A null pointer constant (SBCETS binds null metadata to it).
    Value null_ptr()
    {
        Instr in;
        in.op = Op::ConstI64;
        in.ty = Ty::Ptr;
        in.imm = 0;
        return push_valued(in);
    }

    Value bin(BinKind k, Value a, Value b)
    {
        Instr in;
        in.op = Op::Bin;
        in.ty = Ty::I64;
        in.imm = static_cast<i64>(k);
        in.a = a;
        in.b = b;
        return push_valued(in);
    }

    Value add(Value a, Value b) { return bin(BinKind::Add, a, b); }
    Value sub(Value a, Value b) { return bin(BinKind::Sub, a, b); }
    Value mul(Value a, Value b) { return bin(BinKind::Mul, a, b); }
    Value divs(Value a, Value b) { return bin(BinKind::DivS, a, b); }
    Value rems(Value a, Value b) { return bin(BinKind::RemS, a, b); }
    Value and_(Value a, Value b) { return bin(BinKind::And, a, b); }
    Value or_(Value a, Value b) { return bin(BinKind::Or, a, b); }
    Value xor_(Value a, Value b) { return bin(BinKind::Xor, a, b); }
    Value shl(Value a, Value b) { return bin(BinKind::Shl, a, b); }
    Value shr(Value a, Value b) { return bin(BinKind::ShrL, a, b); }
    Value sra(Value a, Value b) { return bin(BinKind::ShrA, a, b); }

    Value cmp(CmpKind k, Value a, Value b)
    {
        Instr in;
        in.op = Op::Cmp;
        in.ty = Ty::I64;
        in.imm = static_cast<i64>(k);
        in.a = a;
        in.b = b;
        return push_valued(in);
    }

    Value eq(Value a, Value b) { return cmp(CmpKind::Eq, a, b); }
    Value ne(Value a, Value b) { return cmp(CmpKind::Ne, a, b); }
    Value lt(Value a, Value b) { return cmp(CmpKind::LtS, a, b); }
    Value le(Value a, Value b) { return cmp(CmpKind::LeS, a, b); }
    Value ltu(Value a, Value b) { return cmp(CmpKind::LtU, a, b); }

    Value alloca_addr(u32 index)
    {
        Instr in;
        in.op = Op::AllocaAddr;
        in.ty = Ty::Ptr;
        in.index = index;
        return push_valued(in);
    }

    Value global_addr(u32 index)
    {
        Instr in;
        in.op = Op::GlobalAddr;
        in.ty = Ty::Ptr;
        in.index = index;
        return push_valued(in);
    }

    Value param(u32 index)
    {
        Instr in;
        in.op = Op::ParamRef;
        in.ty = fn_.params().at(index);
        in.index = index;
        return push_valued(in);
    }

    Value load(Value ptr, unsigned width = 8, bool sign = true,
               Ty result = Ty::I64)
    {
        Instr in;
        in.op = Op::Load;
        in.ty = result;
        in.a = ptr;
        in.width = width;
        in.sign = sign;
        return push_valued(in);
    }

    /// Load a pointer-typed value from memory (through-memory
    /// propagation: the instrumentation shadows this).
    Value load_ptr(Value ptr) { return load(ptr, 8, false, Ty::Ptr); }

    void store(Value v, Value ptr, unsigned width = 8)
    {
        Instr in;
        in.op = Op::Store;
        in.a = v;
        in.b = ptr;
        in.width = width;
        push(in);
    }

    Value gep(Value ptr, Value index, i64 scale, i64 offset = 0)
    {
        Instr in;
        in.op = Op::Gep;
        in.ty = Ty::Ptr;
        in.a = ptr;
        in.b = index;
        in.imm = scale;
        in.imm2 = offset;
        return push_valued(in);
    }

    Value gep_const(Value ptr, i64 offset)
    {
        return gep(ptr, Value{}, 0, offset);
    }

    Value ptr_to_int(Value p)
    {
        Instr in;
        in.op = Op::PtrToInt;
        in.ty = Ty::I64;
        in.a = p;
        return push_valued(in);
    }

    Value int_to_ptr(Value v)
    {
        Instr in;
        in.op = Op::IntToPtr;
        in.ty = Ty::Ptr;
        in.a = v;
        return push_valued(in);
    }

    Value call(const std::string& callee, std::vector<Value> args, Ty ret)
    {
        Instr in;
        in.op = Op::Call;
        in.ty = ret;
        in.callee = callee;
        in.args = std::move(args);
        if (ret == Ty::Void) {
            push(in);
            return Value{};
        }
        return push_valued(in);
    }

    Value malloc_(Value size)
    {
        Instr in;
        in.op = Op::Malloc;
        in.ty = Ty::Ptr;
        in.a = size;
        return push_valued(in);
    }

    void free_(Value ptr)
    {
        Instr in;
        in.op = Op::Free;
        in.a = ptr;
        push(in);
    }

    void memcpy_(Value dst, Value src, Value len)
    {
        Instr in;
        in.op = Op::Memcpy;
        in.a = dst;
        in.b = src;
        in.c = len;
        push(in);
    }

    void memset_(Value dst, Value byte, Value len)
    {
        Instr in;
        in.op = Op::Memset;
        in.a = dst;
        in.b = byte;
        in.c = len;
        push(in);
    }

    void print(Value v)
    {
        Instr in;
        in.op = Op::Print;
        in.a = v;
        push(in);
    }

    void ret(Value v = Value{})
    {
        Instr in;
        in.op = Op::Ret;
        in.a = v;
        push(in);
    }

    void br(Value cond, BlockId t, BlockId f)
    {
        Instr in;
        in.op = Op::Br;
        in.a = cond;
        in.bb_true = t;
        in.bb_false = f;
        push(in);
    }

    void jmp(BlockId t)
    {
        Instr in;
        in.op = Op::Jmp;
        in.bb_true = t;
        push(in);
    }

private:
    void push(const Instr& in)
    {
        if (insert_ >= fn_.blocks().size())
            throw common::ToolchainError{"builder: no insert block set"};
        fn_.blocks()[insert_].instrs().push_back(in);
    }

    Value push_valued(Instr in)
    {
        in.result = fn_.new_value(in.ty, insert_);
        push(in);
        return in.result;
    }

    Module& module_;
    Function& fn_;
    BlockId insert_ = 0;
    std::vector<Ty> local_types_;
};

} // namespace hwst::mir
