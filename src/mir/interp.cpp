#include "mir/interp.hpp"

#include <limits>
#include <unordered_map>

#include "common/error.hpp"
#include "mem/allocator.hpp"
#include "mem/memory.hpp"
#include "mir/verify.hpp"

namespace hwst::mir {

using common::SimError;

namespace {

/// The interpreter mirrors the Machine's memory map closely enough that
/// address arithmetic behaves identically (globals at the same data
/// base, heap in the same region, stack frames carved from a bump
/// allocator).
struct InterpState {
    explicit InterpState(const Module& module)
        : heap{0x0100'0000, 0x0800'0000}
    {
        mem.map_region("data", kDataBase, 1u << 24);
        mem.map_region("heap", 0x0100'0000, 0x0800'0000);
        mem.map_region("stack", kStackBase - kStackSize, kStackSize);

        u64 cursor = kDataBase;
        for (const Global& g : module.globals()) {
            cursor = common::align_up(cursor, g.align);
            global_addr.push_back(cursor);
            if (!g.init.empty()) mem.write_bytes(cursor, g.init);
            cursor += std::max<u64>(g.size, 1);
        }
    }

    static constexpr u64 kDataBase = 0x0010'0000;
    static constexpr u64 kStackBase = 0x3000'0000;
    static constexpr u64 kStackSize = 0x0040'0000;

    mem::Memory mem;
    mem::HeapAllocator heap;
    std::vector<u64> global_addr;
    u64 sp = kStackBase - 64;
    u64 steps = 0;
    InterpResult result;
};

struct Fault {
    std::string what;
};

class Interp {
public:
    Interp(const Module& module, const InterpOptions& opts)
        : module_{module}, opts_{opts}, state_{module}
    {
    }

    InterpResult run()
    {
        const Function* main = module_.find_function("main");
        try {
            state_.result.exit_code =
                static_cast<i64>(call(*main, {}));
        } catch (const Fault& f) {
            state_.result.fault = f.what;
        } catch (const mem::MemFault& f) {
            state_.result.fault =
                "access fault at 0x" + std::to_string(f.addr);
        }
        return state_.result;
    }

private:
    u64 call(const Function& fn, const std::vector<u64>& args)
    {
        // Frame: allocas carved from the interpreter stack.
        const u64 saved_sp = state_.sp;
        std::vector<u64> alloca_addr;
        for (const AllocaInfo& al : fn.allocas()) {
            state_.sp -= common::align_up(al.size, al.align);
            state_.sp &= ~u64{15};
            if (state_.sp < InterpState::kStackBase - InterpState::kStackSize)
                throw Fault{"interpreter stack overflow"};
            alloca_addr.push_back(state_.sp);
        }

        std::unordered_map<u32, u64> values;
        const auto val = [&](Value v) -> u64 {
            const auto it = values.find(v.id);
            if (it == values.end())
                throw SimError{"interp: use of undefined value"};
            return it->second;
        };

        BlockId bb = 0;
        while (true) {
            for (const Instr& in : fn.blocks()[bb].instrs()) {
                if (++state_.steps > opts_.max_steps)
                    throw Fault{"step budget exhausted"};
                switch (in.op) {
                case Op::ConstI64:
                    values[in.result.id] = static_cast<u64>(in.imm);
                    break;
                case Op::Bin: {
                    const u64 a = val(in.a), b = val(in.b);
                    values[in.result.id] = binop(
                        static_cast<BinKind>(in.imm), a, b);
                    break;
                }
                case Op::Cmp: {
                    const u64 a = val(in.a), b = val(in.b);
                    values[in.result.id] =
                        cmpop(static_cast<CmpKind>(in.imm), a, b);
                    break;
                }
                case Op::AllocaAddr:
                    values[in.result.id] = alloca_addr.at(in.index);
                    break;
                case Op::GlobalAddr:
                    values[in.result.id] =
                        state_.global_addr.at(in.index);
                    break;
                case Op::ParamRef:
                    values[in.result.id] = args.at(in.index);
                    break;
                case Op::Load:
                    values[in.result.id] =
                        state_.mem.load(val(in.a), in.width, in.sign);
                    break;
                case Op::Store:
                    state_.mem.store(val(in.b), in.width, val(in.a));
                    break;
                case Op::Gep: {
                    u64 addr = val(in.a);
                    if (in.b.valid())
                        addr += val(in.b) * static_cast<u64>(in.imm);
                    addr += static_cast<u64>(in.imm2);
                    values[in.result.id] = addr;
                    break;
                }
                case Op::PtrToInt:
                case Op::IntToPtr:
                    values[in.result.id] = val(in.a);
                    break;
                case Op::Call: {
                    const Function* callee =
                        module_.find_function(in.callee);
                    std::vector<u64> cargs;
                    for (const Value a : in.args) cargs.push_back(val(a));
                    const u64 r = call(*callee, cargs);
                    if (in.ty != Ty::Void) values[in.result.id] = r;
                    break;
                }
                case Op::Malloc:
                    values[in.result.id] = state_.heap.malloc(val(in.a));
                    break;
                case Op::Free:
                    if (!state_.heap.free(val(in.a)))
                        throw Fault{"free(): invalid pointer"};
                    break;
                case Op::Memcpy: {
                    const u64 dst = val(in.a), src = val(in.b),
                              len = val(in.c);
                    for (u64 k = 0; k < len; ++k)
                        state_.mem.store(dst + k, 1,
                                         state_.mem.load(src + k, 1, false));
                    break;
                }
                case Op::Memset: {
                    const u64 dst = val(in.a), byte = val(in.b),
                              len = val(in.c);
                    for (u64 k = 0; k < len; ++k)
                        state_.mem.store(dst + k, 1, byte);
                    break;
                }
                case Op::Print:
                    state_.result.output.push_back(
                        static_cast<i64>(val(in.a)));
                    break;
                case Op::Ret: {
                    const u64 r = in.a.valid() ? val(in.a) : 0;
                    state_.sp = saved_sp;
                    return r;
                }
                case Op::Br:
                    bb = val(in.a) != 0 ? in.bb_true : in.bb_false;
                    goto next_block;
                case Op::Jmp:
                    bb = in.bb_true;
                    goto next_block;
                }
            }
            throw SimError{"interp: fell off block end"};
        next_block:;
        }
    }

    static u64 binop(BinKind k, u64 a, u64 b)
    {
        const i64 sa = static_cast<i64>(a), sb = static_cast<i64>(b);
        switch (k) {
        case BinKind::Add: return a + b;
        case BinKind::Sub: return a - b;
        case BinKind::Mul: return a * b;
        case BinKind::DivS:
            if (sb == 0) return ~u64{0};
            if (sa == std::numeric_limits<i64>::min() && sb == -1) return a;
            return static_cast<u64>(sa / sb);
        case BinKind::DivU: return b == 0 ? ~u64{0} : a / b;
        case BinKind::RemS:
            if (sb == 0) return a;
            if (sa == std::numeric_limits<i64>::min() && sb == -1) return 0;
            return static_cast<u64>(sa % sb);
        case BinKind::RemU: return b == 0 ? a : a % b;
        case BinKind::And: return a & b;
        case BinKind::Or: return a | b;
        case BinKind::Xor: return a ^ b;
        case BinKind::Shl: return a << (b & 63);
        case BinKind::ShrL: return a >> (b & 63);
        case BinKind::ShrA: return static_cast<u64>(sa >> (b & 63));
        }
        throw SimError{"interp: bad binop"};
    }

    static u64 cmpop(CmpKind k, u64 a, u64 b)
    {
        const i64 sa = static_cast<i64>(a), sb = static_cast<i64>(b);
        switch (k) {
        case CmpKind::Eq: return a == b;
        case CmpKind::Ne: return a != b;
        case CmpKind::LtS: return sa < sb;
        case CmpKind::LeS: return sa <= sb;
        case CmpKind::GtS: return sa > sb;
        case CmpKind::GeS: return sa >= sb;
        case CmpKind::LtU: return a < b;
        case CmpKind::GeU: return a >= b;
        }
        throw SimError{"interp: bad cmp"};
    }

    const Module& module_;
    InterpOptions opts_;
    InterpState state_;
};

} // namespace

InterpResult interpret(const Module& module, InterpOptions opts)
{
    verify(module);
    const Function* main = module.find_function("main");
    if (!main || main->return_type() != Ty::I64 || !main->params().empty())
        throw common::ToolchainError{"interp: module needs main() -> i64"};
    Interp interp{module, opts};
    return interp.run();
}

} // namespace hwst::mir
