// Client side of the campaign-server protocol: a connected Unix-socket
// session speaking newline-delimited JSON (serve/wire.hpp). Two tiers:
// Client is a thin single-connection seam (one fd, no policy);
// ResilientClient wraps it with the failure policy hwst_run's client
// modes need — connect/read/write deadlines, reconnect with
// exponential backoff and decorrelated jitter, `overloaded`
// backpressure honoring retry_after_ms, and idempotent resubmission
// (retried submits carry {"dedup":true} so a lost reply can never
// double-run a grid).
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "common/error.hpp"
#include "serve/wire.hpp"

namespace hwst::serve {

using common::u64;

class Client {
public:
    /// Connect to the server socket; throws common::ToolchainError when
    /// nothing is listening there. connect_timeout_ms bounds the
    /// connect itself (-1 = block); io_timeout_ms arms kernel
    /// read+write deadlines on the session (0 = none) — an expired read
    /// surfaces as a closed connection from recv().
    explicit Client(const std::string& socket_path,
                    int connect_timeout_ms = -1,
                    unsigned io_timeout_ms = 0);
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Send one request line. False when the server is gone (or the
    /// write deadline expired).
    bool send(const exec::json::Value& req);

    /// The next response/event object, or nullopt when the server
    /// closed the connection or the read deadline expired.
    std::optional<exec::json::Value> recv();

    /// send + one recv; throws common::ToolchainError on a dropped
    /// connection or an {"ok":false} reply.
    exec::json::Value rpc(const exec::json::Value& req);

private:
    int fd_ = -1;
    LineReader reader_;
};

/// A poll/wait named a campaign id the server does not know — the
/// normal aftermath of a server restart without --recover. Recoverable:
/// the right client move is to resubmit the grid, not to give up.
struct UnknownCampaign : common::ToolchainError {
    using common::ToolchainError::ToolchainError;
};

struct ClientOptions {
    std::string socket_path;
    int connect_timeout_ms = 2000;
    /// Kernel read/write deadline per session. Wait streams emit a
    /// keepalive progress event about every second, so a read that
    /// sits longer than this means a dead server, not a quiet
    /// campaign.
    unsigned io_timeout_ms = 15000;
    /// Total connection attempts per operation before giving up.
    unsigned max_attempts = 8;
    unsigned backoff_base_ms = 50;
    unsigned backoff_cap_ms = 2000;
    /// Deterministic jitter stream (tests pin it; 0 = fixed default).
    u64 jitter_seed = 0;
};

/// The failure-policy wrapper: every operation transparently
/// reconnects (exponential backoff, decorrelated jitter) and honors
/// `overloaded` replies by sleeping the server-advised retry_after_ms.
/// Progress resets the attempt budget, so a long campaign survives any
/// number of server restarts as long as each reconnect eventually
/// lands.
class ResilientClient {
public:
    explicit ResilientClient(ClientOptions opts);
    ~ResilientClient();
    ResilientClient(const ResilientClient&) = delete;
    ResilientClient& operator=(const ResilientClient&) = delete;

    const ClientOptions& options() const { return opts_; }

    /// One request/reply with reconnect + backpressure policy. Throws
    /// UnknownCampaign on an `unknown_campaign` refusal,
    /// common::ToolchainError on any other refusal or once
    /// max_attempts is exhausted.
    exec::json::Value rpc(const exec::json::Value& req);

    /// Submit a grid ({"bench","workloads","schemes",...} — the
    /// GridSpec vocabulary). Retried sends carry {"dedup":true}: if
    /// the first submit was accepted but its reply lost, the server
    /// answers with the live campaign instead of running it twice.
    exec::json::Value submit(const exec::json::Value& grid);

    /// Stream a campaign to completion; returns the finished event.
    /// on_progress (may be null) sees every progress event, including
    /// replays after a reconnect. A dropped connection re-sends the
    /// wait — the server streams idempotently by id.
    exec::json::Value wait(
        const std::string& id,
        const std::function<void(const exec::json::Value&)>& on_progress);

    u64 reconnects() const { return reconnects_; }

private:
    Client& ensure_connected();
    void drop();
    void backoff_sleep();
    u64 next_jitter(u64 bound);

    ClientOptions opts_;
    std::unique_ptr<Client> conn_;
    u64 prng_state_ = 0;
    u64 prev_sleep_ms_ = 0;
    u64 reconnects_ = 0;
};

/// The socket path hwst_run's client modes resolve: --socket wins, then
/// the HWST_SERVE_SOCKET environment variable (hwst_serve --run exports
/// it to its child command).
std::string resolve_socket(const std::string& flag_value);

} // namespace hwst::serve
