// Client side of the campaign-server protocol: a connected Unix-socket
// session speaking newline-delimited JSON (serve/wire.hpp). Thin by
// design — hwst_run's --submit/--poll/--wait modes and the tests drive
// the protocol through this one seam.
#pragma once

#include <optional>
#include <string>

#include "serve/wire.hpp"

namespace hwst::serve {

class Client {
public:
    /// Connect to the server socket; throws common::ToolchainError when
    /// nothing is listening there.
    explicit Client(const std::string& socket_path);
    ~Client();
    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Send one request line. False when the server is gone.
    bool send(const exec::json::Value& req);

    /// The next response/event object, or nullopt when the server
    /// closed the connection.
    std::optional<exec::json::Value> recv();

    /// send + one recv; throws common::ToolchainError on a dropped
    /// connection or an {"ok":false} reply.
    exec::json::Value rpc(const exec::json::Value& req);

private:
    int fd_ = -1;
    LineReader reader_;
};

/// The socket path hwst_run's client modes resolve: --socket wins, then
/// the HWST_SERVE_SOCKET environment variable (hwst_serve --run exports
/// it to its child command).
std::string resolve_socket(const std::string& flag_value);

} // namespace hwst::serve
