// Content-addressed result cache (docs/serving.md): finished Ok cells
// from any campaign, keyed by everything that determines the simulated
// numbers — (bench, grid_hash, job key, seed, git_rev) — and stored as
// journal-format records, one JSON file per cell. A warm cache serves a
// repeated grid instead of recomputing it; the envelope stays
// bit-identical modulo host-side fields because a cell record round
// trips through the same outcome_to_record/outcome_from_record pair the
// checkpoint journal uses.
//
// On-disk layout under the cache root:
//   cells/<16-hex-address>.json   published cells (content-addressed)
//   tmp/<address>.<pid>.<n>       in-flight writes (publish = rename)
//
// Publishing is atomic: a cell is written to tmp/ and rename(2)d into
// cells/, so concurrent publishers — worker threads, several campaign
// processes, the server — can never tear a record; the last writer of
// one address wins with a bit-identical cell. Eviction is LRU by mtime
// under a byte budget; a hit refreshes its cell's mtime.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "exec/cli.hpp"
#include "exec/engine.hpp"

namespace hwst::exec {
class Campaign;
}

namespace hwst::serve {

using common::u64;

/// Cell record format revision (bumped with exec::kJournalVersion
/// semantics: readers reject other versions as a miss).
inline constexpr int kCacheVersion = 1;

struct CacheOptions {
    std::string root;    ///< cache directory (created if missing)
    u64 max_bytes = 0;   ///< LRU eviction bound (0 = unbounded)
    std::string git_rev; ///< producer revision stamped into cells
};

/// Everything that addresses one cell. bench + grid_hash name the
/// campaign (the grid fingerprint already folds the config revision,
/// journal.hpp), key + seed name the cell inside it, git_rev pins the
/// producing binary — a rebuilt simulator can never serve stale cells.
struct CellKey {
    std::string bench;
    std::string grid_hash; ///< hash_hex(grid_fingerprint(...))
    std::string key;       ///< the job's journal key
    u64 seed = 0;
    std::string git_rev;

    /// The 64-bit content address the cell file is named after.
    u64 address() const;
};

/// The shared on-disk store. Thread-safe; one instance may be shared by
/// many campaigns at once (the server binds every submitted campaign to
/// one root via CampaignCache).
class ResultCache {
public:
    /// Creates root/cells and root/tmp; throws common::ToolchainError
    /// when the root cannot be created.
    explicit ResultCache(CacheOptions opts);

    const CacheOptions& options() const { return opts_; }

    /// The published outcome for `key`, or nullopt. A hit refreshes the
    /// cell's mtime (LRU) and revalidates the stored key fields — an
    /// address collision or git_rev mismatch reads as a miss.
    std::optional<exec::JobOutcome> load(const CellKey& key);

    /// Publish one finished Ok outcome (write-temp + rename). Failures
    /// degrade to a warning on stderr — the campaign keeps running.
    void store(const CellKey& key, const exec::JobOutcome& outcome);

    /// Evict least-recently-used cells until the store fits max_bytes.
    /// Called by store(); exposed for tests.
    void evict_over_budget();

    /// Remove leftover tmp/ files (the artifact of a publisher SIGKILLed
    /// between write and rename). Safe against live publishers only when
    /// no store() is concurrently in flight — the server calls it once
    /// during --recover, before any worker starts. Returns the count.
    std::size_t sweep_dangling_temps();

    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    u64 misses() const { return misses_.load(std::memory_order_relaxed); }
    u64 stores() const { return stores_.load(std::memory_order_relaxed); }
    u64 evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    /// {"root","hits","misses","stores","evictions"} — the host-side
    /// payload behind every envelope's stripped "cache" field.
    exec::json::Value stats_json() const;

private:
    std::string cell_path(u64 address) const;

    CacheOptions opts_;
    std::mutex mutex_; ///< serializes store+evict bookkeeping
    u64 approx_bytes_ = 0;
    unsigned temp_counter_ = 0;
    std::atomic<u64> hits_{0};
    std::atomic<u64> misses_{0};
    std::atomic<u64> stores_{0};
    std::atomic<u64> evictions_{0};
};

/// One campaign's binding onto a shared ResultCache: fixes the
/// (bench, grid_hash, git_rev) half of every CellKey so the exec engine
/// — which knows only Jobs — can hit the store through the CellStore
/// interface.
class CampaignCache final : public exec::CellStore {
public:
    CampaignCache(std::shared_ptr<ResultCache> cache, std::string bench,
                  u64 fingerprint);

    std::optional<exec::JobOutcome> load(const exec::Job& job) override;
    void store(const exec::Job& job,
               const exec::JobOutcome& outcome) override;
    exec::json::Value stats_json() const override;

    ResultCache& cache() { return *cache_; }

private:
    CellKey key_for(const exec::Job& job) const;

    std::shared_ptr<ResultCache> cache_;
    std::string bench_;
    std::string grid_hash_;
};

/// The one-liner harnesses use: build the campaign's cache binding from
/// --cache/--cache-mb (or the HWST_CACHE / HWST_CACHE_MB environment,
/// so presets can opt whole runs in), or nullptr when no cache was
/// requested. The binding stamps exec::build_git_rev() into every cell.
std::unique_ptr<exec::CellStore> open_cache(const exec::GridOptions& grid,
                                            const std::string& bench,
                                            u64 fingerprint);

/// attach_cache(open_cache(...)) for the Campaign scaffold.
void attach_cache(exec::Campaign& campaign, const exec::GridOptions& grid);

/// Write `text` to `path` and fsync before returning — the building
/// block of every atomic publish in the serving tier (cache cells, the
/// server's campaign state files): write a temp sibling with this, then
/// rename(2) over the final name.
bool write_file_synced(const std::string& path, const std::string& text);

// ---- auditing (json_check --cache) -----------------------------------

struct CacheAudit {
    u64 cells = 0;
    u64 bytes = 0;
    u64 dangling_tmp = 0; ///< leftover tmp/ files (crashed publishers)
    u64 invalid = 0;      ///< cells that fail to parse or round-trip
    u64 stale = 0;        ///< cells whose git_rev != the expected one
    std::vector<std::string> problems; ///< one line per invalid/stale cell

    bool ok() const { return invalid == 0 && stale == 0; }
};

/// Walk a cache root validating every published cell: JSON parses,
/// cache_version matches, the stored address fields re-hash to the file
/// name, and the record decodes through outcome_from_record. A
/// non-empty `expect_rev` additionally flags cells from other builds.
CacheAudit audit_cache(const std::string& root,
                       const std::string& expect_rev = {});

} // namespace hwst::serve
