#include "serve/cache.hpp"

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "exec/envelope.hpp"
#include "exec/journal.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define HWST_CACHE_POSIX 1
#endif

namespace hwst::serve {

namespace fs = std::filesystem;

u64 CellKey::address() const
{
    return exec::derive_seed(exec::fnv1a(bench), exec::fnv1a(grid_hash),
                             exec::fnv1a(key), seed,
                             exec::fnv1a(git_rev));
}

namespace {

/// The cell document published for one outcome.
exec::json::Value cell_to_json(const CellKey& key,
                               const exec::JobOutcome& outcome)
{
    exec::json::Value v = exec::json::Value::object();
    v["cache_version"] = kCacheVersion;
    v["bench"] = key.bench;
    v["grid_hash"] = key.grid_hash;
    v["key"] = key.key;
    v["seed"] = key.seed;
    v["git_rev"] = key.git_rev;
    v["record"] = exec::outcome_to_record(key.key, outcome);
    return v;
}

/// Validate a parsed cell against the key that addressed it and decode
/// the record. Returns nullopt (a miss) on any mismatch — an address
/// collision, another build's cell, a future format.
std::optional<exec::JobOutcome> cell_from_json(const exec::json::Value& v,
                                               const CellKey& key)
{
    if (v.at("cache_version").as_int() != kCacheVersion)
        return std::nullopt;
    if (v.at("bench").as_string() != key.bench ||
        v.at("grid_hash").as_string() != key.grid_hash ||
        v.at("key").as_string() != key.key ||
        static_cast<u64>(v.at("seed").as_int()) != key.seed ||
        v.at("git_rev").as_string() != key.git_rev)
        return std::nullopt;
    auto [rec_key, outcome] = exec::outcome_from_record(v.at("record"));
    if (rec_key != key.key || outcome.status != exec::JobStatus::Ok)
        return std::nullopt;
    return outcome;
}

u64 file_size_or_zero(const fs::path& p)
{
    std::error_code ec;
    const auto n = fs::file_size(p, ec);
    return ec ? 0 : static_cast<u64>(n);
}

} // namespace

// Write `text` to `path` and flush it to disk before returning, so the
// rename that follows publishes a complete file even across a crash.
bool write_file_synced(const std::string& path, const std::string& text)
{
#ifdef HWST_CACHE_POSIX
    const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd < 0) return false;
    std::size_t off = 0;
    while (off < text.size()) {
        const ::ssize_t n = ::write(fd, text.data() + off, text.size() - off);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) {
            ::close(fd);
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    const bool synced = ::fsync(fd) == 0;
    ::close(fd);
    return synced;
#else
    std::ofstream out{path, std::ios::binary | std::ios::trunc};
    out << text;
    return static_cast<bool>(out);
#endif
}

ResultCache::ResultCache(CacheOptions opts) : opts_{std::move(opts)}
{
    std::error_code ec;
    fs::create_directories(fs::path{opts_.root} / "cells", ec);
    fs::create_directories(fs::path{opts_.root} / "tmp", ec);
    if (ec)
        throw common::ToolchainError{"cannot create cache root " +
                                     opts_.root + ": " + ec.message()};
    for (const auto& e : fs::directory_iterator{
             fs::path{opts_.root} / "cells", ec})
        approx_bytes_ += file_size_or_zero(e.path());
}

std::string ResultCache::cell_path(u64 address) const
{
    // hash_hex gives "0x%016x"; the file name drops the prefix.
    return (fs::path{opts_.root} / "cells" /
            (exec::hash_hex(address).substr(2) + ".json"))
        .string();
}

std::optional<exec::JobOutcome> ResultCache::load(const CellKey& key)
{
    const fs::path path = cell_path(key.address());
    std::ifstream in{path, std::ios::binary};
    if (!in) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::optional<exec::JobOutcome> outcome;
    try {
        outcome = cell_from_json(exec::json::Value::parse(buf.str()), key);
    } catch (const std::exception&) {
        outcome = std::nullopt; // torn or foreign cell: a miss
    }
    if (!outcome) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return std::nullopt;
    }
    // LRU refresh: a served cell is the last to go under pressure.
    std::error_code ec;
    fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return outcome;
}

void ResultCache::store(const CellKey& key, const exec::JobOutcome& outcome)
{
    if (outcome.status != exec::JobStatus::Ok) return;
    const std::string text = cell_to_json(key, outcome).dump(2) + "\n";
    const u64 address = key.address();
    fs::path temp;
    {
        const std::lock_guard lock{mutex_};
        temp = fs::path{opts_.root} / "tmp" /
               (exec::hash_hex(address).substr(2) + "." +
                std::to_string(
#ifdef HWST_CACHE_POSIX
                    static_cast<long>(::getpid())
#else
                    0L
#endif
                        ) +
                "." + std::to_string(temp_counter_++));
    }
    if (!write_file_synced(temp.string(), text)) {
        std::cerr << "[cache] cannot write " << temp.string()
                  << "; cell not published\n";
        std::error_code ec;
        fs::remove(temp, ec);
        return;
    }
    std::error_code ec;
    fs::rename(temp, cell_path(address), ec);
    if (ec) {
        std::cerr << "[cache] cannot publish " << cell_path(address) << ": "
                  << ec.message() << '\n';
        fs::remove(temp, ec);
        return;
    }
    stores_.fetch_add(1, std::memory_order_relaxed);
    {
        const std::lock_guard lock{mutex_};
        approx_bytes_ += text.size();
    }
    if (opts_.max_bytes != 0) evict_over_budget();
}

void ResultCache::evict_over_budget()
{
    if (opts_.max_bytes == 0) return;
    const std::lock_guard lock{mutex_};
    if (approx_bytes_ <= opts_.max_bytes) return;

    struct Entry {
        fs::path path;
        fs::file_time_type mtime;
        u64 bytes = 0;
    };
    std::vector<Entry> entries;
    u64 total = 0;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator{
             fs::path{opts_.root} / "cells", ec}) {
        Entry entry{e.path(), fs::file_time_type::min(),
                    file_size_or_zero(e.path())};
        std::error_code mec;
        entry.mtime = fs::last_write_time(e.path(), mec);
        total += entry.bytes;
        entries.push_back(std::move(entry));
    }
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) {
                  return a.mtime < b.mtime;
              });
    for (const Entry& e : entries) {
        if (total <= opts_.max_bytes) break;
        std::error_code rec;
        if (fs::remove(e.path, rec)) {
            total -= std::min(total, e.bytes);
            evictions_.fetch_add(1, std::memory_order_relaxed);
        }
    }
    approx_bytes_ = total;
}

std::size_t ResultCache::sweep_dangling_temps()
{
    const std::lock_guard lock{mutex_};
    std::size_t swept = 0;
    std::error_code ec;
    for (const auto& e :
         fs::directory_iterator{fs::path{opts_.root} / "tmp", ec}) {
        std::error_code rec;
        if (fs::remove(e.path(), rec)) ++swept;
    }
    return swept;
}

exec::json::Value ResultCache::stats_json() const
{
    exec::json::Value v = exec::json::Value::object();
    v["root"] = opts_.root;
    v["hits"] = hits();
    v["misses"] = misses();
    v["stores"] = stores();
    v["evictions"] = evictions();
    return v;
}

CampaignCache::CampaignCache(std::shared_ptr<ResultCache> cache,
                             std::string bench, u64 fingerprint)
    : cache_{std::move(cache)},
      bench_{std::move(bench)},
      grid_hash_{exec::hash_hex(fingerprint)}
{
}

CellKey CampaignCache::key_for(const exec::Job& job) const
{
    return CellKey{
        .bench = bench_,
        .grid_hash = grid_hash_,
        .key = job.key,
        .seed = job.seed,
        .git_rev = cache_->options().git_rev,
    };
}

std::optional<exec::JobOutcome> CampaignCache::load(const exec::Job& job)
{
    return cache_->load(key_for(job));
}

void CampaignCache::store(const exec::Job& job,
                          const exec::JobOutcome& outcome)
{
    cache_->store(key_for(job), outcome);
}

exec::json::Value CampaignCache::stats_json() const
{
    return cache_->stats_json();
}

std::unique_ptr<exec::CellStore> open_cache(const exec::GridOptions& grid,
                                            const std::string& bench,
                                            u64 fingerprint)
{
    std::string root = grid.cache_dir;
    if (root.empty()) {
        if (const char* env = std::getenv("HWST_CACHE")) root = env;
    }
    if (root.empty()) return nullptr;
    u64 max_bytes = grid.cache_mb << 20;
    if (max_bytes == 0) {
        if (const char* env = std::getenv("HWST_CACHE_MB"))
            max_bytes = std::strtoull(env, nullptr, 10) << 20;
    }
    auto cache = std::make_shared<ResultCache>(CacheOptions{
        .root = std::move(root),
        .max_bytes = max_bytes,
        .git_rev = exec::build_git_rev(),
    });
    return std::make_unique<CampaignCache>(std::move(cache), bench,
                                           fingerprint);
}

void attach_cache(exec::Campaign& campaign, const exec::GridOptions& grid)
{
    campaign.attach_cache(
        open_cache(grid, campaign.bench(), campaign.fingerprint()));
}

CacheAudit audit_cache(const std::string& root,
                       const std::string& expect_rev)
{
    CacheAudit audit;
    std::error_code ec;
    for (const auto& e :
         fs::directory_iterator{fs::path{root} / "tmp", ec}) {
        ++audit.dangling_tmp;
        audit.problems.push_back("dangling temp: " + e.path().string());
    }
    for (const auto& e :
         fs::directory_iterator{fs::path{root} / "cells", ec}) {
        ++audit.cells;
        audit.bytes += file_size_or_zero(e.path());
        const std::string name = e.path().filename().string();
        try {
            std::ifstream in{e.path(), std::ios::binary};
            std::ostringstream buf;
            buf << in.rdbuf();
            const auto v = exec::json::Value::parse(buf.str());
            if (v.at("cache_version").as_int() != kCacheVersion)
                throw common::ToolchainError{
                    "cache_version " +
                    std::to_string(v.at("cache_version").as_int())};
            const CellKey key{
                .bench = v.at("bench").as_string(),
                .grid_hash = v.at("grid_hash").as_string(),
                .key = v.at("key").as_string(),
                .seed = static_cast<u64>(v.at("seed").as_int()),
                .git_rev = v.at("git_rev").as_string(),
            };
            // The address fields must re-hash to the file's own name:
            // a renamed or hand-edited cell is invalid, not just stale.
            if (exec::hash_hex(key.address()).substr(2) + ".json" != name)
                throw common::ToolchainError{"address mismatch"};
            auto [rec_key, outcome] =
                exec::outcome_from_record(v.at("record"));
            if (rec_key != key.key)
                throw common::ToolchainError{"record key mismatch"};
            if (outcome.status != exec::JobStatus::Ok)
                throw common::ToolchainError{"non-ok cached outcome"};
            if (!expect_rev.empty() && key.git_rev != expect_rev) {
                ++audit.stale;
                audit.problems.push_back("stale cell " + name +
                                         ": git_rev " + key.git_rev +
                                         " != " + expect_rev);
            }
        } catch (const std::exception& ex) {
            ++audit.invalid;
            audit.problems.push_back("invalid cell " + name + ": " +
                                     ex.what());
        }
    }
    return audit;
}

} // namespace hwst::serve
