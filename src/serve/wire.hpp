// Newline-delimited JSON framing over a Unix-domain stream socket — the
// whole wire format of the campaign server (docs/serving.md,
// "Protocol"). One request or event per line, serialized with
// exec::json (insertion-ordered, so captured transcripts diff cleanly).
// Mechanism only: what the messages mean lives in server.cpp/client.cpp.
#pragma once

#include <optional>
#include <string>

#include "exec/json.hpp"

namespace hwst::serve {

/// True when the host supports AF_UNIX sockets (POSIX). Server/Client
/// constructors throw common::ToolchainError otherwise.
bool serving_supported();

/// Serialize `v` compactly and write it + '\n' to `fd`, retrying short
/// writes. Returns false on a closed or failed peer (SIGPIPE is
/// suppressed; a dropped client must never kill the server).
bool send_line(int fd, const exec::json::Value& v);

/// Incremental line reader over a blocking fd.
class LineReader {
public:
    explicit LineReader(int fd) : fd_{fd} {}

    /// The next complete line (without the '\n'), or nullopt on EOF /
    /// error. Blocks until one arrives.
    std::optional<std::string> read_line();

    /// read_line + parse. nullopt on EOF; a line that is not valid
    /// JSON returns a {"error": ...} object instead of throwing, so a
    /// malformed client cannot take a handler down.
    std::optional<exec::json::Value> read_json();

private:
    int fd_;
    std::string buf_;
};

/// Connect to the Unix socket at `path`. Returns -1 on failure.
int connect_unix(const std::string& path);

/// Bind + listen on `path` (unlinking a stale socket first).
/// Returns -1 on failure.
int listen_unix(const std::string& path, int backlog = 64);

} // namespace hwst::serve
