// Newline-delimited JSON framing over a Unix-domain stream socket — the
// whole wire format of the campaign server (docs/serving.md,
// "Protocol"). One request or event per line, serialized with
// exec::json (insertion-ordered, so captured transcripts diff cleanly).
// Mechanism only: what the messages mean lives in server.cpp/client.cpp.
//
// Robustness contract: every syscall in this layer retries EINTR (a
// stray signal must never read as a dead peer), a kernel-level send
// deadline (set_io_timeouts) turns a stalled reader into a clean false
// from send_line instead of a wedged writer, and read_line caps the
// frame length so a hostile or broken peer cannot grow the buffer
// without bound.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

#include "exec/json.hpp"

namespace hwst::serve {

/// True when the host supports AF_UNIX sockets (POSIX). Server/Client
/// constructors throw common::ToolchainError otherwise.
bool serving_supported();

/// Longest accepted wire frame. A line that exceeds it is a protocol
/// violation: read_line gives up on the connection (8 MiB comfortably
/// holds the largest finished event a real grid produces).
inline constexpr std::size_t kMaxLineBytes = 8u << 20;

/// Serialize `v` compactly and write it + '\n' to `fd`, retrying short
/// writes and EINTR. Returns false on a closed or failed peer — or on
/// an expired send deadline (set_io_timeouts), in which case errno is
/// EAGAIN/EWOULDBLOCK so the caller can account the slow client.
/// SIGPIPE is suppressed; a dropped client must never kill the server.
bool send_line(int fd, const exec::json::Value& v);

/// Write raw bytes to `fd` with the same retry/EINTR/SIGPIPE contract
/// as send_line — the building block of the wire fuzzers, which need
/// to put torn and malformed frames on a socket that the JSON-typed
/// API refuses to produce.
bool send_raw(int fd, const std::string& bytes);

/// Incremental line reader over a blocking fd.
class LineReader {
public:
    explicit LineReader(int fd, std::size_t max_line = kMaxLineBytes)
        : fd_{fd}, max_line_{max_line}
    {
    }

    /// The next complete line (without the '\n'), or nullopt on EOF /
    /// error / an expired receive deadline / an over-long frame.
    /// Blocks until one arrives; EINTR is retried.
    std::optional<std::string> read_line();

    /// read_line + parse. nullopt on EOF; a line that is not valid
    /// JSON returns a {"error": ...} object instead of throwing, so a
    /// malformed client cannot take a handler down.
    std::optional<exec::json::Value> read_json();

    /// True when the last read_line failure was an over-long frame —
    /// a protocol violation, not a benign EOF.
    bool overflowed() const { return overflowed_; }

private:
    int fd_;
    std::size_t max_line_;
    bool overflowed_ = false;
    std::string buf_;
};

/// Connect to the Unix socket at `path`. Returns -1 on failure.
/// timeout_ms > 0 bounds the connect itself (non-blocking connect +
/// poll); <= 0 blocks like plain connect(2).
int connect_unix(const std::string& path, int timeout_ms = -1);

/// Bind + listen on `path` (unlinking a stale socket first).
/// Returns -1 on failure.
int listen_unix(const std::string& path, int backlog = 64);

/// Kernel-level IO deadlines (SO_RCVTIMEO / SO_SNDTIMEO; 0 leaves a
/// side unbounded). A blocking read/write past its deadline fails with
/// EAGAIN, which this layer reports as a failed peer — the policy the
/// server's slow-client write deadline and the client's read timeout
/// both build on.
void set_io_timeouts(int fd, unsigned recv_ms, unsigned send_ms);

/// Shrink the kernel send buffer (chaos-testing knob: makes a stalled
/// reader hit the write deadline with small payloads). 0 is a no-op.
void set_sndbuf(int fd, int bytes);

/// close(2) for callers outside this layer (the fuzzers drive raw fds
/// without a Client). No-op on a negative fd or a non-POSIX host.
void close_fd(int fd);

} // namespace hwst::serve
