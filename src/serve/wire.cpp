#include "serve/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#define HWST_SERVE_POSIX 1
#endif

#include <cerrno>
#include <cstring>

namespace hwst::serve {

bool serving_supported()
{
#ifdef HWST_SERVE_POSIX
    return true;
#else
    return false;
#endif
}

#ifdef HWST_SERVE_POSIX

bool send_raw(int fd, const std::string& line)
{
    std::size_t off = 0;
    while (off < line.size()) {
#ifdef MSG_NOSIGNAL
        const ::ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                                   MSG_NOSIGNAL);
#else
        const ::ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
#endif
        if (n < 0 && errno == EINTR) continue; // a signal is not a peer
        if (n <= 0) return false; // dead peer, or EAGAIN: send deadline
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool send_line(int fd, const exec::json::Value& v)
{
    std::string line = v.dump(0);
    line.push_back('\n');
    return send_raw(fd, line);
}

std::optional<std::string> LineReader::read_line()
{
    for (;;) {
        const auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return line;
        }
        if (buf_.size() > max_line_) {
            // A frame longer than any legitimate message: protocol
            // violation. Give up on the connection rather than buffer
            // without bound.
            overflowed_ = true;
            buf_.clear();
            return std::nullopt;
        }
        char chunk[4096];
        const ::ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n < 0 && errno == EINTR) continue;
        if (n <= 0) return std::nullopt; // EOF, error, or recv deadline
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::optional<exec::json::Value> LineReader::read_json()
{
    const auto line = read_line();
    if (!line) return std::nullopt;
    try {
        return exec::json::Value::parse(*line);
    } catch (const exec::json::JsonError& e) {
        exec::json::Value err = exec::json::Value::object();
        err["error"] = std::string{"malformed request: "} + e.what();
        return err;
    }
}

namespace {

bool fill_addr(const std::string& path, ::sockaddr_un& addr)
{
    if (path.size() + 1 > sizeof addr.sun_path) return false;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

bool set_nonblocking(int fd, bool on)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0) return false;
    const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
    return ::fcntl(fd, F_SETFL, want) == 0;
}

} // namespace

int connect_unix(const std::string& path, int timeout_ms)
{
    ::sockaddr_un addr;
    if (!fill_addr(path, addr)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (timeout_ms > 0 && !set_nonblocking(fd, true)) {
        ::close(fd);
        return -1;
    }
    int rc;
    do {
        rc = ::connect(fd, reinterpret_cast<::sockaddr*>(&addr),
                       sizeof addr);
    } while (rc != 0 && errno == EINTR);
    if (rc != 0 && timeout_ms > 0 &&
        (errno == EINPROGRESS || errno == EAGAIN)) {
        // Bounded connect: wait for writability, then read the verdict.
        ::pollfd p{fd, POLLOUT, 0};
        int pr;
        do {
            pr = ::poll(&p, 1, timeout_ms);
        } while (pr < 0 && errno == EINTR);
        int err = 0;
        ::socklen_t len = sizeof err;
        if (pr == 1 &&
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) == 0 &&
            err == 0)
            rc = 0;
    }
    if (rc != 0 || (timeout_ms > 0 && !set_nonblocking(fd, false))) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int listen_unix(const std::string& path, int backlog)
{
    ::sockaddr_un addr;
    if (!fill_addr(path, addr)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    // A stale socket file from a dead server would fail the bind; a
    // live server holds the listen, so an unlink here is safe.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

void set_io_timeouts(int fd, unsigned recv_ms, unsigned send_ms)
{
    const auto to_tv = [](unsigned ms) {
        ::timeval tv{};
        tv.tv_sec = static_cast<long>(ms / 1000);
        tv.tv_usec = static_cast<long>((ms % 1000) * 1000);
        return tv;
    };
    if (recv_ms) {
        const ::timeval tv = to_tv(recv_ms);
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    }
    if (send_ms) {
        const ::timeval tv = to_tv(send_ms);
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
}

void set_sndbuf(int fd, int bytes)
{
    if (bytes <= 0) return;
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
}

void close_fd(int fd)
{
    if (fd >= 0) ::close(fd);
}

#else // !HWST_SERVE_POSIX

bool send_raw(int, const std::string&) { return false; }
bool send_line(int, const exec::json::Value&) { return false; }
std::optional<std::string> LineReader::read_line() { return std::nullopt; }
std::optional<exec::json::Value> LineReader::read_json()
{
    return std::nullopt;
}
int connect_unix(const std::string&, int) { return -1; }
int listen_unix(const std::string&, int) { return -1; }
void set_io_timeouts(int, unsigned, unsigned) {}
void set_sndbuf(int, int) {}
void close_fd(int) {}

#endif

} // namespace hwst::serve
