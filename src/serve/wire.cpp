#include "serve/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define HWST_SERVE_POSIX 1
#endif

#include <cstring>

namespace hwst::serve {

bool serving_supported()
{
#ifdef HWST_SERVE_POSIX
    return true;
#else
    return false;
#endif
}

#ifdef HWST_SERVE_POSIX

bool send_line(int fd, const exec::json::Value& v)
{
    std::string line = v.dump(0);
    line.push_back('\n');
    std::size_t off = 0;
    while (off < line.size()) {
#ifdef MSG_NOSIGNAL
        const ::ssize_t n = ::send(fd, line.data() + off, line.size() - off,
                                   MSG_NOSIGNAL);
#else
        const ::ssize_t n =
            ::write(fd, line.data() + off, line.size() - off);
#endif
        if (n <= 0) return false;
        off += static_cast<std::size_t>(n);
    }
    return true;
}

std::optional<std::string> LineReader::read_line()
{
    for (;;) {
        const auto nl = buf_.find('\n');
        if (nl != std::string::npos) {
            std::string line = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            return line;
        }
        char chunk[4096];
        const ::ssize_t n = ::read(fd_, chunk, sizeof chunk);
        if (n <= 0) return std::nullopt;
        buf_.append(chunk, static_cast<std::size_t>(n));
    }
}

std::optional<exec::json::Value> LineReader::read_json()
{
    const auto line = read_line();
    if (!line) return std::nullopt;
    try {
        return exec::json::Value::parse(*line);
    } catch (const exec::json::JsonError& e) {
        exec::json::Value err = exec::json::Value::object();
        err["error"] = std::string{"malformed request: "} + e.what();
        return err;
    }
}

namespace {

bool fill_addr(const std::string& path, ::sockaddr_un& addr)
{
    if (path.size() + 1 > sizeof addr.sun_path) return false;
    std::memset(&addr, 0, sizeof addr);
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return true;
}

} // namespace

int connect_unix(const std::string& path)
{
    ::sockaddr_un addr;
    if (!fill_addr(path, addr)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) !=
        0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int listen_unix(const std::string& path, int backlog)
{
    ::sockaddr_un addr;
    if (!fill_addr(path, addr)) return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    // A stale socket file from a dead server would fail the bind; a
    // live server holds the listen, so an unlink here is safe.
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<::sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(fd, backlog) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

#else // !HWST_SERVE_POSIX

bool send_line(int, const exec::json::Value&) { return false; }
std::optional<std::string> LineReader::read_line() { return std::nullopt; }
std::optional<exec::json::Value> LineReader::read_json()
{
    return std::nullopt;
}
int connect_unix(const std::string&) { return -1; }
int listen_unix(const std::string&, int) { return -1; }

#endif

} // namespace hwst::serve
