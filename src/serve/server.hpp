// The campaign server (docs/serving.md): a long-running daemon that
// accepts grid submissions over a Unix-domain socket, runs their cells
// on one shared worker pool through exec::run_one_job — the exact
// pipeline Engine::run schedules, retries/isolation/sentinel included —
// serves repeated cells from the shared content-addressed ResultCache,
// and streams per-campaign progress events back to each client.
//
// Protocol (newline-delimited JSON, serve/wire.hpp): a client sends one
// request object per line and reads response/event objects back.
//
//   {"op":"ping"}                      -> {"ok":true,...}
//   {"op":"stats"}                     -> {"ok":true,"campaigns":..,...}
//   {"op":"submit","grid":{...}}       -> {"ok":true,"id":"c1",...}
//                                      -> {"ok":false,"error":"overloaded",
//                                          "retry_after_ms":..} under load
//   {"op":"poll","id":"c1"}            -> {"ok":true,"state":..,...}
//   {"op":"wait","id":"c1"}            -> {"event":"progress",...}*
//                                         {"event":"finished",
//                                          "records":[...],...}
//
// The finished event carries one journal-format record per cell in grid
// order, so a client rebuilds the outcome vector bit-identically to an
// in-process run (the serve-smoke guard closes that loop with
// json_check --equiv). A SIGTERM drains gracefully: in-flight cells
// drain cooperatively, queued cells keep their Skipped slots, and every
// waiting client still gets its finished event — partial, exactly like
// a --resume'able local campaign (docs/execution.md "Durability").
//
// Hardening (docs/serving.md, "Surviving failure"): every accepted
// campaign is persisted to a state directory (grid spec + a per-campaign
// exec::Journal of finished cells), so a SIGKILLed server restarted with
// --recover resumes every campaign bit-identically through the same
// replay machinery --resume uses; admission control bounds the backlog
// (explicit `overloaded` replies with retry_after_ms, per-client
// in-flight caps) and a kernel write deadline drops a stalled reader
// instead of wedging its handler.
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "serve/cache.hpp"

namespace hwst::serve {

/// Campaign state-file format under the server's --state directory
/// (readers reject other versions and skip the campaign with a
/// warning, never crash).
inline constexpr int kStateVersion = 1;

/// The workload x scheme grid vocabulary a submission names — the same
/// grid hwst_run runs in-process. One definition builds the jobs and
/// the fingerprint on both sides of the socket, so a submitted
/// campaign's cells, keys and grid_hash can never drift from the local
/// equivalent (the bit-identical-envelope contract depends on it).
struct GridSpec {
    std::string bench = "hwst_run";
    std::vector<std::string> workloads;
    std::vector<std::string> schemes;
    unsigned keybuffer = 0;  ///< keybuffer_entries tweak (0 = default)
    unsigned dcache_kib = 0; ///< d-cache capacity tweak (0 = default)

    /// The grid-level knobs the job coordinates don't name, folded into
    /// grid_fingerprint's config_desc.
    std::string config_desc() const;

    /// One sim job per (workload, scheme), in enumeration order.
    /// Throws common::ToolchainError on an unknown name.
    std::vector<exec::Job> jobs() const;

    u64 fingerprint() const;

    exec::json::Value to_json() const;
    static GridSpec from_json(const exec::json::Value& v);
};

struct ServerOptions {
    std::string socket_path;
    std::string cache_root; ///< "" disables the result cache
    u64 cache_max_bytes = 0;
    /// Campaign state directory ("" disables crash recovery): every
    /// accepted campaign persists its grid spec and a per-campaign
    /// checkpoint journal here, atomically.
    std::string state_root;
    /// Reload campaigns from state_root on start(): finished cells
    /// replay from their journals, the rest re-queue. Requires
    /// state_root.
    bool recover = false;
    /// Admission bound: a submit that arrives while at least this many
    /// cells are already queued is refused with an `overloaded` reply
    /// (0 = unbounded). The backlog can exceed it by at most one grid.
    std::size_t max_queued_cells = 4096;
    /// Live (unfinished) campaigns one connection may have in flight
    /// before its submits are refused `overloaded` (0 = unbounded).
    unsigned max_client_inflight = 0;
    /// Slow-client write deadline: a streaming send blocked longer than
    /// this drops the connection (the campaign keeps running and stays
    /// waitable). 0 disables — a stalled reader can then wedge its
    /// handler thread until the socket buffer drains.
    unsigned write_deadline_ms = 5000;
    /// Chaos-testing knob: shrink each client socket's kernel send
    /// buffer so the write deadline is reachable with small payloads
    /// (0 = OS default).
    int sndbuf_bytes = 0;
    /// Per-cell execution options (jobs = pool width; journal must stay
    /// null — per-campaign journals live under state_root).
    exec::EngineOptions engine;
};

/// Rolling server counters (returned by the stats op).
struct ServerStats {
    u64 campaigns = 0;
    u64 cells = 0;
    u64 cached = 0;
    u64 run = 0;
    u64 recovered = 0;   ///< campaigns reloaded by --recover
    u64 replayed = 0;    ///< cells replayed from recovery journals
    u64 deduped = 0;     ///< submits answered with an existing campaign
    u64 overloaded = 0;  ///< submits shed by admission control
    u64 slow_client_drops = 0; ///< connections dropped at write deadline
    u64 queued = 0;      ///< current queue depth (cells)
};

class Server {
public:
    /// One submitted grid's server-side state (defined in server.cpp).
    struct Campaign;

    /// Validates options and resolves the engine environment; call
    /// start() to bind and serve. Throws common::ToolchainError when
    /// serving is unsupported on this host.
    explicit Server(ServerOptions opts);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind the socket, recover persisted campaigns when asked, spawn
    /// the worker pool and the accept loop.
    void start();

    /// Graceful drain (idempotent, callable from any thread): stop
    /// accepting, let in-flight cells finish, mark queued cells
    /// Skipped, deliver finished events, join everything, unlink the
    /// socket. Journals under state_root keep their finished cells, so
    /// a later --recover resumes exactly where the drain cut off.
    void stop();

    bool running() const { return started_ && !stopped_; }
    const std::string& socket_path() const { return opts_.socket_path; }

    ServerStats stats() const;
    exec::json::Value stats_json() const;

private:
    void accept_loop();
    void worker_loop();
    void handle_client(int fd);
    void recover_campaigns();
    void persist_campaign(const std::shared_ptr<Campaign>& c);
    void enqueue_pending(const std::shared_ptr<Campaign>& c,
                         const std::vector<std::size_t>& pending);
    exec::json::Value handle_submit(const exec::json::Value& req,
                                    int client_fd);
    exec::json::Value handle_poll(const exec::json::Value& req) const;
    bool handle_wait(int fd, const exec::json::Value& req);
    std::shared_ptr<Campaign> find_campaign(const std::string& id) const;

    ServerOptions opts_;
    exec::EngineOptions engine_; ///< resolved at construction
    std::shared_ptr<ResultCache> cache_; ///< null when disabled

    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> stop_flag_{false}; ///< wired into engine_.stop

    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    mutable std::mutex clients_mutex_;
    std::vector<std::thread> client_threads_;
    std::set<int> client_fds_;

    // Work queue: (campaign, cell index) pairs, FIFO across campaigns
    // so concurrent clients share the pool fairly.
    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<std::pair<std::shared_ptr<Campaign>, std::size_t>> queue_;

    mutable std::mutex campaigns_mutex_;
    std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
    u64 next_id_ = 0;

    std::atomic<u64> cells_total_{0};
    std::atomic<u64> cells_cached_{0};
    std::atomic<u64> cells_run_{0};
    std::atomic<u64> campaigns_recovered_{0};
    std::atomic<u64> cells_replayed_{0};
    std::atomic<u64> submits_deduped_{0};
    std::atomic<u64> submits_overloaded_{0};
    std::atomic<u64> slow_client_drops_{0};
};

} // namespace hwst::serve
