// The campaign server (docs/serving.md): a long-running daemon that
// accepts grid submissions over a Unix-domain socket, runs their cells
// on one shared worker pool through exec::run_one_job — the exact
// pipeline Engine::run schedules, retries/isolation/sentinel included —
// serves repeated cells from the shared content-addressed ResultCache,
// and streams per-campaign progress events back to each client.
//
// Protocol (newline-delimited JSON, serve/wire.hpp): a client sends one
// request object per line and reads response/event objects back.
//
//   {"op":"ping"}                      -> {"ok":true,...}
//   {"op":"stats"}                     -> {"ok":true,"campaigns":..,...}
//   {"op":"submit","grid":{...}}       -> {"ok":true,"id":"c1",...}
//   {"op":"poll","id":"c1"}            -> {"ok":true,"state":..,...}
//   {"op":"wait","id":"c1"}            -> {"event":"progress",...}*
//                                         {"event":"finished",
//                                          "records":[...],...}
//
// The finished event carries one journal-format record per cell in grid
// order, so a client rebuilds the outcome vector bit-identically to an
// in-process run (the serve-smoke guard closes that loop with
// json_check --equiv). A SIGTERM drains gracefully: in-flight cells
// drain cooperatively, queued cells keep their Skipped slots, and every
// waiting client still gets its finished event — partial, exactly like
// a --resume'able local campaign (docs/execution.md "Durability").
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "serve/cache.hpp"

namespace hwst::serve {

/// The workload x scheme grid vocabulary a submission names — the same
/// grid hwst_run runs in-process. One definition builds the jobs and
/// the fingerprint on both sides of the socket, so a submitted
/// campaign's cells, keys and grid_hash can never drift from the local
/// equivalent (the bit-identical-envelope contract depends on it).
struct GridSpec {
    std::string bench = "hwst_run";
    std::vector<std::string> workloads;
    std::vector<std::string> schemes;
    unsigned keybuffer = 0;  ///< keybuffer_entries tweak (0 = default)
    unsigned dcache_kib = 0; ///< d-cache capacity tweak (0 = default)

    /// The grid-level knobs the job coordinates don't name, folded into
    /// grid_fingerprint's config_desc.
    std::string config_desc() const;

    /// One sim job per (workload, scheme), in enumeration order.
    /// Throws common::ToolchainError on an unknown name.
    std::vector<exec::Job> jobs() const;

    u64 fingerprint() const;

    exec::json::Value to_json() const;
    static GridSpec from_json(const exec::json::Value& v);
};

struct ServerOptions {
    std::string socket_path;
    std::string cache_root; ///< "" disables the result cache
    u64 cache_max_bytes = 0;
    /// Per-cell execution options (jobs = pool width; journal must stay
    /// null — durability on the server side is the cache).
    exec::EngineOptions engine;
};

/// Rolling server counters (returned by the stats op).
struct ServerStats {
    u64 campaigns = 0;
    u64 cells = 0;
    u64 cached = 0;
    u64 run = 0;
};

class Server {
public:
    /// One submitted grid's server-side state (defined in server.cpp).
    struct Campaign;

    /// Validates options and resolves the engine environment; call
    /// start() to bind and serve. Throws common::ToolchainError when
    /// serving is unsupported on this host.
    explicit Server(ServerOptions opts);
    ~Server();
    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind the socket, spawn the worker pool and the accept loop.
    void start();

    /// Graceful drain (idempotent, callable from any thread): stop
    /// accepting, let in-flight cells finish, mark queued cells
    /// Skipped, deliver finished events, join everything, unlink the
    /// socket.
    void stop();

    bool running() const { return started_ && !stopped_; }
    const std::string& socket_path() const { return opts_.socket_path; }

    ServerStats stats() const;
    exec::json::Value stats_json() const;

private:
    void accept_loop();
    void worker_loop();
    void handle_client(int fd);
    exec::json::Value handle_submit(const exec::json::Value& req);
    exec::json::Value handle_poll(const exec::json::Value& req) const;
    bool handle_wait(int fd, const exec::json::Value& req);
    std::shared_ptr<Campaign> find_campaign(const std::string& id) const;

    ServerOptions opts_;
    exec::EngineOptions engine_; ///< resolved at construction
    std::shared_ptr<ResultCache> cache_; ///< null when disabled

    std::atomic<bool> started_{false};
    std::atomic<bool> stopped_{false};
    std::atomic<bool> stop_flag_{false}; ///< wired into engine_.stop

    int listen_fd_ = -1;
    std::thread accept_thread_;
    std::vector<std::thread> workers_;

    mutable std::mutex clients_mutex_;
    std::vector<std::thread> client_threads_;
    std::set<int> client_fds_;

    // Work queue: (campaign, cell index) pairs, FIFO across campaigns
    // so concurrent clients share the pool fairly.
    mutable std::mutex queue_mutex_;
    std::condition_variable queue_cv_;
    std::deque<std::pair<std::shared_ptr<Campaign>, std::size_t>> queue_;

    mutable std::mutex campaigns_mutex_;
    std::map<std::string, std::shared_ptr<Campaign>> campaigns_;
    u64 next_id_ = 0;

    std::atomic<u64> cells_total_{0};
    std::atomic<u64> cells_cached_{0};
    std::atomic<u64> cells_run_{0};
};

} // namespace hwst::serve
