#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string_view>

#include "common/error.hpp"
#include "compiler/scheme.hpp"
#include "exec/envelope.hpp"
#include "exec/journal.hpp"
#include "exec/report.hpp"
#include "exec/simrun.hpp"
#include "serve/wire.hpp"
#include "workloads/workload.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define HWST_SERVE_POSIX 1
#endif

namespace hwst::serve {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

// ---- GridSpec --------------------------------------------------------

std::string GridSpec::config_desc() const
{
    // Empty when no tweak is set, so an untweaked grid keeps the same
    // fingerprint as the plain grid_fingerprint(jobs) call sites.
    std::string d;
    if (keybuffer) d += " keybuffer=" + std::to_string(keybuffer);
    if (dcache_kib) d += " dcache_kib=" + std::to_string(dcache_kib);
    return d.empty() ? std::string{} : "tweaks:" + d;
}

std::vector<exec::Job> GridSpec::jobs() const
{
    if (workloads.empty() || schemes.empty())
        throw common::ToolchainError{
            "grid needs at least one workload and one scheme"};
    const unsigned kb = keybuffer;
    const unsigned dk = dcache_kib;
    const auto tweak = [kb, dk](sim::MachineConfig& cfg) {
        if (kb) cfg.keybuffer_entries = kb;
        if (dk) cfg.dcache.sets = dk * 1024 / 64 / 4;
    };
    std::vector<exec::Job> out;
    out.reserve(workloads.size() * schemes.size());
    for (const auto& name : workloads) {
        const auto& w = workloads::workload(name); // validates the name
        for (const auto& sname : schemes) {
            compiler::Scheme scheme = compiler::Scheme::None;
            bool found = false;
            for (const compiler::Scheme s : compiler::kAllSchemes) {
                if (compiler::scheme_name(s) == sname) {
                    scheme = s;
                    found = true;
                    break;
                }
            }
            if (!found)
                throw common::ToolchainError{"unknown scheme: " + sname};
            out.push_back(exec::make_sim_job(name + "/" + sname, name,
                                             scheme, w.build, tweak));
        }
    }
    return out;
}

u64 GridSpec::fingerprint() const
{
    return exec::grid_fingerprint(jobs(), 0, config_desc());
}

exec::json::Value GridSpec::to_json() const
{
    exec::json::Value v = exec::json::Value::object();
    v["bench"] = bench;
    exec::json::Value wl = exec::json::Value::array();
    for (const auto& w : workloads) wl.push_back(w);
    v["workloads"] = wl;
    exec::json::Value sc = exec::json::Value::array();
    for (const auto& s : schemes) sc.push_back(s);
    v["schemes"] = sc;
    if (keybuffer) v["keybuffer"] = keybuffer;
    if (dcache_kib) v["dcache_kib"] = dcache_kib;
    return v;
}

GridSpec GridSpec::from_json(const exec::json::Value& v)
{
    GridSpec spec;
    spec.bench = v.at("bench").as_string();
    if (spec.bench.empty())
        throw common::ToolchainError{"grid bench must be non-empty"};
    for (const auto& w : v.at("workloads").items())
        spec.workloads.push_back(w.as_string());
    for (const auto& s : v.at("schemes").items())
        spec.schemes.push_back(s.as_string());
    if (const auto* kb = v.find("keybuffer"))
        spec.keybuffer = static_cast<unsigned>(kb->as_int());
    if (const auto* dk = v.find("dcache_kib"))
        spec.dcache_kib = static_cast<unsigned>(dk->as_int());
    return spec;
}

// ---- Server::Campaign ------------------------------------------------

struct Server::Campaign {
    std::string id;
    GridSpec spec;
    u64 fingerprint = 0;
    std::vector<exec::Job> jobs;
    std::vector<exec::JobOutcome> outcomes;
    std::unique_ptr<CampaignCache> binding; ///< null without a cache
    /// Per-campaign checkpoint journal under the server's state root
    /// (null without --state): every finished cell is appended+fsync'd,
    /// so a SIGKILLed server replays it on --recover exactly like a
    /// local --resume.
    std::unique_ptr<exec::Journal> journal;
    int owner_fd = -1;     ///< submitting connection (per-client caps)
    bool recovered = false; ///< reloaded from the state directory

    mutable std::mutex mutex;
    std::condition_variable cv;
    std::size_t finished = 0; ///< resolved slots (cached + run + skipped)
    std::size_t running = 0;
    std::size_t cached = 0;
    std::size_t quarantined = 0;
    std::size_t failed = 0;
    bool done = false;
    bool drained = false; ///< finalized partial by a graceful stop
};

namespace {

struct Snapshot {
    std::size_t cells = 0;
    std::size_t finished = 0;
    std::size_t running = 0;
    std::size_t cached = 0;
    std::size_t quarantined = 0;
    std::size_t failed = 0;
    bool done = false;
    bool drained = false;

    bool operator==(const Snapshot&) const = default;
};

exec::json::Value error_reply(const std::string& what)
{
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = false;
    v["error"] = what;
    return v;
}

/// The structured backpressure reply: a shed submit names why and when
/// to come back, so a resilient client can sleep instead of guessing.
exec::json::Value overloaded_reply(const char* reason, u64 retry_after_ms,
                                   std::size_t queued)
{
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = false;
    v["error"] = "overloaded";
    v["reason"] = reason;
    v["retry_after_ms"] = retry_after_ms;
    v["queued"] = queued;
    return v;
}

/// Unknown campaign id: recoverable — after a server restart without
/// state the right client move is to resubmit, not to give up.
exec::json::Value unknown_campaign_reply(const std::string& id)
{
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = false;
    v["error"] = "unknown_campaign";
    v["recoverable"] = true;
    v["id"] = id;
    return v;
}

/// Caller holds c.mutex.
Snapshot snapshot_locked(const Server::Campaign& c)
{
    Snapshot s;
    s.cells = c.jobs.size();
    s.finished = c.finished;
    s.running = c.running;
    s.cached = c.cached;
    s.quarantined = c.quarantined;
    s.failed = c.failed;
    s.done = c.done;
    s.drained = c.drained;
    return s;
}

exec::json::Value progress_json(const std::string& id, const Snapshot& s)
{
    exec::json::Value v = exec::json::Value::object();
    v["event"] = "progress";
    v["id"] = id;
    v["submitted"] = s.cells;
    v["running"] = s.running;
    v["finished"] = s.finished;
    v["cached"] = s.cached;
    v["quarantined"] = s.quarantined;
    v["failed"] = s.failed;
    return v;
}

/// Default Skipped slots — what an unstarted cell reports after a
/// drain, and what a recovered journal overwrites.
void reset_outcomes(std::vector<exec::JobOutcome>& outcomes,
                    std::size_t cells)
{
    outcomes.assign(cells, exec::JobOutcome{});
    for (auto& o : outcomes) {
        o.status = exec::JobStatus::Skipped;
        o.error = "not started: shutdown requested";
        o.attempts = 0;
    }
}

std::string state_file(const std::string& root, const std::string& id)
{
    return (fs::path{root} / (id + ".grid.json")).string();
}

std::string journal_file(const std::string& root, const std::string& id)
{
    return (fs::path{root} / (id + ".journal")).string();
}

} // namespace

// ---- Server ----------------------------------------------------------

Server::Server(ServerOptions opts) : opts_{std::move(opts)}
{
    if (!serving_supported())
        throw common::ToolchainError{
            "the campaign server requires a POSIX host"};
    if (opts_.socket_path.empty())
        throw common::ToolchainError{"server needs a socket path"};
    if (opts_.engine.journal)
        throw common::ToolchainError{
            "per-cell engine journals are owned by the server's state "
            "directory, not the submitting client"};
    if (opts_.recover && opts_.state_root.empty())
        throw common::ToolchainError{"--recover needs a --state directory"};
    engine_ = exec::resolve_engine_options(opts_.engine);
    engine_.stop = &stop_flag_;
    engine_.progress = false; // progress goes to clients, not stderr
    if (!opts_.cache_root.empty())
        cache_ = std::make_shared<ResultCache>(CacheOptions{
            .root = opts_.cache_root,
            .max_bytes = opts_.cache_max_bytes,
            .git_rev = exec::build_git_rev(),
        });
    if (!opts_.state_root.empty()) {
        std::error_code ec;
        fs::create_directories(opts_.state_root, ec);
        if (ec)
            throw common::ToolchainError{"cannot create state root " +
                                         opts_.state_root + ": " +
                                         ec.message()};
    }
}

Server::~Server()
{
    stop();
}

void Server::start()
{
#ifdef HWST_SERVE_POSIX
    if (started_) return;
    // Recover before binding: a client that connects the instant the
    // socket exists already sees every resumed campaign.
    if (opts_.recover) recover_campaigns();
    listen_fd_ = listen_unix(opts_.socket_path);
    if (listen_fd_ < 0)
        throw common::ToolchainError{"cannot listen on " +
                                     opts_.socket_path};
    started_ = true;
    const unsigned pool = exec::resolve_jobs(engine_.jobs);
    workers_.reserve(pool);
    for (unsigned t = 0; t < pool; ++t)
        workers_.emplace_back(&Server::worker_loop, this);
    accept_thread_ = std::thread{&Server::accept_loop, this};
#else
    throw common::ToolchainError{"the campaign server requires a POSIX "
                                 "host"};
#endif
}

void Server::stop()
{
#ifdef HWST_SERVE_POSIX
    if (!started_ || stopped_.exchange(true)) return;
    stop_flag_.store(true);
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    // In-flight cells observe the stop flag and drain cooperatively;
    // join before finalizing so no worker writes after a finished
    // event goes out.
    for (auto& t : workers_)
        if (t.joinable()) t.join();
    {
        const std::lock_guard lock{queue_mutex_};
        queue_.clear(); // queued cells keep their default Skipped slots
    }
    {
        const std::lock_guard lock{campaigns_mutex_};
        for (auto& [id, c] : campaigns_) {
            const std::lock_guard clock{c->mutex};
            if (!c->done) {
                c->drained = true;
                c->done = true;
            }
            c->cv.notify_all();
        }
    }
    // Unblock handler threads parked in read(); their pending writes
    // (the finished events above) still go through — bounded by the
    // write deadline, so a stalled reader cannot wedge the drain.
    {
        const std::lock_guard lock{clients_mutex_};
        for (const int fd : client_fds_) ::shutdown(fd, SHUT_RD);
    }
    for (;;) {
        std::thread t;
        {
            const std::lock_guard lock{clients_mutex_};
            if (client_threads_.empty()) break;
            t = std::move(client_threads_.back());
            client_threads_.pop_back();
        }
        if (t.joinable()) t.join();
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
#endif
}

void Server::accept_loop()
{
#ifdef HWST_SERVE_POSIX
    while (!stop_flag_.load(std::memory_order_relaxed)) {
        ::pollfd p{listen_fd_, POLLIN, 0};
        const int r = ::poll(&p, 1, 100);
        if (r < 0 && errno != EINTR) continue; // transient; keep serving
        if (r <= 0 || !(p.revents & POLLIN)) continue;
        int fd;
        do {
            fd = ::accept(listen_fd_, nullptr, nullptr);
        } while (fd < 0 && errno == EINTR);
        if (fd < 0) continue;
        set_sndbuf(fd, opts_.sndbuf_bytes);
        set_io_timeouts(fd, 0, opts_.write_deadline_ms);
        const std::lock_guard lock{clients_mutex_};
        if (stop_flag_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        client_fds_.insert(fd);
        client_threads_.emplace_back(&Server::handle_client, this, fd);
    }
#endif
}

void Server::worker_loop()
{
    for (;;) {
        std::shared_ptr<Campaign> c;
        std::size_t index = 0;
        {
            std::unique_lock lock{queue_mutex_};
            queue_cv_.wait(lock, [&] {
                return stop_flag_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (stop_flag_.load(std::memory_order_relaxed)) return;
            c = std::move(queue_.front().first);
            index = queue_.front().second;
            queue_.pop_front();
        }
        {
            const std::lock_guard lock{c->mutex};
            ++c->running;
        }
        exec::EngineOptions opts = engine_;
        opts.cache = c->binding.get();
        opts.journal = c->journal.get();
        exec::JobOutcome out = exec::run_one_job(c->jobs[index], opts);
        cells_run_.fetch_add(1, std::memory_order_relaxed);
        {
            const std::lock_guard lock{c->mutex};
            c->outcomes[index] = std::move(out);
            --c->running;
            ++c->finished;
            switch (c->outcomes[index].status) {
            case exec::JobStatus::Quarantined: ++c->quarantined; break;
            case exec::JobStatus::Timeout:
            case exec::JobStatus::Error:
            case exec::JobStatus::Crashed: ++c->failed; break;
            case exec::JobStatus::Skipped:
                // The stop flag cut this cell short: it never ran and
                // was never journaled, so a --recover re-runs it. Keep
                // the slot counted as finished for this (drained) run.
                break;
            default: break;
            }
            if (c->finished == c->jobs.size()) c->done = true;
        }
        c->cv.notify_all();
    }
}

std::shared_ptr<Server::Campaign> Server::find_campaign(
    const std::string& id) const
{
    const std::lock_guard lock{campaigns_mutex_};
    const auto it = campaigns_.find(id);
    return it == campaigns_.end() ? nullptr : it->second;
}

void Server::persist_campaign(const std::shared_ptr<Campaign>& c)
{
    if (opts_.state_root.empty()) return;
    // Atomic publish (write-temp + fsync + rename), mirroring the
    // cache's cell discipline: a crash mid-submit leaves either no
    // state file or a complete one, never a torn spec.
    exec::json::Value v = exec::json::Value::object();
    v["state_version"] = kStateVersion;
    v["id"] = c->id;
    v["bench"] = c->spec.bench;
    v["grid_hash"] = exec::hash_hex(c->fingerprint);
    v["grid"] = c->spec.to_json();
    const std::string final_path = state_file(opts_.state_root, c->id);
    const std::string temp = final_path + ".tmp";
    if (!write_file_synced(temp, v.dump(2) + "\n")) {
        std::cerr << "[serve] cannot persist campaign " << c->id
                  << " (durability degraded)\n";
        return;
    }
    std::error_code ec;
    fs::rename(temp, final_path, ec);
    if (ec) {
        std::cerr << "[serve] cannot publish state for " << c->id << ": "
                  << ec.message() << '\n';
        fs::remove(temp, ec);
        return;
    }
    try {
        c->journal = std::make_unique<exec::Journal>(
            journal_file(opts_.state_root, c->id), c->spec.bench,
            c->fingerprint, /*resume=*/false);
    } catch (const std::exception& e) {
        std::cerr << "[serve] cannot open journal for " << c->id << ": "
                  << e.what() << " (durability degraded)\n";
    }
}

void Server::enqueue_pending(const std::shared_ptr<Campaign>& c,
                             const std::vector<std::size_t>& pending)
{
    if (!pending.empty()) {
        const std::lock_guard lock{queue_mutex_};
        for (const std::size_t i : pending) queue_.emplace_back(c, i);
    }
    queue_cv_.notify_all();
}

void Server::recover_campaigns()
{
    std::error_code ec;
    std::vector<std::string> ids;
    for (const auto& e : fs::directory_iterator{opts_.state_root, ec}) {
        const std::string name = e.path().filename().string();
        constexpr std::string_view kSuffix = ".grid.json";
        if (name.size() > kSuffix.size() &&
            name.ends_with(kSuffix))
            ids.push_back(name.substr(0, name.size() - kSuffix.size()));
    }
    // Numeric id order keeps recovery (and the queue it refills)
    // deterministic regardless of directory enumeration order.
    std::sort(ids.begin(), ids.end(), [](const auto& a, const auto& b) {
        return a.size() != b.size() ? a.size() < b.size() : a < b;
    });
    for (const std::string& id : ids) {
        const std::string path = state_file(opts_.state_root, id);
        try {
            std::ifstream in{path, std::ios::binary};
            std::ostringstream buf;
            buf << in.rdbuf();
            const auto v = exec::json::Value::parse(buf.str());
            if (v.at("state_version").as_int() != kStateVersion)
                throw common::ToolchainError{
                    "unsupported state_version " +
                    std::to_string(v.at("state_version").as_int())};
            auto c = std::make_shared<Campaign>();
            c->id = v.at("id").as_string();
            c->spec = GridSpec::from_json(v.at("grid"));
            c->jobs = c->spec.jobs();
            c->fingerprint =
                exec::grid_fingerprint(c->jobs, 0, c->spec.config_desc());
            if (exec::hash_hex(c->fingerprint) !=
                v.at("grid_hash").as_string())
                throw common::ToolchainError{
                    "grid_hash mismatch (config revision changed since "
                    "this campaign was accepted)"};
            c->recovered = true;
            reset_outcomes(c->outcomes, c->jobs.size());
            if (cache_)
                c->binding = std::make_unique<CampaignCache>(
                    cache_, c->spec.bench, c->fingerprint);
            try {
                c->journal = std::make_unique<exec::Journal>(
                    journal_file(opts_.state_root, c->id), c->spec.bench,
                    c->fingerprint, /*resume=*/true);
            } catch (const std::exception& je) {
                std::cerr << "[serve] " << c->id
                          << ": journal unusable (" << je.what()
                          << "); re-running all cells\n";
            }
            // Replay finished cells through the same journal machinery
            // --resume uses; the rest re-queue in grid order.
            std::vector<std::size_t> pending;
            {
                const std::lock_guard lock{c->mutex};
                for (std::size_t i = 0; i < c->jobs.size(); ++i) {
                    const exec::JobOutcome* rec =
                        c->journal ? c->journal->find(c->jobs[i].key)
                                   : nullptr;
                    if (rec) {
                        c->outcomes[i] = *rec;
                        c->outcomes[i].from_journal = true;
                        ++c->finished;
                        cells_replayed_.fetch_add(
                            1, std::memory_order_relaxed);
                        continue;
                    }
                    pending.push_back(i);
                }
                if (c->finished == c->jobs.size()) c->done = true;
            }
            {
                const std::lock_guard lock{campaigns_mutex_};
                campaigns_[c->id] = c;
                // Ids are "c<N>": keep allocating above the recovered
                // ones so a new submit can never collide.
                if (c->id.size() > 1 && c->id[0] == 'c') {
                    const u64 n =
                        std::strtoull(c->id.c_str() + 1, nullptr, 10);
                    next_id_ = std::max(next_id_, n);
                }
            }
            cells_total_.fetch_add(c->jobs.size(),
                                   std::memory_order_relaxed);
            campaigns_recovered_.fetch_add(1, std::memory_order_relaxed);
            enqueue_pending(c, pending);
            std::cerr << "[serve] recovered " << c->id << ": "
                      << (c->jobs.size() - pending.size()) << "/"
                      << c->jobs.size() << " cells from journal\n";
        } catch (const std::exception& e) {
            // One unrecoverable campaign must not take recovery down.
            std::cerr << "[serve] cannot recover " << path << ": "
                      << e.what() << '\n';
        }
    }
    // Publishers SIGKILLed mid-cell leave temps behind; recovery is the
    // safe moment to sweep them (no worker is running yet).
    if (cache_) {
        const std::size_t swept = cache_->sweep_dangling_temps();
        if (swept)
            std::cerr << "[serve] swept " << swept
                      << " dangling cache temp(s)\n";
    }
}

exec::json::Value Server::handle_submit(const exec::json::Value& req,
                                        int client_fd)
{
    auto c = std::make_shared<Campaign>();
    try {
        c->spec = GridSpec::from_json(req.at("grid"));
        c->jobs = c->spec.jobs();
    } catch (const std::exception& e) {
        return error_reply(e.what());
    }
    c->fingerprint =
        exec::grid_fingerprint(c->jobs, 0, c->spec.config_desc());
    c->owner_fd = client_fd;

    // Idempotent resubmission: a client that lost the connection after
    // a submit retries with {"dedup":true}; an in-flight campaign for
    // the same (bench, grid_hash) is answered instead of double-run.
    const auto* dedup = req.find("dedup");
    if (dedup && dedup->as_bool()) {
        const std::lock_guard lock{campaigns_mutex_};
        for (const auto& [id, existing] : campaigns_) {
            if (existing->spec.bench != c->spec.bench ||
                existing->fingerprint != c->fingerprint)
                continue;
            std::size_t cached;
            {
                const std::lock_guard clock{existing->mutex};
                if (existing->done) continue; // finished: cache serves it
                cached = existing->cached;
            }
            submits_deduped_.fetch_add(1, std::memory_order_relaxed);
            exec::json::Value v = exec::json::Value::object();
            v["ok"] = true;
            v["id"] = existing->id;
            v["bench"] = existing->spec.bench;
            v["grid_hash"] = exec::hash_hex(existing->fingerprint);
            v["cells"] = existing->jobs.size();
            v["cached"] = cached;
            v["deduped"] = true;
            return v;
        }
    }

    // Admission control: shed before any state is created. The backlog
    // bound is on cells already queued, so one client's grid is always
    // admissible on an idle server no matter its size.
    const unsigned pool = exec::resolve_jobs(engine_.jobs);
    std::size_t backlog;
    {
        const std::lock_guard lock{queue_mutex_};
        backlog = queue_.size();
    }
    const u64 retry_after = std::clamp<u64>(
        100 * (1 + backlog / std::max(1u, pool)), 100, 10'000);
    if (opts_.max_queued_cells != 0 && backlog >= opts_.max_queued_cells) {
        submits_overloaded_.fetch_add(1, std::memory_order_relaxed);
        return overloaded_reply("queue", retry_after, backlog);
    }
    if (opts_.max_client_inflight != 0) {
        unsigned inflight = 0;
        const std::lock_guard lock{campaigns_mutex_};
        for (const auto& [id, existing] : campaigns_) {
            if (existing->owner_fd != client_fd) continue;
            const std::lock_guard clock{existing->mutex};
            if (!existing->done) ++inflight;
        }
        if (inflight >= opts_.max_client_inflight) {
            submits_overloaded_.fetch_add(1, std::memory_order_relaxed);
            return overloaded_reply("client_inflight", retry_after,
                                    backlog);
        }
    }

    reset_outcomes(c->outcomes, c->jobs.size());
    if (cache_)
        c->binding = std::make_unique<CampaignCache>(cache_, c->spec.bench,
                                                     c->fingerprint);
    {
        const std::lock_guard lock{campaigns_mutex_};
        c->id = "c" + std::to_string(++next_id_);
        campaigns_[c->id] = c;
    }
    cells_total_.fetch_add(c->jobs.size(), std::memory_order_relaxed);
    // Persist before the first cell can run: once the client holds an
    // accepted id, no crash window can lose the campaign.
    persist_campaign(c);

    // Submission-time cache sweep: cells the store already holds never
    // touch the pool (the prepass role Engine::run's replay loop plays
    // for journals). Hits are re-journaled so a --recover replays them
    // even with the cache gone. The rest queue up FIFO.
    std::vector<std::size_t> pending;
    const bool draining = stop_flag_.load(std::memory_order_relaxed);
    {
        const std::lock_guard lock{c->mutex};
        for (std::size_t i = 0; i < c->jobs.size(); ++i) {
            if (draining) continue;
            std::optional<exec::JobOutcome> hit =
                c->binding ? c->binding->load(c->jobs[i]) : std::nullopt;
            if (hit) {
                c->outcomes[i] = std::move(*hit);
                c->outcomes[i].from_cache = true;
                ++c->finished;
                ++c->cached;
                cells_cached_.fetch_add(1, std::memory_order_relaxed);
                if (c->journal)
                    c->journal->record(c->jobs[i].key, c->outcomes[i]);
                continue;
            }
            pending.push_back(i);
        }
        if (draining) c->drained = true;
        if (c->finished == c->jobs.size() || draining) c->done = true;
    }
    enqueue_pending(c, pending);

    exec::json::Value v = exec::json::Value::object();
    v["ok"] = true;
    v["id"] = c->id;
    v["bench"] = c->spec.bench;
    v["grid_hash"] = exec::hash_hex(c->fingerprint);
    v["cells"] = c->jobs.size();
    {
        const std::lock_guard lock{c->mutex};
        v["cached"] = c->cached;
    }
    v["deduped"] = false;
    return v;
}

exec::json::Value Server::handle_poll(const exec::json::Value& req) const
{
    const std::string id = req.at("id").as_string();
    const auto c = find_campaign(id);
    if (!c) return unknown_campaign_reply(id);
    Snapshot s;
    {
        const std::lock_guard lock{c->mutex};
        s = snapshot_locked(*c);
    }
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = true;
    v["id"] = c->id;
    v["state"] = s.done ? "done" : "running";
    v["submitted"] = s.cells;
    v["running"] = s.running;
    v["finished"] = s.finished;
    v["cached"] = s.cached;
    v["quarantined"] = s.quarantined;
    v["failed"] = s.failed;
    v["drained"] = s.drained;
    v["recovered"] = c->recovered;
    return v;
}

bool Server::handle_wait(int fd, const exec::json::Value& req)
{
    const std::string id = req.at("id").as_string();
    const auto c = find_campaign(id);
    if (!c) return send_line(fd, unknown_campaign_reply(id));

    const auto send_or_account = [&](const exec::json::Value& v) {
        if (send_line(fd, v)) return true;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            slow_client_drops_.fetch_add(1, std::memory_order_relaxed);
        return false;
    };

    Snapshot prev;
    bool first = true;
    unsigned idle_ticks = 0;
    std::unique_lock lock{c->mutex};
    for (;;) {
        const Snapshot s = snapshot_locked(*c);
        lock.unlock();
        // Never hold the campaign mutex across a socket write: a slow
        // client must not stall the workers resolving its cells. A
        // keepalive progress event goes out every ~1s even when nothing
        // changed, so a client read deadline distinguishes a slow cell
        // from a dead server.
        if (first || !(s == prev) || ++idle_ticks >= 5) {
            if (!send_or_account(progress_json(c->id, s))) return false;
            prev = s;
            first = false;
            idle_ticks = 0;
        }
        if (s.done) break;
        lock.lock();
        c->cv.wait_for(lock, 200ms);
    }

    exec::json::Value v = exec::json::Value::object();
    v["event"] = "finished";
    v["id"] = c->id;
    v["bench"] = c->spec.bench;
    v["grid_hash"] = exec::hash_hex(c->fingerprint);
    v["cells"] = c->jobs.size();
    {
        std::lock_guard relock{c->mutex};
        v["cached"] = c->cached;
        v["drained"] = c->drained;
    }
    v["recovered"] = c->recovered;
    // The grid spec rides along so a bare `--wait ID` client (e.g. one
    // re-waiting after a server restart) can rebuild jobs, verify the
    // grid_hash, and write the same envelope a local run would.
    v["grid"] = c->spec.to_json();
    // The campaign is done: outcomes are frozen. One journal-format
    // record per cell, in grid order — the client rebuilds the outcome
    // vector exactly as Engine::run would have returned it.
    v["summary"] = exec::summary_json(c->jobs, c->outcomes);
    exec::json::Value records = exec::json::Value::array();
    for (std::size_t i = 0; i < c->jobs.size(); ++i)
        records.push_back(
            exec::outcome_to_record(c->jobs[i].key, c->outcomes[i]));
    v["records"] = records;
    return send_or_account(v);
}

void Server::handle_client(int fd)
{
#ifdef HWST_SERVE_POSIX
    LineReader reader{fd};
    for (;;) {
        const auto req = reader.read_json();
        if (!req) break;
        try {
            if (!req->is_object() || !req->find("op")) {
                if (!send_line(fd, error_reply("request needs an op")))
                    break;
                continue;
            }
            const std::string op = req->at("op").as_string();
            if (op == "ping") {
                exec::json::Value v = exec::json::Value::object();
                v["ok"] = true;
                v["op"] = "ping";
                v["git_rev"] = exec::build_git_rev();
                if (!send_line(fd, v)) break;
            } else if (op == "stats") {
                if (!send_line(fd, stats_json())) break;
            } else if (op == "submit") {
                if (!send_line(fd, handle_submit(*req, fd))) break;
            } else if (op == "poll") {
                if (!send_line(fd, handle_poll(*req))) break;
            } else if (op == "wait") {
                if (!handle_wait(fd, *req)) break;
            } else {
                if (!send_line(fd, error_reply("unknown op: " + op)))
                    break;
            }
        } catch (const std::exception& e) {
            // A malformed request poisons its reply, never the server.
            if (!send_line(fd, error_reply(e.what()))) break;
        }
    }
    {
        const std::lock_guard lock{clients_mutex_};
        client_fds_.erase(fd);
    }
    ::close(fd);
#else
    (void)fd;
#endif
}

ServerStats Server::stats() const
{
    ServerStats s;
    {
        const std::lock_guard lock{campaigns_mutex_};
        s.campaigns = campaigns_.size();
    }
    {
        const std::lock_guard lock{queue_mutex_};
        s.queued = queue_.size();
    }
    s.cells = cells_total_.load(std::memory_order_relaxed);
    s.cached = cells_cached_.load(std::memory_order_relaxed);
    s.run = cells_run_.load(std::memory_order_relaxed);
    s.recovered = campaigns_recovered_.load(std::memory_order_relaxed);
    s.replayed = cells_replayed_.load(std::memory_order_relaxed);
    s.deduped = submits_deduped_.load(std::memory_order_relaxed);
    s.overloaded = submits_overloaded_.load(std::memory_order_relaxed);
    s.slow_client_drops =
        slow_client_drops_.load(std::memory_order_relaxed);
    return s;
}

exec::json::Value Server::stats_json() const
{
    const ServerStats s = stats();
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = true;
    v["op"] = "stats";
    v["campaigns"] = s.campaigns;
    v["cells"] = s.cells;
    v["cached"] = s.cached;
    v["run"] = s.run;
    v["recovered"] = s.recovered;
    v["replayed"] = s.replayed;
    v["deduped"] = s.deduped;
    v["overloaded"] = s.overloaded;
    v["slow_client_drops"] = s.slow_client_drops;
    v["queued"] = s.queued;
    v["jobs"] = exec::resolve_jobs(engine_.jobs);
    v["state"] = opts_.state_root;
    v["cache"] = cache_ ? cache_->stats_json() : exec::json::Value{};
    return v;
}

} // namespace hwst::serve
