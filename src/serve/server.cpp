#include "serve/server.hpp"

#include <algorithm>
#include <iostream>

#include "common/error.hpp"
#include "compiler/scheme.hpp"
#include "exec/envelope.hpp"
#include "exec/journal.hpp"
#include "exec/report.hpp"
#include "exec/simrun.hpp"
#include "serve/wire.hpp"
#include "workloads/workload.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define HWST_SERVE_POSIX 1
#endif

namespace hwst::serve {

using namespace std::chrono_literals;

// ---- GridSpec --------------------------------------------------------

std::string GridSpec::config_desc() const
{
    // Empty when no tweak is set, so an untweaked grid keeps the same
    // fingerprint as the plain grid_fingerprint(jobs) call sites.
    std::string d;
    if (keybuffer) d += " keybuffer=" + std::to_string(keybuffer);
    if (dcache_kib) d += " dcache_kib=" + std::to_string(dcache_kib);
    return d.empty() ? std::string{} : "tweaks:" + d;
}

std::vector<exec::Job> GridSpec::jobs() const
{
    if (workloads.empty() || schemes.empty())
        throw common::ToolchainError{
            "grid needs at least one workload and one scheme"};
    const unsigned kb = keybuffer;
    const unsigned dk = dcache_kib;
    const auto tweak = [kb, dk](sim::MachineConfig& cfg) {
        if (kb) cfg.keybuffer_entries = kb;
        if (dk) cfg.dcache.sets = dk * 1024 / 64 / 4;
    };
    std::vector<exec::Job> out;
    out.reserve(workloads.size() * schemes.size());
    for (const auto& name : workloads) {
        const auto& w = workloads::workload(name); // validates the name
        for (const auto& sname : schemes) {
            compiler::Scheme scheme = compiler::Scheme::None;
            bool found = false;
            for (const compiler::Scheme s : compiler::kAllSchemes) {
                if (compiler::scheme_name(s) == sname) {
                    scheme = s;
                    found = true;
                    break;
                }
            }
            if (!found)
                throw common::ToolchainError{"unknown scheme: " + sname};
            out.push_back(exec::make_sim_job(name + "/" + sname, name,
                                             scheme, w.build, tweak));
        }
    }
    return out;
}

u64 GridSpec::fingerprint() const
{
    return exec::grid_fingerprint(jobs(), 0, config_desc());
}

exec::json::Value GridSpec::to_json() const
{
    exec::json::Value v = exec::json::Value::object();
    v["bench"] = bench;
    exec::json::Value wl = exec::json::Value::array();
    for (const auto& w : workloads) wl.push_back(w);
    v["workloads"] = wl;
    exec::json::Value sc = exec::json::Value::array();
    for (const auto& s : schemes) sc.push_back(s);
    v["schemes"] = sc;
    if (keybuffer) v["keybuffer"] = keybuffer;
    if (dcache_kib) v["dcache_kib"] = dcache_kib;
    return v;
}

GridSpec GridSpec::from_json(const exec::json::Value& v)
{
    GridSpec spec;
    spec.bench = v.at("bench").as_string();
    if (spec.bench.empty())
        throw common::ToolchainError{"grid bench must be non-empty"};
    for (const auto& w : v.at("workloads").items())
        spec.workloads.push_back(w.as_string());
    for (const auto& s : v.at("schemes").items())
        spec.schemes.push_back(s.as_string());
    if (const auto* kb = v.find("keybuffer"))
        spec.keybuffer = static_cast<unsigned>(kb->as_int());
    if (const auto* dk = v.find("dcache_kib"))
        spec.dcache_kib = static_cast<unsigned>(dk->as_int());
    return spec;
}

// ---- Server::Campaign ------------------------------------------------

struct Server::Campaign {
    std::string id;
    GridSpec spec;
    u64 fingerprint = 0;
    std::vector<exec::Job> jobs;
    std::vector<exec::JobOutcome> outcomes;
    std::unique_ptr<CampaignCache> binding; ///< null without a cache

    mutable std::mutex mutex;
    std::condition_variable cv;
    std::size_t finished = 0; ///< resolved slots (cached + run + skipped)
    std::size_t running = 0;
    std::size_t cached = 0;
    std::size_t quarantined = 0;
    std::size_t failed = 0;
    bool done = false;
    bool drained = false; ///< finalized partial by a graceful stop
};

namespace {

struct Snapshot {
    std::size_t cells = 0;
    std::size_t finished = 0;
    std::size_t running = 0;
    std::size_t cached = 0;
    std::size_t quarantined = 0;
    std::size_t failed = 0;
    bool done = false;
    bool drained = false;

    bool operator==(const Snapshot&) const = default;
};

exec::json::Value error_reply(const std::string& what)
{
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = false;
    v["error"] = what;
    return v;
}

/// Caller holds c.mutex.
Snapshot snapshot_locked(const Server::Campaign& c)
{
    Snapshot s;
    s.cells = c.jobs.size();
    s.finished = c.finished;
    s.running = c.running;
    s.cached = c.cached;
    s.quarantined = c.quarantined;
    s.failed = c.failed;
    s.done = c.done;
    s.drained = c.drained;
    return s;
}

exec::json::Value progress_json(const std::string& id, const Snapshot& s)
{
    exec::json::Value v = exec::json::Value::object();
    v["event"] = "progress";
    v["id"] = id;
    v["submitted"] = s.cells;
    v["running"] = s.running;
    v["finished"] = s.finished;
    v["cached"] = s.cached;
    v["quarantined"] = s.quarantined;
    v["failed"] = s.failed;
    return v;
}

} // namespace

// ---- Server ----------------------------------------------------------

Server::Server(ServerOptions opts) : opts_{std::move(opts)}
{
    if (!serving_supported())
        throw common::ToolchainError{
            "the campaign server requires a POSIX host"};
    if (opts_.socket_path.empty())
        throw common::ToolchainError{"server needs a socket path"};
    if (opts_.engine.journal)
        throw common::ToolchainError{
            "server-side durability is the cache, not a journal"};
    engine_ = exec::resolve_engine_options(opts_.engine);
    engine_.stop = &stop_flag_;
    engine_.progress = false; // progress goes to clients, not stderr
    if (!opts_.cache_root.empty())
        cache_ = std::make_shared<ResultCache>(CacheOptions{
            .root = opts_.cache_root,
            .max_bytes = opts_.cache_max_bytes,
            .git_rev = exec::build_git_rev(),
        });
}

Server::~Server()
{
    stop();
}

void Server::start()
{
#ifdef HWST_SERVE_POSIX
    if (started_) return;
    listen_fd_ = listen_unix(opts_.socket_path);
    if (listen_fd_ < 0)
        throw common::ToolchainError{"cannot listen on " +
                                     opts_.socket_path};
    started_ = true;
    const unsigned pool = exec::resolve_jobs(engine_.jobs);
    workers_.reserve(pool);
    for (unsigned t = 0; t < pool; ++t)
        workers_.emplace_back(&Server::worker_loop, this);
    accept_thread_ = std::thread{&Server::accept_loop, this};
#else
    throw common::ToolchainError{"the campaign server requires a POSIX "
                                 "host"};
#endif
}

void Server::stop()
{
#ifdef HWST_SERVE_POSIX
    if (!started_ || stopped_.exchange(true)) return;
    stop_flag_.store(true);
    queue_cv_.notify_all();
    if (accept_thread_.joinable()) accept_thread_.join();
    // In-flight cells observe the stop flag and drain cooperatively;
    // join before finalizing so no worker writes after a finished
    // event goes out.
    for (auto& t : workers_)
        if (t.joinable()) t.join();
    {
        const std::lock_guard lock{queue_mutex_};
        queue_.clear(); // queued cells keep their default Skipped slots
    }
    {
        const std::lock_guard lock{campaigns_mutex_};
        for (auto& [id, c] : campaigns_) {
            const std::lock_guard clock{c->mutex};
            if (!c->done) {
                c->drained = true;
                c->done = true;
            }
            c->cv.notify_all();
        }
    }
    // Unblock handler threads parked in read(); their pending writes
    // (the finished events above) still go through.
    {
        const std::lock_guard lock{clients_mutex_};
        for (const int fd : client_fds_) ::shutdown(fd, SHUT_RD);
    }
    for (;;) {
        std::thread t;
        {
            const std::lock_guard lock{clients_mutex_};
            if (client_threads_.empty()) break;
            t = std::move(client_threads_.back());
            client_threads_.pop_back();
        }
        if (t.joinable()) t.join();
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(opts_.socket_path.c_str());
#endif
}

void Server::accept_loop()
{
#ifdef HWST_SERVE_POSIX
    while (!stop_flag_.load(std::memory_order_relaxed)) {
        ::pollfd p{listen_fd_, POLLIN, 0};
        const int r = ::poll(&p, 1, 100);
        if (r <= 0 || !(p.revents & POLLIN)) continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) continue;
        const std::lock_guard lock{clients_mutex_};
        if (stop_flag_.load(std::memory_order_relaxed)) {
            ::close(fd);
            return;
        }
        client_fds_.insert(fd);
        client_threads_.emplace_back(&Server::handle_client, this, fd);
    }
#endif
}

void Server::worker_loop()
{
    for (;;) {
        std::shared_ptr<Campaign> c;
        std::size_t index = 0;
        {
            std::unique_lock lock{queue_mutex_};
            queue_cv_.wait(lock, [&] {
                return stop_flag_.load(std::memory_order_relaxed) ||
                       !queue_.empty();
            });
            if (stop_flag_.load(std::memory_order_relaxed)) return;
            c = std::move(queue_.front().first);
            index = queue_.front().second;
            queue_.pop_front();
        }
        {
            const std::lock_guard lock{c->mutex};
            ++c->running;
        }
        exec::EngineOptions opts = engine_;
        opts.cache = c->binding.get();
        exec::JobOutcome out = exec::run_one_job(c->jobs[index], opts);
        cells_run_.fetch_add(1, std::memory_order_relaxed);
        {
            const std::lock_guard lock{c->mutex};
            c->outcomes[index] = std::move(out);
            --c->running;
            ++c->finished;
            switch (c->outcomes[index].status) {
            case exec::JobStatus::Quarantined: ++c->quarantined; break;
            case exec::JobStatus::Timeout:
            case exec::JobStatus::Error:
            case exec::JobStatus::Crashed: ++c->failed; break;
            default: break;
            }
            if (c->finished == c->jobs.size()) c->done = true;
        }
        c->cv.notify_all();
    }
}

std::shared_ptr<Server::Campaign> Server::find_campaign(
    const std::string& id) const
{
    const std::lock_guard lock{campaigns_mutex_};
    const auto it = campaigns_.find(id);
    return it == campaigns_.end() ? nullptr : it->second;
}

exec::json::Value Server::handle_submit(const exec::json::Value& req)
{
    auto c = std::make_shared<Campaign>();
    try {
        c->spec = GridSpec::from_json(req.at("grid"));
        c->jobs = c->spec.jobs();
    } catch (const std::exception& e) {
        return error_reply(e.what());
    }
    c->fingerprint =
        exec::grid_fingerprint(c->jobs, 0, c->spec.config_desc());
    c->outcomes.assign(c->jobs.size(), exec::JobOutcome{});
    for (auto& o : c->outcomes) {
        o.status = exec::JobStatus::Skipped;
        o.error = "not started: shutdown requested";
        o.attempts = 0;
    }
    if (cache_)
        c->binding = std::make_unique<CampaignCache>(cache_, c->spec.bench,
                                                     c->fingerprint);
    {
        const std::lock_guard lock{campaigns_mutex_};
        c->id = "c" + std::to_string(++next_id_);
        campaigns_[c->id] = c;
    }
    cells_total_.fetch_add(c->jobs.size(), std::memory_order_relaxed);

    // Submission-time cache sweep: cells the store already holds never
    // touch the pool (the prepass role Engine::run's replay loop plays
    // for journals). The rest queue up FIFO.
    std::vector<std::size_t> pending;
    const bool draining = stop_flag_.load(std::memory_order_relaxed);
    {
        const std::lock_guard lock{c->mutex};
        for (std::size_t i = 0; i < c->jobs.size(); ++i) {
            if (draining) continue;
            std::optional<exec::JobOutcome> hit =
                c->binding ? c->binding->load(c->jobs[i]) : std::nullopt;
            if (hit) {
                c->outcomes[i] = std::move(*hit);
                c->outcomes[i].from_cache = true;
                ++c->finished;
                ++c->cached;
                cells_cached_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            pending.push_back(i);
        }
        if (draining) c->drained = true;
        if (c->finished == c->jobs.size() || draining) c->done = true;
    }
    if (!pending.empty()) {
        const std::lock_guard lock{queue_mutex_};
        for (const std::size_t i : pending) queue_.emplace_back(c, i);
    }
    queue_cv_.notify_all();

    exec::json::Value v = exec::json::Value::object();
    v["ok"] = true;
    v["id"] = c->id;
    v["bench"] = c->spec.bench;
    v["grid_hash"] = exec::hash_hex(c->fingerprint);
    v["cells"] = c->jobs.size();
    {
        const std::lock_guard lock{c->mutex};
        v["cached"] = c->cached;
    }
    return v;
}

exec::json::Value Server::handle_poll(const exec::json::Value& req) const
{
    const auto c = find_campaign(req.at("id").as_string());
    if (!c) return error_reply("unknown campaign id");
    Snapshot s;
    {
        const std::lock_guard lock{c->mutex};
        s = snapshot_locked(*c);
    }
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = true;
    v["id"] = c->id;
    v["state"] = s.done ? "done" : "running";
    v["submitted"] = s.cells;
    v["running"] = s.running;
    v["finished"] = s.finished;
    v["cached"] = s.cached;
    v["quarantined"] = s.quarantined;
    v["failed"] = s.failed;
    v["drained"] = s.drained;
    return v;
}

bool Server::handle_wait(int fd, const exec::json::Value& req)
{
    const auto c = find_campaign(req.at("id").as_string());
    if (!c) return send_line(fd, error_reply("unknown campaign id"));

    Snapshot prev;
    bool first = true;
    std::unique_lock lock{c->mutex};
    for (;;) {
        const Snapshot s = snapshot_locked(*c);
        lock.unlock();
        // Never hold the campaign mutex across a socket write: a slow
        // client must not stall the workers resolving its cells.
        if (first || !(s == prev)) {
            if (!send_line(fd, progress_json(c->id, s))) return false;
            prev = s;
            first = false;
        }
        if (s.done) break;
        lock.lock();
        c->cv.wait_for(lock, 200ms);
    }

    exec::json::Value v = exec::json::Value::object();
    v["event"] = "finished";
    v["id"] = c->id;
    v["bench"] = c->spec.bench;
    v["grid_hash"] = exec::hash_hex(c->fingerprint);
    v["cells"] = c->jobs.size();
    {
        std::lock_guard relock{c->mutex};
        v["cached"] = c->cached;
        v["drained"] = c->drained;
    }
    // The campaign is done: outcomes are frozen. One journal-format
    // record per cell, in grid order — the client rebuilds the outcome
    // vector exactly as Engine::run would have returned it.
    v["summary"] = exec::summary_json(c->jobs, c->outcomes);
    exec::json::Value records = exec::json::Value::array();
    for (std::size_t i = 0; i < c->jobs.size(); ++i)
        records.push_back(
            exec::outcome_to_record(c->jobs[i].key, c->outcomes[i]));
    v["records"] = records;
    return send_line(fd, v);
}

void Server::handle_client(int fd)
{
#ifdef HWST_SERVE_POSIX
    LineReader reader{fd};
    for (;;) {
        const auto req = reader.read_json();
        if (!req) break;
        try {
            if (!req->is_object() || !req->find("op")) {
                if (!send_line(fd, error_reply("request needs an op")))
                    break;
                continue;
            }
            const std::string op = req->at("op").as_string();
            if (op == "ping") {
                exec::json::Value v = exec::json::Value::object();
                v["ok"] = true;
                v["op"] = "ping";
                v["git_rev"] = exec::build_git_rev();
                if (!send_line(fd, v)) break;
            } else if (op == "stats") {
                if (!send_line(fd, stats_json())) break;
            } else if (op == "submit") {
                if (!send_line(fd, handle_submit(*req))) break;
            } else if (op == "poll") {
                if (!send_line(fd, handle_poll(*req))) break;
            } else if (op == "wait") {
                if (!handle_wait(fd, *req)) break;
            } else {
                if (!send_line(fd, error_reply("unknown op: " + op)))
                    break;
            }
        } catch (const std::exception& e) {
            // A malformed request poisons its reply, never the server.
            if (!send_line(fd, error_reply(e.what()))) break;
        }
    }
    {
        const std::lock_guard lock{clients_mutex_};
        client_fds_.erase(fd);
    }
    ::close(fd);
#else
    (void)fd;
#endif
}

ServerStats Server::stats() const
{
    ServerStats s;
    {
        const std::lock_guard lock{campaigns_mutex_};
        s.campaigns = campaigns_.size();
    }
    s.cells = cells_total_.load(std::memory_order_relaxed);
    s.cached = cells_cached_.load(std::memory_order_relaxed);
    s.run = cells_run_.load(std::memory_order_relaxed);
    return s;
}

exec::json::Value Server::stats_json() const
{
    const ServerStats s = stats();
    exec::json::Value v = exec::json::Value::object();
    v["ok"] = true;
    v["op"] = "stats";
    v["campaigns"] = s.campaigns;
    v["cells"] = s.cells;
    v["cached"] = s.cached;
    v["run"] = s.run;
    v["jobs"] = exec::resolve_jobs(engine_.jobs);
    v["cache"] = cache_ ? cache_->stats_json() : exec::json::Value{};
    return v;
}

} // namespace hwst::serve
