#include "serve/client.hpp"

#include <cstdlib>

#include "common/error.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define HWST_SERVE_POSIX 1
#endif

namespace hwst::serve {

namespace {

int connect_or_throw(const std::string& path)
{
    if (path.empty())
        throw common::ToolchainError{
            "no server socket (--socket PATH or HWST_SERVE_SOCKET)"};
    const int fd = connect_unix(path);
    if (fd < 0)
        throw common::ToolchainError{"cannot connect to server socket " +
                                     path};
    return fd;
}

} // namespace

Client::Client(const std::string& socket_path)
    : fd_{connect_or_throw(socket_path)}, reader_{fd_}
{
}

Client::~Client()
{
#ifdef HWST_SERVE_POSIX
    if (fd_ >= 0) ::close(fd_);
#endif
}

bool Client::send(const exec::json::Value& req)
{
    return send_line(fd_, req);
}

std::optional<exec::json::Value> Client::recv()
{
    return reader_.read_json();
}

exec::json::Value Client::rpc(const exec::json::Value& req)
{
    if (!send(req))
        throw common::ToolchainError{"server connection lost on send"};
    auto reply = recv();
    if (!reply)
        throw common::ToolchainError{"server closed the connection"};
    if (const auto* ok = reply->find("ok"); ok && !ok->as_bool()) {
        const auto* err = reply->find("error");
        throw common::ToolchainError{
            "server refused request: " +
            (err ? err->as_string() : std::string{"unknown error"})};
    }
    return *reply;
}

std::string resolve_socket(const std::string& flag_value)
{
    if (!flag_value.empty()) return flag_value;
    if (const char* env = std::getenv("HWST_SERVE_SOCKET")) return env;
    return {};
}

} // namespace hwst::serve
