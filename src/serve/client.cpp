#include "serve/client.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <thread>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define HWST_SERVE_POSIX 1
#endif

namespace hwst::serve {

namespace {

int connect_or_throw(const std::string& path, int timeout_ms)
{
    if (path.empty())
        throw common::ToolchainError{
            "no server socket (--socket PATH or HWST_SERVE_SOCKET)"};
    const int fd = connect_unix(path, timeout_ms);
    if (fd < 0)
        throw common::ToolchainError{"cannot connect to server socket " +
                                     path};
    return fd;
}

} // namespace

Client::Client(const std::string& socket_path, int connect_timeout_ms,
               unsigned io_timeout_ms)
    : fd_{connect_or_throw(socket_path, connect_timeout_ms)}, reader_{fd_}
{
    if (io_timeout_ms) set_io_timeouts(fd_, io_timeout_ms, io_timeout_ms);
}

Client::~Client()
{
#ifdef HWST_SERVE_POSIX
    if (fd_ >= 0) ::close(fd_);
#endif
}

bool Client::send(const exec::json::Value& req)
{
    return send_line(fd_, req);
}

std::optional<exec::json::Value> Client::recv()
{
    return reader_.read_json();
}

exec::json::Value Client::rpc(const exec::json::Value& req)
{
    if (!send(req))
        throw common::ToolchainError{"server connection lost on send"};
    auto reply = recv();
    if (!reply)
        throw common::ToolchainError{"server closed the connection"};
    if (const auto* ok = reply->find("ok"); ok && !ok->as_bool()) {
        const auto* err = reply->find("error");
        throw common::ToolchainError{
            "server refused request: " +
            (err ? err->as_string() : std::string{"unknown error"})};
    }
    return *reply;
}

// ---- ResilientClient -------------------------------------------------

ResilientClient::ResilientClient(ClientOptions opts) : opts_{std::move(opts)}
{
    // splitmix64-style stream: deterministic for a pinned seed, so a
    // chaos test can assert on the exact sleep schedule if it wants to.
    prng_state_ = opts_.jitter_seed ? opts_.jitter_seed
                                    : 0x9e3779b97f4a7c15ull;
    prev_sleep_ms_ = opts_.backoff_base_ms;
}

ResilientClient::~ResilientClient() = default;

u64 ResilientClient::next_jitter(u64 bound)
{
    u64 z = (prng_state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    return bound ? z % bound : 0;
}

void ResilientClient::backoff_sleep()
{
    // Decorrelated jitter: sleep ~ uniform(base, prev*3), capped.
    // Retrying clients spread out instead of thundering back in lock
    // step after a server restart.
    const u64 base = std::max<u64>(1, opts_.backoff_base_ms);
    const u64 span = std::max<u64>(base, prev_sleep_ms_ * 3);
    u64 ms = base + next_jitter(span - base + 1);
    ms = std::min<u64>(ms, std::max<u64>(base, opts_.backoff_cap_ms));
    prev_sleep_ms_ = ms;
    std::this_thread::sleep_for(std::chrono::milliseconds{ms});
}

Client& ResilientClient::ensure_connected()
{
    if (!conn_) {
        conn_ = std::make_unique<Client>(opts_.socket_path,
                                         opts_.connect_timeout_ms,
                                         opts_.io_timeout_ms);
        ++reconnects_;
    }
    return *conn_;
}

void ResilientClient::drop()
{
    conn_.reset();
}

exec::json::Value ResilientClient::rpc(const exec::json::Value& req)
{
    std::string last_error = "server unreachable";
    for (unsigned attempt = 0; attempt < opts_.max_attempts; ++attempt) {
        if (attempt) backoff_sleep();
        std::optional<exec::json::Value> reply;
        try {
            Client& c = ensure_connected();
            if (c.send(req)) reply = c.recv();
        } catch (const common::ToolchainError& e) {
            last_error = e.what();
            continue; // connect failed: back off and retry
        }
        if (!reply) {
            // Lost mid-exchange (dead server, or our read deadline).
            last_error = "server connection lost";
            drop();
            continue;
        }
        const auto* ok = reply->find("ok");
        if (ok && !ok->as_bool()) {
            const auto* err = reply->find("error");
            const std::string what =
                err ? err->as_string() : std::string{"unknown error"};
            if (what == "overloaded") {
                // Honor the server's backpressure hint instead of our
                // own schedule; cap it so a bogus hint can't park us.
                u64 ms = 100;
                if (const auto* ra = reply->find("retry_after_ms"))
                    ms = static_cast<u64>(ra->as_int());
                ms = std::clamp<u64>(ms, 1, 10'000);
                last_error = "server overloaded";
                std::this_thread::sleep_for(
                    std::chrono::milliseconds{ms});
                continue;
            }
            if (what == "unknown_campaign")
                throw UnknownCampaign{"unknown campaign id (server lost "
                                      "its state; resubmit the grid)"};
            // Any other refusal is deterministic: retrying can't help.
            throw common::ToolchainError{"server refused request: " +
                                         what};
        }
        return *reply;
    }
    throw common::ToolchainError{
        "giving up after " + std::to_string(opts_.max_attempts) +
        " attempts: " + last_error};
}

exec::json::Value ResilientClient::submit(const exec::json::Value& grid)
{
    exec::json::Value req = exec::json::Value::object();
    req["op"] = "submit";
    req["grid"] = grid;
    try {
        return rpc(req);
    } catch (const UnknownCampaign&) {
        throw; // not possible for submit, but keep the type distinct
    } catch (const common::ToolchainError&) {
        // The first pass exhausted its attempts — but one of those
        // sends may have been accepted with the reply lost. One more
        // pass asking for dedup: the server answers with the live
        // campaign instead of double-running the grid.
        req["dedup"] = true;
        return rpc(req);
    }
}

exec::json::Value ResilientClient::wait(
    const std::string& id,
    const std::function<void(const exec::json::Value&)>& on_progress)
{
    exec::json::Value req = exec::json::Value::object();
    req["op"] = "wait";
    req["id"] = id;
    unsigned attempt = 0;
    for (;;) {
        if (attempt) backoff_sleep();
        bool streamed = false;
        try {
            Client& c = ensure_connected();
            if (c.send(req)) {
                for (;;) {
                    const auto ev = c.recv();
                    if (!ev) break; // lost mid-stream: re-wait by id
                    if (const auto* ok = ev->find("ok");
                        ok && !ok->as_bool()) {
                        const auto* err = ev->find("error");
                        const std::string what =
                            err ? err->as_string()
                                : std::string{"unknown error"};
                        if (what == "unknown_campaign")
                            throw UnknownCampaign{
                                "unknown campaign " + id +
                                " (server lost its state; resubmit)"};
                        throw common::ToolchainError{
                            "server refused wait: " + what};
                    }
                    const auto* event = ev->find("event");
                    const std::string kind =
                        event ? event->as_string() : std::string{};
                    if (kind == "finished") return *ev;
                    // Progress proves the server is alive: restart the
                    // attempt budget so a marathon campaign can outlive
                    // any number of reconnects.
                    streamed = true;
                    if (on_progress) on_progress(*ev);
                }
            }
        } catch (const UnknownCampaign&) {
            throw;
        } catch (const common::ToolchainError&) {
            // connect failed; fall through to the retry accounting
        }
        drop();
        attempt = streamed ? 1 : attempt + 1;
        if (attempt >= opts_.max_attempts)
            throw common::ToolchainError{
                "giving up on campaign " + id + " after " +
                std::to_string(opts_.max_attempts) + " attempts"};
    }
}

std::string resolve_socket(const std::string& flag_value)
{
    if (!flag_value.empty()) return flag_value;
    if (const char* env = std::getenv("HWST_SERVE_SOCKET")) return env;
    return {};
}

} // namespace hwst::serve
