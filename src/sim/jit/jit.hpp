// Tier-2 template JIT (docs/performance.md "Tier-2 JIT"): hot
// superblocks are lowered to native x86-64 through per-op copy-and-
// patch templates. Same contract as every hot-path structure: host
// speed may change, simulated observables may not — the per-op
// templates replicate the dispatcher bodies (sim/dispatch.cpp) exactly,
// and everything non-trivial calls back into C++ helpers that ARE the
// dispatcher bodies.
//
// Code cache policy:
//  * One code region per Machine, W^X: no virtual address is ever
//    writable and executable at once. Preferred layout is a dual-mapped
//    memfd — an RX view for execution plus a separate RW alias for
//    compiles and patches — so steady-state translation costs zero
//    syscalls. When memfd_create is unavailable the region falls back
//    to a single anonymous mapping with transient page-granular
//    mprotect RW windows around every compile/patch.
//  * Append-only; when a compile would overflow cfg.jit_code_bytes the
//    whole region is dropped (JitStats::evictions) and translation
//    restarts — block records, chain sites and jalr sites all hold
//    pointers into the region or into Superblocks, so partial eviction
//    is not worth its invariants.
//  * Any superblock-cache flush (map_region) drops the code too: the
//    emitted code bakes SbOp and Superblock addresses.
#pragma once

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/bitops.hpp"
#include "hwst/trap.hpp"
#include "sim/superblock.hpp"

// Host/build gate: the templates emit x86-64 and the W^X region is
// mmap'd, so the tier exists only on plain x86-64 POSIX builds.
// Sanitizer builds pin the ladder to the dispatcher — ASan/TSan cannot
// see through emitted frames, and the whole point of those presets is
// instrumented coverage of the C++ paths.
#if defined(__x86_64__) && !defined(_WIN32) &&                            \
    !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define HWST_JIT_X86_64 0
#else
#define HWST_JIT_X86_64 1
#endif
#else
#define HWST_JIT_X86_64 1
#endif
#else
#define HWST_JIT_X86_64 0
#endif

namespace hwst::sim {
class Machine;
}

namespace hwst::sim::jit {

using common::u32;
using common::u64;
using common::u8;

/// Why emitted code returned to the driver loop (sim/jit/runtime.cpp).
enum ExitReason : u32 {
    kExitNone = 0,
    /// Back to the driver's outer loop: poll/fuel bail at a chain site,
    /// or an interp-one ender completed. m.pc_ is the resume point.
    kExitLeave = 1,
    /// A block-to-block chain site whose target is not yet compiled.
    /// payload = chain-site index; the driver patches the site once the
    /// target block is entered natively.
    kExitResolve = 2,
    /// A jalr inline-cache miss or a hit on an unresolved way.
    /// payload = site << 2 | was_hit << 1 | way.
    kExitJalrResolve = 3,
    /// A body op trapped before the block's batch was applied.
    /// payload = the SbOp*; trap_* fields hold the trap. The driver
    /// applies the per-op prefix accounting (dispatch.cpp apply_prefix).
    kExitTrap = 4,
    /// A trap with the batch already applied (interp-one ender). The
    /// helper has set running_ = false; trap_* fields hold the trap.
    kExitTrapFinal = 5,
};

/// Per-run state shared between the driver loop, the emitted code (via
/// the pinned r13 register) and the helper call-outs. Standard layout:
/// the templates address fields by offsetof.
struct JitContext {
    u64 countdown = 0;  ///< cancellation-poll countdown (~0 = no cancel)
    u32 exit_reason = 0;
    u32 trap_kind = 0;
    u64 exit_payload = 0;
    u64 trap_addr = 0;
    u64 trap_pc = 0;
    // Pinned-register table, loaded once by the entry thunk:
    u64* regs = nullptr;    ///< -> r12 (Machine::regs_)
    void* srf = nullptr;    ///< -> rbp (ShadowRegFile entry array)
    u64* cycles = nullptr;  ///< -> r14 (&Machine::cycles_)
    void* machine = nullptr;///< -> r15 (the Machine, for helper calls)
};

/// One block-to-block chain site inside emitted code: the imm64 fuel
/// threshold and the rel32 of the direct jump, both patched when the
/// target block is compiled (offsets are region-absolute).
struct ChainSite {
    u64 thresh_off = 0;
    u64 jmp_off = 0;
    bool patched = false;
};

class JitTier {
public:
    /// Maps the code region and emits the entry thunk. ok() is false
    /// when mmap failed — the caller degrades to the dispatcher.
    explicit JitTier(Machine& m);
    ~JitTier();
    JitTier(const JitTier&) = delete;
    JitTier& operator=(const JitTier&) = delete;

    bool ok() const { return region_ != nullptr; }

    struct BlockRec {
        u32 execs = 0;        ///< driver entries while cold
        const u8* entry = nullptr; ///< native entry, null until compiled
    };
    BlockRec& record_for(const Superblock* sb) { return records_[sb]; }

    /// Compile `sb` into the region; returns the native entry, or null
    /// when the block cannot fit even in an empty region. May evict
    /// (drop_code) — all previously returned BlockRec references and
    /// entries are invalidated when generation() changes.
    const u8* compile(const Superblock& sb, JitStats& st);

    /// Drop every compiled block: reset the cursor, clear records and
    /// patch sites, re-emit the entry thunk. Bumps generation().
    void drop_code(JitStats& st);

    /// Patch a chain site to jump straight to `target_entry`, guarded
    /// by the real fuel threshold for a `len`-instruction target block.
    void patch_chain(u64 site, const u8* target_entry, u64 fuel, u32 len,
                     JitStats& st);
    /// Resolve a jalr inline-cache way to `target_entry` (aux carries
    /// the fuel threshold the emitted probe compares against).
    void patch_jalr(u64 site, unsigned way, const u8* target_entry,
                    u64 fuel, u32 len, JitStats& st);

    JalrCache2<const void*>& jalr_site(u64 i) { return jalr_sites_[i]; }

    /// Chain sites emitted so far (the next block's sites get global
    /// indexes starting here).
    u64 chain_site_count() const { return chain_sites_.size(); }
    /// Claim a jalr inline-cache site (the emitted probe bakes its
    /// address; the deque keeps it stable).
    u64 alloc_jalr_site()
    {
        jalr_sites_.emplace_back();
        return jalr_sites_.size() - 1;
    }

    /// Bumped by drop_code: stale BlockRecs/site indexes are detected
    /// by comparing generations.
    u64 generation() const { return generation_; }

    /// Run a compiled block (the executable view is RX always; writes
    /// go through the RW alias, or through transient page-granular
    /// mprotect windows on the single-mapping fallback).
    void enter(const u8* entry, JitContext& ctx);

    /// Region offsets of the shared per-region runtime emitted right
    /// after the entry thunk: the load/store fast-path subroutines
    /// (dcache recent-line probe + TLB probe, reached by a 5-byte
    /// rel32 call from block code) and one trampoline per C++ helper
    /// (so per-op call sites don't each materialise a 10-byte absolute
    /// helper address).
    struct RtOffsets {
        u64 load[4][2] = {}; ///< [log2 width][sign-extending]
        u64 store[4] = {};   ///< [log2 width]
        std::unordered_map<const void*, u64> tramp;
    };
    const RtOffsets& rt() const { return rt_; }

    JitContext ctx;

private:
    friend struct JitOps;

    /// Flip the pages covering [off, off+len) of the region to RW /
    /// back to RX. No-ops when the RW alias exists (dual-mapped memfd);
    /// on the fallback single mapping they are page-granular mprotects
    /// — whole-region flips cost tens of µs on a multi-MB mapping,
    /// and even per-page pairs add ~0.5ms of syscalls per short run.
    void make_writable(u64 off, u64 len);
    void seal(u64 off, u64 len);
    /// Where code writes land: the RW alias when dual-mapped, the
    /// region itself (made writable by the caller) otherwise.
    u8* code_rw(u64 off) { return (rw_ ? rw_ : region_) + off; }
    void emit_thunk();

    Machine& m_;
    u8* region_ = nullptr; ///< executable view (RX at rest)
    u8* rw_ = nullptr;     ///< RW alias of the same pages, or null
    u64 region_bytes_ = 0;
    u64 cursor_ = 0;
    u64 thunk_bytes_ = 0;  ///< cursor after the thunk + shared runtime
    u64 epilogue_off_ = 0; ///< region offset of the shared epilogue
    u64 generation_ = 0;
    RtOffsets rt_;

    std::unordered_map<const Superblock*, BlockRec> records_;
    std::vector<ChainSite> chain_sites_;
    /// Jalr sites live outside the code region (the emitted probe bakes
    /// their addresses); deque keeps them stable across growth.
    std::deque<JalrCache2<const void*>> jalr_sites_;
};

/// Tier-2 driver loop; same contract as run_superblocks.
bool run_jit(Machine& m, const std::function<bool()>* cancel, u64 stride,
             hwst::Trap& out);

/// True when this build/host can execute emitted x86-64 code.
bool jit_supported();

} // namespace hwst::sim::jit
