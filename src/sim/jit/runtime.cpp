// Tier-2 JIT driver loop (jit.hpp): the outer loop the emitted code
// exits back into. It mirrors run_superblocks (sim/dispatch.cpp)
// decision-for-decision — poll, fuel, pc validation, interp tail when
// fuel can run out inside a block — and adds the tier-2-only concerns:
// the hotness ladder (cold blocks run through step() until
// jit_hot_threshold), compile-on-hot, and lazy resolution of chain /
// jalr sites. A site is patched only when its target block is about to
// be entered natively, so a patched jump can never lead to a stale or
// cold block; generation guards invalidate pending patches across
// code-cache drops.
#include "sim/jit/jit.hpp"
#include "sim/machine.hpp"

namespace hwst::sim::jit {

using hwst::Trap;
using hwst::TrapKind;

bool jit_supported()
{
    return HWST_JIT_X86_64 != 0;
}

bool run_jit(Machine& m, const std::function<bool()>* cancel, u64 stride,
             Trap& out)
{
    if (!m.jit_) m.jit_ = std::make_unique<JitTier>(m);
    JitTier& jt = *m.jit_;
    if (!jt.ok()) {
        // Code region unavailable (mmap failure): degrade the ladder to
        // the dispatcher for the Machine's lifetime. Blocks translated
        // for the JIT have unbound labels, which the computed-goto
        // dispatcher cannot execute — flush them so the dispatcher
        // retranslates with its label table.
        m.tier_ = ExecTier::Dbt;
        m.sbcache_->flush(m.dbt_stats_);
        return run_superblocks(m, cancel, stride, out);
    }

    SuperblockCache& sc = *m.sbcache_;
    DbtStats& st = m.dbt_stats_;
    JitStats& jst = m.jit_stats_;
    const TranslateEnv env{
        m.uops_.data(),
        static_cast<u32>(m.uops_.size()),
        m.text_base_,
        m.cfg_.icache.line_bytes,
        m.cfg_.icache_enabled,
        m.cfg_.timing.load_use_stall,
        m.cfg_.timing.mul_extra,
        m.cfg_.timing.div_extra,
        m.cfg_.timing.branch_taken_penalty,
        nullptr, // labels stay unbound; only the dispatcher needs them
    };
    const u64 text_base = m.text_base_;
    const u64 code_bytes = m.code_bytes_;
    const u64 fuel = m.cfg_.fuel;
    const u32 hot = m.cfg_.jit_hot_threshold;

    JitContext& ctx = jt.ctx;
    ctx.regs = m.regs_.data();
    ctx.srf = m.srf_.entries_view();
    ctx.cycles = &m.cycles_;
    ctx.machine = &m;
    // The emitted poll guard is unconditional (cmp countdown, 0), so an
    // uncancellable run parks the countdown at ~0 — the driver re-arms
    // it in the unlikely event 2^64 instructions drain it.
    ctx.countdown = cancel ? stride : ~u64{0};

    // A chain/jalr site waiting for its target's native entry. Applied
    // right before the target is entered natively; dropped when the
    // next block takes any other path (cold, interp tail, no-fit) or
    // the code cache generation moved.
    struct Pending {
        enum Kind { None, Edge, Jalr } kind = None;
        u64 site = 0;
        unsigned way = 0;
        u64 gen = 0;
    } pend;

    // Cold path: run one block through the interpreter, with the
    // dispatcher's batched countdown decrement. Returns false when the
    // run ended (trap / exit) and `out` is set.
    const auto run_cold = [&](u32 len) -> bool {
        pend.kind = Pending::None;
        ++st.block_execs;
        for (u32 i = 0; i < len && m.running_; ++i) {
            const Trap t = m.step();
            if (t.kind != TrapKind::None) {
                out = t;
                return false;
            }
        }
        ctx.countdown = ctx.countdown > len ? ctx.countdown - len : 0;
        return true;
    };

    while (m.running_) {
        // A deferred superblock flush (map_region during an interp-one
        // ecall) invalidates the native code too: it bakes SbOp
        // addresses.
        if (sc.flush_if_pending(st)) jt.drop_code(jst);
        if (ctx.countdown == 0) {
            if (cancel) {
                if ((*cancel)()) return false;
                ctx.countdown = stride;
            } else {
                ctx.countdown = ~u64{0};
            }
        }
        if (m.instret_ >= fuel) {
            out = Trap{TrapKind::FuelExhausted, 0, m.pc_};
            m.running_ = false;
            return true;
        }
        {
            const u64 off = m.pc_ - text_base;
            if (off >= code_bytes || (m.pc_ & 3) != 0) {
                out = Trap{TrapKind::AccessFault, m.pc_, m.pc_};
                m.running_ = false;
                return true;
            }
        }
        Superblock* sb = sc.get_or_translate(env, m.pc_, st);
        if (m.instret_ + sb->len > fuel) {
            // Fuel can run out inside this block: retire the tail one
            // instruction at a time (same as the dispatcher).
            pend.kind = Pending::None;
            while (m.running_) {
                if (m.instret_ >= fuel) {
                    out = Trap{TrapKind::FuelExhausted, 0, m.pc_};
                    m.running_ = false;
                    return true;
                }
                const Trap t = m.step();
                if (t.kind != TrapKind::None) {
                    out = t;
                    return true;
                }
            }
            return true;
        }

        const u8* entry;
        {
            JitTier::BlockRec& rec = jt.record_for(sb);
            entry = rec.entry;
            if (!entry && ++rec.execs < hot) {
                if (!run_cold(sb->len)) return true;
                continue;
            }
        } // rec may dangle past here: compile() can drop the cache
        if (!entry) {
            const u64 gen0 = jt.generation();
            entry = jt.compile(*sb, jst);
            if (jt.generation() != gen0) pend.kind = Pending::None;
            if (!entry) {
                // Too large for even an empty cache: cold forever.
                if (!run_cold(sb->len)) return true;
                continue;
            }
        }

        if (pend.kind != Pending::None && pend.gen == jt.generation()) {
            // The driver proved instret + len <= fuel above, so the
            // baked threshold fuel - len is well-defined.
            if (pend.kind == Pending::Edge)
                jt.patch_chain(pend.site, entry, fuel, sb->len, jst);
            else
                jt.patch_jalr(pend.site, pend.way, entry, fuel, sb->len,
                              jst);
        }
        pend.kind = Pending::None;

        // Native block entries bump dbt_stats.block_execs from inside
        // the emitted prologue (so chain/jalr transfers count too).
        ctx.exit_reason = kExitNone;
        jt.enter(entry, ctx);

        switch (ctx.exit_reason) {
        case kExitLeave:
            break; // poll/fuel bail or interp-one: resume at m.pc_
        case kExitResolve:
            pend = {Pending::Edge, ctx.exit_payload, 0, jt.generation()};
            break;
        case kExitJalrResolve: {
            const u64 p = ctx.exit_payload;
            const u64 sidx = p >> 2;
            unsigned way = static_cast<unsigned>(p & 1);
            if (!(p & 2)) { // tag miss (a hit on an unresolved way
                            // keeps the dispatcher's hit accounting)
                ++st.jalr_misses;
                way = jt.jalr_site(sidx).insert(m.pc_);
            }
            pend = {Pending::Jalr, sidx, way, jt.generation()};
            break;
        }
        case kExitTrap: {
            // Pre-batch trap: per-op prefix accounting, exactly the
            // dispatcher's trap_at_op / apply_prefix.
            ++jst.bailouts;
            const SbOp* op =
                reinterpret_cast<const SbOp*>(ctx.exit_payload);
            m.instret_ += op->block_pos + 1u;
            m.cycles_ += op->cum_static;
            m.icache_.count_repeat_hits(op->cum_repeat);
            const u32 first = op->uop_idx - op->block_pos;
            for (u32 j = first; j <= op->uop_idx; ++j)
                ++(m.mix_.*(m.uops_[j].bucket));
            m.running_ = false;
            out = Trap{static_cast<TrapKind>(ctx.trap_kind),
                       ctx.trap_addr, ctx.trap_pc};
            return true;
        }
        case kExitTrapFinal:
            // Batch already applied (interp-one); the helper cleared
            // running_.
            ++jst.bailouts;
            out = Trap{static_cast<TrapKind>(ctx.trap_kind),
                       ctx.trap_addr, ctx.trap_pc};
            return true;
        default:
            break;
        }
    }
    return true;
}

} // namespace hwst::sim::jit
