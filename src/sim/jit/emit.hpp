// Minimal x86-64 encoder for the tier-2 template JIT (docs/
// performance.md "Tier-2 JIT"). Emits into a byte vector that the code
// cache copies into its executable region; rel32 label fixups are
// resolved by finish(). Only the handful of forms the per-op templates
// need are implemented. Memory operands pick the shortest mod form
// (disp0/disp8/disp32): emitted-code footprint is the JIT's main
// throughput lever — the hot loops must stay inside L1i.
#pragma once

#include <cstddef>
#include <vector>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace hwst::sim::jit {

using common::i32;
using common::i64;
using common::u32;
using common::u64;
using common::u8;

// Register numbers in hardware encoding order.
enum Gpr : u8 {
    RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6,
    RDI = 7, R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13,
    R14 = 14, R15 = 15,
};

/// Condition codes (tttn field of Jcc/SETcc).
enum Cond : u8 {
    CC_B = 0x2,  ///< unsigned <
    CC_AE = 0x3, ///< unsigned >=
    CC_E = 0x4,
    CC_NE = 0x5,
    CC_BE = 0x6, ///< unsigned <=
    CC_A = 0x7,  ///< unsigned >
    CC_L = 0xC,  ///< signed <
    CC_GE = 0xD,
    CC_LE = 0xE,
    CC_G = 0xF,
};

/// ALU /n selectors shared by the 81 /n (imm) forms; the register forms
/// derive their opcodes from the same index.
enum AluOp : u8 {
    ALU_ADD = 0,
    ALU_OR = 1,
    ALU_AND = 4,
    ALU_SUB = 5,
    ALU_XOR = 6,
    ALU_CMP = 7,
};

enum ShiftOp : u8 { SH_SHL = 4, SH_SHR = 5, SH_SAR = 7 };

class Asm {
public:
    std::vector<u8> out;

    // Emission is byte-at-a-time push_back; pre-size the buffers so a
    // typical block (a few KB) never reallocates mid-emit. Compile time
    // is part of every run's fixed cost on short workloads.
    Asm()
    {
        out.reserve(1u << 14);
        labels_.reserve(64);
        fixups_.reserve(128);
    }

    u64 size() const { return out.size(); }

    // ---- labels ------------------------------------------------------
    int label()
    {
        labels_.push_back(-1);
        return static_cast<int>(labels_.size()) - 1;
    }
    void bind(int l) { labels_[static_cast<unsigned>(l)] = static_cast<i64>(out.size()); }

    /// Patch every rel32 that referenced a label. Must run exactly once,
    /// after all code is emitted.
    void finish()
    {
        for (const Fixup& f : fixups_) {
            const i64 target = labels_[static_cast<unsigned>(f.lab)];
            if (target < 0) throw common::SimError{"jit: unbound label"};
            const i64 rel = target - static_cast<i64>(f.off) - 4;
            patch32(f.off, static_cast<u32>(static_cast<i32>(rel)));
        }
    }

    void patch32(u64 off, u32 v)
    {
        out[off] = static_cast<u8>(v);
        out[off + 1] = static_cast<u8>(v >> 8);
        out[off + 2] = static_cast<u8>(v >> 16);
        out[off + 3] = static_cast<u8>(v >> 24);
    }

    // ---- raw emission ------------------------------------------------
    void b(int v) { out.push_back(static_cast<u8>(v)); }
    void d32(u32 v)
    {
        b(static_cast<int>(v & 0xFF));
        b(static_cast<int>((v >> 8) & 0xFF));
        b(static_cast<int>((v >> 16) & 0xFF));
        b(static_cast<int>((v >> 24) & 0xFF));
    }
    void d64(u64 v)
    {
        d32(static_cast<u32>(v));
        d32(static_cast<u32>(v >> 32));
    }

    // ---- moves -------------------------------------------------------
    /// mov r64, imm (shortest encoding; movabs when it must be).
    /// Returns the offset of the immediate when the 8-byte form was
    /// used, ~0 otherwise (patch sites force the long form via
    /// mov_ri64).
    void mov_ri(Gpr r, u64 imm)
    {
        if (imm <= 0xFFFFFFFFull) {
            if (r >= 8) b(0x41);
            b(0xB8 + (r & 7));
            d32(static_cast<u32>(imm));
        } else if (static_cast<i64>(imm) == static_cast<i64>(static_cast<i32>(imm))) {
            rex(1, 0, r);
            b(0xC7);
            modrm_reg(0, r);
            d32(static_cast<u32>(imm));
        } else {
            mov_ri64(r, imm);
        }
    }
    /// movabs r64, imm64 — always the 10-byte form; returns the offset
    /// of the imm64 (patchable).
    u64 mov_ri64(Gpr r, u64 imm)
    {
        rex(1, 0, r);
        b(0xB8 + (r & 7));
        const u64 off = out.size();
        d64(imm);
        return off;
    }
    void mov_rr(Gpr d, Gpr s)
    {
        rex(1, s, d);
        b(0x89);
        modrm_reg(s, d);
    }
    /// mov r64, [base + disp]
    void mov_rm(Gpr d, Gpr base, i32 disp)
    {
        rex(1, d, base);
        b(0x8B);
        modrm_mem(d, base, disp);
    }
    /// mov [base + disp], r64
    void mov_mr(Gpr base, i32 disp, Gpr s)
    {
        rex(1, s, base);
        b(0x89);
        modrm_mem(s, base, disp);
    }
    /// mov qword [base + disp], imm32 (sign-extended)
    void mov_mi32(Gpr base, i32 disp, i32 imm)
    {
        rex(1, 0, base);
        b(0xC7);
        modrm_mem(0, base, disp);
        d32(static_cast<u32>(imm));
    }
    /// mov dword [base + disp], imm32
    void mov_mi32_32(Gpr base, i32 disp, i32 imm)
    {
        rex(0, 0, base);
        b(0xC7);
        modrm_mem(0, base, disp);
        d32(static_cast<u32>(imm));
    }
    /// mov byte [base + disp], imm8
    void mov_mi8(Gpr base, i32 disp, u8 imm)
    {
        rex(0, 0, base);
        b(0xC6);
        modrm_mem(0, base, disp);
        b(imm);
    }

    /// Zero/sign-extending load of `width` bytes into a full r64.
    void load_mem(Gpr d, Gpr base, i32 disp, unsigned width, bool sx)
    {
        switch (width) {
        case 1:
            rex(1, d, base);
            b(0x0F);
            b(sx ? 0xBE : 0xB6);
            break;
        case 2:
            rex(1, d, base);
            b(0x0F);
            b(sx ? 0xBF : 0xB7);
            break;
        case 4:
            if (sx) {
                rex(1, d, base);
                b(0x63); // movsxd
            } else {
                rex(0, d, base);
                b(0x8B); // mov r32 zero-extends
            }
            break;
        default:
            rex(1, d, base);
            b(0x8B);
            break;
        }
        modrm_mem(d, base, disp);
    }
    /// Store the low `width` bytes of `s`.
    void store_mem(Gpr base, i32 disp, Gpr s, unsigned width)
    {
        switch (width) {
        case 1:
            // rax..rbx low bytes need no REX; force one for SPL-class
            // or extended registers.
            if (s >= 4 || base >= 8) rex_raw(0, s, base, true);
            b(0x88);
            break;
        case 2:
            b(0x66);
            rex(0, s, base);
            b(0x89);
            break;
        case 4:
            rex(0, s, base);
            b(0x89);
            break;
        default:
            rex(1, s, base);
            b(0x89);
            break;
        }
        modrm_mem(s, base, disp);
    }

    // ---- ALU ---------------------------------------------------------
    void alu_rr(AluOp op, Gpr d, Gpr s) // d = d OP s
    {
        rex(1, d, s);
        b(op * 8 + 3);
        modrm_reg(d, s);
    }
    void alu_rm(AluOp op, Gpr d, Gpr base, i32 disp) // d = d OP [m]
    {
        rex(1, d, base);
        b(op * 8 + 3);
        modrm_mem(d, base, disp);
    }
    void alu_mr(AluOp op, Gpr base, i32 disp, Gpr s) // [m] = [m] OP s
    {
        rex(1, s, base);
        b(op * 8 + 1);
        modrm_mem(s, base, disp);
    }
    void alu_ri(AluOp op, Gpr r, i32 imm)
    {
        rex(1, 0, r);
        if (imm >= -128 && imm <= 127) {
            b(0x83);
            modrm_reg(static_cast<Gpr>(op), r);
            b(static_cast<u8>(imm));
        } else {
            b(0x81);
            modrm_reg(static_cast<Gpr>(op), r);
            d32(static_cast<u32>(imm));
        }
    }
    void alu_ri32(AluOp op, Gpr r, i32 imm) // 32-bit form (clears upper)
    {
        rex(0, 0, r);
        if (imm >= -128 && imm <= 127) {
            b(0x83);
            modrm_reg(static_cast<Gpr>(op), r);
            b(static_cast<u8>(imm));
        } else {
            b(0x81);
            modrm_reg(static_cast<Gpr>(op), r);
            d32(static_cast<u32>(imm));
        }
    }
    void alu_mi(AluOp op, Gpr base, i32 disp, i32 imm) // qword [m] OP= imm
    {
        rex(1, 0, base);
        if (imm >= -128 && imm <= 127) {
            b(0x83);
            modrm_mem(static_cast<Gpr>(op), base, disp);
            b(static_cast<u8>(imm));
        } else {
            b(0x81);
            modrm_mem(static_cast<Gpr>(op), base, disp);
            d32(static_cast<u32>(imm));
        }
    }
    void alu_rr32(AluOp op, Gpr d, Gpr s) // 32-bit, clears upper
    {
        rex(0, d, s);
        b(op * 8 + 3);
        modrm_reg(d, s);
    }
    void test_rr(Gpr a, Gpr bq)
    {
        rex(1, bq, a);
        b(0x85);
        modrm_reg(bq, a);
    }
    void test_rr32(Gpr a, Gpr bq)
    {
        rex(0, bq, a);
        b(0x85);
        modrm_reg(bq, a);
    }
    void test_rr8(Gpr a, Gpr bq) // low bytes; REX forced for SPL-class
    {
        rex_raw(0, bq, a, a >= 4 || bq >= 4);
        b(0x84);
        modrm_reg(bq, a);
    }
    void test_mi8(Gpr base, i32 disp, u8 imm) // test byte [m], imm8
    {
        rex(0, 0, base);
        b(0xF6);
        modrm_mem(0, base, disp);
        b(imm);
    }
    void alu_mi8(AluOp op, Gpr base, i32 disp, u8 imm) // byte [m] OP imm8
    {
        rex(0, 0, base);
        b(0x80);
        modrm_mem(op, base, disp);
        b(imm);
    }
    void imul_rr(Gpr d, Gpr s)
    {
        rex(1, d, s);
        b(0x0F);
        b(0xAF);
        modrm_reg(d, s);
    }
    void shift_ri(ShiftOp op, Gpr r, u8 imm)
    {
        rex(1, 0, r);
        b(0xC1);
        modrm_reg(static_cast<Gpr>(op), r);
        b(imm);
    }
    void shift_ri32(ShiftOp op, Gpr r, u8 imm)
    {
        rex(0, 0, r);
        b(0xC1);
        modrm_reg(static_cast<Gpr>(op), r);
        b(imm);
    }
    void shift_cl(ShiftOp op, Gpr r)
    {
        rex(1, 0, r);
        b(0xD3);
        modrm_reg(static_cast<Gpr>(op), r);
    }
    void shift_cl32(ShiftOp op, Gpr r)
    {
        rex(0, 0, r);
        b(0xD3);
        modrm_reg(static_cast<Gpr>(op), r);
    }
    /// lea d, [base + index*scale + disp] (scale 1/2/4/8)
    void lea(Gpr d, Gpr base, Gpr index, unsigned scale, i32 disp)
    {
        unsigned ss = scale == 8 ? 3 : scale == 4 ? 2 : scale == 2 ? 1 : 0;
        rex_raw(1, d, base, false, index);
        b(0x8D);
        b(0x80 | ((d & 7) << 3) | 4); // mod=10, rm=SIB
        b(static_cast<int>((ss << 6) | ((index & 7) << 3) | (base & 7)));
        d32(static_cast<u32>(disp));
    }
    void cdqe() // rax = sign-extended eax
    {
        b(0x48);
        b(0x98);
    }
    void setcc(Cond c, Gpr r8) // low byte of r8 (use RAX..RBX)
    {
        b(0x0F);
        b(0x90 + c);
        modrm_reg(0, r8);
    }
    void movzx8_32(Gpr d, Gpr s8) // d32 = zero-extend low byte
    {
        rex(0, d, s8);
        b(0x0F);
        b(0xB6);
        modrm_reg(d, s8);
    }
    void cmov(Cond c, Gpr d, Gpr s)
    {
        rex(1, d, s);
        b(0x0F);
        b(0x40 + c);
        modrm_reg(d, s);
    }

    // ---- control flow ------------------------------------------------
    void jcc(Cond c, int lab)
    {
        b(0x0F);
        b(0x80 + c);
        fixups_.push_back({out.size(), lab});
        d32(0);
    }
    void jmp(int lab)
    {
        b(0xE9);
        fixups_.push_back({out.size(), lab});
        d32(0);
    }
    /// jmp rel32 with a caller-computed displacement (targets outside
    /// this assembly unit, e.g. the shared epilogue). Returns the offset
    /// of the rel32 for later patching.
    u64 jmp_rel32(i32 rel)
    {
        b(0xE9);
        const u64 off = out.size();
        d32(static_cast<u32>(rel));
        return off;
    }
    /// call rel32 with a caller-computed displacement (the shared
    /// runtime routines live outside this assembly unit).
    u64 call_rel32(i32 rel)
    {
        b(0xE8);
        const u64 off = out.size();
        d32(static_cast<u32>(rel));
        return off;
    }
    void call_r(Gpr r)
    {
        if (r >= 8) b(0x41);
        b(0xFF);
        modrm_reg(2, r);
    }
    void jmp_r(Gpr r)
    {
        if (r >= 8) b(0x41);
        b(0xFF);
        modrm_reg(4, r);
    }
    void push(Gpr r)
    {
        if (r >= 8) b(0x41);
        b(0x50 + (r & 7));
    }
    void pop(Gpr r)
    {
        if (r >= 8) b(0x41);
        b(0x58 + (r & 7));
    }
    void ret() { b(0xC3); }

    // ---- composite helpers -------------------------------------------
    /// r = m.regs_[idx] style absolute-address access: point `scratch`
    /// at `addr` (movabs), leaving [scratch + 0] addressable.
    void abs(Gpr scratch, const void* addr)
    {
        mov_ri64(scratch, reinterpret_cast<u64>(addr));
    }

private:
    struct Fixup {
        u64 off;
        int lab;
    };
    std::vector<i64> labels_;
    std::vector<Fixup> fixups_;

    void rex(int w, unsigned reg, unsigned rm)
    {
        rex_raw(w, reg, rm, false);
    }
    /// REX with explicit force (byte-register ops) and optional index.
    void rex_raw(int w, unsigned reg, unsigned rm, bool force,
                 unsigned index = 0)
    {
        const u8 r = static_cast<u8>(
            0x40 | (w << 3) | ((reg >= 8) << 2) | ((index >= 8) << 1) |
            (rm >= 8));
        if (r != 0x40 || force) b(r);
    }
    void modrm_reg(unsigned reg, unsigned rm)
    {
        b(static_cast<int>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
    }
    /// [base + disp] with the shortest mod form: no displacement byte
    /// when disp == 0 (except rbp/r13, whose mod=00 means rip-relative),
    /// disp8 when it fits, disp32 otherwise (SIB for rsp/r12).
    void modrm_mem(unsigned reg, unsigned base, i32 disp)
    {
        const unsigned rm = (base & 7) == 4 ? 4 : (base & 7);
        const int mod = (disp == 0 && (base & 7) != 5) ? 0x00
                        : (disp >= -128 && disp <= 127) ? 0x40
                                                        : 0x80;
        b(mod | static_cast<int>(((reg & 7) << 3) | rm));
        if ((base & 7) == 4) b(0x24);
        if (mod == 0x40) b(static_cast<int>(static_cast<u8>(disp)));
        else if (mod == 0x80) d32(static_cast<u32>(disp));
    }
};

} // namespace hwst::sim::jit
