// Tier-2 template JIT: code cache, per-op templates and the helper
// call-outs (jit.hpp has the policy overview; sim/jit/runtime.cpp the
// driver loop). The bit-exactness strategy is two-layered:
//
//  * Everything non-trivial (checked ops, HWST metadata ops, div/rem
//    corner cases, slow memory paths, interp-one) calls back into C++
//    helpers in JitOps below, which are line-for-line transcriptions of
//    the dispatcher bodies in sim/dispatch.cpp. Helpers never unwind
//    through emitted frames: MemFault is caught inside and converted to
//    an exit-with-trap, exactly where the dispatcher's catch converts
//    it.
//  * The inlined fast paths (ALU ops, load/store TLB probe, cache
//    recent-line probe, SRF clear/propagate) replicate structures whose
//    owners publish an explicit emitted-code contract: mem::Memory::
//    tlb_view(), mem::Cache::jit_view(), ShadowRegFile::entries_view().
//
// Register convention inside emitted code (pinned by the entry thunk,
// all callee-saved so helper calls need no spills):
//   r12 = &Machine::regs_[0]      rbp = SRF entry array base
//   r13 = JitContext*             r14 = &Machine::cycles_
//   r15 = Machine* (helper arg0)  rbx = op-scratch (live across calls)
#include "sim/jit/jit.hpp"

#include <cstring>
#include <limits>

#include "sim/machine.hpp"

#if HWST_JIT_X86_64
#include <sys/mman.h>
#include <unistd.h>

#include "sim/jit/emit.hpp"
#endif

namespace hwst::sim::jit {

using common::i32;
using common::i64;
using hwst::Trap;
using hwst::TrapKind;
using mem::MemFault;
using riscv::Reg;

namespace {
u64 sext32(u64 v)
{
    return static_cast<u64>(static_cast<i64>(static_cast<i32>(v)));
}
} // namespace

// ---------------------------------------------------------------------
// Helper call-outs. Each is a transcription of the matching dispatcher
// body (sim/dispatch.cpp), minus the PRO() prologue, which the
// templates emit inline. Status helpers return 0 = continue in emitted
// code, 1 = exit (the JitContext holds the reason).
// ---------------------------------------------------------------------
struct JitOps {
    // ---- void helpers (cannot exit) ---------------------------------
    static void pro_icache(Machine* m, const SbOp* op)
    {
        m->cycles_ += m->icache_.access(op->pc) - m->cfg_.icache.hit_cycles;
    }
    static void dcache_access(Machine* m, u64 addr)
    {
        m->cycles_ += m->dcache_.access(addr) - m->cfg_.dcache.hit_cycles;
    }
    static void kb_flush(Machine* m) { m->keybuffer_.flush(); }

    // WR_CLEAR, as the dispatcher macro: unconditional write (rd == x0
    // variants of these kinds were folded to Nop at translation).
    static void wr_clear(Machine* m, const SbOp* op, u64 v)
    {
        m->regs_[op->rd] = v;
        m->srf_.clear(static_cast<Reg>(op->rd));
    }

    static void mulh(Machine* m, const SbOp* op)
    {
        wr_clear(m, op,
                 static_cast<u64>(
                     (static_cast<__int128>(
                          static_cast<i64>(m->regs_[op->rs1])) *
                      static_cast<i64>(m->regs_[op->rs2])) >>
                     64));
    }
    static void mulhsu(Machine* m, const SbOp* op)
    {
        wr_clear(m, op,
                 static_cast<u64>(
                     (static_cast<__int128>(
                          static_cast<i64>(m->regs_[op->rs1])) *
                      static_cast<unsigned __int128>(m->regs_[op->rs2])) >>
                     64));
    }
    static void mulhu(Machine* m, const SbOp* op)
    {
        wr_clear(m, op,
                 static_cast<u64>(
                     (static_cast<unsigned __int128>(m->regs_[op->rs1]) *
                      static_cast<unsigned __int128>(m->regs_[op->rs2])) >>
                     64));
    }
    static void div(Machine* m, const SbOp* op)
    {
        const i64 a = static_cast<i64>(m->regs_[op->rs1]);
        const i64 b = static_cast<i64>(m->regs_[op->rs2]);
        if (b == 0) wr_clear(m, op, ~u64{0});
        else if (a == std::numeric_limits<i64>::min() && b == -1)
            wr_clear(m, op, m->regs_[op->rs1]);
        else wr_clear(m, op, static_cast<u64>(a / b));
    }
    static void divu(Machine* m, const SbOp* op)
    {
        const u64 a = m->regs_[op->rs1], b = m->regs_[op->rs2];
        wr_clear(m, op, b == 0 ? ~u64{0} : a / b);
    }
    static void rem(Machine* m, const SbOp* op)
    {
        const i64 a = static_cast<i64>(m->regs_[op->rs1]);
        const i64 b = static_cast<i64>(m->regs_[op->rs2]);
        if (b == 0) wr_clear(m, op, m->regs_[op->rs1]);
        else if (a == std::numeric_limits<i64>::min() && b == -1)
            wr_clear(m, op, 0);
        else wr_clear(m, op, static_cast<u64>(a % b));
    }
    static void remu(Machine* m, const SbOp* op)
    {
        const u64 a = m->regs_[op->rs1], b = m->regs_[op->rs2];
        wr_clear(m, op, b == 0 ? a : a % b);
    }
    static void divw(Machine* m, const SbOp* op)
    {
        const i32 a = static_cast<i32>(m->regs_[op->rs1]);
        const i32 b = static_cast<i32>(m->regs_[op->rs2]);
        if (b == 0) wr_clear(m, op, ~u64{0});
        else if (a == std::numeric_limits<i32>::min() && b == -1)
            wr_clear(m, op, sext32(static_cast<u64>(static_cast<u32>(a))));
        else
            wr_clear(m, op,
                     sext32(static_cast<u64>(static_cast<u32>(a / b))));
    }
    static void divuw(Machine* m, const SbOp* op)
    {
        const u32 a = static_cast<u32>(m->regs_[op->rs1]);
        const u32 b = static_cast<u32>(m->regs_[op->rs2]);
        wr_clear(m, op, b == 0 ? ~u64{0} : sext32(a / b));
    }
    static void remw(Machine* m, const SbOp* op)
    {
        const i32 a = static_cast<i32>(m->regs_[op->rs1]);
        const i32 b = static_cast<i32>(m->regs_[op->rs2]);
        if (b == 0)
            wr_clear(m, op, sext32(static_cast<u64>(static_cast<u32>(a))));
        else if (a == std::numeric_limits<i32>::min() && b == -1)
            wr_clear(m, op, 0);
        else
            wr_clear(m, op,
                     sext32(static_cast<u64>(static_cast<u32>(a % b))));
    }
    static void remuw(Machine* m, const SbOp* op)
    {
        const u32 a = static_cast<u32>(m->regs_[op->rs1]);
        const u32 b = static_cast<u32>(m->regs_[op->rs2]);
        wr_clear(m, op, b == 0 ? sext32(a) : sext32(a % b));
    }

    // ---- emission-time state bundle ---------------------------------
    /// Everything BlockEmitter bakes into emitted code, fetched in one
    /// place because JitOps (not the emitter) is the Machine's friend.
    /// All pointers are stable for the Machine's lifetime.
    struct Views {
        mem::Cache::JitView icv;
        mem::Cache::JitView dcv;
        mem::Memory::TlbView tlb;
        u64* instret;
        u64* pc;
        void* llr; ///< &last_load_rd_ (a Reg, 1 byte)
        u64* chained;
        u64* block_execs;
        u64* jalr_hits;
        InstrMix* mix;
        u64 lock_base;
        u64 lock_bytes;
        unsigned lu_stall;
        unsigned taken_pen;
        /// &csr.status (HwstCsrFile::status_view()): the checked-op
        /// templates test the spatial/temporal enable bits inline.
        const u64* csr_status;
        /// The Machine itself (pinned in r15): every field above except
        /// tlb line arrays and jalr sites lives inside the Machine by
        /// value, so templates address them as [r15 + disp] instead of
        /// materialising a 10-byte absolute address per access.
        const char* mbase;
    };
    static Views views(Machine& m)
    {
        const auto& lay = m.program_.layout();
        return Views{m.icache_.jit_view(),
                     m.dcache_.jit_view(),
                     m.mem_.tlb_view(),
                     &m.instret_,
                     &m.pc_,
                     &m.last_load_rd_,
                     &m.dbt_stats_.chained,
                     &m.dbt_stats_.block_execs,
                     &m.dbt_stats_.jalr_hits,
                     &m.mix_,
                     lay.lock_base,
                     lay.lock_entries * 8,
                     m.cfg_.timing.load_use_stall,
                     m.cfg_.timing.branch_taken_penalty,
                     m.csrs_.status_view(),
                     reinterpret_cast<const char*>(&m)};
    }

    // ---- status helpers ---------------------------------------------
    /// Fill the context with a pre-batch trap (the driver applies the
    /// per-op prefix accounting, like the dispatcher's trap_at_op).
    static u64 trap_out(JitContext* c, const SbOp* op, TrapKind k,
                        u64 addr, u64 pc)
    {
        c->exit_reason = kExitTrap;
        c->trap_kind = static_cast<u32>(k);
        c->trap_addr = addr;
        c->trap_pc = pc;
        c->exit_payload = reinterpret_cast<u64>(op);
        return 1;
    }

    /// Slow path of the inlined plain-load template: page straddle or
    /// TLB miss. The dcache access already happened inline.
    template <unsigned W, bool SX>
    static u64 load_slow(Machine* m, const SbOp* op, JitContext* c,
                         u64 addr)
    {
        try {
            const u64 v = m->mem_.load(addr, W, SX);
            if (op->rd) {
                m->regs_[op->rd] = v;
                m->srf_.clear(static_cast<Reg>(op->rd));
            }
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    /// Slow path of the inlined plain-store template (straddle, miss,
    /// or a hit on an unmaterialised page). Keybuffer coherence and the
    /// dcache access already happened inline.
    template <unsigned W>
    static u64 store_slow(Machine* m, const SbOp* op, JitContext* c,
                          u64 addr)
    {
        try {
            m->mem_.store(addr, W, m->regs_[op->rs2]);
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    /// SPATIAL_CHECK transcription (dispatch.cpp); 0 = pass.
    static u64 spatial(Machine* m, const SbOp* op, JitContext* c, u64 addr)
    {
        if (!m->csrs_.spatial_enabled()) return 0;
        const auto& se = m->srf_.entry(static_cast<Reg>(op->rs1));
        if (!se.valid_lo || se.value.lo == 0) return 0;
        const auto ac = m->comp_version_ == m->csrs_.version()
                            ? m->comp_memo_
                            : m->active_compression();
        if (!ac.valid) {
            m->csrs_.record_violation(
                static_cast<u64>(TrapKind::IllegalInstruction),
                hwst::kCsrBitw);
            return trap_out(c, op, TrapKind::IllegalInstruction,
                            hwst::kCsrBitw, op->pc);
        }
        if (metadata::is_saturated_spatial(se.value.lo, ac.cfg)) {
            m->scu_.note_saturated();
            m->csrs_.record_violation(
                static_cast<u64>(TrapKind::SpatialViolation), addr);
            return trap_out(c, op, TrapKind::SpatialViolation, addr,
                            op->pc);
        }
        u64 base = 0, bound = 0;
        metadata::decompress_spatial(se.value.lo, ac.cfg, base, bound);
        if (m->scu_.check(addr, op->width, base, bound).pass) return 0;
        m->csrs_.record_violation(
            static_cast<u64>(TrapKind::SpatialViolation), addr);
        return trap_out(c, op, TrapKind::SpatialViolation, addr, op->pc);
    }

    static u64 checked_load(Machine* m, const SbOp* op, JitContext* c)
    {
        try {
            m->pc_ = op->pc; // traps leave pc_ at the faulting pc
            const u64 a = m->regs_[op->rs1] + static_cast<u64>(op->imm);
            if (const u64 st = spatial(m, op, c, a)) return st;
            m->cycles_ +=
                m->dcache_.access(a) - m->cfg_.dcache.hit_cycles;
            const u64 v = m->mem_.load(a, op->width,
                                       (op->flags & kOpSignedLoad) != 0);
            if (op->rd) {
                m->regs_[op->rd] = v;
                m->srf_.clear(static_cast<Reg>(op->rd));
            }
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    static u64 checked_store(Machine* m, const SbOp* op, JitContext* c)
    {
        try {
            m->pc_ = op->pc;
            const u64 a = m->regs_[op->rs1] + static_cast<u64>(op->imm);
            if (const u64 st = spatial(m, op, c, a)) return st;
            m->cycles_ +=
                m->dcache_.access(a) - m->cfg_.dcache.hit_cycles;
            const u64 v = m->regs_[op->rs2];
            const auto& lay = m->program_.layout();
            if (v == 0 && a - lay.lock_base < lay.lock_entries * 8)
                m->keybuffer_.flush();
            m->mem_.store(a, op->width, v);
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    static u64 sbd_store(Machine* m, const SbOp* op, JitContext* c)
    {
        try {
            m->pc_ = op->pc;
            const auto& e = m->srf_.entry(static_cast<Reg>(op->rs2));
            const u64 a = m->smac_.map(m->regs_[op->rs1] +
                                           static_cast<u64>(op->imm),
                                       m->csrs_.sm_offset()) +
                          op->aux;
            const u64 v = op->aux ? (e.valid_hi ? e.value.hi : 0)
                                  : (e.valid_lo ? e.value.lo : 0);
            m->cycles_ +=
                m->dcache_.access(a) - m->cfg_.dcache.hit_cycles;
            m->mem_.store(a, 8, v);
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    static u64 lbd_load(Machine* m, const SbOp* op, JitContext* c)
    {
        try {
            m->pc_ = op->pc;
            const u64 a = m->smac_.map(m->regs_[op->rs1] +
                                           static_cast<u64>(op->imm),
                                       m->csrs_.sm_offset()) +
                          op->aux;
            m->cycles_ +=
                m->dcache_.access(a) - m->cfg_.dcache.hit_cycles;
            const u64 v = m->mem_.load(a, 8, false);
            if (op->aux)
                m->srf_.set_hi(static_cast<Reg>(op->rd), v, v != 0);
            else
                m->srf_.set_lo(static_cast<Reg>(op->rd), v, v != 0);
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    static u64 tchk(Machine* m, const SbOp* op, JitContext* c)
    {
        try {
            m->pc_ = op->pc;
            if (!m->csrs_.temporal_enabled()) return 0;
            const auto& e = m->srf_.entry(static_cast<Reg>(op->rs1));
            if (!e.valid_hi || e.value.hi == 0) return 0;
            const auto ac = m->comp_version_ == m->csrs_.version()
                                ? m->comp_memo_
                                : m->active_compression();
            if (!ac.valid) {
                m->csrs_.record_violation(
                    static_cast<u64>(TrapKind::IllegalInstruction),
                    hwst::kCsrBitw);
                return trap_out(c, op, TrapKind::IllegalInstruction,
                                hwst::kCsrBitw, op->pc);
            }
            if (metadata::is_saturated_temporal(e.value.hi, ac.cfg)) {
                m->tcu_.note_saturated();
                m->csrs_.record_violation(
                    static_cast<u64>(TrapKind::TemporalViolation),
                    m->regs_[op->rs1]);
                return trap_out(c, op, TrapKind::TemporalViolation,
                                m->regs_[op->rs1], op->pc);
            }
            u64 key = 0, lock = 0;
            metadata::decompress_temporal(e.value.hi, ac.cfg, key, lock);
            u64 mem_key = 0;
            if (!m->cfg_.keybuffer_enabled) {
                m->cycles_ += m->dcache_.access(lock);
                mem_key = m->mem_.load(lock, 8, false);
            } else if (const auto hit = m->keybuffer_.lookup(lock)) {
                mem_key = *hit;
            } else {
                m->cycles_ += m->dcache_.access(lock);
                mem_key = m->mem_.load(lock, 8, false);
                m->keybuffer_.insert(lock, mem_key);
            }
            if (!m->tcu_.check(key, mem_key).pass) {
                m->csrs_.record_violation(
                    static_cast<u64>(TrapKind::TemporalViolation), lock);
                return trap_out(c, op, TrapKind::TemporalViolation, lock,
                                op->pc);
            }
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    static u64 bndr(Machine* m, const SbOp* op, JitContext* c)
    {
        m->pc_ = op->pc;
        const auto ac = m->comp_version_ == m->csrs_.version()
                            ? m->comp_memo_
                            : m->active_compression();
        if (!ac.valid) {
            m->csrs_.record_violation(
                static_cast<u64>(TrapKind::IllegalInstruction),
                hwst::kCsrBitw);
            return trap_out(c, op, TrapKind::IllegalInstruction,
                            hwst::kCsrBitw, op->pc);
        }
        if (op->aux)
            m->srf_.bind_temporal(
                static_cast<Reg>(op->rd),
                metadata::compress_temporal(m->regs_[op->rs1],
                                            m->regs_[op->rs2], ac.cfg));
        else
            m->srf_.bind_spatial(
                static_cast<Reg>(op->rd),
                metadata::compress_spatial(m->regs_[op->rs1],
                                           m->regs_[op->rs2], ac.cfg));
        return 0;
    }

    static u64 hwst(Machine* m, const SbOp* op, JitContext* c)
    {
        try {
            const Uop& u = m->uops_[op->uop_idx];
            m->pc_ = op->pc;
            const Trap t = m->exec_hwst(u.in);
            if (t.kind != TrapKind::None)
                return trap_out(c, op, t.kind, t.addr, t.pc);
            m->srf_effects(u.in, u.fmt);
            return 0;
        } catch (const MemFault& f) {
            return trap_out(c, op, TrapKind::AccessFault, f.addr, op->pc);
        }
    }

    /// L_InterpOne transcription. The emitted code applied the batch
    /// already; this always exits (no chaining past a proxy-kernel
    /// call). A trap here is final: the batch accounting stands, like
    /// the dispatcher's batch_applied path.
    static u64 interp_one(Machine* m, const SbOp* op, JitContext* c)
    {
        const auto final_trap = [&](TrapKind k, u64 addr, u64 pc) {
            m->running_ = false;
            c->exit_reason = kExitTrapFinal;
            c->trap_kind = static_cast<u32>(k);
            c->trap_addr = addr;
            c->trap_pc = pc;
            return u64{1};
        };
        try {
            const Uop& u = m->uops_[op->uop_idx];
            m->pc_ = op->pc;
            u64 next_pc = op->pc + 4;
            const Trap t = m->exec(u.in, next_pc);
            if (t.kind != TrapKind::None)
                return final_trap(t.kind, t.addr, t.pc);
            m->srf_effects(u.in, u.fmt);
            m->pc_ = next_pc;
            c->exit_reason = kExitLeave;
            return 1;
        } catch (const MemFault& f) {
            return final_trap(TrapKind::AccessFault, f.addr, op->pc);
        }
    }
};

#if HWST_JIT_X86_64

// Layout contracts the templates bake in.
static_assert(sizeof(metadata::ShadowRegFile::Entry) == 24);
static_assert(offsetof(metadata::ShadowRegFile::Entry, valid_lo) == 16);
static_assert(offsetof(metadata::ShadowRegFile::Entry, valid_hi) == 17);
static_assert(sizeof(mem::Memory::TlbEntry) == 16);
static_assert(sizeof(mem::Memory::TlbSet) == 40);
static_assert(offsetof(mem::Memory::TlbEntry, host) == 8);
namespace {
using JalrSite = JalrCache2<const void*>;
} // namespace
static_assert(offsetof(JalrSite, tag) == 0);
static_assert(offsetof(JalrSite, way) == 16);
static_assert(offsetof(JalrSite, aux) == 32);
static_assert(sizeof(Reg) == 1);
static_assert(std::is_standard_layout_v<JitContext>);

namespace {

constexpr i32 kCtxCountdown = offsetof(JitContext, countdown);
constexpr i32 kCtxReason = offsetof(JitContext, exit_reason);
constexpr i32 kCtxPayload = offsetof(JitContext, exit_payload);

constexpr unsigned log2w(unsigned width)
{
    return width == 1 ? 0 : width == 2 ? 1 : width == 4 ? 2 : 3;
}

/// Emits the shared per-region runtime right after the entry thunk:
/// the plain load/store fast-path subroutines (dcache recent-line
/// probe + TLB probe + host access) and one trampoline per C++ helper.
/// Both are reached from block code by a 5-byte rel32 call, which is
/// the point — per-op call sites shrink from two movabs to one call,
/// and the probe bodies exist once per region instead of once per op,
/// keeping hot blocks inside L1i.
///
/// Stack discipline: block code runs at rsp ≡ 0 mod 16, so a called
/// routine runs at rsp ≡ 8. C call-outs from inside a routine re-align
/// with a single push (which also preserves rdi, the store-value
/// argument). Trampolines tail-jump into their helper, so the helper
/// sees the block's return address exactly as if called directly.
struct RtEmitter {
    Asm& a;
    const JitOps::Views& v;
    JitTier::RtOffsets& rt;

    i32 moff(const void* p) const
    {
        return static_cast<i32>(reinterpret_cast<const char*>(p) - v.mbase);
    }

    /// Inline recent-line probe on the address in rbx; slow path calls
    /// Cache::access via the helper. Clobbers rax/rcx/rdx, keeps rdi.
    void dcache_probe()
    {
        const int Lslow = a.label(), Ldone = a.label();
        a.mov_rr(RAX, RBX);
        a.shift_ri(SH_SHR, RAX, static_cast<u8>(v.dcv.line_shift));
        a.mov_rm(RDX, R15, moff(v.dcv.last_line));
        a.test_rr(RDX, RDX);
        a.jcc(CC_E, Lslow);
        a.alu_mr(ALU_CMP, R15, moff(v.dcv.last_line_addr), RAX);
        a.jcc(CC_NE, Lslow);
        a.alu_mi(ALU_ADD, R15, moff(v.dcv.accesses), 1);
        a.mov_rm(RAX, R15, moff(v.dcv.tick));
        a.alu_ri(ALU_ADD, RAX, 1);
        a.mov_mr(R15, moff(v.dcv.tick), RAX);
        a.mov_mr(RDX, static_cast<i32>(v.dcv.line_lru_offset), RAX);
        a.mov_mi8(R15, moff(v.dcv.last_miss), 0);
        a.jmp(Ldone);
        a.bind(Lslow);
        a.push(RDI); // re-align rsp for the C ABI; also keeps the value
        a.mov_rr(RDI, R15);
        a.mov_rr(RSI, RBX);
        a.abs(RAX, reinterpret_cast<const void*>(&JitOps::dcache_access));
        a.call_r(RAX);
        a.pop(RDI);
        a.bind(Ldone);
    }

    /// Probe both TLB ways for the (single-page) access in rbx; on a
    /// hit, rsi = host pointer of the page (possibly null) and *hits is
    /// bumped by the caller per the tlb_view() contract. Jumps to
    /// `Lslow` on straddle or miss. Clobbers rax/rcx/rdx/rsi.
    void tlb_probe(unsigned width, int Lslow)
    {
        const int Lw0 = a.label(), Lw1 = a.label(), Lhost = a.label();
        a.mov_rr(RAX, RBX);
        a.alu_ri32(ALU_AND, RAX, 4095);
        a.alu_ri32(ALU_CMP, RAX, static_cast<i32>(4096 - width));
        a.jcc(CC_A, Lslow);
        a.mov_rr(RDX, RBX);
        a.alu_ri(ALU_AND, RDX, static_cast<i32>(0xFFFFF000)); // sign-extends
        a.mov_rr(RCX, RBX);
        a.shift_ri(SH_SHR, RCX, 12);
        a.alu_ri32(ALU_AND, RCX, 63);
        a.lea(RCX, RCX, RCX, 4, 0); // slot * 5
        a.shift_ri(SH_SHL, RCX, 3); // * 40 = sizeof(TlbSet)
        a.lea(RSI, R15, RCX, 1, moff(v.tlb.sets));
        a.alu_mr(ALU_CMP, RSI, 0, RDX);
        a.jcc(CC_E, Lw0);
        a.alu_mr(ALU_CMP, RSI, 16, RDX);
        a.jcc(CC_E, Lw1);
        a.jmp(Lslow);
        a.bind(Lw0);
        a.mov_rm(RSI, RSI, 8);
        a.jmp(Lhost);
        a.bind(Lw1);
        a.mov_rm(RSI, RSI, 24);
        a.bind(Lhost);
    }

    /// rt_load[w][sx]: in rbx = addr; out rax = value and edx = 0, or
    /// edx = 1 when the caller must take the load_slow helper (straddle
    /// or TLB miss — the dcache access already happened here).
    void emit_load(unsigned width, bool sx)
    {
        rt.load[log2w(width)][sx ? 1 : 0] = a.size();
        dcache_probe();
        const int Lslow = a.label(), Lval = a.label();
        tlb_probe(width, Lslow);
        // Hit (host may be null: unmaterialised pages read as zero).
        a.alu_mi(ALU_ADD, R15, moff(v.tlb.hits), 1);
        a.alu_rr32(ALU_XOR, RAX, RAX);
        a.test_rr(RSI, RSI);
        a.jcc(CC_E, Lval);
        a.mov_rr(RCX, RBX);
        a.alu_ri32(ALU_AND, RCX, 4095);
        a.alu_rr(ALU_ADD, RSI, RCX);
        a.load_mem(RAX, RSI, 0, width, sx);
        a.bind(Lval);
        a.alu_rr32(ALU_XOR, RDX, RDX);
        a.ret();
        a.bind(Lslow);
        a.mov_ri(RDX, 1);
        a.ret();
    }

    /// rt_store[w]: in rbx = addr, rdi = value; out edx = 0 done, or
    /// edx = 1 when the caller must take the store_slow helper. The
    /// dcache access and keybuffer coherence already happened here
    /// (store_slow's contract).
    void emit_store(unsigned width)
    {
        rt.store[log2w(width)] = a.size();
        dcache_probe();
        // Keybuffer coherence: store of 0 into the lock region flushes.
        const int Lkb = a.label();
        a.test_rr(RDI, RDI);
        a.jcc(CC_NE, Lkb);
        a.mov_rr(RCX, RBX);
        a.mov_ri(RDX, v.lock_base);
        a.alu_rr(ALU_SUB, RCX, RDX);
        a.mov_ri(RDX, v.lock_bytes);
        a.alu_rr(ALU_CMP, RCX, RDX);
        a.jcc(CC_AE, Lkb);
        a.push(RDI);
        a.mov_rr(RDI, R15);
        a.abs(RAX, reinterpret_cast<const void*>(&JitOps::kb_flush));
        a.call_r(RAX);
        a.pop(RDI);
        a.bind(Lkb);
        const int Lslow = a.label();
        tlb_probe(width, Lslow);
        // Stores to unmaterialised pages take the slow path (no hit
        // counted), matching Memory::store exactly.
        a.test_rr(RSI, RSI);
        a.jcc(CC_E, Lslow);
        a.alu_mi(ALU_ADD, R15, moff(v.tlb.hits), 1);
        a.mov_rr(RCX, RBX);
        a.alu_ri32(ALU_AND, RCX, 4095);
        a.alu_rr(ALU_ADD, RSI, RCX);
        a.mov_rr(RAX, RDI); // low-byte stores of rdi would need REX
        a.store_mem(RSI, 0, RAX, width);
        a.alu_rr32(ALU_XOR, RDX, RDX);
        a.ret();
        a.bind(Lslow);
        a.mov_ri(RDX, 1);
        a.ret();
    }

    // Trampolines: the caller has rsi = op; each shape fills the other
    // arguments from the pinned registers and tail-jumps.
    void tramp_void2(void (*fn)(Machine*, const SbOp*))
    {
        const void* key = reinterpret_cast<const void*>(fn);
        rt.tramp[key] = a.size();
        a.mov_rr(RDI, R15);
        a.abs(RAX, key);
        a.jmp_r(RAX);
    }
    void tramp_status3(u64 (*fn)(Machine*, const SbOp*, JitContext*))
    {
        const void* key = reinterpret_cast<const void*>(fn);
        rt.tramp[key] = a.size();
        a.mov_rr(RDI, R15);
        a.mov_rr(RDX, R13);
        a.abs(RAX, key);
        a.jmp_r(RAX);
    }
    void tramp_status4(u64 (*fn)(Machine*, const SbOp*, JitContext*, u64))
    {
        const void* key = reinterpret_cast<const void*>(fn);
        rt.tramp[key] = a.size();
        a.mov_rr(RDI, R15);
        a.mov_rr(RDX, R13);
        a.mov_rr(RCX, RBX); // the address the fast path computed
        a.abs(RAX, key);
        a.jmp_r(RAX);
    }

    void run()
    {
        for (unsigned w : {1u, 2u, 4u, 8u}) {
            emit_load(w, false);
            emit_load(w, true);
            emit_store(w);
        }
        tramp_void2(&JitOps::pro_icache);
        tramp_void2(&JitOps::mulh);
        tramp_void2(&JitOps::mulhsu);
        tramp_void2(&JitOps::mulhu);
        tramp_void2(&JitOps::div);
        tramp_void2(&JitOps::divu);
        tramp_void2(&JitOps::rem);
        tramp_void2(&JitOps::remu);
        tramp_void2(&JitOps::divw);
        tramp_void2(&JitOps::divuw);
        tramp_void2(&JitOps::remw);
        tramp_void2(&JitOps::remuw);
        tramp_status3(&JitOps::checked_load);
        tramp_status3(&JitOps::checked_store);
        tramp_status3(&JitOps::sbd_store);
        tramp_status3(&JitOps::lbd_load);
        tramp_status3(&JitOps::tchk);
        tramp_status3(&JitOps::bndr);
        tramp_status3(&JitOps::hwst);
        tramp_status3(&JitOps::interp_one);
        tramp_status4(&JitOps::load_slow<1, true>);
        tramp_status4(&JitOps::load_slow<2, true>);
        tramp_status4(&JitOps::load_slow<4, true>);
        tramp_status4(&JitOps::load_slow<8, true>);
        tramp_status4(&JitOps::load_slow<1, false>);
        tramp_status4(&JitOps::load_slow<2, false>);
        tramp_status4(&JitOps::load_slow<4, false>);
        tramp_status4(&JitOps::store_slow<1>);
        tramp_status4(&JitOps::store_slow<2>);
        tramp_status4(&JitOps::store_slow<4>);
        tramp_status4(&JitOps::store_slow<8>);
    }
};

/// Per-block emission context: walks the SbOps and emits their
/// templates into a local buffer; the JitTier commits it to the region.
struct BlockEmitter {
    Asm a;
    JitTier& J;
    const Superblock& sb;
    const JitOps::Views v;   ///< baked hot-field addresses
    const u64 block_base;    ///< region offset the code will land at
    const u64 epilogue_off;  ///< region offset of the shared epilogue

    std::vector<ChainSite> sites; ///< offsets relative to block start

    struct Stub {
        int lab;
        u32 reason;
        u64 payload;
    };
    std::vector<Stub> stubs;
    /// Cold tails (helper fallbacks of inline fast paths), deferred to
    /// the end of the block so the fall-through hot path stays dense.
    std::vector<std::function<void()>> colds;
    int lab_exit;  ///< helper said exit: reason already in the context
    int lab_leave; ///< poll/fuel bail: reason = kExitLeave

    /// Bit r set: SRF entry r is known-zero at the current emission
    /// point (cleared earlier in this block, on every path reaching
    /// here, with no setter since). Lets the templates elide repeated
    /// clears — in the `none` scheme every entry stays zero forever, so
    /// after each register's first clear the whole SRF dance
    /// disappears. Purely an emission-time fact: state at block entry
    /// is unknown, so the first clear per register always lands.
    u32 srf_zero = 0;

    BlockEmitter(JitTier& jt, const Superblock& b, const JitOps::Views& vv,
                 u64 base, u64 epi)
        : J{jt}, sb{b}, v{vv}, block_base{base}, epilogue_off{epi}
    {
        a.out.reserve(2048);
        lab_exit = a.label();
        lab_leave = a.label();
    }

    // ---- small pieces -----------------------------------------------
    /// Displacement of a Machine-resident field off the pinned r15.
    i32 moff(const void* p) const
    {
        return static_cast<i32>(reinterpret_cast<const char*>(p) - v.mbase);
    }
    void load_rs(Gpr d, unsigned r) { a.mov_rm(d, R12, static_cast<i32>(8 * r)); }
    void store_rd(unsigned rd, Gpr s) { a.mov_mr(R12, static_cast<i32>(8 * rd), s); }
    /// Raw 24-byte entry clear / copy, no known-zero bookkeeping (for
    /// use inside multi-path sequences like emit_add_sub where the
    /// sequential mask update would be unsound).
    void srf_clear_raw(unsigned r)
    {
        const i32 e = static_cast<i32>(24 * r);
        a.mov_mi32(RBP, e, 0);
        a.mov_mi32(RBP, e + 8, 0);
        a.mov_mi32(RBP, e + 16, 0);
    }
    void srf_prop_raw(unsigned rd, unsigned rs)
    {
        const i32 d = static_cast<i32>(24 * rd), s = static_cast<i32>(24 * rs);
        a.mov_rm(RCX, RBP, s);
        a.mov_mr(RBP, d, RCX);
        a.mov_rm(RCX, RBP, s + 8);
        a.mov_mr(RBP, d + 8, RCX);
        a.mov_rm(RCX, RBP, s + 16);
        a.mov_mr(RBP, d + 16, RCX);
    }
    void srf_clear(unsigned r)
    {
        if (srf_zero & (1u << r)) return; // already zero: clearing again
                                          // is unobservable
        srf_clear_raw(r);
        srf_zero |= 1u << r;
    }
    void srf_prop(unsigned rd, unsigned rs)
    {
        if (rd == 0) return;  // propagate() no-ops on x0
        if (rd == rs) return; // copying an entry onto itself
        if (srf_zero & (1u << rs)) {
            srf_clear(rd); // propagating a zero entry == clearing
            return;
        }
        srf_prop_raw(rd, rs);
        srf_zero &= ~(1u << rd);
    }
    /// Result in rax -> regs_[rd] + SRF clear (the WR_CLEAR macro).
    void wr_clear(unsigned rd)
    {
        store_rd(rd, RAX);
        srf_clear(rd);
    }
    void set_pc(u64 pc)
    {
        // Guest pcs are tiny (program text near 0): one mov m,imm32.
        if (pc <= 0x7FFFFFFF) a.mov_mi32(R15, moff(v.pc), static_cast<i32>(pc));
        else {
            a.mov_ri(RAX, pc);
            a.mov_mr(R15, moff(v.pc), RAX);
        }
    }
    void jmp_epilogue()
    {
        const i64 rel = static_cast<i64>(epilogue_off) -
                        static_cast<i64>(block_base + a.size() + 5);
        a.jmp_rel32(static_cast<i32>(rel));
    }
    int stub(u32 reason, u64 payload)
    {
        const int lab = a.label();
        stubs.push_back({lab, reason, payload});
        return lab;
    }
    /// Defer a cold tail to the end of the block.
    void cold(std::function<void()> f) { colds.push_back(std::move(f)); }
    /// Call into the shared runtime at region offset `off` (subroutine
    /// or trampoline).
    void call_rt(u64 off)
    {
        const i64 rel = static_cast<i64>(off) -
                        static_cast<i64>(block_base + a.size() + 5);
        a.call_rel32(static_cast<i32>(rel));
    }
    /// Void helper call: fn(Machine*, const SbOp*), via its trampoline.
    void call_void(void (*fn)(Machine*, const SbOp*), const SbOp* op)
    {
        a.abs(RSI, op);
        call_rt(J.rt().tramp.at(reinterpret_cast<const void*>(fn)));
    }
    /// Status helper call: fn(Machine*, const SbOp*, JitContext*);
    /// nonzero return exits through the epilogue.
    void call_status(u64 (*fn)(Machine*, const SbOp*, JitContext*),
                     const SbOp* op)
    {
        a.abs(RSI, op);
        call_rt(J.rt().tramp.at(reinterpret_cast<const void*>(fn)));
        a.test_rr32(RAX, RAX);
        a.jcc(CC_NE, lab_exit);
    }
    /// Status helper with the op address in rcx (slow memory paths —
    /// the trampoline forwards rbx).
    void call_status_addr(u64 (*fn)(Machine*, const SbOp*, JitContext*,
                                    u64),
                          const SbOp* op)
    {
        a.abs(RSI, op);
        call_rt(J.rt().tramp.at(reinterpret_cast<const void*>(fn)));
        a.test_rr32(RAX, RAX);
        a.jcc(CC_NE, lab_exit);
    }

    // ---- PRO(): fetch timing + op-0 load-use hazard ------------------
    void pro(const SbOp& op)
    {
        if (op.flags & kOpFetchFull) {
            if (&op != sb.ops.data()) {
                // A mid-block full fetch starts a fresh line, and the
                // FetchRepeat ops in between never move last_line — so
                // the recent-line probe can never hit here. Call the
                // miss path directly (≡ the probe's only reachable arm).
                call_void(&JitOps::pro_icache, &op);
            } else {
                // Inline mirror of the Cache recent-line fast path
                // (jit_view() contract): a hit on the most recent line
                // is stats-only — the returned latency equals the hit
                // cost the dispatcher subtracts back out.
                const int Lslow = a.label(), Ldone = a.label();
                a.mov_rm(RDX, R15, moff(v.icv.last_line));
                a.test_rr(RDX, RDX);
                a.jcc(CC_E, Lslow);
                a.mov_ri(RAX, op.pc >> v.icv.line_shift);
                a.alu_mr(ALU_CMP, R15, moff(v.icv.last_line_addr), RAX);
                a.jcc(CC_NE, Lslow);
                a.alu_mi(ALU_ADD, R15, moff(v.icv.accesses), 1);
                a.mov_rm(RAX, R15, moff(v.icv.tick));
                a.alu_ri(ALU_ADD, RAX, 1);
                a.mov_mr(R15, moff(v.icv.tick), RAX);
                a.mov_mr(RDX, static_cast<i32>(v.icv.line_lru_offset), RAX);
                a.mov_mi8(R15, moff(v.icv.last_miss), 0);
                a.bind(Ldone);
                cold([this, &op, Lslow, Ldone] {
                    a.bind(Lslow);
                    call_void(&JitOps::pro_icache, &op);
                    a.jmp(Ldone);
                });
            }
        }
        if (op.flags & kOpHazDyn) {
            const int Lskip = a.label(), Lstall = a.label();
            a.load_mem(RAX, R15, moff(v.llr), 1, false);
            a.test_rr32(RAX, RAX);
            a.jcc(CC_E, Lskip);
            if (op.flags & kOpReadsRs1) {
                a.alu_ri32(ALU_CMP, RAX, op.rs1);
                a.jcc(CC_E, Lstall);
            }
            if (op.flags & kOpReadsRs2) {
                a.alu_ri32(ALU_CMP, RAX, op.rs2);
                a.jcc(CC_E, Lstall);
            }
            a.jmp(Lskip);
            a.bind(Lstall);
            a.alu_mi(ALU_ADD, R14, 0, static_cast<i32>(v.lu_stall));
            a.bind(Lskip);
        }
    }

    // ---- APPLY_BATCH() ----------------------------------------------
    void apply_batch()
    {
        a.alu_mi(ALU_ADD, R15, moff(v.instret), static_cast<i32>(sb.len));
        if (sb.static_cycles)
            a.alu_mi(ALU_ADD, R14, 0, static_cast<i32>(sb.static_cycles));
        if (sb.repeat_fetches) // count_repeat_hits(n)
            a.alu_mi(ALU_ADD, R15, moff(v.icv.accesses),
                     static_cast<i32>(sb.repeat_fetches));
        for (const auto& d : sb.mix_delta)
            a.alu_mi(ALU_ADD, R15, moff(&(v.mix->*d.first)),
                     static_cast<i32>(d.second));
        a.mov_mi8(R15, moff(v.llr), static_cast<u8>(sb.exit_load_rd));
        // countdown = countdown > len ? countdown - len : 0. RDX is
        // zeroed first: xor clears CF, which the cmov tests.
        a.alu_rr32(ALU_XOR, RDX, RDX);
        a.mov_rm(RAX, R13, kCtxCountdown);
        a.alu_ri(ALU_SUB, RAX, static_cast<i32>(sb.len));
        a.cmov(CC_B, RAX, RDX);
        a.mov_mr(R13, kCtxCountdown, RAX);
    }

    // ---- CHAIN: block-to-block transfer through a patchable site ----
    void chain_site()
    {
        const u64 gsite = J.chain_site_count() + sites.size();
        // Poll bail (the driver polls and resumes at m.pc_).
        a.alu_mi(ALU_CMP, R13, kCtxCountdown, 0);
        a.jcc(CC_E, lab_leave);
        // Fuel guard: leave when instret > fuel - target_len. Starts at
        // ~0 (never taken) so the unresolved site reaches its resolve
        // stub; the patch writes the real threshold.
        ChainSite s;
        s.thresh_off = a.mov_ri64(RAX, ~u64{0});
        a.alu_mr(ALU_CMP, R15, moff(v.instret), RAX);
        a.jcc(CC_A, lab_leave);
        a.alu_mi(ALU_ADD, R15, moff(v.chained), 1);
        a.jmp(stub(kExitResolve, gsite));
        s.jmp_off = a.size() - 4;
        sites.push_back(s);
    }

    // ---- the load/store templates -----------------------------------
    /// rbx = regs[rs1] + imm (RISC-V 12-bit immediates fit imm32).
    void addr_into_rbx(const SbOp& op)
    {
        load_rs(RBX, op.rs1);
        if (op.imm) a.alu_ri(ALU_ADD, RBX, static_cast<i32>(op.imm));
    }

    /// Cold-path dispatch to the right load_slow instantiation.
    void call_slow_load(const SbOp& op, unsigned width, bool sx)
    {
        switch ((width << 1) | (sx ? 1 : 0)) {
        case (1 << 1) | 1: call_status_addr(&JitOps::load_slow<1, true>, &op); break;
        case (2 << 1) | 1: call_status_addr(&JitOps::load_slow<2, true>, &op); break;
        case (4 << 1) | 1: call_status_addr(&JitOps::load_slow<4, true>, &op); break;
        case (8 << 1) | 1: call_status_addr(&JitOps::load_slow<8, true>, &op); break;
        case (1 << 1) | 0: call_status_addr(&JitOps::load_slow<1, false>, &op); break;
        case (2 << 1) | 0: call_status_addr(&JitOps::load_slow<2, false>, &op); break;
        default: call_status_addr(&JitOps::load_slow<4, false>, &op); break;
        }
    }
    void call_slow_store(const SbOp& op, unsigned width)
    {
        switch (width) {
        case 1: call_status_addr(&JitOps::store_slow<1>, &op); break;
        case 2: call_status_addr(&JitOps::store_slow<2>, &op); break;
        case 4: call_status_addr(&JitOps::store_slow<4>, &op); break;
        default: call_status_addr(&JitOps::store_slow<8>, &op); break;
        }
    }

    /// The plain-load body after the address is in rbx: rt_load call,
    /// rd writeback, with the slow tail deferred. Shared by plain and
    /// gated checked loads.
    void load_body(const SbOp& op, unsigned width, bool sx)
    {
        call_rt(J.rt().load[log2w(width)][sx ? 1 : 0]);
        const int Lslow = a.label(), Ldone = a.label();
        a.test_rr32(RDX, RDX);
        a.jcc(CC_NE, Lslow);
        if (op.rd) {
            store_rd(op.rd, RAX);
            srf_clear(op.rd);
        }
        a.bind(Ldone);
        cold([this, &op, width, sx, Lslow, Ldone] {
            a.bind(Lslow);
            call_slow_load(op, width, sx);
            a.jmp(Ldone);
        });
    }
    void store_body(const SbOp& op, unsigned width)
    {
        load_rs(RDI, op.rs2);
        call_rt(J.rt().store[log2w(width)]);
        const int Lslow = a.label(), Ldone = a.label();
        a.test_rr32(RDX, RDX);
        a.jcc(CC_NE, Lslow);
        a.bind(Ldone);
        cold([this, &op, width, Lslow, Ldone] {
            a.bind(Lslow);
            call_slow_store(op, width);
            a.jmp(Ldone);
        });
    }

    void emit_plain_load(const SbOp& op, unsigned width, bool sx)
    {
        pro(op);
        addr_into_rbx(op);
        load_body(op, width, sx);
    }

    void emit_plain_store(const SbOp& op, unsigned width)
    {
        pro(op);
        addr_into_rbx(op);
        store_body(op, width);
    }

    // ---- checked ops: inline no-metadata gates ----------------------
    /// The spatial gate shared by CheckedLoad/CheckedStore: when the
    /// spatial check is disabled or rs1 carries no base metadata, the
    /// checked op IS the plain op (SPATIAL_CHECK's early-outs have no
    /// side effects), so the template runs the plain body and only the
    /// metadata-bearing case pays the full helper. Jumps to `Lmeta`
    /// when the helper must run.
    void spatial_gate(const SbOp& op, int Lmeta)
    {
        const int Lplain = a.label();
        a.test_mi8(R15, moff(v.csr_status),
                   static_cast<u8>(hwst::kStatusSpatialEnable));
        a.jcc(CC_E, Lplain);
        a.alu_mi8(ALU_CMP, RBP, static_cast<i32>(24 * op.rs1 + 16), 0);
        a.jcc(CC_E, Lplain); // !valid_lo
        a.alu_mi(ALU_CMP, RBP, static_cast<i32>(24 * op.rs1), 0);
        a.jcc(CC_NE, Lmeta); // value.lo != 0: real metadata
        a.bind(Lplain);
    }

    void emit_checked_load(const SbOp& op)
    {
        pro(op);
        set_pc(op.pc); // the helper sets pc_ first thing; so do we
        const unsigned width = op.width;
        const bool sx = (op.flags & kOpSignedLoad) != 0;
        const int Lmeta = a.label(), Ldone = a.label();
        spatial_gate(op, Lmeta);
        addr_into_rbx(op);
        load_body(op, width, sx);
        a.bind(Ldone);
        cold([this, &op, Lmeta, Ldone] {
            a.bind(Lmeta);
            call_status(&JitOps::checked_load, &op);
            a.jmp(Ldone);
        });
    }

    void emit_checked_store(const SbOp& op)
    {
        pro(op);
        set_pc(op.pc);
        const unsigned width = op.width;
        const int Lmeta = a.label(), Ldone = a.label();
        spatial_gate(op, Lmeta);
        addr_into_rbx(op);
        store_body(op, width);
        a.bind(Ldone);
        cold([this, &op, Lmeta, Ldone] {
            a.bind(Lmeta);
            call_status(&JitOps::checked_store, &op);
            a.jmp(Ldone);
        });
    }

    void emit_tchk(const SbOp& op)
    {
        pro(op);
        set_pc(op.pc);
        // Temporal gate: disabled, or rs1 carries no key metadata —
        // tchk's early-outs, which have no side effects.
        const int Lmeta = a.label(), Ldone = a.label();
        a.test_mi8(R15, moff(v.csr_status),
                   static_cast<u8>(hwst::kStatusTemporalEnable));
        a.jcc(CC_E, Ldone);
        a.alu_mi8(ALU_CMP, RBP, static_cast<i32>(24 * op.rs1 + 17), 0);
        a.jcc(CC_E, Ldone); // !valid_hi
        a.alu_mi(ALU_CMP, RBP, static_cast<i32>(24 * op.rs1 + 8), 0);
        a.jcc(CC_NE, Lmeta); // value.hi != 0: real metadata
        a.bind(Ldone);
        cold([this, &op, Lmeta, Ldone] {
            a.bind(Lmeta);
            call_status(&JitOps::tchk, &op);
            a.jmp(Ldone);
        });
    }

    // ---- Add/Sub with the srf_effects propagation rule --------------
    void emit_add_sub(const SbOp& op, bool is_add)
    {
        pro(op);
        load_rs(RAX, op.rs1);
        a.alu_rm(is_add ? ALU_ADD : ALU_SUB, RAX, R12,
                 static_cast<i32>(8 * op.rs2));
        if (op.rd) store_rd(op.rd, RAX);
        if ((srf_zero & (1u << op.rs1)) && (srf_zero & (1u << op.rs2))) {
            // Both source entries are zero: the dance below always
            // lands on the neither-has-metadata clear.
            srf_clear(op.rd);
            return;
        }
        // a = rs1 entry has any metadata, b = rs2 entry has any. Raw
        // prims inside: the paths are alternatives, so the sequential
        // known-zero update would be unsound — the meet is "unknown".
        a.load_mem(RCX, RBP, static_cast<i32>(24 * op.rs1 + 16), 2, false);
        a.load_mem(RDX, RBP, static_cast<i32>(24 * op.rs2 + 16), 2, false);
        const int La1 = a.label(), Lp1 = a.label(), Lp2 = a.label(),
                  Lclr = a.label(), Lend = a.label();
        a.test_rr32(RCX, RCX);
        a.jcc(CC_NE, La1);
        a.test_rr32(RDX, RDX);
        a.jcc(CC_E, Lclr);
        a.jmp(is_add ? Lp2 : Lclr); // Sub: b-only also clears
        a.bind(La1);
        a.test_rr32(RDX, RDX);
        a.jcc(CC_E, Lp1);
        a.bind(Lclr); // both (or neither): unguarded clear, entry 0 incl.
        srf_clear_raw(op.rd);
        a.jmp(Lend);
        a.bind(Lp1);
        if (op.rd != 0 && op.rd != op.rs1) srf_prop_raw(op.rd, op.rs1);
        a.jmp(Lend);
        if (is_add) {
            a.bind(Lp2);
            if (op.rd != 0 && op.rd != op.rs2) srf_prop_raw(op.rd, op.rs2);
        }
        a.bind(Lend);
        srf_zero &= ~(1u << op.rd);
    }

    // ---- enders ------------------------------------------------------
    void emit_branch(const SbOp& op, Cond cc)
    {
        pro(op);
        apply_batch();
        load_rs(RAX, op.rs1);
        load_rs(RCX, op.rs2);
        a.alu_rr(ALU_CMP, RAX, RCX);
        const int Ltaken = a.label();
        a.jcc(cc, Ltaken);
        set_pc(op.pc + 4);
        chain_site(); // edge_fall
        a.bind(Ltaken);
        a.alu_mi(ALU_ADD, R14, 0, static_cast<i32>(v.taken_pen));
        set_pc(static_cast<u64>(op.imm));
        chain_site(); // edge_taken
    }

    void emit_jal(const SbOp& op)
    {
        pro(op);
        apply_batch();
        if (op.rd) {
            a.mov_ri(RAX, op.aux);
            store_rd(op.rd, RAX);
            srf_clear(op.rd);
        }
        set_pc(static_cast<u64>(op.imm));
        chain_site();
    }

    void emit_jalr(const SbOp& op)
    {
        pro(op);
        apply_batch();
        // rs1 is read before the link write (rd may alias rs1).
        load_rs(RBX, op.rs1);
        if (op.imm) a.alu_ri(ALU_ADD, RBX, static_cast<i32>(op.imm));
        a.alu_ri(ALU_AND, RBX, -2);
        if (op.rd) {
            a.mov_ri(RAX, op.aux);
            store_rd(op.rd, RAX);
            srf_clear(op.rd);
        }
        a.mov_mr(R15, moff(v.pc), RBX);
        // 2-way inline cache, shared structure with the dispatcher.
        const u64 sidx = J.alloc_jalr_site();
        JalrSite* site = &J.jalr_site(sidx);
        const int Lw0 = a.label(), Lw1 = a.label(), Lgo = a.label();
        a.abs(RSI, site);
        a.alu_mr(ALU_CMP, RSI, 0, RBX);
        a.jcc(CC_E, Lw0);
        a.alu_mr(ALU_CMP, RSI, 8, RBX);
        a.jcc(CC_E, Lw1);
        a.jmp(stub(kExitJalrResolve, sidx << 2)); // miss
        a.bind(Lw0);
        a.alu_mi(ALU_ADD, R15, moff(v.jalr_hits), 1);
        a.mov_rm(RAX, RSI, 16); // way[0]
        a.mov_rm(RDX, RSI, 32); // aux[0] = fuel threshold
        a.test_rr(RAX, RAX);
        a.jcc(CC_E, stub(kExitJalrResolve, (sidx << 2) | 2 | 0));
        a.jmp(Lgo);
        a.bind(Lw1);
        a.alu_mi(ALU_ADD, R15, moff(v.jalr_hits), 1);
        a.mov_rm(RAX, RSI, 24); // way[1]
        a.mov_rm(RDX, RSI, 40); // aux[1]
        a.test_rr(RAX, RAX);
        a.jcc(CC_E, stub(kExitJalrResolve, (sidx << 2) | 2 | 1));
        a.bind(Lgo);
        a.alu_mi(ALU_CMP, R13, kCtxCountdown, 0);
        a.jcc(CC_E, lab_leave);
        a.alu_rm(ALU_CMP, RDX, R15, moff(v.instret));
        a.jcc(CC_B, lab_leave);
        a.alu_mi(ALU_ADD, R15, moff(v.chained), 1);
        a.jmp_r(RAX);
    }

    // ---- per-op dispatch --------------------------------------------
    void emit_op(const SbOp& op)
    {
        const auto alu_imm = [&](AluOp k) {
            pro(op);
            load_rs(RAX, op.rs1);
            a.alu_ri(k, RAX, static_cast<i32>(op.imm));
            wr_clear(op.rd);
        };
        const auto alu_reg = [&](AluOp k) {
            pro(op);
            load_rs(RAX, op.rs1);
            a.alu_rm(k, RAX, R12, static_cast<i32>(8 * op.rs2));
            wr_clear(op.rd);
        };
        const auto shift_imm = [&](ShiftOp k, unsigned mask, bool w32,
                                   bool sext) {
            pro(op);
            load_rs(RAX, op.rs1);
            const u8 sh = static_cast<u8>(op.imm & mask);
            if (w32) a.shift_ri32(k, RAX, sh);
            else a.shift_ri(k, RAX, sh);
            if (sext) a.cdqe();
            wr_clear(op.rd);
        };
        const auto shift_reg = [&](ShiftOp k, unsigned mask, bool w32,
                                   bool sext) {
            pro(op);
            load_rs(RAX, op.rs1);
            load_rs(RCX, op.rs2);
            a.alu_ri32(ALU_AND, RCX, static_cast<i32>(mask));
            if (w32) a.shift_cl32(k, RAX);
            else a.shift_cl(k, RAX);
            if (sext) a.cdqe();
            wr_clear(op.rd);
        };
        const auto set_cmp_imm = [&](Cond cc) {
            pro(op);
            load_rs(RAX, op.rs1);
            a.alu_ri(ALU_CMP, RAX, static_cast<i32>(op.imm));
            a.setcc(cc, RAX);
            a.movzx8_32(RAX, RAX);
            wr_clear(op.rd);
        };
        const auto set_cmp_reg = [&](Cond cc) {
            pro(op);
            load_rs(RAX, op.rs1);
            a.alu_rm(ALU_CMP, RAX, R12, static_cast<i32>(8 * op.rs2));
            a.setcc(cc, RAX);
            a.movzx8_32(RAX, RAX);
            wr_clear(op.rd);
        };
        const auto helper_void = [&](void (*fn)(Machine*, const SbOp*)) {
            pro(op);
            call_void(fn, &op);
            // Every helper of this shape (mul/div family) ends in
            // WR_CLEAR: rd's entry is zero afterwards.
            srf_zero |= 1u << op.rd;
        };
        const auto helper_status =
            [&](u64 (*fn)(Machine*, const SbOp*, JitContext*)) {
                pro(op);
                call_status(fn, &op);
            };

        switch (op.kind) {
        case SbKind::Nop: pro(op); break;
        case SbKind::Const:
            pro(op);
            a.mov_ri(RAX, op.aux);
            wr_clear(op.rd);
            break;
        case SbKind::Addi:
            pro(op);
            load_rs(RAX, op.rs1);
            if (op.imm) a.alu_ri(ALU_ADD, RAX, static_cast<i32>(op.imm));
            store_rd(op.rd, RAX);
            srf_prop(op.rd, op.rs1); // pointer-arithmetic rule
            break;
        case SbKind::Slti: set_cmp_imm(CC_L); break;
        case SbKind::Sltiu: set_cmp_imm(CC_B); break;
        case SbKind::Xori: alu_imm(ALU_XOR); break;
        case SbKind::Ori: alu_imm(ALU_OR); break;
        case SbKind::Andi: alu_imm(ALU_AND); break;
        case SbKind::Slli: shift_imm(SH_SHL, 63, false, false); break;
        case SbKind::Srli: shift_imm(SH_SHR, 63, false, false); break;
        case SbKind::Srai: shift_imm(SH_SAR, 63, false, false); break;
        case SbKind::Addiw:
            pro(op);
            load_rs(RAX, op.rs1);
            if (op.imm) a.alu_ri(ALU_ADD, RAX, static_cast<i32>(op.imm));
            a.cdqe();
            wr_clear(op.rd);
            break;
        case SbKind::Slliw: shift_imm(SH_SHL, 31, false, true); break;
        case SbKind::Srliw: shift_imm(SH_SHR, 31, true, true); break;
        case SbKind::Sraiw: shift_imm(SH_SAR, 31, true, true); break;
        case SbKind::Add: emit_add_sub(op, true); break;
        case SbKind::Sub: emit_add_sub(op, false); break;
        case SbKind::Sll: shift_reg(SH_SHL, 63, false, false); break;
        case SbKind::Slt: set_cmp_reg(CC_L); break;
        case SbKind::Sltu: set_cmp_reg(CC_B); break;
        case SbKind::Xor: alu_reg(ALU_XOR); break;
        case SbKind::Srl: shift_reg(SH_SHR, 63, false, false); break;
        case SbKind::Sra: shift_reg(SH_SAR, 63, false, false); break;
        case SbKind::Or: alu_reg(ALU_OR); break;
        case SbKind::And: alu_reg(ALU_AND); break;
        case SbKind::Addw:
            pro(op);
            load_rs(RAX, op.rs1);
            a.alu_rm(ALU_ADD, RAX, R12, static_cast<i32>(8 * op.rs2));
            a.cdqe();
            wr_clear(op.rd);
            break;
        case SbKind::Subw:
            pro(op);
            load_rs(RAX, op.rs1);
            a.alu_rm(ALU_SUB, RAX, R12, static_cast<i32>(8 * op.rs2));
            a.cdqe();
            wr_clear(op.rd);
            break;
        case SbKind::Sllw: shift_reg(SH_SHL, 31, false, true); break;
        case SbKind::Srlw: shift_reg(SH_SHR, 31, true, true); break;
        case SbKind::Sraw: shift_reg(SH_SAR, 31, true, true); break;
        case SbKind::Mul:
            pro(op);
            load_rs(RAX, op.rs1);
            load_rs(RCX, op.rs2);
            a.imul_rr(RAX, RCX);
            wr_clear(op.rd);
            break;
        case SbKind::Mulw:
            pro(op);
            load_rs(RAX, op.rs1);
            load_rs(RCX, op.rs2);
            a.imul_rr(RAX, RCX);
            a.cdqe();
            wr_clear(op.rd);
            break;
        case SbKind::Mulh: helper_void(&JitOps::mulh); break;
        case SbKind::Mulhsu: helper_void(&JitOps::mulhsu); break;
        case SbKind::Mulhu: helper_void(&JitOps::mulhu); break;
        case SbKind::Div: helper_void(&JitOps::div); break;
        case SbKind::Divu: helper_void(&JitOps::divu); break;
        case SbKind::Rem: helper_void(&JitOps::rem); break;
        case SbKind::Remu: helper_void(&JitOps::remu); break;
        case SbKind::Divw: helper_void(&JitOps::divw); break;
        case SbKind::Divuw: helper_void(&JitOps::divuw); break;
        case SbKind::Remw: helper_void(&JitOps::remw); break;
        case SbKind::Remuw: helper_void(&JitOps::remuw); break;
        case SbKind::Lb: emit_plain_load(op, 1, true); break;
        case SbKind::Lh: emit_plain_load(op, 2, true); break;
        case SbKind::Lw: emit_plain_load(op, 4, true); break;
        case SbKind::Ld: emit_plain_load(op, 8, true); break;
        case SbKind::Lbu: emit_plain_load(op, 1, false); break;
        case SbKind::Lhu: emit_plain_load(op, 2, false); break;
        case SbKind::Lwu: emit_plain_load(op, 4, false); break;
        case SbKind::Sb: emit_plain_store(op, 1); break;
        case SbKind::Sh: emit_plain_store(op, 2); break;
        case SbKind::Sw: emit_plain_store(op, 4); break;
        case SbKind::Sd: emit_plain_store(op, 8); break;
        case SbKind::CheckedLoad: emit_checked_load(op); break;
        case SbKind::CheckedStore: emit_checked_store(op); break;
        case SbKind::SbdStore: helper_status(&JitOps::sbd_store); break;
        case SbKind::LbdLoad:
            helper_status(&JitOps::lbd_load);
            srf_zero &= ~(1u << op.rd); // sets rd's lo or hi half
            break;
        case SbKind::Tchk: emit_tchk(op); break;
        case SbKind::Bndr:
            helper_status(&JitOps::bndr);
            srf_zero &= ~(1u << op.rd); // binds metadata into rd
            break;
        case SbKind::Hwst:
            helper_status(&JitOps::hwst);
            srf_zero = 0; // srf_effects may touch any entry
            break;
        case SbKind::Beq: emit_branch(op, CC_E); break;
        case SbKind::Bne: emit_branch(op, CC_NE); break;
        case SbKind::Blt: emit_branch(op, CC_L); break;
        case SbKind::Bge: emit_branch(op, CC_GE); break;
        case SbKind::Bltu: emit_branch(op, CC_B); break;
        case SbKind::Bgeu: emit_branch(op, CC_AE); break;
        case SbKind::Jal: emit_jal(op); break;
        case SbKind::Jalr: emit_jalr(op); break;
        case SbKind::InterpOne:
            pro(op);
            apply_batch();
            call_status(&JitOps::interp_one, &op); // always exits
            jmp_epilogue();
            break;
        case SbKind::EndFall:
            apply_batch(); // no fetch, no retirement of its own
            set_pc(op.pc);
            chain_site();
            break;
        }
    }

    void run()
    {
        // Every native entry — from the driver, a chain edge or a jalr
        // way — counts like the dispatcher's enter_block.
        a.alu_mi(ALU_ADD, R15, moff(v.block_execs), 1);
        for (const SbOp& op : sb.ops) emit_op(op);
        // Deferred exit stubs.
        a.bind(lab_leave);
        a.mov_mi32_32(R13, kCtxReason, kExitLeave);
        jmp_epilogue();
        a.bind(lab_exit); // reason/payload already written by a helper
        jmp_epilogue();
        for (const Stub& s : stubs) {
            a.bind(s.lab);
            a.mov_mi32_32(R13, kCtxReason, static_cast<i32>(s.reason));
            a.mov_ri(RAX, s.payload); // site indexes: shortest form
            a.mov_mr(R13, kCtxPayload, RAX);
            jmp_epilogue();
        }
        // Cold tails last: the hot path falls straight through them all.
        for (const auto& c : colds) c();
        a.finish();
    }
};

} // namespace

// ---------------------------------------------------------------------
// JitTier: code-cache management
// ---------------------------------------------------------------------

JitTier::JitTier(Machine& m) : m_{m}
{
    region_bytes_ = m.cfg_.jit_code_bytes < 4096 ? 4096
                                                 : m.cfg_.jit_code_bytes;
    // Preferred: dual-map a memfd — an RX view (region_) executed from
    // and a separate RW alias (rw_) written through. W^X holds (no VA
    // is both W and X) and steady-state compiles/patches need zero
    // syscalls; the mprotect pairs of the fallback cost ~0.5ms per
    // short run, which is the whole margin on small workloads.
#ifdef MFD_CLOEXEC
    const int fd = ::memfd_create("hwst-jit", MFD_CLOEXEC);
    if (fd >= 0) {
        if (::ftruncate(fd, static_cast<off_t>(region_bytes_)) == 0) {
            void* rx = ::mmap(nullptr, region_bytes_,
                              PROT_READ | PROT_EXEC, MAP_SHARED, fd, 0);
            void* rw = ::mmap(nullptr, region_bytes_,
                              PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
            if (rx != MAP_FAILED && rw != MAP_FAILED) {
                region_ = static_cast<u8*>(rx);
                rw_ = static_cast<u8*>(rw);
            } else {
                if (rx != MAP_FAILED) ::munmap(rx, region_bytes_);
                if (rw != MAP_FAILED) ::munmap(rw, region_bytes_);
            }
        }
        ::close(fd); // mappings keep the pages alive
    }
#endif
    if (!region_) {
        // Fallback: single anonymous mapping, transient mprotect
        // windows around writes (make_writable/seal).
        void* p = ::mmap(nullptr, region_bytes_, PROT_READ | PROT_WRITE,
                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
        if (p == MAP_FAILED) {
            region_ = nullptr;
            return;
        }
        region_ = static_cast<u8*>(p);
    }
    emit_thunk();
}

JitTier::~JitTier()
{
    if (region_) ::munmap(region_, region_bytes_);
    if (rw_) ::munmap(rw_, region_bytes_);
}

void JitTier::make_writable(u64 off, u64 len)
{
    if (rw_) return; // dual-mapped: writes go through the alias
    const u64 ps = 4096;
    const u64 lo = off & ~(ps - 1);
    const u64 hi = (off + len + ps - 1) & ~(ps - 1);
    ::mprotect(region_ + lo, hi - lo, PROT_READ | PROT_WRITE);
}

void JitTier::seal(u64 off, u64 len)
{
    if (rw_) return;
    const u64 ps = 4096;
    const u64 lo = off & ~(ps - 1);
    const u64 hi = (off + len + ps - 1) & ~(ps - 1);
    ::mprotect(region_ + lo, hi - lo, PROT_READ | PROT_EXEC);
}

void JitTier::emit_thunk()
{
    // void enter(const void* code /*rdi*/, JitContext* ctx /*rsi*/):
    // load the pinned registers and jump into the block. The sub rsp, 8
    // keeps call sites 16-byte aligned for the helper call-outs.
    rt_ = RtOffsets{};
    Asm a;
    a.push(RBX);
    a.push(RBP);
    a.push(R12);
    a.push(R13);
    a.push(R14);
    a.push(R15);
    a.alu_ri(ALU_SUB, RSP, 8);
    a.mov_rr(R13, RSI);
    a.mov_rm(R12, R13, offsetof(JitContext, regs));
    a.mov_rm(RBP, R13, offsetof(JitContext, srf));
    a.mov_rm(R14, R13, offsetof(JitContext, cycles));
    a.mov_rm(R15, R13, offsetof(JitContext, machine));
    a.jmp_r(RDI);
    const u64 epi = a.size();
    a.alu_ri(ALU_ADD, RSP, 8);
    a.pop(R15);
    a.pop(R14);
    a.pop(R13);
    a.pop(R12);
    a.pop(RBP);
    a.pop(RBX);
    a.ret();
    // The shared runtime follows the thunk (same Asm, so its a.size()
    // offsets are region offsets).
    const JitOps::Views v = JitOps::views(m_);
    RtEmitter{a, v, rt_}.run();
    a.finish();
    if (a.out.size() > region_bytes_) {
        // Cannot even hold the runtime (region floor is one page, so
        // this is unreachable in practice): degrade to the dispatcher.
        ::munmap(region_, region_bytes_);
        region_ = nullptr;
        if (rw_) {
            ::munmap(rw_, region_bytes_);
            rw_ = nullptr;
        }
        return;
    }
    make_writable(0, a.out.size());
    std::memcpy(code_rw(0), a.out.data(), a.out.size());
    seal(0, a.out.size());
    cursor_ = a.out.size();
    thunk_bytes_ = cursor_;
    epilogue_off_ = epi;
}

void JitTier::drop_code(JitStats& st)
{
    if (!region_) return;
    records_.clear();
    chain_sites_.clear();
    jalr_sites_.clear();
    ++generation_;
    cursor_ = 0;
    emit_thunk();
    st.code_bytes = cursor_;
}

const u8* JitTier::compile(const Superblock& sb, JitStats& st)
{
    if (!region_) return nullptr;
    const JitOps::Views v = JitOps::views(m_);
    for (int attempt = 0; attempt < 2; ++attempt) {
        BlockEmitter e{*this, sb, v, cursor_, epilogue_off_};
        e.run();
        const u64 need = e.a.size();
        if (cursor_ + need > region_bytes_) {
            if (attempt == 0 && cursor_ > thunk_bytes_) {
                ++st.evictions;
                drop_code(st); // site indexes reset; re-emit from scratch
                continue;
            }
            return nullptr; // cannot fit even in an empty region
        }
        make_writable(cursor_, need);
        std::memcpy(code_rw(cursor_), e.a.out.data(), need);
        seal(cursor_, need);
        const u64 base = cursor_;
        cursor_ += need;
        for (ChainSite s : e.sites) {
            s.thresh_off += base;
            s.jmp_off += base;
            chain_sites_.push_back(s);
        }
        BlockRec& rec = records_[&sb];
        rec.entry = region_ + base;
        ++st.translated;
        st.code_bytes = cursor_;
        return rec.entry;
    }
    return nullptr;
}

void JitTier::patch_chain(u64 site, const u8* target_entry, u64 fuel,
                          u32 len, JitStats& st)
{
    ChainSite& s = chain_sites_[site];
    if (s.patched) return;
    make_writable(s.thresh_off, s.jmp_off + 4 - s.thresh_off);
    // Leave when instret > fuel - len <=> instret + len > fuel. The
    // driver only patches after its own fuel check passed, so
    // fuel >= len holds.
    const u64 thresh = fuel - len;
    std::memcpy(code_rw(s.thresh_off), &thresh, 8);
    const i64 rel = static_cast<i64>(target_entry - region_) -
                    static_cast<i64>(s.jmp_off + 4);
    const i32 rel32 = static_cast<i32>(rel);
    std::memcpy(code_rw(s.jmp_off), &rel32, 4);
    seal(s.thresh_off, s.jmp_off + 4 - s.thresh_off);
    s.patched = true;
    ++st.chain_patches;
}

void JitTier::patch_jalr(u64 site, unsigned way, const u8* target_entry,
                         u64 fuel, u32 len, JitStats& st)
{
    JalrCache2<const void*>& jc = jalr_sites_[site];
    jc.aux[way] = fuel - len;
    jc.way[way] = target_entry;
    ++st.chain_patches;
}

void JitTier::enter(const u8* entry, JitContext& c)
{
    using EnterFn = void (*)(const void*, JitContext*);
    reinterpret_cast<EnterFn>(
        reinterpret_cast<void*>(region_))(entry, &c);
}

#else // !HWST_JIT_X86_64

// Foreign host / sanitizer build: the tier resolution never selects
// Jit (jit_supported() is false), but the class must still link.
JitTier::JitTier(Machine& m) : m_{m} {}
JitTier::~JitTier() = default;
void JitTier::make_writable(u64, u64) {}
void JitTier::seal(u64, u64) {}
void JitTier::emit_thunk() {}
void JitTier::drop_code(JitStats&) {}
const u8* JitTier::compile(const Superblock&, JitStats&) { return nullptr; }
void JitTier::patch_chain(u64, const u8*, u64, u32, JitStats&) {}
void JitTier::patch_jalr(u64, unsigned, const u8*, u64, u32, JitStats&) {}
void JitTier::enter(const u8*, JitContext&) {}

#endif // HWST_JIT_X86_64

} // namespace hwst::sim::jit
