// Simulated runtime services (the proxy-kernel role in the paper's
// FPGA setup). The instrumentation wrappers and workloads invoke these
// via ECALL with the number in a7 and arguments in a0..a2.
#pragma once

#include "common/bitops.hpp"

namespace hwst::sim {

enum class Sys : common::u64 {
    Exit = 0,        ///< exit(a0 = status)
    Malloc = 1,      ///< a0 = malloc(a0 = size); 0 on exhaustion
    Free = 2,        ///< free(a0 = ptr); a0 = block size, -1 if invalid
    LockAlloc = 3,   ///< a0 = lock_location address, a1 = fresh key
    LockFree = 4,    ///< lock_free(a0 = lock address)
    PrintI64 = 5,    ///< append a0 to the run's output vector
    ReadCycle = 6,   ///< a0 = current cycle count
    SoftViolation = 7, ///< software check failed: a0 = 0 spatial / 1 temporal, a1 = addr
    AsanReport = 8,  ///< ASAN runtime report: a1 = addr
    StackGuardFail = 9, ///< __stack_chk_fail (the "GCC" baseline)
    AsanPoison = 12, ///< poison(a0 = addr, a1 = len, a2 = 1 poison / 0 unpoison)
    BogoScan = 13,   ///< BOGO free-time scan: poison bound-table entries whose base == a0
};

} // namespace hwst::sim
