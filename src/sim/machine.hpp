// Machine: the simulated HWST128 RISC-V processor + proxy-kernel
// runtime. Substitutes for the paper's Rocket Chip on the ZCU102 FPGA
// (DESIGN.md §2): a functional RV64IM+HWST executor with a 5-stage
// in-order timing model (load-use hazard, static branch prediction,
// D-cache), the SHORE/HWST128 shadow register file, the COMP/DECOMP/
// SMAC/SCU/TCU units and the keybuffer.
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hwst/csr.hpp"
#include "hwst/trap.hpp"
#include "hwst/units.hpp"
#include "mem/allocator.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "metadata/keybuffer.hpp"
#include "metadata/srf.hpp"
#include "riscv/program.hpp"
#include "sim/superblock.hpp"

namespace hwst::sim {

using common::i64;
using common::u32;
using common::u64;
using riscv::Reg;

/// Cycle costs of the in-order 5-stage pipeline (Rocket-like).
struct TimingConfig {
    unsigned branch_taken_penalty = 3; ///< Rocket resolves in MEM
    unsigned load_use_stall = 1;       ///< consumer right after a load
    unsigned mul_extra = 3;            ///< iterative multiplier
    unsigned div_extra = 24;
    unsigned csr_extra = 1;
    unsigned ecall_cost = 140; ///< proxy-kernel round trip
};

/// Runtime (proxy-kernel) behaviour knobs, set per protection scheme by
/// the compiler driver.
struct RuntimeConfig {
    /// ASAN model: bytes of redzone around each heap block (0 = off).
    u64 asan_redzone = 0;
    /// ASAN model: delay reuse of freed blocks (use-after-free windows).
    bool quarantine = false;
    u64 quarantine_bytes = 1u << 20;
    /// Baseline libc behaviour: abort on free() of a non-block address
    /// (glibc "free(): invalid pointer").
    bool libc_free_aborts = true;
    /// SBCETS: pre-populate the software metadata trie's L1 table (the
    /// role of the runtime's mmap-on-demand in real SoftBound).
    bool init_sw_trie = false;
};

/// Execution-tier ladder (docs/performance.md): the step() interpreter,
/// the superblock computed-goto dispatcher, and the x86-64 template JIT
/// above it. Every tier is a pure host-side accelerator — simulated
/// results are bit-identical across all three. `Auto` resolves to the
/// fastest tier available on this host/build (JIT on plain x86-64
/// builds, the dispatcher under sanitizers or on foreign hosts).
enum class ExecTier : common::u8 { Auto, Interp, Dbt, Jit };

constexpr std::string_view tier_name(ExecTier t)
{
    switch (t) {
    case ExecTier::Auto: return "auto";
    case ExecTier::Interp: return "interp";
    case ExecTier::Dbt: return "dbt";
    case ExecTier::Jit: return "jit";
    }
    return "unknown";
}

struct MachineConfig {
    mem::CacheConfig dcache{};
    /// L1 I-cache timing model (Rocket default 16 KiB). Instrumented
    /// code is 3-4x larger, so instruction-fetch locality is a real
    /// scheme differentiator.
    mem::CacheConfig icache{};
    bool icache_enabled = true;
    unsigned keybuffer_entries = 8;
    /// false models accelerators without a lock cache (WDL): tchk loads
    /// the key from memory on every check.
    bool keybuffer_enabled = true;
    u64 fuel = 400'000'000; ///< max instructions before FuelExhausted
    /// Superblock DBT tier (docs/performance.md "Translation tier").
    /// Host-side acceleration only: simulated results are bit-identical
    /// with it on or off. Runs automatically fall back to the
    /// interpreter while a trace or probe hook is installed. The
    /// HWST_DBT environment variable (a boolean: 0/1/on/off/true/false,
    /// case-insensitive) overrides this field — it is how the dbt-smoke
    /// bench preset forces both tiers through identical binaries.
    /// Legacy knob: `false` pins the interpreter, `true` leaves the
    /// ladder at `tier` (normally Auto). Prefer `tier` / HWST_TIER.
    bool dbt = true;
    /// Execution tier. `Auto` picks the fastest available; an explicit
    /// tier pins the ladder there. The HWST_TIER environment variable
    /// (interp/dbt/jit/auto) overrides this field and, when both are
    /// set, wins over HWST_DBT with a warn-once diagnostic.
    ExecTier tier = ExecTier::Auto;
    /// JIT code-cache budget in bytes. When a compile would overflow it
    /// the whole cache is dropped and retranslation starts from scratch
    /// (JitStats::evictions). Tiny budgets are legal (the eviction test
    /// uses one); a block too large to ever fit stays on the cold path.
    u64 jit_code_bytes = 4u << 20;
    /// Superblock execution count at which the JIT tier compiles it to
    /// native code; colder blocks run through step(). Swept on the full
    /// perf_mips grid: 4 beats 1 (compiling run-once blocks wastes
    /// emission time) and 8 (too many warmup instructions at
    /// interpreter speed).
    u32 jit_hot_threshold = 4;
    TimingConfig timing{};
    RuntimeConfig runtime{};
};

/// Retired-instruction mix, grouped by pipeline role. The benches use
/// it to show *where* each scheme's overhead comes from (metadata
/// traffic vs checks vs plain work).
struct InstrMix {
    u64 alu = 0;
    u64 loads = 0;          ///< plain loads
    u64 stores = 0;         ///< plain stores
    u64 checked_loads = 0;  ///< HWST checked loads (SCU-fused)
    u64 checked_stores = 0;
    u64 meta_moves = 0;     ///< sbdl/sbdu/lbdls/lbdus/lbas/lbnd/lkey/lloc
    u64 binds = 0;          ///< bndrs/bndrt
    u64 tchk = 0;
    u64 branches = 0;       ///< conditional branches
    u64 jumps = 0;          ///< jal/jalr
    u64 ecalls = 0;
    u64 other = 0;

    u64 total() const
    {
        return alu + loads + stores + checked_loads + checked_stores +
               meta_moves + binds + tchk + branches + jumps + ecalls +
               other;
    }
    /// Memory-traffic instructions added by metadata handling.
    u64 metadata_traffic() const { return meta_moves; }
};

/// Outcome of a complete run.
struct RunResult {
    hwst::Trap trap{};          ///< kind None if the program exited
    i64 exit_code = 0;
    u64 cycles = 0;
    u64 instret = 0;
    std::vector<i64> output;    ///< values printed via Sys::PrintI64
    mem::CacheStats dcache;
    mem::CacheStats icache;
    metadata::KeybufferStats keybuffer;
    u64 scu_checks = 0;
    u64 tcu_checks = 0;
    u64 scu_saturated = 0; ///< checks rejected on the saturating encoding
    u64 tcu_saturated = 0;
    u64 smac_translations = 0;
    InstrMix mix;

    bool ok() const { return trap.kind == hwst::TrapKind::None; }
};

/// Architecturally meaningful points where a value can be observed or
/// perturbed in flight (fault injection, instrumentation tooling). Each
/// names a 64-bit datapath of Fig. 3; the fault engine in src/fault/
/// builds its injection campaigns on these.
enum class Probe : common::u8 {
    SrfSpatialWrite,  ///< compressed lo half on its way into the SRF
    SrfTemporalWrite, ///< compressed hi half on its way into the SRF
    LmsmStore,        ///< sbdl/sbdu write data to the shadow memory
    LmsmLoad,         ///< shadow word loaded by lbdls/lbdus/lbas/.../lloc
    KeybufferFill,    ///< key inserted into the keybuffer on a tchk miss
    KeybufferLookup,  ///< key returned by a keybuffer hit
    CompCsrWidths,    ///< csr.bitw field widths as COMP/DECOMP read them
    DcacheFillData,   ///< load data arriving on a D-cache miss refill
};

inline constexpr unsigned kNumProbes = 8;

class Machine;

/// Superblock-tier dispatcher (sim/dispatch.cpp); a friend of Machine
/// so the executor bodies can touch the interpreter's state directly.
bool run_superblocks(Machine& m, const std::function<bool()>* cancel,
                     u64 stride, hwst::Trap& out);

namespace jit {
class JitTier;  // sim/jit/jit.hpp: per-Machine code cache + compiler
struct JitOps;  // sim/jit/jit.cpp: helper call-outs for emitted code
/// Tier-2 driver loop (sim/jit/runtime.cpp); same contract as
/// run_superblocks.
bool run_jit(Machine& m, const std::function<bool()>* cancel, u64 stride,
             hwst::Trap& out);
/// True when this build/host can execute emitted x86-64 code (plain
/// x86-64 builds; sanitizer builds pin the ladder to the dispatcher).
bool jit_supported();
} // namespace jit

/// One predecoded instruction (docs/performance.md). Built once at
/// Machine construction from program.code(), indexed by
/// (pc - text_base) >> 2: everything step() used to re-derive per
/// retired instruction — format, operand-read flags, load-ness and the
/// InstrMix bucket — is looked up instead. Pure acceleration: the facts
/// are exactly what the riscv:: helpers and the old classify() switch
/// would compute, which tests/perf_paths_test.cpp asserts.
struct Uop {
    riscv::Instruction in;   ///< copy, for locality
    riscv::Format fmt;       ///< riscv::op_format(in.op)
    bool reads_rs1;          ///< format reads rs1 (load-use hazard)
    bool reads_rs2;          ///< format reads rs2 (load-use hazard)
    bool is_load;            ///< riscv::is_load(in.op)
    u64 InstrMix::* bucket;  ///< the classify() counter for in.op
};

constexpr std::string_view probe_name(Probe p)
{
    switch (p) {
    case Probe::SrfSpatialWrite: return "srf-spatial-write";
    case Probe::SrfTemporalWrite: return "srf-temporal-write";
    case Probe::LmsmStore: return "lmsm-store";
    case Probe::LmsmLoad: return "lmsm-load";
    case Probe::KeybufferFill: return "keybuffer-fill";
    case Probe::KeybufferLookup: return "keybuffer-lookup";
    case Probe::CompCsrWidths: return "comp-csr-widths";
    case Probe::DcacheFillData: return "dcache-fill-data";
    }
    return "unknown";
}

class Machine {
public:
    /// The program must be finalized. The Machine maps the process
    /// address space, loads text+data, points sp at the stack top and
    /// programs the HWST CSRs from the program's MemoryLayout.
    explicit Machine(const riscv::Program& program, MachineConfig cfg = {});
    ~Machine(); // out of line: jit::JitTier is incomplete here

    /// Run to completion (exit, trap, or fuel exhaustion).
    RunResult run();

    /// Like run(), but polls `cancel` every `stride` retired
    /// instructions and returns std::nullopt when it fires (the machine
    /// state stays inspectable). Execution is otherwise identical to
    /// run(): an uncancelled run produces the exact same RunResult.
    std::optional<RunResult> run_cancellable(
        const std::function<bool()>& cancel, u64 stride = 4096);

    /// Execute one instruction. Returns a trap (kind None = keep going).
    hwst::Trap step();

    /// Per-instruction trace hook, invoked before each instruction
    /// executes (debugger/tooling support). Pass nullptr to disable.
    using TraceHook =
        std::function<void(u64 pc, const riscv::Instruction&)>;
    void set_trace(TraceHook hook) { trace_ = std::move(hook); }

    /// Value-perturbation hook, invoked at every Probe point with the
    /// in-flight value; whatever it returns is used instead (return
    /// `value` unchanged for a transparent observer). Pass nullptr to
    /// disable. The fault engine (src/fault/) is the main client.
    using ProbeHook = std::function<u64(Probe, u64 instret, u64 value)>;
    void set_probe_hook(ProbeHook hook) { probe_hook_ = std::move(hook); }

    // ---- introspection (tests, examples) -----------------------------
    u64 reg(Reg r) const { return regs_[riscv::reg_index(r)]; }
    void set_reg(Reg r, u64 v)
    {
        if (r != Reg::zero) regs_[riscv::reg_index(r)] = v;
    }
    u64 pc() const { return pc_; }
    void set_pc(u64 pc) { pc_ = pc; }
    u64 cycles() const { return cycles_; }
    u64 instret() const { return instret_; }
    bool running() const { return running_; }

    mem::Memory& memory() { return mem_; }
    const mem::Memory& memory() const { return mem_; }
    metadata::ShadowRegFile& srf() { return srf_; }
    const metadata::Keybuffer& keybuffer() const { return keybuffer_; }
    hwst::HwstCsrFile& csrs() { return csrs_; }
    const mem::Cache& dcache() const { return dcache_; }
    mem::HeapAllocator& heap() { return *heap_; }
    mem::LockAllocator& locks() { return *locks_; }
    const std::vector<i64>& output() const { return output_; }

    /// Decompression config currently programmed in the CSRs.
    metadata::CompressionConfig compression() const
    {
        return csrs_.compression();
    }

    /// The predecoded instruction stream (read-only; tests assert it
    /// against per-instruction re-derivation).
    std::span<const Uop> uops() const { return uops_; }

    /// Host-side counters of the superblock DBT tier (never part of the
    /// simulated envelope).
    const DbtStats& dbt_stats() const { return dbt_stats_; }

    /// Host-side counters of the tier-2 template JIT.
    const JitStats& jit_stats() const { return jit_stats_; }

    /// The execution tier this Machine resolved to (config + HWST_TIER
    /// / HWST_DBT env + host capability folded together at
    /// construction). Trace/probe hooks and force_interpreter() still
    /// pin individual runs to the interpreter.
    ExecTier tier() const { return tier_; }

private:
    friend bool run_superblocks(Machine&, const std::function<bool()>*,
                                u64, hwst::Trap&);
    friend class jit::JitTier;
    friend struct jit::JitOps;
    friend bool jit::run_jit(Machine&, const std::function<bool()>*, u64,
                             hwst::Trap&);
    hwst::Trap exec(const riscv::Instruction& in, u64& next_pc);
    hwst::Trap exec_hwst(const riscv::Instruction& in);
    hwst::Trap exec_ecall();
    void srf_effects(const riscv::Instruction& in, riscv::Format fmt);

    /// Drop all JIT-compiled code (out of line: JitTier is incomplete
    /// here). No-op when the JIT tier was never entered.
    void jit_drop_code();

    u64 mem_load(u64 addr, unsigned width, bool sign_extend);
    void mem_store(u64 addr, unsigned width, u64 value);
    unsigned dcache_extra(u64 addr);

    std::optional<hwst::Trap> spatial_check(Reg ptr_reg, u64 addr,
                                            unsigned width);

    /// Run `value` through the probe hook (identity when no hook set).
    u64 probe(Probe p, u64 value)
    {
        return probe_hook_ ? probe_hook_(p, instret_, value) : value;
    }

    /// Compression config as COMP/DECOMP see it: the CSR widths routed
    /// through the CompCsrWidths probe, then validated. `valid == false`
    /// means the (possibly perturbed) widths are unusable and any
    /// metadata operation must trap rather than compute garbage.
    struct ActiveCompression {
        metadata::CompressionConfig cfg;
        bool valid;
    };
    ActiveCompression active_compression();

    // Superblock DBT tier state. The block cache is created lazily on
    // the first translated run; comp_memo_ caches active_compression()
    // against the CSR file's version counter (bypassed whenever a probe
    // hook is installed — the hook must see every invocation).
    std::unique_ptr<SuperblockCache> sbcache_;
    DbtStats dbt_stats_;
    // Tier-2 JIT state: lazily created on the first jit-tier run.
    // tier_ is the resolved ladder position (see tier()).
    std::unique_ptr<jit::JitTier> jit_;
    JitStats jit_stats_;
    ExecTier tier_ = ExecTier::Dbt;
    bool in_dispatch_ = false;
    u64 comp_version_ = ~u64{0};
    ActiveCompression comp_memo_{};

    const riscv::Program& program_;
    MachineConfig cfg_;

    // Predecoded instruction stream + hoisted bounds (see Uop).
    std::vector<Uop> uops_;
    u64 text_base_ = 0;
    u64 code_bytes_ = 0;

    std::array<u64, riscv::kNumRegs> regs_{};
    u64 pc_ = 0;
    u64 cycles_ = 0;
    u64 instret_ = 0;
    bool running_ = true;
    i64 exit_code_ = 0;

    mem::Memory mem_;
    mem::Cache dcache_;
    mem::Cache icache_;
    metadata::ShadowRegFile srf_;
    metadata::Keybuffer keybuffer_;
    hwst::HwstCsrFile csrs_;
    hwst::Smac smac_;
    hwst::Scu scu_;
    hwst::Tcu tcu_;

    std::unique_ptr<mem::HeapAllocator> heap_;
    std::unique_ptr<mem::LockAllocator> locks_;
    std::vector<std::pair<u64, u64>> quarantine_; // addr, size
    u64 quarantine_used_ = 0;

    std::vector<i64> output_;

    // Load-use hazard bookkeeping: destination of the previous
    // instruction if it was a load, else Reg::zero.
    Reg last_load_rd_ = Reg::zero;

    InstrMix mix_;
    TraceHook trace_;
    ProbeHook probe_hook_;
};

/// Process-wide override forcing every run onto the interpreter tier,
/// regardless of MachineConfig::dbt or HWST_DBT. The DBT divergence
/// sentinel (docs/execution.md, "Process isolation & failure
/// taxonomy") sets it inside its re-check workers so the reference run
/// cannot consult the tier under suspicion; runs forced this way count
/// in dbt_stats().sentinel_degraded.
void force_interpreter(bool on);
bool interpreter_forced();

} // namespace hwst::sim
