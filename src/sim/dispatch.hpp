// Threaded dispatcher for the superblock DBT tier (superblock.hpp).
// run_superblocks is the translated-execution equivalent of the
// run_cancellable interpreter loop: it retires whole superblocks with
// batched counters, chains hot edges, and polls `cancel` only at block
// boundaries (every >= `stride` retired instructions).
#pragma once

#include <functional>

#include "common/bitops.hpp"
#include "hwst/trap.hpp"

namespace hwst::sim {

class Machine;

/// Run the machine to completion through the superblock tier. Returns
/// false when `cancel` fired (machine state stays inspectable, like the
/// interpreter's cancellation); true otherwise, with `out` holding the
/// final trap (kind None on clean exit). Must only be called when no
/// trace or probe hook is installed — the tier batches per-instruction
/// bookkeeping those hooks would observe.
bool run_superblocks(Machine& m, const std::function<bool()>* cancel,
                     common::u64 stride, hwst::Trap& out);

} // namespace hwst::sim
