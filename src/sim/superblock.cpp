// Superblock discovery + translation (see superblock.hpp). The
// translator only restates facts the interpreter would re-derive per
// retired instruction: executor kind, flattened operands, static cycle
// contribution, InstrMix bucket, intra-block load-use hazards and the
// icache fetch pattern. Anything dynamic (register values, dcache
// timing, SRF state, traps) stays with the dispatcher.
#include "sim/superblock.hpp"

#include "sim/machine.hpp"

namespace hwst::sim {

using riscv::Instruction;
using riscv::Opcode;
using riscv::Reg;

namespace {

/// Per-opcode static cycle cost on top of the base 1 cycle: the
/// functional-unit extras exec() adds unconditionally, plus the
/// always-taken penalty of unconditional jumps. Conditional-branch
/// penalties, csr_extra, ecall_cost and D-cache extras stay dynamic.
unsigned static_cycle_extra(Opcode op, const TranslateEnv& env)
{
    switch (op) {
    case Opcode::MUL: case Opcode::MULH: case Opcode::MULHSU:
    case Opcode::MULHU: case Opcode::MULW:
        return env.mul_extra;
    case Opcode::DIV: case Opcode::DIVU: case Opcode::REM:
    case Opcode::REMU: case Opcode::DIVW: case Opcode::DIVUW:
    case Opcode::REMW: case Opcode::REMUW:
        return env.div_extra;
    case Opcode::JAL: case Opcode::JALR:
        return env.branch_taken_penalty;
    default:
        return 0;
    }
}

constexpr bool is_ender_kind(SbKind k)
{
    switch (k) {
    case SbKind::Beq: case SbKind::Bne: case SbKind::Blt:
    case SbKind::Bge: case SbKind::Bltu: case SbKind::Bgeu:
    case SbKind::Jal: case SbKind::Jalr: case SbKind::InterpOne:
        return true;
    default:
        return false;
    }
}

/// rd==zero folds these to Nop: the register write is suppressed and
/// srf_effects' default clear(rd) is guarded by rd != zero, so the op
/// has no architectural effect beyond its (statically folded) cycle and
/// mix contribution. ADD/SUB are excluded — their srf propagation rule
/// ends in an *unguarded* clear(rd), which mutates SRF entry 0.
constexpr bool foldable_when_rd_zero(SbKind k)
{
    switch (k) {
    case SbKind::Const: case SbKind::Addi: case SbKind::Slti:
    case SbKind::Sltiu: case SbKind::Xori: case SbKind::Ori:
    case SbKind::Andi: case SbKind::Slli: case SbKind::Srli:
    case SbKind::Srai: case SbKind::Addiw: case SbKind::Slliw:
    case SbKind::Srliw: case SbKind::Sraiw: case SbKind::Sll:
    case SbKind::Slt: case SbKind::Sltu: case SbKind::Xor:
    case SbKind::Srl: case SbKind::Sra: case SbKind::Or:
    case SbKind::And: case SbKind::Addw: case SbKind::Subw:
    case SbKind::Sllw: case SbKind::Srlw: case SbKind::Sraw:
    case SbKind::Mul: case SbKind::Mulh: case SbKind::Mulhsu:
    case SbKind::Mulhu: case SbKind::Div: case SbKind::Divu:
    case SbKind::Rem: case SbKind::Remu: case SbKind::Mulw:
    case SbKind::Divw: case SbKind::Divuw: case SbKind::Remw:
    case SbKind::Remuw:
        return true;
    default:
        return false;
    }
}

SbKind kind_for(Opcode op)
{
    switch (op) {
    case Opcode::LUI: case Opcode::AUIPC: return SbKind::Const;
    case Opcode::ADDI: return SbKind::Addi;
    case Opcode::SLTI: return SbKind::Slti;
    case Opcode::SLTIU: return SbKind::Sltiu;
    case Opcode::XORI: return SbKind::Xori;
    case Opcode::ORI: return SbKind::Ori;
    case Opcode::ANDI: return SbKind::Andi;
    case Opcode::SLLI: return SbKind::Slli;
    case Opcode::SRLI: return SbKind::Srli;
    case Opcode::SRAI: return SbKind::Srai;
    case Opcode::ADDIW: return SbKind::Addiw;
    case Opcode::SLLIW: return SbKind::Slliw;
    case Opcode::SRLIW: return SbKind::Srliw;
    case Opcode::SRAIW: return SbKind::Sraiw;
    case Opcode::ADD: return SbKind::Add;
    case Opcode::SUB: return SbKind::Sub;
    case Opcode::SLL: return SbKind::Sll;
    case Opcode::SLT: return SbKind::Slt;
    case Opcode::SLTU: return SbKind::Sltu;
    case Opcode::XOR: return SbKind::Xor;
    case Opcode::SRL: return SbKind::Srl;
    case Opcode::SRA: return SbKind::Sra;
    case Opcode::OR: return SbKind::Or;
    case Opcode::AND: return SbKind::And;
    case Opcode::ADDW: return SbKind::Addw;
    case Opcode::SUBW: return SbKind::Subw;
    case Opcode::SLLW: return SbKind::Sllw;
    case Opcode::SRLW: return SbKind::Srlw;
    case Opcode::SRAW: return SbKind::Sraw;
    case Opcode::MUL: return SbKind::Mul;
    case Opcode::MULH: return SbKind::Mulh;
    case Opcode::MULHSU: return SbKind::Mulhsu;
    case Opcode::MULHU: return SbKind::Mulhu;
    case Opcode::DIV: return SbKind::Div;
    case Opcode::DIVU: return SbKind::Divu;
    case Opcode::REM: return SbKind::Rem;
    case Opcode::REMU: return SbKind::Remu;
    case Opcode::MULW: return SbKind::Mulw;
    case Opcode::DIVW: return SbKind::Divw;
    case Opcode::DIVUW: return SbKind::Divuw;
    case Opcode::REMW: return SbKind::Remw;
    case Opcode::REMUW: return SbKind::Remuw;
    case Opcode::LB: return SbKind::Lb;
    case Opcode::LH: return SbKind::Lh;
    case Opcode::LW: return SbKind::Lw;
    case Opcode::LD: return SbKind::Ld;
    case Opcode::LBU: return SbKind::Lbu;
    case Opcode::LHU: return SbKind::Lhu;
    case Opcode::LWU: return SbKind::Lwu;
    case Opcode::SB: return SbKind::Sb;
    case Opcode::SH: return SbKind::Sh;
    case Opcode::SW: return SbKind::Sw;
    case Opcode::SD: return SbKind::Sd;
    case Opcode::CLB: case Opcode::CLH: case Opcode::CLW: case Opcode::CLD:
    case Opcode::CLBU: case Opcode::CLHU: case Opcode::CLWU:
        return SbKind::CheckedLoad;
    case Opcode::CSB: case Opcode::CSH: case Opcode::CSW: case Opcode::CSD:
        return SbKind::CheckedStore;
    // FENCE retires with no architectural effect (and srf_effects
    // exempts it), so its executor is the batched no-op.
    case Opcode::FENCE: return SbKind::Nop;
    case Opcode::BEQ: return SbKind::Beq;
    case Opcode::BNE: return SbKind::Bne;
    case Opcode::BLT: return SbKind::Blt;
    case Opcode::BGE: return SbKind::Bge;
    case Opcode::BLTU: return SbKind::Bltu;
    case Opcode::BGEU: return SbKind::Bgeu;
    case Opcode::JAL: return SbKind::Jal;
    case Opcode::JALR: return SbKind::Jalr;
    // CSR ops can read the cycle/instret counters, ecall/ebreak reach
    // the proxy kernel: all must observe fully-batched counters and end
    // the block, executed through the generic exec() path.
    case Opcode::ECALL: case Opcode::EBREAK:
    case Opcode::CSRRW: case Opcode::CSRRS: case Opcode::CSRRC:
    case Opcode::CSRRWI: case Opcode::CSRRSI: case Opcode::CSRRCI:
        return SbKind::InterpOne;
    // The hot HWST metadata ops (the bulk of every instrumented
    // scheme's overhead) get dedicated inline executors; srf_effects is
    // a no-op for all of them.
    case Opcode::SBDL: case Opcode::SBDU: return SbKind::SbdStore;
    case Opcode::LBDLS: case Opcode::LBDUS: return SbKind::LbdLoad;
    case Opcode::TCHK: return SbKind::Tchk;
    case Opcode::BNDRS: case Opcode::BNDRT: return SbKind::Bndr;
    // Every remaining HWST custom op (binds, srf moves, kbflush,
    // metadata queries) runs through exec_hwst + generic srf_effects;
    // unknown opcodes land there too and trap IllegalInstruction,
    // exactly like the interpreter's default case.
    default:
        return SbKind::Hwst;
    }
}

constexpr u64 InstrMix::* kMixMembers[] = {
    &InstrMix::alu,           &InstrMix::loads,
    &InstrMix::stores,        &InstrMix::checked_loads,
    &InstrMix::checked_stores, &InstrMix::meta_moves,
    &InstrMix::binds,         &InstrMix::tchk,
    &InstrMix::branches,      &InstrMix::jumps,
    &InstrMix::ecalls,        &InstrMix::other,
};

} // namespace

Superblock* SuperblockCache::get_or_translate(const TranslateEnv& env,
                                              u64 pc, DbtStats& st)
{
    if (at_.size() != env.n_uops) at_.assign(env.n_uops, nullptr);
    const u32 idx = static_cast<u32>((pc - env.text_base) >> 2);
    if (Superblock* hit = at_[idx]) return hit;

    auto blk = std::make_unique<Superblock>();
    blk->pc0 = pc;
    blk->first_uop = idx;

    InstrMix delta{};
    u32 cum = 0;
    u32 repeats = 0;
    Reg prev_load_rd = Reg::zero;
    u32 i = idx;
    for (;;) {
        const Uop& u = env.uops[i];
        const Instruction& in = u.in;

        SbOp op{};
        op.kind = kind_for(in.op);
        op.pc = env.text_base + u64{i} * 4;
        op.uop_idx = i;
        op.block_pos = static_cast<u16>(i - idx);
        op.rd = static_cast<u8>(in.rd);
        op.rs1 = static_cast<u8>(in.rs1);
        op.rs2 = static_cast<u8>(in.rs2);
        op.imm = in.imm;

        if (env.icache_on) {
            if (i == idx || op.pc % env.icache_line == 0) {
                op.flags |= kOpFetchFull;
            } else {
                op.flags |= kOpFetchRepeat;
                ++repeats;
            }
        }
        op.cum_repeat = static_cast<u16>(repeats);
        // Load-use hazard: only op 0's producer is outside the block
        // and needs a dynamic check; every later pair is static.
        if (i == idx) {
            op.flags |= kOpHazDyn;
            if (u.reads_rs1) op.flags |= kOpReadsRs1;
            if (u.reads_rs2) op.flags |= kOpReadsRs2;
        } else if (prev_load_rd != Reg::zero &&
                   ((u.reads_rs1 && in.rs1 == prev_load_rd) ||
                    (u.reads_rs2 && in.rs2 == prev_load_rd))) {
            cum += env.load_use_stall;
        }
        cum += 1 + static_cycle_extra(in.op, env);
        op.cum_static = cum;
        ++(delta.*u.bucket);
        prev_load_rd = u.is_load ? in.rd : Reg::zero;

        // Kind-specific operand lowering.
        switch (op.kind) {
        case SbKind::Const:
            op.aux = in.op == Opcode::AUIPC
                         ? op.pc + static_cast<u64>(in.imm)
                         : static_cast<u64>(in.imm);
            break;
        case SbKind::Beq: case SbKind::Bne: case SbKind::Blt:
        case SbKind::Bge: case SbKind::Bltu: case SbKind::Bgeu:
            op.imm = static_cast<i64>(op.pc + static_cast<u64>(in.imm));
            break;
        case SbKind::Jal:
            op.imm = static_cast<i64>(op.pc + static_cast<u64>(in.imm));
            op.aux = op.pc + 4;
            break;
        case SbKind::Jalr:
            op.aux = op.pc + 4;
            break;
        case SbKind::CheckedLoad:
            op.width = static_cast<u8>(riscv::mem_width(in.op));
            if (in.op == Opcode::CLB || in.op == Opcode::CLH ||
                in.op == Opcode::CLW || in.op == Opcode::CLD)
                op.flags |= kOpSignedLoad;
            break;
        case SbKind::CheckedStore:
            op.width = static_cast<u8>(riscv::mem_width(in.op));
            break;
        case SbKind::SbdStore:
        case SbKind::LbdLoad:
            // Upper-half variants address the high LMSM slot.
            op.aux = (in.op == Opcode::SBDU || in.op == Opcode::LBDUS)
                         ? hwst::Smac::upper_slot_offset()
                         : 0;
            break;
        case SbKind::Bndr:
            // aux selects the SRF half: 0 = spatial (bndrs), 1 =
            // temporal (bndrt).
            op.aux = in.op == Opcode::BNDRT ? 1 : 0;
            break;
        default:
            break;
        }
        if (in.rd == Reg::zero && foldable_when_rd_zero(op.kind))
            op.kind = SbKind::Nop;

        blk->ops.push_back(op);

        if (is_ender_kind(op.kind)) {
            blk->len = i - idx + 1;
            blk->exit_load_rd = Reg::zero; // enders are never loads
            break;
        }
        ++i;
        if (i - idx >= kMaxSuperblockLen || i >= env.n_uops) {
            blk->len = i - idx;
            blk->exit_load_rd = prev_load_rd;
            SbOp end{};
            end.kind = SbKind::EndFall;
            end.pc = env.text_base + u64{i} * 4;
            blk->ops.push_back(end);
            break;
        }
    }
    blk->static_cycles = cum;
    blk->repeat_fetches = repeats;

    for (u64 InstrMix::* member : kMixMembers) {
        if (const u64 count = delta.*member)
            blk->mix_delta.emplace_back(member, count);
    }
    if (env.labels) {
        for (SbOp& o : blk->ops)
            o.label = env.labels[static_cast<unsigned>(o.kind)];
    }

    Superblock* raw = blk.get();
    at_[idx] = raw;
    blocks_.push_back(std::move(blk));
    ++st.blocks;
    return raw;
}

} // namespace hwst::sim
