// Superblock DBT tier (docs/performance.md "Translation tier"): the
// structures the Machine's dynamic-binary-translation layer is built
// from. A superblock is a straight-line run of predecoded uops ending
// at the first control transfer (branch/jal/jalr), interp-one
// instruction (csr/ecall/ebreak — they can observe cycle/instret
// mid-stream) or the length cap. "Translation" lowers each uop into an
// SbOp: a pre-bound executor selector (computed-goto label), flattened
// operands and cumulative static timing, so the dispatcher retires the
// whole block with batched instret/cycles/mix updates and no per-
// instruction switch re-entry.
//
// Everything here is host-side acceleration only. The contract is the
// same as for every other hot-path structure: host speed may change,
// simulated observables (instret, cycles, traps, InstrMix, cache
// stats) may not — tests/superblock_test.cpp fuzzes the tier against
// the step() interpreter bit-for-bit.
#pragma once

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/bitops.hpp"
#include "riscv/reg.hpp"

namespace hwst::sim {

using common::i64;
using common::u16;
using common::u32;
using common::u64;
using common::u8;

struct Uop;      // sim/machine.hpp
struct InstrMix; // sim/machine.hpp

/// Executor kinds. One label per entry in the dispatcher's computed-
/// goto table; the X-macro keeps the enum and the label array in sync.
/// Body kinds first, block enders last (Beq..EndFall).
#define HWST_SB_KIND_LIST(X)                                              \
    X(Nop)                                                                \
    X(Const)                                                              \
    X(Addi) X(Slti) X(Sltiu) X(Xori) X(Ori) X(Andi)                       \
    X(Slli) X(Srli) X(Srai)                                               \
    X(Addiw) X(Slliw) X(Srliw) X(Sraiw)                                   \
    X(Add) X(Sub)                                                         \
    X(Sll) X(Slt) X(Sltu) X(Xor) X(Srl) X(Sra) X(Or) X(And)               \
    X(Addw) X(Subw) X(Sllw) X(Srlw) X(Sraw)                               \
    X(Mul) X(Mulh) X(Mulhsu) X(Mulhu) X(Div) X(Divu) X(Rem) X(Remu)       \
    X(Mulw) X(Divw) X(Divuw) X(Remw) X(Remuw)                             \
    X(Lb) X(Lh) X(Lw) X(Ld) X(Lbu) X(Lhu) X(Lwu)                          \
    X(Sb) X(Sh) X(Sw) X(Sd)                                               \
    X(CheckedLoad) X(CheckedStore)                                        \
    X(SbdStore) X(LbdLoad) X(Tchk) X(Bndr)                                \
    X(Hwst)                                                               \
    X(Beq) X(Bne) X(Blt) X(Bge) X(Bltu) X(Bgeu)                           \
    X(Jal) X(Jalr) X(InterpOne) X(EndFall)

enum class SbKind : u8 {
#define HWST_SB_ENUM(name) name,
    HWST_SB_KIND_LIST(HWST_SB_ENUM)
#undef HWST_SB_ENUM
};

inline constexpr unsigned kNumSbKinds = 0
#define HWST_SB_COUNT(name) +1
    HWST_SB_KIND_LIST(HWST_SB_COUNT)
#undef HWST_SB_COUNT
    ;

/// Block length cap. Bounds both the translation unit and the overshoot
/// of block-boundary cancellation polls / fuel checks (run_cancellable
/// can overrun a poll point by at most one block).
inline constexpr unsigned kMaxSuperblockLen = 64;

// SbOp::flags bits.
inline constexpr u8 kOpFetchFull = 1;   ///< full icache access (line start / op 0)
inline constexpr u8 kOpFetchRepeat = 2; ///< guaranteed same-line fetch hit
inline constexpr u8 kOpHazDyn = 4;      ///< op 0: check last_load_rd_ dynamically
inline constexpr u8 kOpReadsRs1 = 8;    ///< with kOpHazDyn: rs1 is consumed
inline constexpr u8 kOpReadsRs2 = 16;   ///< with kOpHazDyn: rs2 is consumed
inline constexpr u8 kOpSignedLoad = 32; ///< CheckedLoad sign-extends

struct Superblock;

/// 2-way inline cache for indirect-jump (`jalr`) targets, shared by
/// both translated tiers: the dispatcher embeds one per Jalr op with
/// `Payload = Superblock*`, the template JIT keeps per-site instances
/// in its arena with `Payload = const void*` (native entry points) and
/// bakes the member addresses straight into the emitted probe. `aux`
/// is tier-private (the JIT stores the chain fuel threshold there).
/// Replacement is round-robin: with only two ways, LRU and round-robin
/// differ only when the same way hits twice in a row, where the victim
/// choice is irrelevant — and round-robin keeps the probe branch-free
/// on the hit path. Layout is standard (no virtuals) because emitted
/// code addresses the fields directly.
template <typename Payload>
struct JalrCache2 {
    static constexpr u64 kEmptyTag = ~u64{0};
    u64 tag[2] = {kEmptyTag, kEmptyTag};
    Payload way[2] = {Payload{}, Payload{}};
    u64 aux[2] = {0, 0};
    u8 victim = 0;

    /// Way index holding `t`, or -1 on miss.
    int lookup(u64 t) const
    {
        return tag[0] == t ? 0 : tag[1] == t ? 1 : -1;
    }
    /// Claim a way for `t` (round-robin victim), clearing its payload.
    unsigned insert(u64 t)
    {
        const unsigned v = victim;
        victim ^= 1;
        tag[v] = t;
        way[v] = Payload{};
        aux[v] = 0;
        return v;
    }
};

/// One translated uop. Operands are flattened (register indexes,
/// absolute branch targets, precomputed U-type values) and the executor
/// label pre-bound so the dispatcher never touches the Instruction
/// again on the hot path; `uop_idx` keeps the link back for the cold
/// paths (trap prefix accounting, interp-one, generic HWST ops).
struct SbOp {
    SbKind kind{};
    u8 flags = 0;
    u8 rd = 0;
    u8 rs1 = 0;
    u8 rs2 = 0;
    u8 width = 0;       ///< memory access width (checked ops)
    u16 block_pos = 0;  ///< index of this op inside its block
    u16 cum_repeat = 0; ///< repeat-hit fetches in ops[0..this], inclusive
    u32 uop_idx = 0;    ///< absolute index into Machine::uops_
    u32 cum_static = 0; ///< static cycles of ops[0..this], inclusive
    i64 imm = 0;        ///< immediate / absolute control-transfer target
    u64 aux = 0;        ///< Const value / link address (pc + 4)
    u64 pc = 0;
    const void* label = nullptr; ///< computed-goto target, pre-bound
    // Chain edges, resolved lazily by the dispatcher (null until the
    // successor is translated; dropped wholesale on flush, so they can
    // never dangle).
    Superblock* edge_taken = nullptr;
    Superblock* edge_fall = nullptr;
    /// Jalr ops: 2-way inline cache keyed on the dynamic target.
    JalrCache2<Superblock*> jalr{};
};

struct Superblock {
    u64 pc0 = 0;
    u32 first_uop = 0;
    u32 len = 0;          ///< real instructions (EndFall excluded)
    u32 static_cycles = 0; ///< sum of per-op static cycles, whole block
    /// Guaranteed same-line fetch hits in the whole block, batched into
    /// the icache stats once per block execution (trap prefixes use the
    /// per-op cum_repeat counter instead).
    u32 repeat_fetches = 0;
    /// Value of last_load_rd_ after the block retires down the
    /// fall-through path: rd of the final op if it is a load, else
    /// zero (control enders always leave it zero, like step() does for
    /// non-load instructions).
    riscv::Reg exit_load_rd = riscv::Reg::zero;
    std::vector<SbOp> ops; ///< len ops, + EndFall terminator if uncapped
    /// Batched InstrMix update: (bucket, count) for every bucket this
    /// block touches, applied once per block execution.
    std::vector<std::pair<u64 InstrMix::*, u64>> mix_delta;
};

/// Host-side tier counters (perf_mips emits them per row; they are
/// never part of the simulated envelope).
struct DbtStats {
    u64 blocks = 0;        ///< superblocks translated (cumulative)
    u64 block_execs = 0;   ///< dispatcher block entries
    u64 chained = 0;       ///< block→block transfers that skipped the dispatcher
    u64 flushes = 0;       ///< block-cache invalidations (map_region)
    u64 jalr_hits = 0;     ///< jalr 2-way inline-cache hits (both tiers)
    u64 jalr_misses = 0;   ///< jalr inline-cache misses (way refilled)
    u64 fallback_runs = 0; ///< runs forced onto the interpreter by hooks
    /// Runs forced onto the interpreter by sim::force_interpreter() —
    /// the DBT divergence sentinel's graceful-degradation path.
    u64 sentinel_degraded = 0;
};

/// Host-side counters of the tier-2 template JIT (perf_mips emits them
/// per row under "jit"; stripped by json_check --equiv like every other
/// host field).
struct JitStats {
    u64 translated = 0;    ///< superblocks lowered to native code
    u64 code_bytes = 0;    ///< bytes of native code currently live
    u64 bailouts = 0;      ///< exits to the driver for traps/interp-one
    u64 chain_patches = 0; ///< direct jumps patched block-to-block
    u64 evictions = 0;     ///< whole-cache drops on budget overflow
};

/// Everything translation needs from the Machine, flattened so the
/// translator does not depend on the Machine type (machine.hpp includes
/// this header for DbtStats/SuperblockCache).
struct TranslateEnv {
    const Uop* uops = nullptr;
    u32 n_uops = 0;
    u64 text_base = 0;
    unsigned icache_line = 64;
    bool icache_on = true;
    unsigned load_use_stall = 1;
    unsigned mul_extra = 3;
    unsigned div_extra = 24;
    unsigned branch_taken_penalty = 3;
    /// Computed-goto label table indexed by SbKind (null = leave labels
    /// unbound; only the threaded dispatcher needs them).
    const void* const* labels = nullptr;
};

/// Translated-block store: a flat pc-indexed table over the uop range
/// (lookup is one load, like the uop table itself) plus ownership of
/// the blocks. Flushes are deferred while the dispatcher is on-stack
/// (map_region cannot happen mid-dispatch today, but the hook must be
/// safe whenever it fires).
class SuperblockCache {
public:
    /// Translated block starting at `pc`, translating on first use.
    /// `pc` must already be validated (in text range, 4-aligned).
    Superblock* get_or_translate(const TranslateEnv& env, u64 pc,
                                 DbtStats& st);

    void flush(DbtStats& st)
    {
        blocks_.clear();
        std::fill(at_.begin(), at_.end(), nullptr);
        ++st.flushes;
    }
    void request_flush() { flush_pending_ = true; }
    /// Returns true when a deferred flush was applied — the JIT tier
    /// uses this to drop its native code (which bakes SbOp addresses)
    /// in the same breath.
    bool flush_if_pending(DbtStats& st)
    {
        if (!flush_pending_) return false;
        flush_pending_ = false;
        flush(st);
        return true;
    }

    u64 live_blocks() const { return blocks_.size(); }

private:
    std::vector<std::unique_ptr<Superblock>> blocks_;
    std::vector<Superblock*> at_; ///< indexed by (pc - text_base) >> 2
    bool flush_pending_ = false;
};

} // namespace hwst::sim
