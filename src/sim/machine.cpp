#include "sim/machine.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/env.hpp"
#include "common/error.hpp"
#include "riscv/encoding.hpp"
#include "sim/dispatch.hpp"
#include "sim/jit/jit.hpp"
#include "sim/syscalls.hpp"

namespace hwst::sim {

using common::SimError;
using common::u8;
using hwst::Trap;
using hwst::TrapKind;
using mem::Access;
using mem::MemFault;
using riscv::Format;
using riscv::Instruction;
using riscv::Opcode;

namespace {

using common::i32;

u64 sext32(u64 v) { return static_cast<u64>(static_cast<i64>(static_cast<i32>(v))); }

constexpr bool reads_rs1(Format f)
{
    switch (f) {
    case Format::R: case Format::I: case Format::ShiftI:
    case Format::ShiftIW: case Format::S: case Format::B: case Format::Csr:
        return true;
    default:
        return false;
    }
}

constexpr bool reads_rs2(Format f)
{
    return f == Format::R || f == Format::S || f == Format::B;
}

/// InstrMix counter for `op` — the predecoded form of the old
/// per-step classify() switch (same mapping, applied once per static
/// instruction at construction instead of once per retired one).
u64 sim::InstrMix::* mix_bucket(Opcode op)
{
    using Mix = sim::InstrMix;
    switch (op) {
    case Opcode::CLB: case Opcode::CLH: case Opcode::CLW: case Opcode::CLD:
    case Opcode::CLBU: case Opcode::CLHU: case Opcode::CLWU:
        return &Mix::checked_loads;
    case Opcode::CSB: case Opcode::CSH: case Opcode::CSW: case Opcode::CSD:
        return &Mix::checked_stores;
    case Opcode::SBDL: case Opcode::SBDU: case Opcode::LBDLS:
    case Opcode::LBDUS: case Opcode::LBAS: case Opcode::LBND:
    case Opcode::LKEY: case Opcode::LLOC:
        return &Mix::meta_moves;
    case Opcode::BNDRS: case Opcode::BNDRT:
        return &Mix::binds;
    case Opcode::TCHK:
        return &Mix::tchk;
    case Opcode::JAL: case Opcode::JALR:
        return &Mix::jumps;
    case Opcode::ECALL:
        return &Mix::ecalls;
    default:
        break;
    }
    if (riscv::is_load(op)) return &Mix::loads;
    if (riscv::is_store(op)) return &Mix::stores;
    if (riscv::is_branch(op)) return &Mix::branches;
    if (op == Opcode::KBFLUSH || op == Opcode::SRFMV ||
        op == Opcode::SRFCLR || op == Opcode::FENCE ||
        op == Opcode::EBREAK)
        return &Mix::other;
    return &Mix::alu;
}

} // namespace

Machine::Machine(const riscv::Program& program, MachineConfig cfg)
    : program_{program},
      cfg_{cfg},
      dcache_{cfg.dcache},
      icache_{cfg.icache},
      keybuffer_{cfg.keybuffer_entries}
{
    const auto& lay = program.layout();

    // Predecode: lower the instruction stream into the uop side table
    // so the per-step format/classify work disappears from the hot
    // loop (docs/performance.md).
    text_base_ = lay.text_base;
    code_bytes_ = program.code().size() * 4;
    uops_.reserve(program.code().size());
    for (const riscv::Instruction& in : program.code()) {
        const Format fmt = riscv::op_format(in.op);
        uops_.push_back(Uop{in, fmt, reads_rs1(fmt), reads_rs2(fmt),
                            riscv::is_load(in.op), mix_bucket(in.op)});
    }

    // Process address-space map.
    const u64 text_size =
        common::align_up(std::max<u64>(program.code().size() * 4, 4), 4096);
    const u64 data_size = common::align_up(program.data().size() + 4096, 4096);
    mem_.map_region("text", lay.text_base, text_size);
    mem_.map_region("data", lay.data_base, data_size);
    mem_.map_region("heap", lay.heap_base, lay.heap_size);
    mem_.map_region("stack", lay.stack_top - lay.stack_size, lay.stack_size);
    mem_.map_region("lock", lay.lock_base, lay.lock_entries * 8);
    mem_.map_region("swss", lay.sw_arg_base, lay.sw_arg_size);
    // Shadow spaces cover the <<2 image of everything below stack_top.
    mem_.map_region("lmsm", lay.shadow_offset, lay.stack_top << 2);
    mem_.map_region("swmeta", lay.sw_meta_offset, lay.stack_top << 2);
    mem_.map_region("swl2", lay.sw_l2_offset,
                    lay.sw_l1_entries() * lay.sw_l2_bytes_per_entry());
    mem_.map_region("asan", lay.asan_shadow_offset, lay.stack_top >> 3);

    if (cfg_.runtime.init_sw_trie) {
        for (u64 i = 0; i < lay.sw_l1_entries(); ++i) {
            mem_.store_u64(lay.sw_meta_offset + 8 * i,
                           lay.sw_l2_offset +
                               i * lay.sw_l2_bytes_per_entry());
        }
    }

    // Load text (encoded, for fidelity) and data.
    std::vector<u8> text(program.code().size() * 4);
    for (std::size_t i = 0; i < program.code().size(); ++i) {
        const u32 word = riscv::encode(program.code()[i]);
        std::memcpy(text.data() + 4 * i, &word, 4);
    }
    mem_.write_bytes(lay.text_base, text);
    mem_.write_bytes(lay.data_base, program.data());

    heap_ = std::make_unique<mem::HeapAllocator>(lay.heap_base, lay.heap_size);
    locks_ = std::make_unique<mem::LockAllocator>(lay.lock_base,
                                                  lay.lock_entries);
    // The global lock_location permanently holds the global key (CETS).
    mem_.store_u64(locks_->global_lock_addr(), mem::LockAllocator::kGlobalKey);
    // CETS stack-lock allocator state (manipulated inline by function
    // prologues/epilogues): cursor at lock_base+16 grows down from the
    // top of the region; the stack-key counter lives at lock_base+24
    // in a key space disjoint from the heap allocator's (bit 43 set).
    mem_.store_u64(lay.lock_base + 16,
                   lay.lock_base + 8 * (lay.lock_entries - 1));
    mem_.store_u64(lay.lock_base + 24, (u64{1} << 43) + 1);

    // Reset state: sp at the stack top, HWST CSRs preset from the layout
    // (program prologues may overwrite them, as the paper does).
    pc_ = program.entry_addr();
    set_reg(Reg::sp, lay.stack_top - 256);
    csrs_.write(hwst::kCsrSmOffset, lay.shadow_offset);
    csrs_.write(hwst::kCsrLockBase, lay.lock_base);
    csrs_.write(hwst::kCsrLockSize, lay.lock_entries);
    csrs_.write(hwst::kCsrStatus,
                hwst::kStatusSpatialEnable | hwst::kStatusTemporalEnable);

    // Execution-tier resolution (docs/performance.md): HWST_TIER
    // (interp/dbt/jit/auto) overrides cfg.tier; the legacy boolean
    // HWST_DBT overrides cfg.dbt (0/off/false = interpreter). When both
    // are set and disagree, HWST_TIER wins with a warn-once diagnostic.
    // Auto resolves to the fastest tier this host/build can execute.
    {
        const auto env_dbt = common::env_flag("HWST_DBT");
        if (env_dbt) cfg_.dbt = *env_dbt;
        const auto env_tier = common::env_choice(
            "HWST_TIER", {"auto", "interp", "dbt", "jit"});
        if (env_tier) cfg_.tier = static_cast<ExecTier>(*env_tier);
        if (env_tier && env_dbt) {
            const bool conflict =
                (!*env_dbt && cfg_.tier != ExecTier::Interp &&
                 cfg_.tier != ExecTier::Auto) ||
                (*env_dbt && cfg_.tier == ExecTier::Interp);
            if (conflict)
                common::warn_once(
                    "HWST_TIER/HWST_DBT",
                    std::string{"[env] HWST_DBT and HWST_TIER disagree "
                                "(HWST_TIER="} +
                        std::string{tier_name(cfg_.tier)} +
                        " wins over HWST_DBT=" +
                        (*env_dbt ? "1" : "0") + ")\n");
        }
        ExecTier t = cfg_.tier;
        if (t == ExecTier::Auto)
            t = cfg_.dbt ? (jit::jit_supported() ? ExecTier::Jit
                                                 : ExecTier::Dbt)
                         : ExecTier::Interp;
        // An explicitly requested JIT degrades to the dispatcher when
        // the build/host cannot execute emitted code (sanitizers,
        // non-x86-64): same simulated results, still translated.
        if (t == ExecTier::Jit && !jit::jit_supported()) t = ExecTier::Dbt;
        tier_ = t;
    }

    // Translated-block invalidation: any remap drops every superblock —
    // and with them the native code, which bakes SbOp addresses.
    // Registered after the address-space map above (sbcache_ does not
    // exist yet, so those initial map_region calls cost nothing), and
    // deferred while the dispatcher/JIT driver is on-stack.
    mem_.set_invalidation_hook([this] {
        if (!sbcache_) return;
        if (in_dispatch_) {
            sbcache_->request_flush();
        } else {
            sbcache_->flush(dbt_stats_);
            jit_drop_code();
        }
    });
}

Machine::~Machine() = default;

void Machine::jit_drop_code()
{
    if (jit_) jit_->drop_code(jit_stats_);
}

unsigned Machine::dcache_extra(u64 addr)
{
    return dcache_.access(addr) - cfg_.dcache.hit_cycles;
}

u64 Machine::mem_load(u64 addr, unsigned width, bool sign_extend)
{
    cycles_ += dcache_extra(addr);
    u64 value = mem_.load(addr, width, sign_extend);
    // Fill data is the one datapath HWST metadata does not cover (the
    // paper leaves data integrity to ECC); expose it as its own probe.
    if (probe_hook_ && dcache_.last_access_missed())
        value = probe_hook_(Probe::DcacheFillData, instret_, value);
    return value;
}

void Machine::mem_store(u64 addr, unsigned width, u64 value)
{
    cycles_ += dcache_extra(addr);
    // Keybuffer coherence: a key *erasure* (store of 0 into the lock
    // region — what frees do) clears the keybuffer (paper §3.5).
    // Non-zero writes mint fresh keys, which cannot be cached yet.
    const auto& lay = program_.layout();
    if (value == 0 && addr >= lay.lock_base &&
        addr < lay.lock_base + lay.lock_entries * 8) {
        keybuffer_.flush();
    }
    mem_.store(addr, width, value);
}

Machine::ActiveCompression Machine::active_compression()
{
    // Memoized against the CSR file's version counter: the decode +
    // validate work only reruns after a CSR write. A probe hook
    // bypasses the memo entirely — it must observe (and may perturb)
    // every single invocation.
    if (!probe_hook_ && comp_version_ == csrs_.version()) return comp_memo_;
    const u64 bitw = probe(Probe::CompCsrWidths,
                           csrs_.read(hwst::kCsrBitw).value_or(0));
    auto cfg = metadata::CompressionConfig::from_csr(
        static_cast<u32>(bitw) & 0xFFFFFF,
        csrs_.read(hwst::kCsrLockBase).value_or(0));
    bool valid = true;
    try {
        cfg.validate();
    } catch (const common::ConfigError&) {
        valid = false;
    }
    if (!probe_hook_) {
        comp_memo_ = ActiveCompression{cfg, valid};
        comp_version_ = csrs_.version();
    }
    return ActiveCompression{cfg, valid};
}

std::optional<Trap> Machine::spatial_check(Reg ptr_reg, u64 addr,
                                           unsigned width)
{
    if (!csrs_.spatial_enabled()) return std::nullopt;
    const auto& entry = srf_.entry(ptr_reg);
    // No (or cleared) spatial metadata: the access is unchecked, exactly
    // like SoftBound pointers whose provenance the analysis lost.
    if (!entry.valid_lo || entry.value.lo == 0) return std::nullopt;
    const ActiveCompression ac = active_compression();
    if (!ac.valid) {
        csrs_.record_violation(static_cast<u64>(TrapKind::IllegalInstruction),
                               hwst::kCsrBitw);
        return Trap{TrapKind::IllegalInstruction, hwst::kCsrBitw, pc_};
    }
    if (metadata::is_saturated_spatial(entry.value.lo, ac.cfg)) {
        scu_.note_saturated();
        csrs_.record_violation(static_cast<u64>(TrapKind::SpatialViolation),
                               addr);
        return Trap{TrapKind::SpatialViolation, addr, pc_};
    }
    u64 base = 0, bound = 0;
    metadata::decompress_spatial(entry.value.lo, ac.cfg, base, bound);
    if (scu_.check(addr, width, base, bound).pass) return std::nullopt;
    csrs_.record_violation(static_cast<u64>(TrapKind::SpatialViolation), addr);
    return Trap{TrapKind::SpatialViolation, addr, pc_};
}

Trap Machine::step()
{
    if (!running_)
        throw SimError{"Machine::step called after the program stopped"};

    // Unsigned wrap folds the pc < text_base case into one compare;
    // pc % 4 is checked against pc itself, as before (text_base is
    // page-aligned, so off & 3 would be equivalent for our layouts).
    const u64 off = pc_ - text_base_;
    if (off >= code_bytes_ || (pc_ & 3) != 0) {
        running_ = false;
        return Trap{TrapKind::AccessFault, pc_, pc_};
    }
    const Uop& uop = uops_[off >> 2];
    const Instruction& in = uop.in;

    if (trace_) trace_(pc_, in);
    ++instret_;
    ++cycles_;
    if (cfg_.icache_enabled)
        cycles_ += icache_.access(pc_) - cfg_.icache.hit_cycles;
    ++(mix_.*uop.bucket);

    // Load-use hazard: the instruction right after a load stalls one
    // cycle if it consumes the loaded register.
    if (last_load_rd_ != Reg::zero) {
        if ((uop.reads_rs1 && in.rs1 == last_load_rd_) ||
            (uop.reads_rs2 && in.rs2 == last_load_rd_)) {
            cycles_ += cfg_.timing.load_use_stall;
        }
    }
    last_load_rd_ = Reg::zero;

    u64 next_pc = pc_ + 4;
    Trap trap{};
    try {
        trap = exec(in, next_pc);
    } catch (const MemFault& fault) {
        trap = Trap{TrapKind::AccessFault, fault.addr, pc_};
    }

    if (trap.kind != TrapKind::None) {
        running_ = false;
        return trap;
    }
    if (uop.is_load) last_load_rd_ = in.rd;
    srf_effects(in, uop.fmt);
    pc_ = next_pc;
    return Trap{};
}

Trap Machine::exec(const Instruction& in, u64& next_pc)
{
    const u64 rs1 = reg(in.rs1);
    const u64 rs2 = reg(in.rs2);
    const u64 imm = static_cast<u64>(in.imm);
    const auto& t = cfg_.timing;

    switch (in.op) {
    // ---- RV64I arithmetic ------------------------------------------
    case Opcode::LUI: set_reg(in.rd, imm); break;
    case Opcode::AUIPC: set_reg(in.rd, pc_ + imm); break;
    case Opcode::ADDI: set_reg(in.rd, rs1 + imm); break;
    case Opcode::SLTI:
        set_reg(in.rd, static_cast<i64>(rs1) < in.imm ? 1 : 0);
        break;
    case Opcode::SLTIU: set_reg(in.rd, rs1 < imm ? 1 : 0); break;
    case Opcode::XORI: set_reg(in.rd, rs1 ^ imm); break;
    case Opcode::ORI: set_reg(in.rd, rs1 | imm); break;
    case Opcode::ANDI: set_reg(in.rd, rs1 & imm); break;
    case Opcode::SLLI: set_reg(in.rd, rs1 << (imm & 63)); break;
    case Opcode::SRLI: set_reg(in.rd, rs1 >> (imm & 63)); break;
    case Opcode::SRAI:
        set_reg(in.rd, static_cast<u64>(static_cast<i64>(rs1) >> (imm & 63)));
        break;
    case Opcode::ADD: set_reg(in.rd, rs1 + rs2); break;
    case Opcode::SUB: set_reg(in.rd, rs1 - rs2); break;
    case Opcode::SLL: set_reg(in.rd, rs1 << (rs2 & 63)); break;
    case Opcode::SLT:
        set_reg(in.rd,
                static_cast<i64>(rs1) < static_cast<i64>(rs2) ? 1 : 0);
        break;
    case Opcode::SLTU: set_reg(in.rd, rs1 < rs2 ? 1 : 0); break;
    case Opcode::XOR: set_reg(in.rd, rs1 ^ rs2); break;
    case Opcode::SRL: set_reg(in.rd, rs1 >> (rs2 & 63)); break;
    case Opcode::SRA:
        set_reg(in.rd,
                static_cast<u64>(static_cast<i64>(rs1) >> (rs2 & 63)));
        break;
    case Opcode::OR: set_reg(in.rd, rs1 | rs2); break;
    case Opcode::AND: set_reg(in.rd, rs1 & rs2); break;
    case Opcode::ADDIW: set_reg(in.rd, sext32(rs1 + imm)); break;
    case Opcode::SLLIW: set_reg(in.rd, sext32(rs1 << (imm & 31))); break;
    case Opcode::SRLIW:
        set_reg(in.rd, sext32(static_cast<u32>(rs1) >> (imm & 31)));
        break;
    case Opcode::SRAIW:
        set_reg(in.rd,
                sext32(static_cast<u64>(static_cast<i32>(rs1) >>
                                        (imm & 31))));
        break;
    case Opcode::ADDW: set_reg(in.rd, sext32(rs1 + rs2)); break;
    case Opcode::SUBW: set_reg(in.rd, sext32(rs1 - rs2)); break;
    case Opcode::SLLW: set_reg(in.rd, sext32(rs1 << (rs2 & 31))); break;
    case Opcode::SRLW:
        set_reg(in.rd, sext32(static_cast<u32>(rs1) >> (rs2 & 31)));
        break;
    case Opcode::SRAW:
        set_reg(in.rd,
                sext32(static_cast<u64>(static_cast<i32>(rs1) >>
                                        (rs2 & 31))));
        break;

    // ---- RV64M --------------------------------------------------------
    case Opcode::MUL:
        cycles_ += t.mul_extra;
        set_reg(in.rd, rs1 * rs2);
        break;
    case Opcode::MULH:
        cycles_ += t.mul_extra;
        set_reg(in.rd,
                static_cast<u64>((static_cast<__int128>(static_cast<i64>(rs1)) *
                                  static_cast<i64>(rs2)) >>
                                 64));
        break;
    case Opcode::MULHSU:
        cycles_ += t.mul_extra;
        set_reg(in.rd,
                static_cast<u64>((static_cast<__int128>(static_cast<i64>(rs1)) *
                                  static_cast<unsigned __int128>(rs2)) >>
                                 64));
        break;
    case Opcode::MULHU:
        cycles_ += t.mul_extra;
        set_reg(in.rd,
                static_cast<u64>((static_cast<unsigned __int128>(rs1) *
                                  static_cast<unsigned __int128>(rs2)) >>
                                 64));
        break;
    case Opcode::DIV: {
        cycles_ += t.div_extra;
        const i64 a = static_cast<i64>(rs1), b = static_cast<i64>(rs2);
        if (b == 0) set_reg(in.rd, ~u64{0});
        else if (a == std::numeric_limits<i64>::min() && b == -1)
            set_reg(in.rd, rs1);
        else set_reg(in.rd, static_cast<u64>(a / b));
        break;
    }
    case Opcode::DIVU:
        cycles_ += t.div_extra;
        set_reg(in.rd, rs2 == 0 ? ~u64{0} : rs1 / rs2);
        break;
    case Opcode::REM: {
        cycles_ += t.div_extra;
        const i64 a = static_cast<i64>(rs1), b = static_cast<i64>(rs2);
        if (b == 0) set_reg(in.rd, rs1);
        else if (a == std::numeric_limits<i64>::min() && b == -1)
            set_reg(in.rd, 0);
        else set_reg(in.rd, static_cast<u64>(a % b));
        break;
    }
    case Opcode::REMU:
        cycles_ += t.div_extra;
        set_reg(in.rd, rs2 == 0 ? rs1 : rs1 % rs2);
        break;
    case Opcode::MULW:
        cycles_ += t.mul_extra;
        set_reg(in.rd, sext32(rs1 * rs2));
        break;
    case Opcode::DIVW: {
        cycles_ += t.div_extra;
        const i32 a = static_cast<i32>(rs1), b = static_cast<i32>(rs2);
        if (b == 0) set_reg(in.rd, ~u64{0});
        else if (a == std::numeric_limits<i32>::min() && b == -1)
            set_reg(in.rd, sext32(static_cast<u64>(static_cast<u32>(a))));
        else set_reg(in.rd, sext32(static_cast<u64>(static_cast<u32>(a / b))));
        break;
    }
    case Opcode::DIVUW: {
        cycles_ += t.div_extra;
        const u32 a = static_cast<u32>(rs1), b = static_cast<u32>(rs2);
        set_reg(in.rd, b == 0 ? ~u64{0} : sext32(a / b));
        break;
    }
    case Opcode::REMW: {
        cycles_ += t.div_extra;
        const i32 a = static_cast<i32>(rs1), b = static_cast<i32>(rs2);
        if (b == 0) set_reg(in.rd, sext32(static_cast<u64>(static_cast<u32>(a))));
        else if (a == std::numeric_limits<i32>::min() && b == -1)
            set_reg(in.rd, 0);
        else set_reg(in.rd, sext32(static_cast<u64>(static_cast<u32>(a % b))));
        break;
    }
    case Opcode::REMUW: {
        cycles_ += t.div_extra;
        const u32 a = static_cast<u32>(rs1), b = static_cast<u32>(rs2);
        set_reg(in.rd, b == 0 ? sext32(a) : sext32(a % b));
        break;
    }

    // ---- control transfer ------------------------------------------
    case Opcode::JAL:
        set_reg(in.rd, pc_ + 4);
        next_pc = pc_ + imm;
        cycles_ += t.branch_taken_penalty;
        break;
    case Opcode::JALR:
        set_reg(in.rd, pc_ + 4);
        next_pc = (rs1 + imm) & ~u64{1};
        cycles_ += t.branch_taken_penalty;
        break;
    case Opcode::BEQ: case Opcode::BNE: case Opcode::BLT: case Opcode::BGE:
    case Opcode::BLTU: case Opcode::BGEU: {
        bool taken = false;
        switch (in.op) {
        case Opcode::BEQ: taken = rs1 == rs2; break;
        case Opcode::BNE: taken = rs1 != rs2; break;
        case Opcode::BLT:
            taken = static_cast<i64>(rs1) < static_cast<i64>(rs2);
            break;
        case Opcode::BGE:
            taken = static_cast<i64>(rs1) >= static_cast<i64>(rs2);
            break;
        case Opcode::BLTU: taken = rs1 < rs2; break;
        default: taken = rs1 >= rs2; break;
        }
        if (taken) {
            next_pc = pc_ + imm;
            cycles_ += t.branch_taken_penalty;
        }
        break;
    }

    // ---- memory --------------------------------------------------------
    case Opcode::LB: case Opcode::LH: case Opcode::LW: case Opcode::LD:
        set_reg(in.rd, mem_load(rs1 + imm, riscv::mem_width(in.op), true));
        break;
    case Opcode::LBU: case Opcode::LHU: case Opcode::LWU:
        set_reg(in.rd, mem_load(rs1 + imm, riscv::mem_width(in.op), false));
        break;
    case Opcode::SB: case Opcode::SH: case Opcode::SW: case Opcode::SD:
        mem_store(rs1 + imm, riscv::mem_width(in.op), rs2);
        break;

    // ---- system ---------------------------------------------------------
    case Opcode::FENCE: break;
    case Opcode::ECALL: return exec_ecall();
    case Opcode::EBREAK: return Trap{TrapKind::Breakpoint, 0, pc_};
    case Opcode::CSRRW: case Opcode::CSRRS: case Opcode::CSRRC:
    case Opcode::CSRRWI: case Opcode::CSRRSI: case Opcode::CSRRCI: {
        cycles_ += t.csr_extra;
        u64 old = 0;
        if (in.csr == hwst::kCsrCycle) old = cycles_;
        else if (in.csr == hwst::kCsrInstret) old = instret_;
        else if (const auto v = csrs_.read(in.csr)) old = *v;
        else return Trap{TrapKind::IllegalInstruction, in.csr, pc_};

        const bool is_imm = riscv::op_format(in.op) == Format::CsrI;
        const u64 src = is_imm ? imm : rs1;
        u64 next = old;
        switch (in.op) {
        case Opcode::CSRRW: case Opcode::CSRRWI: next = src; break;
        case Opcode::CSRRS: case Opcode::CSRRSI: next = old | src; break;
        default: next = old & ~src; break;
        }
        const bool writes =
            (in.op == Opcode::CSRRW || in.op == Opcode::CSRRWI) ||
            (!is_imm && in.rs1 != Reg::zero) || (is_imm && imm != 0);
        if (writes && in.csr != hwst::kCsrCycle &&
            in.csr != hwst::kCsrInstret) {
            // Graceful degradation: reject csr.bitw / csr.lock.base
            // values COMP/DECOMP could not operate under (zero-width
            // fields, spatial half over 64 bits, misaligned lock base)
            // at the write, instead of computing garbage at every later
            // metadata operation.
            if (in.csr == hwst::kCsrBitw || in.csr == hwst::kCsrLockBase) {
                const u64 bitw = in.csr == hwst::kCsrBitw
                                     ? next
                                     : csrs_.read(hwst::kCsrBitw).value_or(0);
                const u64 lock_base =
                    in.csr == hwst::kCsrLockBase
                        ? next
                        : csrs_.read(hwst::kCsrLockBase).value_or(0);
                auto cc = metadata::CompressionConfig::from_csr(
                    static_cast<u32>(bitw) & 0xFFFFFF, lock_base);
                try {
                    cc.validate();
                } catch (const common::ConfigError&) {
                    return Trap{TrapKind::IllegalInstruction, in.csr, pc_};
                }
            }
            csrs_.write(in.csr, next);
        }
        set_reg(in.rd, old);
        break;
    }

    default:
        return exec_hwst(in);
    }
    return Trap{};
}

Trap Machine::exec_hwst(const Instruction& in)
{
    const u64 rs1 = reg(in.rs1);
    const u64 sm_off = csrs_.sm_offset();

    // COMP/DECOMP cannot operate under perturbed-or-invalid field
    // widths; the op that needed them traps instead of computing
    // garbage.
    const auto bad_widths = [this] {
        csrs_.record_violation(static_cast<u64>(TrapKind::IllegalInstruction),
                               hwst::kCsrBitw);
        return Trap{TrapKind::IllegalInstruction, hwst::kCsrBitw, pc_};
    };

    switch (in.op) {
    case Opcode::BNDRS: {
        const ActiveCompression ac = active_compression();
        if (!ac.valid) return bad_widths();
        srf_.bind_spatial(
            in.rd, probe(Probe::SrfSpatialWrite,
                         metadata::compress_spatial(rs1, reg(in.rs2),
                                                    ac.cfg)));
        break;
    }
    case Opcode::BNDRT: {
        const ActiveCompression ac = active_compression();
        if (!ac.valid) return bad_widths();
        srf_.bind_temporal(
            in.rd, probe(Probe::SrfTemporalWrite,
                         metadata::compress_temporal(rs1, reg(in.rs2),
                                                     ac.cfg)));
        break;
    }

    case Opcode::SBDL: case Opcode::SBDU: {
        const auto& e = srf_.entry(in.rs2);
        const bool upper = in.op == Opcode::SBDU;
        const u64 addr = smac_.map(rs1 + static_cast<u64>(in.imm), sm_off) +
                         (upper ? hwst::Smac::upper_slot_offset() : 0);
        const u64 value =
            probe(Probe::LmsmStore, upper ? (e.valid_hi ? e.value.hi : 0)
                                          : (e.valid_lo ? e.value.lo : 0));
        cycles_ += dcache_extra(addr);
        mem_.store(addr, 8, value);
        break;
    }

    case Opcode::LBDLS: case Opcode::LBDUS: {
        const bool upper = in.op == Opcode::LBDUS;
        const u64 addr = smac_.map(rs1 + static_cast<u64>(in.imm), sm_off) +
                         (upper ? hwst::Smac::upper_slot_offset() : 0);
        const u64 value = probe(Probe::LmsmLoad, mem_load(addr, 8, false));
        if (upper) srf_.set_hi(in.rd, value, value != 0);
        else srf_.set_lo(in.rd, value, value != 0);
        break;
    }

    case Opcode::LBAS: case Opcode::LBND: {
        const ActiveCompression ac = active_compression();
        if (!ac.valid) return bad_widths();
        const u64 addr = smac_.map(rs1, sm_off);
        const u64 lo = probe(Probe::LmsmLoad, mem_load(addr, 8, false));
        if (metadata::is_saturated_spatial(lo, ac.cfg)) {
            scu_.note_saturated();
            csrs_.record_violation(
                static_cast<u64>(TrapKind::SpatialViolation), rs1);
            return Trap{TrapKind::SpatialViolation, rs1, pc_};
        }
        u64 base = 0, bound = 0;
        metadata::decompress_spatial(lo, ac.cfg, base, bound);
        set_reg(in.rd, in.op == Opcode::LBAS ? base : bound);
        break;
    }
    case Opcode::LKEY: case Opcode::LLOC: {
        const ActiveCompression ac = active_compression();
        if (!ac.valid) return bad_widths();
        const u64 addr = smac_.map(rs1, sm_off) +
                         hwst::Smac::upper_slot_offset();
        const u64 hi = probe(Probe::LmsmLoad, mem_load(addr, 8, false));
        if (metadata::is_saturated_temporal(hi, ac.cfg)) {
            tcu_.note_saturated();
            csrs_.record_violation(
                static_cast<u64>(TrapKind::TemporalViolation), rs1);
            return Trap{TrapKind::TemporalViolation, rs1, pc_};
        }
        u64 key = 0, lock = 0;
        metadata::decompress_temporal(hi, ac.cfg, key, lock);
        set_reg(in.rd, in.op == Opcode::LKEY ? key : lock);
        break;
    }

    case Opcode::TCHK: {
        if (!csrs_.temporal_enabled()) break;
        const auto& e = srf_.entry(in.rs1);
        if (!e.valid_hi || e.value.hi == 0) break; // no temporal metadata
        const ActiveCompression ac = active_compression();
        if (!ac.valid) return bad_widths();
        if (metadata::is_saturated_temporal(e.value.hi, ac.cfg)) {
            tcu_.note_saturated();
            csrs_.record_violation(
                static_cast<u64>(TrapKind::TemporalViolation), rs1);
            return Trap{TrapKind::TemporalViolation, rs1, pc_};
        }
        u64 key = 0, lock = 0;
        metadata::decompress_temporal(e.value.hi, ac.cfg, key, lock);
        // The temporal check needs a second memory access (load the key
        // from the lock_location). A keybuffer hit elides it entirely;
        // a miss pays the full D-cache access (paper §3.5).
        u64 mem_key = 0;
        if (!cfg_.keybuffer_enabled) {
            cycles_ += dcache_.access(lock);
            mem_key = mem_.load(lock, 8, false);
        } else if (const auto hit = keybuffer_.lookup(lock)) {
            mem_key = probe(Probe::KeybufferLookup, *hit);
        } else {
            cycles_ += dcache_.access(lock);
            mem_key = mem_.load(lock, 8, false);
            // A fill fault corrupts what the buffer caches; the check in
            // flight still compares the freshly loaded key, so the fault
            // surfaces on a later hit (nonzero detection latency).
            keybuffer_.insert(lock, probe(Probe::KeybufferFill, mem_key));
        }
        if (!tcu_.check(key, mem_key).pass) {
            csrs_.record_violation(
                static_cast<u64>(TrapKind::TemporalViolation), lock);
            return Trap{TrapKind::TemporalViolation, lock, pc_};
        }
        break;
    }

    case Opcode::KBFLUSH:
        keybuffer_.flush();
        break;
    case Opcode::SRFMV:
        srf_.propagate(in.rd, in.rs1);
        break;
    case Opcode::SRFCLR:
        srf_.clear(in.rd);
        break;

    // ---- checked memory (SCU fused, paper Fig. 3) --------------------
    case Opcode::CLB: case Opcode::CLH: case Opcode::CLW: case Opcode::CLD:
    case Opcode::CLBU: case Opcode::CLHU: case Opcode::CLWU: {
        const u64 addr = rs1 + static_cast<u64>(in.imm);
        const unsigned width = riscv::mem_width(in.op);
        if (auto trap = spatial_check(in.rs1, addr, width)) return *trap;
        const bool sign = in.op == Opcode::CLB || in.op == Opcode::CLH ||
                          in.op == Opcode::CLW || in.op == Opcode::CLD;
        set_reg(in.rd, mem_load(addr, width, sign));
        break;
    }
    case Opcode::CSB: case Opcode::CSH: case Opcode::CSW: case Opcode::CSD: {
        const u64 addr = rs1 + static_cast<u64>(in.imm);
        const unsigned width = riscv::mem_width(in.op);
        if (auto trap = spatial_check(in.rs1, addr, width)) return *trap;
        mem_store(addr, width, reg(in.rs2));
        break;
    }

    default:
        return Trap{TrapKind::IllegalInstruction, 0, pc_};
    }
    return Trap{};
}

void Machine::srf_effects(const Instruction& in, Format fmt)
{
    // In-pipeline metadata propagation (paper Fig. 1-b): Hardbound-style
    // rules — a register move or pointer arithmetic carries the source's
    // shadow register to the destination with no instruction overhead.
    const auto any = [this](Reg r) {
        const auto& e = srf_.entry(r);
        return e.valid_lo || e.valid_hi;
    };

    switch (in.op) {
    case Opcode::ADDI:
        srf_.propagate(in.rd, in.rs1);
        break;
    case Opcode::ADD: {
        const bool a = any(in.rs1), b = any(in.rs2);
        if (a && !b) srf_.propagate(in.rd, in.rs1);
        else if (b && !a) srf_.propagate(in.rd, in.rs2);
        else srf_.clear(in.rd);
        break;
    }
    case Opcode::SUB:
        if (any(in.rs1) && !any(in.rs2)) srf_.propagate(in.rd, in.rs1);
        else srf_.clear(in.rd);
        break;

    // HWST metadata ops manage the SRF themselves.
    case Opcode::BNDRS: case Opcode::BNDRT: case Opcode::LBDLS:
    case Opcode::LBDUS: case Opcode::SRFMV: case Opcode::SRFCLR:
    case Opcode::SBDL: case Opcode::SBDU: case Opcode::TCHK:
    case Opcode::KBFLUSH:
        break;

    default:
        // Any other writer invalidates the destination's metadata.
        if (in.rd != Reg::zero) {
            if (fmt != Format::S && fmt != Format::B &&
                in.op != Opcode::ECALL && in.op != Opcode::EBREAK &&
                in.op != Opcode::FENCE) {
                srf_.clear(in.rd);
            }
        }
        break;
    }
}

Trap Machine::exec_ecall()
{
    cycles_ += cfg_.timing.ecall_cost;
    const auto nr = static_cast<Sys>(reg(Reg::a7));
    const u64 a0 = reg(Reg::a0);
    const u64 a1 = reg(Reg::a1);
    const u64 a2 = reg(Reg::a2);
    const auto& rt = cfg_.runtime;
    const auto& lay = program_.layout();

    const auto poison = [&](u64 addr, u64 len, bool flag) {
        const u64 first = addr >> 3;
        const u64 last = (addr + len + 7) >> 3;
        for (u64 g = first; g < last; ++g)
            mem_.store_u8(lay.asan_shadow_offset + g, flag ? 1 : 0);
    };

    switch (nr) {
    case Sys::Exit:
        running_ = false;
        exit_code_ = static_cast<i64>(a0);
        break;

    case Sys::Malloc: {
        const u64 size = a0 == 0 ? 1 : a0;
        if (rt.asan_redzone == 0) {
            set_reg(Reg::a0, heap_->malloc(size));
            break;
        }
        const u64 rz = rt.asan_redzone;
        const u64 raw = heap_->malloc(size + 2 * rz);
        if (raw == 0) {
            set_reg(Reg::a0, 0);
            break;
        }
        poison(raw, rz, true);
        poison(raw + rz + size, rz, true);
        // Unpoison the payload last: a sub-granule tail shares its
        // shadow byte with the right redzone; ASAN resolves the overlap
        // in favour of addressability (our model has 1-byte granule
        // resolution only at 8-byte granularity, like real ASAN's
        // partial-poison corner).
        poison(raw + rz, size, false);
        set_reg(Reg::a0, raw + rz);
        break;
    }

    case Sys::Free: {
        if (rt.asan_redzone == 0) {
            const auto size = heap_->free(a0);
            if (!size) {
                if (rt.libc_free_aborts) {
                    running_ = false;
                    return Trap{TrapKind::LibcAbort, a0, pc_};
                }
                set_reg(Reg::a0, ~u64{0});
            } else {
                set_reg(Reg::a0, *size);
            }
            break;
        }
        const u64 rz = rt.asan_redzone;
        const u64 raw = a0 - rz;
        // Double free: the payload is already poisoned (freed earlier,
        // possibly still sitting in quarantine).
        if (mem_.load_u8(lay.asan_shadow_offset + (a0 >> 3)) != 0) {
            running_ = false;
            return Trap{TrapKind::AsanReport, a0, pc_};
        }
        const auto size = heap_->block_size(raw);
        if (!size) {
            running_ = false;
            return Trap{TrapKind::AsanReport, a0, pc_};
        }
        poison(raw, *size, true);
        if (rt.quarantine) {
            quarantine_.emplace_back(raw, *size);
            quarantine_used_ += *size;
            while (quarantine_used_ > rt.quarantine_bytes &&
                   !quarantine_.empty()) {
                const auto [qa, qs] = quarantine_.front();
                quarantine_.erase(quarantine_.begin());
                quarantine_used_ -= qs;
                heap_->free(qa);
            }
        } else {
            heap_->free(raw);
        }
        set_reg(Reg::a0, *size);
        break;
    }

    case Sys::LockAlloc: {
        const auto grant = locks_->allocate();
        mem_.store_u64(grant.lock_addr, grant.key);
        set_reg(Reg::a0, grant.lock_addr);
        set_reg(Reg::a1, grant.key);
        break;
    }

    case Sys::LockFree:
        // The free wrapper hands us a lock address it recovered from
        // (possibly corrupted) metadata. A bad or double release is
        // simulated-program misbehaviour — abort like glibc would on a
        // bad free(), never crash the host.
        if (!locks_->release(a0)) {
            running_ = false;
            return Trap{TrapKind::LibcAbort, a0, pc_};
        }
        break;

    case Sys::PrintI64:
        output_.push_back(static_cast<i64>(a0));
        break;

    case Sys::ReadCycle:
        set_reg(Reg::a0, cycles_);
        break;

    case Sys::SoftViolation:
        running_ = false;
        return Trap{a0 == 0 ? TrapKind::SoftSpatialViolation
                            : TrapKind::SoftTemporalViolation,
                    a1, pc_};

    case Sys::AsanReport:
        running_ = false;
        return Trap{TrapKind::AsanReport, a1, pc_};

    case Sys::StackGuardFail:
        running_ = false;
        return Trap{TrapKind::StackGuardViolation, a1, pc_};

    case Sys::AsanPoison:
        poison(a0, a1, a2 != 0);
        cycles_ += a1 / 8; // shadow writes the runtime would perform
        break;

    case Sys::BogoScan: {
        // BOGO (ASPLOS'19) scans resident bound-table pages when a
        // pointer is freed and nullifies entries whose base matches, so
        // later dereferences through stale table entries fail the
        // spatial check. Poison value: base 0 / bound 1 (bound 0 means
        // "no metadata").
        auto pages = mem_.resident_pages_in(lay.sw_meta_offset,
                                            lay.stack_top << 2);
        const auto l2_pages = mem_.resident_pages_in(
            lay.sw_l2_offset,
            lay.sw_l1_entries() * lay.sw_l2_bytes_per_entry());
        pages.insert(pages.end(), l2_pages.begin(), l2_pages.end());
        for (const u64 page : pages) {
            for (u64 rec = page; rec + 16 <= page + mem::Memory::kPageSize;
                 rec += 32) {
                if (mem_.load_u64(rec) == a0 &&
                    mem_.load_u64(rec + 8) != 0) {
                    mem_.store_u64(rec, 0);
                    mem_.store_u64(rec + 8, 1);
                }
            }
        }
        cycles_ += 64 * pages.size(); // modeled page-scan cost
        break;
    }

    default:
        // An unknown ecall number is simulated-program behaviour (a
        // stray jump could land on any ecall with any a7), not a host
        // error: deliver it as a trap so harnesses classify it.
        running_ = false;
        return Trap{TrapKind::IllegalInstruction, reg(Reg::a7), pc_};
    }
    return Trap{};
}

RunResult Machine::run()
{
    // run_cancellable never cancels with a null callback.
    return *run_cancellable({});
}

std::optional<RunResult> Machine::run_cancellable(
    const std::function<bool()>& cancel, u64 stride)
{
    RunResult result;
    // Countdown poll: one decrement per step instead of re-deriving the
    // next poll point from instret_. Poll positions are unchanged
    // (every `stride` loop iterations), and an uncancelled run is
    // bit-identical either way.
    if (stride == 0) stride = 1;
    if (tier_ != ExecTier::Interp && !interpreter_forced() && !trace_ &&
        !probe_hook_) {
        // Translated tiers (sim/dispatch.cpp, sim/jit/). Cancellation
        // polls move to block boundaries — every >= stride retired
        // instructions — which cannot change simulated results (a poll
        // that does not fire has no architectural effect).
        if (!sbcache_) sbcache_ = std::make_unique<SuperblockCache>();
        in_dispatch_ = true;
        const bool finished =
            tier_ == ExecTier::Jit
                ? jit::run_jit(*this, cancel ? &cancel : nullptr, stride,
                               result.trap)
                : run_superblocks(*this, cancel ? &cancel : nullptr,
                                  stride, result.trap);
        in_dispatch_ = false;
        if (!finished) return std::nullopt;
        // Test-only divergence seed for the DBT sentinel: nudge the
        // translated-tier cycle count so a cross-check against the
        // interpreter has something to catch. Never set outside the
        // sentinel tests.
        if (common::env_flag("HWST_DBT_FAULT").value_or(false)) ++cycles_;
    } else {
        // Interpreter tier: per-instruction hooks installed (or the
        // ladder pinned to interp outright, or a sentinel worker
        // forcing the reference tier).
        if (tier_ != ExecTier::Interp && running_) {
            ++dbt_stats_.fallback_runs;
            if (interpreter_forced()) ++dbt_stats_.sentinel_degraded;
        }
        u64 countdown = stride;
        while (running_) {
            if (cancel && --countdown == 0) {
                if (cancel()) return std::nullopt;
                countdown = stride;
            }
            if (instret_ >= cfg_.fuel) {
                result.trap = Trap{TrapKind::FuelExhausted, 0, pc_};
                running_ = false;
                break;
            }
            const Trap trap = step();
            if (trap.kind != TrapKind::None) {
                result.trap = trap;
                break;
            }
        }
    }
    result.exit_code = exit_code_;
    result.cycles = cycles_;
    result.instret = instret_;
    result.output = output_;
    result.dcache = dcache_.stats();
    result.icache = icache_.stats();
    result.keybuffer = keybuffer_.stats();
    result.scu_checks = scu_.checks();
    result.tcu_checks = tcu_.checks();
    result.scu_saturated = scu_.saturated();
    result.tcu_saturated = tcu_.saturated();
    result.smac_translations = smac_.translations();
    result.mix = mix_;
    return result;
}

namespace {
std::atomic<bool> g_force_interpreter{false};
} // namespace

void force_interpreter(bool on)
{
    g_force_interpreter.store(on, std::memory_order_relaxed);
}

bool interpreter_forced()
{
    return g_force_interpreter.load(std::memory_order_relaxed);
}

} // namespace hwst::sim
