// Threaded superblock dispatcher (dispatch.hpp). Executor bodies are
// GCC computed-goto labels, one per SbKind, pre-bound into each SbOp at
// translation: retiring an instruction is "execute body, ++op, jump",
// with no switch re-entry and no per-instruction counter updates —
// instret/cycles/InstrMix land in one batched update per block, in a
// way that is bit-identical to the step() interpreter:
//
//  * Block enders apply the batch BEFORE executing (so csr reads of
//    cycle/instret and the ecall proxy kernel observe fully-retired
//    counters, exactly like step()'s "count, then execute" order).
//  * A trap at op i applies the per-op prefix instead: i+1
//    instructions retired (the trapping one counts), cum_static
//    cycles, and the mix buckets of ops[0..i].
//  * Dynamic cycle costs (dcache extras, branch-taken penalties,
//    csr/ecall costs, keybuffer-miss loads) are added eagerly by the
//    bodies, exactly where exec() adds them.
//
// On a non-GNU compiler the tier degrades to the per-instruction
// interpreter loop with the same poll/fuel semantics (correct, just
// not fast).
#include "sim/dispatch.hpp"

#include "sim/machine.hpp"
#include "sim/superblock.hpp"

namespace hwst::sim {

using common::i32;
using hwst::Trap;
using hwst::TrapKind;
using mem::MemFault;
using riscv::Reg;

#if defined(__GNUC__) || defined(__clang__)
#define HWST_THREADED_DISPATCH 1
#else
#define HWST_THREADED_DISPATCH 0
#endif

namespace {
u64 sext32(u64 v)
{
    return static_cast<u64>(static_cast<i64>(static_cast<i32>(v)));
}
} // namespace

#if HWST_THREADED_DISPATCH

bool run_superblocks(Machine& m, const std::function<bool()>* cancel,
                     u64 stride, Trap& out)
{
    // Label table, in SbKind order (the X-macro guarantees the match;
    // a missing body is a compile error).
    static const void* const kLabels[kNumSbKinds] = {
#define HWST_SB_LABEL(name) &&L_##name,
        HWST_SB_KIND_LIST(HWST_SB_LABEL)
#undef HWST_SB_LABEL
    };

    SuperblockCache& sc = *m.sbcache_;
    DbtStats& st = m.dbt_stats_;
    const TranslateEnv env{
        m.uops_.data(),
        static_cast<u32>(m.uops_.size()),
        m.text_base_,
        m.cfg_.icache.line_bytes,
        m.cfg_.icache_enabled,
        m.cfg_.timing.load_use_stall,
        m.cfg_.timing.mul_extra,
        m.cfg_.timing.div_extra,
        m.cfg_.timing.branch_taken_penalty,
        kLabels,
    };
    const u64 text_base = m.text_base_;
    const u64 code_bytes = m.code_bytes_;
    const u64 fuel = m.cfg_.fuel;
    const unsigned icache_hit = m.cfg_.icache.hit_cycles;
    const unsigned dcache_hit = m.cfg_.dcache.hit_cycles;
    const unsigned lu_stall = m.cfg_.timing.load_use_stall;
    const unsigned taken_pen = m.cfg_.timing.branch_taken_penalty;
    const auto& lay = m.program_.layout();
    const u64 lock_base = lay.lock_base;
    const u64 lock_bytes = lay.lock_entries * 8;

    u64 countdown = stride;

    Superblock* sb = nullptr;
    SbOp* op = nullptr;
    bool batch_applied = false;
    Trap tr{};

    // Trap-at-op-i accounting: the trapping instruction is retired
    // (step() counts before exec), its predecessors fully so.
    const auto apply_prefix = [&] {
        m.instret_ += op->block_pos + 1u;
        m.cycles_ += op->cum_static;
        m.icache_.count_repeat_hits(op->cum_repeat);
        for (u32 j = sb->first_uop; j <= op->uop_idx; ++j)
            ++(m.mix_.*(m.uops_[j].bucket));
    };

// Per-op prologue: fetch timing + the op-0 dynamic load-use hazard.
// Repeat-hit fetches are NOT counted here: they are zero-cycle and
// stat-only, so they batch into APPLY_BATCH / apply_prefix.
#define PRO()                                                             \
    do {                                                                  \
        const u8 fl_ = op->flags;                                         \
        if (fl_ & kOpFetchFull)                                           \
            m.cycles_ += m.icache_.access(op->pc) - icache_hit;           \
        if (fl_ & kOpHazDyn) {                                            \
            const u8 llr_ = static_cast<u8>(m.last_load_rd_);             \
            if (llr_ != 0 &&                                              \
                (((fl_ & kOpReadsRs1) && op->rs1 == llr_) ||              \
                 ((fl_ & kOpReadsRs2) && op->rs2 == llr_)))               \
                m.cycles_ += lu_stall;                                    \
        }                                                                 \
    } while (0)

#define NEXT()                                                            \
    do {                                                                  \
        ++op;                                                             \
        goto*(op->label);                                                 \
    } while (0)

#define RS1 (m.regs_[op->rs1])
#define RS2 (m.regs_[op->rs2])
#define RD_REG (static_cast<Reg>(op->rd))
#define IMM (static_cast<u64>(op->imm))

// Plain writer: translation folded rd==zero variants of these kinds to
// Nop, so the write is unconditional and the srf clear matches
// srf_effects' guarded default case.
#define WR_CLEAR(v)                                                       \
    do {                                                                  \
        m.regs_[op->rd] = (v);                                            \
        m.srf_.clear(RD_REG);                                             \
    } while (0)

// Ender prologue: retire the whole block before the ender executes.
#define APPLY_BATCH()                                                     \
    do {                                                                  \
        m.instret_ += sb->len;                                            \
        m.cycles_ += sb->static_cycles;                                   \
        m.icache_.count_repeat_hits(sb->repeat_fetches);                  \
        for (const auto& d_ : sb->mix_delta)                              \
            m.mix_.*d_.first += d_.second;                                \
        m.last_load_rd_ = sb->exit_load_rd;                               \
        countdown = countdown > sb->len ? countdown - sb->len : 0;        \
        batch_applied = true;                                             \
    } while (0)

// Transfer to the block at m.pc_ through a cached edge, staying inside
// the dispatch soup. Bails to the outer loop for polls, untranslatable
// targets (out of text / misaligned -> the outer loop raises the same
// AccessFault step() would) and blocks that could cross the fuel limit.
#define CHAIN(edge)                                                       \
    do {                                                                  \
        if (cancel && countdown == 0) goto leave_soup;                    \
        Superblock* nx_ = (edge);                                         \
        if (!nx_) {                                                       \
            const u64 noff_ = m.pc_ - text_base;                          \
            if (noff_ >= code_bytes || (m.pc_ & 3) != 0) goto leave_soup; \
            nx_ = sc.get_or_translate(env, m.pc_, st);                    \
            (edge) = nx_;                                                 \
        }                                                                 \
        if (m.instret_ + nx_->len > fuel) goto leave_soup;                \
        ++st.chained;                                                     \
        sb = nx_;                                                         \
        goto enter_block;                                                 \
    } while (0)

#define LOAD_BODY(w, sx)                                                  \
    do {                                                                  \
        PRO();                                                            \
        const u64 a_ = RS1 + IMM;                                         \
        m.cycles_ += m.dcache_.access(a_) - dcache_hit;                   \
        const u64 v_ = m.mem_.load(a_, (w), (sx));                        \
        if (op->rd) {                                                     \
            m.regs_[op->rd] = v_;                                         \
            m.srf_.clear(RD_REG);                                         \
        }                                                                 \
    } while (0)

// Store body = mem_store inlined: dcache extra, keybuffer coherence
// flush on key erasure (store of 0 into the lock region), then the
// memory write. Same order, so a faulting store has identical partial
// effects.
#define STORE_BODY(w)                                                     \
    do {                                                                  \
        PRO();                                                            \
        const u64 a_ = RS1 + IMM;                                         \
        m.cycles_ += m.dcache_.access(a_) - dcache_hit;                   \
        const u64 v_ = RS2;                                               \
        if (v_ == 0 && a_ - lock_base < lock_bytes) m.keybuffer_.flush(); \
        m.mem_.store(a_, (w), v_);                                        \
    } while (0)

// Inline mirror of Machine::spatial_check (machine.cpp): same gate
// order, same violation bookkeeping, same trap values. The
// active_compression memo is read directly — the probe-hook bypass
// cannot apply because a probe hook forces the interpreter tier.
#define SPATIAL_CHECK(addr)                                               \
    do {                                                                  \
        if (!m.csrs_.spatial_enabled()) break;                            \
        const auto& se_ = m.srf_.entry(static_cast<Reg>(op->rs1));        \
        if (!se_.valid_lo || se_.value.lo == 0) break;                    \
        const auto ac_ = m.comp_version_ == m.csrs_.version()             \
                             ? m.comp_memo_                               \
                             : m.active_compression();                    \
        if (!ac_.valid) {                                                 \
            m.csrs_.record_violation(                                     \
                static_cast<u64>(TrapKind::IllegalInstruction),           \
                hwst::kCsrBitw);                                          \
            tr = Trap{TrapKind::IllegalInstruction, hwst::kCsrBitw,       \
                      op->pc};                                            \
            goto trap_at_op;                                              \
        }                                                                 \
        if (metadata::is_saturated_spatial(se_.value.lo, ac_.cfg)) {      \
            m.scu_.note_saturated();                                      \
            m.csrs_.record_violation(                                     \
                static_cast<u64>(TrapKind::SpatialViolation), (addr));    \
            tr = Trap{TrapKind::SpatialViolation, (addr), op->pc};        \
            goto trap_at_op;                                              \
        }                                                                 \
        u64 base_ = 0, bound_ = 0;                                        \
        metadata::decompress_spatial(se_.value.lo, ac_.cfg, base_,        \
                                     bound_);                             \
        if (m.scu_.check((addr), op->width, base_, bound_).pass) break;   \
        m.csrs_.record_violation(                                         \
            static_cast<u64>(TrapKind::SpatialViolation), (addr));        \
        tr = Trap{TrapKind::SpatialViolation, (addr), op->pc};            \
        goto trap_at_op;                                                  \
    } while (0)

#define BRANCH_BODY(cond)                                                 \
    do {                                                                  \
        PRO();                                                            \
        APPLY_BATCH();                                                    \
        if (cond) {                                                       \
            m.cycles_ += taken_pen;                                       \
            m.pc_ = IMM;                                                  \
            CHAIN(op->edge_taken);                                        \
        } else {                                                          \
            m.pc_ = op->pc + 4;                                           \
            CHAIN(op->edge_fall);                                         \
        }                                                                 \
    } while (0)

    while (m.running_) {
        sc.flush_if_pending(st);
        if (cancel && countdown == 0) {
            if ((*cancel)()) return false;
            countdown = stride;
        }
        if (m.instret_ >= fuel) {
            out = Trap{TrapKind::FuelExhausted, 0, m.pc_};
            m.running_ = false;
            return true;
        }
        {
            const u64 off = m.pc_ - text_base;
            if (off >= code_bytes || (m.pc_ & 3) != 0) {
                out = Trap{TrapKind::AccessFault, m.pc_, m.pc_};
                m.running_ = false;
                return true;
            }
        }
        sb = sc.get_or_translate(env, m.pc_, st);
        if (m.instret_ + sb->len > fuel) {
            // Fuel can run out inside this block: retire the tail one
            // instruction at a time, with the interpreter's own
            // check-then-step ordering. Bounded by fuel - instret_ <
            // block length.
            while (m.running_) {
                if (m.instret_ >= fuel) {
                    out = Trap{TrapKind::FuelExhausted, 0, m.pc_};
                    m.running_ = false;
                    return true;
                }
                const Trap t = m.step();
                if (t.kind != TrapKind::None) {
                    out = t;
                    return true;
                }
            }
            return true;
        }

        try {
        enter_block:
            ++st.block_execs;
            batch_applied = false;
            op = sb->ops.data();
            goto*(op->label);

        L_Nop:
            PRO();
            NEXT();
        L_Const:
            PRO();
            WR_CLEAR(op->aux);
            NEXT();
        L_Addi:
            PRO();
            // rd==zero folded to Nop; propagate matches srf_effects'
            // ADDI pointer-arithmetic rule.
            m.regs_[op->rd] = RS1 + IMM;
            m.srf_.propagate(RD_REG, static_cast<Reg>(op->rs1));
            NEXT();
        L_Slti:
            PRO();
            WR_CLEAR(static_cast<i64>(RS1) < op->imm ? 1 : 0);
            NEXT();
        L_Sltiu:
            PRO();
            WR_CLEAR(RS1 < IMM ? 1 : 0);
            NEXT();
        L_Xori:
            PRO();
            WR_CLEAR(RS1 ^ IMM);
            NEXT();
        L_Ori:
            PRO();
            WR_CLEAR(RS1 | IMM);
            NEXT();
        L_Andi:
            PRO();
            WR_CLEAR(RS1 & IMM);
            NEXT();
        L_Slli:
            PRO();
            WR_CLEAR(RS1 << (op->imm & 63));
            NEXT();
        L_Srli:
            PRO();
            WR_CLEAR(RS1 >> (op->imm & 63));
            NEXT();
        L_Srai:
            PRO();
            WR_CLEAR(static_cast<u64>(static_cast<i64>(RS1) >>
                                      (op->imm & 63)));
            NEXT();
        L_Addiw:
            PRO();
            WR_CLEAR(sext32(RS1 + IMM));
            NEXT();
        L_Slliw:
            PRO();
            WR_CLEAR(sext32(RS1 << (op->imm & 31)));
            NEXT();
        L_Srliw:
            PRO();
            WR_CLEAR(sext32(static_cast<u32>(RS1) >> (op->imm & 31)));
            NEXT();
        L_Sraiw:
            PRO();
            WR_CLEAR(sext32(static_cast<u64>(static_cast<i32>(RS1) >>
                                             (op->imm & 31))));
            NEXT();
        L_Add:
            PRO();
            {
                // Full srf_effects ADD rule, including the unguarded
                // clear on the both-or-neither branch (it mutates SRF
                // entry 0 when rd is x0 — see srf_effects).
                const u64 v = RS1 + RS2;
                if (op->rd) m.regs_[op->rd] = v;
                const auto& ea = m.srf_.entry(static_cast<Reg>(op->rs1));
                const auto& eb = m.srf_.entry(static_cast<Reg>(op->rs2));
                const bool a = ea.valid_lo || ea.valid_hi;
                const bool b = eb.valid_lo || eb.valid_hi;
                if (a && !b)
                    m.srf_.propagate(RD_REG, static_cast<Reg>(op->rs1));
                else if (b && !a)
                    m.srf_.propagate(RD_REG, static_cast<Reg>(op->rs2));
                else
                    m.srf_.clear(RD_REG);
            }
            NEXT();
        L_Sub:
            PRO();
            {
                const u64 v = RS1 - RS2;
                if (op->rd) m.regs_[op->rd] = v;
                const auto& ea = m.srf_.entry(static_cast<Reg>(op->rs1));
                const auto& eb = m.srf_.entry(static_cast<Reg>(op->rs2));
                if ((ea.valid_lo || ea.valid_hi) &&
                    !(eb.valid_lo || eb.valid_hi))
                    m.srf_.propagate(RD_REG, static_cast<Reg>(op->rs1));
                else
                    m.srf_.clear(RD_REG);
            }
            NEXT();
        L_Sll:
            PRO();
            WR_CLEAR(RS1 << (RS2 & 63));
            NEXT();
        L_Slt:
            PRO();
            WR_CLEAR(static_cast<i64>(RS1) < static_cast<i64>(RS2) ? 1 : 0);
            NEXT();
        L_Sltu:
            PRO();
            WR_CLEAR(RS1 < RS2 ? 1 : 0);
            NEXT();
        L_Xor:
            PRO();
            WR_CLEAR(RS1 ^ RS2);
            NEXT();
        L_Srl:
            PRO();
            WR_CLEAR(RS1 >> (RS2 & 63));
            NEXT();
        L_Sra:
            PRO();
            WR_CLEAR(static_cast<u64>(static_cast<i64>(RS1) >> (RS2 & 63)));
            NEXT();
        L_Or:
            PRO();
            WR_CLEAR(RS1 | RS2);
            NEXT();
        L_And:
            PRO();
            WR_CLEAR(RS1 & RS2);
            NEXT();
        L_Addw:
            PRO();
            WR_CLEAR(sext32(RS1 + RS2));
            NEXT();
        L_Subw:
            PRO();
            WR_CLEAR(sext32(RS1 - RS2));
            NEXT();
        L_Sllw:
            PRO();
            WR_CLEAR(sext32(RS1 << (RS2 & 31)));
            NEXT();
        L_Srlw:
            PRO();
            WR_CLEAR(sext32(static_cast<u32>(RS1) >> (RS2 & 31)));
            NEXT();
        L_Sraw:
            PRO();
            WR_CLEAR(sext32(static_cast<u64>(static_cast<i32>(RS1) >>
                                             (RS2 & 31))));
            NEXT();
        L_Mul:
            PRO();
            WR_CLEAR(RS1* RS2);
            NEXT();
        L_Mulh:
            PRO();
            WR_CLEAR(static_cast<u64>(
                (static_cast<__int128>(static_cast<i64>(RS1)) *
                 static_cast<i64>(RS2)) >>
                64));
            NEXT();
        L_Mulhsu:
            PRO();
            WR_CLEAR(static_cast<u64>(
                (static_cast<__int128>(static_cast<i64>(RS1)) *
                 static_cast<unsigned __int128>(RS2)) >>
                64));
            NEXT();
        L_Mulhu:
            PRO();
            WR_CLEAR(static_cast<u64>(
                (static_cast<unsigned __int128>(RS1) *
                 static_cast<unsigned __int128>(RS2)) >>
                64));
            NEXT();
        L_Div:
            PRO();
            {
                const i64 a = static_cast<i64>(RS1), b = static_cast<i64>(RS2);
                if (b == 0) WR_CLEAR(~u64{0});
                else if (a == std::numeric_limits<i64>::min() && b == -1)
                    WR_CLEAR(RS1);
                else WR_CLEAR(static_cast<u64>(a / b));
            }
            NEXT();
        L_Divu:
            PRO();
            WR_CLEAR(RS2 == 0 ? ~u64{0} : RS1 / RS2);
            NEXT();
        L_Rem:
            PRO();
            {
                const i64 a = static_cast<i64>(RS1), b = static_cast<i64>(RS2);
                if (b == 0) WR_CLEAR(RS1);
                else if (a == std::numeric_limits<i64>::min() && b == -1)
                    WR_CLEAR(0);
                else WR_CLEAR(static_cast<u64>(a % b));
            }
            NEXT();
        L_Remu:
            PRO();
            WR_CLEAR(RS2 == 0 ? RS1 : RS1 % RS2);
            NEXT();
        L_Mulw:
            PRO();
            WR_CLEAR(sext32(RS1* RS2));
            NEXT();
        L_Divw:
            PRO();
            {
                const i32 a = static_cast<i32>(RS1), b = static_cast<i32>(RS2);
                if (b == 0) WR_CLEAR(~u64{0});
                else if (a == std::numeric_limits<i32>::min() && b == -1)
                    WR_CLEAR(sext32(static_cast<u64>(static_cast<u32>(a))));
                else
                    WR_CLEAR(sext32(static_cast<u64>(
                        static_cast<u32>(a / b))));
            }
            NEXT();
        L_Divuw:
            PRO();
            {
                const u32 a = static_cast<u32>(RS1), b = static_cast<u32>(RS2);
                WR_CLEAR(b == 0 ? ~u64{0} : sext32(a / b));
            }
            NEXT();
        L_Remw:
            PRO();
            {
                const i32 a = static_cast<i32>(RS1), b = static_cast<i32>(RS2);
                if (b == 0)
                    WR_CLEAR(sext32(static_cast<u64>(static_cast<u32>(a))));
                else if (a == std::numeric_limits<i32>::min() && b == -1)
                    WR_CLEAR(0);
                else
                    WR_CLEAR(sext32(static_cast<u64>(
                        static_cast<u32>(a % b))));
            }
            NEXT();
        L_Remuw:
            PRO();
            {
                const u32 a = static_cast<u32>(RS1), b = static_cast<u32>(RS2);
                WR_CLEAR(b == 0 ? sext32(a) : sext32(a % b));
            }
            NEXT();
        L_Lb:
            LOAD_BODY(1, true);
            NEXT();
        L_Lh:
            LOAD_BODY(2, true);
            NEXT();
        L_Lw:
            LOAD_BODY(4, true);
            NEXT();
        L_Ld:
            LOAD_BODY(8, true);
            NEXT();
        L_Lbu:
            LOAD_BODY(1, false);
            NEXT();
        L_Lhu:
            LOAD_BODY(2, false);
            NEXT();
        L_Lwu:
            LOAD_BODY(4, false);
            NEXT();
        L_Sb:
            STORE_BODY(1);
            NEXT();
        L_Sh:
            STORE_BODY(2);
            NEXT();
        L_Sw:
            STORE_BODY(4);
            NEXT();
        L_Sd:
            STORE_BODY(8);
            NEXT();
        L_CheckedLoad:
            PRO();
            {
                m.pc_ = op->pc; // traps leave pc_ at the faulting pc
                const u64 a = RS1 + IMM;
                SPATIAL_CHECK(a);
                m.cycles_ += m.dcache_.access(a) - dcache_hit;
                const u64 v =
                    m.mem_.load(a, op->width,
                                (op->flags & kOpSignedLoad) != 0);
                if (op->rd) {
                    m.regs_[op->rd] = v;
                    m.srf_.clear(RD_REG);
                }
            }
            NEXT();
        L_CheckedStore:
            PRO();
            {
                m.pc_ = op->pc;
                const u64 a = RS1 + IMM;
                SPATIAL_CHECK(a);
                m.cycles_ += m.dcache_.access(a) - dcache_hit;
                const u64 v = RS2;
                if (v == 0 && a - lock_base < lock_bytes)
                    m.keybuffer_.flush();
                m.mem_.store(a, op->width, v);
            }
            NEXT();
        L_Hwst:
            PRO();
            {
                // Generic path for the HWST metadata ops (binds, shadow
                // moves, tchk, ...): same executor + srf rule the
                // interpreter uses, minus its per-step bookkeeping.
                const Uop& u = m.uops_[op->uop_idx];
                m.pc_ = op->pc;
                const Trap t = m.exec_hwst(u.in);
                if (t.kind != TrapKind::None) {
                    tr = t;
                    goto trap_at_op;
                }
                m.srf_effects(u.in, u.fmt);
            }
            NEXT();
        L_SbdStore:
            PRO();
            {
                // sbdl/sbdu inlined from exec_hwst: store one SRF half
                // into the LMSM slot. Same effect order (SMAC count,
                // D-cache extra, memory write) so a faulting store has
                // identical partial effects; srf_effects is a no-op.
                m.pc_ = op->pc;
                const auto& e = m.srf_.entry(static_cast<Reg>(op->rs2));
                const u64 a =
                    m.smac_.map(RS1 + IMM, m.csrs_.sm_offset()) + op->aux;
                const u64 v = op->aux ? (e.valid_hi ? e.value.hi : 0)
                                      : (e.valid_lo ? e.value.lo : 0);
                m.cycles_ += m.dcache_.access(a) - dcache_hit;
                m.mem_.store(a, 8, v);
            }
            NEXT();
        L_LbdLoad:
            PRO();
            {
                // lbdls/lbdus inlined: load one LMSM slot into the SRF
                // half; a zero slot marks the half invalid.
                m.pc_ = op->pc;
                const u64 a =
                    m.smac_.map(RS1 + IMM, m.csrs_.sm_offset()) + op->aux;
                m.cycles_ += m.dcache_.access(a) - dcache_hit;
                const u64 v = m.mem_.load(a, 8, false);
                if (op->aux)
                    m.srf_.set_hi(RD_REG, v, v != 0);
                else
                    m.srf_.set_lo(RD_REG, v, v != 0);
            }
            NEXT();
        L_Tchk:
            PRO();
            {
                // tchk inlined from exec_hwst, including the
                // active_compression memo check (the probe-hook bypass
                // cannot apply: a probe hook forces the interpreter
                // tier). The keybuffer-miss D-cache access is a full
                // access — a second memory operation — not an extra,
                // exactly as exec_hwst charges it.
                m.pc_ = op->pc;
                if (!m.csrs_.temporal_enabled()) NEXT();
                const auto& e = m.srf_.entry(static_cast<Reg>(op->rs1));
                if (!e.valid_hi || e.value.hi == 0) NEXT();
                const auto ac = m.comp_version_ == m.csrs_.version()
                                    ? m.comp_memo_
                                    : m.active_compression();
                if (!ac.valid) {
                    m.csrs_.record_violation(
                        static_cast<u64>(TrapKind::IllegalInstruction),
                        hwst::kCsrBitw);
                    tr = Trap{TrapKind::IllegalInstruction, hwst::kCsrBitw,
                              op->pc};
                    goto trap_at_op;
                }
                if (metadata::is_saturated_temporal(e.value.hi, ac.cfg)) {
                    m.tcu_.note_saturated();
                    m.csrs_.record_violation(
                        static_cast<u64>(TrapKind::TemporalViolation), RS1);
                    tr = Trap{TrapKind::TemporalViolation, RS1, op->pc};
                    goto trap_at_op;
                }
                u64 key = 0, lock = 0;
                metadata::decompress_temporal(e.value.hi, ac.cfg, key,
                                              lock);
                u64 mem_key = 0;
                if (!m.cfg_.keybuffer_enabled) {
                    m.cycles_ += m.dcache_.access(lock);
                    mem_key = m.mem_.load(lock, 8, false);
                } else if (const auto hit = m.keybuffer_.lookup(lock)) {
                    mem_key = *hit;
                } else {
                    m.cycles_ += m.dcache_.access(lock);
                    mem_key = m.mem_.load(lock, 8, false);
                    m.keybuffer_.insert(lock, mem_key);
                }
                if (!m.tcu_.check(key, mem_key).pass) {
                    m.csrs_.record_violation(
                        static_cast<u64>(TrapKind::TemporalViolation),
                        lock);
                    tr = Trap{TrapKind::TemporalViolation, lock, op->pc};
                    goto trap_at_op;
                }
            }
            NEXT();
        L_Bndr:
            PRO();
            {
                // bndrs/bndrt inlined from exec_hwst: compress one
                // metadata half (rs1 = base/key, rs2 = bound/lock) into
                // the SRF; srf_effects is a no-op for both.
                m.pc_ = op->pc;
                const auto ac = m.comp_version_ == m.csrs_.version()
                                    ? m.comp_memo_
                                    : m.active_compression();
                if (!ac.valid) {
                    m.csrs_.record_violation(
                        static_cast<u64>(TrapKind::IllegalInstruction),
                        hwst::kCsrBitw);
                    tr = Trap{TrapKind::IllegalInstruction, hwst::kCsrBitw,
                              op->pc};
                    goto trap_at_op;
                }
                if (op->aux)
                    m.srf_.bind_temporal(
                        RD_REG, metadata::compress_temporal(RS1, RS2,
                                                            ac.cfg));
                else
                    m.srf_.bind_spatial(
                        RD_REG, metadata::compress_spatial(RS1, RS2,
                                                           ac.cfg));
            }
            NEXT();
        L_Beq:
            BRANCH_BODY(RS1 == RS2);
        L_Bne:
            BRANCH_BODY(RS1 != RS2);
        L_Blt:
            BRANCH_BODY(static_cast<i64>(RS1) < static_cast<i64>(RS2));
        L_Bge:
            BRANCH_BODY(static_cast<i64>(RS1) >= static_cast<i64>(RS2));
        L_Bltu:
            BRANCH_BODY(RS1 < RS2);
        L_Bgeu:
            BRANCH_BODY(RS1 >= RS2);
        L_Jal:
            PRO();
            APPLY_BATCH();
            // Taken penalty is folded into static_cycles (always paid).
            if (op->rd) {
                m.regs_[op->rd] = op->aux;
                m.srf_.clear(RD_REG);
            }
            m.pc_ = IMM;
            CHAIN(op->edge_taken);
        L_Jalr:
            PRO();
            APPLY_BATCH();
            {
                // rs1 is read before the link write (rd may alias rs1).
                const u64 target = (RS1 + IMM) & ~u64{1};
                if (op->rd) {
                    m.regs_[op->rd] = op->aux;
                    m.srf_.clear(RD_REG);
                }
                m.pc_ = target;
                // 2-way inline cache on the dynamic target (shared
                // structure with the JIT tier — docs/performance.md).
                int w = op->jalr.lookup(target);
                if (w >= 0) {
                    ++st.jalr_hits;
                } else {
                    ++st.jalr_misses;
                    w = static_cast<int>(op->jalr.insert(target));
                }
                CHAIN(op->jalr.way[w]);
            }
        L_InterpOne:
            PRO();
            APPLY_BATCH();
            {
                // csr/ecall/ebreak: run through the generic exec() with
                // the batch already applied, so csr cycle/instret reads
                // and the proxy kernel see exactly what step() shows
                // them. Always returns to the dispatcher (no chaining
                // past a proxy-kernel call).
                const Uop& u = m.uops_[op->uop_idx];
                m.pc_ = op->pc;
                u64 next_pc = op->pc + 4;
                const Trap t = m.exec(u.in, next_pc);
                if (t.kind != TrapKind::None) {
                    m.running_ = false;
                    out = t;
                    return true;
                }
                m.srf_effects(u.in, u.fmt);
                m.pc_ = next_pc;
            }
            goto leave_soup;
        L_EndFall:
            // Pseudo-op at the length cap / end of text: no fetch, no
            // retirement of its own — just the batched exit.
            APPLY_BATCH();
            m.pc_ = op->pc;
            CHAIN(op->edge_fall);

        trap_at_op:
            if (!batch_applied) apply_prefix();
            m.running_ = false;
            out = tr;
            return true;

        leave_soup:;
        } catch (const MemFault& fault) {
            // Loads/stores fault through the inlined Memory access; the
            // interpreter converts them at the same point with the same
            // accounting (the faulting instruction is retired).
            if (!batch_applied) apply_prefix();
            out = Trap{TrapKind::AccessFault, fault.addr, op->pc};
            m.running_ = false;
            return true;
        }
    }
    return true;

#undef PRO
#undef NEXT
#undef RS1
#undef RS2
#undef RD_REG
#undef IMM
#undef WR_CLEAR
#undef APPLY_BATCH
#undef SPATIAL_CHECK
#undef CHAIN
#undef LOAD_BODY
#undef STORE_BODY
#undef BRANCH_BODY
}

#else // !HWST_THREADED_DISPATCH

// Portable degradation: the interpreter loop with identical poll/fuel
// semantics. Simulated results are the same by construction; only the
// host speedup is lost.
bool run_superblocks(Machine& m, const std::function<bool()>* cancel,
                     u64 stride, Trap& out)
{
    u64 countdown = stride;
    while (m.running_) {
        if (cancel && --countdown == 0) {
            if ((*cancel)()) return false;
            countdown = stride;
        }
        if (m.instret_ >= m.cfg_.fuel) {
            out = Trap{TrapKind::FuelExhausted, 0, m.pc_};
            m.running_ = false;
            return true;
        }
        const Trap t = m.step();
        if (t.kind != TrapKind::None) {
            out = t;
            return true;
        }
    }
    return true;
}

#endif // HWST_THREADED_DISPATCH

} // namespace hwst::sim
