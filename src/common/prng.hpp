// Deterministic PRNG (xoshiro256**) used by workload generators and the
// Juliet case generator. Determinism matters: every table/figure harness
// must print the same rows on every run.
#pragma once

#include "bitops.hpp"

namespace hwst::common {

class Xoshiro256 {
public:
    explicit Xoshiro256(u64 seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

    void reseed(u64 seed)
    {
        // SplitMix64 expansion of the seed into the 256-bit state.
        u64 x = seed;
        for (auto& s : state_) {
            x += 0x9E3779B97F4A7C15ULL;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            s = z ^ (z >> 31);
        }
    }

    u64 next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform value in [0, bound). bound must be nonzero.
    u64 below(u64 bound) { return bound ? next() % bound : 0; }

    /// Uniform value in [lo, hi] inclusive.
    u64 range(u64 lo, u64 hi) { return lo + below(hi - lo + 1); }

    /// Bernoulli draw with probability num/den.
    bool chance(u64 num, u64 den) { return below(den) < num; }

private:
    static constexpr u64 rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state_[4]{};
};

} // namespace hwst::common
