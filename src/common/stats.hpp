// Small statistics helpers used by the benchmark harnesses and the
// execution engine's reporter (the paper reports geometric means of
// overheads and speedup factors). Empty input is always a reported
// condition: silently returning 0 once let an empty grid print a
// plausible-looking geo-mean, so every aggregate here throws
// std::domain_error instead.
#pragma once

#include <algorithm>
#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace hwst::common {

/// Arithmetic mean. Empty input throws std::domain_error.
inline double mean(std::span<const double> xs)
{
    if (xs.empty()) throw std::domain_error{"mean: empty input"};
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

/// Geometric mean of strictly positive values. Empty input throws;
/// values <= 0 throw: the paper's Eq. 7/8 quantities (1 + overhead,
/// speedup) are positive by construction, so a non-positive input is a
/// harness bug.
inline double geo_mean(std::span<const double> xs)
{
    if (xs.empty()) throw std::domain_error{"geo_mean: empty input"};
    double log_sum = 0.0;
    for (const double x : xs) {
        if (x <= 0.0) throw std::domain_error{"geo_mean: non-positive value"};
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Geometric mean of overhead percentages: overheads enter Eq. 7 as
/// ratios (1 + oh), and the mean is reported back as a percentage.
inline double geo_mean_overhead_pct(std::span<const double> overhead_pcts)
{
    std::vector<double> ratios;
    ratios.reserve(overhead_pcts.size());
    for (const double pct : overhead_pcts) ratios.push_back(1.0 + pct / 100.0);
    return (geo_mean(ratios) - 1.0) * 100.0;
}

/// Sample standard deviation (n-1 denominator). Empty input throws; a
/// single sample has no spread and returns 0.
inline double stddev(std::span<const double> xs)
{
    const double m = mean(xs); // throws on empty
    if (xs.size() < 2) return 0.0;
    double sq = 0.0;
    for (const double x : xs) sq += (x - m) * (x - m);
    return std::sqrt(sq / static_cast<double>(xs.size() - 1));
}

/// p-th percentile (0 <= p <= 100) with linear interpolation between
/// order statistics. Empty input or an out-of-range p throws.
inline double percentile(std::span<const double> xs, double p)
{
    if (xs.empty()) throw std::domain_error{"percentile: empty input"};
    if (p < 0.0 || p > 100.0)
        throw std::domain_error{"percentile: p out of [0, 100]"};
    std::vector<double> sorted{xs.begin(), xs.end()};
    std::sort(sorted.begin(), sorted.end());
    const double rank =
        p / 100.0 * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

} // namespace hwst::common
