// Small statistics helpers used by the benchmark harnesses (the paper
// reports geometric means of overheads and speedup factors).
#pragma once

#include <cmath>
#include <numeric>
#include <span>
#include <stdexcept>
#include <vector>

namespace hwst::common {

/// Arithmetic mean. Empty input -> 0.
inline double mean(std::span<const double> xs)
{
    if (xs.empty()) return 0.0;
    return std::accumulate(xs.begin(), xs.end(), 0.0) /
           static_cast<double>(xs.size());
}

/// Geometric mean of strictly positive values. Values <= 0 throw: the
/// paper's Eq. 7/8 quantities (1 + overhead, speedup) are positive by
/// construction, so a non-positive input is a harness bug.
inline double geo_mean(std::span<const double> xs)
{
    if (xs.empty()) return 0.0;
    double log_sum = 0.0;
    for (const double x : xs) {
        if (x <= 0.0) throw std::domain_error{"geo_mean: non-positive value"};
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Geometric mean of overhead percentages: overheads enter Eq. 7 as
/// ratios (1 + oh), and the mean is reported back as a percentage.
inline double geo_mean_overhead_pct(std::span<const double> overhead_pcts)
{
    std::vector<double> ratios;
    ratios.reserve(overhead_pcts.size());
    for (const double pct : overhead_pcts) ratios.push_back(1.0 + pct / 100.0);
    return (geo_mean(ratios) - 1.0) * 100.0;
}

} // namespace hwst::common
