// Fixed-width text-table printer for the figure/table harnesses so every
// bench binary prints rows in the same aligned format as the paper's
// exhibits.
#pragma once

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace hwst::common {

class TextTable {
public:
    explicit TextTable(std::vector<std::string> headers)
        : headers_{std::move(headers)}
    {
        widths_.reserve(headers_.size());
        for (const auto& h : headers_) widths_.push_back(h.size());
    }

    void add_row(std::vector<std::string> cells)
    {
        for (std::size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
            widths_[i] = std::max(widths_[i], cells[i].size());
        }
        rows_.push_back(std::move(cells));
    }

    void print(std::ostream& os) const
    {
        print_row(os, headers_);
        std::string rule;
        for (std::size_t i = 0; i < widths_.size(); ++i) {
            rule += std::string(widths_[i] + 2, '-');
            if (i + 1 != widths_.size()) rule += '+';
        }
        os << rule << '\n';
        for (const auto& row : rows_) print_row(os, row);
    }

private:
    void print_row(std::ostream& os, const std::vector<std::string>& row) const
    {
        for (std::size_t i = 0; i < widths_.size(); ++i) {
            const std::string& cell = i < row.size() ? row[i] : empty_;
            os << ' ' << std::left << std::setw(static_cast<int>(widths_[i]))
               << cell << ' ';
            if (i + 1 != widths_.size()) os << '|';
        }
        os << '\n';
    }

    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::size_t> widths_;
    std::string empty_;
};

/// Format a double with `prec` fractional digits.
inline std::string fmt(double v, int prec = 2)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
}

} // namespace hwst::common
