// Shared environment-variable parsing for the HWST_* switches
// (HWST_DBT, HWST_ISOLATE, HWST_SENTINEL, ...). One parser so every
// switch accepts the same vocabulary and a typo'd value can never
// silently flip a mode: the old per-site `e[0] != '0'` treated
// HWST_DBT=off as *on*.
#pragma once

#include <cctype>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>

namespace hwst::common {

/// Parse a boolean flag value, case-insensitively:
/// "0"/"false"/"off"/"no" -> false, "1"/"true"/"on"/"yes" -> true,
/// anything else -> nullopt.
inline std::optional<bool> parse_bool_flag(std::string_view s)
{
    std::string t;
    t.reserve(s.size());
    for (const char c : s)
        t.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    if (t == "0" || t == "false" || t == "off" || t == "no") return false;
    if (t == "1" || t == "true" || t == "on" || t == "yes") return true;
    return std::nullopt;
}

/// Emit `msg` to stderr at most once per distinct `key` for the whole
/// process. Shared by every env diagnostic so a campaign spawning
/// thousands of Machines warns exactly once per misconfiguration.
inline void warn_once(const std::string& key, const std::string& msg)
{
    static std::mutex mutex;
    static std::set<std::string> warned;
    const std::lock_guard lock{mutex};
    if (warned.insert(key).second) std::cerr << msg;
}

/// Read `name` as a boolean flag. Unset -> nullopt (caller keeps its
/// default); set to an unrecognized value -> nullopt plus a
/// once-per-variable stderr diagnostic.
inline std::optional<bool> env_flag(const char* name)
{
    const char* e = std::getenv(name);
    if (!e) return std::nullopt;
    const auto v = parse_bool_flag(e);
    if (!v)
        warn_once(name, std::string{"[env] "} + name + "='" + e +
                            "' is not a boolean "
                            "(0/1/on/off/true/false/yes/no); ignoring\n");
    return v;
}

/// Parse a choice flag value against `allowed` (case-insensitive).
/// Returns the index of the match, or nullopt.
inline std::optional<unsigned>
parse_choice_flag(std::string_view s,
                  std::initializer_list<std::string_view> allowed)
{
    std::string t;
    t.reserve(s.size());
    for (const char c : s)
        t.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));
    unsigned i = 0;
    for (const std::string_view a : allowed) {
        if (t == a) return i;
        ++i;
    }
    return std::nullopt;
}

/// Read `name` as a choice among `allowed` (e.g. HWST_TIER over
/// {"interp","dbt","jit"}). Unset -> nullopt; set to an unrecognized
/// value -> nullopt plus a once-per-variable stderr diagnostic listing
/// the vocabulary.
inline std::optional<unsigned>
env_choice(const char* name, std::initializer_list<std::string_view> allowed)
{
    const char* e = std::getenv(name);
    if (!e) return std::nullopt;
    const auto v = parse_choice_flag(e, allowed);
    if (!v) {
        std::string vocab;
        for (const std::string_view a : allowed) {
            if (!vocab.empty()) vocab += '/';
            vocab += a;
        }
        warn_once(name, std::string{"[env] "} + name + "='" + e +
                            "' is not one of " + vocab + "; ignoring\n");
    }
    return v;
}

} // namespace hwst::common
