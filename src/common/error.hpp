// Error taxonomy for the simulator and toolchain. All errors are
// exceptions; hardware-architectural events (memory-safety violations,
// faults) are *not* errors — they are Trap values delivered by the
// Machine — so code never uses exceptions for simulated control flow.
#pragma once

#include <stdexcept>
#include <string>

namespace hwst::common {

/// Malformed input to the toolchain (bad IR, bad encoding request, bad
/// configuration). Programming errors on the host side.
class ToolchainError : public std::logic_error {
public:
    explicit ToolchainError(const std::string& what) : std::logic_error{what} {}
};

/// The simulated machine reached a state the simulator cannot model
/// (e.g. fuel exhausted, unmapped fetch). Distinct from architectural
/// traps, which are ordinary results.
class SimError : public std::runtime_error {
public:
    explicit SimError(const std::string& what) : std::runtime_error{what} {}
};

/// Configuration value out of the modelled range.
class ConfigError : public std::logic_error {
public:
    explicit ConfigError(const std::string& what) : std::logic_error{what} {}
};

} // namespace hwst::common
