// Bit-manipulation utilities shared by the ISA encoder/decoder, the
// metadata compression units and the cache model.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>

namespace hwst::common {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Mask with the low `n` bits set. `n` may be 0..64.
constexpr u64 mask64(unsigned n)
{
    if (n >= 64) return ~u64{0};
    return (u64{1} << n) - 1;
}

/// Extract bits [lo, lo+len) of `v` (little-endian bit numbering).
/// `lo >= 64` reads past the word and yields 0 (a shift by >= 64 would
/// be UB; callers such as decompress_temporal can reach lo == 64 when a
/// field width is configured to 0).
constexpr u64 bits(u64 v, unsigned lo, unsigned len)
{
    if (lo >= 64) return 0;
    return (v >> lo) & mask64(len);
}

/// Extract a single bit.
constexpr u64 bit(u64 v, unsigned pos) { return (v >> pos) & 1u; }

/// Sign-extend the low `n` bits of `v` to 64 bits.
constexpr i64 sign_extend(u64 v, unsigned n)
{
    if (n == 0 || n >= 64) return static_cast<i64>(v);
    const u64 m = u64{1} << (n - 1);
    const u64 x = v & mask64(n);
    return static_cast<i64>((x ^ m) - m);
}

/// True if `v` fits in a signed `n`-bit field.
constexpr bool fits_signed(i64 v, unsigned n)
{
    if (n >= 64) return true;
    const i64 lo = -(i64{1} << (n - 1));
    const i64 hi = (i64{1} << (n - 1)) - 1;
    return v >= lo && v <= hi;
}

/// True if `v` fits in an unsigned `n`-bit field.
constexpr bool fits_unsigned(u64 v, unsigned n)
{
    return n >= 64 || v <= mask64(n);
}

/// Place the low `len` bits of `v` at position `lo` of a zeroed word.
constexpr u64 place(u64 v, unsigned lo, unsigned len)
{
    return (v & mask64(len)) << lo;
}

/// Round `v` up to a multiple of `align` (power of two).
constexpr u64 align_up(u64 v, u64 align)
{
    return (v + align - 1) & ~(align - 1);
}

/// Round `v` down to a multiple of `align` (power of two).
constexpr u64 align_down(u64 v, u64 align) { return v & ~(align - 1); }

/// True if `v` is a power of two (and nonzero).
constexpr bool is_pow2(u64 v) { return v != 0 && (v & (v - 1)) == 0; }

/// ceil(log2(v)) for v >= 1.
constexpr unsigned clog2(u64 v)
{
    if (v <= 1) return 0;
    return 64u - static_cast<unsigned>(std::countl_zero(v - 1));
}

/// Checked narrowing cast: throws std::range_error on value change.
template <typename To, typename From>
constexpr To narrow(From v)
{
    static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
    const auto r = static_cast<To>(v);
    if (static_cast<From>(r) != v ||
        ((r < To{}) != (v < From{}))) {
        throw std::range_error{"narrowing cast changed value"};
    }
    return r;
}

} // namespace hwst::common
