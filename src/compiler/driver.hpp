// Driver: one-call "compile this module under scheme S and run it"
// convenience used by tests, benches and examples.
#pragma once

#include "compiler/codegen.hpp"
#include "compiler/emitters.hpp"
#include "sim/machine.hpp"

namespace hwst::compiler {

struct CompiledProgram {
    riscv::Program program;
    sim::MachineConfig machine_config;
    Scheme scheme;
};

/// Compile `module` under `scheme`.
CompiledProgram compile(const mir::Module& module, Scheme scheme,
                        riscv::MemoryLayout layout = {});

/// Compile and run to completion.
sim::RunResult run(const mir::Module& module, Scheme scheme,
                   riscv::MemoryLayout layout = {});

/// Compile and run with an explicit machine-config tweak hook (keybuffer
/// sweeps, cache ablations...).
template <typename ConfigFn>
sim::RunResult run_with_config(const mir::Module& module, Scheme scheme,
                               ConfigFn&& tweak,
                               riscv::MemoryLayout layout = {})
{
    CompiledProgram cp = compile(module, scheme, layout);
    tweak(cp.machine_config);
    sim::Machine machine{cp.program, cp.machine_config};
    return machine.run();
}

} // namespace hwst::compiler
