#include "compiler/emitters.hpp"

#include "common/error.hpp"
#include "hwst/csr.hpp"
#include "metadata/compress.hpp"

namespace hwst::compiler {

using riscv::csri_op;
using riscv::csr_op;
using riscv::itype;
using riscv::mv;
using riscv::rtype;
using riscv::stype;

namespace {

/// Copy `bytes` (multiple of 8) from [src+0..] to [dst+0..] via scratch.
void copy_block(Ctx& ctx, Reg src_addr, Reg dst_addr, i64 bytes, Reg scratch,
                bool o0_home = false)
{
    for (i64 k = 0; k < bytes; k += 8) {
        ctx.emit(itype(Opcode::LD, scratch, src_addr, k));
        if (o0_home) ctx.o0_home(scratch);
        ctx.emit(stype(Opcode::SD, dst_addr, scratch, k));
    }
}

/// Number of pointer-typed arguments of a call.
std::size_t count_ptr_args(Ctx& ctx, const mir::Instr& call)
{
    std::size_t n = 0;
    for (const Value arg : call.args)
        if (ctx.fn->value_type(arg) == mir::Ty::Ptr) ++n;
    return n;
}

i64 slot_of(Ctx& ctx, Value v)
{
    return ctx.frame->value_slot.at(v.id);
}

/// CETS stack-lock push: grab a lock_location from the stack side of
/// the lock region, mint a key from the stack-key counter, and store
/// both into the frame slots — a handful of inline instructions, like
/// the CETS runtime's lock-stack fast path (no kernel round trip).
void frame_lock_push(Ctx& ctx)
{
    const i64 cursor = static_cast<i64>(ctx.layout().lock_base + 16);
    ctx.li(Reg::t6, cursor);
    ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t6, 0)); // lock cursor
    ctx.emit(itype(Opcode::ADDI, Reg::t4, Reg::t3, -8));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 0)); // push
    ctx.emit(itype(Opcode::LD, Reg::t5, Reg::t6, 8)); // key counter
    ctx.emit(itype(Opcode::ADDI, Reg::t4, Reg::t5, 1));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 8));
    ctx.emit(stype(Opcode::SD, Reg::t3, Reg::t5, 0)); // key -> lock_loc
    ctx.store_slot(Reg::t3, ctx.frame->frame_lock_off);
    ctx.store_slot(Reg::t5, ctx.frame->frame_lock_off + 8);
}

/// CETS stack-lock pop: erase the frame key (this is the zero store
/// the keybuffer snoops) and recycle the lock_location.
void frame_lock_pop(Ctx& ctx)
{
    ctx.load_slot(Reg::t3, ctx.frame->frame_lock_off);
    ctx.emit(stype(Opcode::SD, Reg::t3, Reg::zero, 0)); // erase key
    ctx.li(Reg::t6, static_cast<i64>(ctx.layout().lock_base + 16));
    ctx.emit(itype(Opcode::LD, Reg::t4, Reg::t6, 0));
    ctx.emit(itype(Opcode::ADDI, Reg::t4, Reg::t4, 8));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 0)); // pop
}

} // namespace

// ===================== SbcetsEmitter (+ BOGO model) =====================

void SbcetsEmitter::sw_map(Ctx& ctx, Reg dst, Reg addr_reg) const
{
    if (!opts_.trie) {
        // Linear <<2 map (BOGO/MPX hardware-walk model, trie ablation).
        ctx.emit(itype(Opcode::SLLI, dst, addr_reg, 2));
        ctx.emit(rtype(Opcode::ADD, dst, dst, Ctx::kMapBase));
        return;
    }
    // Two-level trie walk (SoftBound): L1[addr >> 22] is the L2 table;
    // the record lives at L2 + (addr[21:3]) * 32. One dependent load —
    // the software baseline's key cost the LMSM+SMAC removes.
    ctx.emit(itype(Opcode::SRLI, dst, addr_reg, 22));
    ctx.emit(itype(Opcode::SLLI, dst, dst, 3));
    ctx.emit(rtype(Opcode::ADD, dst, dst, Ctx::kMapBase));
    ctx.emit(itype(Opcode::LD, dst, dst, 0));
    ctx.li(Reg::t4, 0x3FFFF8); // addr[21:3]
    ctx.emit(rtype(Opcode::AND, Reg::t4, addr_reg, Reg::t4));
    ctx.emit(itype(Opcode::SLLI, Reg::t4, Reg::t4, 2)); // ×32 / 8
    ctx.emit(rtype(Opcode::ADD, dst, dst, Reg::t4));
}

void SbcetsEmitter::program_start(Ctx& ctx)
{
    const auto& lay = ctx.layout();
    ctx.li(Ctx::kMapBase, static_cast<i64>(lay.sw_meta_offset));
    ctx.li(Ctx::kShadowArgSp,
           static_cast<i64>(lay.sw_arg_base + lay.sw_arg_size - 64));
}

void SbcetsEmitter::function_entry(Ctx& ctx)
{
    if (ctx.frame->frame_lock_off >= 0) frame_lock_push(ctx);
    // Copy incoming pointer-arg metadata from the shadow arg stack into
    // the param groups.
    std::size_t j = 0;
    for (std::size_t i = 0; i < ctx.fn->params().size(); ++i) {
        if (ctx.fn->params()[i] != mir::Ty::Ptr) continue;
        ctx.emit(itype(Opcode::ADDI, Reg::t5, Ctx::kShadowArgSp,
                       static_cast<i64>(32 * (j + 1))));
        ctx.frame_addr(Reg::t6, ctx.frame->param_group[i]);
        copy_block(ctx, Reg::t5, Reg::t6, meta_bytes(), Reg::t3);
        ++j;
    }
}

void SbcetsEmitter::function_exit(Ctx& ctx)
{
    // Erase the frame key: every pointer into this frame dangles now
    // (use-after-return protection), then recycle the lock_location.
    if (ctx.frame->frame_lock_off >= 0) frame_lock_pop(ctx);
}

void SbcetsEmitter::bind_alloca(Ctx& ctx, Reg r, u32 alloca_index, Value v)
{
    const i64 size =
        static_cast<i64>(ctx.fn->allocas()[alloca_index].size);
    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    ctx.emit(stype(Opcode::SD, Reg::t6, r, 0)); // base
    if (common::fits_signed(size, 12)) {
        ctx.emit(itype(Opcode::ADDI, Reg::t4, r, size));
    } else {
        ctx.li(Reg::t4, size);
        ctx.emit(rtype(Opcode::ADD, Reg::t4, Reg::t4, r));
    }
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 8)); // bound
    if (!opts_.temporal) return;
    if (ctx.frame->frame_lock_off >= 0) {
        ctx.load_slot(Reg::t4, ctx.frame->frame_lock_off + 8); // key
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 16));
        ctx.load_slot(Reg::t4, ctx.frame->frame_lock_off); // lock
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 24));
    } else {
        ctx.li(Reg::t4, mem::LockAllocator::kGlobalKey);
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 16));
        ctx.li(Reg::t4, static_cast<i64>(ctx.global_lock_addr()));
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 24));
    }
}

void SbcetsEmitter::bind_global(Ctx& ctx, Reg r, u32 global_index, Value v)
{
    const u64 addr = (*ctx.global_addr)[global_index];
    const u64 size = (*ctx.global_size)[global_index];
    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    ctx.emit(stype(Opcode::SD, Reg::t6, r, 0));
    ctx.li(Reg::t4, static_cast<i64>(addr + size));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 8));
    if (!opts_.temporal) return;
    ctx.li(Reg::t4, mem::LockAllocator::kGlobalKey);
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 16));
    ctx.li(Reg::t4, static_cast<i64>(ctx.global_lock_addr()));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 24));
}

void SbcetsEmitter::bind_null(Ctx& ctx, Reg, Value v)
{
    // base = bound = 0 (spatial check skips), key = 0 with the global
    // lock: the temporal check fails on any dereference — this is how
    // SBCETS flags CWE476/CWE690 (DESIGN.md §5).
    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::zero, 0));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::zero, 8));
    if (!opts_.temporal) return;
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::zero, 16));
    ctx.li(Reg::t4, static_cast<i64>(ctx.global_lock_addr()));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 24));
}

void SbcetsEmitter::bind_laundered(Ctx& ctx, Reg, Value v)
{
    // No provenance: all-zero metadata, checks skip (coverage loss by
    // design — the int<->ptr idioms of the Juliet suite).
    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    for (i64 k = 0; k < meta_bytes(); k += 8)
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::zero, k));
}

void SbcetsEmitter::ptr_loaded(Ctx& ctx, Reg, Reg src_addr, Value v)
{
    sw_map(ctx, Reg::t5, src_addr);
    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    copy_block(ctx, Reg::t5, Reg::t6, meta_bytes(), Reg::t3, opts_.o0_cost);
}

void SbcetsEmitter::ptr_stored(Ctx& ctx, Reg, Reg dst_addr, Value v)
{
    ctx.frame_addr(Reg::t5, ctx.group_of(v));
    sw_map(ctx, Reg::t6, dst_addr);
    copy_block(ctx, Reg::t5, Reg::t6, meta_bytes(), Reg::t3, opts_.o0_cost);
}

void SbcetsEmitter::deref_check(Ctx& ctx, Reg ptr, unsigned width, bool,
                                Value v)
{
    const std::string skip = ctx.fresh_label("chk_ok");
    const std::string tmp_chk = ctx.fresh_label("chk_tmp");
    const std::string viol_s = ctx.fresh_label("viol_s");

    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    ctx.emit(itype(Opcode::LD, Reg::t4, Reg::t6, 8)); // bound
    if (opts_.o0_cost) ctx.o0_home(Reg::t4);
    // bound == 0: no *spatial* metadata — the temporal check is still
    // performed (a null pointer has key-0 temporal metadata).
    ctx.prog().emit_branch(Opcode::BEQ, Reg::t4, Reg::zero, tmp_chk);
    ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t6, 0)); // base
    if (opts_.o0_cost) ctx.o0_home(Reg::t3);
    ctx.prog().emit_branch(Opcode::BLTU, ptr, Reg::t3, viol_s);
    ctx.emit(itype(Opcode::ADDI, Reg::t5, ptr, static_cast<i64>(width)));
    if (opts_.o0_cost) ctx.o0_home(Reg::t5);
    ctx.prog().emit_branch(Opcode::BLTU, Reg::t4, Reg::t5, viol_s);
    ctx.prog().label(tmp_chk);

    if (opts_.temporal) {
        ctx.emit(itype(Opcode::LD, Reg::t5, Reg::t6, 24)); // lock
        if (opts_.o0_cost) ctx.o0_home(Reg::t5);
        ctx.prog().emit_branch(Opcode::BEQ, Reg::t5, Reg::zero, skip);
        ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t5, 0));  // key @ lock
        if (opts_.o0_cost) ctx.o0_home(Reg::t3);
        ctx.emit(itype(Opcode::LD, Reg::t4, Reg::t6, 16)); // pointer key
        if (opts_.o0_cost) ctx.o0_home(Reg::t4);
        ctx.prog().emit_branch(Opcode::BEQ, Reg::t3, Reg::t4, skip);
        // temporal violation stub (falls through from the bne above)
        ctx.emit(mv(Reg::a1, ptr));
        ctx.li(Reg::a0, 1);
        ctx.ecall(sim::Sys::SoftViolation);
    } else {
        ctx.prog().emit_jal(Reg::zero, skip);
    }
    ctx.prog().label(viol_s);
    ctx.emit(mv(Reg::a1, ptr));
    ctx.li(Reg::a0, 0);
    ctx.ecall(sim::Sys::SoftViolation);
    ctx.prog().label(skip);
}

void SbcetsEmitter::before_call(Ctx& ctx, const mir::Instr& call)
{
    const i64 frame = 32 * (static_cast<i64>(count_ptr_args(ctx, call)) + 1);
    ctx.emit(itype(Opcode::ADDI, Ctx::kShadowArgSp, Ctx::kShadowArgSp,
                   -frame));
    std::size_t j = 0;
    for (const Value arg : call.args) {
        if (ctx.fn->value_type(arg) != mir::Ty::Ptr) continue;
        ctx.frame_addr(Reg::t5, ctx.group_of(arg));
        ctx.emit(itype(Opcode::ADDI, Reg::t6, Ctx::kShadowArgSp,
                       static_cast<i64>(32 * (j + 1))));
        copy_block(ctx, Reg::t5, Reg::t6, meta_bytes(), Reg::t3);
        ++j;
    }
}

void SbcetsEmitter::after_call(Ctx& ctx, const mir::Instr& call)
{
    if (call.ty == mir::Ty::Ptr) {
        ctx.frame_addr(Reg::t6, ctx.group_of(call.result));
        copy_block(ctx, Ctx::kShadowArgSp, Reg::t6, meta_bytes(), Reg::t3);
    }
    const i64 frame = 32 * (static_cast<i64>(count_ptr_args(ctx, call)) + 1);
    ctx.emit(itype(Opcode::ADDI, Ctx::kShadowArgSp, Ctx::kShadowArgSp,
                   frame));
}

void SbcetsEmitter::ret_ptr(Ctx& ctx, Value v)
{
    ctx.frame_addr(Reg::t5, ctx.group_of(v));
    copy_block(ctx, Reg::t5, Ctx::kShadowArgSp, meta_bytes(), Reg::t3);
}

void SbcetsEmitter::malloc_wrapper(Ctx& ctx, Value result)
{
    // a0 = size (also in t3). The wrapper: allocate, mint key+lock, and
    // bind metadata; a failed allocation binds key 0 so any use of the
    // null result fails the temporal check (CWE690 mechanism).
    ctx.ecall(sim::Sys::Malloc);
    ctx.emit(mv(Reg::t2, Reg::a0));
    if (opts_.temporal) {
        ctx.ecall(sim::Sys::LockAlloc); // a0 = lock, a1 = key
        const std::string ok = ctx.fresh_label("mal_ok");
        ctx.prog().emit_branch(Opcode::BNE, Reg::t2, Reg::zero, ok);
        ctx.li(Reg::a1, 0);
        ctx.prog().label(ok);
    }
    ctx.frame_addr(Reg::t6, ctx.group_of(result));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t2, 0)); // base
    ctx.emit(rtype(Opcode::ADD, Reg::t4, Reg::t2, Reg::t3));
    ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t4, 8)); // bound
    if (opts_.temporal) {
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::a1, 16)); // key
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::a0, 24)); // lock
    }
}

void SbcetsEmitter::free_wrapper(Ctx& ctx, Value operand)
{
    const std::string plain = ctx.fresh_label("free_plain");
    const std::string viol = ctx.fresh_label("free_viol");
    const std::string done = ctx.fresh_label("free_done");

    ctx.frame_addr(Reg::t6, ctx.group_of(operand));
    if (opts_.temporal) {
        ctx.emit(itype(Opcode::LD, Reg::t4, Reg::t6, 24)); // lock
        ctx.prog().emit_branch(Opcode::BEQ, Reg::t4, Reg::zero, plain);
        ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t4, 0));  // key @ lock
        ctx.emit(itype(Opcode::LD, Reg::t5, Reg::t6, 16)); // pointer key
        ctx.prog().emit_branch(Opcode::BNE, Reg::t3, Reg::t5, viol);
        ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t6, 0)); // base
        ctx.prog().emit_branch(Opcode::BNE, Reg::a0, Reg::t3, viol);
        ctx.emit(stype(Opcode::SD, Reg::t4, Reg::zero, 0)); // erase key
        ctx.emit(mv(Reg::t5, Reg::a0));
        ctx.emit(mv(Reg::a0, Reg::t4));
        ctx.ecall(sim::Sys::LockFree);
        ctx.emit(mv(Reg::a0, Reg::t5));
    } else {
        // BOGO: poison the bounds (base 0, bound 1) so later derefs
        // through this metadata fail the spatial check (partial
        // temporal safety) — bound 0 would mean "no metadata" instead.
        // Also model the bound-table scan the free path performs.
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::zero, 0));
        ctx.li(Reg::t5, 1);
        ctx.emit(stype(Opcode::SD, Reg::t6, Reg::t5, 8));
        if (opts_.free_scan) {
            // The runtime scan nullifies every bound-table entry whose
            // base matches the freed pointer (a0 is preserved).
            ctx.ecall(sim::Sys::BogoScan);
        }
    }
    ctx.prog().label(plain);
    ctx.ecall(sim::Sys::Free);
    ctx.prog().emit_jal(Reg::zero, done);
    ctx.prog().label(viol);
    ctx.emit(mv(Reg::a1, Reg::a0));
    ctx.li(Reg::a0, 1);
    ctx.ecall(sim::Sys::SoftViolation);
    ctx.prog().label(done);
}

void SbcetsEmitter::range_check(Ctx& ctx, Reg r, Value v)
{
    // Wrapper-entry range check: [r, r + a2) inside v's bounds, plus
    // the temporal key check — what the SoftBoundCETS libc wrappers do.
    const std::string skip = ctx.fresh_label("rng_ok");
    const std::string viol = ctx.fresh_label("rng_viol");
    const std::string run = ctx.fresh_label("rng_run");
    ctx.prog().emit_branch(Opcode::BNE, Reg::a2, Reg::zero, run);
    ctx.prog().emit_jal(Reg::zero, skip); // len == 0: nothing to check
    ctx.prog().label(run);
    ctx.frame_addr(Reg::t6, ctx.group_of(v));
    ctx.emit(itype(Opcode::LD, Reg::t4, Reg::t6, 8)); // bound
    ctx.prog().emit_branch(Opcode::BEQ, Reg::t4, Reg::zero, skip);
    ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t6, 0)); // base
    ctx.prog().emit_branch(Opcode::BLTU, r, Reg::t3, viol);
    ctx.emit(rtype(Opcode::ADD, Reg::t5, r, Reg::a2));
    ctx.prog().emit_branch(Opcode::BLTU, Reg::t4, Reg::t5, viol);
    if (opts_.temporal) {
        ctx.emit(itype(Opcode::LD, Reg::t5, Reg::t6, 24)); // lock
        ctx.prog().emit_branch(Opcode::BEQ, Reg::t5, Reg::zero, skip);
        ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t5, 0));
        ctx.emit(itype(Opcode::LD, Reg::t4, Reg::t6, 16));
        ctx.prog().emit_branch(Opcode::BEQ, Reg::t3, Reg::t4, skip);
        ctx.emit(mv(Reg::a1, r));
        ctx.li(Reg::a0, 1);
        ctx.ecall(sim::Sys::SoftViolation);
    } else {
        ctx.prog().emit_jal(Reg::zero, skip);
    }
    ctx.prog().label(viol);
    ctx.emit(mv(Reg::a1, r));
    ctx.li(Reg::a0, 0);
    ctx.ecall(sim::Sys::SoftViolation);
    ctx.prog().label(skip);
}

void SbcetsEmitter::before_memcpy(Ctx& ctx, const mir::Instr& in)
{
    range_check(ctx, Reg::a0, in.a);
    range_check(ctx, Reg::a1, in.b);
}

void SbcetsEmitter::before_memset(Ctx& ctx, const mir::Instr& in)
{
    range_check(ctx, Reg::a0, in.a);
}

void SbcetsEmitter::copy_word_metadata(Ctx& ctx, Reg dst_addr, Reg src_addr)
{
    sw_map(ctx, Reg::a4, src_addr);
    sw_map(ctx, Reg::a5, dst_addr);
    copy_block(ctx, Reg::a4, Reg::a5, meta_bytes(), Reg::t6);
}

void SbcetsEmitter::clear_word_metadata(Ctx& ctx, Reg dst_addr)
{
    sw_map(ctx, Reg::a5, dst_addr);
    for (i64 k = 0; k < meta_bytes(); k += 8)
        ctx.emit(stype(Opcode::SD, Reg::a5, Reg::zero, k));
}

// ============================ HwstEmitter ==============================

void HwstEmitter::program_start(Ctx& ctx)
{
    // Program the HWST CSRs "at the beginning of a program" (§3.3).
    const auto& lay = ctx.layout();
    ctx.li(Reg::t0,
           static_cast<i64>(metadata::CompressionConfig{}.to_csr()));
    ctx.emit(csr_op(Opcode::CSRRW, Reg::zero, Reg::t0, hwst::kCsrBitw));
    ctx.li(Reg::t0, static_cast<i64>(lay.shadow_offset));
    ctx.emit(csr_op(Opcode::CSRRW, Reg::zero, Reg::t0, hwst::kCsrSmOffset));
    ctx.li(Reg::t0, static_cast<i64>(lay.lock_base));
    ctx.emit(csr_op(Opcode::CSRRW, Reg::zero, Reg::t0, hwst::kCsrLockBase));
    ctx.emit(csri_op(Opcode::CSRRWI, Reg::zero,
                     static_cast<u32>(status_ & 3), hwst::kCsrStatus));
}

void HwstEmitter::function_entry(Ctx& ctx)
{
    if (ctx.frame->frame_lock_off >= 0) frame_lock_push(ctx);
}

void HwstEmitter::function_exit(Ctx& ctx)
{
    // Erasing the key is the zero store the keybuffer snoops (§3.5).
    if (ctx.frame->frame_lock_off >= 0) frame_lock_pop(ctx);
}

void HwstEmitter::bind_alloca(Ctx& ctx, Reg r, u32 alloca_index, Value)
{
    const i64 size =
        static_cast<i64>(ctx.fn->allocas()[alloca_index].size);
    if (common::fits_signed(size, 12)) {
        ctx.emit(itype(Opcode::ADDI, Reg::t4, r, size));
    } else {
        ctx.li(Reg::t4, size);
        ctx.emit(rtype(Opcode::ADD, Reg::t4, Reg::t4, r));
    }
    ctx.emit(rtype(Opcode::BNDRS, r, r, Reg::t4));
    if (ctx.frame->frame_lock_off >= 0) {
        ctx.load_slot(Reg::t4, ctx.frame->frame_lock_off + 8); // key
        ctx.load_slot(Reg::t5, ctx.frame->frame_lock_off);     // lock
    } else {
        ctx.li(Reg::t4, mem::LockAllocator::kGlobalKey);
        ctx.li(Reg::t5, static_cast<i64>(ctx.global_lock_addr()));
    }
    ctx.emit(rtype(Opcode::BNDRT, r, Reg::t4, Reg::t5));
}

void HwstEmitter::bind_global(Ctx& ctx, Reg r, u32 global_index, Value)
{
    const u64 addr = (*ctx.global_addr)[global_index];
    const u64 size = (*ctx.global_size)[global_index];
    ctx.li(Reg::t4, static_cast<i64>(addr + size));
    ctx.emit(rtype(Opcode::BNDRS, r, r, Reg::t4));
    ctx.li(Reg::t4, mem::LockAllocator::kGlobalKey);
    ctx.li(Reg::t5, static_cast<i64>(ctx.global_lock_addr()));
    ctx.emit(rtype(Opcode::BNDRT, r, Reg::t4, Reg::t5));
}

void HwstEmitter::bind_null(Ctx& ctx, Reg r, Value)
{
    // key 0 + global lock: spatial half stays invalid (unchecked), the
    // temporal check fails on any dereference.
    ctx.li(Reg::t5, static_cast<i64>(ctx.global_lock_addr()));
    ctx.emit(rtype(Opcode::BNDRT, r, Reg::zero, Reg::t5));
}

void HwstEmitter::bind_laundered(Ctx& ctx, Reg r, Value)
{
    ctx.emit(rtype(Opcode::SRFCLR, r, Reg::zero, Reg::zero));
}

void HwstEmitter::ptr_spill(Ctx& ctx, Reg r, i64 slot_off, Value)
{
    // The metadata store instructions carry an immediate offset, so the
    // common frame-slot case needs no address arithmetic.
    const int reps = uncompressed_ ? 2 : 1;
    for (int k = 0; k < reps; ++k) {
        if (common::fits_signed(slot_off, 12)) {
            ctx.emit(stype(Opcode::SBDL, Reg::s0, r, slot_off));
            ctx.emit(stype(Opcode::SBDU, Reg::s0, r, slot_off));
        } else {
            ctx.frame_addr(Reg::t6, slot_off);
            ctx.emit(stype(Opcode::SBDL, Reg::t6, r, 0));
            ctx.emit(stype(Opcode::SBDU, Reg::t6, r, 0));
        }
    }
}

void HwstEmitter::ptr_fill(Ctx& ctx, Reg r, i64 slot_off, Value)
{
    const int reps = uncompressed_ ? 2 : 1;
    for (int k = 0; k < reps; ++k) {
        if (common::fits_signed(slot_off, 12)) {
            ctx.emit(itype(Opcode::LBDLS, r, Reg::s0, slot_off));
            ctx.emit(itype(Opcode::LBDUS, r, Reg::s0, slot_off));
        } else {
            ctx.frame_addr(Reg::t6, slot_off);
            ctx.emit(itype(Opcode::LBDLS, r, Reg::t6, 0));
            ctx.emit(itype(Opcode::LBDUS, r, Reg::t6, 0));
        }
    }
}

void HwstEmitter::ptr_loaded(Ctx& ctx, Reg dst, Reg src_addr, Value)
{
    const int reps = uncompressed_ ? 2 : 1;
    for (int k = 0; k < reps; ++k) {
        ctx.emit(itype(Opcode::LBDLS, dst, src_addr, 0));
        ctx.emit(itype(Opcode::LBDUS, dst, src_addr, 0));
    }
}

void HwstEmitter::ptr_stored(Ctx& ctx, Reg src, Reg dst_addr, Value)
{
    const int reps = uncompressed_ ? 2 : 1;
    for (int k = 0; k < reps; ++k) {
        ctx.emit(stype(Opcode::SBDL, dst_addr, src, 0));
        ctx.emit(stype(Opcode::SBDU, dst_addr, src, 0));
    }
}

void HwstEmitter::deref_check(Ctx& ctx, Reg ptr, unsigned, bool, Value v)
{
    // Spatial: fused into the checked load/store (SCU). Temporal:
    if (use_tchk_) {
        ctx.emit(rtype(Opcode::TCHK, Reg::zero, ptr, Reg::zero));
        return;
    }
    // "HWST128" (no tchk): software key load through lkey/lloc on the
    // shadow of the pointer's container (paper §5.1).
    const std::string skip = ctx.fresh_label("tchk_ok");
    ctx.frame_addr(Reg::t6, slot_of(ctx, v));
    ctx.emit(rtype(Opcode::LLOC, Reg::t5, Reg::t6, Reg::zero));
    // DECOMP emits a null lock when there is no temporal metadata.
    ctx.prog().emit_branch(Opcode::BEQ, Reg::t5, Reg::zero, skip);
    ctx.emit(rtype(Opcode::LKEY, Reg::t4, Reg::t6, Reg::zero));
    ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t5, 0)); // key @ lock
    ctx.prog().emit_branch(Opcode::BEQ, Reg::t3, Reg::t4, skip);
    ctx.emit(mv(Reg::a1, ptr));
    ctx.li(Reg::a0, 1);
    ctx.ecall(sim::Sys::SoftViolation);
    ctx.prog().label(skip);
}

void HwstEmitter::malloc_wrapper(Ctx& ctx, Value)
{
    ctx.ecall(sim::Sys::Malloc);
    ctx.emit(mv(Reg::t2, Reg::a0));
    ctx.ecall(sim::Sys::LockAlloc); // a0 = lock, a1 = key
    const std::string ok = ctx.fresh_label("mal_ok");
    ctx.prog().emit_branch(Opcode::BNE, Reg::t2, Reg::zero, ok);
    ctx.li(Reg::a1, 0); // null result -> key 0 (CWE690 mechanism)
    ctx.prog().label(ok);
    ctx.emit(rtype(Opcode::ADD, Reg::t4, Reg::t2, Reg::t3)); // bound
    ctx.emit(rtype(Opcode::BNDRS, Reg::t2, Reg::t2, Reg::t4));
    ctx.emit(rtype(Opcode::BNDRT, Reg::t2, Reg::a1, Reg::a0));
}

void HwstEmitter::free_wrapper(Ctx& ctx, Value operand)
{
    const std::string plain = ctx.fresh_label("free_plain");
    const std::string viol = ctx.fresh_label("free_viol");
    const std::string done = ctx.fresh_label("free_done");

    // The free wrapper is "third-party" style code: it reads the
    // pointer's metadata from the shadow of its container via the
    // lbas/lloc/lkey instructions (paper §3.2, Fig. 1-d7).
    ctx.frame_addr(Reg::t6, slot_of(ctx, operand));
    ctx.emit(rtype(Opcode::LLOC, Reg::t4, Reg::t6, Reg::zero));
    ctx.prog().emit_branch(Opcode::BEQ, Reg::t4, Reg::zero, plain);
    if (use_tchk_) {
        // Dangling/double free: hardware temporal check.
        ctx.emit(rtype(Opcode::TCHK, Reg::zero, Reg::a0, Reg::zero));
    } else {
        ctx.emit(rtype(Opcode::LKEY, Reg::t5, Reg::t6, Reg::zero));
        ctx.emit(itype(Opcode::LD, Reg::t3, Reg::t4, 0));
        ctx.prog().emit_branch(Opcode::BNE, Reg::t3, Reg::t5, viol);
    }
    ctx.emit(rtype(Opcode::LBAS, Reg::t3, Reg::t6, Reg::zero));
    ctx.prog().emit_branch(Opcode::BNE, Reg::a0, Reg::t3, viol);
    ctx.emit(stype(Opcode::SD, Reg::t4, Reg::zero, 0)); // erase key
    ctx.emit(mv(Reg::t5, Reg::a0));
    ctx.emit(mv(Reg::a0, Reg::t4));
    ctx.ecall(sim::Sys::LockFree);
    ctx.emit(mv(Reg::a0, Reg::t5));
    ctx.prog().label(plain);
    ctx.ecall(sim::Sys::Free);
    ctx.prog().emit_jal(Reg::zero, done);
    ctx.prog().label(viol);
    ctx.emit(mv(Reg::a1, Reg::a0));
    ctx.li(Reg::a0, 1);
    ctx.ecall(sim::Sys::SoftViolation);
    ctx.prog().label(done);
}

void HwstEmitter::hw_range_check(Ctx& ctx, Reg r)
{
    // Probe both ends of [r, r + a2) with checked byte loads (SCU) and
    // run the temporal check; SRF[r] holds the pointer's metadata and
    // pointer arithmetic propagates it to the probe register.
    const std::string skip = ctx.fresh_label("hwrng_ok");
    ctx.prog().emit_branch(Opcode::BEQ, Reg::a2, Reg::zero, skip);
    ctx.emit(itype(Opcode::CLB, Reg::t4, r, 0)); // first byte
    ctx.emit(rtype(Opcode::ADD, Reg::t6, r, Reg::a2));
    ctx.emit(itype(Opcode::CLB, Reg::t4, Reg::t6, -1)); // last byte
    if (use_tchk_) {
        ctx.emit(rtype(Opcode::TCHK, Reg::zero, r, Reg::zero));
    }
    ctx.prog().label(skip);
}

void HwstEmitter::before_memcpy(Ctx& ctx, const mir::Instr&)
{
    hw_range_check(ctx, Reg::a0);
    hw_range_check(ctx, Reg::a1);
}

void HwstEmitter::before_memset(Ctx& ctx, const mir::Instr&)
{
    hw_range_check(ctx, Reg::a0);
}

void HwstEmitter::copy_word_metadata(Ctx& ctx, Reg dst_addr, Reg src_addr)
{
    // SRF <-> S.Mem copy without decompression: the lbdls/lbdus path
    // the paper designed for memcpy().
    ctx.emit(itype(Opcode::LBDLS, Reg::t4, src_addr, 0));
    ctx.emit(itype(Opcode::LBDUS, Reg::t4, src_addr, 0));
    ctx.emit(stype(Opcode::SBDL, dst_addr, Reg::t4, 0));
    ctx.emit(stype(Opcode::SBDU, dst_addr, Reg::t4, 0));
}

void HwstEmitter::clear_word_metadata(Ctx& ctx, Reg dst_addr)
{
    ctx.emit(rtype(Opcode::SRFCLR, Reg::t4, Reg::zero, Reg::zero));
    ctx.emit(stype(Opcode::SBDL, dst_addr, Reg::t4, 0));
    ctx.emit(stype(Opcode::SBDU, dst_addr, Reg::t4, 0));
}

// ============================ AsanEmitter ==============================

void AsanEmitter::program_start(Ctx& ctx)
{
    ctx.li(Ctx::kMapBase, static_cast<i64>(ctx.layout().asan_shadow_offset));
}

void AsanEmitter::function_entry(Ctx& ctx)
{
    const auto& frame = *ctx.frame;
    if (ctx.fn->allocas().empty()) return;
    // Poison the whole alloca region, then unpoison each object: the
    // leftover stripes are the stack redzones.
    ctx.frame_addr(Reg::a0, frame.alloca_region_off);
    ctx.li(Reg::a1, frame.alloca_region_size);
    ctx.li(Reg::a2, 1);
    ctx.ecall(sim::Sys::AsanPoison);
    for (std::size_t i = 0; i < ctx.fn->allocas().size(); ++i) {
        ctx.frame_addr(Reg::a0, frame.alloca_off[i]);
        ctx.li(Reg::a1,
               static_cast<i64>(common::align_up(ctx.fn->allocas()[i].size, 8)));
        ctx.li(Reg::a2, 0);
        ctx.ecall(sim::Sys::AsanPoison);
    }
}

void AsanEmitter::function_exit(Ctx& ctx)
{
    const auto& frame = *ctx.frame;
    if (ctx.fn->allocas().empty()) return;
    ctx.frame_addr(Reg::a0, frame.alloca_region_off);
    ctx.li(Reg::a1, frame.alloca_region_size);
    ctx.li(Reg::a2, 0);
    ctx.ecall(sim::Sys::AsanPoison);
}

void AsanEmitter::deref_check(Ctx& ctx, Reg ptr, unsigned, bool, Value)
{
    const std::string ok = ctx.fresh_label("asan_ok");
    ctx.emit(itype(Opcode::SRLI, Reg::t6, ptr, 3));
    ctx.emit(rtype(Opcode::ADD, Reg::t6, Reg::t6, Ctx::kMapBase));
    ctx.emit(itype(Opcode::LBU, Reg::t6, Reg::t6, 0));
    ctx.prog().emit_branch(Opcode::BEQ, Reg::t6, Reg::zero, ok);
    ctx.emit(mv(Reg::a1, ptr));
    ctx.ecall(sim::Sys::AsanReport);
    ctx.prog().label(ok);
}

// ============================== factory =================================

std::unique_ptr<SafetyEmitter> make_emitter(Scheme scheme)
{
    switch (scheme) {
    case Scheme::None: return std::make_unique<NoneEmitter>();
    case Scheme::Gcc: return std::make_unique<GccEmitter>();
    case Scheme::Sbcets: return std::make_unique<SbcetsEmitter>();
    case Scheme::Hwst128: return std::make_unique<HwstEmitter>(false);
    case Scheme::Hwst128Tchk: return std::make_unique<HwstEmitter>(true);
    case Scheme::Asan: return std::make_unique<AsanEmitter>();
    case Scheme::Bogo:
        // MPX's bndldx/bndstx are microcoded two-level table walks and
        // bnd-register spills are notoriously slow (Oleksenko et al.);
        // trie + o0 homing model that serialization, free_scan models
        // BOGO's bound-table sweeps.
        return std::make_unique<SbcetsEmitter>(SbcetsEmitter::Options{
            .temporal = false, .free_scan = true, .trie = true,
            .o0_cost = true});
    case Scheme::WdlNarrow: return std::make_unique<WdlEmitter>(false);
    case Scheme::WdlWide: return std::make_unique<WdlEmitter>(true);
    }
    throw common::ToolchainError{"make_emitter: unknown scheme"};
}

} // namespace hwst::compiler
