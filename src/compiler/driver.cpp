#include "compiler/driver.hpp"

namespace hwst::compiler {

CompiledProgram compile(const mir::Module& module, Scheme scheme,
                        riscv::MemoryLayout layout)
{
    const auto emitter = make_emitter(scheme);
    Codegen cg{module, *emitter, layout};
    CompiledProgram cp{cg.compile(), emitter->machine_config(), scheme};
    return cp;
}

sim::RunResult run(const mir::Module& module, Scheme scheme,
                   riscv::MemoryLayout layout)
{
    CompiledProgram cp = compile(module, scheme, layout);
    sim::Machine machine{cp.program, cp.machine_config};
    return machine.run();
}

} // namespace hwst::compiler
