// Protection schemes the toolchain can instrument for. The first four
// are the paper's Fig. 4/Fig. 6 subjects; the last three are the Fig. 5
// comparator cost models (DESIGN.md §2).
#pragma once

#include <array>
#include <string_view>

namespace hwst::compiler {

enum class Scheme {
    None,       ///< uninstrumented baseline ("GCC" in Fig. 6 adds only
                ///< stack canaries + libc free checks, see GccEmitter)
    Gcc,        ///< stack-protector + fortify-lite (Fig. 6 baseline)
    Sbcets,     ///< SoftBound+CETS pure software (Fig. 4/5/6)
    Hwst128,    ///< HWST128 without tchk: HW spatial + SW temporal load
    Hwst128Tchk,///< full HWST128: tchk + keybuffer (Fig. 4/5/6)
    Asan,       ///< AddressSanitizer model (Fig. 6)
    Bogo,       ///< BOGO/IntelMPX model (Fig. 5)
    WdlNarrow,  ///< WatchdogLite scalar metadata model (Fig. 5)
    WdlWide,    ///< WatchdogLite wide (AVX) metadata model (Fig. 5)
};

constexpr std::string_view scheme_name(Scheme s)
{
    switch (s) {
    case Scheme::None: return "none";
    case Scheme::Gcc: return "gcc";
    case Scheme::Sbcets: return "sbcets";
    case Scheme::Hwst128: return "hwst128";
    case Scheme::Hwst128Tchk: return "hwst128_tchk";
    case Scheme::Asan: return "asan";
    case Scheme::Bogo: return "bogo";
    case Scheme::WdlNarrow: return "wdl_narrow";
    case Scheme::WdlWide: return "wdl_wide";
    }
    return "?";
}

inline constexpr std::array kAllSchemes = {
    Scheme::None,      Scheme::Gcc,        Scheme::Sbcets,
    Scheme::Hwst128,   Scheme::Hwst128Tchk, Scheme::Asan,
    Scheme::Bogo,      Scheme::WdlNarrow,  Scheme::WdlWide,
};

} // namespace hwst::compiler
