#include "compiler/analysis.hpp"

#include "common/error.hpp"

namespace hwst::compiler {

using mir::Instr;
using mir::Op;
using mir::Ty;

FunctionPointerFacts analyze_pointers(const mir::Function& fn)
{
    FunctionPointerFacts facts;

    const auto make_root = [&](Value v, RootKind kind) {
        facts.root_of[v.id] = v.id;
        facts.root_kind[v.id] = kind;
        facts.roots.push_back(v.id);
    };

    for (const mir::Block& bb : fn.blocks()) {
        for (const Instr& in : bb.instrs()) {
            switch (in.op) {
            case Op::AllocaAddr:
                make_root(in.result, RootKind::Alloca);
                facts.needs_frame_lock = true;
                break;
            case Op::GlobalAddr:
                make_root(in.result, RootKind::Global);
                break;
            case Op::Malloc:
                make_root(in.result, RootKind::Malloc);
                break;
            case Op::ConstI64:
                if (in.ty == Ty::Ptr) make_root(in.result, RootKind::Null);
                break;
            case Op::ParamRef:
                if (in.ty == Ty::Ptr) {
                    make_root(in.result, RootKind::Param);
                    facts.root_param[in.result.id] = in.index;
                }
                break;
            case Op::IntToPtr:
                make_root(in.result, RootKind::Laundered);
                break;
            case Op::Gep: {
                // Derived pointer: shares the base pointer's metadata.
                const auto it = facts.root_of.find(in.a.id);
                if (it == facts.root_of.end())
                    throw common::ToolchainError{
                        "pointer analysis: gep base has no provenance in " +
                        fn.name()};
                facts.root_of[in.result.id] = it->second;
                break;
            }
            case Op::Load:
                ++facts.deref_count;
                if (in.ty == Ty::Ptr) {
                    make_root(in.result, RootKind::LoadedPtr);
                    ++facts.ptr_load_count;
                }
                break;
            case Op::Store:
                ++facts.deref_count;
                if (fn.value_type(in.a) == Ty::Ptr) ++facts.ptr_store_count;
                break;
            case Op::Call:
                if (in.ty == Ty::Ptr)
                    make_root(in.result, RootKind::CallResult);
                break;
            default:
                break;
            }
        }
    }
    return facts;
}

} // namespace hwst::compiler
