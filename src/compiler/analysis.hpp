// Pointer-provenance analysis (the SBCETS pointer-analysis role, §3.4).
//
// For every pointer-typed SSA value the analysis computes its *metadata
// root*: the value whose metadata record describes it. Derived pointers
// (gep results) share their base pointer's root; fresh pointers
// (alloca/global/malloc/null/param/load/inttoptr) are their own roots.
// The software schemes give each root a 32-byte metadata group in the
// frame; laundered roots (inttoptr) get explicitly-null metadata, which
// is how pointer-based schemes lose coverage on int<->ptr idioms
// (Fig. 6's sub-100% coverage).
#pragma once

#include <unordered_map>
#include <vector>

#include "mir/ir.hpp"

namespace hwst::compiler {

using mir::u32;
using mir::Value;

/// How a metadata root acquires its metadata.
enum class RootKind {
    Alloca,    ///< bound at address-taking: base/size known statically
    Global,    ///< bound at address-taking from the module table
    Malloc,    ///< bound by the malloc wrapper
    Null,      ///< null constant: key-0 metadata (catches CWE476/690)
    Param,     ///< inherited from the caller (shadow stack / SRF)
    LoadedPtr, ///< copied from the shadow of the loaded-from container
    CallResult,///< inherited from the callee (shadow slot / SRF)
    Laundered, ///< inttoptr: no metadata (checks skip)
};

struct FunctionPointerFacts {
    /// value id -> root value id (identity for roots).
    std::unordered_map<u32, u32> root_of;
    /// root value id -> kind.
    std::unordered_map<u32, RootKind> root_kind;
    /// Distinct roots in definition order (group layout order).
    std::vector<u32> roots;
    /// Param roots -> parameter index (they share the param's group).
    std::unordered_map<u32, u32> root_param;
    /// True if any alloca's address is taken (the frame then needs a
    /// lock_location so stack temporal safety / use-after-return works).
    bool needs_frame_lock = false;
    /// Diagnostics used by examples and tests.
    u32 deref_count = 0;
    u32 ptr_load_count = 0;
    u32 ptr_store_count = 0;

    u32 root(Value v) const
    {
        const auto it = root_of.find(v.id);
        if (it == root_of.end())
            throw common::ToolchainError{"pointer facts: unknown value"};
        return it->second;
    }

    RootKind kind_of_root(u32 root_id) const
    {
        const auto it = root_kind.find(root_id);
        if (it == root_kind.end())
            throw common::ToolchainError{"pointer facts: unknown root"};
        return it->second;
    }
};

/// Run the analysis over a verified function.
FunctionPointerFacts analyze_pointers(const mir::Function& fn);

} // namespace hwst::compiler
