// Codegen: lowers a verified mir::Module to a riscv::Program under a
// SafetyEmitter (the LLVM-RISC-V-backend + SBCETS-instrumentation role
// of the paper's toolchain, at -O0: every SSA value lives in a frame
// home slot and is reloaded at each use).
#pragma once

#include <array>
#include <optional>

#include "compiler/emitter.hpp"
#include "mir/ir.hpp"
#include "riscv/program.hpp"

namespace hwst::compiler {

class Codegen {
public:
    Codegen(const mir::Module& module, SafetyEmitter& emitter,
            riscv::MemoryLayout layout = {});

    /// Verify, analyze, lower all functions + the _start stub + the
    /// runtime library, and finalize the program.
    riscv::Program compile();

private:
    /// Block-local register cache — the fast-regalloc behaviour of
    /// -O0 LLVM: a block's SSA temporaries stay in callee-saved
    /// registers after definition (their home slot is still written,
    /// so eviction is free). Cleared at block boundaries and across
    /// calls (callees use the same registers without saving them).
    struct RegCache {
        static constexpr std::array<Reg, 10> kPool = {
            Reg::s2, Reg::s3, Reg::s4, Reg::s5, Reg::s6,
            Reg::s7, Reg::s8, Reg::s9, Reg::s10, Reg::s11};
        std::array<u32, kPool.size()> holder{};
        unsigned next = 0;

        void clear() { holder.fill(mir::Value::kInvalid); }
        std::optional<Reg> find(u32 id) const
        {
            if (id == mir::Value::kInvalid) return std::nullopt;
            for (std::size_t i = 0; i < kPool.size(); ++i)
                if (holder[i] == id) return kPool[i];
            return std::nullopt;
        }
        Reg alloc(u32 id)
        {
            const unsigned slot = next;
            next = (next + 1) % kPool.size();
            holder[slot] = id;
            return kPool[slot];
        }
    };

    void lower_function(riscv::Program& prog, Ctx& ctx,
                        const mir::Function& fn);
    FrameInfo build_frame(const mir::Function& fn,
                          const FunctionPointerFacts& facts) const;
    void lower_instr(riscv::Program& prog, Ctx& ctx, const mir::Function& fn,
                     const FunctionPointerFacts& facts, const FrameInfo& frame,
                     const std::string& fn_label, const mir::Instr& in);
    void emit_epilogue(riscv::Program& prog, Ctx& ctx, const FrameInfo& frame);

    RegCache cache_;

    const mir::Module& module_;
    SafetyEmitter& emitter_;
    riscv::MemoryLayout layout_;
    std::vector<u64> global_addr_;
    std::vector<u64> global_size_;
};

/// Stack canary value used by the Gcc scheme.
inline constexpr i64 kStackCanary = 0x0C0FFEE0;

} // namespace hwst::compiler
