// Concrete SafetyEmitter implementations, one per protection scheme.
// See DESIGN.md §2 for which are faithful reproductions (Sbcets,
// Hwst128, Gcc, Asan) and which are documented cost models of closed
// x86 systems (Bogo, WdlNarrow, WdlWide).
#pragma once

#include <memory>

#include "compiler/emitter.hpp"

namespace hwst::compiler {

/// Uninstrumented baseline (the divisor of Eq. 7).
class NoneEmitter final : public SafetyEmitter {
public:
    Scheme scheme() const override { return Scheme::None; }
};

/// "GCC" baseline of Fig. 6: stack canary at function exits plus the
/// libc invalid-free abort the Machine models.
class GccEmitter final : public SafetyEmitter {
public:
    Scheme scheme() const override { return Scheme::Gcc; }
    bool wants_canary() const override { return true; }
};

/// SoftBound+CETS pure-software instrumentation. Metadata lives in
/// 32-byte groups associated with pointer SSA values (clang -O0 style)
/// and, for memory-resident pointers, in the software shadow space at
/// (addr << 2) + sw_meta_offset. All checks are emitted instruction
/// sequences; temporal checks load the key from the lock_location.
///
/// With `temporal = false` and `free_scan = true` this doubles as the
/// BOGO/IntelMPX cost model (bounds-only metadata, two-word moves, and
/// a modeled bound-table scan on free).
class SbcetsEmitter : public SafetyEmitter {
public:
    struct Options {
        bool temporal = true;
        bool free_scan = false; ///< BOGO: bound-table scan loop on free
        /// Metadata map: two-level trie walk (real SoftBound) vs a
        /// 2-instruction linear map (the BOGO/MPX hardware-walk model;
        /// also an ablation knob for the trie-vs-linear design point).
        bool trie = true;
        /// Pay -O0 value-homing cost inside the emitted checks and
        /// metadata copies (IR-level instrumentation compiled at -O0,
        /// like the paper's SBCETS). Off for the MPX/BOGO model whose
        /// checks are real instructions.
        bool o0_cost = true;
    };

    SbcetsEmitter() = default;
    explicit SbcetsEmitter(Options opts) : opts_{opts} {}

    Scheme scheme() const override
    {
        return opts_.temporal ? Scheme::Sbcets : Scheme::Bogo;
    }
    bool wants_groups() const override { return true; }
    bool wants_frame_lock() const override { return opts_.temporal; }
    sim::MachineConfig machine_config() const override
    {
        sim::MachineConfig cfg;
        cfg.runtime.init_sw_trie = opts_.trie;
        return cfg;
    }

    void program_start(Ctx& ctx) override;
    void function_entry(Ctx& ctx) override;
    void function_exit(Ctx& ctx) override;
    void bind_alloca(Ctx& ctx, Reg r, u32 alloca_index, Value v) override;
    void bind_global(Ctx& ctx, Reg r, u32 global_index, Value v) override;
    void bind_null(Ctx& ctx, Reg r, Value v) override;
    void bind_laundered(Ctx& ctx, Reg r, Value v) override;
    void ptr_loaded(Ctx& ctx, Reg dst, Reg src_addr, Value v) override;
    void ptr_stored(Ctx& ctx, Reg src, Reg dst_addr, Value v) override;
    void deref_check(Ctx& ctx, Reg ptr, unsigned width, bool is_store,
                     Value v) override;
    void before_call(Ctx& ctx, const mir::Instr& call) override;
    void after_call(Ctx& ctx, const mir::Instr& call) override;
    void ret_ptr(Ctx& ctx, Value v) override;
    void malloc_wrapper(Ctx& ctx, Value result) override;
    void free_wrapper(Ctx& ctx, Value operand) override;
    void before_memcpy(Ctx& ctx, const mir::Instr& in) override;
    void before_memset(Ctx& ctx, const mir::Instr& in) override;
    void copy_word_metadata(Ctx& ctx, Reg dst_addr, Reg src_addr) override;
    void clear_word_metadata(Ctx& ctx, Reg dst_addr) override;

private:
    /// Range check of [reg, reg+a2) against the group of `v`.
    void range_check(Ctx& ctx, Reg r, Value v);

    /// Bytes of metadata moved through memory per pointer. 32 for
    /// SBCETS (base/bound/key/lock) and also 32 for the BOGO/MPX model:
    /// MPX bound-table entries are 32 bytes (LB, UB, pointer, reserved)
    /// and bndstx/bndldx move the whole entry.
    i64 meta_bytes() const { return 32; }

    /// dst = software metadata address of the container in `addr_reg`.
    /// Trie mode clobbers t4 and performs a dependent L1 load.
    void sw_map(Ctx& ctx, Reg dst, Reg addr_reg) const;

    Options opts_{};
};

/// HWST128 hardware instrumentation (§3.2-3.5): SRF binding via
/// bndrs/bndrt, through-memory propagation via sbdl/sbdu + lbdls/lbdus,
/// SCU-fused checked loads/stores, and temporal checks either with the
/// tchk instruction + keybuffer (use_tchk = true, the paper's
/// HWST128_tchk bars) or with the software key-load sequence over
/// lkey/lloc (use_tchk = false, the paper's HWST128 bars).
class HwstEmitter : public SafetyEmitter {
public:
    /// `uncompressed` is the compression ablation (DESIGN.md 5 item 1):
    /// without the 128-bit compressed format the metadata does not fit
    /// one SRF entry / two shadow slots, so every through-memory move
    /// costs twice the shadow traffic (256 raw bits). `status` is the
    /// csr.status enable mask written by the program prologue (bit 0
    /// spatial, bit 1 temporal) — the overhead-decomposition knob.
    explicit HwstEmitter(bool use_tchk = true, bool uncompressed = false,
                         u64 status = 3)
        : use_tchk_{use_tchk}, uncompressed_{uncompressed}, status_{status}
    {
    }

    Scheme scheme() const override
    {
        return use_tchk_ ? Scheme::Hwst128Tchk : Scheme::Hwst128;
    }
    bool checked_mem() const override { return true; }
    bool wants_frame_lock() const override { return true; }

    void program_start(Ctx& ctx) override;
    void function_entry(Ctx& ctx) override;
    void function_exit(Ctx& ctx) override;
    void bind_alloca(Ctx& ctx, Reg r, u32 alloca_index, Value v) override;
    void bind_global(Ctx& ctx, Reg r, u32 global_index, Value v) override;
    void bind_null(Ctx& ctx, Reg r, Value v) override;
    void bind_laundered(Ctx& ctx, Reg r, Value v) override;
    void ptr_spill(Ctx& ctx, Reg r, i64 slot_off, Value v) override;
    void ptr_fill(Ctx& ctx, Reg r, i64 slot_off, Value v) override;
    void ptr_loaded(Ctx& ctx, Reg dst, Reg src_addr, Value v) override;
    void ptr_stored(Ctx& ctx, Reg src, Reg dst_addr, Value v) override;
    void deref_check(Ctx& ctx, Reg ptr, unsigned width, bool is_store,
                     Value v) override;
    void malloc_wrapper(Ctx& ctx, Value result) override;
    void free_wrapper(Ctx& ctx, Value operand) override;
    void before_memcpy(Ctx& ctx, const mir::Instr& in) override;
    void before_memset(Ctx& ctx, const mir::Instr& in) override;
    void copy_word_metadata(Ctx& ctx, Reg dst_addr, Reg src_addr) override;
    void clear_word_metadata(Ctx& ctx, Reg dst_addr) override;

protected:
    /// Checked-access probe of [r, r+a2) via the SCU + tchk.
    void hw_range_check(Ctx& ctx, Reg r);

    bool use_tchk_;
    bool uncompressed_;
    u64 status_;
};

/// AddressSanitizer model: shadow-byte check before every access,
/// redzones + quarantine provided by the runtime (MachineConfig), stack
/// redzones poisoned per frame. No pointer provenance — exactly the
/// mechanism difference Fig. 6 exposes.
class AsanEmitter final : public SafetyEmitter {
public:
    Scheme scheme() const override { return Scheme::Asan; }
    i64 alloca_redzone() const override { return 16; }
    sim::MachineConfig machine_config() const override
    {
        sim::MachineConfig cfg;
        cfg.runtime.asan_redzone = 16;
        cfg.runtime.quarantine = true;
        return cfg;
    }

    void program_start(Ctx& ctx) override;
    void function_entry(Ctx& ctx) override;
    void function_exit(Ctx& ctx) override;
    void deref_check(Ctx& ctx, Reg ptr, unsigned width, bool is_store,
                     Value v) override;
};

/// WatchdogLite cost models (Fig. 5). WDL accelerates the *checks*
/// with dedicated compare instructions but still addresses metadata in
/// software, so it sits on the SBCETS chassis with tight (non-homed)
/// sequences: narrow pays the full table walk per scalar metadata move;
/// wide amortises the walk with 256-bit transfers (linear map model).
/// Temporal checks still load the key from memory (no keybuffer) —
/// which is exactly the gap HWST128's tchk exploits.
class WdlEmitter final : public SbcetsEmitter {
public:
    explicit WdlEmitter(bool wide)
        : SbcetsEmitter{Options{.temporal = true,
                                .free_scan = false,
                                .trie = !wide,
                                .o0_cost = false}},
          wide_{wide}
    {
    }

    Scheme scheme() const override
    {
        return wide_ ? Scheme::WdlWide : Scheme::WdlNarrow;
    }

private:
    bool wide_;
};

/// Factory: emitter for a scheme (Bogo/Wdl map onto their cost models).
std::unique_ptr<SafetyEmitter> make_emitter(Scheme scheme);

} // namespace hwst::compiler
