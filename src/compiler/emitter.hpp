// SafetyEmitter: the per-scheme instrumentation interface.
//
// Codegen lowers the IR and calls the emitter at every point the paper's
// instrumentation touches (§3.2/3.4): metadata creation+binding, in-
// pipeline vs through-memory propagation, dereference checks, call/ret
// metadata transfer, allocation/deallocation wrappers, and runtime
// library routines (memcpy/memset). Each scheme implements these hooks
// with real emitted instructions, so the cycle costs in Fig. 4/5 come
// out of the instruction stream, not out of fudge factors.
//
// Register contract inside hooks: t0..t2 and a0..a7 are codegen-owned
// and must be preserved unless the hook's doc says otherwise; t3..t6
// are emitter scratch.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "compiler/analysis.hpp"
#include "compiler/scheme.hpp"
#include "mir/ir.hpp"
#include "riscv/program.hpp"
#include "sim/machine.hpp"
#include "sim/syscalls.hpp"

namespace hwst::compiler {

using common::i64;
using common::u32;
using common::u64;
using mir::Value;
using riscv::Opcode;
using riscv::Reg;

/// Stack frame layout of the function being lowered (offsets from s0).
struct FrameInfo {
    i64 size = 0;
    i64 frame_lock_off = -1;        ///< 16 B: lock addr @0, key @8 (-1 = none)
    /// 16 B scratch used by software schemes to "home" intermediate
    /// check values like -O0 homes user values (-1 = none). The paper's
    /// SBCETS is IR-level instrumentation compiled at -O0, so its check
    /// code pays the same spill/reload tax as user code.
    i64 emitter_scratch_off = -1;
    i64 canary_off = -1;            ///< 8 B canary slot (Gcc scheme)
    std::vector<i64> param_slot;    ///< param index -> home slot
    std::vector<i64> param_group;   ///< param index -> 32 B group (-1 = none)
    std::unordered_map<u32, i64> value_slot; ///< value id -> home slot
    std::unordered_map<u32, i64> group_off;  ///< root id -> 32 B group
    std::vector<i64> alloca_off;    ///< alloca index -> offset
    i64 alloca_region_off = 0;      ///< start of the alloca area
    i64 alloca_region_size = 0;
};

class SafetyEmitter;

/// Codegen context handed to emitter hooks: emission helpers plus all
/// per-function tables. Owned by Codegen.
class Ctx {
public:
    Ctx(riscv::Program& prog, const mir::Module& module,
        const riscv::MemoryLayout& layout)
        : prog_{prog}, module_{module}, layout_{layout}
    {
    }

    riscv::Program& prog() { return prog_; }
    const mir::Module& module() const { return module_; }
    const riscv::MemoryLayout& layout() const { return layout_; }

    // Per-function state (set by Codegen before lowering a function).
    const mir::Function* fn = nullptr;
    const FunctionPointerFacts* facts = nullptr;
    const FrameInfo* frame = nullptr;
    /// Addresses of module globals (global index -> data address).
    const std::vector<u64>* global_addr = nullptr;
    /// Sizes of module globals.
    const std::vector<u64>* global_size = nullptr;

    // ---- emission helpers --------------------------------------------
    void emit(const riscv::Instruction& in) { prog_.emit(in); }
    void li(Reg rd, i64 v) { prog_.emit_li(rd, v); }

    /// dst = s0 + off (handles offsets beyond imm12).
    void frame_addr(Reg dst, i64 off);

    /// Load/store a frame slot; store_slot uses `scratch` if the offset
    /// does not fit imm12.
    void load_slot(Reg dst, i64 off);
    void store_slot(Reg src, i64 off, Reg scratch = Reg::t6);

    /// Unique local label.
    std::string fresh_label(const std::string& stem);

    /// li a7, nr; ecall.
    void ecall(sim::Sys nr);

    /// -O0 value homing: spill `r` to the emitter scratch slot and
    /// reload it, mimicking how -O0 lowers IR-level instrumentation.
    /// No-op outside a function or when the frame has no scratch.
    void o0_home(Reg r);

    /// Per-function violation trampolines (lazily emitted at function
    /// end). The faulting address must be in t0 when jumping there.
    const std::string& spatial_viol_label();
    const std::string& temporal_viol_label();
    const std::string& asan_viol_label();

    /// 32 B metadata group offset of `v`'s root (software schemes).
    i64 group_of(Value v) const;

    /// Address of the CETS global lock_location.
    u64 global_lock_addr() const { return layout_.lock_base + 8; }

    // Reserved scheme-global registers.
    static constexpr Reg kMapBase = Reg::gp;     ///< swmeta / ASAN shadow base
    static constexpr Reg kShadowArgSp = Reg::tp; ///< SW shadow arg stack

    // ---- internal (Codegen) -------------------------------------------
    void begin_function(const std::string& fn_label);
    /// Emit any pending violation trampolines; returns true if emitted.
    void flush_trampolines();

private:
    riscv::Program& prog_;
    const mir::Module& module_;
    const riscv::MemoryLayout& layout_;
    u64 label_counter_ = 0;
    std::string fn_label_;
    bool want_sp_viol_ = false, want_tp_viol_ = false, want_asan_viol_ = false;
    std::string sp_viol_, tp_viol_, asan_viol_;
};

class SafetyEmitter {
public:
    virtual ~SafetyEmitter() = default;

    virtual Scheme scheme() const = 0;

    /// Use the HWST checked loads/stores (SCU-fused spatial check).
    virtual bool checked_mem() const { return false; }

    /// Extra bytes of redzone around each alloca (ASAN model).
    virtual i64 alloca_redzone() const { return 0; }

    /// Scheme needs 32 B metadata groups in the frame (software
    /// metadata association).
    virtual bool wants_groups() const { return false; }

    /// Scheme needs a per-frame lock_location for stack temporal safety.
    virtual bool wants_frame_lock() const { return false; }

    /// Scheme wants a stack canary (Gcc).
    virtual bool wants_canary() const { return false; }

    /// Machine configuration for programs built with this scheme.
    virtual sim::MachineConfig machine_config() const
    {
        return sim::MachineConfig{};
    }

    // ---- hooks (defaults: no instrumentation) -------------------------
    virtual void program_start(Ctx&) {}
    virtual void function_entry(Ctx&) {}
    /// Runs before the return value is loaded into a0.
    virtual void function_exit(Ctx&) {}

    /// Result pointer is in `r`; bind fresh metadata.
    virtual void bind_alloca(Ctx&, Reg, u32 /*alloca_index*/, Value) {}
    virtual void bind_global(Ctx&, Reg, u32 /*global_index*/, Value) {}
    virtual void bind_null(Ctx&, Reg, Value) {}
    virtual void bind_laundered(Ctx&, Reg, Value) {}
    virtual void bind_param(Ctx&, Reg, u32 /*param_index*/, Value) {}

    /// malloc: size is in a0 *and* t3; leave the pointer in t2 and bind.
    virtual void malloc_wrapper(Ctx& ctx, Value result);
    /// free: pointer is in a0 (SRF filled in HW modes).
    virtual void free_wrapper(Ctx& ctx, Value operand);

    /// Pointer value `v` in `r` was just stored to its home slot at
    /// `slot_off` (through-memory propagation of a register spill).
    virtual void ptr_spill(Ctx&, Reg, i64 /*slot_off*/, Value) {}
    /// Pointer value `v` was just reloaded from its home slot into `r`.
    virtual void ptr_fill(Ctx&, Reg, i64 /*slot_off*/, Value) {}

    /// A pointer was loaded from program memory: dst=value reg,
    /// src_addr=container address (both live).
    virtual void ptr_loaded(Ctx&, Reg /*dst*/, Reg /*src_addr*/, Value) {}
    /// A pointer in `src` is being stored to container `dst_addr`.
    virtual void ptr_stored(Ctx&, Reg /*src*/, Reg /*dst_addr*/, Value) {}

    /// Dereference about to happen: address in t0 (== ptr register),
    /// `width` bytes. Emit the check (software schemes) — hardware
    /// schemes rely on checked_mem() + this hook for the temporal part.
    virtual void deref_check(Ctx&, Reg /*ptr*/, unsigned /*width*/,
                             bool /*is_store*/, Value /*ptr_val*/)
    {
    }

    /// Wrapper-entry checks for the runtime memory functions: dst in
    /// a0, src in a1 (memcpy only), len in a2 (paper 3: "function
    /// wrappers are covered for all the libraries used"). Default: none.
    virtual void before_memcpy(Ctx&, const mir::Instr&) {}
    virtual void before_memset(Ctx&, const mir::Instr&) {}

    /// Call protocol: transfer metadata of pointer args / results.
    virtual void before_call(Ctx&, const mir::Instr&) {}
    virtual void after_call(Ctx&, const mir::Instr&) {}
    /// Return value pointer is in a0.
    virtual void ret_ptr(Ctx&, Value) {}

    /// Runtime-library customisation points: metadata transfer for one
    /// 8-byte word inside rt_memcpy / rt_memset. The paper highlights
    /// this path (lbdls/lbdus: SRF<->S.Mem copies without decompression
    /// "benefiting memory transfer functions such as memcpy()").
    virtual void copy_word_metadata(Ctx&, Reg /*dst_addr*/,
                                    Reg /*src_addr*/)
    {
    }
    virtual void clear_word_metadata(Ctx&, Reg /*dst_addr*/) {}

    /// Emit the scheme's runtime library (memcpy/memset bodies) under
    /// labels "rt_memcpy" / "rt_memset". Called once, after all
    /// functions. The default emits word loops using checked_mem() and
    /// the per-word metadata hooks above.
    virtual void emit_runtime(Ctx& ctx);
};

} // namespace hwst::compiler
