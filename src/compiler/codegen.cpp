#include "compiler/codegen.hpp"

#include "common/error.hpp"
#include "mir/verify.hpp"

namespace hwst::compiler {

using common::align_up;
using common::fits_signed;
using common::u8;
using common::is_pow2;
using common::ToolchainError;
using mir::BinKind;
using mir::CmpKind;
using mir::Instr;
using mir::Op;
using mir::Ty;
using riscv::btype;
using riscv::itype;
using riscv::rtype;
using riscv::stype;

namespace {

Reg arg_reg(std::size_t i)
{
    if (i >= 8) throw ToolchainError{"codegen: more than 8 call arguments"};
    return riscv::reg_from_index(static_cast<unsigned>(riscv::reg_index(Reg::a0) + i));
}

Opcode load_opcode(unsigned width, bool sign, bool checked)
{
    switch (width) {
    case 1:
        return sign ? (checked ? Opcode::CLB : Opcode::LB)
                    : (checked ? Opcode::CLBU : Opcode::LBU);
    case 2:
        return sign ? (checked ? Opcode::CLH : Opcode::LH)
                    : (checked ? Opcode::CLHU : Opcode::LHU);
    case 4:
        return sign ? (checked ? Opcode::CLW : Opcode::LW)
                    : (checked ? Opcode::CLWU : Opcode::LWU);
    case 8:
        return checked ? Opcode::CLD : Opcode::LD;
    default:
        throw ToolchainError{"codegen: bad load width"};
    }
}

Opcode store_opcode(unsigned width, bool checked)
{
    switch (width) {
    case 1: return checked ? Opcode::CSB : Opcode::SB;
    case 2: return checked ? Opcode::CSH : Opcode::SH;
    case 4: return checked ? Opcode::CSW : Opcode::SW;
    case 8: return checked ? Opcode::CSD : Opcode::SD;
    default: throw ToolchainError{"codegen: bad store width"};
    }
}

Opcode bin_opcode(BinKind k)
{
    switch (k) {
    case BinKind::Add: return Opcode::ADD;
    case BinKind::Sub: return Opcode::SUB;
    case BinKind::Mul: return Opcode::MUL;
    case BinKind::DivS: return Opcode::DIV;
    case BinKind::DivU: return Opcode::DIVU;
    case BinKind::RemS: return Opcode::REM;
    case BinKind::RemU: return Opcode::REMU;
    case BinKind::And: return Opcode::AND;
    case BinKind::Or: return Opcode::OR;
    case BinKind::Xor: return Opcode::XOR;
    case BinKind::Shl: return Opcode::SLL;
    case BinKind::ShrL: return Opcode::SRL;
    case BinKind::ShrA: return Opcode::SRA;
    }
    throw ToolchainError{"codegen: bad binop"};
}

} // namespace

Codegen::Codegen(const mir::Module& module, SafetyEmitter& emitter,
                 riscv::MemoryLayout layout)
    : module_{module}, emitter_{emitter}, layout_{layout}
{
}

riscv::Program Codegen::compile()
{
    mir::verify(module_);
    const mir::Function* main = module_.find_function("main");
    if (!main || !main->params().empty() ||
        main->return_type() != Ty::I64) {
        throw ToolchainError{"codegen: module needs main() -> i64"};
    }

    riscv::Program prog;
    prog.layout() = layout_;

    // Globals into the data segment.
    global_addr_.clear();
    global_size_.clear();
    for (const mir::Global& g : module_.globals()) {
        u64 addr;
        if (!g.init.empty()) {
            std::vector<u8> bytes = g.init;
            bytes.resize(std::max<u64>(g.size, bytes.size()), 0);
            addr = prog.add_data(bytes, g.align);
        } else {
            addr = prog.add_bss(g.size, g.align);
        }
        global_addr_.push_back(addr);
        global_size_.push_back(g.size);
    }

    Ctx ctx{prog, module_, prog.layout()};
    ctx.global_addr = &global_addr_;
    ctx.global_size = &global_size_;

    // _start (the Machine's entry label is "main").
    prog.label("main");
    ctx.begin_function("_start");
    emitter_.program_start(ctx);
    prog.emit_call("fn_main");
    ctx.ecall(sim::Sys::Exit); // a0 = main's return value
    ctx.emit(riscv::Instruction{Opcode::EBREAK});

    for (const mir::Function& fn : module_.functions())
        lower_function(prog, ctx, fn);

    emitter_.emit_runtime(ctx);

    prog.finalize();
    return prog;
}

FrameInfo Codegen::build_frame(const mir::Function& fn,
                               const FunctionPointerFacts& facts) const
{
    FrameInfo frame;
    i64 off = 16; // ra @0, caller s0 @8

    if (emitter_.wants_frame_lock() && facts.needs_frame_lock) {
        frame.frame_lock_off = off;
        off += 16;
    }
    if (emitter_.wants_groups()) {
        frame.emitter_scratch_off = off;
        off += 16;
    }

    for (std::size_t i = 0; i < fn.params().size(); ++i) {
        frame.param_slot.push_back(off);
        off += 8;
    }
    for (std::size_t i = 0; i < fn.params().size(); ++i) {
        if (emitter_.wants_groups() && fn.params()[i] == Ty::Ptr) {
            frame.param_group.push_back(off);
            off += 32;
        } else {
            frame.param_group.push_back(-1);
        }
    }

    for (u32 id = 0; id < fn.values().size(); ++id) {
        frame.value_slot[id] = off;
        off += 8;
    }

    if (emitter_.wants_groups()) {
        for (const u32 root : facts.roots) {
            const auto pi = facts.root_param.find(root);
            if (pi != facts.root_param.end()) {
                frame.group_off[root] = frame.param_group[pi->second];
            } else {
                frame.group_off[root] = off;
                off += 32;
            }
        }
    }

    const i64 rz = emitter_.alloca_redzone();
    frame.alloca_region_off = off;
    for (const mir::AllocaInfo& al : fn.allocas()) {
        off += rz;
        off = static_cast<i64>(align_up(static_cast<u64>(off), al.align));
        frame.alloca_off.push_back(off);
        off += static_cast<i64>(align_up(al.size, 8));
    }
    off += rz;
    frame.alloca_region_size = off - frame.alloca_region_off;

    if (emitter_.wants_canary() && !fn.allocas().empty()) {
        off += 8; // spill/padding gap between locals and the guard
        frame.canary_off = off;
        off += 8;
    }

    frame.size = static_cast<i64>(align_up(static_cast<u64>(off), 16));
    return frame;
}

void Codegen::emit_epilogue(riscv::Program& prog, Ctx& ctx,
                            const FrameInfo& frame)
{
    ctx.emit(itype(Opcode::LD, Reg::ra, Reg::sp, 0));
    ctx.emit(itype(Opcode::LD, Reg::s0, Reg::sp, 8));
    if (fits_signed(frame.size, 12)) {
        ctx.emit(itype(Opcode::ADDI, Reg::sp, Reg::sp, frame.size));
    } else {
        prog.emit_li(Reg::t6, frame.size);
        ctx.emit(rtype(Opcode::ADD, Reg::sp, Reg::sp, Reg::t6));
    }
    prog.emit_ret();
}

void Codegen::lower_function(riscv::Program& prog, Ctx& ctx,
                             const mir::Function& fn)
{
    const FunctionPointerFacts facts = analyze_pointers(fn);
    const FrameInfo frame = build_frame(fn, facts);
    const std::string fn_label = "fn_" + fn.name();

    ctx.begin_function(fn_label);
    ctx.fn = &fn;
    ctx.facts = &facts;
    ctx.frame = &frame;

    prog.label(fn_label);

    // Prologue.
    if (fits_signed(-frame.size, 12)) {
        ctx.emit(itype(Opcode::ADDI, Reg::sp, Reg::sp, -frame.size));
    } else {
        prog.emit_li(Reg::t6, frame.size);
        ctx.emit(rtype(Opcode::SUB, Reg::sp, Reg::sp, Reg::t6));
    }
    ctx.emit(stype(Opcode::SD, Reg::sp, Reg::ra, 0));
    ctx.emit(stype(Opcode::SD, Reg::sp, Reg::s0, 8));
    ctx.emit(riscv::mv(Reg::s0, Reg::sp));

    for (std::size_t i = 0; i < fn.params().size(); ++i) {
        const Reg r = arg_reg(i);
        ctx.store_slot(r, frame.param_slot[i]);
        if (fn.params()[i] == Ty::Ptr)
            emitter_.ptr_spill(ctx, r, frame.param_slot[i], Value{});
    }

    if (frame.canary_off >= 0) {
        prog.emit_li(Reg::t3, kStackCanary);
        ctx.store_slot(Reg::t3, frame.canary_off);
    }

    emitter_.function_entry(ctx);

    // Body. The register cache is block-local: control-flow merges
    // always reload from home slots.
    for (std::size_t b = 0; b < fn.blocks().size(); ++b) {
        prog.label(fn_label + "$bb" + std::to_string(b));
        cache_.clear();
        for (const Instr& in : fn.blocks()[b].instrs())
            lower_instr(prog, ctx, fn, facts, frame, fn_label, in);
    }

    ctx.flush_trampolines();
    ctx.fn = nullptr;
    ctx.facts = nullptr;
    ctx.frame = nullptr;
}

void Codegen::lower_instr(riscv::Program& prog, Ctx& ctx,
                          const mir::Function& fn,
                          const FunctionPointerFacts& /*facts*/,
                          const FrameInfo& frame,
                          const std::string& fn_label, const Instr& in)
{
    const auto slot = [&](Value v) -> i64 {
        const auto it = frame.value_slot.find(v.id);
        if (it == frame.value_slot.end())
            throw ToolchainError{"codegen: value without home slot"};
        return it->second;
    };
    const auto is_ptr = [&](Value v) { return fn.value_type(v) == Ty::Ptr; };

    // Read a value: a cache hit returns the register the value already
    // lives in (its SRF entry is still bound in hardware modes — no
    // lbdls/lbdus refill needed); a miss reloads from the home slot and
    // refills the metadata. The returned register must only be read.
    const auto use_any = [&](Value v, Reg preferred) -> Reg {
        if (const auto hit = cache_.find(v.id)) return *hit;
        ctx.load_slot(preferred, slot(v));
        if (is_ptr(v)) emitter_.ptr_fill(ctx, preferred, slot(v), v);
        return preferred;
    };
    // Read a value into a specific register (arguments, mutated
    // operands): cache hits become a register move, which the pipeline
    // propagates metadata through for free (Fig. 1-b).
    const auto use_into = [&](Reg r, Value v) {
        if (const auto hit = cache_.find(v.id)) {
            ctx.emit(riscv::mv(r, *hit));
            return;
        }
        ctx.load_slot(r, slot(v));
        if (is_ptr(v)) emitter_.ptr_fill(ctx, r, slot(v), v);
    };
    // Define `v`: allocate its cache register (computation target).
    const auto def_reg = [&](Value v) { return cache_.alloc(v.id); };
    // Commit the definition: write the home slot (pointers shadow the
    // spill — through-memory propagation) while the value stays cached.
    const auto commit = [&](Reg r, Value v) {
        ctx.store_slot(r, slot(v));
        if (is_ptr(v)) emitter_.ptr_spill(ctx, r, slot(v), v);
    };

    const bool checked = emitter_.checked_mem();

    switch (in.op) {
    case Op::ConstI64: {
        const Reg rc = def_reg(in.result);
        prog.emit_li(rc, in.imm);
        if (in.ty == Ty::Ptr) emitter_.bind_null(ctx, rc, in.result);
        commit(rc, in.result);
        break;
    }

    case Op::Bin: {
        const Reg ra = use_any(in.a, Reg::t0);
        const Reg rb = use_any(in.b, Reg::t1);
        const Reg rc = def_reg(in.result);
        ctx.emit(rtype(bin_opcode(static_cast<BinKind>(in.imm)), rc, ra,
                       rb));
        commit(rc, in.result);
        break;
    }

    case Op::Cmp: {
        const Reg ra = use_any(in.a, Reg::t0);
        const Reg rb = use_any(in.b, Reg::t1);
        const Reg rc = def_reg(in.result);
        switch (static_cast<CmpKind>(in.imm)) {
        case CmpKind::Eq:
            ctx.emit(rtype(Opcode::XOR, rc, ra, rb));
            ctx.emit(itype(Opcode::SLTIU, rc, rc, 1));
            break;
        case CmpKind::Ne:
            ctx.emit(rtype(Opcode::XOR, rc, ra, rb));
            ctx.emit(rtype(Opcode::SLTU, rc, Reg::zero, rc));
            break;
        case CmpKind::LtS:
            ctx.emit(rtype(Opcode::SLT, rc, ra, rb));
            break;
        case CmpKind::LeS:
            ctx.emit(rtype(Opcode::SLT, rc, rb, ra));
            ctx.emit(itype(Opcode::XORI, rc, rc, 1));
            break;
        case CmpKind::GtS:
            ctx.emit(rtype(Opcode::SLT, rc, rb, ra));
            break;
        case CmpKind::GeS:
            ctx.emit(rtype(Opcode::SLT, rc, ra, rb));
            ctx.emit(itype(Opcode::XORI, rc, rc, 1));
            break;
        case CmpKind::LtU:
            ctx.emit(rtype(Opcode::SLTU, rc, ra, rb));
            break;
        case CmpKind::GeU:
            ctx.emit(rtype(Opcode::SLTU, rc, ra, rb));
            ctx.emit(itype(Opcode::XORI, rc, rc, 1));
            break;
        }
        commit(rc, in.result);
        break;
    }

    case Op::AllocaAddr: {
        const Reg rc = def_reg(in.result);
        ctx.frame_addr(rc, frame.alloca_off.at(in.index));
        emitter_.bind_alloca(ctx, rc, in.index, in.result);
        commit(rc, in.result);
        break;
    }

    case Op::GlobalAddr: {
        const Reg rc = def_reg(in.result);
        prog.emit_li(rc, static_cast<i64>(global_addr_.at(in.index)));
        emitter_.bind_global(ctx, rc, in.index, in.result);
        commit(rc, in.result);
        break;
    }

    case Op::ParamRef: {
        const Reg rc = def_reg(in.result);
        ctx.load_slot(rc, frame.param_slot.at(in.index));
        if (in.ty == Ty::Ptr) {
            emitter_.ptr_fill(ctx, rc, frame.param_slot.at(in.index),
                              Value{});
            emitter_.bind_param(ctx, rc, in.index, in.result);
        }
        commit(rc, in.result);
        break;
    }

    case Op::Load: {
        // The pointer goes through t0 so the container address survives
        // the load for the metadata hook (rc may alias the cached ptr).
        use_into(Reg::t0, in.a);
        emitter_.deref_check(ctx, Reg::t0, in.width, false, in.a);
        const Reg rc = def_reg(in.result);
        ctx.emit(itype(load_opcode(in.width, in.sign, checked), rc,
                       Reg::t0, 0));
        if (in.ty == Ty::Ptr)
            emitter_.ptr_loaded(ctx, rc, Reg::t0, in.result);
        commit(rc, in.result);
        break;
    }

    case Op::Store: {
        const Reg rv = use_any(in.a, Reg::t1);
        use_into(Reg::t0, in.b);
        emitter_.deref_check(ctx, Reg::t0, in.width, true, in.b);
        ctx.emit(stype(store_opcode(in.width, checked), Reg::t0, rv, 0));
        if (is_ptr(in.a)) emitter_.ptr_stored(ctx, rv, Reg::t0, in.a);
        break;
    }

    case Op::Gep: {
        const Reg rb = use_any(in.a, Reg::t0);
        const Reg rc = def_reg(in.result);
        if (in.b.valid() && in.imm != 0) {
            use_into(Reg::t1, in.b); // scaled in place
            if (in.imm == 1) {
                // index * 1
            } else if (in.imm > 0 && is_pow2(static_cast<u64>(in.imm))) {
                ctx.emit(itype(Opcode::SLLI, Reg::t1, Reg::t1,
                               common::clog2(static_cast<u64>(in.imm))));
            } else {
                prog.emit_li(Reg::t3, in.imm);
                ctx.emit(rtype(Opcode::MUL, Reg::t1, Reg::t1, Reg::t3));
            }
            ctx.emit(rtype(Opcode::ADD, rc, rb, Reg::t1));
        } else if (common::fits_signed(in.imm2, 12)) {
            ctx.emit(itype(Opcode::ADDI, rc, rb, in.imm2));
            commit(rc, in.result);
            break;
        } else {
            ctx.emit(riscv::mv(rc, rb));
        }
        if (in.imm2 != 0) {
            if (fits_signed(in.imm2, 12)) {
                ctx.emit(itype(Opcode::ADDI, rc, rc, in.imm2));
            } else {
                prog.emit_li(Reg::t3, in.imm2);
                ctx.emit(rtype(Opcode::ADD, rc, rc, Reg::t3));
            }
        }
        commit(rc, in.result);
        break;
    }

    case Op::PtrToInt: {
        // Provenance deliberately lost at the IR level; the laundered
        // result is re-bound (metadata-less) at the IntToPtr.
        const Reg ra = use_any(in.a, Reg::t0);
        const Reg rc = def_reg(in.result);
        ctx.emit(riscv::mv(rc, ra));
        commit(rc, in.result);
        break;
    }

    case Op::IntToPtr: {
        const Reg ra = use_any(in.a, Reg::t0);
        const Reg rc = def_reg(in.result);
        ctx.emit(riscv::mv(rc, ra));
        emitter_.bind_laundered(ctx, rc, in.result);
        commit(rc, in.result);
        break;
    }

    case Op::Call: {
        emitter_.before_call(ctx, in);
        for (std::size_t i = 0; i < in.args.size(); ++i)
            use_into(arg_reg(i), in.args[i]);
        prog.emit_call("fn_" + in.callee);
        cache_.clear(); // the callee reuses the cache registers
        emitter_.after_call(ctx, in);
        if (in.ty != Ty::Void) {
            const Reg rc = def_reg(in.result);
            ctx.emit(riscv::mv(rc, Reg::a0));
            commit(rc, in.result);
        }
        break;
    }

    case Op::Malloc: {
        use_into(Reg::a0, in.a);
        ctx.emit(riscv::mv(Reg::t3, Reg::a0)); // size survives the ecall
        emitter_.malloc_wrapper(ctx, in.result);
        const Reg rc = def_reg(in.result);
        ctx.emit(riscv::mv(rc, Reg::t2));
        commit(rc, in.result);
        break;
    }

    case Op::Free:
        use_into(Reg::a0, in.a);
        emitter_.free_wrapper(ctx, in.a);
        break;

    case Op::Memcpy:
        use_into(Reg::a0, in.a);
        use_into(Reg::a1, in.b);
        use_into(Reg::a2, in.c);
        emitter_.before_memcpy(ctx, in);
        prog.emit_call("rt_memcpy");
        cache_.clear();
        break;

    case Op::Memset:
        use_into(Reg::a0, in.a);
        use_into(Reg::a1, in.b);
        use_into(Reg::a2, in.c);
        emitter_.before_memset(ctx, in);
        prog.emit_call("rt_memset");
        cache_.clear();
        break;

    case Op::Print:
        use_into(Reg::a0, in.a);
        ctx.ecall(sim::Sys::PrintI64);
        break;

    case Op::Ret:
        emitter_.function_exit(ctx);
        if (frame.canary_off >= 0) {
            ctx.load_slot(Reg::t3, frame.canary_off);
            prog.emit_li(Reg::t4, kStackCanary);
            const std::string ok = ctx.fresh_label("canary_ok");
            prog.emit_branch(Opcode::BEQ, Reg::t3, Reg::t4, ok);
            ctx.ecall(sim::Sys::StackGuardFail);
            prog.label(ok);
        }
        if (in.a.valid()) {
            use_into(Reg::a0, in.a);
            if (is_ptr(in.a)) emitter_.ret_ptr(ctx, in.a);
        }
        emit_epilogue(prog, ctx, frame);
        break;

    case Op::Br: {
        const Reg ra = use_any(in.a, Reg::t0);
        prog.emit_branch(Opcode::BNE, ra, Reg::zero,
                         fn_label + "$bb" + std::to_string(in.bb_true));
        prog.emit_jal(Reg::zero,
                      fn_label + "$bb" + std::to_string(in.bb_false));
        break;
    }

    case Op::Jmp:
        prog.emit_jal(Reg::zero,
                      fn_label + "$bb" + std::to_string(in.bb_true));
        break;
    }
}

} // namespace hwst::compiler
