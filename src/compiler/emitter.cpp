#include "compiler/emitter.hpp"

#include "common/error.hpp"

namespace hwst::compiler {

using riscv::itype;
using riscv::rtype;
using riscv::stype;

void Ctx::frame_addr(Reg dst, i64 off)
{
    if (common::fits_signed(off, 12)) {
        emit(itype(Opcode::ADDI, dst, Reg::s0, off));
    } else {
        li(dst, off);
        emit(rtype(Opcode::ADD, dst, dst, Reg::s0));
    }
}

void Ctx::load_slot(Reg dst, i64 off)
{
    if (common::fits_signed(off, 12)) {
        emit(itype(Opcode::LD, dst, Reg::s0, off));
    } else {
        frame_addr(dst, off);
        emit(itype(Opcode::LD, dst, dst, 0));
    }
}

void Ctx::store_slot(Reg src, i64 off, Reg scratch)
{
    if (common::fits_signed(off, 12)) {
        emit(stype(Opcode::SD, Reg::s0, src, off));
    } else {
        frame_addr(scratch, off);
        emit(stype(Opcode::SD, scratch, src, 0));
    }
}

std::string Ctx::fresh_label(const std::string& stem)
{
    return fn_label_ + "$" + stem + std::to_string(label_counter_++);
}

void Ctx::ecall(sim::Sys nr)
{
    li(Reg::a7, static_cast<i64>(nr));
    emit(riscv::Instruction{Opcode::ECALL});
}

void Ctx::o0_home(Reg r)
{
    if (!frame || frame->emitter_scratch_off < 0) return;
    store_slot(r, frame->emitter_scratch_off);
    load_slot(r, frame->emitter_scratch_off);
}

void Ctx::begin_function(const std::string& fn_label)
{
    fn_label_ = fn_label;
    want_sp_viol_ = want_tp_viol_ = want_asan_viol_ = false;
    sp_viol_ = fn_label + "$viol_sp";
    tp_viol_ = fn_label + "$viol_tp";
    asan_viol_ = fn_label + "$viol_asan";
}

const std::string& Ctx::spatial_viol_label()
{
    want_sp_viol_ = true;
    return sp_viol_;
}

const std::string& Ctx::temporal_viol_label()
{
    want_tp_viol_ = true;
    return tp_viol_;
}

const std::string& Ctx::asan_viol_label()
{
    want_asan_viol_ = true;
    return asan_viol_;
}

void Ctx::flush_trampolines()
{
    // Convention: the faulting address is in t0 when jumping here.
    if (want_sp_viol_) {
        prog_.label(sp_viol_);
        emit(riscv::mv(Reg::a1, Reg::t0));
        li(Reg::a0, 0);
        ecall(sim::Sys::SoftViolation);
        emit(riscv::Instruction{Opcode::EBREAK}); // unreachable backstop
    }
    if (want_tp_viol_) {
        prog_.label(tp_viol_);
        emit(riscv::mv(Reg::a1, Reg::t0));
        li(Reg::a0, 1);
        ecall(sim::Sys::SoftViolation);
        emit(riscv::Instruction{Opcode::EBREAK});
    }
    if (want_asan_viol_) {
        prog_.label(asan_viol_);
        emit(riscv::mv(Reg::a1, Reg::t0));
        ecall(sim::Sys::AsanReport);
        emit(riscv::Instruction{Opcode::EBREAK});
    }
}

i64 Ctx::group_of(Value v) const
{
    if (!facts || !frame)
        throw common::ToolchainError{"Ctx::group_of outside a function"};
    const u32 root = facts->root(v);
    const auto it = frame->group_off.find(root);
    if (it == frame->group_off.end())
        throw common::ToolchainError{"Ctx::group_of: root has no group"};
    return it->second;
}

// ---- SafetyEmitter defaults (uninstrumented baseline) -----------------

void SafetyEmitter::malloc_wrapper(Ctx& ctx, Value)
{
    // a0 already holds the size.
    ctx.ecall(sim::Sys::Malloc);
    ctx.emit(riscv::mv(Reg::t2, Reg::a0));
}

void SafetyEmitter::free_wrapper(Ctx& ctx, Value)
{
    // a0 already holds the pointer.
    ctx.ecall(sim::Sys::Free);
}

void SafetyEmitter::emit_runtime(Ctx& ctx)
{
    auto& prog = ctx.prog();
    const bool checked = checked_mem();
    const Opcode ld8 = checked ? Opcode::CLD : Opcode::LD;
    const Opcode sd8 = checked ? Opcode::CSD : Opcode::SD;
    const Opcode lb = checked ? Opcode::CLBU : Opcode::LBU;
    const Opcode sb = checked ? Opcode::CSB : Opcode::SB;

    // rt_memcpy(a0 = dst, a1 = src, a2 = len). Word loop + byte tail;
    // per-word metadata propagation via the scheme hook (through-memory
    // propagation also happens for data moved by libc-style helpers).
    prog.label("rt_memcpy");
    ctx.emit(riscv::mv(Reg::t0, Reg::a0)); // dst cursor (SRF follows)
    ctx.emit(riscv::mv(Reg::t1, Reg::a1)); // src cursor (SRF follows)
    ctx.emit(riscv::mv(Reg::t5, Reg::a2)); // remaining
    prog.label("rt_memcpy$word");
    ctx.emit(itype(Opcode::ADDI, Reg::t6, Reg::zero, 8));
    prog.emit_branch(Opcode::BLT, Reg::t5, Reg::t6, "rt_memcpy$byte");
    ctx.emit(itype(ld8, Reg::t3, Reg::t1, 0));
    ctx.emit(stype(sd8, Reg::t0, Reg::t3, 0));
    copy_word_metadata(ctx, Reg::t0, Reg::t1);
    ctx.emit(itype(Opcode::ADDI, Reg::t0, Reg::t0, 8));
    ctx.emit(itype(Opcode::ADDI, Reg::t1, Reg::t1, 8));
    ctx.emit(itype(Opcode::ADDI, Reg::t5, Reg::t5, -8));
    prog.emit_jal(Reg::zero, "rt_memcpy$word");
    prog.label("rt_memcpy$byte");
    prog.emit_branch(Opcode::BEQ, Reg::t5, Reg::zero, "rt_memcpy$done");
    ctx.emit(itype(lb, Reg::t3, Reg::t1, 0));
    ctx.emit(stype(sb, Reg::t0, Reg::t3, 0));
    ctx.emit(itype(Opcode::ADDI, Reg::t0, Reg::t0, 1));
    ctx.emit(itype(Opcode::ADDI, Reg::t1, Reg::t1, 1));
    ctx.emit(itype(Opcode::ADDI, Reg::t5, Reg::t5, -1));
    prog.emit_jal(Reg::zero, "rt_memcpy$byte");
    prog.label("rt_memcpy$done");
    prog.emit_ret();

    // rt_memset(a0 = dst, a1 = byte, a2 = len). Byte loop with per-word
    // metadata invalidation (a memset over pointer containers kills
    // their metadata, as it must).
    prog.label("rt_memset");
    ctx.emit(riscv::mv(Reg::t0, Reg::a0));
    ctx.emit(riscv::mv(Reg::t5, Reg::a2));
    prog.label("rt_memset$word");
    ctx.emit(itype(Opcode::ADDI, Reg::t6, Reg::zero, 8));
    prog.emit_branch(Opcode::BLT, Reg::t5, Reg::t6, "rt_memset$byte");
    // Replicate the byte across the word in t3.
    ctx.emit(itype(Opcode::ANDI, Reg::t3, Reg::a1, 0xFF));
    ctx.emit(itype(Opcode::SLLI, Reg::t4, Reg::t3, 8));
    ctx.emit(rtype(Opcode::OR, Reg::t3, Reg::t3, Reg::t4));
    ctx.emit(itype(Opcode::SLLI, Reg::t4, Reg::t3, 16));
    ctx.emit(rtype(Opcode::OR, Reg::t3, Reg::t3, Reg::t4));
    ctx.emit(itype(Opcode::SLLI, Reg::t4, Reg::t3, 32));
    ctx.emit(rtype(Opcode::OR, Reg::t3, Reg::t3, Reg::t4));
    ctx.emit(stype(sd8, Reg::t0, Reg::t3, 0));
    clear_word_metadata(ctx, Reg::t0);
    ctx.emit(itype(Opcode::ADDI, Reg::t0, Reg::t0, 8));
    ctx.emit(itype(Opcode::ADDI, Reg::t5, Reg::t5, -8));
    prog.emit_jal(Reg::zero, "rt_memset$word");
    prog.label("rt_memset$byte");
    prog.emit_branch(Opcode::BEQ, Reg::t5, Reg::zero, "rt_memset$done");
    ctx.emit(stype(sb, Reg::t0, Reg::a1, 0));
    ctx.emit(itype(Opcode::ADDI, Reg::t0, Reg::t0, 1));
    ctx.emit(itype(Opcode::ADDI, Reg::t5, Reg::t5, -1));
    prog.emit_jal(Reg::zero, "rt_memset$byte");
    prog.label("rt_memset$done");
    prog.emit_ret();
}

} // namespace hwst::compiler
