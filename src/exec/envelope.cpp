#include "exec/envelope.hpp"

#include <iostream>

#include "exec/shutdown.hpp"

#ifndef HWST_GIT_REV
#define HWST_GIT_REV "unknown"
#endif

namespace hwst::exec {

std::string build_git_rev()
{
    return HWST_GIT_REV;
}

Campaign::Campaign(std::string bench, const GridOptions& grid,
                   u64 fingerprint)
    : bench_{std::move(bench)}, grid_{grid}, fingerprint_{fingerprint}
{
    install_signal_handlers();
    journal_ = open_journal(grid_, bench_, fingerprint_);
}

void Campaign::attach_cache(std::unique_ptr<CellStore> cache)
{
    cache_ = std::move(cache);
}

EngineOptions Campaign::engine_options() const
{
    EngineOptions opts = grid_.engine();
    opts.journal = journal_.get();
    opts.cache = cache_.get();
    return opts;
}

std::string Campaign::write(const json::Value& payload) const
{
    json::Value body = payload;
    // Cache hit/miss counters are a fact about this host run, so they
    // ride in a host-side field json_check --equiv strips: warm and
    // cold envelopes stay bit-identical (docs/serving.md).
    if (cache_) body["cache"] = cache_->stats_json();
    const std::string path = write_bench_json(
        bench_, resolve_jobs(grid_.jobs), wall_ms(), body, grid_.json_path);
    std::cout << "wrote " << path << '\n';
    return path;
}

int Campaign::finish(json::Value payload, std::span<const Job> jobs,
                     std::span<const JobOutcome> outcomes,
                     bool bad_result) const
{
    payload["summary"] = summary_json(jobs, outcomes);
    if (grid_.json) write(payload);
    const int rc = grid_exit_code(outcomes, grid_.keep_going);
    if (rc == 0 && bad_result && !grid_.keep_going) return 1;
    return rc;
}

} // namespace hwst::exec
