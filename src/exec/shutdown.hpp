// Graceful-shutdown plumbing for the campaign engine. SIGINT/SIGTERM
// flip one process-wide flag; every CancelToken polls it, so in-flight
// jobs drain cooperatively (JobTimeout -> Skipped), queued jobs are
// never started, and the driver gets a partial-but-valid outcome vector
// to flush into its envelope and checkpoint journal before exiting.
#pragma once

#include <atomic>

namespace hwst::exec {

/// The process-wide shutdown flag. Signal handlers and tests set it;
/// CancelToken::expired() and the engine's worker loop poll it.
std::atomic<bool>& shutdown_flag();

inline bool shutdown_requested()
{
    return shutdown_flag().load(std::memory_order_relaxed);
}

/// Request a graceful shutdown (what the SIGINT/SIGTERM handler does).
void request_shutdown();

/// Re-arm after a drained shutdown (tests simulate a kill in-process,
/// then "restart" by clearing the flag and resuming from the journal).
void clear_shutdown();

/// Install SIGINT/SIGTERM handlers that request a graceful shutdown.
/// Idempotent. A second signal while a shutdown is already pending
/// hard-exits with status 130 (the drain itself is wedged).
void install_signal_handlers();

} // namespace hwst::exec
