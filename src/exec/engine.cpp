#include "exec/engine.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

namespace hwst::exec {

unsigned resolve_jobs(unsigned requested)
{
    if (requested != 0) return requested;
    if (const char* env = std::getenv("HWST_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0) return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace {

JobOutcome execute(const Job& job, const CancelToken& token)
{
    JobOutcome out;
    const auto t0 = std::chrono::steady_clock::now();
    try {
        out.result = job.body(token);
        out.status = JobStatus::Ok;
    } catch (const JobTimeout& e) {
        out.status = JobStatus::Timeout;
        out.error = e.what();
    } catch (const std::exception& e) {
        out.status = JobStatus::Error;
        out.error = e.what();
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

} // namespace

std::vector<JobOutcome> Engine::run(std::span<const Job> jobs) const
{
    std::vector<JobOutcome> outcomes(jobs.size());
    if (jobs.empty()) return outcomes;

    const unsigned workers = std::min<std::size_t>(
        resolve_jobs(opts_.jobs), jobs.size());
    std::atomic<bool> stop{false};

    const auto token_for = [&]() {
        std::optional<std::chrono::steady_clock::time_point> deadline;
        if (opts_.timeout.count() > 0)
            deadline = std::chrono::steady_clock::now() + opts_.timeout;
        return CancelToken{deadline, &stop};
    };

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex progress_mutex;

    const auto report = [&](const Job& job, const JobOutcome& out) {
        if (!opts_.progress) return;
        const std::size_t n = done.fetch_add(1) + 1;
        std::lock_guard lock{progress_mutex};
        std::cerr << "\r[" << n << "/" << jobs.size() << "] " << job.name
                  << " " << job_status_name(out.status) << "      ";
        if (n == jobs.size()) std::cerr << '\n';
        std::cerr.flush();
    };

    const auto worker = [&] {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size()) return;
            outcomes[i] = execute(jobs[i], token_for());
            report(jobs[i], outcomes[i]);
        }
    };

    if (workers <= 1) {
        // Inline serial path: the reference execution every parallel
        // run must reproduce bit-identically.
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    return outcomes;
}

} // namespace hwst::exec
