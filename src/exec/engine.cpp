#include "exec/engine.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

#include "common/env.hpp"
#include "common/error.hpp"
#include "exec/journal.hpp"
#include "exec/process.hpp"
#include "exec/supervisor.hpp"

namespace hwst::exec {

unsigned resolve_jobs(unsigned requested)
{
    if (requested != 0) return requested;
    if (const char* env = std::getenv("HWST_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0) return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

EngineOptions resolve_engine_options(const EngineOptions& requested)
{
    // HWST_ISOLATE / HWST_SENTINEL opt whole presets into isolation
    // without touching a harness command line, and a nonzero sentinel
    // rate implies isolation (the cross-check needs sibling workers).
    EngineOptions opts = requested;
    if (!opts.isolate)
        opts.isolate = common::env_flag("HWST_ISOLATE").value_or(false);
    if (opts.sentinel == 0) opts.sentinel = sentinel_from_env();
    if (opts.sentinel > 0) opts.isolate = true;
    if (opts.isolate && !isolation_supported())
        throw common::ToolchainError{
            "process isolation (--isolate/--sentinel) requires a POSIX "
            "host"};
    return opts;
}

namespace {

bool stop_requested(const EngineOptions& opts)
{
    return shutdown_requested() ||
           (opts.stop && opts.stop->load(std::memory_order_relaxed));
}

/// One attempt, routed by mode: in-process on this thread, or in a
/// forked worker whose death is contained and classified — plus the
/// sentinel cross-check on sampled successful jobs.
JobOutcome run_attempt(const Job& job, unsigned attempt,
                       const EngineOptions& opts)
{
    const SuperviseOptions supervise{
        .timeout = opts.timeout,
        .grace = opts.grace,
        .heartbeat = opts.heartbeat,
        .rlimit_mb = opts.rlimit_mb,
        .rlimit_cpu_s = opts.rlimit_cpu_s,
        .stop = opts.stop,
    };
    if (opts.isolate && !job.in_process) {
        JobOutcome out = attempt_isolated(job, attempt, supervise);
        if (opts.sentinel > 0 && out.status == JobStatus::Ok &&
            sentinel_sampled(job, opts.sentinel))
            out = sentinel_check(job, attempt, supervise, std::move(out));
        return out;
    }
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (opts.timeout.count() > 0)
        deadline = std::chrono::steady_clock::now() + opts.timeout;
    return attempt_in_process(job, CancelToken{deadline, opts.stop},
                              attempt);
}

/// Interruptible exponential backoff before retry `attempt + 1`.
void backoff_wait(unsigned attempt, const EngineOptions& opts)
{
    auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        opts.backoff * (1LL << std::min(attempt, 8u)));
    if (remaining > std::chrono::milliseconds{30'000})
        remaining = std::chrono::milliseconds{30'000};
    while (remaining.count() > 0 && !stop_requested(opts)) {
        const auto slice = std::min(remaining, std::chrono::milliseconds{20});
        std::this_thread::sleep_for(slice);
        remaining -= slice;
    }
}

} // namespace

JobOutcome run_one_job(const Job& job, const EngineOptions& opts)
{
    JobOutcome out;
    const unsigned max_attempts = opts.retries + 1;
    for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
        out = run_attempt(job, attempt, opts);
        if (out.status == JobStatus::Ok) break;
        if (stop_requested(opts)) {
            // The "timeout" was the shutdown flag, not a verdict:
            // report Skipped and leave the journal untouched so a
            // --resume re-runs it.
            out.status = JobStatus::Skipped;
            out.error = "cancelled: shutdown requested";
            return out;
        }
        if (attempt + 1 < max_attempts) {
            backoff_wait(attempt, opts);
        } else if (opts.retries > 0) {
            // Exhausted the retry budget: quarantine, so the
            // harness excludes it from aggregates instead of
            // aborting the whole campaign. Crash forensics (and
            // the worker's last error) ride along into the record.
            out.status = JobStatus::Quarantined;
        }
    }
    if (opts.journal && !job.key.empty())
        opts.journal->record(job.key, out);
    // Only a finished verdict is worth serving to other campaigns; a
    // timeout or crash is a fact about this host run, not the cell.
    if (opts.cache && !job.key.empty() && out.status == JobStatus::Ok)
        opts.cache->store(job, out);
    return out;
}

std::vector<JobOutcome> Engine::run(std::span<const Job> jobs) const
{
    const EngineOptions opts = resolve_engine_options(opts_);
    std::vector<JobOutcome> outcomes(jobs.size());
    for (auto& o : outcomes) {
        // Overwritten by replay or execution; anything left over was
        // never started (graceful shutdown mid-grid).
        o.status = JobStatus::Skipped;
        o.error = "not started: shutdown requested";
        o.attempts = 0;
    }
    if (jobs.empty()) return outcomes;

    // Replay prepass: jobs already in the checkpoint journal — or with
    // a finished cell in the content-addressed cache — never hit the
    // pool. Serial and deterministic — replayed outcomes land in their
    // grid slots exactly as the original run left them. The journal
    // (this campaign's own record) wins over the cache (any previous
    // campaign's record); a cache hit is re-journaled so a later
    // --resume replays it even with the cache gone.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        if (jobs[i].key.empty()) {
            pending.push_back(i);
            continue;
        }
        if (const JobOutcome* rec =
                opts.journal ? opts.journal->find(jobs[i].key) : nullptr) {
            outcomes[i] = *rec;
            outcomes[i].from_journal = true;
            continue;
        }
        std::optional<JobOutcome> hit =
            opts.cache ? opts.cache->load(jobs[i]) : std::nullopt;
        if (hit) {
            outcomes[i] = std::move(*hit);
            outcomes[i].from_cache = true;
            if (opts.journal)
                opts.journal->record(jobs[i].key, outcomes[i]);
            continue;
        }
        pending.push_back(i);
    }

    const unsigned workers = std::max<std::size_t>(
        1, std::min<std::size_t>(resolve_jobs(opts.jobs), pending.size()));

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{jobs.size() - pending.size()};
    std::mutex progress_mutex;

    const auto report = [&](const Job& job, const JobOutcome& out) {
        if (!opts.progress) return;
        const std::size_t n = done.fetch_add(1) + 1;
        std::lock_guard lock{progress_mutex};
        std::cerr << "\r[" << n << "/" << jobs.size() << "] " << job.name
                  << " " << job_status_name(out.status) << "      ";
        if (n == jobs.size()) std::cerr << '\n';
        std::cerr.flush();
    };

    const auto worker = [&] {
        for (;;) {
            if (stop_requested(opts)) return;
            const std::size_t slot = next.fetch_add(1);
            if (slot >= pending.size()) return;
            const std::size_t i = pending[slot];
            outcomes[i] = run_one_job(jobs[i], opts);
            report(jobs[i], outcomes[i]);
        }
    };

    if (workers <= 1) {
        // Inline serial path: the reference execution every parallel
        // run must reproduce bit-identically.
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    return outcomes;
}

} // namespace hwst::exec
