#include "exec/engine.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <thread>

#include "exec/journal.hpp"

namespace hwst::exec {

unsigned resolve_jobs(unsigned requested)
{
    if (requested != 0) return requested;
    if (const char* env = std::getenv("HWST_JOBS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n > 0) return static_cast<unsigned>(n);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

namespace {

/// One body invocation. `attempt` is 0-based; the context's seed is the
/// attempt-indexed re-derivation of the job's seed.
JobOutcome attempt_once(const Job& job, const CancelToken& token,
                        unsigned attempt, json::Value* aux)
{
    JobOutcome out;
    out.attempts = attempt + 1;
    const JobContext ctx{token, attempt, attempt_seed(job.seed, attempt),
                         aux};
    const auto t0 = std::chrono::steady_clock::now();
    try {
        out.result = job.body(ctx);
        out.status = JobStatus::Ok;
    } catch (const JobTimeout& e) {
        out.status = JobStatus::Timeout;
        out.error = e.what();
    } catch (const std::exception& e) {
        out.status = JobStatus::Error;
        out.error = e.what();
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    return out;
}

} // namespace

std::vector<JobOutcome> Engine::run(std::span<const Job> jobs) const
{
    std::vector<JobOutcome> outcomes(jobs.size());
    for (auto& o : outcomes) {
        // Overwritten by replay or execution; anything left over was
        // never started (graceful shutdown mid-grid).
        o.status = JobStatus::Skipped;
        o.error = "not started: shutdown requested";
        o.attempts = 0;
    }
    if (jobs.empty()) return outcomes;

    const auto stop_requested = [this] {
        return shutdown_requested() ||
               (opts_.stop &&
                opts_.stop->load(std::memory_order_relaxed));
    };

    // Replay prepass: jobs already in the checkpoint journal never hit
    // the pool. Serial and deterministic — replayed outcomes land in
    // their grid slots exactly as the original run left them.
    std::vector<std::size_t> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const JobOutcome* rec =
            opts_.journal && !jobs[i].key.empty()
                ? opts_.journal->find(jobs[i].key)
                : nullptr;
        if (rec) {
            outcomes[i] = *rec;
            outcomes[i].from_journal = true;
        } else {
            pending.push_back(i);
        }
    }

    const unsigned workers = std::max<std::size_t>(
        1, std::min<std::size_t>(resolve_jobs(opts_.jobs),
                                 pending.size()));

    const auto token_for = [&]() {
        std::optional<std::chrono::steady_clock::time_point> deadline;
        if (opts_.timeout.count() > 0)
            deadline = std::chrono::steady_clock::now() + opts_.timeout;
        return CancelToken{deadline, opts_.stop};
    };

    // Interruptible exponential backoff before retry `attempt + 1`.
    const auto backoff_wait = [&](unsigned attempt) {
        auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
            opts_.backoff * (1LL << std::min(attempt, 8u)));
        if (remaining > std::chrono::milliseconds{30'000})
            remaining = std::chrono::milliseconds{30'000};
        while (remaining.count() > 0 && !stop_requested()) {
            const auto slice =
                std::min(remaining, std::chrono::milliseconds{20});
            std::this_thread::sleep_for(slice);
            remaining -= slice;
        }
    };

    const auto run_job = [&](const Job& job) {
        JobOutcome out;
        const unsigned max_attempts = opts_.retries + 1;
        for (unsigned attempt = 0; attempt < max_attempts; ++attempt) {
            json::Value aux;
            out = attempt_once(job, token_for(), attempt, &aux);
            out.aux = std::move(aux);
            if (out.status == JobStatus::Ok) break;
            if (stop_requested()) {
                // The "timeout" was the shutdown flag, not a verdict:
                // report Skipped and leave the journal untouched so a
                // --resume re-runs it.
                out.status = JobStatus::Skipped;
                out.error = "cancelled: shutdown requested";
                return out;
            }
            if (attempt + 1 < max_attempts) {
                backoff_wait(attempt);
            } else if (opts_.retries > 0) {
                // Exhausted the retry budget: quarantine, so the
                // harness excludes it from aggregates instead of
                // aborting the whole campaign.
                out.status = JobStatus::Quarantined;
            }
        }
        if (opts_.journal && !job.key.empty())
            opts_.journal->record(job.key, out);
        return out;
    };

    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{jobs.size() - pending.size()};
    std::mutex progress_mutex;

    const auto report = [&](const Job& job, const JobOutcome& out) {
        if (!opts_.progress) return;
        const std::size_t n = done.fetch_add(1) + 1;
        std::lock_guard lock{progress_mutex};
        std::cerr << "\r[" << n << "/" << jobs.size() << "] " << job.name
                  << " " << job_status_name(out.status) << "      ";
        if (n == jobs.size()) std::cerr << '\n';
        std::cerr.flush();
    };

    const auto worker = [&] {
        for (;;) {
            if (stop_requested()) return;
            const std::size_t slot = next.fetch_add(1);
            if (slot >= pending.size()) return;
            const std::size_t i = pending[slot];
            outcomes[i] = run_job(jobs[i]);
            report(jobs[i], outcomes[i]);
        }
    };

    if (workers <= 1) {
        // Inline serial path: the reference execution every parallel
        // run must reproduce bit-identically.
        worker();
        return outcomes;
    }

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
    return outcomes;
}

} // namespace hwst::exec
