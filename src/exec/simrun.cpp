#include "exec/simrun.hpp"

namespace hwst::exec {

sim::RunResult run_machine(sim::Machine& machine, const CancelToken& token)
{
    auto result = machine.run_cancellable(
        [&token] { return token.expired(); }, kCancelCheckStride);
    if (!result) {
        throw JobTimeout{"cancelled after " +
                         std::to_string(machine.instret()) +
                         " instructions"};
    }
    return *result;
}

sim::RunResult run_program(const riscv::Program& program,
                           const sim::MachineConfig& cfg,
                           const CancelToken& token)
{
    sim::Machine machine{program, cfg};
    return run_machine(machine, token);
}

Job make_sim_job(std::string name, std::string workload,
                 compiler::Scheme scheme,
                 std::function<mir::Module()> build,
                 std::function<void(sim::MachineConfig&)> tweak, u64 seed)
{
    Job job;
    job.name = std::move(name);
    job.workload = std::move(workload);
    job.scheme = compiler::scheme_name(scheme);
    job.seed = seed;
    job.key = job.name;
    job.body = [scheme, build = std::move(build),
                tweak = std::move(tweak)](const JobContext& ctx) {
        // Codegen holds a reference to the module during compile; keep
        // it alive for the whole body.
        const mir::Module module = build();
        compiler::CompiledProgram cp = compiler::compile(module, scheme);
        if (tweak) tweak(cp.machine_config);
        return run_program(cp.program, cp.machine_config, ctx.token);
    };
    return job;
}

} // namespace hwst::exec
