// Low-level worker-process plumbing for the isolation execution mode
// (docs/execution.md, "Process isolation & failure taxonomy"). One
// call — run_worker() — forks a sandboxed child, runs a single job
// attempt inside it, and supervises the pipe back to the parent:
//
//   child:  setrlimit(RLIMIT_AS/RLIMIT_CPU), SIGALRM heartbeat timer
//           ("H <progress>\n" every beat), one attempt_in_process(),
//           then the final outcome as one "R <record-json>\n" line
//           (timer disarmed + SIGALRM blocked first, so the record can
//           never be spliced), _exit().
//   parent: poll() loop enforcing the hard wall-clock deadline
//           (SIGTERM, then SIGKILL after the grace period), a heartbeat
//           watchdog for wedged workers, and graceful-shutdown
//           forwarding; then waitpid() and a WorkerReport the
//           supervisor classifies into a JobOutcome.
//
// Everything here is deliberately mechanism, not policy: what a dead
// worker *means* (crash vs hard timeout vs hang, retry vs quarantine)
// lives in exec/supervisor.cpp.
#pragma once

#include <string>

#include "exec/job.hpp"

namespace hwst::exec {

/// True when the host supports fork/pipe/poll/setrlimit (POSIX).
/// run_worker() throws common::ToolchainError otherwise.
bool isolation_supported();

/// How to cage and supervise one worker.
struct WorkerRequest {
    /// Cooperative deadline handed to the child's CancelToken; the
    /// parent's hard deadline is timeout + grace (0 = no deadline).
    std::chrono::milliseconds timeout{0};
    /// SIGTERM -> SIGKILL escalation window (also the slack between the
    /// child's cooperative deadline and the parent's SIGTERM).
    std::chrono::milliseconds grace{500};
    /// Child heartbeat interval; the watchdog declares the worker hung
    /// after 8 missed beats. 0 disables both.
    std::chrono::milliseconds heartbeat{250};
    u64 rlimit_mb = 0;    ///< RLIMIT_AS cap in MiB (0 = unlimited)
    u64 rlimit_cpu_s = 0; ///< RLIMIT_CPU cap in seconds (0 = unlimited)
    /// Sentinel re-check worker: force the child's runs onto the pure
    /// interpreter tier (sim::force_interpreter).
    bool force_interpreter = false;
    /// Extra stop flag (engine tests); merged with the process-wide
    /// shutdown flag when forwarding a graceful stop to the child.
    const std::atomic<bool>* stop = nullptr;
};

/// What the parent observed. Exactly one of these shapes comes back:
/// a parsed record (the worker finished and reported), or death
/// forensics (exit status / terminating signal plus the kill
/// escalation that caused it, when the parent pulled the trigger).
struct WorkerReport {
    bool has_record = false;
    json::Value record;       ///< the child's outcome record (if any)
    bool torn_record = false; ///< a record line arrived but won't parse
    int exit_status = -1;     ///< WEXITSTATUS when the child exited
    int term_signal = 0;      ///< WTERMSIG when a signal killed it
    bool hard_timeout = false; ///< parent killed it past the deadline
    bool hung = false;         ///< heartbeat watchdog killed it
    u64 last_progress = 0;     ///< progress ticks in the last heartbeat
    u64 heartbeats = 0;        ///< heartbeat lines received
    double wall_ms = 0.0;      ///< fork-to-reap wall clock
    std::string spawn_error;   ///< non-empty: pipe/fork itself failed
};

/// Fork a worker, run one attempt of `job` inside it, supervise, reap.
WorkerReport run_worker(const Job& job, unsigned attempt,
                        const WorkerRequest& req);

} // namespace hwst::exec
