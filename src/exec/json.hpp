// Minimal JSON value + serializer + parser for the machine-readable
// result layer (BENCH_<name>.json). No third-party dependency: the
// container bakes in nothing beyond the standard library, so the engine
// carries its own ~RFC 8259 subset. Objects preserve insertion order so
// emitted files are deterministic and diffable run-to-run.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

#include "common/bitops.hpp"

namespace hwst::exec::json {

using common::i64;

class JsonError : public std::runtime_error {
public:
    explicit JsonError(const std::string& what) : std::runtime_error{what} {}
};

class Value {
public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Value() : data_{nullptr} {}
    Value(std::nullptr_t) : data_{nullptr} {}
    Value(bool b) : data_{b} {}
    Value(int v) : data_{static_cast<i64>(v)} {}
    Value(unsigned v) : data_{static_cast<i64>(v)} {}
    Value(i64 v) : data_{v} {}
    Value(common::u64 v) : data_{static_cast<i64>(v)} {}
    Value(double v) : data_{v} {}
    Value(const char* s) : data_{std::string{s}} {}
    Value(std::string s) : data_{std::move(s)} {}
    Value(std::string_view s) : data_{std::string{s}} {}

    static Value array() { Value v; v.data_ = Array{}; return v; }
    static Value object() { Value v; v.data_ = Object{}; return v; }

    Kind kind() const { return static_cast<Kind>(data_.index()); }
    bool is_null() const { return kind() == Kind::Null; }
    bool is_int() const { return kind() == Kind::Int; }
    bool is_string() const { return kind() == Kind::String; }
    bool is_array() const { return kind() == Kind::Array; }
    bool is_object() const { return kind() == Kind::Object; }
    bool is_number() const
    {
        return kind() == Kind::Int || kind() == Kind::Double;
    }

    bool as_bool() const { return get<bool>("bool"); }
    i64 as_int() const { return get<i64>("int"); }
    double as_double() const
    {
        if (kind() == Kind::Int) return static_cast<double>(std::get<i64>(data_));
        return get<double>("double");
    }
    const std::string& as_string() const { return get<std::string>("string"); }

    // ---- arrays -------------------------------------------------------
    void push_back(Value v)
    {
        if (kind() == Kind::Null) data_ = Array{};
        std::get<Array>(check(Kind::Array, "array")).push_back(std::move(v));
    }
    const std::vector<Value>& items() const
    {
        return std::get<Array>(check(Kind::Array, "array"));
    }

    // ---- objects (insertion-ordered) ----------------------------------
    Value& operator[](const std::string& key)
    {
        if (kind() == Kind::Null) data_ = Object{};
        auto& obj = std::get<Object>(check(Kind::Object, "object"));
        for (auto& [k, v] : obj)
            if (k == key) return v;
        obj.emplace_back(key, Value{});
        return obj.back().second;
    }
    const Value* find(std::string_view key) const
    {
        const auto& obj = std::get<Object>(check(Kind::Object, "object"));
        for (const auto& [k, v] : obj)
            if (k == key) return &v;
        return nullptr;
    }
    const Value& at(std::string_view key) const
    {
        if (const Value* v = find(key)) return *v;
        throw JsonError{"missing key: " + std::string{key}};
    }
    const std::vector<std::pair<std::string, Value>>& members() const
    {
        return std::get<Object>(check(Kind::Object, "object"));
    }

    std::size_t size() const
    {
        switch (kind()) {
        case Kind::Array: return std::get<Array>(data_).size();
        case Kind::Object: return std::get<Object>(data_).size();
        default: throw JsonError{"size() on a scalar"};
        }
    }

    bool operator==(const Value& other) const { return data_ == other.data_; }

    /// Serialize. indent > 0 pretty-prints; 0 emits one line.
    std::string dump(int indent = 2) const;

    /// Parse a complete JSON document (trailing garbage is an error).
    static Value parse(std::string_view text);

private:
    using Array = std::vector<Value>;
    using Object = std::vector<std::pair<std::string, Value>>;
    using Data = std::variant<std::nullptr_t, bool, i64, double,
                              std::string, Array, Object>;

    template <typename T>
    const T& get(const char* what) const
    {
        if (!std::holds_alternative<T>(data_))
            throw JsonError{std::string{"not a "} + what};
        return std::get<T>(data_);
    }
    const Data& check(Kind k, const char* what) const
    {
        if (kind() != k) throw JsonError{std::string{"not an "} + what};
        return data_;
    }
    Data& check(Kind k, const char* what)
    {
        if (kind() != k) throw JsonError{std::string{"not an "} + what};
        return data_;
    }

    Data data_;
};

} // namespace hwst::exec::json
