#include "exec/report.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace hwst::exec {

std::string bench_json_path(const std::string& bench)
{
    return "BENCH_" + bench + ".json";
}

json::Value bench_envelope(const std::string& bench, unsigned jobs,
                           double wall_ms, const json::Value& payload)
{
    json::Value root = json::Value::object();
    root["schema_version"] = kBenchSchemaVersion;
    root["bench"] = bench;
    root["jobs"] = jobs;
    root["wall_ms"] = wall_ms;
    for (const auto& [key, value] : payload.members()) root[key] = value;
    return root;
}

std::string write_bench_json(const std::string& bench, unsigned jobs,
                             double wall_ms, const json::Value& payload,
                             const std::string& path)
{
    const std::string out_path =
        path.empty() ? bench_json_path(bench) : path;
    std::ofstream out{out_path};
    if (!out)
        throw common::ToolchainError{"cannot open " + out_path +
                                     " for writing"};
    out << bench_envelope(bench, jobs, wall_ms, payload).dump(2);
    if (!out)
        throw common::ToolchainError{"short write to " + out_path};
    return out_path;
}

json::Value read_bench_json(const std::string& path)
{
    std::ifstream in{path};
    if (!in) throw common::ToolchainError{"cannot open " + path};
    std::ostringstream buf;
    buf << in.rdbuf();
    json::Value root = json::Value::object();
    try {
        root = json::Value::parse(buf.str());
    } catch (const json::JsonError& e) {
        // A truncated or garbage BENCH file must name itself, not just
        // an offset (satellite of the durability layer).
        throw json::JsonError{path + ": " + e.what()};
    }
    if (root.at("schema_version").as_int() != kBenchSchemaVersion)
        throw common::ToolchainError{
            path + ": unsupported schema_version " +
            std::to_string(root.at("schema_version").as_int())};
    return root;
}

json::Value outcome_json(const Job& job, const JobOutcome& outcome)
{
    json::Value row = json::Value::object();
    if (!job.workload.empty()) row["workload"] = job.workload;
    if (!job.scheme.empty()) row["scheme"] = job.scheme;
    row["status"] = job_status_name(outcome.status);
    row["wall_ms"] = outcome.wall_ms;
    if (outcome.status == JobStatus::Ok) {
        const sim::RunResult& r = outcome.result;
        row["exit_code"] = r.exit_code;
        row["trap"] = trap_name(r.trap.kind);
        row["cycles"] = r.cycles;
        row["instret"] = r.instret;
    } else {
        row["error"] = outcome.error;
    }
    return row;
}

bool is_host_field(std::string_view key)
{
    // wall_ms/run_ms/mips/geo_mean_mips: host timing. git_rev/jobs:
    // provenance. tier/dbt/dbt_enabled/jit: the execution-tier choice
    // and the tiers' host-side counters — interp/dbt/jit envelopes must
    // compare equal once stripped (a tier may change host speed, never
    // simulated numbers). cache/cached: result-cache hit statistics — a
    // warm campaign must compare equal to a cold one (docs/serving.md).
    // recovered/deduped: serving-layer delivery provenance — a campaign
    // resumed across a server crash (or answered by a deduplicated
    // submit) must compare equal to an uninterrupted one.
    return key == "wall_ms" || key == "run_ms" || key == "mips" ||
           key == "geo_mean_mips" || key == "git_rev" || key == "jobs" ||
           key == "tier" || key == "dbt" || key == "dbt_enabled" ||
           key == "jit" || key == "repeat" || key == "cache" ||
           key == "cached" || key == "recovered" || key == "deduped";
}

json::Value strip_host_fields(const json::Value& v)
{
    if (v.is_object()) {
        json::Value out = json::Value::object();
        for (const auto& [key, member] : v.members())
            if (!is_host_field(key)) out[key] = strip_host_fields(member);
        return out;
    }
    if (v.is_array()) {
        json::Value out = json::Value::array();
        for (const auto& item : v.items())
            out.push_back(strip_host_fields(item));
        return out;
    }
    return v;
}

OutcomeCounts count_outcomes(std::span<const JobOutcome> outcomes)
{
    OutcomeCounts c;
    for (const JobOutcome& o : outcomes) {
        switch (o.status) {
        case JobStatus::Ok: ++c.ok; break;
        case JobStatus::Timeout: ++c.timeout; break;
        case JobStatus::Error: ++c.error; break;
        case JobStatus::Crashed: ++c.crashed; break;
        case JobStatus::Quarantined: ++c.quarantined; break;
        case JobStatus::Skipped: ++c.skipped; break;
        }
    }
    return c;
}

json::Value summary_json(std::span<const Job> jobs,
                         std::span<const JobOutcome> outcomes)
{
    const OutcomeCounts c = count_outcomes(outcomes);
    json::Value v = json::Value::object();
    v["ok"] = c.ok;
    v["timeout"] = c.timeout;
    v["error"] = c.error;
    v["crashed"] = c.crashed;
    v["quarantined"] = c.quarantined;
    v["skipped"] = c.skipped;
    v["partial"] = c.partial();
    json::Value quarantined = json::Value::array();
    json::Value failed = json::Value::array();
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        const std::string& name =
            i < jobs.size() ? jobs[i].name : std::to_string(i);
        if (outcomes[i].status == JobStatus::Quarantined)
            quarantined.push_back(name);
        else if (outcomes[i].status == JobStatus::Timeout ||
                 outcomes[i].status == JobStatus::Error ||
                 outcomes[i].status == JobStatus::Crashed)
            failed.push_back(name);
    }
    v["quarantined_jobs"] = quarantined;
    v["failed_jobs"] = failed;
    return v;
}

int grid_exit_code(std::span<const JobOutcome> outcomes, bool keep_going)
{
    const OutcomeCounts c = count_outcomes(outcomes);
    if (c.partial()) return 130;
    if (c.failed() > 0 && !keep_going) return 1;
    return 0;
}

} // namespace hwst::exec
