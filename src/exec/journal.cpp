#include "exec/journal.hpp"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "compiler/scheme.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define HWST_JOURNAL_POSIX 1
#endif

namespace hwst::exec {

std::string journal_path(const std::string& bench)
{
    return "BENCH_" + bench + ".journal";
}

u64 fnv1a(std::string_view s)
{
    u64 h = 0xCBF29CE484222325ULL;
    for (const unsigned char c : s) {
        h ^= c;
        h *= 0x100000001B3ULL;
    }
    return h;
}

std::string hash_hex(u64 h)
{
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

u64 config_revision_hash()
{
    u64 h = derive_seed(static_cast<u64>(kConfigRevision),
                        static_cast<u64>(kJournalVersion));
    for (const compiler::Scheme s : compiler::kAllSchemes)
        h = derive_seed(h, fnv1a(compiler::scheme_name(s)));
    // Defaults a grid's coordinates never name but its simulated
    // numbers depend on: a change here must invalidate stale journals
    // and cache cells even when the grid shape is unchanged.
    const sim::MachineConfig def{};
    h = derive_seed(h, def.dcache.sets, def.dcache.ways,
                    def.dcache.line_bytes, def.icache.sets,
                    def.icache.ways, def.icache.line_bytes,
                    static_cast<u64>(def.icache_enabled),
                    def.keybuffer_entries,
                    static_cast<u64>(def.keybuffer_enabled), def.fuel);
    return h;
}

u64 grid_fingerprint(std::span<const Job> jobs, u64 root_seed,
                     std::string_view config_desc)
{
    u64 h = derive_seed(root_seed, jobs.size(), config_revision_hash(),
                        fnv1a(config_desc));
    for (const Job& j : jobs) {
        h = derive_seed(h, fnv1a(j.key.empty() ? j.name : j.key),
                        fnv1a(j.workload), fnv1a(j.scheme), j.seed);
    }
    return h;
}

u64 grid_fingerprint(std::string_view grid_desc, u64 root_seed)
{
    return derive_seed(root_seed, fnv1a(grid_desc),
                       config_revision_hash());
}

// ---- serialization -----------------------------------------------------

json::Value result_to_json(const sim::RunResult& r)
{
    json::Value v = json::Value::object();
    json::Value trap = json::Value::object();
    trap["kind"] = static_cast<int>(r.trap.kind);
    trap["addr"] = r.trap.addr;
    trap["pc"] = r.trap.pc;
    v["trap"] = trap;
    v["exit_code"] = r.exit_code;
    v["cycles"] = r.cycles;
    v["instret"] = r.instret;
    json::Value out = json::Value::array();
    for (const auto x : r.output) out.push_back(x);
    v["output"] = out;
    json::Value dc = json::Value::array();
    dc.push_back(r.dcache.accesses);
    dc.push_back(r.dcache.misses);
    v["dcache"] = dc;
    json::Value ic = json::Value::array();
    ic.push_back(r.icache.accesses);
    ic.push_back(r.icache.misses);
    v["icache"] = ic;
    json::Value kb = json::Value::array();
    kb.push_back(r.keybuffer.lookups);
    kb.push_back(r.keybuffer.hits);
    kb.push_back(r.keybuffer.flushes);
    v["keybuffer"] = kb;
    v["scu_checks"] = r.scu_checks;
    v["tcu_checks"] = r.tcu_checks;
    v["scu_saturated"] = r.scu_saturated;
    v["tcu_saturated"] = r.tcu_saturated;
    v["smac_translations"] = r.smac_translations;
    json::Value mix = json::Value::array();
    for (const u64 x :
         {r.mix.alu, r.mix.loads, r.mix.stores, r.mix.checked_loads,
          r.mix.checked_stores, r.mix.meta_moves, r.mix.binds, r.mix.tchk,
          r.mix.branches, r.mix.jumps, r.mix.ecalls, r.mix.other})
        mix.push_back(x);
    v["mix"] = mix;
    return v;
}

namespace {

u64 get_u64(const json::Value& v, std::string_view key)
{
    return static_cast<u64>(v.at(key).as_int());
}

void expect_items(const json::Value& v, std::string_view what,
                  std::size_t n)
{
    if (!v.is_array() || v.size() != n)
        throw json::JsonError{std::string{what} + ": expected " +
                              std::to_string(n) + "-element array"};
}

} // namespace

sim::RunResult result_from_json(const json::Value& v)
{
    sim::RunResult r;
    const json::Value& trap = v.at("trap");
    const auto kind = trap.at("kind").as_int();
    if (kind < 0 ||
        kind > static_cast<json::i64>(hwst::TrapKind::FuelExhausted))
        throw json::JsonError{"trap.kind out of range: " +
                              std::to_string(kind)};
    r.trap.kind = static_cast<hwst::TrapKind>(kind);
    r.trap.addr = get_u64(trap, "addr");
    r.trap.pc = get_u64(trap, "pc");
    r.exit_code = v.at("exit_code").as_int();
    r.cycles = get_u64(v, "cycles");
    r.instret = get_u64(v, "instret");
    for (const json::Value& x : v.at("output").items())
        r.output.push_back(x.as_int());
    const json::Value& dc = v.at("dcache");
    expect_items(dc, "dcache", 2);
    r.dcache.accesses = static_cast<u64>(dc.items()[0].as_int());
    r.dcache.misses = static_cast<u64>(dc.items()[1].as_int());
    const json::Value& ic = v.at("icache");
    expect_items(ic, "icache", 2);
    r.icache.accesses = static_cast<u64>(ic.items()[0].as_int());
    r.icache.misses = static_cast<u64>(ic.items()[1].as_int());
    const json::Value& kb = v.at("keybuffer");
    expect_items(kb, "keybuffer", 3);
    r.keybuffer.lookups = static_cast<u64>(kb.items()[0].as_int());
    r.keybuffer.hits = static_cast<u64>(kb.items()[1].as_int());
    r.keybuffer.flushes = static_cast<u64>(kb.items()[2].as_int());
    r.scu_checks = get_u64(v, "scu_checks");
    r.tcu_checks = get_u64(v, "tcu_checks");
    r.scu_saturated = get_u64(v, "scu_saturated");
    r.tcu_saturated = get_u64(v, "tcu_saturated");
    r.smac_translations = get_u64(v, "smac_translations");
    const json::Value& mix = v.at("mix");
    expect_items(mix, "mix", 12);
    u64* const fields[] = {
        &r.mix.alu,   &r.mix.loads,  &r.mix.stores, &r.mix.checked_loads,
        &r.mix.checked_stores, &r.mix.meta_moves, &r.mix.binds,
        &r.mix.tchk,  &r.mix.branches, &r.mix.jumps, &r.mix.ecalls,
        &r.mix.other};
    for (std::size_t i = 0; i < 12; ++i)
        *fields[i] = static_cast<u64>(mix.items()[i].as_int());
    return r;
}

json::Value outcome_to_record(const std::string& key,
                              const JobOutcome& outcome)
{
    json::Value v = json::Value::object();
    v["key"] = key;
    v["status"] = job_status_name(outcome.status);
    v["attempts"] = outcome.attempts;
    v["wall_ms"] = outcome.wall_ms;
    if (outcome.status == JobStatus::Ok)
        v["result"] = result_to_json(outcome.result);
    else
        v["error"] = outcome.error;
    if (!outcome.aux.is_null()) v["aux"] = outcome.aux;
    if (!outcome.forensics.is_null()) v["forensics"] = outcome.forensics;
    return v;
}

std::pair<std::string, JobOutcome> outcome_from_record(const json::Value& v)
{
    const std::string& key = v.at("key").as_string();
    if (key.empty()) throw json::JsonError{"record with empty key"};
    JobOutcome out;
    const auto status = job_status_from_name(v.at("status").as_string());
    if (!status)
        throw json::JsonError{"unknown status: " +
                              v.at("status").as_string()};
    out.status = *status;
    out.attempts = static_cast<unsigned>(v.at("attempts").as_int());
    out.wall_ms = v.at("wall_ms").as_double();
    if (out.status == JobStatus::Ok)
        out.result = result_from_json(v.at("result"));
    else
        out.error = v.at("error").as_string();
    if (const json::Value* aux = v.find("aux")) out.aux = *aux;
    if (const json::Value* f = v.find("forensics")) out.forensics = *f;
    return {key, std::move(out)};
}

// ---- the journal -------------------------------------------------------

Journal::Journal(std::string path, std::string bench, u64 fingerprint,
                 bool resume)
    : path_{std::move(path)}, bench_{std::move(bench)},
      fingerprint_{fingerprint}
{
    bool fresh = true;
    if (resume) {
        std::ifstream in{path_};
        if (in) {
            std::string line;
            std::size_t lineno = 0;
            bool have_header = false;
            while (std::getline(in, line)) {
                ++lineno;
                if (line.empty()) continue;
                fresh = false;
                try {
                    const json::Value v = json::Value::parse(line);
                    if (!have_header) {
                        if (v.at("journal_version").as_int() !=
                            kJournalVersion)
                            throw common::ToolchainError{
                                path_ + ": unsupported journal_version"};
                        if (v.at("bench").as_string() != bench_)
                            throw common::ToolchainError{
                                path_ + ": journal belongs to bench '" +
                                v.at("bench").as_string() +
                                "', refusing to resume '" + bench_ + "'"};
                        if (v.at("grid_hash").as_string() !=
                            hash_hex(fingerprint_))
                            throw common::ToolchainError{
                                path_ +
                                ": journal was written by a different "
                                "campaign grid (grid_hash " +
                                v.at("grid_hash").as_string() +
                                " != " + hash_hex(fingerprint_) +
                                "); delete it or pass a fresh --journal "
                                "path"};
                        have_header = true;
                        continue;
                    }
                    auto [key, outcome] = outcome_from_record(v);
                    outcome.from_journal = true;
                    records_.insert_or_assign(std::move(key),
                                              std::move(outcome));
                } catch (const json::JsonError& e) {
                    // The expected crash artifact: a half-written line.
                    // Diagnose and skip; everything before it replays.
                    ++corrupt_;
                    std::cerr << "[journal] " << path_ << ":" << lineno
                              << ": skipping malformed record ("
                              << e.what() << ")\n";
                }
            }
            if (!fresh && !have_header)
                throw common::ToolchainError{
                    path_ + ": no valid journal header; delete the file "
                            "or pass a fresh --journal path"};
            loaded_ = records_.size();
        }
    }

#ifdef HWST_JOURNAL_POSIX
    int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
    if (fresh) flags |= O_TRUNC;
    fd_ = ::open(path_.c_str(), flags, 0644);
    if (fd_ < 0)
        throw common::ToolchainError{"cannot open journal " + path_ +
                                     " for append"};
#else
    throw common::ToolchainError{
        "checkpoint journal requires a POSIX host"};
#endif
    if (fresh) {
        json::Value header = json::Value::object();
        header["journal_version"] = kJournalVersion;
        header["bench"] = bench_;
        header["grid_hash"] = hash_hex(fingerprint_);
        append_line(header.dump(0));
    }
}

Journal::~Journal()
{
#ifdef HWST_JOURNAL_POSIX
    if (fd_ >= 0) ::close(fd_);
#endif
}

const JobOutcome* Journal::find(const std::string& key) const
{
    std::lock_guard lock{mutex_};
    const auto it = records_.find(key);
    return it == records_.end() ? nullptr : &it->second;
}

void Journal::append_line(const std::string& line)
{
#ifdef HWST_JOURNAL_POSIX
    std::string buf = line;
    buf += '\n';
    std::size_t off = 0;
    while (off < buf.size()) {
        const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0)
            throw common::ToolchainError{"short write to journal " +
                                         path_};
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd_) != 0)
        throw common::ToolchainError{"fsync failed on journal " + path_};
#else
    (void)line;
#endif
}

void Journal::record(const std::string& key, const JobOutcome& outcome)
{
    std::lock_guard lock{mutex_};
    if (write_failed_) return;
    try {
        append_line(outcome_to_record(key, outcome).dump(0));
        records_.insert_or_assign(key, outcome);
    } catch (const std::exception& e) {
        // Durability degrades; the campaign itself keeps running.
        write_failed_ = true;
        std::cerr << "[journal] " << e.what()
                  << "; further checkpoints disabled\n";
    }
}

std::unique_ptr<Journal> open_journal(const GridOptions& grid,
                                      const std::string& bench,
                                      u64 fingerprint)
{
    if (!grid.journal && !grid.resume) return nullptr;
    const std::string path =
        grid.journal_path.empty() ? journal_path(bench) : grid.journal_path;
    return std::make_unique<Journal>(path, bench, fingerprint,
                                     grid.resume);
}

} // namespace hwst::exec
