// Cancellable Machine execution: the engine's bridge into src/sim. A
// job must be able to give up when its wall-clock budget expires, but
// sim::Machine::run() runs to completion — so run_machine steps the
// machine in chunks and polls the CancelToken between them, throwing
// JobTimeout when it expires (graceful: the Machine is simply dropped,
// nothing blocks). The chunked loop reproduces Machine::run() exactly —
// same fuel rule, same trap handling — so results are bit-identical to
// an uncancelled run.
#pragma once

#include "compiler/driver.hpp"
#include "exec/job.hpp"

namespace hwst::exec {

/// Instructions executed between CancelToken polls. Small enough that a
/// timeout is honoured within microseconds, large enough that the poll
/// is invisible next to the per-instruction simulation cost.
inline constexpr u64 kCancelCheckStride = 4096;

/// Run `machine` to completion or until `token` expires (JobTimeout).
sim::RunResult run_machine(sim::Machine& machine, const CancelToken& token);

/// Construct a Machine for the compiled program and run it cancellably.
sim::RunResult run_program(const riscv::Program& program,
                           const sim::MachineConfig& cfg,
                           const CancelToken& token);

/// The standard campaign job: compile `build()` under `scheme`, apply
/// the machine-config `tweak`, run cancellably. Everything happens
/// inside the body, on the worker thread, so jobs never share mutable
/// state. The job's journal `key` defaults to its name, so sim jobs
/// participate in --journal / --resume checkpointing out of the box.
Job make_sim_job(std::string name, std::string workload,
                 compiler::Scheme scheme,
                 std::function<mir::Module()> build,
                 std::function<void(sim::MachineConfig&)> tweak = {},
                 u64 seed = 0);

} // namespace hwst::exec
