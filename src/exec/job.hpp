// Job model of the campaign execution engine: a Job is one independent
// sim::Machine run (workload × scheme × machine-config tweak × seed)
// and a JobOutcome is what the worker hands back. Everything the figure
// harnesses and the fault campaign share lives here, so every
// campaign-style driver enumerates the same shape of work — and every
// driver inherits the durability layer (checkpoint journal, retry with
// backoff, quarantine, graceful shutdown) for free.
#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <optional>
#include <string>

#include "common/bitops.hpp"
#include "exec/json.hpp"
#include "exec/shutdown.hpp"
#include "sim/machine.hpp"

namespace hwst::exec {

using common::u64;

/// Cooperative cancellation handle passed to every job body. A job is
/// cancelled because its per-job wall-clock deadline passed, because
/// the engine's stop flag is set, or because a process-wide graceful
/// shutdown (SIGINT/SIGTERM) is in progress; long-running bodies must
/// poll `expired()` at a reasonable granularity (run_machine does this
/// every few thousand simulated instructions).
/// Bump the per-process job-progress counter (one tick per CancelToken
/// poll, i.e. every few thousand simulated instructions). Isolated
/// workers report it in their heartbeats, so a crash forensic record
/// can say how far the job got (exec/process.cpp).
void note_worker_progress();

class CancelToken {
public:
    CancelToken() = default;
    CancelToken(std::optional<std::chrono::steady_clock::time_point> deadline,
                const std::atomic<bool>* stop)
        : deadline_{deadline}, stop_{stop}
    {
    }

    bool expired() const
    {
        note_worker_progress();
        if (shutdown_requested()) return true;
        if (stop_ && stop_->load(std::memory_order_relaxed)) return true;
        return deadline_ &&
               std::chrono::steady_clock::now() >= *deadline_;
    }

private:
    std::optional<std::chrono::steady_clock::time_point> deadline_;
    const std::atomic<bool>* stop_ = nullptr;
};

/// Thrown by a job body when it observed its CancelToken expire and
/// unwound gracefully. The engine converts it into JobStatus::Timeout
/// (or Skipped when the expiry came from a shutdown) — it never escapes
/// Engine::run.
class JobTimeout : public std::runtime_error {
public:
    explicit JobTimeout(const std::string& what) : std::runtime_error{what} {}
};

enum class JobStatus : common::u8 {
    Ok,          ///< body completed and returned a RunResult
    Timeout,     ///< body observed its deadline and unwound (JobTimeout)
    Error,       ///< body threw any other exception (message captured)
    Crashed,     ///< isolated worker died (signal / nonzero exit) or hung
    Quarantined, ///< exhausted its --retries budget on timeout/error/crash
    Skipped,     ///< never ran / was cancelled by a graceful shutdown
};

constexpr std::string_view job_status_name(JobStatus s)
{
    switch (s) {
    case JobStatus::Ok: return "ok";
    case JobStatus::Timeout: return "timeout";
    case JobStatus::Error: return "error";
    case JobStatus::Crashed: return "crashed";
    case JobStatus::Quarantined: return "quarantined";
    case JobStatus::Skipped: return "skipped";
    }
    return "unknown";
}

constexpr std::optional<JobStatus> job_status_from_name(std::string_view s)
{
    for (const JobStatus k :
         {JobStatus::Ok, JobStatus::Timeout, JobStatus::Error,
          JobStatus::Crashed, JobStatus::Quarantined, JobStatus::Skipped}) {
        if (job_status_name(k) == s) return k;
    }
    return std::nullopt;
}

/// Everything a body receives for one attempt at one job. `attempt` is
/// 0 on the first try and counts up across --retries; `seed` is the
/// job's seed on attempt 0 and an attempt-indexed re-derivation after,
/// so a flaky body never replays the exact draw that hung it. `aux` (if
/// non-null) is a side-channel the body may fill with a JSON payload to
/// be persisted alongside the outcome in the checkpoint journal
/// (Engine::map uses it to round-trip typed per-job results).
struct JobContext {
    CancelToken token;
    unsigned attempt = 0;
    u64 seed = 0;
    json::Value* aux = nullptr;

    bool expired() const { return token.expired(); }
};

/// One unit of campaign work. `workload`/`scheme`/`seed` are the grid
/// coordinates (informational: they name the job in progress lines and
/// JSON rows); `key` is the checkpoint-journal identity (empty = never
/// journaled); `body` does the actual run. make_sim_job() builds the
/// common compile-and-run body; harnesses with bespoke emitters or
/// fault injectors supply their own.
struct Job {
    std::string name;     ///< unique display name, e.g. "bzip2/hwst128"
    std::string workload;
    std::string scheme;
    u64 seed = 0;
    std::string key;      ///< journal key; empty opts out of the journal
    std::function<sim::RunResult(const JobContext&)> body;
    /// Force this job onto the caller's process even under --isolate:
    /// its body hands results back through captured references (golden
    /// compiles, host-timing cells) that cannot cross a fork.
    bool in_process = false;
};

/// What the engine hands back for one Job, in the job's grid slot:
/// results are stored by index, never by completion order, so merging
/// them in enumeration order is deterministic at any thread count.
struct JobOutcome {
    JobStatus status = JobStatus::Ok;
    sim::RunResult result;   ///< valid only when status == Ok
    std::string error;       ///< JobTimeout / exception message otherwise
    double wall_ms = 0.0;    ///< host wall-clock time spent in the body
    unsigned attempts = 1;   ///< body invocations (0 when skipped)
    bool from_journal = false; ///< replayed from the checkpoint journal
    bool from_cache = false; ///< served from the content-addressed cache
    bool isolated = false;   ///< ran in a worker subprocess (--isolate)
    json::Value aux;         ///< body side-channel (journal-persisted)
    /// Failure-taxonomy record (journal-persisted when non-null): exit
    /// status / terminating signal / last-reported progress of a dead
    /// worker, or the sentinel's divergence report.
    json::Value forensics;
};

/// Deterministic per-job seed: a SplitMix64-style mix of the root seed
/// with the job's grid coordinates. The same (root, salts...) always
/// yields the same seed, independent of enumeration or thread order, so
/// serial and parallel campaigns draw identical randomness.
template <typename... Salts>
u64 derive_seed(u64 root, Salts... salts)
{
    u64 z = root;
    for (const u64 salt : {static_cast<u64>(salts)...}) {
        z += 0x9E3779B97F4A7C15ULL + salt;
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
        z ^= z >> 31;
    }
    return z;
}

/// The attempt-indexed seed rule shared by the engine and any body that
/// derives extra randomness itself: attempt 0 reproduces `base` exactly
/// (so retry-free campaigns are byte-identical to the pre-retry world),
/// later attempts re-derive.
inline u64 attempt_seed(u64 base, unsigned attempt)
{
    return attempt == 0 ? base : derive_seed(base, attempt);
}

} // namespace hwst::exec
