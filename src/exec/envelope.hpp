// Campaign: the shared harness scaffold every BENCH envelope writer
// (fig4/fig5/fig6/ablations/fault_campaign, hwst_run's grid mode, the
// campaign server) used to open-code — signal handlers, the checkpoint
// journal, the optional content-addressed result cache, the wall clock,
// the engine, and the envelope write + exit-code policy. Factoring it
// here means a new harness cannot forget a durability feature and the
// five existing ones cannot drift apart (docs/execution.md,
// docs/serving.md).
//
// Canonical shape:
//
//   exec::Campaign campaign{"fig5", grid, exec::grid_fingerprint(jobs)};
//   serve::attach_cache(campaign, grid);
//   const auto outcomes = campaign.run(jobs);
//   ... fold outcomes into payload ...
//   return campaign.finish(payload, jobs, outcomes, bad_result);
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "exec/cli.hpp"
#include "exec/engine.hpp"
#include "exec/journal.hpp"
#include "exec/report.hpp"

namespace hwst::exec {

/// The git revision this binary was built from ("unknown" outside a
/// checkout). Captured at configure time into hwst_exec, so every
/// harness — and every cache cell record — names its producer without
/// each CMake target redefining the macro.
std::string build_git_rev();

class Campaign {
public:
    /// Installs the SIGINT/SIGTERM handlers, opens the journal the grid
    /// options ask for (throws common::ToolchainError on a mismatched
    /// --resume) and starts the wall clock. `fingerprint` comes from
    /// grid_fingerprint() and also keys the result cache.
    Campaign(std::string bench, const GridOptions& grid, u64 fingerprint);

    const std::string& bench() const { return bench_; }
    const GridOptions& grid() const { return grid_; }
    u64 fingerprint() const { return fingerprint_; }
    Journal* journal() const { return journal_.get(); }
    CellStore* cache() const { return cache_.get(); }

    /// Attach the owned content-addressed cell store (normally
    /// serve::open_cache's return value; nullptr — no --cache — is a
    /// no-op). Call before run()/map().
    void attach_cache(std::unique_ptr<CellStore> cache);

    /// grid.engine() with the journal and cache wired in.
    EngineOptions engine_options() const;

    /// Run a grid on the engine (usable repeatedly — ablations runs
    /// five sub-grids through one Campaign).
    std::vector<JobOutcome> run(std::span<const Job> jobs) const
    {
        return Engine{engine_options()}.run(jobs);
    }

    /// Engine::map with the campaign's durability options.
    template <typename R>
    std::vector<JobOutcome> map(
        std::size_t count,
        const std::function<R(std::size_t, const JobContext&)>& fn,
        std::vector<R>& out, const MapCodec<R>& codec = {}) const
    {
        return Engine{engine_options()}.map<R>(count, fn, out, codec);
    }

    /// Milliseconds since construction.
    double wall_ms() const { return stopwatch_.elapsed_ms(); }

    /// Write the BENCH envelope (payload + the cache's host-side stats
    /// when one is attached), print "wrote <path>" and return the path.
    /// Call only when grid().json.
    std::string write(const json::Value& payload) const;

    /// The shared harness epilogue: append payload["summary"], write
    /// the envelope when --json is on, and fold the exit-code policy —
    /// grid_exit_code's 130-partial/1-failed rule plus the bad_result
    /// rule (a job that ran Ok but produced a wrong answer fails the
    /// campaign unless --keep-going).
    int finish(json::Value payload, std::span<const Job> jobs,
               std::span<const JobOutcome> outcomes,
               bool bad_result = false) const;

private:
    std::string bench_;
    GridOptions grid_;
    u64 fingerprint_ = 0;
    std::unique_ptr<Journal> journal_;
    std::unique_ptr<CellStore> cache_;
    Stopwatch stopwatch_;
};

} // namespace hwst::exec
