#include "exec/supervisor.hpp"

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <mutex>

#include "common/env.hpp"
#include "exec/engine.hpp"
#include "exec/journal.hpp"
#include "exec/process.hpp"
#include "exec/report.hpp"

namespace hwst::exec {

JobOutcome attempt_in_process(const Job& job, const CancelToken& token,
                              unsigned attempt)
{
    JobOutcome out;
    out.attempts = attempt + 1;
    json::Value aux;
    const JobContext ctx{token, attempt, attempt_seed(job.seed, attempt),
                         &aux};
    const auto t0 = std::chrono::steady_clock::now();
    try {
        out.result = job.body(ctx);
        out.status = JobStatus::Ok;
    } catch (const JobTimeout& e) {
        out.status = JobStatus::Timeout;
        out.error = e.what();
    } catch (const std::exception& e) {
        out.status = JobStatus::Error;
        out.error = e.what();
    }
    out.wall_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
    out.aux = std::move(aux);
    return out;
}

namespace {

std::string signal_description(int sig)
{
#if defined(__unix__) || defined(__APPLE__)
    if (const char* s = ::strsignal(sig))
        return std::string{s} + " (signal " + std::to_string(sig) + ")";
#endif
    return "signal " + std::to_string(sig);
}

WorkerRequest worker_request(const SuperviseOptions& opts,
                             bool force_interpreter)
{
    WorkerRequest req;
    req.timeout = opts.timeout;
    req.grace = opts.grace;
    req.heartbeat = opts.heartbeat;
    req.rlimit_mb = opts.rlimit_mb;
    req.rlimit_cpu_s = opts.rlimit_cpu_s;
    req.force_interpreter = force_interpreter;
    req.stop = opts.stop;
    return req;
}

/// WorkerReport -> JobOutcome: a reported record wins outright; a dead
/// or hung worker becomes a first-class Crashed/Timeout outcome with a
/// forensic record instead of taking the campaign down.
JobOutcome classify_report(const WorkerReport& rep, unsigned attempt)
{
    if (rep.has_record) {
        try {
            auto [key, out] = outcome_from_record(rep.record);
            out.from_journal = false;
            out.isolated = true;
            return out;
        } catch (const json::JsonError&) {
            // Fall through: a record that fails validation is treated
            // like a torn one.
        }
    }

    JobOutcome out;
    out.attempts = attempt + 1;
    out.isolated = true;
    out.wall_ms = rep.wall_ms;

    if (!rep.spawn_error.empty()) {
        // The worker never existed; an ordinary (retriable) host error.
        out.status = JobStatus::Error;
        out.error = "worker spawn failed: " + rep.spawn_error;
        return out;
    }

    json::Value f = json::Value::object();
    const char* cause = rep.hard_timeout ? "hard-timeout"
                        : rep.hung       ? "watchdog"
                        : rep.torn_record || rep.has_record
                            ? "torn-record"
                            : "crash";
    f["cause"] = cause;
    if (rep.term_signal != 0) {
        f["signal"] = rep.term_signal;
        f["signal_name"] = signal_description(rep.term_signal);
    }
    if (rep.exit_status >= 0) f["exit_status"] = rep.exit_status;
    f["last_progress"] = rep.last_progress;
    f["heartbeats"] = rep.heartbeats;
    out.forensics = f;

    const std::string death =
        rep.term_signal != 0
            ? "killed by " + signal_description(rep.term_signal)
            : "exited with status " + std::to_string(rep.exit_status);
    if (rep.hard_timeout) {
        out.status = JobStatus::Timeout;
        out.error = "hard timeout: worker ignored its deadline and was " +
                    death;
    } else if (rep.hung) {
        out.status = JobStatus::Crashed;
        out.error = "worker hung: heartbeat watchdog fired after " +
                    std::to_string(rep.heartbeats) + " beats; " + death;
    } else {
        out.status = JobStatus::Crashed;
        out.error = "worker died without reporting: " + death;
    }
    return out;
}

} // namespace

JobOutcome attempt_isolated(const Job& job, unsigned attempt,
                            const SuperviseOptions& opts)
{
    const WorkerReport rep =
        run_worker(job, attempt, worker_request(opts, false));
    return classify_report(rep, attempt);
}

bool sentinel_sampled(const Job& job, unsigned sentinel)
{
    if (sentinel == 0) return false;
    if (sentinel <= 1) return true;
    const std::string& id = job.key.empty() ? job.name : job.key;
    return derive_seed(job.seed, fnv1a(id)) % sentinel == 0;
}

JobOutcome sentinel_check(const Job& job, unsigned attempt,
                          const SuperviseOptions& opts, JobOutcome primary)
{
    // With the accelerated tiers forced off globally (HWST_DBT=0 or
    // HWST_TIER=interp) both runs would use the interpreter: nothing to
    // cross-check.
    if (common::env_flag("HWST_DBT") == std::optional<bool>{false})
        return primary;
    if (common::env_choice("HWST_TIER",
                           {"auto", "interp", "dbt", "jit"}) ==
        std::optional<unsigned>{1})
        return primary;

    // The sibling runs the identical attempt (same attempt-indexed
    // seed) in a fresh worker forced onto the pure interpreter — a
    // fresh process is, among other things, a flushed block cache.
    const WorkerReport rep =
        run_worker(job, attempt, worker_request(opts, true));
    JobOutcome reference = classify_report(rep, attempt);

    json::Value note = json::Value::object();
    if (reference.status != JobStatus::Ok) {
        // Advisory only: the cross-check itself failing must not
        // invalidate a job that completed.
        note["verdict"] = "reference-failed";
        note["status"] = job_status_name(reference.status);
        note["error"] = reference.error;
        if (primary.forensics.is_null())
            primary.forensics = json::Value::object();
        primary.forensics["sentinel"] = note;
        return primary;
    }

    // The json_check --equiv comparator, applied to the two records:
    // strip host-side fields, then require byte equality.
    const std::string a =
        strip_host_fields(outcome_to_record("sentinel", primary)).dump(0);
    const std::string b =
        strip_host_fields(outcome_to_record("sentinel", reference))
            .dump(0);
    if (a == b) {
        note["verdict"] = "match";
        if (primary.forensics.is_null())
            primary.forensics = json::Value::object();
        primary.forensics["sentinel"] = note;
        return primary;
    }

    // Divergence: the accelerated tier (superblock dispatcher or the
    // tier-2 JIT, whichever the primary resolved to) broke the
    // determinism contract for this job. Degrade gracefully — the
    // interpreter result is ground truth — and journal a full
    // divergence report.
    note["verdict"] = "divergence";
    note["dbt_result"] = result_to_json(primary.result);
    note["interpreter_result"] = result_to_json(reference.result);
    reference.forensics = json::Value::object();
    reference.forensics["sentinel"] = note;
    {
        static std::mutex mutex;
        const std::lock_guard lock{mutex};
        std::cerr << "[sentinel] " << job.name
                  << ": accelerated tier diverged from the interpreter; "
                     "degraded to the interpreter result (divergence "
                     "report journaled)\n";
    }
    return reference;
}

unsigned sentinel_from_env()
{
    const char* e = std::getenv("HWST_SENTINEL");
    if (!e) return 0;
    if (const auto b = common::parse_bool_flag(e))
        return *b ? kDefaultSentinelRate : 0;
    char* end = nullptr;
    const unsigned long v = std::strtoul(e, &end, 10);
    if (end != e && *end == '\0' && v > 0)
        return static_cast<unsigned>(v);
    std::cerr << "[env] HWST_SENTINEL='" << e
              << "' is neither a boolean nor a positive sample rate; "
                 "ignoring\n";
    return 0;
}

} // namespace hwst::exec
