#include "exec/shutdown.hpp"

#include <csignal>
#include <cstdlib>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace hwst::exec {

std::atomic<bool>& shutdown_flag()
{
    static std::atomic<bool> flag{false};
    return flag;
}

void request_shutdown()
{
    shutdown_flag().store(true, std::memory_order_relaxed);
}

void clear_shutdown()
{
    shutdown_flag().store(false, std::memory_order_relaxed);
}

namespace {

// Async-signal-safe: one atomic exchange plus (optionally) write(2).
extern "C" void on_signal(int)
{
    if (shutdown_flag().exchange(true, std::memory_order_relaxed)) {
        // Second signal: the cooperative drain is not fast enough for
        // the user — stop immediately, without flushing anything more.
        std::_Exit(130);
    }
#if defined(__unix__) || defined(__APPLE__)
    static const char msg[] =
        "\n[exec] shutdown requested: draining in-flight jobs, flushing "
        "journal (signal again to abort)\n";
    // The return value is deliberately ignored; there is nothing a
    // signal handler could do about a failed diagnostic write.
    const auto ignored = write(2, msg, sizeof msg - 1);
    (void)ignored;
#endif
}

} // namespace

void install_signal_handlers()
{
    static bool installed = false;
    if (installed) return;
    installed = true;
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
}

} // namespace hwst::exec
