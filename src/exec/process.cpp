#include "exec/process.hpp"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "common/error.hpp"
#include "exec/journal.hpp"
#include "exec/shutdown.hpp"
#include "exec/supervisor.hpp"
#include "sim/machine.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/resource.h>
#include <sys/time.h>
#include <sys/wait.h>
#include <unistd.h>
#define HWST_PROCESS_POSIX 1
#endif

namespace hwst::exec {

namespace {

/// Progress ticks since this process (or worker child) started its
/// current job: one per CancelToken poll, bumped from the simulation
/// hot loop via note_worker_progress(). Read by the heartbeat signal
/// handler, so it must be a lock-free atomic.
std::atomic<u64>& worker_progress()
{
    static std::atomic<u64> ticks{0};
    return ticks;
}

} // namespace

void note_worker_progress()
{
    worker_progress().fetch_add(1, std::memory_order_relaxed);
}

bool isolation_supported()
{
#ifdef HWST_PROCESS_POSIX
    return true;
#else
    return false;
#endif
}

#ifdef HWST_PROCESS_POSIX

namespace {

using clock = std::chrono::steady_clock;

/// Write the whole buffer, retrying on EINTR/short writes. Returns
/// false on a hard error (parent gone -> EPIPE with SIGPIPE ignored).
bool write_all(int fd, const char* data, std::size_t len)
{
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::write(fd, data + off, len - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

// ---- the worker child ------------------------------------------------

/// Heartbeat state for the async-signal handler. Plain ints/atomics
/// only: the handler runs between arbitrary instructions of the body.
int g_heartbeat_fd = -1;

/// "H <progress>\n", formatted without the (non-async-signal-safe)
/// printf family. A heartbeat is one short write, far below PIPE_BUF,
/// so it is atomic and can never interleave with itself.
extern "C" void on_heartbeat(int)
{
    const int saved_errno = errno;
    if (g_heartbeat_fd >= 0) {
        char buf[32];
        char* p = buf + sizeof buf;
        *--p = '\n';
        u64 n = worker_progress().load(std::memory_order_relaxed);
        do {
            *--p = static_cast<char>('0' + n % 10);
            n /= 10;
        } while (n != 0);
        *--p = ' ';
        *--p = 'H';
        const auto ignored =
            ::write(g_heartbeat_fd, p,
                    static_cast<std::size_t>(buf + sizeof buf - p));
        (void)ignored;
    }
    errno = saved_errno;
}

extern "C" void on_worker_term(int)
{
    // Cooperative half of the kill escalation: the child's CancelToken
    // observes the shutdown flag and unwinds with a Timeout record.
    // Only if it ignores this does the parent escalate to SIGKILL.
    shutdown_flag().store(true, std::memory_order_relaxed);
}

void apply_rlimit(int resource, u64 value)
{
    struct rlimit rl;
    rl.rlim_cur = static_cast<rlim_t>(value);
    rl.rlim_max = static_cast<rlim_t>(value);
    // Failure to cage is not failure to run: keep going uncapped (the
    // supervisor still has the watchdog and the hard deadline).
    (void)::setrlimit(resource, &rl);
}

[[noreturn]] void worker_main(int fd, const Job& job, unsigned attempt,
                              const WorkerRequest& req)
{
    // Single-threaded from here on (fork keeps only the calling
    // thread). A dying parent must surface as EPIPE, not SIGPIPE.
    std::signal(SIGPIPE, SIG_IGN);
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, on_worker_term);
    clear_shutdown();
    worker_progress().store(0, std::memory_order_relaxed);

    if (req.rlimit_mb > 0) apply_rlimit(RLIMIT_AS, req.rlimit_mb << 20);
    if (req.rlimit_cpu_s > 0) apply_rlimit(RLIMIT_CPU, req.rlimit_cpu_s);
    if (req.force_interpreter) sim::force_interpreter(true);

    if (req.heartbeat.count() > 0) {
        g_heartbeat_fd = fd;
        struct sigaction sa = {};
        sa.sa_handler = on_heartbeat;
        sa.sa_flags = SA_RESTART;
        ::sigemptyset(&sa.sa_mask);
        ::sigaction(SIGALRM, &sa, nullptr);
        struct itimerval tv = {};
        tv.it_interval.tv_sec = req.heartbeat.count() / 1000;
        tv.it_interval.tv_usec = (req.heartbeat.count() % 1000) * 1000;
        tv.it_value = tv.it_interval;
        ::setitimer(ITIMER_REAL, &tv, nullptr);
    }

    int exit_code = 0;
    try {
        std::optional<clock::time_point> deadline;
        if (req.timeout.count() > 0)
            deadline = clock::now() + req.timeout;
        // No extra stop flag: SIGTERM -> shutdown flag covers stops.
        const CancelToken token{deadline, nullptr};
        const JobOutcome out = attempt_in_process(job, token, attempt);

        // Disarm the heartbeat and block SIGALRM before the record
        // write: a beat spliced mid-record would tear the final line.
        struct itimerval off = {};
        ::setitimer(ITIMER_REAL, &off, nullptr);
        g_heartbeat_fd = -1;
        sigset_t block;
        ::sigemptyset(&block);
        ::sigaddset(&block, SIGALRM);
        ::sigprocmask(SIG_BLOCK, &block, nullptr);

        const std::string key = job.name.empty() ? "#" : job.name;
        const std::string line =
            "R " + outcome_to_record(key, out).dump(0) + "\n";
        if (!write_all(fd, line.data(), line.size())) exit_code = 4;
    } catch (...) {
        // The attempt itself never throws; this is the host failing to
        // build or serialize the record (e.g. bad_alloc under
        // RLIMIT_AS). A distinct exit status so forensics can tell.
        exit_code = 3;
    }
    // _exit, not exit: no atexit handlers, no static destructors — the
    // child shares the parent's entire C++ runtime state.
    ::_exit(exit_code);
}

// ---- the parent supervisor -------------------------------------------

std::string errno_string(const char* what)
{
    return std::string{what} + ": " + std::strerror(errno);
}

} // namespace

WorkerReport run_worker(const Job& job, unsigned attempt,
                        const WorkerRequest& req)
{
    WorkerReport rep;
    int fds[2];
    if (::pipe(fds) != 0) {
        rep.spawn_error = errno_string("pipe");
        return rep;
    }

    // Buffered stdio duplicates across fork; flush so a worker can
    // never replay half a table when it crashes mid-write.
    std::cout.flush();
    std::cerr.flush();

    const auto t0 = clock::now();
    const pid_t pid = ::fork();
    if (pid < 0) {
        rep.spawn_error = errno_string("fork");
        ::close(fds[0]);
        ::close(fds[1]);
        return rep;
    }
    if (pid == 0) {
        ::close(fds[0]);
        worker_main(fds[1], job, attempt, req); // never returns
    }
    ::close(fds[1]);
    const int fd = fds[0];

    const auto stop_requested = [&req] {
        return shutdown_requested() ||
               (req.stop && req.stop->load(std::memory_order_relaxed));
    };

    // Hard deadline: the child gets its full cooperative budget plus
    // one grace period to unwind and report before SIGTERM.
    std::optional<clock::time_point> hard_deadline;
    if (req.timeout.count() > 0)
        hard_deadline = t0 + req.timeout + req.grace;
    const auto hang_window = req.heartbeat * 8;

    std::string buf;
    std::string record_line;
    auto last_beat = t0;
    bool term_sent = false;
    bool kill_sent = false;
    std::optional<clock::time_point> kill_at;

    const auto send_term = [&](clock::time_point now) {
        if (term_sent) return;
        term_sent = true;
        kill_at = now + req.grace;
        (void)::kill(pid, SIGTERM);
    };

    for (;;) {
        const auto now = clock::now();
        if (term_sent && !kill_sent && now >= *kill_at) {
            kill_sent = true;
            (void)::kill(pid, SIGKILL);
        } else if (!term_sent) {
            if (hard_deadline && now >= *hard_deadline) {
                rep.hard_timeout = true;
                send_term(now);
            } else if (req.heartbeat.count() > 0 &&
                       now - last_beat >= hang_window) {
                // No heartbeat for 8 periods: the worker is wedged in
                // a way even SIGALRM can't interrupt (or blocked it).
                rep.hung = true;
                send_term(now);
            } else if (stop_requested()) {
                // Graceful shutdown: forward it; the child drains
                // cooperatively and reports, or eats the escalation.
                send_term(now);
            }
        }

        struct pollfd pfd = {};
        pfd.fd = fd;
        pfd.events = POLLIN;
        const int pr = ::poll(&pfd, 1, 20);
        if (pr < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (pr == 0) continue;

        char chunk[4096];
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n < 0) {
            if (errno == EINTR) continue;
            break;
        }
        if (n == 0) break; // EOF: the child exited (or was killed)
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            if (line.rfind("H ", 0) == 0) {
                ++rep.heartbeats;
                last_beat = clock::now();
                rep.last_progress =
                    std::strtoull(line.c_str() + 2, nullptr, 10);
            } else if (line.rfind("R ", 0) == 0) {
                record_line = line.substr(2);
            }
        }
    }
    ::close(fd);

    // A partial record line at EOF is the torn-write crash artifact.
    if (record_line.empty() && buf.rfind("R ", 0) == 0)
        rep.torn_record = true;

    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    rep.wall_ms = std::chrono::duration<double, std::milli>(clock::now() -
                                                            t0)
                      .count();
    if (WIFEXITED(status)) rep.exit_status = WEXITSTATUS(status);
    if (WIFSIGNALED(status)) rep.term_signal = WTERMSIG(status);

    if (!record_line.empty()) {
        try {
            rep.record = json::Value::parse(record_line);
            rep.has_record = true;
        } catch (const json::JsonError&) {
            rep.torn_record = true;
        }
    }
    return rep;
}

#else // !HWST_PROCESS_POSIX

WorkerReport run_worker(const Job&, unsigned, const WorkerRequest&)
{
    throw common::ToolchainError{
        "process isolation requires a POSIX host (fork/pipe/poll)"};
}

#endif

} // namespace hwst::exec
