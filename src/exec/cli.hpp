// Shared command-line vocabulary for campaign drivers: every harness
// that fans out over the engine accepts the same --jobs / --json /
// --timeout-ms / --smoke flags — and the durability vocabulary
// (--retries / --backoff-ms / --journal / --resume / --keep-going) —
// with the same semantics, parsed by one helper so the flags cannot
// drift apart.
#pragma once

#include <string>

#include "common/error.hpp"
#include "exec/engine.hpp"

namespace hwst::exec {

struct GridOptions {
    unsigned jobs = 0;        ///< 0 = HWST_JOBS / hardware_concurrency
    std::string json_path;    ///< explicit --json PATH ("" = default)
    bool json = true;         ///< --no-json disables the BENCH file
    u64 timeout_ms = 0;       ///< 0 = no per-job timeout
    bool smoke = false;       ///< tiny grid for CI smoke runs
    bool progress = false;    ///< live progress line on stderr
    unsigned retries = 0;     ///< retry budget for timeout/error jobs
    u64 backoff_ms = 100;     ///< base retry backoff (doubles/attempt)
    bool journal = false;     ///< --journal: checkpoint finished jobs
    std::string journal_path; ///< explicit --journal PATH ("" = default)
    bool resume = false;      ///< replay finished jobs from the journal
    bool keep_going = false;  ///< exit 0 despite failed/quarantined jobs
    bool isolate = false;     ///< fork one caged worker per job attempt
    u64 rlimit_mb = 0;        ///< worker RLIMIT_AS cap in MiB (0 = off)
    u64 rlimit_cpu_s = 0;     ///< worker RLIMIT_CPU cap in s (0 = off)
    unsigned sentinel = 0;    ///< 1-in-N DBT divergence sentinel (0 = off)
    std::string cache_dir;    ///< --cache DIR: content-addressed cache root
    u64 cache_mb = 0;         ///< --cache-mb N: eviction bound (0 = none)

    EngineOptions engine() const
    {
        return EngineOptions{
            .jobs = jobs,
            .timeout = std::chrono::milliseconds{timeout_ms},
            .progress = progress,
            .retries = retries,
            .backoff = std::chrono::milliseconds{backoff_ms},
            .isolate = isolate,
            .rlimit_mb = rlimit_mb,
            .rlimit_cpu_s = rlimit_cpu_s,
            .sentinel = sentinel,
        };
    }
};

/// Try to consume argv[i] (and possibly argv[i+1]) as one of the shared
/// grid flags. Returns true and advances `i` past the flag when it
/// matched; the caller handles its own flags otherwise.
inline bool parse_grid_flag(GridOptions& o, int argc, char** argv, int& i)
{
    const std::string a = argv[i];
    const auto need = [&](const char* what) -> std::string {
        if (i + 1 >= argc)
            throw common::ToolchainError{std::string{what} +
                                         " needs an argument"};
        return argv[++i];
    };
    if (a == "--jobs") {
        o.jobs = static_cast<unsigned>(std::stoul(need("--jobs")));
        if (o.jobs == 0)
            throw common::ToolchainError{"--jobs must be >= 1"};
        return true;
    }
    if (a == "--json") {
        // --json takes an optional path: treat a following non-flag
        // token as the path.
        o.json = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') o.json_path = argv[++i];
        return true;
    }
    if (a == "--no-json") {
        o.json = false;
        return true;
    }
    if (a == "--timeout-ms") {
        o.timeout_ms = std::stoull(need("--timeout-ms"));
        return true;
    }
    if (a == "--smoke") {
        o.smoke = true;
        return true;
    }
    if (a == "--progress") {
        o.progress = true;
        return true;
    }
    if (a == "--retries") {
        o.retries = static_cast<unsigned>(std::stoul(need("--retries")));
        return true;
    }
    if (a == "--backoff-ms") {
        o.backoff_ms = std::stoull(need("--backoff-ms"));
        return true;
    }
    if (a == "--journal") {
        // Like --json, --journal takes an optional path.
        o.journal = true;
        if (i + 1 < argc && argv[i + 1][0] != '-')
            o.journal_path = argv[++i];
        return true;
    }
    if (a == "--resume") {
        // Resuming implies journaling: the replayed campaign keeps
        // appending the jobs it finishes this time around.
        o.resume = true;
        o.journal = true;
        return true;
    }
    if (a == "--keep-going") {
        o.keep_going = true;
        return true;
    }
    if (a == "--isolate") {
        o.isolate = true;
        return true;
    }
    if (a == "--rlimit-mb") {
        // Caging a worker only makes sense with workers to cage.
        o.rlimit_mb = std::stoull(need("--rlimit-mb"));
        o.isolate = true;
        return true;
    }
    if (a == "--rlimit-cpu-s") {
        o.rlimit_cpu_s = std::stoull(need("--rlimit-cpu-s"));
        o.isolate = true;
        return true;
    }
    if (a == "--cache") {
        o.cache_dir = need("--cache");
        return true;
    }
    if (a == "--cache-mb") {
        o.cache_mb = std::stoull(need("--cache-mb"));
        return true;
    }
    if (a == "--sentinel") {
        // Optional rate: bare --sentinel samples 1-in-4 by default.
        o.sentinel = kDefaultSentinelRate;
        if (i + 1 < argc && argv[i + 1][0] != '-') {
            o.sentinel =
                static_cast<unsigned>(std::stoul(argv[++i]));
            if (o.sentinel == 0)
                throw common::ToolchainError{"--sentinel rate must be >= 1"};
        }
        o.isolate = true;
        return true;
    }
    return false;
}

inline constexpr const char* kGridFlagsHelp =
    "  --jobs N         worker threads (default: HWST_JOBS or all cores)\n"
    "  --json [PATH]    write BENCH_<name>.json (default on; PATH "
    "overrides)\n"
    "  --no-json        skip the BENCH json file\n"
    "  --timeout-ms T   per-job wall-clock budget (0 = unlimited)\n"
    "  --smoke          tiny grid for CI smoke runs\n"
    "  --progress       live progress line on stderr\n"
    "  --retries N      retry timeout/error jobs up to N times with\n"
    "                   exponential backoff; exhaustion -> quarantined\n"
    "  --backoff-ms T   base retry backoff, doubles per attempt "
    "(default 100)\n"
    "  --journal [PATH] append each finished job to a fsync'd checkpoint\n"
    "                   journal (default BENCH_<name>.journal)\n"
    "  --resume         replay finished jobs from the journal, run the "
    "rest\n"
    "  --keep-going     exit 0 even when jobs failed or were "
    "quarantined\n"
    "  --isolate        run each job attempt in a forked worker process;\n"
    "                   crashes/hangs become quarantinable outcomes\n"
    "  --rlimit-mb N    cap each worker's address space at N MiB "
    "(implies\n"
    "                   --isolate)\n"
    "  --rlimit-cpu-s N cap each worker's CPU time at N seconds "
    "(implies\n"
    "                   --isolate)\n"
    "  --cache DIR      serve finished cells from the content-addressed\n"
    "                   result cache at DIR and publish fresh ones "
    "back\n"
    "  --cache-mb N     evict least-recently-used cache cells beyond N "
    "MiB\n"
    "  --sentinel [N]   re-run 1-in-N successful jobs (default 4) under "
    "the\n"
    "                   pure interpreter and compare; divergence "
    "degrades\n"
    "                   the job to the interpreter result (implies "
    "--isolate)\n";

} // namespace hwst::exec
