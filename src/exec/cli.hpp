// Shared command-line vocabulary for campaign drivers: every harness
// that fans out over the engine accepts the same --jobs / --json /
// --timeout-ms / --smoke flags — and the durability vocabulary
// (--retries / --backoff-ms / --journal / --resume / --keep-going) —
// with the same semantics, parsed by one helper so the flags cannot
// drift apart.
#pragma once

#include <string>

#include "common/error.hpp"
#include "exec/engine.hpp"

namespace hwst::exec {

struct GridOptions {
    unsigned jobs = 0;        ///< 0 = HWST_JOBS / hardware_concurrency
    std::string json_path;    ///< explicit --json PATH ("" = default)
    bool json = true;         ///< --no-json disables the BENCH file
    u64 timeout_ms = 0;       ///< 0 = no per-job timeout
    bool smoke = false;       ///< tiny grid for CI smoke runs
    bool progress = false;    ///< live progress line on stderr
    unsigned retries = 0;     ///< retry budget for timeout/error jobs
    u64 backoff_ms = 100;     ///< base retry backoff (doubles/attempt)
    bool journal = false;     ///< --journal: checkpoint finished jobs
    std::string journal_path; ///< explicit --journal PATH ("" = default)
    bool resume = false;      ///< replay finished jobs from the journal
    bool keep_going = false;  ///< exit 0 despite failed/quarantined jobs

    EngineOptions engine() const
    {
        return EngineOptions{
            .jobs = jobs,
            .timeout = std::chrono::milliseconds{timeout_ms},
            .progress = progress,
            .retries = retries,
            .backoff = std::chrono::milliseconds{backoff_ms},
        };
    }
};

/// Try to consume argv[i] (and possibly argv[i+1]) as one of the shared
/// grid flags. Returns true and advances `i` past the flag when it
/// matched; the caller handles its own flags otherwise.
inline bool parse_grid_flag(GridOptions& o, int argc, char** argv, int& i)
{
    const std::string a = argv[i];
    const auto need = [&](const char* what) -> std::string {
        if (i + 1 >= argc)
            throw common::ToolchainError{std::string{what} +
                                         " needs an argument"};
        return argv[++i];
    };
    if (a == "--jobs") {
        o.jobs = static_cast<unsigned>(std::stoul(need("--jobs")));
        if (o.jobs == 0)
            throw common::ToolchainError{"--jobs must be >= 1"};
        return true;
    }
    if (a == "--json") {
        // --json takes an optional path: treat a following non-flag
        // token as the path.
        o.json = true;
        if (i + 1 < argc && argv[i + 1][0] != '-') o.json_path = argv[++i];
        return true;
    }
    if (a == "--no-json") {
        o.json = false;
        return true;
    }
    if (a == "--timeout-ms") {
        o.timeout_ms = std::stoull(need("--timeout-ms"));
        return true;
    }
    if (a == "--smoke") {
        o.smoke = true;
        return true;
    }
    if (a == "--progress") {
        o.progress = true;
        return true;
    }
    if (a == "--retries") {
        o.retries = static_cast<unsigned>(std::stoul(need("--retries")));
        return true;
    }
    if (a == "--backoff-ms") {
        o.backoff_ms = std::stoull(need("--backoff-ms"));
        return true;
    }
    if (a == "--journal") {
        // Like --json, --journal takes an optional path.
        o.journal = true;
        if (i + 1 < argc && argv[i + 1][0] != '-')
            o.journal_path = argv[++i];
        return true;
    }
    if (a == "--resume") {
        // Resuming implies journaling: the replayed campaign keeps
        // appending the jobs it finishes this time around.
        o.resume = true;
        o.journal = true;
        return true;
    }
    if (a == "--keep-going") {
        o.keep_going = true;
        return true;
    }
    return false;
}

inline constexpr const char* kGridFlagsHelp =
    "  --jobs N         worker threads (default: HWST_JOBS or all cores)\n"
    "  --json [PATH]    write BENCH_<name>.json (default on; PATH "
    "overrides)\n"
    "  --no-json        skip the BENCH json file\n"
    "  --timeout-ms T   per-job wall-clock budget (0 = unlimited)\n"
    "  --smoke          tiny grid for CI smoke runs\n"
    "  --progress       live progress line on stderr\n"
    "  --retries N      retry timeout/error jobs up to N times with\n"
    "                   exponential backoff; exhaustion -> quarantined\n"
    "  --backoff-ms T   base retry backoff, doubles per attempt "
    "(default 100)\n"
    "  --journal [PATH] append each finished job to a fsync'd checkpoint\n"
    "                   journal (default BENCH_<name>.journal)\n"
    "  --resume         replay finished jobs from the journal, run the "
    "rest\n"
    "  --keep-going     exit 0 even when jobs failed or were "
    "quarantined\n";

} // namespace hwst::exec
