#include "exec/json.hpp"

#include <cmath>
#include <cstdio>

namespace hwst::exec::json {

// ---- serializer --------------------------------------------------------

namespace {

void dump_string(const std::string& s, std::string& out)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void dump_double(double v, std::string& out)
{
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out += "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    const std::string_view sv{buf};
    out += sv;
    // Keep doubles recognisably doubles on re-parse.
    if (sv.find_first_of(".eE") == std::string_view::npos) out += ".0";
}

void indent_to(std::string& out, int indent, int depth)
{
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
}

void dump_value(const Value& v, std::string& out, int indent, int depth)
{
    switch (v.kind()) {
    case Value::Kind::Null: out += "null"; return;
    case Value::Kind::Bool: out += v.as_bool() ? "true" : "false"; return;
    case Value::Kind::Int: out += std::to_string(v.as_int()); return;
    case Value::Kind::Double: dump_double(v.as_double(), out); return;
    case Value::Kind::String: dump_string(v.as_string(), out); return;
    case Value::Kind::Array: {
        const auto& items = v.items();
        if (items.empty()) { out += "[]"; return; }
        out += '[';
        for (std::size_t i = 0; i < items.size(); ++i) {
            if (i) out += indent > 0 ? "," : ", ";
            indent_to(out, indent, depth + 1);
            dump_value(items[i], out, indent, depth + 1);
        }
        indent_to(out, indent, depth);
        out += ']';
        return;
    }
    case Value::Kind::Object: {
        const auto& members = v.members();
        if (members.empty()) { out += "{}"; return; }
        out += '{';
        for (std::size_t i = 0; i < members.size(); ++i) {
            if (i) out += indent > 0 ? "," : ", ";
            indent_to(out, indent, depth + 1);
            dump_string(members[i].first, out);
            out += ": ";
            dump_value(members[i].second, out, indent, depth + 1);
        }
        indent_to(out, indent, depth);
        out += '}';
        return;
    }
    }
}

} // namespace

std::string Value::dump(int indent) const
{
    std::string out;
    dump_value(*this, out, indent, 0);
    if (indent > 0) out += '\n';
    return out;
}

// ---- parser ------------------------------------------------------------

namespace {

class Parser {
public:
    explicit Parser(std::string_view text) : text_{text} {}

    Value document()
    {
        const Value v = value();
        skip_ws();
        if (pos_ != text_.size()) fail("trailing characters");
        return v;
    }

private:
    [[noreturn]] void fail(const std::string& why)
    {
        // Quote a printable excerpt around the failure so a truncated
        // journal line or garbage BENCH file is diagnosable at a
        // glance.
        std::string near;
        for (std::size_t i = pos_;
             i < text_.size() && near.size() < 16; ++i) {
            const char c = text_[i];
            near += (c >= 0x20 && c < 0x7F) ? c : '?';
        }
        throw JsonError{"json parse error at offset " +
                        std::to_string(pos_) + ": " + why +
                        (near.empty() ? std::string{" (at end of input)"}
                                      : " near '" + near + "'")};
    }

    /// Nesting bound: malicious or corrupt input (e.g. kilobytes of
    /// '[') must produce a JsonError, not a stack overflow.
    static constexpr int kMaxDepth = 128;

    struct DepthGuard {
        explicit DepthGuard(Parser& p) : p_{p}
        {
            if (++p_.depth_ > kMaxDepth) p_.fail("nesting too deep");
        }
        ~DepthGuard() { --p_.depth_; }
        Parser& p_;
    };

    void skip_ws()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char peek()
    {
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c)
    {
        if (peek() != c) fail(std::string{"expected '"} + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit) return false;
        pos_ += lit.size();
        return true;
    }

    Value value()
    {
        skip_ws();
        switch (peek()) {
        case '{': return object();
        case '[': return array();
        case '"': return Value{string()};
        case 't':
            if (!consume_literal("true")) fail("bad literal");
            return Value{true};
        case 'f':
            if (!consume_literal("false")) fail("bad literal");
            return Value{false};
        case 'n':
            if (!consume_literal("null")) fail("bad literal");
            return Value{nullptr};
        default: return number();
        }
    }

    Value object()
    {
        const DepthGuard guard{*this};
        expect('{');
        Value v = Value::object();
        skip_ws();
        if (peek() == '}') { ++pos_; return v; }
        for (;;) {
            skip_ws();
            const std::string key = string();
            skip_ws();
            expect(':');
            v[key] = value();
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            expect('}');
            return v;
        }
    }

    Value array()
    {
        const DepthGuard guard{*this};
        expect('[');
        Value v = Value::array();
        skip_ws();
        if (peek() == ']') { ++pos_; return v; }
        for (;;) {
            v.push_back(value());
            skip_ws();
            if (peek() == ',') { ++pos_; continue; }
            expect(']');
            return v;
        }
    }

    std::string string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') { out += c; continue; }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char e = text_[pos_++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos_ + 4 > text_.size()) fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                    else fail("bad \\u escape");
                }
                // The emitter only writes \u00xx control escapes; decode
                // the Latin-1 range and encode the rest as UTF-8.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("bad escape");
            }
        }
    }

    Value number()
    {
        const std::size_t start = pos_;
        if (peek() == '-') ++pos_;
        bool is_double = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c >= '0' && c <= '9') { ++pos_; continue; }
            if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                is_double = true;
                ++pos_;
                continue;
            }
            break;
        }
        const std::string tok{text_.substr(start, pos_ - start)};
        if (tok.empty() || tok == "-") fail("bad number");
        try {
            if (is_double) return Value{std::stod(tok)};
            return Value{static_cast<i64>(std::stoll(tok))};
        } catch (const std::exception&) {
            fail("bad number: " + tok);
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

} // namespace

Value Value::parse(std::string_view text) { return Parser{text}.document(); }

} // namespace hwst::exec::json
