// Engine: the shared parallel campaign executor. Every figure harness
// and the fault campaign enumerate a grid of independent Jobs; the
// engine runs them on an atomic-counter worker pool sized by --jobs /
// HWST_JOBS / hardware_concurrency and returns outcomes in grid order.
//
// Determinism contract (docs/execution.md): each sim::Machine run is
// fully deterministic, every job derives its randomness from the root
// seed and its own grid coordinates (derive_seed), and outcomes land in
// the slot of the job that produced them — so any aggregate computed by
// folding the outcome vector in index order is bit-identical at every
// thread count, including 1.
//
// Durability layer (docs/execution.md, "Durability"): an optional
// checkpoint Journal replays finished jobs across restarts, timeout/
// error jobs are retried with exponential backoff up to `retries` times
// (exhaustion -> Quarantined), and a graceful shutdown (SIGINT/SIGTERM
// or the `stop` flag) drains in-flight jobs and marks the rest Skipped.
#pragma once

#include <span>
#include <vector>

#include "exec/job.hpp"

namespace hwst::exec {

class Journal;

/// Interface of the content-addressed result cache (implemented by
/// serve::ResultCache, docs/serving.md). The engine treats it like a
/// cross-campaign journal: `load` may serve a finished Ok outcome for a
/// job before it ever reaches the pool, `store` publishes a freshly run
/// Ok outcome so later campaigns (or a warm campaign server) are served
/// instead of recomputed. Implementations must be thread-safe — workers
/// call both concurrently. Keeping the interface in exec and the
/// implementation in serve keeps the layering acyclic: exec knows only
/// the shape of a cell store, never its on-disk format.
class CellStore {
public:
    virtual ~CellStore() = default;
    /// A finished outcome for this job, or nullopt on a miss. The
    /// returned outcome is always JobStatus::Ok (failures are verdicts
    /// of a particular host run and are never cached).
    virtual std::optional<JobOutcome> load(const Job& job) = 0;
    /// Publish a completed Ok outcome (atomic: concurrent publishers
    /// of the same cell must never tear a record).
    virtual void store(const Job& job, const JobOutcome& outcome) = 0;
    /// Hit/miss/eviction counters for the envelope's host-side
    /// `cache` payload (stripped by json_check --equiv).
    virtual json::Value stats_json() const = 0;
};

struct EngineOptions {
    /// Worker threads. 0 = HWST_JOBS env var if set, else
    /// hardware_concurrency. 1 runs everything inline on the caller.
    unsigned jobs = 0;
    /// Per-job wall-clock budget; 0 = unlimited. A job that exceeds it
    /// reports JobStatus::Timeout instead of hanging the grid. Each
    /// retry attempt gets a fresh budget.
    std::chrono::milliseconds timeout{0};
    /// Live progress line on stderr ("[done/total] name status").
    bool progress = false;
    /// Retry budget for jobs that end Timeout/Error (never for traps —
    /// those are results). 0 preserves the classic fail-once behavior;
    /// N > 0 retries with exponential backoff and lands jobs that
    /// exhaust the budget in JobStatus::Quarantined.
    unsigned retries = 0;
    /// Base backoff before the first retry; doubles per attempt.
    std::chrono::milliseconds backoff{100};
    /// Optional checkpoint journal: jobs with a non-empty `key` found
    /// in it are replayed instead of run, and every finished job is
    /// appended + fsync'd. Not owned.
    Journal* journal = nullptr;
    /// Optional content-addressed result cache (--cache / HWST_CACHE):
    /// jobs with a non-empty `key` are looked up before running —
    /// journal replay wins over a cache hit, a cache hit wins over a
    /// recompute — and freshly run Ok outcomes are published back.
    /// Cached and recomputed envelopes are bit-identical modulo
    /// host-side fields (docs/serving.md). Not owned.
    CellStore* cache = nullptr;
    /// Optional extra stop flag merged with the process-wide shutdown
    /// flag (tests cancel mid-grid in-process through this).
    const std::atomic<bool>* stop = nullptr;
    /// Process-isolation mode (--isolate / HWST_ISOLATE): run each job
    /// attempt in a forked, rlimit-caged worker subprocess. A worker
    /// SIGSEGV, runaway allocation or hang becomes a Crashed/Timeout
    /// outcome with forensics instead of killing the campaign
    /// (docs/execution.md, "Process isolation & failure taxonomy").
    bool isolate = false;
    /// Worker RLIMIT_AS cap in MiB (0 = unlimited; isolate mode only).
    u64 rlimit_mb = 0;
    /// Worker RLIMIT_CPU cap in seconds (0 = unlimited).
    u64 rlimit_cpu_s = 0;
    /// SIGTERM -> SIGKILL escalation window for hard kills.
    std::chrono::milliseconds grace{500};
    /// Worker heartbeat period; the watchdog kills a worker after 8
    /// missed beats. 0 disables the watchdog.
    std::chrono::milliseconds heartbeat{250};
    /// DBT divergence sentinel (--sentinel / HWST_SENTINEL): re-run
    /// 1-in-N successful jobs under the pure interpreter in a sibling
    /// worker and compare via the host-field-stripping comparator;
    /// divergent jobs degrade to the interpreter result with a
    /// journaled report. 0 = off. Nonzero implies isolate.
    unsigned sentinel = 0;
};

/// The 1-in-N sample rate --sentinel / HWST_SENTINEL=1 select when no
/// explicit rate is given.
inline constexpr unsigned kDefaultSentinelRate = 4;

/// Resolve an EngineOptions::jobs request against HWST_JOBS and
/// hardware_concurrency (never returns 0).
unsigned resolve_jobs(unsigned requested);

/// EngineOptions with the environment folded in (HWST_ISOLATE /
/// HWST_SENTINEL) and isolation support validated. Engine::run applies
/// this itself; the campaign server resolves once at startup and hands
/// the result to run_one_job per cell.
EngineOptions resolve_engine_options(const EngineOptions& requested);

/// The per-job pipeline Engine::run schedules on its pool: the attempt
/// loop with retries/backoff, process isolation, the DBT sentinel, the
/// shutdown-skip rule, then the journal append and cache publish.
/// `opts` must already be resolved (resolve_engine_options). Does NOT
/// consult the journal/cache for replay — callers prepass those (the
/// engine's replay loop, the server's submission-time cache sweep).
/// The campaign server schedules exactly this pipeline from its own
/// queue, so server-side and engine-side cells can never drift apart.
JobOutcome run_one_job(const Job& job, const EngineOptions& opts);

/// JSON round trip for Engine::map's typed per-job payloads, so
/// map-based harnesses (fig6 coverage chunks, fault records) can use
/// the checkpoint journal too. `label` prefixes the journal key (and
/// display name) of every chunk; encode/decode must be inverses.
template <typename R>
struct MapCodec {
    std::string label;
    std::function<json::Value(const R&)> encode;
    std::function<R(const json::Value&)> decode;

    bool enabled() const
    {
        return static_cast<bool>(encode) && static_cast<bool>(decode);
    }
};

class Engine {
public:
    explicit Engine(EngineOptions opts = {}) : opts_{opts} {}

    const EngineOptions& options() const { return opts_; }

    /// Run every job and return one outcome per job, index-aligned.
    std::vector<JobOutcome> run(std::span<const Job> jobs) const;

    /// Generic fan-out for harnesses whose per-job result is not a
    /// sim::RunResult (Juliet coverage chunks, fault records): runs
    /// fn(i, ctx) for i in [0, count) on the pool. fn's exceptions
    /// follow the same rules as Job bodies (JobTimeout -> Timeout slot,
    /// anything else -> Error slot); `out[i]` is written only on
    /// success, so R must be default-constructible. With a codec, each
    /// chunk participates in the checkpoint journal: finished payloads
    /// are persisted and replayed chunks are decoded back into out[i].
    template <typename R>
    std::vector<JobOutcome> map(
        std::size_t count,
        const std::function<R(std::size_t, const JobContext&)>& fn,
        std::vector<R>& out, const MapCodec<R>& codec = {}) const
    {
        out.assign(count, R{});
        std::vector<Job> jobs;
        jobs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            const std::string name =
                codec.label.empty() ? "#" + std::to_string(i)
                                    : codec.label + "#" + std::to_string(i);
            jobs.push_back(Job{
                .name = name,
                .key = codec.enabled() ? name : std::string{},
                .body =
                    [&fn, &out, &codec, i](const JobContext& ctx) {
                        out[i] = fn(i, ctx);
                        if (codec.enabled() && ctx.aux)
                            *ctx.aux = codec.encode(out[i]);
                        return sim::RunResult{};
                    },
                // Without a codec the only channel back is the out[i]
                // write above, which cannot cross a fork — those
                // chunks must stay in the caller's process even under
                // --isolate.
                .in_process = !codec.enabled(),
            });
        }
        auto outcomes = run(jobs);
        if (codec.enabled()) {
            for (std::size_t i = 0; i < count; ++i) {
                // Replayed and cache-served chunks never ran here;
                // isolated chunks ran, but their out[i] write happened
                // in the worker child. Either way the payload comes
                // back through aux.
                if ((outcomes[i].from_journal || outcomes[i].from_cache ||
                     outcomes[i].isolated) &&
                    outcomes[i].status == JobStatus::Ok)
                    out[i] = codec.decode(outcomes[i].aux);
            }
        }
        return outcomes;
    }

private:
    EngineOptions opts_;
};

} // namespace hwst::exec
