// Engine: the shared parallel campaign executor. Every figure harness
// and the fault campaign enumerate a grid of independent Jobs; the
// engine runs them on an atomic-counter worker pool sized by --jobs /
// HWST_JOBS / hardware_concurrency and returns outcomes in grid order.
//
// Determinism contract (docs/execution.md): each sim::Machine run is
// fully deterministic, every job derives its randomness from the root
// seed and its own grid coordinates (derive_seed), and outcomes land in
// the slot of the job that produced them — so any aggregate computed by
// folding the outcome vector in index order is bit-identical at every
// thread count, including 1.
#pragma once

#include <span>
#include <vector>

#include "exec/job.hpp"

namespace hwst::exec {

struct EngineOptions {
    /// Worker threads. 0 = HWST_JOBS env var if set, else
    /// hardware_concurrency. 1 runs everything inline on the caller.
    unsigned jobs = 0;
    /// Per-job wall-clock budget; 0 = unlimited. A job that exceeds it
    /// reports JobStatus::Timeout instead of hanging the grid.
    std::chrono::milliseconds timeout{0};
    /// Live progress line on stderr ("[done/total] name status").
    bool progress = false;
};

/// Resolve an EngineOptions::jobs request against HWST_JOBS and
/// hardware_concurrency (never returns 0).
unsigned resolve_jobs(unsigned requested);

class Engine {
public:
    explicit Engine(EngineOptions opts = {}) : opts_{opts} {}

    const EngineOptions& options() const { return opts_; }

    /// Run every job and return one outcome per job, index-aligned.
    std::vector<JobOutcome> run(std::span<const Job> jobs) const;

    /// Generic fan-out for harnesses whose per-job result is not a
    /// sim::RunResult (Juliet coverage chunks, fault records): runs
    /// fn(i, token) for i in [0, count) on the pool. fn's exceptions
    /// follow the same rules as Job bodies (JobTimeout -> Timeout slot,
    /// anything else -> Error slot); `out[i]` is written only on
    /// success, so R must be default-constructible.
    template <typename R>
    std::vector<JobOutcome> map(
        std::size_t count,
        const std::function<R(std::size_t, const CancelToken&)>& fn,
        std::vector<R>& out) const
    {
        out.assign(count, R{});
        std::vector<Job> jobs;
        jobs.reserve(count);
        for (std::size_t i = 0; i < count; ++i) {
            jobs.push_back(Job{
                .name = "#" + std::to_string(i),
                .body =
                    [&fn, &out, i](const CancelToken& token) {
                        out[i] = fn(i, token);
                        return sim::RunResult{};
                    },
            });
        }
        return run(jobs);
    }

private:
    EngineOptions opts_;
};

} // namespace hwst::exec
