// Reporter layer: every campaign harness records its grid in the same
// machine-readable envelope, BENCH_<name>.json (schema v1, see
// docs/execution.md). The envelope carries the schema version, bench
// name, worker count and host wall-time; the harness supplies the
// payload keys (rows, geo-means, grid description...).
#pragma once

#include <chrono>
#include <span>
#include <string_view>

#include "exec/job.hpp"
#include "exec/json.hpp"

namespace hwst::exec {

inline constexpr int kBenchSchemaVersion = 1;

/// Default output path for a bench: BENCH_<name>.json in the cwd.
std::string bench_json_path(const std::string& bench);

/// Wrap `payload`'s members in the schema-v1 envelope.
json::Value bench_envelope(const std::string& bench, unsigned jobs,
                           double wall_ms, const json::Value& payload);

/// Write the envelope to `path` (empty -> bench_json_path(bench)).
/// Returns the path written. Throws common::ToolchainError on I/O
/// failure.
std::string write_bench_json(const std::string& bench, unsigned jobs,
                             double wall_ms, const json::Value& payload,
                             const std::string& path = {});

/// Read + parse a BENCH json file and check the envelope (used by the
/// bench-smoke validator and the round-trip tests).
json::Value read_bench_json(const std::string& path);

/// One JobOutcome as a JSON row fragment: status, wall_ms and — when
/// the job succeeded — the core RunResult counters every harness wants.
json::Value outcome_json(const Job& job, const JobOutcome& outcome);

/// True for envelope/record keys that carry host-side timing or
/// provenance — legitimately different between two runs of the same
/// campaign (json_check --equiv strips them; the DBT sentinel strips
/// them before comparing tiers).
bool is_host_field(std::string_view key);

/// Deep copy of `v` with every host-side key removed, at any nesting
/// depth.
json::Value strip_host_fields(const json::Value& v);

/// Aggregate status counts over a grid's outcomes.
struct OutcomeCounts {
    std::size_t ok = 0;
    std::size_t timeout = 0;
    std::size_t error = 0;
    std::size_t crashed = 0;
    std::size_t quarantined = 0;
    std::size_t skipped = 0;

    std::size_t failed() const
    {
        return timeout + error + crashed + quarantined;
    }
    /// True when a graceful shutdown left jobs unstarted — the
    /// envelope is valid but partial, and a --resume can finish it.
    bool partial() const { return skipped != 0; }
};

OutcomeCounts count_outcomes(std::span<const JobOutcome> outcomes);

/// The envelope's durability summary: status counts, the quarantined /
/// failed job names (so CI output names the culprits), and the partial
/// flag. Deterministic — resumed and uninterrupted runs emit identical
/// summaries.
json::Value summary_json(std::span<const Job> jobs,
                         std::span<const JobOutcome> outcomes);

/// The shared exit-code policy (CI-visible failures by default):
/// 130 when the grid was cut short by a shutdown, 1 when any job ended
/// timeout/error/quarantined and --keep-going was not given, else 0.
int grid_exit_code(std::span<const JobOutcome> outcomes, bool keep_going);

/// Wall-clock stopwatch for the envelope's wall_ms field.
class Stopwatch {
public:
    Stopwatch() : start_{std::chrono::steady_clock::now()} {}
    double elapsed_ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace hwst::exec
