// Reporter layer: every campaign harness records its grid in the same
// machine-readable envelope, BENCH_<name>.json (schema v1, see
// docs/execution.md). The envelope carries the schema version, bench
// name, worker count and host wall-time; the harness supplies the
// payload keys (rows, geo-means, grid description...).
#pragma once

#include <chrono>

#include "exec/job.hpp"
#include "exec/json.hpp"

namespace hwst::exec {

inline constexpr int kBenchSchemaVersion = 1;

/// Default output path for a bench: BENCH_<name>.json in the cwd.
std::string bench_json_path(const std::string& bench);

/// Wrap `payload`'s members in the schema-v1 envelope.
json::Value bench_envelope(const std::string& bench, unsigned jobs,
                           double wall_ms, const json::Value& payload);

/// Write the envelope to `path` (empty -> bench_json_path(bench)).
/// Returns the path written. Throws common::ToolchainError on I/O
/// failure.
std::string write_bench_json(const std::string& bench, unsigned jobs,
                             double wall_ms, const json::Value& payload,
                             const std::string& path = {});

/// Read + parse a BENCH json file and check the envelope (used by the
/// bench-smoke validator and the round-trip tests).
json::Value read_bench_json(const std::string& path);

/// One JobOutcome as a JSON row fragment: status, wall_ms and — when
/// the job succeeded — the core RunResult counters every harness wants.
json::Value outcome_json(const Job& job, const JobOutcome& outcome);

/// Wall-clock stopwatch for the envelope's wall_ms field.
class Stopwatch {
public:
    Stopwatch() : start_{std::chrono::steady_clock::now()} {}
    double elapsed_ms() const
    {
        return std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace hwst::exec
