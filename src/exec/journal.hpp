// Checkpoint journal: an append-only, fsync'd JSONL file recording each
// completed JobOutcome, keyed by the job's grid coordinates and guarded
// by a fingerprint of (bench name, root seed, grid shape). A campaign
// killed by a crash, OOM or Ctrl-C and restarted with --resume replays
// every journaled job instead of re-running it, so the final BENCH
// envelope is bit-identical to an uninterrupted run (docs/execution.md,
// "Durability").
//
// File format (one JSON document per line):
//   {"journal_version":1,"bench":"fig5","grid_hash":"0x...."}   header
//   {"key":"crc32/none","status":"ok","attempts":1,...}          record
//
// A half-written trailing line (the normal crash artifact) or a corrupt
// line in the middle is diagnosed on stderr and skipped — the loader
// never throws on malformed records, only on a journal that belongs to
// a different campaign entirely.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "exec/cli.hpp"
#include "exec/job.hpp"

namespace hwst::exec {

/// v2: grid_hash folds in the scheme/machine-config revision
/// (config_revision_hash), so a journal — or a content-addressed cache
/// cell — written before an instrumentation-default change can never
/// alias a grid that merely kept the same shape (docs/execution.md,
/// "Journal format").
inline constexpr int kJournalVersion = 2;

/// Bump when a scheme's instrumentation defaults or the machine-config
/// defaults change in a way that alters simulated numbers without
/// changing any grid coordinate. Folded into every grid fingerprint.
inline constexpr int kConfigRevision = 1;

/// Default journal path for a bench: BENCH_<name>.journal in the cwd,
/// next to the BENCH_<name>.json envelope it checkpoints.
std::string journal_path(const std::string& bench);

/// FNV-1a over a byte string — the leaf hash every fingerprint and the
/// cache's content address build on (fold results via derive_seed so
/// field boundaries matter: "ab","c" != "a","bc").
u64 fnv1a(std::string_view s);

/// Canonical "0x%016x" rendering of a fingerprint, shared by the
/// journal header, the cache cell records and json_check.
std::string hash_hex(u64 h);

/// Hash of everything a grid's coordinates do NOT name but its results
/// depend on: the scheme registry (names, in order), the default
/// MachineConfig (cache geometry, keybuffer, fuel) and kConfigRevision.
/// Folded into every grid fingerprint so two grids that differ only in
/// instrumentation defaults can never alias in a journal or cache.
u64 config_revision_hash();

/// Fingerprint of a campaign grid: mixes the root seed with every job's
/// key, workload, scheme and seed — plus config_revision_hash() and an
/// optional harness-supplied `config_desc` naming grid-level knobs that
/// the job coordinates don't (hwst_run's --keybuffer/--dcache-kib
/// tweaks). Any change to any of these changes the fingerprint, so
/// --resume can refuse a journal written by a different campaign and
/// the cache can never serve a cell across configs.
u64 grid_fingerprint(std::span<const Job> jobs, u64 root_seed = 0,
                     std::string_view config_desc = {});

/// Fingerprint for harnesses whose grid is built lazily (Engine::map
/// chunks, multi-grid ablations): hash a descriptor string that names
/// the campaign shape instead.
u64 grid_fingerprint(std::string_view grid_desc, u64 root_seed = 0);

// ---- JobOutcome <-> journal record (full-fidelity round trip) --------

/// Serialize a RunResult with every counter the harnesses fold into
/// their tables, so a replayed job is indistinguishable from a run one.
json::Value result_to_json(const sim::RunResult& r);
sim::RunResult result_from_json(const json::Value& v);

/// One journal line (minus the trailing newline).
json::Value outcome_to_record(const std::string& key,
                              const JobOutcome& outcome);
/// Parse + validate one record; throws json::JsonError on a malformed
/// or incomplete one (the loader catches and skips).
std::pair<std::string, JobOutcome> outcome_from_record(
    const json::Value& v);

/// The journal itself. `record()` is thread-safe (workers call it);
/// each record is appended and fsync'd before the call returns, so a
/// later SIGKILL can lose at most the line being written — which the
/// loader then skips.
class Journal {
public:
    /// Opens `path`. resume=false truncates and writes a fresh header;
    /// resume=true loads the existing records first (header must match
    /// `bench` + `fingerprint`, else common::ToolchainError) and then
    /// reopens for append. A missing file under resume starts fresh.
    Journal(std::string path, std::string bench, u64 fingerprint,
            bool resume);
    ~Journal();
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// The replayable outcome for `key`, or nullptr.
    const JobOutcome* find(const std::string& key) const;

    /// Append one completed outcome (fsync'd). I/O failures are
    /// reported on stderr once and disable further writes — durability
    /// degrades, the campaign itself keeps running.
    void record(const std::string& key, const JobOutcome& outcome);

    std::size_t loaded() const { return loaded_; }
    std::size_t corrupt_lines() const { return corrupt_; }
    const std::string& path() const { return path_; }

private:
    void append_line(const std::string& line);

    std::string path_;
    std::string bench_;
    u64 fingerprint_ = 0;
    int fd_ = -1;
    bool write_failed_ = false;
    std::size_t loaded_ = 0;
    std::size_t corrupt_ = 0;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, JobOutcome> records_;
};

/// Build the Journal a harness asked for on the command line, or
/// nullptr when neither --journal nor --resume was given. `fingerprint`
/// comes from grid_fingerprint().
std::unique_ptr<Journal> open_journal(const GridOptions& grid,
                                      const std::string& bench,
                                      u64 fingerprint);

} // namespace hwst::exec
