// Checkpoint journal: an append-only, fsync'd JSONL file recording each
// completed JobOutcome, keyed by the job's grid coordinates and guarded
// by a fingerprint of (bench name, root seed, grid shape). A campaign
// killed by a crash, OOM or Ctrl-C and restarted with --resume replays
// every journaled job instead of re-running it, so the final BENCH
// envelope is bit-identical to an uninterrupted run (docs/execution.md,
// "Durability").
//
// File format (one JSON document per line):
//   {"journal_version":1,"bench":"fig5","grid_hash":"0x...."}   header
//   {"key":"crc32/none","status":"ok","attempts":1,...}          record
//
// A half-written trailing line (the normal crash artifact) or a corrupt
// line in the middle is diagnosed on stderr and skipped — the loader
// never throws on malformed records, only on a journal that belongs to
// a different campaign entirely.
#pragma once

#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>

#include "exec/cli.hpp"
#include "exec/job.hpp"

namespace hwst::exec {

inline constexpr int kJournalVersion = 1;

/// Default journal path for a bench: BENCH_<name>.journal in the cwd,
/// next to the BENCH_<name>.json envelope it checkpoints.
std::string journal_path(const std::string& bench);

/// Fingerprint of a campaign grid: mixes the root seed with every job's
/// key, workload, scheme and seed. Any change to the grid (different
/// workload list, scheme set, seeds, order) changes the fingerprint, so
/// --resume can refuse a journal written by a different campaign.
u64 grid_fingerprint(std::span<const Job> jobs, u64 root_seed = 0);

/// Fingerprint for harnesses whose grid is built lazily (Engine::map
/// chunks, multi-grid ablations): hash a descriptor string that names
/// the campaign shape instead.
u64 grid_fingerprint(std::string_view grid_desc, u64 root_seed = 0);

// ---- JobOutcome <-> journal record (full-fidelity round trip) --------

/// Serialize a RunResult with every counter the harnesses fold into
/// their tables, so a replayed job is indistinguishable from a run one.
json::Value result_to_json(const sim::RunResult& r);
sim::RunResult result_from_json(const json::Value& v);

/// One journal line (minus the trailing newline).
json::Value outcome_to_record(const std::string& key,
                              const JobOutcome& outcome);
/// Parse + validate one record; throws json::JsonError on a malformed
/// or incomplete one (the loader catches and skips).
std::pair<std::string, JobOutcome> outcome_from_record(
    const json::Value& v);

/// The journal itself. `record()` is thread-safe (workers call it);
/// each record is appended and fsync'd before the call returns, so a
/// later SIGKILL can lose at most the line being written — which the
/// loader then skips.
class Journal {
public:
    /// Opens `path`. resume=false truncates and writes a fresh header;
    /// resume=true loads the existing records first (header must match
    /// `bench` + `fingerprint`, else common::ToolchainError) and then
    /// reopens for append. A missing file under resume starts fresh.
    Journal(std::string path, std::string bench, u64 fingerprint,
            bool resume);
    ~Journal();
    Journal(const Journal&) = delete;
    Journal& operator=(const Journal&) = delete;

    /// The replayable outcome for `key`, or nullptr.
    const JobOutcome* find(const std::string& key) const;

    /// Append one completed outcome (fsync'd). I/O failures are
    /// reported on stderr once and disable further writes — durability
    /// degrades, the campaign itself keeps running.
    void record(const std::string& key, const JobOutcome& outcome);

    std::size_t loaded() const { return loaded_; }
    std::size_t corrupt_lines() const { return corrupt_; }
    const std::string& path() const { return path_; }

private:
    void append_line(const std::string& line);

    std::string path_;
    std::string bench_;
    u64 fingerprint_ = 0;
    int fd_ = -1;
    bool write_failed_ = false;
    std::size_t loaded_ = 0;
    std::size_t corrupt_ = 0;
    mutable std::mutex mutex_;
    std::unordered_map<std::string, JobOutcome> records_;
};

/// Build the Journal a harness asked for on the command line, or
/// nullptr when neither --journal nor --resume was given. `fingerprint`
/// comes from grid_fingerprint().
std::unique_ptr<Journal> open_journal(const GridOptions& grid,
                                      const std::string& bench,
                                      u64 fingerprint);

} // namespace hwst::exec
