// Supervisor policy for process-isolated campaign workers: turn a
// WorkerReport (exec/process.hpp) into a first-class JobOutcome with a
// failure-taxonomy forensic record, and run the DBT divergence
// sentinel — the opt-in cross-check that re-executes a sampled
// fraction of superblock-tier jobs under the pure interpreter in a
// sibling worker and degrades the job to the interpreter result when
// the tiers disagree (docs/execution.md, "Process isolation & failure
// taxonomy").
#pragma once

#include "exec/job.hpp"

namespace hwst::exec {

/// Supervision knobs, resolved by the engine from EngineOptions and
/// the HWST_ISOLATE / HWST_SENTINEL environment variables.
struct SuperviseOptions {
    std::chrono::milliseconds timeout{0};   ///< per-attempt budget
    std::chrono::milliseconds grace{500};   ///< SIGTERM -> SIGKILL window
    std::chrono::milliseconds heartbeat{250}; ///< worker heartbeat period
    u64 rlimit_mb = 0;                      ///< worker RLIMIT_AS (MiB)
    u64 rlimit_cpu_s = 0;                   ///< worker RLIMIT_CPU (s)
    const std::atomic<bool>* stop = nullptr;
};

/// One body invocation on the calling thread (shared by the in-process
/// engine path and the worker child). `attempt` is 0-based; the
/// context's seed is the attempt-indexed re-derivation of the job's
/// seed. The outcome's aux carries the body's side-channel payload.
JobOutcome attempt_in_process(const Job& job, const CancelToken& token,
                              unsigned attempt);

/// One attempt in a forked, rlimit-caged worker subprocess. Worker
/// death comes back as JobStatus::Crashed (or Timeout for a hard
/// wall-clock kill) with exit-status/signal/last-progress forensics —
/// it never takes the caller down.
JobOutcome attempt_isolated(const Job& job, unsigned attempt,
                            const SuperviseOptions& opts);

/// Deterministic 1-in-N sampling for the sentinel: same job identity
/// and seed -> same verdict, at any thread count and across resumes.
bool sentinel_sampled(const Job& job, unsigned sentinel);

/// Cross-check `primary` (a successful DBT-tier outcome) against a
/// sibling worker forced onto the interpreter, comparing the two
/// records through the shared host-field-stripping comparator. On
/// agreement, returns `primary` annotated with a match note; on
/// divergence, returns the interpreter outcome (graceful degradation —
/// the sibling ran in a fresh process, i.e. with a flushed block
/// cache) carrying a divergence report in its forensics, which the
/// engine journals like any other outcome.
JobOutcome sentinel_check(const Job& job, unsigned attempt,
                          const SuperviseOptions& opts,
                          JobOutcome primary);

/// Sampling rate requested by HWST_SENTINEL: a boolean value enables
/// the default 1-in-kDefaultSentinelRate, an integer N means 1-in-N,
/// unset/unrecognized means off (0).
unsigned sentinel_from_env();

} // namespace hwst::exec
