// Static instrumentation properties: what each scheme's codegen emits
// (opcode inventory of the generated program), independent of
// execution. These pin the instrumentation contracts of DESIGN.md.
#include <gtest/gtest.h>

#include <map>

#include "compiler/driver.hpp"
#include "mir/builder.hpp"
#include "riscv/encoding.hpp"

namespace {

using namespace hwst;
using compiler::Scheme;
using riscv::Opcode;

mir::Module pointer_program()
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, mir::Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", mir::Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(64)));
    b.store(b.const_i64(1), b.load_local(p));       // deref store
    const auto v = b.local("v");
    b.store_local(v, b.load(b.load_local(p)));      // deref load
    b.free_(b.load_local(p));
    b.ret(b.load_local(v));
    return m;
}

std::map<Opcode, unsigned> opcode_histogram(Scheme s)
{
    const auto cp = compiler::compile(pointer_program(), s);
    std::map<Opcode, unsigned> h;
    for (const auto& in : cp.program.code()) ++h[in.op];
    return h;
}

unsigned count(const std::map<Opcode, unsigned>& h, Opcode op)
{
    const auto it = h.find(op);
    return it == h.end() ? 0 : it->second;
}

TEST(Instrumentation, BaselineEmitsNoSafetyOps)
{
    const auto h = opcode_histogram(Scheme::None);
    EXPECT_EQ(count(h, Opcode::BNDRS), 0u);
    EXPECT_EQ(count(h, Opcode::TCHK), 0u);
    EXPECT_EQ(count(h, Opcode::SBDL), 0u);
    EXPECT_EQ(count(h, Opcode::CLD), 0u);
    EXPECT_EQ(count(h, Opcode::CSD), 0u);
}

TEST(Instrumentation, HwstEmitsTheWholeExtension)
{
    const auto h = opcode_histogram(Scheme::Hwst128Tchk);
    EXPECT_GT(count(h, Opcode::BNDRS), 0u); // spatial bind
    EXPECT_GT(count(h, Opcode::BNDRT), 0u); // temporal bind
    EXPECT_GT(count(h, Opcode::SBDL), 0u);  // through-memory store
    EXPECT_GT(count(h, Opcode::SBDU), 0u);
    EXPECT_GT(count(h, Opcode::LBDLS), 0u); // through-memory load
    EXPECT_GT(count(h, Opcode::LBDUS), 0u);
    EXPECT_GT(count(h, Opcode::TCHK), 0u);
    // Checked memory replaces plain memory at dereference sites.
    EXPECT_GT(count(h, Opcode::CLD), 0u);
    EXPECT_GT(count(h, Opcode::CSD), 0u);
    // The free wrapper reads fields via lbas/lloc.
    EXPECT_GT(count(h, Opcode::LBAS), 0u);
    EXPECT_GT(count(h, Opcode::LLOC), 0u);
}

TEST(Instrumentation, HwstWithoutTchkUsesFieldLoads)
{
    const auto with = opcode_histogram(Scheme::Hwst128Tchk);
    const auto without = opcode_histogram(Scheme::Hwst128);
    EXPECT_GT(count(with, Opcode::TCHK), 0u);
    // Without tchk the temporal check is a software key load through
    // lkey/lloc (paper 5.1), with at most wrapper-only tchk-free flow.
    EXPECT_EQ(count(without, Opcode::TCHK), 0u);
    EXPECT_GT(count(without, Opcode::LKEY), 0u);
    EXPECT_GT(count(without, Opcode::LLOC), count(with, Opcode::LLOC));
}

TEST(Instrumentation, SbcetsIsPureSoftware)
{
    const auto h = opcode_histogram(Scheme::Sbcets);
    for (unsigned i = 0; i < riscv::kNumOpcodes; ++i) {
        const auto op = static_cast<Opcode>(i);
        if (riscv::is_hwst(op)) {
            EXPECT_EQ(count(h, op), 0u) << riscv::op_name(op);
        }
    }
}

TEST(Instrumentation, SbcetsBiggerThanHwstBiggerThanBaseline)
{
    const auto none = compiler::compile(pointer_program(), Scheme::None);
    const auto hwst =
        compiler::compile(pointer_program(), Scheme::Hwst128Tchk);
    const auto sb = compiler::compile(pointer_program(), Scheme::Sbcets);
    EXPECT_LT(none.program.code().size(), hwst.program.code().size());
    EXPECT_LT(hwst.program.code().size(), sb.program.code().size());
}

TEST(Instrumentation, TchkCountMatchesDerefs)
{
    // Every IR-level load/store is a checked dereference — including
    // accesses to locals (allocas), exactly like -O0 SBCETS: the two
    // explicit derefs, six local accesses, and one in the free wrapper.
    const auto h = opcode_histogram(Scheme::Hwst128Tchk);
    EXPECT_EQ(count(h, Opcode::TCHK), 9u);
}

TEST(Instrumentation, GccOnlyAddsCanaryAroundArrays)
{
    mir::Module with_array;
    {
        auto& fn = with_array.add_function("main", {}, mir::Ty::I64);
        mir::FunctionBuilder b{with_array, fn};
        b.set_insert(b.block("entry"));
        const auto buf = b.array("buf", 32);
        b.store(b.const_i64(1), b.alloca_addr(buf));
        b.ret(b.const_i64(0));
    }
    const auto guarded = compiler::compile(with_array, Scheme::Gcc);
    const auto plain = compiler::compile(with_array, Scheme::None);
    // Canary store + check add a handful of instructions, nothing else.
    const auto diff = guarded.program.code().size() -
                      plain.program.code().size();
    EXPECT_GE(diff, 4u);
    EXPECT_LE(diff, 12u);
}

TEST(Instrumentation, MachineConfigsFollowScheme)
{
    EXPECT_TRUE(compiler::compile(pointer_program(), Scheme::Asan)
                    .machine_config.runtime.quarantine);
    EXPECT_GT(compiler::compile(pointer_program(), Scheme::Asan)
                  .machine_config.runtime.asan_redzone,
              0u);
    EXPECT_TRUE(compiler::compile(pointer_program(), Scheme::Sbcets)
                    .machine_config.runtime.init_sw_trie);
    EXPECT_FALSE(compiler::compile(pointer_program(), Scheme::None)
                     .machine_config.runtime.init_sw_trie);
}

TEST(Instrumentation, EveryInstructionEncodes)
{
    // The whole instrumented stream must survive the wire format (the
    // Machine encodes it into simulated memory at load time).
    for (const Scheme s : compiler::kAllSchemes) {
        const auto cp = compiler::compile(pointer_program(), s);
        for (const auto& in : cp.program.code()) {
            const auto back = riscv::decode(riscv::encode(in));
            ASSERT_TRUE(back.has_value()) << compiler::scheme_name(s);
        }
    }
}

} // namespace
