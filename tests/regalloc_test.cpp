// Register-cache (block-local fast-regalloc) correctness: eviction
// under pressure, cross-call invalidation, and interaction with the
// CETS stack-lock protocol.
#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "mir/builder.hpp"
#include "mir/interp.hpp"
#include "workloads/dsl.hpp"

namespace {

using namespace hwst;
using compiler::Scheme;
using mir::FunctionBuilder;
using mir::Ty;
using mir::Value;

class RegallocAllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(RegallocAllSchemes, EvictionUnderPressure)
{
    // More simultaneously-live block values than cache registers: late
    // uses must reload evicted values from their home slots.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    std::vector<Value> vals;
    for (int i = 0; i < 24; ++i)
        vals.push_back(b.mul(b.const_i64(i + 1), b.const_i64(3)));
    Value sum = b.const_i64(0);
    for (const Value v : vals) sum = b.add(sum, v); // uses v0 last-first
    // Re-use the *earliest* values again (long since evicted).
    sum = b.add(sum, vals[0]);
    sum = b.add(sum, vals[1]);
    b.ret(sum);

    const auto oracle = mir::interpret(m);
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, oracle.exit_code);
    EXPECT_EQ(r.exit_code, 3 * (24 * 25 / 2) + 3 + 6);
}

TEST_P(RegallocAllSchemes, ValuesSurviveCalls)
{
    // The callee freely reuses the cache registers; caller values read
    // after the call must come back from their home slots.
    mir::Module m;
    {
        auto& fn = m.add_function("burn", {Ty::I64}, Ty::I64);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        // Lots of defs so the callee cycles through every cache reg.
        Value acc = b.param(0);
        for (int i = 0; i < 16; ++i) acc = b.add(acc, b.const_i64(1));
        b.ret(acc);
    }
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    Value a = b.const_i64(1000);
    Value c = b.mul(b.const_i64(7), b.const_i64(6)); // 42, cached
    Value r1 = b.call("burn", {a}, Ty::I64);         // 1016
    Value s = b.add(c, r1);                          // c read after call
    b.ret(s);

    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 42 + 1016);
}

TEST_P(RegallocAllSchemes, CachedPointerKeepsMetadata)
{
    // A pointer defined and dereferenced repeatedly inside one block:
    // with the cache the SRF entry is reused, and an OOB access at the
    // end must still trap in checking schemes.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(64)));
    Value ptr = b.load_local(p);
    Value acc = b.const_i64(0);
    for (int i = 0; i < 8; ++i) {
        Value slot = b.gep(ptr, b.const_i64(i), 8);
        b.store(b.const_i64(i), slot);
        acc = b.add(acc, b.load(slot));
    }
    b.free_(ptr);
    b.ret(acc);
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 28);
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, RegallocAllSchemes,
    ::testing::Values(Scheme::None, Scheme::Sbcets, Scheme::Hwst128,
                      Scheme::Hwst128Tchk, Scheme::Asan),
    [](const auto& info) {
        return std::string{compiler::scheme_name(info.param)};
    });

TEST(StackLocks, DeepRecursionRecyclesLocations)
{
    // 2000 nested frames push/pop stack locks; keys must keep working
    // (use-after-return still detected afterwards).
    mir::Module m;
    {
        auto& fn = m.add_function("down", {Ty::I64}, Ty::I64);
        FunctionBuilder b{m, fn};
        const auto entry = b.block("entry");
        const auto rec = b.block("rec");
        const auto base = b.block("base");
        const auto n = b.local("n");
        const auto buf = b.array("buf", 16); // forces a frame lock
        b.set_insert(entry);
        b.store_local(n, b.param(0));
        b.store(b.load_local(n), b.alloca_addr(buf));
        b.br(b.lt(b.const_i64(0), b.load_local(n)), rec, base);
        b.set_insert(rec);
        Value r = b.call(
            "down", {b.sub(b.load_local(n), b.const_i64(1))}, Ty::I64);
        b.ret(b.add(r, b.load(b.alloca_addr(buf))));
        b.set_insert(base);
        b.ret(b.load(b.alloca_addr(buf)));
    }
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    b.ret(b.call("down", {b.const_i64(2000)}, Ty::I64));

    for (const Scheme s : {Scheme::Sbcets, Scheme::Hwst128Tchk}) {
        const auto r = compiler::run(m, s);
        ASSERT_TRUE(r.ok()) << compiler::scheme_name(s) << ": "
                            << trap_name(r.trap.kind);
        EXPECT_EQ(r.exit_code, 2000 * 2001 / 2);
    }
}

TEST(StackLocks, UarDetectedAfterManyFrames)
{
    // A dangling stack pointer must still be flagged even after its
    // lock_location has been recycled by thousands of later frames
    // (keys are never reused — the CETS guarantee).
    mir::Module m;
    {
        auto& fn = m.add_function("leak", {}, Ty::Ptr);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto buf = b.array("buf", 16);
        b.ret(b.alloca_addr(buf));
    }
    {
        auto& fn = m.add_function("noise", {Ty::I64}, Ty::I64);
        FunctionBuilder b{m, fn};
        const auto entry = b.block("entry");
        const auto rec = b.block("rec");
        const auto base = b.block("base");
        const auto n = b.local("n");
        const auto buf = b.array("buf", 8);
        b.set_insert(entry);
        b.store_local(n, b.param(0));
        b.store(b.const_i64(1), b.alloca_addr(buf));
        b.br(b.lt(b.const_i64(0), b.load_local(n)), rec, base);
        b.set_insert(rec);
        b.ret(b.call("noise",
                     {b.sub(b.load_local(n), b.const_i64(1))}, Ty::I64));
        b.set_insert(base);
        b.ret(b.const_i64(0));
    }
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.call("leak", {}, Ty::Ptr));
    Value nz = b.call("noise", {b.const_i64(500)}, Ty::I64);
    (void)nz;
    b.ret(b.load(b.load_local(p))); // dangling read

    const auto sb = compiler::run(m, Scheme::Sbcets);
    EXPECT_EQ(sb.trap.kind, ::hwst::hwst::TrapKind::SoftTemporalViolation);
    const auto hw = compiler::run(m, Scheme::Hwst128Tchk);
    EXPECT_EQ(hw.trap.kind, ::hwst::hwst::TrapKind::TemporalViolation);
}

} // namespace
