#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "riscv/disasm.hpp"
#include "riscv/encoding.hpp"

namespace {

using namespace hwst;
using namespace hwst::riscv;
using common::i64;
using common::u32;

Instruction sample_instruction(Opcode op, common::Xoshiro256& rng)
{
    Instruction in;
    in.op = op;
    in.rd = reg_from_index(static_cast<unsigned>(rng.below(32)));
    in.rs1 = reg_from_index(static_cast<unsigned>(rng.below(32)));
    in.rs2 = reg_from_index(static_cast<unsigned>(rng.below(32)));
    switch (op_format(op)) {
    case Format::R:
        break;
    case Format::I:
        in.imm = static_cast<i64>(rng.below(4096)) - 2048;
        break;
    case Format::ShiftI:
        in.imm = static_cast<i64>(rng.below(64));
        break;
    case Format::ShiftIW:
        in.imm = static_cast<i64>(rng.below(32));
        break;
    case Format::S:
        in.imm = static_cast<i64>(rng.below(4096)) - 2048;
        break;
    case Format::B:
        in.imm = (static_cast<i64>(rng.below(4096)) - 2048) * 2;
        break;
    case Format::U:
        in.imm = (static_cast<i64>(rng.below(1u << 20)) - (1 << 19)) * 4096;
        break;
    case Format::J:
        in.imm = (static_cast<i64>(rng.below(1u << 20)) - (1 << 19)) * 2;
        break;
    case Format::Csr:
        in.csr = static_cast<u32>(rng.below(4096));
        break;
    case Format::CsrI:
        in.csr = static_cast<u32>(rng.below(4096));
        in.imm = static_cast<i64>(rng.below(32));
        break;
    case Format::Sys:
        in.rd = Reg::zero;
        in.rs1 = Reg::zero;
        in.rs2 = Reg::zero;
        break;
    }
    // Formats that do not encode all three register fields must have
    // the unused ones zeroed for an exact round-trip comparison.
    switch (op_format(op)) {
    case Format::I: case Format::ShiftI: case Format::ShiftIW:
        in.rs2 = Reg::zero;
        break;
    case Format::U: case Format::J:
        in.rs1 = Reg::zero;
        in.rs2 = Reg::zero;
        break;
    case Format::S: case Format::B:
        in.rd = Reg::zero;
        break;
    case Format::Csr:
        in.rs2 = Reg::zero;
        break;
    case Format::CsrI:
        in.rs1 = Reg::zero;
        in.rs2 = Reg::zero;
        break;
    default:
        break;
    }
    return in;
}

class EncodingRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodingRoundTrip, DecodeOfEncodeIsIdentity)
{
    const auto op = static_cast<Opcode>(GetParam());
    common::Xoshiro256 rng{0xE27C0DE + GetParam()};
    for (int trial = 0; trial < 64; ++trial) {
        const Instruction in = sample_instruction(op, rng);
        const u32 word = encode(in);
        const auto back = decode(word);
        ASSERT_TRUE(back.has_value())
            << op_name(op) << " word=0x" << std::hex << word;
        EXPECT_EQ(*back, in) << op_name(op) << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodingRoundTrip,
    ::testing::Range(0u, kNumOpcodes),
    [](const auto& info) {
        return std::string{
            op_name(static_cast<Opcode>(info.param))};
    });

TEST(Encoding, RejectsOversizedImmediates)
{
    EXPECT_THROW(encode(itype(Opcode::ADDI, Reg::a0, Reg::a0, 2048)),
                 common::ToolchainError);
    EXPECT_THROW(encode(itype(Opcode::ADDI, Reg::a0, Reg::a0, -2049)),
                 common::ToolchainError);
    EXPECT_THROW(encode(btype(Opcode::BEQ, Reg::a0, Reg::a1, 3)),
                 common::ToolchainError); // odd branch offset
    EXPECT_THROW(encode(utype(Opcode::LUI, Reg::a0, 123)),
                 common::ToolchainError); // not 4096-aligned
    EXPECT_THROW(encode(itype(Opcode::SLLI, Reg::a0, Reg::a0, 64)),
                 common::ToolchainError);
}

TEST(Encoding, UnknownWordsDecodeToNothing)
{
    EXPECT_FALSE(decode(0x00000000).has_value());
    EXPECT_FALSE(decode(0xFFFFFFFF).has_value());
    // major opcode 0x0B with unused funct3/funct7 combination
    EXPECT_FALSE(decode(0x0000700Bu).has_value());
}

TEST(Encoding, HwstOpcodesLiveInCustomSpace)
{
    EXPECT_TRUE(is_hwst(Opcode::BNDRS));
    EXPECT_TRUE(is_hwst(Opcode::SBDL));
    EXPECT_TRUE(is_hwst(Opcode::LBDLS));
    EXPECT_TRUE(is_hwst(Opcode::TCHK));
    EXPECT_TRUE(is_hwst(Opcode::CLD));
    EXPECT_TRUE(is_hwst(Opcode::CSD));
    EXPECT_FALSE(is_hwst(Opcode::LD));
    EXPECT_FALSE(is_hwst(Opcode::ADD));
}

TEST(Encoding, OpcodeClassifiers)
{
    EXPECT_TRUE(is_load(Opcode::LBU));
    EXPECT_TRUE(is_load(Opcode::CLD));
    EXPECT_TRUE(is_store(Opcode::SD));
    EXPECT_TRUE(is_store(Opcode::CSB));
    EXPECT_TRUE(is_checked_mem(Opcode::CLW));
    EXPECT_FALSE(is_checked_mem(Opcode::LW));
    EXPECT_EQ(mem_width(Opcode::CLH), 2u);
    EXPECT_EQ(mem_width(Opcode::SD), 8u);
    EXPECT_TRUE(is_branch(Opcode::BGEU));
    EXPECT_FALSE(is_branch(Opcode::JAL));
}

TEST(Disasm, RendersConventionalSyntax)
{
    EXPECT_EQ(disassemble(itype(Opcode::ADDI, Reg::a0, Reg::sp, -16)),
              "addi a0, sp, -16");
    EXPECT_EQ(disassemble(itype(Opcode::LD, Reg::t0, Reg::s0, 24)),
              "ld t0, 24(s0)");
    EXPECT_EQ(disassemble(stype(Opcode::SD, Reg::sp, Reg::ra, 0)),
              "sd ra, 0(sp)");
    EXPECT_EQ(disassemble(rtype(Opcode::BNDRS, Reg::a0, Reg::a0, Reg::t1)),
              "bndrs a0, a0, t1");
    EXPECT_EQ(disassemble(Instruction{Opcode::ECALL}), "ecall");
}

} // namespace
