// Execution-tier ladder (src/sim/dispatch.cpp, src/sim/jit/*): the
// accelerated tiers are pure host-side accelerators, so every test
// here is a differential one — the same program runs under the
// interpreter, the superblock dispatcher and the tier-2 JIT
// (MachineConfig::tier) and the full RunResult must be bit-identical:
// instret, cycles, traps, output, InstrMix and every cache/unit
// counter. Fuzzed programs cover ALU/memory/branch/loop shapes; the
// workload tests cover the HWST metadata ISA, checked accesses and
// ecalls; dedicated tests pin down block invalidation, chaining,
// hook-forced fallback, cancellation strides, fuel traps, mid-stream
// CSR reads of the batched counters, and JIT code-cache eviction with
// re-translation. On hosts/builds without JIT support (non-x86-64,
// sanitizers) --tier=jit degrades to the dispatcher, so the three-way
// matrix still passes — it just covers two distinct tiers.
#include <gtest/gtest.h>

#include <vector>

#include "common/prng.hpp"
#include "compiler/driver.hpp"
#include "hwst/csr.hpp"
#include "riscv/instr.hpp"
#include "riscv/program.hpp"
#include "sim/jit/jit.hpp"
#include "sim/machine.hpp"
#include "sim/syscalls.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace hwst::riscv;
namespace sim = hwst::sim;
using hwst::common::i64;
using hwst::common::u64;
using hwst::common::Xoshiro256;

sim::MachineConfig with_dbt(sim::MachineConfig cfg, bool on)
{
    cfg.dbt = on;
    cfg.tier = on ? sim::ExecTier::Dbt : sim::ExecTier::Interp;
    return cfg;
}

sim::MachineConfig with_tier(sim::MachineConfig cfg, sim::ExecTier t)
{
    cfg.tier = t;
    return cfg;
}

void expect_bit_equal(const sim::RunResult& a, const sim::RunResult& b)
{
    EXPECT_EQ(a.trap.kind, b.trap.kind);
    EXPECT_EQ(a.trap.addr, b.trap.addr);
    EXPECT_EQ(a.trap.pc, b.trap.pc);
    EXPECT_EQ(a.exit_code, b.exit_code);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instret, b.instret);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.dcache.accesses, b.dcache.accesses);
    EXPECT_EQ(a.dcache.misses, b.dcache.misses);
    EXPECT_EQ(a.icache.accesses, b.icache.accesses);
    EXPECT_EQ(a.icache.misses, b.icache.misses);
    EXPECT_EQ(a.keybuffer.lookups, b.keybuffer.lookups);
    EXPECT_EQ(a.keybuffer.hits, b.keybuffer.hits);
    EXPECT_EQ(a.keybuffer.flushes, b.keybuffer.flushes);
    EXPECT_EQ(a.scu_checks, b.scu_checks);
    EXPECT_EQ(a.tcu_checks, b.tcu_checks);
    EXPECT_EQ(a.scu_saturated, b.scu_saturated);
    EXPECT_EQ(a.tcu_saturated, b.tcu_saturated);
    EXPECT_EQ(a.smac_translations, b.smac_translations);
    EXPECT_EQ(a.mix.alu, b.mix.alu);
    EXPECT_EQ(a.mix.loads, b.mix.loads);
    EXPECT_EQ(a.mix.stores, b.mix.stores);
    EXPECT_EQ(a.mix.checked_loads, b.mix.checked_loads);
    EXPECT_EQ(a.mix.checked_stores, b.mix.checked_stores);
    EXPECT_EQ(a.mix.meta_moves, b.mix.meta_moves);
    EXPECT_EQ(a.mix.binds, b.mix.binds);
    EXPECT_EQ(a.mix.tchk, b.mix.tchk);
    EXPECT_EQ(a.mix.branches, b.mix.branches);
    EXPECT_EQ(a.mix.jumps, b.mix.jumps);
    EXPECT_EQ(a.mix.ecalls, b.mix.ecalls);
    EXPECT_EQ(a.mix.other, b.mix.other);
}

// ---- randomized program generator ------------------------------------

const std::vector<Opcode>& alu_ops()
{
    static const std::vector<Opcode> ops = {
        Opcode::ADDI,  Opcode::XORI,  Opcode::ORI,   Opcode::ANDI,
        Opcode::SLTI,  Opcode::SLTIU, Opcode::SLLI,  Opcode::SRLI,
        Opcode::SRAI,  Opcode::ADD,   Opcode::SUB,   Opcode::SLL,
        Opcode::SRL,   Opcode::SRA,   Opcode::SLT,   Opcode::SLTU,
        Opcode::XOR,   Opcode::OR,    Opcode::AND,   Opcode::MUL,
        Opcode::MULH,  Opcode::MULHSU, Opcode::MULHU, Opcode::DIV,
        Opcode::DIVU,  Opcode::REM,   Opcode::REMU,  Opcode::ADDIW,
        Opcode::ADDW,  Opcode::SUBW,  Opcode::SLLW,  Opcode::SRLW,
        Opcode::SRAW,  Opcode::MULW,  Opcode::DIVW,  Opcode::DIVUW,
        Opcode::REMW,  Opcode::REMUW, Opcode::SLLIW, Opcode::SRLIW,
        Opcode::SRAIW, Opcode::LUI,
    };
    return ops;
}

// Work registers only. s5/s6/s7 are reserved for the generator (memory
// base, loop induction, loop limit), sp/gp/tp/ra belong to the runtime.
Reg work_reg(Xoshiro256& rng)
{
    static const Reg pool[] = {Reg::t0, Reg::t1, Reg::t2, Reg::t3,
                               Reg::t4, Reg::t5, Reg::t6, Reg::s2,
                               Reg::s3, Reg::s4, Reg::a2, Reg::a3,
                               Reg::a4, Reg::a5, Reg::zero};
    return pool[rng.below(std::size(pool))];
}

/// One random instruction: ALU op, load/store through s5 (the mapped
/// scratch data region) or a FENCE (exercises the Nop fold).
void emit_random_op(Program& p, Xoshiro256& rng)
{
    const u64 pick = rng.below(100);
    if (pick < 12) { // load
        static const Opcode ops[] = {Opcode::LB,  Opcode::LH,  Opcode::LW,
                                     Opcode::LD,  Opcode::LBU, Opcode::LHU,
                                     Opcode::LWU};
        const Opcode op = ops[rng.below(std::size(ops))];
        const i64 off =
            static_cast<i64>(rng.below(256)) * mem_width(op);
        p.emit(itype(op, work_reg(rng), Reg::s5, off));
        return;
    }
    if (pick < 24) { // store
        static const Opcode ops[] = {Opcode::SB, Opcode::SH, Opcode::SW,
                                     Opcode::SD};
        const Opcode op = ops[rng.below(std::size(ops))];
        const i64 off =
            static_cast<i64>(rng.below(256)) * mem_width(op);
        p.emit(stype(op, Reg::s5, work_reg(rng), off));
        return;
    }
    if (pick < 27) {
        p.emit(Instruction{Opcode::FENCE});
        return;
    }
    const Opcode op = alu_ops()[rng.below(alu_ops().size())];
    Instruction in;
    in.op = op;
    in.rd = work_reg(rng);
    in.rs1 = work_reg(rng);
    in.rs2 = work_reg(rng);
    switch (op_format(op)) {
    case Format::I:
        in.rs2 = Reg::zero;
        in.imm = static_cast<i64>(rng.below(4096)) - 2048;
        break;
    case Format::ShiftI:
        in.rs2 = Reg::zero;
        in.imm = static_cast<i64>(rng.below(64));
        break;
    case Format::ShiftIW:
        in.rs2 = Reg::zero;
        in.imm = static_cast<i64>(rng.below(32));
        break;
    case Format::U:
        in.rs1 = in.rs2 = Reg::zero;
        in.imm = (static_cast<i64>(rng.below(1u << 20)) - (1 << 19)) << 12;
        break;
    default:
        break;
    }
    p.emit(in);
}

/// Random program with straight-line stretches, forward branches and
/// jumps (both edges reachable), a counted loop (hot block chaining)
/// and memory traffic into the data region. Terminates by construction:
/// branches only go forward, the loop trips a fixed induction count.
Program fuzz_program(Xoshiro256& rng)
{
    Program p;
    p.label("main");

    const i64 seeds[] = {0,
                         1,
                         -1,
                         0x7FFFFFFF,
                         -0x80000000ll,
                         static_cast<i64>(0x8000000000000000ull),
                         0x7FFFFFFFFFFFFFFFll,
                         static_cast<i64>(rng.next())};
    int si = 0;
    for (const Reg r : {Reg::t0, Reg::t1, Reg::t2, Reg::t3, Reg::t4,
                        Reg::t5, Reg::t6, Reg::s2}) {
        p.emit_li(r, seeds[si++]);
    }
    p.emit_li(Reg::s5, static_cast<i64>(p.layout().data_base));

    static const Opcode branches[] = {Opcode::BEQ,  Opcode::BNE,
                                      Opcode::BLT,  Opcode::BGE,
                                      Opcode::BLTU, Opcode::BGEU};
    for (int seg = 0; seg < 10; ++seg) {
        const std::string next = "seg" + std::to_string(seg);
        const u64 kind = rng.below(3);
        if (kind == 0) {
            p.emit_branch(branches[rng.below(std::size(branches))],
                          work_reg(rng), work_reg(rng), next);
        } else if (kind == 1) {
            p.emit_jal(Reg::zero, next);
        }
        const int n = 4 + static_cast<int>(rng.below(90));
        for (int k = 0; k < n; ++k) emit_random_op(p, rng);
        p.label(next);
    }

    // Counted loop: the same blocks execute repeatedly, so taken and
    // fall-through chain edges both get hot.
    p.emit_li(Reg::s6, 0);
    p.emit_li(Reg::s7, 40 + static_cast<i64>(rng.below(60)));
    p.label("loop");
    const int body = 3 + static_cast<int>(rng.below(12));
    for (int k = 0; k < body; ++k) emit_random_op(p, rng);
    p.emit(itype(Opcode::ADDI, Reg::s6, Reg::s6, 1));
    p.emit_branch(Opcode::BLT, Reg::s6, Reg::s7, "loop");

    // Fold every work register into a0 and exit with the checksum.
    p.emit_li(Reg::a0, 0);
    for (const Reg r : {Reg::t0, Reg::t1, Reg::t2, Reg::t3, Reg::t4,
                        Reg::t5, Reg::t6, Reg::s2, Reg::s3, Reg::s4,
                        Reg::a2, Reg::a3, Reg::a4, Reg::a5}) {
        p.emit(rtype(Opcode::XOR, Reg::a0, Reg::a0, r));
        p.emit(itype(Opcode::SLLI, Reg::a1, Reg::a0, 1));
        p.emit(rtype(Opcode::XOR, Reg::a0, Reg::a0, Reg::a1));
    }
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();
    return p;
}

class SuperblockFuzz : public ::testing::TestWithParam<u64> {};

// Three-way tier matrix: interpreter vs dispatcher vs JIT on the same
// fuzzed program, all pairwise bit-identical. A low hotness threshold
// pushes even the forward-branch one-shot blocks through the JIT's
// compile path, not just the loop.
TEST_P(SuperblockFuzz, TierLadderMatchesInterpreterBitForBit)
{
    Xoshiro256 rng{0x5B10C + GetParam() * 6271};
    const Program p = fuzz_program(rng);

    sim::Machine dbt{p, with_dbt({}, true)};
    const sim::RunResult a = dbt.run();

    sim::Machine interp{p, with_dbt({}, false)};
    const sim::RunResult b = interp.run();

    auto jit_cfg = with_tier({}, sim::ExecTier::Jit);
    jit_cfg.jit_hot_threshold = 2;
    sim::Machine jit{p, jit_cfg};
    const sim::RunResult c = jit.run();

    ASSERT_EQ(a.trap.kind, hwst::hwst::TrapKind::None);
    expect_bit_equal(a, b);
    expect_bit_equal(c, b);
    EXPECT_GT(dbt.dbt_stats().block_execs, 0u);
    EXPECT_EQ(interp.dbt_stats().block_execs, 0u);
    // fallback_runs counts runs where the tier was configured on but a
    // hook blocked it; configuring it off is not a fallback.
    EXPECT_EQ(interp.dbt_stats().fallback_runs, 0u);
    if (jit.tier() == sim::ExecTier::Jit) {
        EXPECT_GT(jit.jit_stats().translated, 0u);
        EXPECT_GT(jit.jit_stats().code_bytes, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SuperblockFuzz, ::testing::Range<u64>(0, 16));

// ---- real workloads, all instrumentation schemes ---------------------

TEST(SuperblockWorkloads, SchemesBitIdenticalAcrossAllTiers)
{
    const auto& w = hwst::workloads::all_workloads().front();
    for (const auto scheme : {hwst::compiler::Scheme::None,
                              hwst::compiler::Scheme::Hwst128Tchk}) {
        const auto cp = hwst::compiler::compile(w.build(), scheme);

        sim::Machine dbt{cp.program, with_dbt(cp.machine_config, true)};
        const sim::RunResult a = dbt.run();
        EXPECT_EQ(a.exit_code, w.expected);

        sim::Machine interp{cp.program,
                            with_dbt(cp.machine_config, false)};
        const sim::RunResult b = interp.run();
        expect_bit_equal(a, b);

        // The checked-access and metadata ops take the JIT's inline
        // no-metadata gates and helper call-outs; both paths must
        // reproduce the dispatcher numbers exactly.
        sim::Machine jit{cp.program,
                         with_tier(cp.machine_config,
                                   sim::ExecTier::Jit)};
        const sim::RunResult c = jit.run();
        expect_bit_equal(c, b);
    }
}

// ---- block-cache invalidation ----------------------------------------

TEST(SuperblockCacheTest, MapRegionFlushesTranslatedBlocks)
{
    const auto& w = hwst::workloads::all_workloads().front();
    const auto cp =
        hwst::compiler::compile(w.build(), hwst::compiler::Scheme::None);

    sim::Machine plain{cp.program, with_dbt(cp.machine_config, true)};
    const sim::RunResult full = plain.run();

    // Pause mid-run, remap, resume: the remap must drop every block
    // (dbt_stats.flushes) — and under the JIT tier, the native code
    // baked on top of them — and the resumed run must still be
    // bit-equal to the uninterrupted one.
    for (const auto tier : {sim::ExecTier::Dbt, sim::ExecTier::Jit}) {
        auto cfg = with_tier(cp.machine_config, tier);
        cfg.jit_hot_threshold = 1; // translate eagerly before the pause
        sim::Machine m{cp.program, cfg};
        const auto paused = m.run_cancellable([] { return true; },
                                              /*stride=*/1000);
        EXPECT_FALSE(paused.has_value());
        EXPECT_TRUE(m.running());
        EXPECT_GT(m.dbt_stats().blocks, 0u);
        EXPECT_EQ(m.dbt_stats().flushes, 0u);

        m.memory().map_region("late", 0x6000'0000, 4096);
        EXPECT_EQ(m.dbt_stats().flushes, 1u);

        const u64 blocks_before_resume = m.dbt_stats().blocks;
        const auto resumed = m.run_cancellable([] { return false; });
        ASSERT_TRUE(resumed.has_value());
        expect_bit_equal(*resumed, full);
        // Resuming had to retranslate the dropped blocks.
        EXPECT_GT(m.dbt_stats().blocks, blocks_before_resume);
        if (m.tier() == sim::ExecTier::Jit) {
            EXPECT_GT(m.jit_stats().translated, 0u);
        }
    }
}

// ---- JIT code-cache eviction -----------------------------------------

// A code-cache budget too small for the workload's hot set forces
// whole-cache drops (append-only region, docs/performance.md "Tier-2
// JIT") followed by re-translation — and none of that churn may leak
// into simulated numbers.
TEST(JitCodeCache, EvictionAndRetranslationBitIdentical)
{
    if (!sim::jit::jit_supported())
        GTEST_SKIP() << "no JIT on this host/build";

    const auto& w = hwst::workloads::all_workloads().front();
    const auto cp =
        hwst::compiler::compile(w.build(), hwst::compiler::Scheme::None);

    sim::Machine interp{cp.program, with_dbt(cp.machine_config, false)};
    const sim::RunResult ref = interp.run();

    auto cfg = with_tier(cp.machine_config, sim::ExecTier::Jit);
    // Large enough for the entry thunk + shared runtime plus a block
    // or two, far too small for the whole program: every few compiles
    // evict the region and re-translation starts over.
    cfg.jit_code_bytes = 8192;
    cfg.jit_hot_threshold = 1;
    sim::Machine m{cp.program, cfg};
    ASSERT_EQ(m.tier(), sim::ExecTier::Jit);
    const sim::RunResult r = m.run();

    expect_bit_equal(r, ref);
    EXPECT_GT(m.jit_stats().evictions, 0u);
    // Re-translation after eviction: more compiles than distinct
    // superblocks ever existed.
    EXPECT_GT(m.jit_stats().translated, m.dbt_stats().blocks);
    EXPECT_LE(m.jit_stats().code_bytes, cfg.jit_code_bytes);
}

// ---- chaining --------------------------------------------------------

TEST(SuperblockChaining, HotLoopEdgesChain)
{
    Program p;
    p.label("main");
    p.emit_li(Reg::t0, 0);
    p.emit_li(Reg::t1, 10000);
    p.label("loop");
    p.emit(itype(Opcode::ADDI, Reg::t0, Reg::t0, 1));
    p.emit_branch(Opcode::BLT, Reg::t0, Reg::t1, "loop");
    p.emit(mv(Reg::a0, Reg::t0));
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();

    sim::Machine m{p, with_dbt({}, true)};
    const auto r = m.run();
    EXPECT_EQ(r.exit_code, 10000);
    const auto& st = m.dbt_stats();
    EXPECT_GT(st.blocks, 0u);
    EXPECT_GT(st.block_execs, st.blocks);
    // Every loop iteration after the first transfers through a cached
    // chain edge, not the dispatcher's outer loop.
    EXPECT_GT(st.chained, 9000u);
}

// ---- hook-forced interpreter fallback --------------------------------

TEST(SuperblockFallback, TraceAndProbeHooksFallBackBitIdentical)
{
    const auto& w = hwst::workloads::all_workloads().front();
    const auto cp =
        hwst::compiler::compile(w.build(), hwst::compiler::Scheme::None);

    sim::Machine dbt{cp.program, with_dbt(cp.machine_config, true)};
    const sim::RunResult a = dbt.run();
    EXPECT_EQ(dbt.dbt_stats().fallback_runs, 0u);

    // A trace hook observes every retired instruction; the tier cannot
    // honor that, so the run must take the interpreter and still
    // produce the exact same result.
    sim::Machine traced{cp.program, with_dbt(cp.machine_config, true)};
    u64 traced_instrs = 0;
    traced.set_trace([&](u64, const Instruction&) { ++traced_instrs; });
    const sim::RunResult b = traced.run();
    expect_bit_equal(a, b);
    EXPECT_EQ(traced_instrs, a.instret);
    EXPECT_EQ(traced.dbt_stats().fallback_runs, 1u);
    EXPECT_EQ(traced.dbt_stats().block_execs, 0u);

    // Same for a probe hook, even a transparent one.
    sim::Machine probed{cp.program, with_dbt(cp.machine_config, true)};
    probed.set_probe_hook(
        [](sim::Probe, u64, u64 value) { return value; });
    const sim::RunResult c = probed.run();
    expect_bit_equal(a, c);
    EXPECT_EQ(probed.dbt_stats().fallback_runs, 1u);
}

// ---- cancellation strides --------------------------------------------

TEST(SuperblockCancellation, AnyStrideIsBitIdenticalToRun)
{
    const auto& w = hwst::workloads::all_workloads().front();
    const auto cp =
        hwst::compiler::compile(w.build(), hwst::compiler::Scheme::None);

    sim::Machine plain{cp.program, with_dbt(cp.machine_config, true)};
    const sim::RunResult r = plain.run();

    for (const auto tier : {sim::ExecTier::Dbt, sim::ExecTier::Jit}) {
        for (const u64 stride : {u64{1}, u64{3}, u64{37}, u64{4096}}) {
            sim::Machine m{cp.program,
                           with_tier(cp.machine_config, tier)};
            const auto maybe =
                m.run_cancellable([] { return false; }, stride);
            ASSERT_TRUE(maybe.has_value()) << "stride " << stride;
            expect_bit_equal(*maybe, r);
        }
    }
}

// ---- fuel ------------------------------------------------------------

TEST(SuperblockFuel, FuelTrapBitIdentical)
{
    const auto& w = hwst::workloads::all_workloads().front();
    auto cp =
        hwst::compiler::compile(w.build(), hwst::compiler::Scheme::None);
    // An awkward fuel value lands mid-superblock, forcing the
    // dispatcher onto its per-instruction tail.
    cp.machine_config.fuel = 10'007;

    sim::Machine dbt{cp.program, with_dbt(cp.machine_config, true)};
    const sim::RunResult a = dbt.run();
    sim::Machine interp{cp.program, with_dbt(cp.machine_config, false)};
    const sim::RunResult b = interp.run();
    // The same awkward fuel value under the JIT exercises the
    // trap-mid-block bailout with per-op prefix accounting.
    sim::Machine jit{cp.program,
                     with_tier(cp.machine_config, sim::ExecTier::Jit)};
    const sim::RunResult c = jit.run();

    EXPECT_EQ(a.trap.kind, hwst::hwst::TrapKind::FuelExhausted);
    EXPECT_EQ(a.instret, 10'007u);
    expect_bit_equal(a, b);
    expect_bit_equal(c, b);
}

// ---- mid-stream CSR reads of the batched counters --------------------

TEST(SuperblockCsr, CycleAndInstretReadsSeeBatchedCounters)
{
    Program p;
    p.label("main");
    p.emit_li(Reg::a0, 0);
    p.emit_li(Reg::s6, 0);
    p.emit_li(Reg::s7, 500);
    p.label("loop");
    // Some plain work so the csr reads land mid-block-stream with
    // nontrivial cycle deltas (mul extra, memory, hazards).
    p.emit_li(Reg::s5, static_cast<i64>(p.layout().data_base));
    p.emit(stype(Opcode::SD, Reg::s5, Reg::s6, 0));
    p.emit(itype(Opcode::LD, Reg::t0, Reg::s5, 0));
    p.emit(rtype(Opcode::MUL, Reg::t1, Reg::t0, Reg::s7));
    p.emit(csr_op(Opcode::CSRRS, Reg::t2, Reg::zero, hwst::hwst::kCsrCycle));
    p.emit(csr_op(Opcode::CSRRS, Reg::t3, Reg::zero,
                  hwst::hwst::kCsrInstret));
    p.emit(rtype(Opcode::XOR, Reg::a0, Reg::a0, Reg::t2));
    p.emit(rtype(Opcode::ADD, Reg::a0, Reg::a0, Reg::t3));
    p.emit(rtype(Opcode::ADD, Reg::a0, Reg::a0, Reg::t1));
    p.emit(itype(Opcode::ADDI, Reg::s6, Reg::s6, 1));
    p.emit_branch(Opcode::BLT, Reg::s6, Reg::s7, "loop");
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();

    sim::Machine dbt{p, with_dbt({}, true)};
    const sim::RunResult a = dbt.run();
    sim::Machine interp{p, with_dbt({}, false)};
    const sim::RunResult b = interp.run();
    // Under the JIT the csr reads take the interp-one ender bailout;
    // the batched counters must be folded in first.
    sim::Machine jit{p, with_tier({}, sim::ExecTier::Jit)};
    const sim::RunResult c = jit.run();

    ASSERT_EQ(a.trap.kind, hwst::hwst::TrapKind::None);
    expect_bit_equal(a, b);
    expect_bit_equal(c, b);
}

} // namespace
