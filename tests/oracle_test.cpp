// Cross-validation: the IR interpreter is an independent semantic
// oracle. Every workload's checksum must agree between the interpreter
// and the compiled machine runs — catching codegen bugs and interpreter
// bugs against each other.
#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "mir/builder.hpp"
#include "mir/interp.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace hwst;
using compiler::Scheme;

class OracleAgreement : public ::testing::TestWithParam<std::string> {};

TEST_P(OracleAgreement, InterpreterMatchesMachine)
{
    const auto& w = workloads::workload(GetParam());
    const auto module = w.build();
    const auto oracle = mir::interpret(module);
    ASSERT_TRUE(oracle.ok()) << *oracle.fault;
    EXPECT_EQ(oracle.exit_code, w.expected);

    const auto machine = compiler::run(module, Scheme::None);
    ASSERT_TRUE(machine.ok());
    EXPECT_EQ(machine.exit_code, oracle.exit_code);
    EXPECT_EQ(machine.output, oracle.output);
}

std::vector<std::string> names()
{
    std::vector<std::string> out;
    for (const auto& w : workloads::all_workloads()) out.push_back(w.name);
    return out;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, OracleAgreement,
                         ::testing::ValuesIn(names()),
                         [](const auto& info) { return info.param; });

TEST(Oracle, DetectsRunawayPrograms)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, mir::Ty::I64);
    mir::FunctionBuilder b{m, fn};
    const auto spin = b.block("spin");
    b.set_insert(spin);
    const auto x = b.local("x");
    b.store_local(x, b.const_i64(1));
    b.jmp(spin);
    const auto r = mir::interpret(m, mir::InterpOptions{10'000});
    EXPECT_FALSE(r.ok());
}

TEST(Oracle, FaultsOnWildAccess)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, mir::Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", mir::Ty::Ptr);
    b.store_local(p, b.int_to_ptr(b.const_i64(0x77777000)));
    b.ret(b.load(b.load_local(p)));
    const auto r = mir::interpret(m);
    EXPECT_FALSE(r.ok());
}

TEST(Oracle, DoubleFreeFaults)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, mir::Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", mir::Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(16)));
    b.free_(b.load_local(p));
    b.free_(b.load_local(p));
    b.ret(b.const_i64(0));
    const auto r = mir::interpret(m);
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.fault->find("invalid pointer"), std::string::npos);
}

TEST(Oracle, PrintOrderingMatches)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, mir::Ty::I64);
    mir::FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    b.print(b.const_i64(1));
    b.print(b.const_i64(2));
    b.print(b.const_i64(3));
    b.ret(b.const_i64(0));
    const auto r = mir::interpret(m);
    EXPECT_EQ(r.output, (std::vector<common::i64>{1, 2, 3}));
}

} // namespace
