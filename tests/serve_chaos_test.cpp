// Chaos harness for the serving layer (docs/serving.md, "Surviving
// failure"): fault injection at every seam the ISSUE's taxonomy names —
// torn wire frames, slow-loris writers, mid-stream disconnects, EINTR
// storms, and a SIGKILL of the server binary mid-campaign followed by
// --recover. The standing claims: the server never crashes, the cache
// never corrupts, and every recovered campaign's records are equivalent
// to an uninterrupted run once host-side fields are stripped (the
// json_check --equiv projection).
//
// The SIGKILL exercise fork+execs the real hwst_serve binary (path
// injected by CMake as HWST_SERVE_BIN), because an in-process Server
// cannot be SIGKILLed without taking the test down with it.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/engine.hpp"
#include "exec/journal.hpp"
#include "exec/report.hpp"
#include "serve/cache.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define HWST_CHAOS_POSIX 1
#include <csignal>
#include <pthread.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

using namespace hwst;
using common::u64;
using exec::Job;
using exec::JobOutcome;
using exec::JobStatus;

namespace fs = std::filesystem;
using namespace std::chrono_literals;

namespace {

std::string fresh_dir(const std::string& name)
{
    const fs::path p = fs::temp_directory_path() / name;
    fs::remove_all(p);
    return p.string();
}

std::string sock_path(const std::string& name)
{
    const auto p = fs::temp_directory_path() / (name + ".sock");
    fs::remove(p);
    return p.string();
}

serve::GridSpec slow_spec()
{
    serve::GridSpec spec;
    spec.workloads = {"milc", "lbm", "sphinx3", "sjeng"};
    spec.schemes = {"sbcets", "hwst128_tchk"};
    return spec;
}

exec::json::Value submit_req(const serve::GridSpec& spec)
{
    exec::json::Value req = exec::json::Value::object();
    req["op"] = "submit";
    req["grid"] = spec.to_json();
    return req;
}

exec::json::Value wait_req(const std::string& id)
{
    exec::json::Value req = exec::json::Value::object();
    req["op"] = "wait";
    req["id"] = id;
    return req;
}

std::string stripped_records(const exec::json::Value& finished)
{
    return exec::strip_host_fields(finished.at("records")).dump();
}

std::string local_stripped_records(const serve::GridSpec& spec)
{
    const std::vector<Job> jobs = spec.jobs();
    exec::EngineOptions opts;
    opts.jobs = 1;
    const auto outcomes = exec::Engine{opts}.run(jobs);
    exec::json::Value records = exec::json::Value::array();
    for (std::size_t i = 0; i < jobs.size(); ++i)
        records.push_back(
            exec::outcome_to_record(jobs[i].key, outcomes[i]));
    return exec::strip_host_fields(records).dump();
}

/// An in-process server with chaos-friendly defaults.
struct ChaosServer {
    std::string socket;
    std::unique_ptr<serve::Server> server;

    explicit ChaosServer(const std::string& name, unsigned jobs = 1)
    {
        socket = sock_path(name);
        serve::ServerOptions opts;
        opts.socket_path = socket;
        opts.engine.jobs = jobs;
        server = std::make_unique<serve::Server>(std::move(opts));
        server->start();
    }
    ~ChaosServer()
    {
        if (server) server->stop();
    }
};

bool ping_ok(const std::string& socket)
{
    serve::Client client{socket, 2000, 5000};
    exec::json::Value ping = exec::json::Value::object();
    ping["op"] = "ping";
    return client.rpc(ping).at("ok").as_bool();
}

} // namespace

// ---- wire-level faults -----------------------------------------------

TEST(ServeChaos, TornAndMalformedFramesNeverKillTheServer)
{
    if (!serve::serving_supported()) GTEST_SKIP();
    const ChaosServer f{"chaos_torn"};

    const std::vector<std::string> frames = {
        "\x00\x01\x02\xff\xfe garbage\n",         // binary noise
        "{\"op\":\"submit\",\"grid\":{\"ben",     // torn mid-key, EOF
        "{\"op\":12345}\n",                       // wrong-typed op
        "[1,2,3]\n",                              // not an object
        "{}\n",                                   // no op at all
        "{\"op\":\"submit\"}\n",                  // submit without grid
        "{\"op\":\"wait\"}\n",                    // wait without id
        std::string(64 * 1024, 'x') + "\n",       // a very long line
    };
    for (const auto& frame : frames) {
        const int fd = serve::connect_unix(f.socket, 2000);
        ASSERT_GE(fd, 0);
        (void)serve::send_raw(fd, frame);
        serve::close_fd(fd);
    }
    // An over-long frame must trip the cap, not the heap: stream just
    // past kMaxLineBytes without a newline.
    {
        const int fd = serve::connect_unix(f.socket, 2000);
        ASSERT_GE(fd, 0);
        const std::string chunk(1 << 20, 'y');
        for (std::size_t sent = 0; sent <= serve::kMaxLineBytes;
             sent += chunk.size())
            if (!serve::send_raw(fd, chunk)) break;
        serve::close_fd(fd);
    }
    EXPECT_TRUE(ping_ok(f.socket));
}

TEST(ServeChaos, SlowLorisWriterStillGetsServed)
{
    if (!serve::serving_supported()) GTEST_SKIP();
    const ChaosServer f{"chaos_loris"};

    // One byte at a time with pauses: the framing layer must assemble
    // the request across dozens of reads and answer it normally.
    const int fd = serve::connect_unix(f.socket, 2000);
    ASSERT_GE(fd, 0);
    const std::string req = "{\"op\":\"ping\"}\n";
    for (const char c : req) {
        ASSERT_TRUE(serve::send_raw(fd, std::string(1, c)));
        std::this_thread::sleep_for(2ms);
    }
    serve::LineReader reader{fd};
    const auto reply = reader.read_json();
    ASSERT_TRUE(reply.has_value());
    EXPECT_TRUE(reply->at("ok").as_bool());
    serve::close_fd(fd);
}

TEST(ServeChaos, MidStreamDisconnectLeavesCampaignWaitable)
{
    if (!serve::serving_supported()) GTEST_SKIP();
    const ChaosServer f{"chaos_disconnect"};

    // Submit, start streaming, then yank the connection mid-wait. The
    // campaign must keep running and a fresh connection must be able to
    // re-wait it to completion by id.
    std::string id;
    {
        serve::Client client{f.socket};
        const auto reply = client.rpc(submit_req(slow_spec()));
        id = reply.at("id").as_string();
        ASSERT_TRUE(client.send(wait_req(id)));
        const auto first = client.recv(); // at least one progress event
        ASSERT_TRUE(first.has_value());
        // ~client closes the socket abruptly, progress unread.
    }
    serve::ClientOptions copts;
    copts.socket_path = f.socket;
    serve::ResilientClient client{copts};
    const auto finished = client.wait(id, nullptr);
    EXPECT_EQ(finished.at("id").as_string(), id);
    EXPECT_EQ(finished.at("records").items().size(),
              slow_spec().jobs().size());
}

#ifdef HWST_CHAOS_POSIX

namespace {

std::atomic<unsigned> g_usr1_count{0};

void usr1_handler(int)
{
    g_usr1_count.fetch_add(1, std::memory_order_relaxed);
}

} // namespace

TEST(ServeChaos, EintrStormDuringSubmitAndWait)
{
    if (!serve::serving_supported()) GTEST_SKIP();
    const ChaosServer f{"chaos_eintr", 2};

    // A no-SA_RESTART handler makes every interrupted syscall surface
    // EINTR instead of restarting transparently — the storm below then
    // hammers the client thread while it drives a full submit + wait.
    struct sigaction sa{};
    sa.sa_handler = usr1_handler;
    sa.sa_flags = 0; // deliberately no SA_RESTART
    struct sigaction old{};
    ASSERT_EQ(::sigaction(SIGUSR1, &sa, &old), 0);

    std::atomic<bool> done{false};
    const pthread_t victim = ::pthread_self();
    std::thread storm{[&] {
        while (!done.load(std::memory_order_relaxed)) {
            ::pthread_kill(victim, SIGUSR1);
            std::this_thread::sleep_for(1ms);
        }
    }};

    serve::GridSpec spec;
    spec.workloads = {"crc32", "treeadd"};
    spec.schemes = {"none", "hwst128_tchk"};
    serve::ClientOptions copts;
    copts.socket_path = f.socket;
    serve::ResilientClient client{copts};
    const auto reply = client.submit(spec.to_json());
    const auto finished =
        client.wait(reply.at("id").as_string(), nullptr);

    done.store(true);
    storm.join();
    ::sigaction(SIGUSR1, &old, nullptr);

    EXPECT_GT(g_usr1_count.load(), 0u);
    const auto& records = finished.at("records").items();
    ASSERT_EQ(records.size(), spec.jobs().size());
    for (const auto& rec : records) {
        const auto [key, outcome] = exec::outcome_from_record(rec);
        EXPECT_EQ(outcome.status, JobStatus::Ok) << key;
    }
}

// ---- SIGKILL + --recover against the real binary ---------------------

namespace {

/// fork+exec hwst_serve with the given extra flags; returns the pid.
pid_t spawn_server(const std::string& socket, const std::string& state,
                   const std::string& cache, bool recover)
{
    const pid_t pid = ::fork();
    if (pid != 0) return pid;
    std::vector<std::string> args = {
        HWST_SERVE_BIN, "--socket", socket, "--state", state,
        "--cache",      cache,      "--jobs",  "1",
    };
    if (recover) args.emplace_back("--recover");
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(HWST_SERVE_BIN, argv.data());
    ::_exit(127);
}

/// Poll until the server's socket answers a ping (or time out).
bool await_server(const std::string& socket, std::chrono::seconds limit)
{
    const auto deadline = std::chrono::steady_clock::now() + limit;
    while (std::chrono::steady_clock::now() < deadline) {
        try {
            if (ping_ok(socket)) return true;
        } catch (const common::ToolchainError&) {
        }
        std::this_thread::sleep_for(50ms);
    }
    return false;
}

} // namespace

TEST(ServeChaos, SigkilledServerRecoversBitIdentically)
{
    if (!serve::serving_supported()) GTEST_SKIP();
    const std::string socket = sock_path("chaos_kill");
    const std::string state = fresh_dir("chaos_kill_state");
    const std::string cache = fresh_dir("chaos_kill_cache");
    const serve::GridSpec spec = slow_spec();

    // Cold server, real binary, one worker so the campaign is still
    // mid-flight when the axe falls.
    pid_t pid = spawn_server(socket, state, cache, /*recover=*/false);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(await_server(socket, 30s));

    // Submit and watch until at least one cell has been journaled.
    std::string id;
    {
        serve::Client client{socket};
        const auto reply = client.rpc(submit_req(spec));
        id = reply.at("id").as_string();
        ASSERT_TRUE(client.send(wait_req(id)));
        for (;;) {
            const auto ev = client.recv();
            ASSERT_TRUE(ev.has_value());
            if (ev->find("event") &&
                ev->at("event").as_string() == "progress" &&
                ev->at("finished").as_int() >= 1)
                break;
        }
    }

    // SIGKILL: no drain, no destructors, no fsync beyond what already
    // happened. The hardest crash the OS can deliver.
    ASSERT_EQ(::kill(pid, SIGKILL), 0);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status));

    // Restart with --recover over the same state directory; the old
    // campaign id must resume and finish every cell.
    pid = spawn_server(socket, state, cache, /*recover=*/true);
    ASSERT_GT(pid, 0);
    ASSERT_TRUE(await_server(socket, 30s));

    serve::ClientOptions copts;
    copts.socket_path = socket;
    serve::ResilientClient client{copts};
    const auto finished = client.wait(id, nullptr);
    EXPECT_TRUE(finished.at("recovered").as_bool());
    const auto& records = finished.at("records").items();
    ASSERT_EQ(records.size(), spec.jobs().size());
    for (const auto& rec : records) {
        const auto [key, outcome] = exec::outcome_from_record(rec);
        EXPECT_EQ(outcome.status, JobStatus::Ok) << key;
    }

    // The acceptance bar: equivalent to an uninterrupted local run of
    // the same grid modulo host-side fields (--equiv's projection)...
    EXPECT_EQ(stripped_records(finished), local_stripped_records(spec));

    // ...and the cache the two server generations wrote audits clean.
    const auto audit = serve::audit_cache(cache);
    EXPECT_EQ(audit.invalid, 0u);
    EXPECT_TRUE(audit.ok());

    ASSERT_EQ(::kill(pid, SIGTERM), 0);
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
}

#endif // HWST_CHAOS_POSIX
