// Detection semantics per scheme: which defects each protection
// mechanism catches, with what trap — the mechanics behind Fig. 6.
#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "mir/builder.hpp"
#include "workloads/dsl.hpp"

namespace {

using namespace hwst;
using compiler::Scheme;
using TrapKind = ::hwst::hwst::TrapKind;
using mir::FunctionBuilder;
using mir::Ty;
using mir::Value;

/// Heap overflow: malloc(`size`), byte write at `off`, optionally
/// through a laundered pointer.
mir::Module heap_write(common::i64 size, common::i64 off, bool launder)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(size)));
    if (launder) {
        const auto pi = b.local("pi");
        b.store_local(pi, b.ptr_to_int(b.load_local(p)));
        b.store_local(p, b.int_to_ptr(b.load_local(pi)));
    }
    b.store(b.const_i64(0x41), b.gep_const(b.load_local(p), off), 1);
    b.ret(b.const_i64(0));
    return m;
}

mir::Module use_after_free()
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(32)));
    b.free_(b.load_local(p));
    b.ret(b.load(b.load_local(p)));
    return m;
}

mir::Module double_free()
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(32)));
    b.free_(b.load_local(p));
    b.free_(b.load_local(p));
    b.ret(b.const_i64(0));
    return m;
}

mir::Module use_after_return()
{
    mir::Module m;
    {
        // leak() returns the address of its own stack buffer.
        auto& fn = m.add_function("leak", {}, Ty::Ptr);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto buf = b.array("buf", 32);
        Value p = b.alloca_addr(buf);
        b.store(b.const_i64(9), p);
        b.ret(p);
    }
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.call("leak", {}, Ty::Ptr));
    b.ret(b.load(b.load_local(p)));
    return m;
}

TrapKind trap_of(const mir::Module& m, Scheme s)
{
    return compiler::run(m, s).trap.kind;
}

TEST(Safety, HeapOverflowDetectionMatrix)
{
    const auto m = heap_write(64, 64, false); // first OOB byte
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Gcc), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Asan), TrapKind::AsanReport);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets), TrapKind::SoftSpatialViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128), TrapKind::SpatialViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk), TrapKind::SpatialViolation);
    EXPECT_EQ(trap_of(m, Scheme::Bogo), TrapKind::SoftSpatialViolation);
}

TEST(Safety, LaunderedOverflowEvadesPointerSchemes)
{
    const auto m = heap_write(64, 64, true);
    // Pointer-based schemes lose provenance through int<->ptr...
    EXPECT_EQ(trap_of(m, Scheme::Sbcets), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk), TrapKind::None);
    // ...but ASAN's shadow bytes do not care.
    EXPECT_EQ(trap_of(m, Scheme::Asan), TrapKind::AsanReport);
}

TEST(Safety, SubGranuleHeapOverflow)
{
    // size 60: the compressed bound rounds to 64 — HWST128 misses a +2
    // overflow that byte-exact SBCETS catches (the paper's CWE122 gap).
    const auto m = heap_write(60, 61, false);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets), TrapKind::SoftSpatialViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk), TrapKind::None);
    // Beyond the granule both catch.
    const auto m2 = heap_write(60, 64, false);
    EXPECT_EQ(trap_of(m2, Scheme::Sbcets), TrapKind::SoftSpatialViolation);
    EXPECT_EQ(trap_of(m2, Scheme::Hwst128Tchk),
              TrapKind::SpatialViolation);
}

TEST(Safety, UseAfterFreeDetectionMatrix)
{
    const auto m = use_after_free();
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Gcc), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Asan), TrapKind::AsanReport);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets),
              TrapKind::SoftTemporalViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128),
              TrapKind::SoftTemporalViolation); // software key load
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk),
              TrapKind::TemporalViolation); // tchk + keybuffer
}

TEST(Safety, DoubleFreeDetectionMatrix)
{
    const auto m = double_free();
    // Even the baseline aborts (libc heap consistency).
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::LibcAbort);
    EXPECT_EQ(trap_of(m, Scheme::Gcc), TrapKind::LibcAbort);
    EXPECT_EQ(trap_of(m, Scheme::Asan), TrapKind::AsanReport);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets),
              TrapKind::SoftTemporalViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk),
              TrapKind::TemporalViolation);
}

TEST(Safety, UseAfterReturnCaughtByFrameLocks)
{
    // CETS-style stack temporal safety: the frame lock's key is erased
    // on return, so the leaked pointer's key no longer matches (the
    // paper's use-after-return claim, §3.1).
    const auto m = use_after_return();
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets),
              TrapKind::SoftTemporalViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk),
              TrapKind::TemporalViolation);
}

TEST(Safety, NullDereference)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.null_ptr());
    b.ret(b.load(b.load_local(p)));
    // Pointer schemes flag it via the key-0 temporal check *before* the
    // access; the baseline takes the access fault.
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::AccessFault);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets),
              TrapKind::SoftTemporalViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk),
              TrapKind::TemporalViolation);
}

TEST(Safety, FreeNotAtStart)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(64)));
    b.free_(b.gep_const(b.load_local(p), 16));
    b.ret(b.const_i64(0));
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::LibcAbort);
    EXPECT_EQ(trap_of(m, Scheme::Asan), TrapKind::AsanReport);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets),
              TrapKind::SoftTemporalViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk),
              TrapKind::SoftTemporalViolation); // wrapper base check
}

TEST(Safety, StackOverflowCanaryNeedsReturn)
{
    // Contiguous stack smash: GCC flags it at function return.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    const auto buf = b.array("buf", 32);
    workloads::for_range(b, i, 0, 64, [&] {
        Value addr = b.gep(b.alloca_addr(buf), b.load_local(i), 1);
        b.store(b.const_i64(0x42), addr, 1);
    });
    b.ret(b.const_i64(0));
    EXPECT_EQ(trap_of(m, Scheme::Gcc), TrapKind::StackGuardViolation);
    EXPECT_EQ(trap_of(m, Scheme::None), TrapKind::None);
    EXPECT_EQ(trap_of(m, Scheme::Sbcets), TrapKind::SoftSpatialViolation);
    EXPECT_EQ(trap_of(m, Scheme::Hwst128Tchk),
              TrapKind::SpatialViolation);
}

TEST(Safety, QuarantineKeepsFreedMemoryPoisoned)
{
    // Alloc/free churn then a dangling read: without quarantine the
    // block would be re-unpoisoned by the next malloc.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    const auto q = b.local("q", Ty::Ptr);
    b.store_local(p, b.malloc_(b.const_i64(48)));
    b.free_(b.load_local(p));
    b.store_local(q, b.malloc_(b.const_i64(48))); // must not reuse p
    b.ret(b.load(b.load_local(p)));
    EXPECT_EQ(trap_of(m, Scheme::Asan), TrapKind::AsanReport);
}

TEST(Safety, WdlModelsStillDetectTemporal)
{
    // The WDL cost models keep full temporal checking (software key
    // loads, no keybuffer).
    const auto m = use_after_free();
    EXPECT_EQ(trap_of(m, Scheme::WdlWide), TrapKind::SoftTemporalViolation);
    EXPECT_EQ(trap_of(m, Scheme::WdlNarrow),
              TrapKind::SoftTemporalViolation);
}

TEST(Safety, BogoPartialTemporal)
{
    // BOGO nullifies bounds on free: the dangling *deref through the
    // same metadata* trips the spatial check (partial temporal safety).
    const auto m = use_after_free();
    EXPECT_EQ(trap_of(m, Scheme::Bogo), TrapKind::SoftSpatialViolation);
}

TEST(Safety, MemcpyOverflowCaughtByWrappers)
{
    // memcpy with a length that overruns dst: the SoftBoundCETS-style
    // wrapper (software) and the SCU probe (hardware) both flag it.
    const auto build = [](common::i64 len) {
        mir::Module m;
        auto& fn = m.add_function("main", {}, Ty::I64);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto d = b.local("d", Ty::Ptr);
        const auto s2 = b.local("s", Ty::Ptr);
        b.store_local(d, b.malloc_(b.const_i64(32)));
        b.store_local(s2, b.malloc_(b.const_i64(64)));
        b.memcpy_(b.load_local(d), b.load_local(s2), b.const_i64(len));
        b.ret(b.const_i64(0));
        return m;
    };
    const auto bad = build(48); // dst is only 32 bytes
    EXPECT_EQ(trap_of(bad, Scheme::Sbcets), TrapKind::SoftSpatialViolation);
    EXPECT_EQ(trap_of(bad, Scheme::Hwst128Tchk),
              TrapKind::SpatialViolation);
    EXPECT_EQ(trap_of(bad, Scheme::Gcc), TrapKind::None);
    const auto good = build(32);
    EXPECT_EQ(trap_of(good, Scheme::Sbcets), TrapKind::None);
    EXPECT_EQ(trap_of(good, Scheme::Hwst128Tchk), TrapKind::None);
}

TEST(Safety, MemsetOverflowCaughtByWrappers)
{
    const auto build = [](common::i64 len) {
        mir::Module m;
        auto& fn = m.add_function("main", {}, Ty::I64);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto d = b.local("d", Ty::Ptr);
        b.store_local(d, b.malloc_(b.const_i64(32)));
        b.memset_(b.load_local(d), b.const_i64(0xAA), b.const_i64(len));
        b.ret(b.const_i64(0));
        return m;
    };
    EXPECT_EQ(trap_of(build(40), Scheme::Sbcets),
              TrapKind::SoftSpatialViolation);
    EXPECT_EQ(trap_of(build(40), Scheme::Hwst128Tchk),
              TrapKind::SpatialViolation);
    EXPECT_EQ(trap_of(build(32), Scheme::Sbcets), TrapKind::None);
    EXPECT_EQ(trap_of(build(32), Scheme::Hwst128Tchk), TrapKind::None);
}

TEST(Safety, NoFalsePositivesOnCleanProgram)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto p = b.local("p", Ty::Ptr);
    const auto i = b.local("i");
    const auto sum = b.local("sum");
    b.store_local(p, b.malloc_(b.const_i64(64)));
    workloads::for_range(b, i, 0, 8, [&] {
        b.store(b.load_local(i),
                b.gep(b.load_local(p), b.load_local(i), 8));
    });
    b.store_local(sum, b.const_i64(0));
    workloads::for_range(b, i, 0, 8, [&] {
        b.store_local(sum,
                      b.add(b.load_local(sum),
                            b.load(b.gep(b.load_local(p),
                                         b.load_local(i), 8))));
    });
    b.free_(b.load_local(p));
    b.ret(b.load_local(sum));
    for (const Scheme s : compiler::kAllSchemes) {
        const auto r = compiler::run(m, s);
        EXPECT_TRUE(r.ok()) << compiler::scheme_name(s) << ": "
                            << trap_name(r.trap.kind);
        EXPECT_EQ(r.exit_code, 28) << compiler::scheme_name(s);
    }
}

} // namespace
