// Differential fuzzing of the metadata machinery: random sequences of
// bind / move / pointer-arithmetic / clobber / spill+reload / checked
// dereference are mirrored by a host-side model of the SRF and shadow
// memory. The machine's pass/violation outcome must match the model —
// including the 8-byte compression granularity of the bound.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "common/prng.hpp"
#include "riscv/program.hpp"
#include "sim/machine.hpp"
#include "sim/syscalls.hpp"

namespace {

using namespace hwst::riscv;
namespace sim = hwst::sim;
using hwst::common::align_up;
using hwst::common::i64;
using hwst::common::u64;
using hwst::common::Xoshiro256;
using TrapKind = hwst::hwst::TrapKind;

struct HostMeta {
    u64 base = 0;
    u64 bound = 0; ///< already rounded up to the 8-byte granule
    bool valid = false;
};

struct HostModel {
    std::map<unsigned, HostMeta> srf;      // reg index -> spatial meta
    std::map<u64, HostMeta> shadow;        // container addr -> meta
    std::map<unsigned, u64> regval;        // reg index -> value

    bool would_pass(unsigned r, i64 off, unsigned width) const
    {
        const auto it = srf.find(r);
        if (it == srf.end() || !it->second.valid) return true; // unchecked
        const u64 addr = regval.at(r) + static_cast<u64>(off);
        return addr >= it->second.base &&
               addr + width <= it->second.bound;
    }
};

// Work registers for the fuzzer.
const Reg kRegs[] = {Reg::s2, Reg::s3, Reg::s4, Reg::s5, Reg::s6, Reg::s7};

class MetadataFuzz : public ::testing::TestWithParam<u64> {};

TEST_P(MetadataFuzz, MachineMatchesHostModel)
{
    Xoshiro256 rng{0x3E7ADA7A + GetParam() * 31337};

    Program p;
    p.label("main");
    const u64 data = p.layout().data_base;
    HostModel host;

    const auto pick_reg = [&] {
        return kRegs[rng.below(std::size(kRegs))];
    };

    // Pre-point every work register at a distinct object.
    for (unsigned i = 0; i < std::size(kRegs); ++i) {
        const u64 base = data + 512 * i;
        p.emit_li(kRegs[i], static_cast<i64>(base));
        host.regval[reg_index(kRegs[i])] = base;
        host.srf[reg_index(kRegs[i])] = HostMeta{}; // no metadata yet
    }

    // Random operation stream (all expected to pass); then one final
    // dereference whose outcome the model predicts.
    for (int step = 0; step < 120; ++step) {
        const Reg r = pick_reg();
        const unsigned ri = reg_index(r);
        switch (rng.below(6)) {
        case 0: { // bind to a fresh object at the reg's position
            // The binding base must be 8-aligned (Eq. 3); allocators
            // guarantee that, so the fuzzer aligns down like one.
            const u64 addr = host.regval[ri] & ~u64{7};
            const u64 size = 8 + rng.below(30) * 4; // non-granule sizes
            p.emit_li(r, static_cast<i64>(addr)); // re-materialise
            p.emit_li(Reg::t4, static_cast<i64>(addr + size));
            p.emit(rtype(Opcode::BNDRS, r, r, Reg::t4));
            // Compression: the bound rounds up to the 8-byte granule.
            host.regval[ri] = addr;
            host.srf[ri] = HostMeta{addr, addr + align_up(size, 8), true};
            break;
        }
        case 1: { // register move propagates
            const Reg dst = pick_reg();
            if (dst == r) break;
            p.emit(mv(dst, r));
            host.regval[reg_index(dst)] = host.regval[ri];
            host.srf[reg_index(dst)] = host.srf[ri];
            break;
        }
        case 2: { // pointer arithmetic keeps metadata
            const auto& m = host.srf[ri];
            if (!m.valid) break;
            const u64 span = m.bound - m.base;
            if (span < 16) break;
            const i64 delta = static_cast<i64>(rng.below(8)) - 4;
            const u64 next = host.regval[ri] + static_cast<u64>(delta);
            if (next < m.base || next >= m.bound) break;
            p.emit(itype(Opcode::ADDI, r, r, delta));
            host.regval[ri] = next;
            break;
        }
        case 3: { // clobber destroys metadata
            p.emit(rtype(Opcode::XOR, r, r, Reg::zero));
            host.srf[ri].valid = false;
            break;
        }
        case 4: { // spill + reload through the LMSM
            const u64 container = data + 3072 + 8 * rng.below(64);
            p.emit_li(Reg::t5, static_cast<i64>(container));
            p.emit(stype(Opcode::SD, Reg::t5, r, 0));
            p.emit(stype(Opcode::SBDL, Reg::t5, r, 0));
            p.emit(stype(Opcode::SBDU, Reg::t5, r, 0));
            host.shadow[container] = host.srf[ri];
            const Reg dst = pick_reg();
            p.emit(itype(Opcode::LD, dst, Reg::t5, 0));
            p.emit(itype(Opcode::LBDLS, dst, Reg::t5, 0));
            p.emit(itype(Opcode::LBDUS, dst, Reg::t5, 0));
            host.regval[reg_index(dst)] = host.regval[ri];
            host.srf[reg_index(dst)] = host.shadow[container];
            break;
        }
        case 5: { // in-bounds checked access (must pass)
            const auto& m = host.srf[ri];
            u64 addr = host.regval[ri];
            i64 off = 0;
            if (m.valid) {
                if (addr < m.base || addr + 8 > m.bound) break;
                off = static_cast<i64>(
                    rng.below((m.bound - addr) / 8)) * 8;
                if (addr + static_cast<u64>(off) + 8 > m.bound) off = 0;
            }
            ASSERT_TRUE(host.would_pass(ri, off, 8));
            p.emit(itype(Opcode::CLD, Reg::t4, r, off));
            break;
        }
        }
    }

    // Final dereference with a model-predicted outcome.
    const Reg r = kRegs[rng.below(std::size(kRegs))];
    const unsigned ri = reg_index(r);
    // Metadata-less pointers must stay in mapped memory (no SCU to stop
    // the access); tracked pointers may also probe below the base.
    const bool tracked = host.srf[ri].valid;
    const i64 off = tracked ? static_cast<i64>(rng.below(96)) - 16
                            : static_cast<i64>(rng.below(96));
    const bool expect_pass = host.would_pass(ri, off, 8);
    p.emit(itype(Opcode::CLD, Reg::t4, r, off));

    p.emit_li(Reg::a0, 0);
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();

    sim::Machine machine{p};
    const auto result = machine.run();
    if (expect_pass) {
        EXPECT_TRUE(result.ok())
            << "model: pass, machine: " << trap_name(result.trap.kind)
            << " at 0x" << std::hex << result.trap.addr;
    } else {
        EXPECT_EQ(result.trap.kind, TrapKind::SpatialViolation)
            << "model: violation, machine: "
            << trap_name(result.trap.kind);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetadataFuzz, ::testing::Range<u64>(0, 40));

} // namespace
