// End-to-end codegen semantics: every scheme must preserve program
// behaviour for well-behaved programs (instrumentation is transparent).
#include <gtest/gtest.h>

#include "compiler/driver.hpp"
#include "mir/builder.hpp"
#include "workloads/dsl.hpp"

namespace {

using namespace hwst;
using compiler::Scheme;
using mir::FunctionBuilder;
using mir::Ty;
using mir::Value;
using workloads::for_range;
using workloads::if_then;

class CodegenAllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(CodegenAllSchemes, RecursionAndCalls)
{
    mir::Module m;
    {
        auto& fn = m.add_function("fib", {Ty::I64}, Ty::I64);
        FunctionBuilder b{m, fn};
        const auto entry = b.block("entry");
        const auto rec = b.block("rec");
        const auto basecase = b.block("base");
        const auto n = b.local("n");
        b.set_insert(entry);
        b.store_local(n, b.param(0));
        b.br(b.lt(b.load_local(n), b.const_i64(2)), basecase, rec);
        b.set_insert(basecase);
        b.ret(b.load_local(n));
        b.set_insert(rec);
        Value f1 = b.call(
            "fib", {b.sub(b.load_local(n), b.const_i64(1))}, Ty::I64);
        const auto acc = b.local("acc");
        b.store_local(acc, f1);
        Value f2 = b.call(
            "fib", {b.sub(b.load_local(n), b.const_i64(2))}, Ty::I64);
        b.ret(b.add(b.load_local(acc), f2));
    }
    {
        auto& fn = m.add_function("main", {}, Ty::I64);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        b.ret(b.call("fib", {b.const_i64(15)}, Ty::I64));
    }
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 610);
}

TEST_P(CodegenAllSchemes, PointerArgsAndReturns)
{
    mir::Module m;
    {
        // pick(p, i) -> &p[i]
        auto& fn = m.add_function("pick", {Ty::Ptr, Ty::I64}, Ty::Ptr);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        b.ret(b.gep(b.param(0), b.param(1), 8));
    }
    {
        auto& fn = m.add_function("main", {}, Ty::I64);
        FunctionBuilder b{m, fn};
        b.set_insert(b.block("entry"));
        const auto arr = b.local("arr", Ty::Ptr);
        const auto i = b.local("i");
        b.store_local(arr, b.malloc_(b.const_i64(10 * 8)));
        for_range(b, i, 0, 10, [&] {
            Value slot = b.call(
                "pick", {b.load_local(arr), b.load_local(i)}, Ty::Ptr);
            b.store(b.mul(b.load_local(i), b.const_i64(7)), slot);
        });
        const auto sum = b.local("sum");
        b.store_local(sum, b.const_i64(0));
        for_range(b, i, 0, 10, [&] {
            Value slot = b.call(
                "pick", {b.load_local(arr), b.load_local(i)}, Ty::Ptr);
            b.store_local(sum, b.add(b.load_local(sum), b.load(slot)));
        });
        b.free_(b.load_local(arr));
        b.ret(b.load_local(sum));
    }
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 7 * 45);
}

TEST_P(CodegenAllSchemes, GlobalsAndByteAccess)
{
    mir::Module m;
    std::vector<common::u8> init{10, 20, 30, 40};
    const auto g = m.add_global(mir::Global{"tbl", 4, 8, init});
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    const auto sum = b.local("sum");
    b.store_local(sum, b.const_i64(0));
    for_range(b, i, 0, 4, [&] {
        Value v = b.load(b.gep(b.global_addr(g), b.load_local(i), 1), 1,
                         false);
        b.store_local(sum, b.add(b.load_local(sum), v));
    });
    b.ret(b.load_local(sum));
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 100);
}

TEST_P(CodegenAllSchemes, MemcpyMemsetPreservePointers)
{
    // A pointer copied by rt_memcpy must keep working (metadata moves
    // with it); a memset over its container must not fault later
    // in-bounds uses of other data.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto box_a = b.local("box_a", Ty::Ptr);
    const auto box_b = b.local("box_b", Ty::Ptr);
    const auto obj = b.local("obj", Ty::Ptr);
    b.store_local(obj, b.malloc_(b.const_i64(16)));
    b.store(b.const_i64(4321), b.load_local(obj));
    b.store_local(box_a, b.malloc_(b.const_i64(32)));
    b.store_local(box_b, b.malloc_(b.const_i64(32)));
    // box_a[0] = obj; memcpy(box_b, box_a, 32); read through box_b[0].
    b.store(b.load_local(obj), b.load_local(box_a));
    b.memcpy_(b.load_local(box_b), b.load_local(box_a), b.const_i64(32));
    const auto out = b.local("out");
    Value copied = b.load_ptr(b.load_local(box_b));
    b.store_local(out, b.load(copied));
    // memset box_a; its metadata for the stored pointer must be gone,
    // but ordinary data access still works.
    b.memset_(b.load_local(box_a), b.const_i64(0), b.const_i64(32));
    b.store_local(out, b.add(b.load_local(out),
                             b.load(b.load_local(box_a))));
    b.ret(b.load_local(out));
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 4321);
}

TEST_P(CodegenAllSchemes, LargeFrameOffsets)
{
    // Arrays big enough to push frame offsets beyond imm12.
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto big = b.array("big", 16 * 1024);
    const auto i = b.local("i");
    const auto sum = b.local("sum");
    for_range(b, i, 0, 2048, [&] {
        Value slot = b.gep(b.alloca_addr(big), b.load_local(i), 8);
        b.store(b.and_(b.load_local(i), b.const_i64(7)), slot);
    });
    b.store_local(sum, b.const_i64(0));
    for_range(b, i, 0, 2048, [&] {
        Value slot = b.gep(b.alloca_addr(big), b.load_local(i), 8);
        b.store_local(sum, b.add(b.load_local(sum), b.load(slot)));
    });
    b.ret(b.load_local(sum));
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.exit_code, 2048 / 8 * 28);
}

TEST_P(CodegenAllSchemes, PrintOutputOrdering)
{
    mir::Module m;
    auto& fn = m.add_function("main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    const auto i = b.local("i");
    for_range(b, i, 0, 5, [&] { b.print(b.load_local(i)); });
    b.ret(b.const_i64(0));
    const auto r = compiler::run(m, GetParam());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.output, (std::vector<common::i64>{0, 1, 2, 3, 4}));
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CodegenAllSchemes,
    ::testing::ValuesIn(compiler::kAllSchemes),
    [](const auto& info) {
        return std::string{compiler::scheme_name(info.param)};
    });

TEST(Codegen, RequiresMain)
{
    mir::Module m;
    auto& fn = m.add_function("not_main", {}, Ty::I64);
    FunctionBuilder b{m, fn};
    b.set_insert(b.block("entry"));
    b.ret(b.const_i64(0));
    EXPECT_THROW(compiler::compile(m, Scheme::None),
                 common::ToolchainError);
}

TEST(Codegen, InstrumentationGrowsCodeMonotonically)
{
    mir::Module m = [] {
        mir::Module mm;
        auto& fn = mm.add_function("main", {}, Ty::I64);
        FunctionBuilder b{mm, fn};
        b.set_insert(b.block("entry"));
        const auto p = b.local("p", Ty::Ptr);
        b.store_local(p, b.malloc_(b.const_i64(64)));
        b.store(b.const_i64(1), b.load_local(p));
        Value v = b.load(b.load_local(p));
        b.free_(b.load_local(p));
        b.ret(v);
        return mm;
    }();
    const auto none = compiler::compile(m, Scheme::None);
    const auto hwst = compiler::compile(m, Scheme::Hwst128Tchk);
    const auto sb = compiler::compile(m, Scheme::Sbcets);
    EXPECT_LT(none.program.code().size(), hwst.program.code().size());
    EXPECT_LT(hwst.program.code().size(), sb.program.code().size());
}

} // namespace
