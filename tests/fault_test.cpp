// Tests of the metadata fault-injection engine (src/fault/) and the
// graceful-degradation paths it exercises: the injector's trigger
// semantics, the trap-or-survive oracle, saturating metadata
// compression at machine level, and a small deterministic campaign.
#include <gtest/gtest.h>

#include <bit>
#include <functional>
#include <sstream>

#include "fault/campaign.hpp"
#include "riscv/program.hpp"
#include "sim/machine.hpp"
#include "sim/syscalls.hpp"

namespace {

using namespace hwst::riscv;
namespace fault = hwst::fault;
namespace hw = hwst::hwst;
namespace sim = hwst::sim;
using hwst::common::i64;
using hwst::common::u64;
using hw::TrapKind;
using sim::Machine;
using sim::Probe;
using sim::Sys;

struct Built {
    Program program;
};

Built build(const std::function<void(Program&)>& body)
{
    Built b;
    b.program.label("main");
    body(b.program);
    b.program.emit_li(Reg::a7, static_cast<i64>(Sys::Exit));
    b.program.emit(Instruction{Opcode::ECALL});
    b.program.finalize();
    return b;
}

// ---------------------------------------------------------------- injector

TEST(Injector, OneShotFiresOnceAtOrAfterTrigger)
{
    fault::Injector inj{
        fault::FaultPlan::single(Probe::LmsmLoad, fault::FaultMode::OneShot,
                                 /*trigger=*/5, /*xor_mask=*/0b11)};
    EXPECT_EQ(inj.perturb(Probe::LmsmLoad, 4, 0x100), 0x100u); // too early
    EXPECT_EQ(inj.perturb(Probe::LmsmLoad, 7, 0x100), 0x103u); // fires late
    EXPECT_EQ(inj.perturb(Probe::LmsmLoad, 8, 0x100), 0x100u); // disarmed
    EXPECT_TRUE(inj.fired());
    EXPECT_EQ(inj.fires(), 1u);
    EXPECT_EQ(inj.first_fire_instret(), 7u);
    ASSERT_EQ(inj.log().size(), 1u);
    EXPECT_EQ(inj.log()[0].before, 0x100u);
    EXPECT_EQ(inj.log()[0].after, 0x103u);
}

TEST(Injector, StuckAtKeepsFiring)
{
    fault::Injector inj{
        fault::FaultPlan::single(Probe::SrfTemporalWrite,
                                 fault::FaultMode::StuckAt, 2, 1)};
    EXPECT_EQ(inj.perturb(Probe::SrfTemporalWrite, 2, 10), 11u);
    EXPECT_EQ(inj.perturb(Probe::SrfTemporalWrite, 3, 10), 11u);
    EXPECT_EQ(inj.perturb(Probe::SrfTemporalWrite, 9, 10), 11u);
    EXPECT_EQ(inj.fires(), 3u);
}

TEST(Injector, IgnoresOtherPoints)
{
    fault::Injector inj{
        fault::FaultPlan::single(Probe::LmsmStore, fault::FaultMode::StuckAt,
                                 1, 0xFF)};
    EXPECT_EQ(inj.perturb(Probe::LmsmLoad, 100, 42), 42u);
    EXPECT_EQ(inj.perturb(Probe::KeybufferFill, 100, 42), 42u);
    EXPECT_FALSE(inj.fired());
}

TEST(Injector, RandomSpecIsDeterministicAndBounded)
{
    hwst::common::Xoshiro256 a{7}, b{7};
    const auto s1 = fault::FaultPlan::random_spec(Probe::LmsmLoad, 1000, a);
    const auto s2 = fault::FaultPlan::random_spec(Probe::LmsmLoad, 1000, b);
    EXPECT_EQ(s1.trigger_instret, s2.trigger_instret);
    EXPECT_EQ(s1.xor_mask, s2.xor_mask);
    for (int i = 0; i < 200; ++i) {
        const auto s = fault::FaultPlan::random_spec(Probe::LmsmLoad, 1000, a);
        EXPECT_GE(s.trigger_instret, 1u);
        EXPECT_LE(s.trigger_instret, 1000u);
        const int bits = std::popcount(s.xor_mask);
        EXPECT_GE(bits, 1);
        EXPECT_LE(bits, 2);
    }
}

// ------------------------------------------------------------------ oracle

sim::RunResult clean_run()
{
    sim::RunResult r;
    r.exit_code = 42;
    r.output = {1, 2, 3};
    r.instret = 100;
    return r;
}

TEST(Oracle, IdenticalCleanRunIsMasked)
{
    const fault::Injector inj{fault::FaultPlan{}};
    const auto v = fault::classify(clean_run(), clean_run(), inj);
    EXPECT_EQ(v.verdict, fault::Verdict::Masked);
    EXPECT_FALSE(v.fired);
}

TEST(Oracle, DivergedOutputIsSilentCorruption)
{
    const fault::Injector inj{fault::FaultPlan{}};
    auto faulted = clean_run();
    faulted.output.back() = 4;
    EXPECT_EQ(fault::classify(clean_run(), faulted, inj).verdict,
              fault::Verdict::SilentCorruption);
    faulted = clean_run();
    faulted.exit_code = 43;
    EXPECT_EQ(fault::classify(clean_run(), faulted, inj).verdict,
              fault::Verdict::SilentCorruption);
}

TEST(Oracle, TrapIsDetectedButLivelockIsNot)
{
    const fault::Injector inj{fault::FaultPlan{}};
    auto faulted = clean_run();
    faulted.trap.kind = TrapKind::SpatialViolation;
    EXPECT_EQ(fault::classify(clean_run(), faulted, inj).verdict,
              fault::Verdict::Detected);
    // Fuel exhaustion is a hang, not a detection: the hardware never
    // raised an architectural trap.
    faulted.trap.kind = TrapKind::FuelExhausted;
    EXPECT_EQ(fault::classify(clean_run(), faulted, inj).verdict,
              fault::Verdict::SilentCorruption);
}

TEST(Oracle, RejectsDirtyGoldenRun)
{
    const fault::Injector inj{fault::FaultPlan{}};
    auto golden = clean_run();
    golden.trap.kind = TrapKind::SpatialViolation;
    EXPECT_THROW(fault::classify(golden, clean_run(), inj),
                 hwst::common::ToolchainError);
}

// --------------------------------------------------- machine-level faults

TEST(FaultInjection, SrfRangeFaultForcesSpuriousTrapNeverSilent)
{
    auto b = build([](Program& p) {
        const i64 base = static_cast<i64>(p.layout().data_base);
        p.emit_li(Reg::a0, base);
        p.emit_li(Reg::t4, base + 64);
        p.emit(rtype(Opcode::BNDRS, Reg::a0, Reg::a0, Reg::t4));
        p.emit(itype(Opcode::CLD, Reg::a0, Reg::a0, 0));
        p.emit_li(Reg::a0, 0);
    });
    Machine golden{b.program};
    ASSERT_TRUE(golden.run().ok());
    // Flip the range field (8 granules -> 0): the bound collapses onto
    // the base and the first checked load must trap — the fault lands in
    // check metadata, so it can only be spurious-trap or masked.
    fault::Injector inj{fault::FaultPlan::single(
        Probe::SrfSpatialWrite, fault::FaultMode::OneShot, 1, u64{8} << 35)};
    Machine m{b.program};
    inj.attach(m);
    const auto r = m.run();
    EXPECT_TRUE(inj.fired());
    EXPECT_EQ(r.trap.kind, TrapKind::SpatialViolation);
}

// ------------------------------------------------- graceful degradation

TEST(GracefulDegradation, OversizedRangeSaturatesAndTrapsOnFirstUse)
{
    // A >4 GiB object cannot encode in 29 range bits. The bind itself
    // must not trap (COMP just emits the poison encoding); the first
    // checked use does.
    auto b = build([](Program& p) {
        const i64 base = static_cast<i64>(p.layout().data_base);
        p.emit_li(Reg::a0, base);
        p.emit_li(Reg::t4, base + (i64{1} << 33));
        p.emit(rtype(Opcode::BNDRS, Reg::a0, Reg::a0, Reg::t4));
        p.emit(itype(Opcode::CLD, Reg::a0, Reg::a0, 0)); // in true bounds
    });
    Machine m{b.program};
    const auto r = m.run();
    EXPECT_EQ(r.trap.kind, TrapKind::SpatialViolation);
    EXPECT_EQ(r.scu_saturated, 1u);
}

TEST(GracefulDegradation, OversizedKeySaturatesAndTrapsOnTchk)
{
    auto b = build([](Program& p) {
        const i64 base = static_cast<i64>(p.layout().data_base);
        p.emit_li(Reg::a7, static_cast<i64>(Sys::LockAlloc));
        p.emit(Instruction{Opcode::ECALL}); // a0 = lock (key ignored)
        p.emit_li(Reg::t0, base);
        p.emit_li(Reg::t1, i64{1} << 44); // one past the 44-bit key space
        p.emit(rtype(Opcode::BNDRT, Reg::t0, Reg::t1, Reg::a0));
        p.emit(rtype(Opcode::TCHK, Reg::zero, Reg::t0, Reg::zero));
    });
    Machine m{b.program};
    const auto r = m.run();
    EXPECT_EQ(r.trap.kind, TrapKind::TemporalViolation);
    EXPECT_EQ(r.tcu_saturated, 1u);
}

TEST(GracefulDegradation, CsrNarrowedWidthsSaturateFormerlyFittingObject)
{
    // Reconfigure csr.bitw to a 10-bit range (max 8184-byte objects): a
    // 16-KiB bind that fits the default 29-bit range must now saturate
    // and trap on use.
    auto b = build([](Program& p) {
        const i64 base = static_cast<i64>(p.layout().data_base);
        p.emit_li(Reg::t0, 32 | (10 << 6) | (10 << 12));
        p.emit(csr_op(Opcode::CSRRW, Reg::zero, Reg::t0, hw::kCsrBitw));
        p.emit_li(Reg::a0, base);
        p.emit_li(Reg::t4, base + 16384);
        p.emit(rtype(Opcode::BNDRS, Reg::a0, Reg::a0, Reg::t4));
        p.emit(itype(Opcode::CLD, Reg::a0, Reg::a0, 0));
    });
    Machine m{b.program};
    const auto r = m.run();
    EXPECT_EQ(r.trap.kind, TrapKind::SpatialViolation);
    EXPECT_EQ(r.scu_saturated, 1u);
}

TEST(GracefulDegradation, InBoundsObjectStillPassesUnderNarrowedWidths)
{
    auto b = build([](Program& p) {
        const i64 base = static_cast<i64>(p.layout().data_base);
        p.emit_li(Reg::t0, 32 | (10 << 6) | (10 << 12));
        p.emit(csr_op(Opcode::CSRRW, Reg::zero, Reg::t0, hw::kCsrBitw));
        p.emit_li(Reg::a0, base);
        p.emit_li(Reg::t4, base + 4096); // fits 10 range bits
        p.emit(rtype(Opcode::BNDRS, Reg::a0, Reg::a0, Reg::t4));
        p.emit(itype(Opcode::CLD, Reg::a0, Reg::a0, 2040));
        p.emit_li(Reg::a0, 0);
    });
    Machine m{b.program};
    const auto r = m.run();
    EXPECT_TRUE(r.ok()) << trap_name(r.trap.kind);
    EXPECT_EQ(r.scu_saturated, 0u);
}

TEST(GracefulDegradation, InvalidWidthCsrWriteTrapsInsteadOfUB)
{
    auto b = build([](Program& p) {
        p.emit_li(Reg::t0, 0); // base_bits = 0: invalid configuration
        p.emit(csr_op(Opcode::CSRRW, Reg::zero, Reg::t0, hw::kCsrBitw));
    });
    Machine m{b.program};
    const auto r = m.run();
    EXPECT_EQ(r.trap.kind, TrapKind::IllegalInstruction);
    EXPECT_EQ(r.trap.addr, hw::kCsrBitw);
}

TEST(GracefulDegradation, BogusLockFreeAborts)
{
    auto b = build([](Program& p) {
        p.emit_li(Reg::a0, 0x1234); // never a granted lock_location
        p.emit_li(Reg::a7, static_cast<i64>(Sys::LockFree));
        p.emit(Instruction{Opcode::ECALL});
    });
    Machine m{b.program};
    EXPECT_EQ(m.run().trap.kind, TrapKind::LibcAbort);
}

TEST(GracefulDegradation, DoubleLockFreeAborts)
{
    auto b = build([](Program& p) {
        p.emit_li(Reg::a7, static_cast<i64>(Sys::LockAlloc));
        p.emit(Instruction{Opcode::ECALL}); // a0 = lock
        p.emit(mv(Reg::s2, Reg::a0));
        p.emit_li(Reg::a7, static_cast<i64>(Sys::LockFree));
        p.emit(Instruction{Opcode::ECALL}); // first free: fine
        p.emit(mv(Reg::a0, Reg::s2));
        p.emit_li(Reg::a7, static_cast<i64>(Sys::LockFree));
        p.emit(Instruction{Opcode::ECALL}); // double free: abort
    });
    Machine m{b.program};
    const auto r = m.run();
    EXPECT_EQ(r.trap.kind, TrapKind::LibcAbort);
}

// ---------------------------------------------------------------- campaign

TEST(FaultCampaign, SmokeNoSilentCorruptionAtProtectedPoints)
{
    fault::CampaignConfig cfg;
    cfg.workloads = {"dijkstra"};
    cfg.points = {Probe::SrfSpatialWrite, Probe::SrfTemporalWrite,
                  Probe::LmsmStore, Probe::LmsmLoad};
    cfg.seeds_per_point = 4;
    const auto report = fault::run_campaign(cfg);
    EXPECT_EQ(report.total_runs(), 16u);
    EXPECT_EQ(report.protected_silent(), 0u);

    // Same config -> byte-identical report (campaign determinism).
    std::ostringstream first, second;
    report.print(first);
    fault::run_campaign(cfg).print(second);
    EXPECT_EQ(first.str(), second.str());
    EXPECT_NE(first.str().find("srf-spatial-write"), std::string::npos);
}

} // namespace
