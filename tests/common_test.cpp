#include <gtest/gtest.h>

#include <sstream>

#include "common/bitops.hpp"
#include "common/env.hpp"
#include "common/prng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace {

using namespace hwst::common;

TEST(Bitops, Mask64)
{
    EXPECT_EQ(mask64(0), 0u);
    EXPECT_EQ(mask64(1), 1u);
    EXPECT_EQ(mask64(8), 0xFFu);
    EXPECT_EQ(mask64(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(mask64(64), ~u64{0});
    EXPECT_EQ(mask64(70), ~u64{0});
}

TEST(Bitops, BitsExtract)
{
    EXPECT_EQ(bits(0xDEADBEEF, 0, 8), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 28, 4), 0xDu);
    EXPECT_EQ(bit(0x8, 3), 1u);
    EXPECT_EQ(bit(0x8, 2), 0u);
}

TEST(Bitops, SignExtend)
{
    EXPECT_EQ(sign_extend(0xFF, 8), -1);
    EXPECT_EQ(sign_extend(0x7F, 8), 127);
    EXPECT_EQ(sign_extend(0x800, 12), -2048);
    EXPECT_EQ(sign_extend(0x7FF, 12), 2047);
    EXPECT_EQ(sign_extend(0, 12), 0);
    EXPECT_EQ(sign_extend(0xFFFFFFFF, 32), -1);
}

TEST(Bitops, FitsSigned)
{
    EXPECT_TRUE(fits_signed(2047, 12));
    EXPECT_FALSE(fits_signed(2048, 12));
    EXPECT_TRUE(fits_signed(-2048, 12));
    EXPECT_FALSE(fits_signed(-2049, 12));
    EXPECT_TRUE(fits_signed(INT64_MAX, 64));
}

TEST(Bitops, FitsUnsigned)
{
    EXPECT_TRUE(fits_unsigned(255, 8));
    EXPECT_FALSE(fits_unsigned(256, 8));
    EXPECT_TRUE(fits_unsigned(~u64{0}, 64));
}

TEST(Bitops, Alignment)
{
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(8, 8), 8u);
    EXPECT_EQ(align_up(9, 16), 16u);
    EXPECT_EQ(align_down(15, 8), 8u);
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(4096));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(12));
}

TEST(Bitops, Clog2)
{
    EXPECT_EQ(clog2(1), 0u);
    EXPECT_EQ(clog2(2), 1u);
    EXPECT_EQ(clog2(3), 2u);
    EXPECT_EQ(clog2(1024), 10u);
    EXPECT_EQ(clog2(1025), 11u);
    EXPECT_EQ(clog2(u64{1} << 38), 38u);
}

TEST(Bitops, NarrowThrowsOnLoss)
{
    EXPECT_EQ(narrow<u8>(u64{200}), 200);
    EXPECT_THROW(narrow<u8>(u64{256}), std::range_error);
    EXPECT_THROW(narrow<u8>(i64{-1}), std::range_error);
    EXPECT_EQ(narrow<i8>(i64{-100}), -100);
}

TEST(Prng, Deterministic)
{
    Xoshiro256 a{123}, b{123};
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, SeedChangesStream)
{
    Xoshiro256 a{1}, b{2};
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) ++same;
    EXPECT_LT(same, 4);
}

TEST(Prng, RangeBounds)
{
    Xoshiro256 rng{7};
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.range(10, 20);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 20u);
    }
}

TEST(Stats, GeoMean)
{
    const double xs[] = {1.0, 4.0};
    EXPECT_DOUBLE_EQ(geo_mean(xs), 2.0);
    const double bad[] = {1.0, -1.0};
    EXPECT_THROW(geo_mean(bad), std::domain_error);
}

TEST(Stats, EmptyInputIsReported)
{
    const std::span<const double> empty{};
    EXPECT_THROW(mean(empty), std::domain_error);
    EXPECT_THROW(geo_mean(empty), std::domain_error);
    EXPECT_THROW(geo_mean_overhead_pct(empty), std::domain_error);
    EXPECT_THROW(stddev(empty), std::domain_error);
    EXPECT_THROW(percentile(empty, 50.0), std::domain_error);
}

TEST(Stats, Stddev)
{
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_NEAR(stddev(xs), 2.13809, 1e-5); // sample (n-1) stddev
    const double one[] = {42.0};
    EXPECT_DOUBLE_EQ(stddev(one), 0.0);
}

TEST(Stats, Percentile)
{
    const double xs[] = {15.0, 20.0, 35.0, 40.0, 50.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 15.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 35.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 75.0), 40.0);
    EXPECT_THROW(percentile(xs, 101.0), std::domain_error);
    const double one[] = {7.0};
    EXPECT_DOUBLE_EQ(percentile(one, 99.0), 7.0);
}

TEST(Stats, GeoMeanOverheadPct)
{
    // 100% and 300% overhead -> ratios 2 and 4 -> geo 2.828 -> 182.8%
    const double ohs[] = {100.0, 300.0};
    EXPECT_NEAR(geo_mean_overhead_pct(ohs), 182.84, 0.01);
}

TEST(Table, AlignsColumns)
{
    TextTable t{{"a", "bb"}};
    t.add_row({"xxx", "y"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("xxx"), std::string::npos);
    EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, Fmt)
{
    EXPECT_EQ(fmt(3.14159, 2), "3.14");
    EXPECT_EQ(fmt(100.0, 0), "100");
}

TEST(Env, ParseBoolFlag)
{
    // The shared boolean vocabulary of HWST_DBT / HWST_ISOLATE /
    // HWST_SENTINEL: explicit truthy and falsy spellings,
    // case-insensitive; anything else is "not a boolean".
    for (const char* v : {"1", "true", "on", "yes", "TRUE", "On", "YES"})
        EXPECT_EQ(parse_bool_flag(v), std::optional<bool>{true}) << v;
    for (const char* v : {"0", "false", "off", "no", "FALSE", "Off", "NO"})
        EXPECT_EQ(parse_bool_flag(v), std::optional<bool>{false}) << v;
    for (const char* v : {"", "2", "enabled", "y", "offf", " 1"})
        EXPECT_EQ(parse_bool_flag(v), std::nullopt) << v;
}

} // namespace
