// Program assembler tests: label fixups, constant materialisation
// (validated by executing on the Machine), data segment, listings.
#include <gtest/gtest.h>

#include "riscv/program.hpp"
#include "sim/machine.hpp"
#include "sim/syscalls.hpp"

namespace {

using namespace hwst::riscv;
namespace sim = hwst::sim;
using hwst::common::i64;
using hwst::common::u64;
using hwst::common::u8;

i64 value_of_li(i64 v)
{
    Program p;
    p.label("main");
    p.emit_li(Reg::a0, v);
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();
    sim::Machine m{p};
    return m.run().exit_code;
}

class EmitLi : public ::testing::TestWithParam<i64> {};

TEST_P(EmitLi, MaterialisesExactValue)
{
    EXPECT_EQ(value_of_li(GetParam()), GetParam());
}

INSTANTIATE_TEST_SUITE_P(
    Constants, EmitLi,
    ::testing::Values(0, 1, -1, 2047, 2048, -2048, -2049, 0x7FFFFFFF,
                      -0x80000000ll, 0x80000000ll, 0xFFFFFFFFll,
                      0x0000'0080'0000'0000ll, 0x0000'0040'0000'0000ll,
                      0x123456789ABCDEFll, -0x123456789ABCDEFll,
                      0x7FFFFFFFFFFFFFFFll,
                      std::numeric_limits<i64>::min()));

TEST(Program, DuplicateLabelRejected)
{
    Program p;
    p.label("x");
    p.emit(nop());
    EXPECT_THROW(p.label("x"), hwst::common::ToolchainError);
}

TEST(Program, UndefinedLabelDiagnosedAtFinalize)
{
    Program p;
    p.label("main");
    p.emit_jal(Reg::zero, "nowhere");
    EXPECT_THROW(p.finalize(), hwst::common::ToolchainError);
}

TEST(Program, BackwardAndForwardBranches)
{
    Program p;
    p.label("main");
    p.emit_li(Reg::t0, 3);
    p.emit_li(Reg::a0, 0);
    p.label("back");
    p.emit(itype(Opcode::ADDI, Reg::a0, Reg::a0, 5));
    p.emit(itype(Opcode::ADDI, Reg::t0, Reg::t0, -1));
    p.emit_branch(Opcode::BNE, Reg::t0, Reg::zero, "back");
    p.emit_branch(Opcode::BEQ, Reg::zero, Reg::zero, "fwd");
    p.emit(itype(Opcode::ADDI, Reg::a0, Reg::a0, 100)); // skipped
    p.label("fwd");
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();
    sim::Machine m{p};
    EXPECT_EQ(m.run().exit_code, 15);
}

TEST(Program, EmitAfterFinalizeRejected)
{
    Program p;
    p.label("main");
    p.emit(nop());
    p.finalize();
    EXPECT_THROW(p.emit(nop()), hwst::common::ToolchainError);
    EXPECT_NO_THROW(p.finalize()); // idempotent
}

TEST(Program, DataSegmentAlignmentAndContent)
{
    Program p;
    const std::vector<u8> blob{1, 2, 3};
    const u64 a = p.add_data(blob, 8);
    const u64 b = p.add_data(blob, 16);
    EXPECT_EQ(a % 8, 0u);
    EXPECT_EQ(b % 16, 0u);
    EXPECT_GT(b, a);
    const u64 c = p.add_bss(64, 8);
    EXPECT_GE(c, b + 3);
    EXPECT_GE(p.data().size(), (c - p.layout().data_base) + 64);
}

TEST(Program, DataVisibleToMachine)
{
    Program p;
    std::vector<u8> blob{0xEF, 0xBE, 0xAD, 0xDE};
    const u64 addr = p.add_data(blob, 8);
    p.label("main");
    p.emit_li(Reg::t0, static_cast<i64>(addr));
    p.emit(itype(Opcode::LWU, Reg::a0, Reg::t0, 0));
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.finalize();
    sim::Machine m{p};
    EXPECT_EQ(m.run().exit_code, 0xDEADBEEF);
}

TEST(Program, LaTextLoadsLabelAddress)
{
    Program p;
    p.label("main");
    p.emit_la_text(Reg::a0, "target");
    p.emit_li(Reg::a7, static_cast<i64>(sim::Sys::Exit));
    p.emit(Instruction{Opcode::ECALL});
    p.label("target");
    p.emit(nop());
    p.finalize();
    const u64 want = p.label_addr("target");
    sim::Machine m{p};
    EXPECT_EQ(static_cast<u64>(m.run().exit_code), want);
}

TEST(Program, ListingShowsLabelsAndMnemonics)
{
    Program p;
    p.label("main");
    p.emit(nop());
    p.label("loop");
    p.emit_jal(Reg::zero, "loop");
    p.finalize();
    const std::string text = p.listing();
    EXPECT_NE(text.find("main:"), std::string::npos);
    EXPECT_NE(text.find("loop:"), std::string::npos);
    EXPECT_NE(text.find("addi"), std::string::npos);
    EXPECT_NE(text.find("jal"), std::string::npos);
}

TEST(Program, EntryIsMainLabel)
{
    Program p;
    p.emit(nop());
    p.label("main");
    p.emit(nop());
    p.finalize();
    EXPECT_EQ(p.entry_addr(), p.layout().text_base + 4);
}

} // namespace
